/// \file inspect_phases.cpp
/// Diagnostic deep-dive into one (device, mapping) pair: per-phase counter
/// dump, per-bank load balance, optional JEDEC protocol check, and an
/// optional DRAM command trace written to a file for offline analysis.
///
/// Usage: inspect_phases [--device NAME] [--mapping SPEC] [--queue-depth Q]
///                       [--no-refresh] [--fcfs] [--check] [--trace FILE]
///                       [--max-bursts M]
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>

#include "common/cli.hpp"
#include "dram/checker.hpp"
#include "dram/standards.hpp"
#include "dram/trace.hpp"
#include "interleaver/streams.hpp"
#include "mapping/factory.hpp"
#include "sim/runner.hpp"

namespace {

void print_phase(const tbi::dram::PhaseStats& s) {
  std::printf(
      "%-5s util=%6.2f%% bursts=%llu hits=%llu miss=%llu conf=%llu acts=%llu "
      "pre=%llu ref=%llu hit-rate=%.1f%% elapsed=%.1fus\n",
      s.label.c_str(), 100.0 * s.utilization(),
      static_cast<unsigned long long>(s.bursts),
      static_cast<unsigned long long>(s.row_hits),
      static_cast<unsigned long long>(s.row_misses),
      static_cast<unsigned long long>(s.row_conflicts),
      static_cast<unsigned long long>(s.activates),
      static_cast<unsigned long long>(s.precharges),
      static_cast<unsigned long long>(s.refreshes), 100.0 * s.row_hit_rate(),
      static_cast<double>(s.elapsed()) / 1e6);
}

}  // namespace

int main(int argc, char** argv) {
  tbi::CliParser cli("inspect_phases", "counter/trace deep-dive for one run");
  cli.add_option("device", "name", "device (default DDR4-3200)");
  cli.add_option("mapping", "spec", "mapping spec (default optimized)");
  cli.add_option("queue-depth", "n", "controller queue depth (default 64)");
  cli.add_option("no-refresh", "", "disable refresh");
  cli.add_option("fcfs", "", "use FCFS instead of FR-FCFS");
  cli.add_option("check", "", "validate against the JEDEC protocol checker");
  cli.add_option("trace", "file", "write the DRAM command trace to a file");
  cli.add_option("max-bursts", "count", "truncate each phase");
  if (!cli.parse(argc, argv)) {
    std::fprintf(stderr, "error: %s\n%s", cli.error().c_str(), cli.usage().c_str());
    return 1;
  }
  if (cli.has("help")) {
    std::fputs(cli.usage().c_str(), stdout);
    return 0;
  }

  const auto* dev = tbi::dram::find_config(cli.get("device", "DDR4-3200"));
  if (dev == nullptr) {
    std::fprintf(stderr, "unknown device\n");
    return 1;
  }

  const std::uint64_t side = tbi::sim::paper_side_for(*dev);
  const auto mapping =
      tbi::mapping::make_mapping(cli.get("mapping", "optimized"), *dev, side);

  tbi::dram::ControllerConfig cfg;
  cfg.queue_depth = static_cast<unsigned>(cli.get_int("queue-depth", 64));
  if (cli.has("no-refresh")) {
    cfg.use_device_default_refresh = false;
    cfg.refresh_mode = tbi::dram::RefreshMode::Disabled;
  }
  if (cli.has("fcfs")) cfg.policy = tbi::dram::ControllerConfig::Policy::Fcfs;

  tbi::dram::Controller ctl(*dev, cfg);

  std::ofstream trace_file;
  std::unique_ptr<tbi::dram::TraceRecorder> recorder;
  std::unique_ptr<tbi::dram::TimingChecker> checker;
  if (cli.has("trace")) {
    trace_file.open(cli.get("trace", ""));
    if (!trace_file) {
      std::fprintf(stderr, "cannot open trace file\n");
      return 1;
    }
    recorder = std::make_unique<tbi::dram::TraceRecorder>(trace_file);
    ctl.set_observer(recorder.get());
  } else if (cli.has("check")) {
    checker = std::make_unique<tbi::dram::TimingChecker>(*dev, ctl.refresh_mode());
    ctl.set_observer(checker.get());
  }

  const auto max_bursts = static_cast<std::uint64_t>(cli.get_int("max-bursts", 0));
  std::printf("%s, %s, side %llu, refresh %s\n", dev->name.c_str(),
              mapping->name().c_str(), static_cast<unsigned long long>(side),
              to_string(ctl.refresh_mode()));

  if (recorder) recorder->comment("write phase");
  tbi::interleaver::WritePhaseStream ws(*mapping, max_bursts);
  print_phase(ctl.run_phase(ws, "write"));

  if (recorder) recorder->comment("read phase");
  tbi::interleaver::ReadPhaseStream rs(*mapping, max_bursts);
  print_phase(ctl.run_phase(rs, "read"));

  if (checker) {
    const auto violations = checker->finish();
    if (violations.empty()) {
      std::printf("protocol check: clean (%zu commands)\n",
                  checker->command_count());
    } else {
      std::printf("protocol check: %zu violations, first:\n  %s\n",
                  violations.size(), violations.front().c_str());
      return 2;
    }
  }
  if (recorder) {
    std::printf("trace: %llu commands -> %s\n",
                static_cast<unsigned long long>(recorder->commands_written()),
                cli.get("trace", "").c_str());
  }
  return 0;
}
