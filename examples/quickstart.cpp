/// \file quickstart.cpp
/// Minimal end-to-end tour of the library:
///  1. pick a DRAM device,
///  2. size the paper's 12.5 M-symbol triangular interleaver on it,
///  3. simulate write and read phase with the row-major baseline and the
///     optimized mapping,
///  4. print the bandwidth utilizations side by side.
///
/// Usage: quickstart [--device DDR4-3200] [--symbols N] [--queue-depth Q]
#include <cstdio>
#include <string>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "dram/standards.hpp"
#include "interleaver/streams.hpp"
#include "sim/runner.hpp"

int main(int argc, char** argv) {
  tbi::CliParser cli("quickstart", "simulate one device with both mappings");
  cli.add_option("device", "name", "DRAM configuration (default DDR4-3200)");
  cli.add_option("symbols", "count", "interleaver size in symbols (default 12.5M)");
  cli.add_option("queue-depth", "n", "controller queue depth (default 64)");
  if (!cli.parse(argc, argv)) {
    std::fprintf(stderr, "error: %s\n%s", cli.error().c_str(), cli.usage().c_str());
    return 1;
  }
  if (cli.has("help")) {
    std::fputs(cli.usage().c_str(), stdout);
    return 0;
  }

  const std::string device_name = cli.get("device", "DDR4-3200");
  const auto* device = tbi::dram::find_config(device_name);
  if (device == nullptr) {
    std::fprintf(stderr, "unknown device '%s'; available:\n", device_name.c_str());
    for (const auto& c : tbi::dram::standard_configs()) {
      std::fprintf(stderr, "  %s\n", c.name.c_str());
    }
    return 1;
  }

  const auto symbols =
      static_cast<std::uint64_t>(cli.get_int("symbols", 12'500'000));
  const std::uint64_t side =
      tbi::interleaver::burst_triangle_side(symbols, 3, device->burst_bytes);

  std::printf("device        : %s (%.1f Gbit/s peak, %u banks / %u groups)\n",
              device->name.c_str(), device->peak_bandwidth_gbps(), device->banks,
              device->bank_groups);
  std::printf("interleaver   : %llu symbols -> %llu x %llu bursts (triangular)\n\n",
              static_cast<unsigned long long>(symbols),
              static_cast<unsigned long long>(side),
              static_cast<unsigned long long>(side));

  tbi::TextTable table("Bandwidth utilization (min of both phases bounds throughput)");
  table.set_header({"Mapping", "Write", "Read", "Min", "Throughput"});

  for (const std::string spec : {"row-major", "optimized"}) {
    tbi::sim::RunConfig rc;
    rc.device = *device;
    rc.controller.queue_depth =
        static_cast<unsigned>(cli.get_int("queue-depth", 64));
    rc.mapping_spec = spec;
    rc.side = side;
    const auto run = tbi::sim::run_interleaver(rc);
    char tput[32];
    std::snprintf(tput, sizeof tput, "%.1f Gbit/s",
                  run.throughput_gbps(device->burst_bytes));
    table.add_row({run.mapping_name,
                   tbi::TextTable::pct(run.write.stats.utilization()),
                   tbi::TextTable::pct(run.read.stats.utilization()),
                   tbi::TextTable::pct(run.min_utilization()), tput});
  }
  std::fputs(table.render().c_str(), stdout);
  return 0;
}
