/// \file mapping_visualizer.cpp
/// E2 — ASCII rendition of the paper's Fig. 1: how the optimized mapping
/// assigns banks, columns and rows across the 2-D index space, shown on a
/// deliberately tiny device (2 banks, 4-column pages) so the pattern is
/// readable, exactly like the figure.
///
///   (a) diagonal bank round-robin
///   (b) page-tiling rectangles
///   (c) banks + columns + rows combined
///   (d) the same with the bank-dependent column offset
///
/// Usage: mapping_visualizer [--banks N] [--columns C] [--size S]
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>

#include "common/cli.hpp"
#include "dram/standards.hpp"
#include "mapping/optimized.hpp"

namespace {

tbi::dram::DeviceConfig tiny_device(unsigned banks, unsigned columns) {
  // Timing values are irrelevant for address visualization; reuse DDR3 and
  // shrink the geometry.
  tbi::dram::DeviceConfig dev = *tbi::dram::find_config("DDR3-800");
  dev.name = "tiny";
  dev.banks = banks;
  dev.bank_groups = 1;
  dev.columns_per_page = columns;
  dev.rows_per_bank = 4096;
  return dev;
}

void print_grid(const char* title, std::uint64_t size,
                const std::function<std::string(std::uint64_t, std::uint64_t)>& cell) {
  std::printf("%s\n", title);
  for (std::uint64_t i = 0; i < size; ++i) {
    std::fputs("  ", stdout);
    for (std::uint64_t j = 0; j < size; ++j) {
      std::printf("%s ", cell(i, j).c_str());
    }
    std::fputs("\n", stdout);
  }
  std::fputs("\n", stdout);
}

}  // namespace

int main(int argc, char** argv) {
  tbi::CliParser cli("mapping_visualizer", "ASCII rendition of the paper's Fig. 1");
  cli.add_option("banks", "n", "banks of the toy device (default 2)");
  cli.add_option("columns", "c", "columns per page in bursts (default 4)");
  cli.add_option("size", "s", "rendered index-space size (default 8)");
  if (!cli.parse(argc, argv)) {
    std::fprintf(stderr, "error: %s\n%s", cli.error().c_str(), cli.usage().c_str());
    return 1;
  }
  if (cli.has("help")) {
    std::fputs(cli.usage().c_str(), stdout);
    return 0;
  }

  const auto banks = static_cast<unsigned>(cli.get_int("banks", 2));
  const auto columns = static_cast<unsigned>(cli.get_int("columns", 4));
  const auto size = static_cast<std::uint64_t>(cli.get_int("size", 8));
  const auto dev = tiny_device(banks, columns);

  using tbi::mapping::OptimizedMapping;
  using tbi::mapping::OptimizedOptions;

  const OptimizedMapping diag(dev, size, OptimizedOptions{true, false, false});
  const OptimizedMapping tiled(dev, size, OptimizedOptions{false, true, false});
  const OptimizedMapping combined(dev, size, OptimizedOptions{true, true, false});
  const OptimizedMapping full(dev, size);

  std::printf("Toy device: %u banks, %u-burst pages -> %llu x %llu tiles\n\n",
              dev.banks, dev.columns_per_page,
              static_cast<unsigned long long>(full.tile_width()),
              static_cast<unsigned long long>(full.tile_height()));

  // Build labels with snprintf: gcc 12's -Wrestrict misfires on
  // `"B" + std::to_string(...)` rvalue concatenation chains (PR105651).
  const auto bcr_label = [](const tbi::dram::Address& a) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "B%uC%uR%u", a.bank, a.column, a.row);
    return std::string(buf);
  };

  print_grid("(a) Diagonal bank round-robin (Fig. 1a): Bx", size,
             [&](std::uint64_t i, std::uint64_t j) {
               char buf[16];
               std::snprintf(buf, sizeof buf, "B%u", diag.map(i, j).bank);
               return std::string(buf);
             });

  print_grid("(b) Page tiling (Fig. 1b): one page per rectangle, Cx = column", size,
             [&](std::uint64_t i, std::uint64_t j) {
               char buf[16];
               std::snprintf(buf, sizeof buf, "C%u", tiled.map(i, j).column);
               return std::string(buf);
             });

  print_grid("(c) Banks, columns and rows combined (Fig. 1c): BxCyRz", size,
             [&](std::uint64_t i, std::uint64_t j) { return bcr_label(combined.map(i, j)); });

  print_grid("(d) With the bank-dependent column offset (Fig. 1d): BxCyRz", size,
             [&](std::uint64_t i, std::uint64_t j) { return bcr_label(full.map(i, j)); });

  std::puts(
      "Reading guide: in (c) every bank's page switch happens at the same\n"
      "rectangle boundary; in (d) the circular per-bank shift staggers the\n"
      "switches so one bank's page miss hides behind the others' hits.");
  return 0;
}
