/// \file experiment_runner.cpp
/// JSON-config-driven batch runner: describe a set of simulations in a
/// JSON file (devices, mappings, sizes, controller knobs) and get a JSON
/// result document back — the scriptable front door to the library for
/// parameter studies beyond the canned benches.
///
/// Runs on the fault-tolerant sweep backend (sim/dsweep.hpp, "bandwidth"
/// kernel): `--workers N` shards the runs over N crash-isolated worker
/// processes; with `--output` every finished run is checkpointed to
/// `<file>.manifest` and `--resume` skips the runs already recorded
/// there. Results are merged by run index, so the document is identical
/// for any worker count.
///
/// Config format (all fields except "runs" optional):
/// {
///   "symbols": 12500000,
///   "max_bursts": 40000,
///   "queue_depth": 64,
///   "runs": [
///     {"device": "DDR4-3200", "mapping": "optimized"},
///     {"device": "DDR4-3200", "mapping": "row-major", "refresh": "disabled"}
///   ]
/// }
///
/// A config with a "fer" object instead drives the end-to-end FER sweep
/// ("fer" kernel): axis arrays become the scenario grid (including the
/// multi-link "links" axis), scalars configure the pipeline template:
/// {
///   "fer": {
///     "interleavers": ["triangular", "two-stage"],
///     "channels": ["gilbert-elliott", "leo"],
///     "rs_ks": [223],
///     "links": [1, 4],
///     "frames": 8
///   }
/// }
///
/// Usage: experiment_runner --config FILE [--output FILE]
///                          [--workers N] [--resume]
///                          [--listen HOST:PORT | --connect HOST:PORT]
///                          [--worker-timeout-ms MS] [--shard I/N]
///        experiment_runner --print-default-config
///
/// `--listen` adopts remote TCP workers (started with `--connect`)
/// instead of forking local ones; `--shard I/N` computes one contiguous
/// slice of the batch into its own manifest. The "fer" config object also
/// accepts "worker_timeout_ms".
#include <csignal>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/cli.hpp"
#include "common/json.hpp"
#include "sim/dsweep.hpp"
#include "sim/manifest.hpp"
#include "sim/pipeline.hpp"

namespace {

const char* kDefaultConfig = R"({
  "symbols": 12500000,
  "max_bursts": 40000,
  "queue_depth": 64,
  "runs": [
    {"device": "DDR4-3200", "mapping": "row-major"},
    {"device": "DDR4-3200", "mapping": "optimized"},
    {"device": "LPDDR4-4266", "mapping": "row-major"},
    {"device": "LPDDR4-4266", "mapping": "optimized", "refresh": "disabled"}
  ]
})";

volatile std::sig_atomic_t g_cancel = 0;

void handle_signal(int) { g_cancel = 1; }

/// FER batch: the "fer" config object drives run_fer_sweep_dist. Axis
/// arrays select the grid, scalar fields fill the pipeline template with
/// the bench_fer defaults.
tbi::Json run_fer_experiment(const tbi::Json& fer, tbi::sim::DsweepOptions& dist,
                             bool& interrupted) {
  tbi::sim::SweepGrid grid;
  const auto string_axis = [&fer](const char* key,
                                  std::vector<std::string> fallback) {
    if (!fer.contains(key)) return fallback;
    std::vector<std::string> out;
    for (const auto& v : fer.at(key).as_array()) out.push_back(v.as_string());
    return out;
  };
  grid.devices = string_axis("devices", {"LPDDR5-8533"});
  grid.mapping_specs = string_axis("mapping_specs", {"optimized"});
  grid.interleavers = string_axis("interleavers", {"triangular"});
  grid.channels = string_axis("channels", {"gilbert-elliott"});
  if (fer.contains("rs_ks")) {
    grid.rs_ks.clear();
    for (const auto& v : fer.at("rs_ks").as_array()) {
      grid.rs_ks.push_back(static_cast<unsigned>(v.as_double()));
    }
  }
  if (fer.contains("symbols_per_bursts")) {
    grid.symbols_per_bursts.clear();
    for (const auto& v : fer.at("symbols_per_bursts").as_array()) {
      grid.symbols_per_bursts.push_back(static_cast<std::uint64_t>(v.as_double()));
    }
  }
  if (fer.contains("links")) {
    grid.links.clear();
    for (const auto& v : fer.at("links").as_array()) {
      grid.links.push_back(static_cast<unsigned>(v.as_double()));
    }
  }

  tbi::sim::FerSweepOptions options;
  options.sweep.threads = static_cast<unsigned>(fer.get_or("threads", 0.0));
  options.sweep.base_seed = static_cast<std::uint64_t>(fer.get_or("seed", 1.0));
  options.base.frames = static_cast<unsigned>(fer.get_or("frames", 8.0));
  options.base.side = static_cast<std::uint64_t>(fer.get_or("side", 0.0));
  options.base.symbols_per_burst =
      static_cast<std::uint64_t>(fer.get_or("spb", 64.0));
  options.base.fade_fraction = fer.get_or("fade_prob", 0.004);
  options.base.mean_burst_symbols = fer.get_or("burst_symbols", 300.0);
  options.base.error_probability = fer.get_or("error_probability", 2e-3);
  options.base.error_rate_bad = fer.get_or("error_rate_bad", 0.95);
  options.base.link_phase_symbols =
      static_cast<std::uint64_t>(fer.get_or("link_phase_symbols", 0.0));
  if (fer.contains("worker_timeout_ms")) {
    const double timeout = fer.at("worker_timeout_ms").as_double();
    if (timeout <= 0) {
      throw std::invalid_argument("fer.worker_timeout_ms must be positive");
    }
    dist.heartbeat_timeout_ms = static_cast<unsigned>(timeout);
  }

  const auto sweep = tbi::sim::run_fer_sweep_dist(grid, options, dist);
  interrupted = sweep.stats.interrupted;

  tbi::Json results;
  tbi::Json rows;
  for (std::size_t i = 0; i < sweep.cells.size(); ++i) {
    if (!sweep.done[i]) continue;
    const auto& cell = sweep.cells[i];
    tbi::Json row;
    row["scenario"] = cell.scenario.label();
    if (cell.scenario.links != 0) {
      row["links"] = static_cast<std::uint64_t>(cell.scenario.links);
    }
    row["frame_symbols"] = cell.result.frame_symbols;
    row["code_words"] = cell.result.code_words;
    row["word_errors"] = cell.result.word_errors;
    row["frame_errors"] = cell.result.frame_errors;
    row["channel_symbol_errors"] = cell.result.channel_symbol_errors;
    row["wer"] = cell.result.word_error_rate();
    row["fer"] = cell.result.frame_error_rate();
    if (cell.result.dram_ran) {
      row["dram_throughput_gbps"] = cell.result.dram_throughput_gbps;
      row["dram_bursts"] = cell.dram_bursts;
    }
    rows.push_back(row);
  }
  results["fer"] = rows;
  if (interrupted) results["interrupted"] = true;
  if (dist.workers > 1) results["dsweep"] = sweep.stats.to_json();
  return results;
}

}  // namespace

int main(int argc, char** argv) {
  const int worker_fd = tbi::sim::dsweep_worker_fd(argc, argv);
  if (worker_fd >= 0) {
    return tbi::sim::dsweep_worker_main(worker_fd);
  }
  const std::string connect_spec = tbi::sim::dsweep_worker_connect_arg(argc, argv);
  if (!connect_spec.empty()) {
    return tbi::sim::dsweep_worker_connect(connect_spec);
  }

  tbi::CliParser cli("experiment_runner", "JSON-driven simulation batches");
  cli.add_option("config", "file", "JSON experiment description");
  cli.add_option("output", "file", "write results to file (default stdout)");
  cli.add_option("workers", "N", "worker processes (default 1 = in-process)");
  cli.add_option("resume", "", "skip runs recorded in the --output manifest");
  cli.add_option("listen", "h:p", "adopt remote TCP workers (fleet driver mode)");
  cli.add_option("connect", "h:p", "serve a --listen driver as a remote worker");
  cli.add_option("worker-timeout-ms", "ms",
                 "declare a silent worker dead/partitioned after this long (default 5000)");
  cli.add_option("shard", "i/n", "compute only shard i of n (needs --output)");
  cli.add_option("print-default-config", "", "emit a starter config and exit");
  if (!cli.parse(argc, argv)) {
    std::fprintf(stderr, "error: %s\n%s", cli.error().c_str(), cli.usage().c_str());
    return 1;
  }
  if (cli.has("help")) {
    std::fputs(cli.usage().c_str(), stdout);
    return 0;
  }
  if (cli.has("print-default-config")) {
    std::puts(kDefaultConfig);
    return 0;
  }
  if (cli.has("resume") && !cli.has("output")) {
    std::fprintf(stderr, "error: --resume needs --output (the manifest lives "
                         "next to the output file)\n");
    return 1;
  }

  std::string text;
  if (cli.has("config")) {
    std::ifstream f(cli.get("config", ""));
    if (!f) {
      std::fprintf(stderr, "cannot open config file\n");
      return 1;
    }
    std::ostringstream ss;
    ss << f.rdbuf();
    text = ss.str();
  } else {
    text = kDefaultConfig;
  }

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  tbi::Json results;
  tbi::sim::DsweepOptions dist;
  bool interrupted = false;
  try {
    const tbi::Json config = tbi::Json::parse(text);
    dist.workers = static_cast<unsigned>(cli.get_int("workers", 1));
    dist.resume = cli.has("resume");
    if (cli.has("output")) {
      dist.manifest_path = cli.get("output", "") + ".manifest";
    }
    dist.listen = cli.get("listen", "");
    const std::int64_t worker_timeout = cli.get_int("worker-timeout-ms", 5000);
    if (worker_timeout <= 0) {
      std::fprintf(stderr, "error: --worker-timeout-ms must be positive\n");
      return 1;
    }
    dist.heartbeat_timeout_ms = static_cast<unsigned>(worker_timeout);
    if (cli.has("shard")) {
      tbi::sim::parse_shard_spec(cli.get("shard", ""), &dist.shard_index,
                                 &dist.shard_count);
      if (!cli.has("output")) {
        std::fprintf(stderr, "error: --shard needs --output (the shard's result "
                             "is its manifest)\n");
        return 1;
      }
    }
    dist.cancel = &g_cancel;
    dist.faults = tbi::sim::FaultSpec::from_env();

    if (config.contains("fer")) {
      results = run_fer_experiment(config.at("fer"), dist, interrupted);
    } else {
      // Canonical job config for the "bandwidth" kernel: built from parsed
      // values, never from the raw file text, so whitespace/key-order
      // changes in the config file don't invalidate a resume manifest.
      tbi::Json job;
      job["symbols"] =
          static_cast<std::uint64_t>(config.get_or("symbols", 12'500'000.0));
      job["max_bursts"] =
          static_cast<std::uint64_t>(config.get_or("max_bursts", 0.0));
      job["queue_depth"] =
          static_cast<std::uint64_t>(config.get_or("queue_depth", 64.0));
      job["runs"] = config.at("runs");
      const auto cells =
          static_cast<std::uint64_t>(config.at("runs").as_array().size());

      const auto run = tbi::sim::dsweep_run("bandwidth", job, cells, 0, dist);
      interrupted = run.stats.interrupted;

      tbi::Json runs_out;
      for (std::uint64_t i = 0; i < cells; ++i) {
        if (run.done[i]) runs_out.push_back(run.records[i]);
      }
      results["runs"] = runs_out;
      results["symbols"] = job.at("symbols");
      if (interrupted) results["interrupted"] = true;
      if (dist.workers > 1) results["dsweep"] = run.stats.to_json();
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "experiment failed: %s\n", e.what());
    return 1;
  }

  if (cli.has("output")) {
    if (!tbi::Json::write_file(cli.get("output", ""), results)) {
      return 1;
    }
    if (!interrupted && !dist.manifest_path.empty() && dist.shard_count == 1) {
      std::remove(dist.manifest_path.c_str());
    }
  } else {
    const std::string out = results.dump(2) + "\n";
    std::fputs(out.c_str(), stdout);
  }
  if (interrupted) {
    std::fprintf(stderr, "interrupted: partial results%s\n",
                 cli.has("output") ? "; rerun with --resume to finish" : "");
    return 130;
  }
  return 0;
}
