/// \file experiment_runner.cpp
/// JSON-config-driven batch runner: describe a set of simulations in a
/// JSON file (devices, mappings, sizes, controller knobs) and get a JSON
/// result document back — the scriptable front door to the library for
/// parameter studies beyond the canned benches.
///
/// Runs on the fault-tolerant sweep backend (sim/dsweep.hpp, "bandwidth"
/// kernel): `--workers N` shards the runs over N crash-isolated worker
/// processes; with `--output` every finished run is checkpointed to
/// `<file>.manifest` and `--resume` skips the runs already recorded
/// there. Results are merged by run index, so the document is identical
/// for any worker count.
///
/// Config format (all fields except "runs" optional):
/// {
///   "symbols": 12500000,
///   "max_bursts": 40000,
///   "queue_depth": 64,
///   "runs": [
///     {"device": "DDR4-3200", "mapping": "optimized"},
///     {"device": "DDR4-3200", "mapping": "row-major", "refresh": "disabled"}
///   ]
/// }
///
/// Usage: experiment_runner --config FILE [--output FILE]
///                          [--workers N] [--resume]
///        experiment_runner --print-default-config
#include <csignal>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/cli.hpp"
#include "common/json.hpp"
#include "sim/dsweep.hpp"

namespace {

const char* kDefaultConfig = R"({
  "symbols": 12500000,
  "max_bursts": 40000,
  "queue_depth": 64,
  "runs": [
    {"device": "DDR4-3200", "mapping": "row-major"},
    {"device": "DDR4-3200", "mapping": "optimized"},
    {"device": "LPDDR4-4266", "mapping": "row-major"},
    {"device": "LPDDR4-4266", "mapping": "optimized", "refresh": "disabled"}
  ]
})";

volatile std::sig_atomic_t g_cancel = 0;

void handle_signal(int) { g_cancel = 1; }

}  // namespace

int main(int argc, char** argv) {
  const int worker_fd = tbi::sim::dsweep_worker_fd(argc, argv);
  if (worker_fd >= 0) {
    return tbi::sim::dsweep_worker_main(worker_fd);
  }

  tbi::CliParser cli("experiment_runner", "JSON-driven simulation batches");
  cli.add_option("config", "file", "JSON experiment description");
  cli.add_option("output", "file", "write results to file (default stdout)");
  cli.add_option("workers", "N", "worker processes (default 1 = in-process)");
  cli.add_option("resume", "", "skip runs recorded in the --output manifest");
  cli.add_option("print-default-config", "", "emit a starter config and exit");
  if (!cli.parse(argc, argv)) {
    std::fprintf(stderr, "error: %s\n%s", cli.error().c_str(), cli.usage().c_str());
    return 1;
  }
  if (cli.has("help")) {
    std::fputs(cli.usage().c_str(), stdout);
    return 0;
  }
  if (cli.has("print-default-config")) {
    std::puts(kDefaultConfig);
    return 0;
  }
  if (cli.has("resume") && !cli.has("output")) {
    std::fprintf(stderr, "error: --resume needs --output (the manifest lives "
                         "next to the output file)\n");
    return 1;
  }

  std::string text;
  if (cli.has("config")) {
    std::ifstream f(cli.get("config", ""));
    if (!f) {
      std::fprintf(stderr, "cannot open config file\n");
      return 1;
    }
    std::ostringstream ss;
    ss << f.rdbuf();
    text = ss.str();
  } else {
    text = kDefaultConfig;
  }

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  tbi::Json results;
  tbi::sim::DsweepOptions dist;
  bool interrupted = false;
  try {
    const tbi::Json config = tbi::Json::parse(text);
    // Canonical job config for the "bandwidth" kernel: built from parsed
    // values, never from the raw file text, so whitespace/key-order
    // changes in the config file don't invalidate a resume manifest.
    tbi::Json job;
    job["symbols"] =
        static_cast<std::uint64_t>(config.get_or("symbols", 12'500'000.0));
    job["max_bursts"] = static_cast<std::uint64_t>(config.get_or("max_bursts", 0.0));
    job["queue_depth"] = static_cast<std::uint64_t>(config.get_or("queue_depth", 64.0));
    job["runs"] = config.at("runs");
    const auto cells =
        static_cast<std::uint64_t>(config.at("runs").as_array().size());

    dist.workers = static_cast<unsigned>(cli.get_int("workers", 1));
    dist.resume = cli.has("resume");
    if (cli.has("output")) {
      dist.manifest_path = cli.get("output", "") + ".manifest";
    }
    dist.cancel = &g_cancel;
    dist.faults = tbi::sim::FaultSpec::from_env();

    const auto run = tbi::sim::dsweep_run("bandwidth", job, cells, 0, dist);
    interrupted = run.stats.interrupted;

    tbi::Json runs_out;
    for (std::uint64_t i = 0; i < cells; ++i) {
      if (run.done[i]) runs_out.push_back(run.records[i]);
    }
    results["runs"] = runs_out;
    results["symbols"] = job.at("symbols");
    if (interrupted) results["interrupted"] = true;
    if (dist.workers > 1) results["dsweep"] = run.stats.to_json();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "experiment failed: %s\n", e.what());
    return 1;
  }

  if (cli.has("output")) {
    if (!tbi::Json::write_file(cli.get("output", ""), results)) {
      return 1;
    }
    if (!interrupted && !dist.manifest_path.empty()) {
      std::remove(dist.manifest_path.c_str());
    }
  } else {
    const std::string out = results.dump(2) + "\n";
    std::fputs(out.c_str(), stdout);
  }
  if (interrupted) {
    std::fprintf(stderr, "interrupted: partial results%s\n",
                 cli.has("output") ? "; rerun with --resume to finish" : "");
    return 130;
  }
  return 0;
}
