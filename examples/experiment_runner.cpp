/// \file experiment_runner.cpp
/// JSON-config-driven batch runner: describe a set of simulations in a
/// JSON file (devices, mappings, sizes, controller knobs) and get a JSON
/// result document back — the scriptable front door to the library for
/// parameter studies beyond the canned benches.
///
/// Config format (all fields except "runs" optional):
/// {
///   "symbols": 12500000,
///   "max_bursts": 40000,
///   "queue_depth": 64,
///   "runs": [
///     {"device": "DDR4-3200", "mapping": "optimized"},
///     {"device": "DDR4-3200", "mapping": "row-major", "refresh": "disabled"}
///   ]
/// }
///
/// Usage: experiment_runner --config FILE [--output FILE]
///        experiment_runner --print-default-config
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/cli.hpp"
#include "common/json.hpp"
#include "dram/standards.hpp"
#include "interleaver/streams.hpp"
#include "sim/runner.hpp"

namespace {

const char* kDefaultConfig = R"({
  "symbols": 12500000,
  "max_bursts": 40000,
  "queue_depth": 64,
  "runs": [
    {"device": "DDR4-3200", "mapping": "row-major"},
    {"device": "DDR4-3200", "mapping": "optimized"},
    {"device": "LPDDR4-4266", "mapping": "row-major"},
    {"device": "LPDDR4-4266", "mapping": "optimized", "refresh": "disabled"}
  ]
})";

tbi::Json phase_to_json(const tbi::sim::PhaseResult& p, unsigned burst_bytes) {
  tbi::Json j;
  j["utilization"] = p.stats.utilization();
  j["bandwidth_gbps"] = p.stats.bandwidth_gbps(burst_bytes);
  j["bursts"] = static_cast<std::int64_t>(p.stats.bursts);
  j["activates"] = static_cast<std::int64_t>(p.stats.activates);
  j["row_hit_rate"] = p.stats.row_hit_rate();
  j["refreshes"] = static_cast<std::int64_t>(p.stats.refreshes);
  j["elapsed_us"] = static_cast<double>(p.stats.elapsed()) / 1e6;
  j["energy_nj"] = p.energy.total_nj();
  return j;
}

}  // namespace

int main(int argc, char** argv) {
  tbi::CliParser cli("experiment_runner", "JSON-driven simulation batches");
  cli.add_option("config", "file", "JSON experiment description");
  cli.add_option("output", "file", "write results to file (default stdout)");
  cli.add_option("print-default-config", "", "emit a starter config and exit");
  if (!cli.parse(argc, argv)) {
    std::fprintf(stderr, "error: %s\n%s", cli.error().c_str(), cli.usage().c_str());
    return 1;
  }
  if (cli.has("help")) {
    std::fputs(cli.usage().c_str(), stdout);
    return 0;
  }
  if (cli.has("print-default-config")) {
    std::puts(kDefaultConfig);
    return 0;
  }

  std::string text;
  if (cli.has("config")) {
    std::ifstream f(cli.get("config", ""));
    if (!f) {
      std::fprintf(stderr, "cannot open config file\n");
      return 1;
    }
    std::ostringstream ss;
    ss << f.rdbuf();
    text = ss.str();
  } else {
    text = kDefaultConfig;
  }

  tbi::Json results;
  try {
    const tbi::Json config = tbi::Json::parse(text);
    const auto symbols =
        static_cast<std::uint64_t>(config.get_or("symbols", 12'500'000.0));
    const auto max_bursts =
        static_cast<std::uint64_t>(config.get_or("max_bursts", 0.0));
    const auto queue_depth =
        static_cast<unsigned>(config.get_or("queue_depth", 64.0));

    tbi::Json runs_out;
    for (const auto& run_cfg : config.at("runs").as_array()) {
      const std::string device_name = run_cfg.at("device").as_string();
      const auto* device = tbi::dram::find_config(device_name);
      if (device == nullptr) {
        std::fprintf(stderr, "unknown device '%s'\n", device_name.c_str());
        return 1;
      }
      tbi::sim::RunConfig rc;
      rc.device = *device;
      rc.mapping_spec = run_cfg.get_or("mapping", std::string("optimized"));
      rc.side =
          tbi::interleaver::burst_triangle_side(symbols, 3, device->burst_bytes);
      rc.max_bursts_per_phase = max_bursts;
      rc.controller.queue_depth = queue_depth;
      if (run_cfg.get_or("refresh", std::string("default")) == "disabled") {
        rc.controller.use_device_default_refresh = false;
        rc.controller.refresh_mode = tbi::dram::RefreshMode::Disabled;
      }
      rc.check_protocol = run_cfg.get_or("check", false);

      const auto run = tbi::sim::run_interleaver(rc);
      tbi::Json r;
      r["device"] = run.device_name;
      r["mapping"] = run.mapping_name;
      r["side_bursts"] = static_cast<std::int64_t>(rc.side);
      r["write"] = phase_to_json(run.write, device->burst_bytes);
      r["read"] = phase_to_json(run.read, device->burst_bytes);
      r["min_utilization"] = run.min_utilization();
      r["throughput_gbps"] = run.throughput_gbps(device->burst_bytes);
      runs_out.push_back(r);
    }
    results["runs"] = runs_out;
    results["symbols"] = static_cast<std::int64_t>(symbols);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "experiment failed: %s\n", e.what());
    return 1;
  }

  const std::string out = results.dump(2) + "\n";
  if (cli.has("output")) {
    std::ofstream f(cli.get("output", ""));
    f << out;
    return f ? 0 : 1;
  }
  std::fputs(out.c_str(), stdout);
  return 0;
}
