/// \file throughput_planner.cpp
/// System-sizing helper built on the simulator: given a target link rate,
/// find the cheapest DRAM configuration (and how many parallel channels)
/// that sustains the interleaver, for each mapping. This is the paper's
/// §I argument made concrete — with the row-major mapping the memory
/// system must be oversized (faster speed grade or more channels), which
/// costs board area, money and energy.
///
/// Usage: throughput_planner [--target-gbps G] [--max-bursts M]
#include <cmath>
#include <cstdio>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "dram/energy.hpp"
#include "dram/standards.hpp"
#include "sim/runner.hpp"

int main(int argc, char** argv) {
  tbi::CliParser cli("throughput_planner",
                     "DRAM channel sizing for a target optical link rate");
  cli.add_option("target-gbps", "G", "downlink rate to sustain (default 100)");
  cli.add_option("max-bursts", "count", "truncate phases (default 40000)");
  if (!cli.parse(argc, argv)) {
    std::fprintf(stderr, "error: %s\n%s", cli.error().c_str(), cli.usage().c_str());
    return 1;
  }
  if (cli.has("help")) {
    std::fputs(cli.usage().c_str(), stdout);
    return 0;
  }
  const double target = cli.get_double("target-gbps", 100.0);
  const auto max_bursts =
      static_cast<std::uint64_t>(cli.get_int("max-bursts", 40000));

  std::printf("Sizing DRAM for a %.0f Gbit/s optical downlink\n", target);
  std::printf("(each interleaved bit is written and read -> %.0f Gbit/s of\n",
              2 * target);
  std::printf(" DRAM traffic; channel count = ceil(traffic / achieved BW))\n\n");

  tbi::TextTable t("Channels needed to sustain the link");
  t.set_header({"DRAM Configuration", "Peak Gbit/s", "Mapping",
                "Achieved Gbit/s", "Channels", "Power (W, est.)"});

  for (const auto& device : tbi::dram::standard_configs()) {
    for (const std::string spec : {"row-major", "optimized"}) {
      tbi::sim::RunConfig rc;
      rc.device = device;
      rc.mapping_spec = spec;
      rc.side = tbi::sim::paper_side_for(device);
      rc.max_bursts_per_phase = max_bursts;
      const auto run = tbi::sim::run_interleaver(rc);

      // Sustained two-phase traffic a single channel absorbs:
      const double achieved = run.throughput_gbps(device.burst_bytes);
      const unsigned channels = static_cast<unsigned>(
          std::ceil(2 * target / std::max(achieved, 1e-9)));

      // Rough per-channel power from the energy model at full tilt.
      const auto wr = run.write;
      const auto rd = run.read;
      const double nj =
          wr.energy.total_nj() + rd.energy.total_nj();
      const double seconds =
          static_cast<double>(wr.stats.elapsed() + rd.stats.elapsed()) * 1e-12;
      const double watts = seconds > 0 ? nj * 1e-9 / seconds : 0.0;

      char peak[32], ach[32], pwr[32];
      std::snprintf(peak, sizeof peak, "%.1f", device.peak_bandwidth_gbps());
      std::snprintf(ach, sizeof ach, "%.1f", achieved);
      std::snprintf(pwr, sizeof pwr, "%.2f", watts * channels);
      t.add_row({spec == "row-major" ? device.name : "", peak, spec, ach,
                 std::to_string(channels), pwr});
    }
  }
  std::fputs(t.render().c_str(), stdout);
  std::puts(
      "\nReading guide: wherever the row-major row needs more channels than\n"
      "the optimized row on the same device, that difference is the\n"
      "oversizing cost the paper's mapping removes.");
  return 0;
}
