/// \file optical_downlink.cpp
/// End-to-end optical LEO downlink demonstration (the paper's motivating
/// scenario, §I), now a thin driver over sim::run_pipeline: Reed-Solomon
/// coded frames stream through an interleaver and a correlated burst
/// channel; the same run reports the frame error rate without
/// interleaving, with the triangular block interleaver, and with the
/// paper's full two-stage scheme (§II, streamed at burst granularity),
/// plus the DRAM bandwidth the DRAM-resident interleavers sustain on the
/// chosen device.
///
/// Usage: optical_downlink [--frames N] [--fade-prob P] [--burst-symbols B]
///                         [--seed S] [--device NAME] [--channel KIND]
///                         [--side S] [--spb B]
#include <cstdio>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "dram/standards.hpp"
#include "sim/pipeline.hpp"

int main(int argc, char** argv) {
  tbi::CliParser cli("optical_downlink",
                     "coded LEO downlink: none vs triangular vs two-stage");
  cli.add_option("frames", "n", "number of frames to simulate (default 40)");
  cli.add_option("fade-prob", "p", "stationary fade duty cycle (default 0.004)");
  cli.add_option("burst-symbols", "b", "mean fade length in symbols (default 300)");
  cli.add_option("seed", "s", "RNG seed (default 1)");
  cli.add_option("device", "name", "DRAM device for the bandwidth check");
  cli.add_option("channel", "kind", "bsc | gilbert-elliott | leo (default gilbert-elliott)");
  cli.add_option("side", "s", "interleaver side (0 = RS-255 triangle; bursts for two-stage)");
  cli.add_option("spb", "b", "two-stage symbols per DRAM burst (default 64)");
  if (!cli.parse(argc, argv)) {
    std::fprintf(stderr, "error: %s\n%s", cli.error().c_str(), cli.usage().c_str());
    return 1;
  }
  if (cli.has("help")) {
    std::fputs(cli.usage().c_str(), stdout);
    return 0;
  }

  tbi::sim::PipelineConfig config;
  config.channel = cli.get("channel", "gilbert-elliott");
  config.frames = static_cast<unsigned>(cli.get_int("frames", 40));
  config.fade_fraction = cli.get_double("fade-prob", 0.004);
  config.mean_burst_symbols = cli.get_double("burst-symbols", 300);
  config.error_rate_bad = 0.95;
  config.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  config.side = static_cast<std::uint64_t>(cli.get_int("side", 0));
  config.symbols_per_burst = static_cast<std::uint64_t>(cli.get_int("spb", 64));
  config.run_dram = false;

  tbi::sim::PipelineResult direct, interleaved, two_stage;
  const auto* device = tbi::dram::find_config(cli.get("device", "LPDDR5-8533"));
  try {
    // Same seed => same channel draws: the "none" and "triangular"
    // systems see identical fades (the two-stage frame is spb x larger,
    // so its channel realization is its own).
    config.interleaver = "none";
    direct = tbi::sim::run_pipeline(config);

    config.interleaver = "triangular";
    if (device != nullptr) {
      config.run_dram = true;
      config.device = *device;
      config.dram_max_bursts_per_phase = 0;  // one frame's triangle is small
    }
    interleaved = tbi::sim::run_pipeline(config);

    config.interleaver = "two-stage";
    config.dram_max_bursts_per_phase = 20000;  // burst triangle is bigger
    two_stage = tbi::sim::run_pipeline(config);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  tbi::TextTable t("Optical downlink: coded performance over a bursty channel");
  t.set_header({"System", "Frame sym", "Word Errors", "WER", "Frame Errors", "FER"});
  const auto add_row = [&t](const char* name, const tbi::sim::PipelineResult& r) {
    t.add_row({name, std::to_string(r.frame_symbols), std::to_string(r.word_errors),
               tbi::TextTable::num(r.word_error_rate(), 5),
               std::to_string(r.frame_errors),
               tbi::TextTable::num(r.frame_error_rate(), 3)});
  };
  add_row("direct (no interleaver)", direct);
  add_row("triangular interleaver", interleaved);
  add_row("two-stage interleaver", two_stage);
  std::fputs(t.render().c_str(), stdout);

  std::printf("\nChannel corrupted %llu symbols in both classic systems; the\n"
              "interleaved decoder corrected %llu of them. The two-stage system\n"
              "streams spb x larger burst-granular frames (%llu symbols each)\n"
              "and corrected %llu of its %llu corruptions.\n",
              static_cast<unsigned long long>(direct.channel_symbol_errors),
              static_cast<unsigned long long>(interleaved.corrected_symbols),
              static_cast<unsigned long long>(two_stage.frame_symbols),
              static_cast<unsigned long long>(two_stage.corrected_symbols),
              static_cast<unsigned long long>(two_stage.channel_symbol_errors));

  const auto report_dram = [device](const char* name,
                                    const tbi::sim::PipelineResult& r) {
    if (!r.dram_ran) return;
    std::printf(
        "DRAM feasibility of the %s on %s: %.1f Gbit/s interleaver\n"
        "throughput (%.1f Gbit/s peak, %.1f %% min utilization).\n",
        name, device->name.c_str(), r.dram_throughput_gbps,
        device->peak_bandwidth_gbps(), 100.0 * r.dram.min_utilization());
  };
  std::puts("");
  report_dram("triangular stage", interleaved);
  report_dram("two-stage scheme", two_stage);
  return 0;
}
