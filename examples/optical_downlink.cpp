/// \file optical_downlink.cpp
/// End-to-end optical LEO downlink demonstration (the paper's motivating
/// scenario, §I), now a thin driver over sim::run_pipeline: Reed-Solomon
/// coded frames stream through the triangular block interleaver and a
/// correlated burst channel; the same run reports the frame error rate
/// with and without interleaving and the DRAM bandwidth the interleaver
/// sustains on the chosen device.
///
/// Usage: optical_downlink [--frames N] [--fade-prob P] [--burst-symbols B]
///                         [--seed S] [--device NAME] [--channel KIND]
#include <cstdio>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "dram/standards.hpp"
#include "sim/pipeline.hpp"

int main(int argc, char** argv) {
  tbi::CliParser cli("optical_downlink",
                     "coded LEO downlink with/without triangular interleaving");
  cli.add_option("frames", "n", "number of frames to simulate (default 40)");
  cli.add_option("fade-prob", "p", "stationary fade duty cycle (default 0.004)");
  cli.add_option("burst-symbols", "b", "mean fade length in symbols (default 300)");
  cli.add_option("seed", "s", "RNG seed (default 1)");
  cli.add_option("device", "name", "DRAM device for the bandwidth check");
  cli.add_option("channel", "kind", "bsc | gilbert-elliott | leo (default gilbert-elliott)");
  if (!cli.parse(argc, argv)) {
    std::fprintf(stderr, "error: %s\n%s", cli.error().c_str(), cli.usage().c_str());
    return 1;
  }
  if (cli.has("help")) {
    std::fputs(cli.usage().c_str(), stdout);
    return 0;
  }

  tbi::sim::PipelineConfig config;
  config.channel = cli.get("channel", "gilbert-elliott");
  config.frames = static_cast<unsigned>(cli.get_int("frames", 40));
  config.fade_fraction = cli.get_double("fade-prob", 0.004);
  config.mean_burst_symbols = cli.get_double("burst-symbols", 300);
  config.error_rate_bad = 0.95;
  config.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  config.run_dram = false;

  tbi::sim::PipelineResult direct, interleaved;
  const auto* device = tbi::dram::find_config(cli.get("device", "LPDDR5-8533"));
  try {
    // Same seed => same channel draws: the two systems see identical fades.
    config.interleaver = "none";
    direct = tbi::sim::run_pipeline(config);

    config.interleaver = "triangular";
    if (device != nullptr) {
      config.run_dram = true;
      config.device = *device;
      config.dram_max_bursts_per_phase = 0;  // one frame's triangle is small
    }
    interleaved = tbi::sim::run_pipeline(config);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  tbi::TextTable t("Optical downlink: coded performance over a bursty channel");
  t.set_header({"System", "Word Errors", "WER", "Frame Errors", "FER"});
  const auto add_row = [&t](const char* name, const tbi::sim::PipelineResult& r) {
    t.add_row({name, std::to_string(r.word_errors),
               tbi::TextTable::num(r.word_error_rate(), 5),
               std::to_string(r.frame_errors),
               tbi::TextTable::num(r.frame_error_rate(), 3)});
  };
  add_row("direct (no interleaver)", direct);
  add_row("triangular interleaver", interleaved);
  std::fputs(t.render().c_str(), stdout);

  std::printf("\nChannel corrupted %llu symbols in both systems; the interleaved\n"
              "decoder corrected %llu of them.\n",
              static_cast<unsigned long long>(direct.channel_symbol_errors),
              static_cast<unsigned long long>(interleaved.corrected_symbols));

  if (interleaved.dram_ran) {
    std::printf(
        "\nDRAM feasibility on %s: optimized mapping sustains %.1f Gbit/s\n"
        "interleaver throughput (%.1f Gbit/s peak, %.1f %% min utilization).\n",
        device->name.c_str(), interleaved.dram_throughput_gbps,
        device->peak_bandwidth_gbps(), 100.0 * interleaved.dram.min_utilization());
  }
  return 0;
}
