/// \file optical_downlink.cpp
/// End-to-end optical LEO downlink demonstration (the paper's motivating
/// scenario, §I): Reed-Solomon-coded frames stream through the triangular
/// block interleaver and a correlated-fading channel with millisecond
/// coherence. Compares the frame error rate with and without interleaving
/// and reports the DRAM bandwidth the interleaver needs at link rate.
///
/// Code words are framed one per triangle row (shortened RS(255,223), as
/// the stage-1 SRAM interleaver of the two-stage scheme would arrange
/// them), so a channel fade of many consecutive transmitted symbols lands
/// as a few symbols per code word.
///
/// Usage: optical_downlink [--frames N] [--fade-prob P] [--burst-symbols B]
///                         [--seed S] [--device NAME]
#include <cstdio>
#include <vector>

#include "channel/gilbert_elliott.hpp"
#include "common/cli.hpp"
#include "common/mathutil.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "dram/standards.hpp"
#include "fec/reed_solomon.hpp"
#include "interleaver/triangular.hpp"
#include "sim/runner.hpp"

namespace {

constexpr std::uint64_t kSide = 255;
constexpr unsigned kParity = 32;

const tbi::fec::ReedSolomon& rs() {
  static const tbi::fec::ReedSolomon codec(255, 223);
  return codec;
}

struct Frame {
  std::vector<std::vector<std::uint8_t>> row_data;
  std::vector<std::uint8_t> stream;
};

Frame make_frame(tbi::Rng& rng) {
  Frame f;
  f.stream.resize(tbi::triangular_number(kSide));
  f.row_data.resize(kSide);
  std::uint64_t pos = 0;
  for (std::uint64_t i = 0; i < kSide; ++i) {
    const std::uint64_t len = tbi::tri_row_length(kSide, i);
    if (len <= kParity) {
      pos += len;
      continue;
    }
    std::vector<std::uint8_t> data(len - kParity);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_u64());
    f.row_data[i] = data;
    std::vector<std::uint8_t> full(rs().k(), 0);
    std::copy(data.begin(), data.end(), full.begin() + static_cast<long>(i));
    const auto word = rs().encode(full);
    std::copy(word.begin() + static_cast<long>(i), word.end(),
              f.stream.begin() + static_cast<long>(pos));
    pos += len;
  }
  return f;
}

unsigned count_word_failures(const Frame& f, const std::vector<std::uint8_t>& rx) {
  unsigned failures = 0;
  std::uint64_t pos = 0;
  for (std::uint64_t i = 0; i < kSide; ++i) {
    const std::uint64_t len = tbi::tri_row_length(kSide, i);
    if (!f.row_data[i].empty()) {
      std::vector<std::uint8_t> word(i, 0);
      word.insert(word.end(), rx.begin() + static_cast<long>(pos),
                  rx.begin() + static_cast<long>(pos + len));
      const auto res = rs().decode(word);
      if (!res.ok ||
          !std::equal(f.row_data[i].begin(), f.row_data[i].end(),
                      word.begin() + static_cast<long>(i))) {
        ++failures;
      }
    }
    pos += len;
  }
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  tbi::CliParser cli("optical_downlink",
                     "coded LEO downlink with/without triangular interleaving");
  cli.add_option("frames", "n", "number of frames to simulate (default 40)");
  cli.add_option("fade-prob", "p", "stationary fade duty cycle (default 0.02)");
  cli.add_option("burst-symbols", "b", "mean fade length in symbols (default 400)");
  cli.add_option("seed", "s", "RNG seed (default 1)");
  cli.add_option("device", "name", "DRAM device for the bandwidth check");
  if (!cli.parse(argc, argv)) {
    std::fprintf(stderr, "error: %s\n%s", cli.error().c_str(), cli.usage().c_str());
    return 1;
  }
  if (cli.has("help")) {
    std::fputs(cli.usage().c_str(), stdout);
    return 0;
  }

  const auto frames = static_cast<unsigned>(cli.get_int("frames", 40));
  const double fade_prob = cli.get_double("fade-prob", 0.02);
  const double burst = cli.get_double("burst-symbols", 400);
  tbi::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 1)));

  const tbi::interleaver::TriangularInterleaver tri(kSide);
  const auto params = tbi::channel::GilbertElliottParams::from_burst_profile(
      burst, fade_prob, 0.5, 8);

  unsigned direct_failures = 0, interleaved_failures = 0;
  unsigned direct_frames = 0, interleaved_frames = 0;
  std::uint64_t words_per_frame = 0;

  for (unsigned fidx = 0; fidx < frames; ++fidx) {
    const std::uint64_t channel_seed = rng.next_u64();
    for (const bool interleave : {false, true}) {
      Frame f = make_frame(rng);
      auto tx = interleave ? tri.interleave(f.stream) : f.stream;
      tbi::Rng channel_rng(channel_seed);  // same fades for both systems
      tbi::channel::GilbertElliottChannel ch(params);
      ch.apply(tx, channel_rng);
      const auto rx = interleave ? tri.deinterleave(tx) : tx;
      const unsigned failures = count_word_failures(f, rx);
      if (interleave) {
        interleaved_failures += failures;
        interleaved_frames += failures != 0;
      } else {
        direct_failures += failures;
        direct_frames += failures != 0;
      }
    }
    words_per_frame = kSide - kParity;
  }

  tbi::TextTable t("Optical downlink: coded performance over a bursty channel");
  t.set_header({"System", "Word Errors", "WER", "Frame Errors", "FER"});
  const double words_total = static_cast<double>(words_per_frame) * frames;
  t.add_row({"direct (no interleaver)", std::to_string(direct_failures),
             tbi::TextTable::num(direct_failures / words_total, 5),
             std::to_string(direct_frames),
             tbi::TextTable::num(static_cast<double>(direct_frames) / frames, 3)});
  t.add_row({"triangular interleaver", std::to_string(interleaved_failures),
             tbi::TextTable::num(interleaved_failures / words_total, 5),
             std::to_string(interleaved_frames),
             tbi::TextTable::num(static_cast<double>(interleaved_frames) / frames, 3)});
  std::fputs(t.render().c_str(), stdout);

  // DRAM side: what the interleaver needs from memory at link rate.
  const auto* device = tbi::dram::find_config(cli.get("device", "LPDDR5-8533"));
  if (device != nullptr) {
    tbi::sim::RunConfig rc;
    rc.device = *device;
    rc.mapping_spec = "optimized";
    rc.side = tbi::sim::paper_side_for(*device);
    rc.max_bursts_per_phase = 40000;
    const auto run = tbi::sim::run_interleaver(rc);
    std::printf(
        "\nDRAM feasibility on %s: optimized mapping sustains %.1f Gbit/s\n"
        "interleaver throughput (%.1f Gbit/s peak, %.1f %% min utilization).\n",
        device->name.c_str(), run.throughput_gbps(device->burst_bytes),
        device->peak_bandwidth_gbps(), 100.0 * run.min_utilization());
  }
  return 0;
}
