#include "common/json.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>

namespace tbi {
namespace {

TEST(Json, ParseScalars) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_EQ(Json::parse("true").as_bool(), true);
  EXPECT_EQ(Json::parse("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(Json::parse("3.5").as_double(), 3.5);
  EXPECT_EQ(Json::parse("-17").as_int(), -17);
  EXPECT_DOUBLE_EQ(Json::parse("1e3").as_double(), 1000.0);
  EXPECT_EQ(Json::parse("\"hi\"").as_string(), "hi");
}

TEST(Json, ParseNested) {
  const Json j = Json::parse(R"({"a": [1, 2, {"b": "x"}], "c": {"d": true}})");
  EXPECT_EQ(j.at("a").as_array().size(), 3u);
  EXPECT_EQ(j.at("a").as_array()[2].at("b").as_string(), "x");
  EXPECT_TRUE(j.at("c").at("d").as_bool());
}

TEST(Json, ParseEscapes) {
  const Json j = Json::parse(R"("line\nbreak\t\"q\" \\ A")");
  EXPECT_EQ(j.as_string(), "line\nbreak\t\"q\" \\ A");
}

TEST(Json, ParseWhitespaceTolerant) {
  const Json j = Json::parse(" {\n \"k\" :\t[ 1 ,2 ] }\r\n");
  EXPECT_EQ(j.at("k").as_array().size(), 2u);
}

TEST(Json, RejectsMalformed) {
  EXPECT_THROW(Json::parse(""), JsonError);
  EXPECT_THROW(Json::parse("{"), JsonError);
  EXPECT_THROW(Json::parse("[1,]"), JsonError);
  EXPECT_THROW(Json::parse("{\"a\" 1}"), JsonError);
  EXPECT_THROW(Json::parse("tru"), JsonError);
  EXPECT_THROW(Json::parse("1 2"), JsonError);
  EXPECT_THROW(Json::parse("\"unterminated"), JsonError);
}

TEST(Json, TypeErrorsThrow) {
  const Json j = Json::parse("{\"a\": 1}");
  EXPECT_THROW(j.as_array(), JsonError);
  EXPECT_THROW(j.at("missing"), JsonError);
  EXPECT_THROW(j.at("a").as_string(), JsonError);
}

TEST(Json, GetOrFallbacks) {
  const Json j = Json::parse(R"({"x": 2.5, "s": "v", "b": true})");
  EXPECT_DOUBLE_EQ(j.get_or("x", 0.0), 2.5);
  EXPECT_DOUBLE_EQ(j.get_or("y", 7.0), 7.0);
  EXPECT_EQ(j.get_or("s", std::string("d")), "v");
  EXPECT_EQ(j.get_or("t", std::string("d")), "d");
  EXPECT_TRUE(j.get_or("b", false));
  EXPECT_TRUE(j.get_or("nope", true));
}

TEST(Json, BuilderInterface) {
  Json j;
  j["name"] = "DDR4";
  j["banks"] = 16;
  Json arr;
  arr.push_back(1);
  arr.push_back("two");
  j["list"] = arr;
  EXPECT_EQ(j.at("name").as_string(), "DDR4");
  EXPECT_EQ(j.at("banks").as_int(), 16);
  EXPECT_EQ(j.at("list").as_array()[1].as_string(), "two");
}

TEST(Json, DumpParseRoundTrip) {
  const std::string src =
      R"({"arr":[1,2.5,"s",null,true],"num":-42,"obj":{"inner":[{"k":"v"}]}})";
  const Json j = Json::parse(src);
  const Json rt = Json::parse(j.dump());
  EXPECT_EQ(rt.at("num").as_int(), -42);
  EXPECT_EQ(rt.at("arr").as_array().size(), 5u);
  EXPECT_EQ(rt.at("obj").at("inner").as_array()[0].at("k").as_string(), "v");
  // Pretty printing parses back too.
  const Json rt2 = Json::parse(j.dump(2));
  EXPECT_EQ(rt2.at("arr").as_array()[2].as_string(), "s");
}

TEST(Json, DumpEscapesControlCharacters) {
  const Json j(std::string("a\nb\x01"));
  const std::string out = j.dump();
  EXPECT_NE(out.find("\\n"), std::string::npos);
  EXPECT_NE(out.find("\\u0001"), std::string::npos);
  EXPECT_EQ(Json::parse(out).as_string(), "a\nb\x01");
}

TEST(Json, IntegersDumpWithoutExponent) {
  EXPECT_EQ(Json(12500000).dump(), "12500000");
  EXPECT_EQ(Json(-3).dump(), "-3");
}

TEST(Json, NonFiniteDumpsAsNullAndRoundTrips) {
  // Regression: "%.17g" used to emit bare nan/inf tokens, which is not
  // JSON — the documents written by the benches were unloadable. Non-
  // finite numbers serialize as null and the result must stay parseable.
  EXPECT_EQ(Json(std::nan("")).dump(), "null");
  EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).dump(), "null");
  EXPECT_EQ(Json(-std::numeric_limits<double>::infinity()).dump(), "null");

  Json doc;
  doc["rate"] = Json(0.0 / 0.0);
  doc["ok"] = 1.5;
  const Json back = Json::parse(doc.dump(2));
  EXPECT_TRUE(back.at("rate").is_null());
  EXPECT_DOUBLE_EQ(back.at("ok").as_double(), 1.5);
}

TEST(Json, ParseRejectsNanAndInfWithClearError) {
  for (const char* text : {"nan", "-nan", "NaN", "inf", "-inf", "Infinity"}) {
    try {
      Json::parse(text);
      FAIL() << "parsed '" << text << "'";
    } catch (const JsonError& e) {
      EXPECT_NE(std::string(e.what()).find("not valid JSON"), std::string::npos)
          << text << ": " << e.what();
    }
  }
  // strtod saturates overflow to infinity; that must not sneak through.
  EXPECT_THROW(Json::parse("1e999"), JsonError);
  EXPECT_THROW(Json::parse("-1e999"), JsonError);
  EXPECT_THROW(Json::parse("[1, nan]"), JsonError);
}

TEST(Json, WriteFileFailureNeverTouchesExistingTarget) {
  Json doc;
  doc["x"] = 1;
  // Atomic replace: the document lands in a fsynced temp sibling and is
  // renamed over the target, so any failure — here procfs refusing the
  // temp file — must leave the existing target bytes untouched. (Don't
  // use /dev/full for this: rename-over-target would replace the device
  // node itself when running as root.)
  EXPECT_FALSE(Json::write_file("/proc/version", doc));
  std::ifstream in("/proc/version");
  std::string first;
  std::getline(in, first);
  EXPECT_NE(first, "{") << "write_file failure clobbered the target";
  EXPECT_FALSE(Json::write_file("/no/such/dir/out.json", doc));
}

TEST(Json, WriteThenReadFileRoundTrips) {
  Json doc;
  doc["name"] = "round-trip";
  doc["values"].push_back(1);
  doc["values"].push_back(2.5);
  const std::string path = ::testing::TempDir() + "json_roundtrip_test.json";
  ASSERT_TRUE(Json::write_file(path, doc));
  const Json back = Json::read_file(path);
  EXPECT_EQ(back.at("name").as_string(), "round-trip");
  EXPECT_EQ(back.at("values").as_array().size(), 2u);
  EXPECT_DOUBLE_EQ(back.at("values").as_array()[1].as_double(), 2.5);
  std::remove(path.c_str());
  EXPECT_THROW(Json::read_file(path), JsonError);
}

TEST(Json, WriteFileIsAtomicNoTempLeftoverAndOverwrites) {
  const std::string path = ::testing::TempDir() + "json_atomic_test.json";
  std::remove(path.c_str());

  Json first;
  first["generation"] = 1;
  ASSERT_TRUE(Json::write_file(path, first));
  Json second;
  second["generation"] = 2;
  ASSERT_TRUE(Json::write_file(path, second));  // replace, not append

  const Json back = Json::read_file(path);
  EXPECT_EQ(back.at("generation").as_double(), 2);

  // The temp file (path + ".<pid>.tmp") must have been renamed away.
  const std::string temp = path + "." + std::to_string(::getpid()) + ".tmp";
  std::ifstream leftover(temp);
  EXPECT_FALSE(leftover.good()) << "temp file left behind: " << temp;
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tbi
