#include "common/wire.hpp"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <string>
#include <vector>

namespace tbi::wire {
namespace {

using Status = FrameReader::Status;

class SocketPair : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds_), 0);
  }
  void TearDown() override {
    if (fds_[0] >= 0) ::close(fds_[0]);
    if (fds_[1] >= 0) ::close(fds_[1]);
  }
  void close_writer() {
    ::close(fds_[1]);
    fds_[1] = -1;
  }
  void close_reader() {
    ::close(fds_[0]);
    fds_[0] = -1;
  }
  int reader() const { return fds_[0]; }
  int writer() const { return fds_[1]; }

 private:
  int fds_[2] = {-1, -1};
};

TEST(WireCrc32, MatchesKnownVector) {
  // The canonical zlib check value: crc32("123456789") == 0xCBF43926.
  const std::string s = "123456789";
  EXPECT_EQ(crc32(reinterpret_cast<const std::uint8_t*>(s.data()), s.size()),
            0xCBF43926u);
}

TEST_F(SocketPair, RoundTripsFramesInOrder) {
  ASSERT_TRUE(write_frame(writer(), FrameType::JobConfig, "{\"kernel\":\"x\"}"));
  ASSERT_TRUE(write_frame(writer(), FrameType::Assign, "42"));
  ASSERT_TRUE(write_frame(writer(), FrameType::Heartbeat, ""));

  FrameReader r;
  Frame f;
  ASSERT_EQ(read_frame(reader(), r, &f), Status::Frame);
  EXPECT_EQ(f.type, FrameType::JobConfig);
  EXPECT_EQ(f.payload_str(), "{\"kernel\":\"x\"}");
  ASSERT_EQ(read_frame(reader(), r, &f), Status::Frame);
  EXPECT_EQ(f.type, FrameType::Assign);
  EXPECT_EQ(f.payload_str(), "42");
  ASSERT_EQ(read_frame(reader(), r, &f), Status::Frame);
  EXPECT_EQ(f.type, FrameType::Heartbeat);
  EXPECT_TRUE(f.payload.empty());
}

TEST_F(SocketPair, DecodesFramesSplitAcrossArbitraryWrites) {
  // Stream two frames byte by byte: the incremental reader must never
  // depend on message boundaries surviving the transport.
  const auto a = encode_frame(FrameType::Record, std::string("payload-one"));
  const auto b = encode_frame(FrameType::Done, std::string(""));
  std::vector<std::uint8_t> stream = a;
  stream.insert(stream.end(), b.begin(), b.end());

  FrameReader r;
  Frame f;
  int frames = 0;
  for (const std::uint8_t byte : stream) {
    ASSERT_EQ(::write(writer(), &byte, 1), 1);
    ASSERT_EQ(r.pump(reader()), Status::NeedMore);
    Status st;
    while ((st = r.next(&f)) == Status::Frame) {
      ++frames;
      if (frames == 1) {
        EXPECT_EQ(f.type, FrameType::Record);
        EXPECT_EQ(f.payload_str(), "payload-one");
      }
    }
    ASSERT_EQ(st, Status::NeedMore);
  }
  EXPECT_EQ(frames, 2);
  EXPECT_EQ(f.type, FrameType::Done);
}

TEST_F(SocketPair, RejectsCorruptedPayload) {
  auto bytes = encode_frame(FrameType::Record, std::string("{\"cell\":1}"));
  bytes[kHeaderBytes + 2] ^= 0xFF;  // flip a payload byte, CRC now stale
  ASSERT_TRUE(write_all(writer(), bytes.data(), bytes.size()));

  FrameReader r;
  Frame f;
  EXPECT_EQ(read_frame(reader(), r, &f), Status::Corrupt);
  EXPECT_TRUE(r.corrupt());
  // The corrupt state is sticky: the stream cannot be resynchronized.
  EXPECT_EQ(r.next(&f), Status::Corrupt);
}

TEST_F(SocketPair, RejectsBadMagic) {
  auto bytes = encode_frame(FrameType::Record, std::string("x"));
  bytes[0] ^= 0x01;
  ASSERT_TRUE(write_all(writer(), bytes.data(), bytes.size()));

  FrameReader r;
  Frame f;
  EXPECT_EQ(read_frame(reader(), r, &f), Status::Corrupt);
}

TEST_F(SocketPair, RejectsOversizeLength) {
  auto bytes = encode_frame(FrameType::Record, std::string("x"));
  // Patch the length field (bytes 5..8, LE) past kMaxPayload.
  const std::uint32_t huge = kMaxPayload + 1;
  bytes[5] = static_cast<std::uint8_t>(huge);
  bytes[6] = static_cast<std::uint8_t>(huge >> 8);
  bytes[7] = static_cast<std::uint8_t>(huge >> 16);
  bytes[8] = static_cast<std::uint8_t>(huge >> 24);
  ASSERT_TRUE(write_all(writer(), bytes.data(), bytes.size()));

  FrameReader r;
  Frame f;
  EXPECT_EQ(read_frame(reader(), r, &f), Status::Corrupt);
}

TEST_F(SocketPair, TruncatedFrameSurfacesAsEof) {
  const auto bytes = encode_frame(FrameType::Record, std::string("truncate-me"));
  // A worker that dies mid-write leaves half a frame; the reader must
  // report EOF, never a phantom frame.
  ASSERT_TRUE(write_all(writer(), bytes.data(), bytes.size() / 2));
  close_writer();

  FrameReader r;
  Frame f;
  EXPECT_EQ(read_frame(reader(), r, &f), Status::Eof);
}

TEST_F(SocketPair, DrainsCompleteFrameArrivingWithEof) {
  const auto bytes = encode_frame(FrameType::Record, std::string("last-words"));
  ASSERT_TRUE(write_all(writer(), bytes.data(), bytes.size()));
  close_writer();

  FrameReader r;
  Frame f;
  ASSERT_EQ(read_frame(reader(), r, &f), Status::Frame);
  EXPECT_EQ(f.payload_str(), "last-words");
  EXPECT_EQ(read_frame(reader(), r, &f), Status::Eof);
}

TEST_F(SocketPair, WriteToClosedPeerFailsInsteadOfSignaling) {
  close_reader();
  // Without MSG_NOSIGNAL this would raise SIGPIPE and kill the test.
  const auto bytes = encode_frame(FrameType::Heartbeat, std::string(""));
  bool ok = true;
  for (int i = 0; i < 64 && ok; ++i) {
    ok = write_all(writer(), bytes.data(), bytes.size());
  }
  EXPECT_FALSE(ok);
}

}  // namespace
}  // namespace tbi::wire
