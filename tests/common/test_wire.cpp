#include "common/wire.hpp"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <random>
#include <string>
#include <vector>

namespace tbi::wire {
namespace {

using Status = FrameReader::Status;

class SocketPair : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds_), 0);
  }
  void TearDown() override {
    if (fds_[0] >= 0) ::close(fds_[0]);
    if (fds_[1] >= 0) ::close(fds_[1]);
  }
  void close_writer() {
    ::close(fds_[1]);
    fds_[1] = -1;
  }
  void close_reader() {
    ::close(fds_[0]);
    fds_[0] = -1;
  }
  int reader() const { return fds_[0]; }
  int writer() const { return fds_[1]; }

 private:
  int fds_[2] = {-1, -1};
};

TEST(WireCrc32, MatchesKnownVector) {
  // The canonical zlib check value: crc32("123456789") == 0xCBF43926.
  const std::string s = "123456789";
  EXPECT_EQ(crc32(reinterpret_cast<const std::uint8_t*>(s.data()), s.size()),
            0xCBF43926u);
}

TEST_F(SocketPair, RoundTripsFramesInOrder) {
  ASSERT_TRUE(write_frame(writer(), FrameType::JobConfig, "{\"kernel\":\"x\"}"));
  ASSERT_TRUE(write_frame(writer(), FrameType::Assign, "42"));
  ASSERT_TRUE(write_frame(writer(), FrameType::Heartbeat, ""));

  FrameReader r;
  Frame f;
  ASSERT_EQ(read_frame(reader(), r, &f), Status::Frame);
  EXPECT_EQ(f.type, FrameType::JobConfig);
  EXPECT_EQ(f.payload_str(), "{\"kernel\":\"x\"}");
  ASSERT_EQ(read_frame(reader(), r, &f), Status::Frame);
  EXPECT_EQ(f.type, FrameType::Assign);
  EXPECT_EQ(f.payload_str(), "42");
  ASSERT_EQ(read_frame(reader(), r, &f), Status::Frame);
  EXPECT_EQ(f.type, FrameType::Heartbeat);
  EXPECT_TRUE(f.payload.empty());
}

TEST_F(SocketPair, DecodesFramesSplitAcrossArbitraryWrites) {
  // Stream two frames byte by byte: the incremental reader must never
  // depend on message boundaries surviving the transport.
  const auto a = encode_frame(FrameType::Record, std::string("payload-one"));
  const auto b = encode_frame(FrameType::Done, std::string(""));
  std::vector<std::uint8_t> stream = a;
  stream.insert(stream.end(), b.begin(), b.end());

  FrameReader r;
  Frame f;
  int frames = 0;
  for (const std::uint8_t byte : stream) {
    ASSERT_EQ(::write(writer(), &byte, 1), 1);
    ASSERT_EQ(r.pump(reader()), Status::NeedMore);
    Status st;
    while ((st = r.next(&f)) == Status::Frame) {
      ++frames;
      if (frames == 1) {
        EXPECT_EQ(f.type, FrameType::Record);
        EXPECT_EQ(f.payload_str(), "payload-one");
      }
    }
    ASSERT_EQ(st, Status::NeedMore);
  }
  EXPECT_EQ(frames, 2);
  EXPECT_EQ(f.type, FrameType::Done);
}

TEST_F(SocketPair, RejectsCorruptedPayload) {
  auto bytes = encode_frame(FrameType::Record, std::string("{\"cell\":1}"));
  bytes[kHeaderBytes + 2] ^= 0xFF;  // flip a payload byte, CRC now stale
  ASSERT_TRUE(write_all(writer(), bytes.data(), bytes.size()));

  FrameReader r;
  Frame f;
  EXPECT_EQ(read_frame(reader(), r, &f), Status::Corrupt);
  EXPECT_TRUE(r.corrupt());
  // The corrupt state is sticky: the stream cannot be resynchronized.
  EXPECT_EQ(r.next(&f), Status::Corrupt);
}

TEST_F(SocketPair, RejectsBadMagic) {
  auto bytes = encode_frame(FrameType::Record, std::string("x"));
  bytes[0] ^= 0x01;
  ASSERT_TRUE(write_all(writer(), bytes.data(), bytes.size()));

  FrameReader r;
  Frame f;
  EXPECT_EQ(read_frame(reader(), r, &f), Status::Corrupt);
}

TEST_F(SocketPair, RejectsOversizeLength) {
  auto bytes = encode_frame(FrameType::Record, std::string("x"));
  // Patch the length field (bytes 5..8, LE) past kMaxPayload.
  const std::uint32_t huge = kMaxPayload + 1;
  bytes[5] = static_cast<std::uint8_t>(huge);
  bytes[6] = static_cast<std::uint8_t>(huge >> 8);
  bytes[7] = static_cast<std::uint8_t>(huge >> 16);
  bytes[8] = static_cast<std::uint8_t>(huge >> 24);
  ASSERT_TRUE(write_all(writer(), bytes.data(), bytes.size()));

  FrameReader r;
  Frame f;
  EXPECT_EQ(read_frame(reader(), r, &f), Status::Corrupt);
}

TEST_F(SocketPair, TruncatedFrameSurfacesAsEof) {
  const auto bytes = encode_frame(FrameType::Record, std::string("truncate-me"));
  // A worker that dies mid-write leaves half a frame; the reader must
  // report EOF, never a phantom frame.
  ASSERT_TRUE(write_all(writer(), bytes.data(), bytes.size() / 2));
  close_writer();

  FrameReader r;
  Frame f;
  EXPECT_EQ(read_frame(reader(), r, &f), Status::Eof);
}

TEST_F(SocketPair, DrainsCompleteFrameArrivingWithEof) {
  const auto bytes = encode_frame(FrameType::Record, std::string("last-words"));
  ASSERT_TRUE(write_all(writer(), bytes.data(), bytes.size()));
  close_writer();

  FrameReader r;
  Frame f;
  ASSERT_EQ(read_frame(reader(), r, &f), Status::Frame);
  EXPECT_EQ(f.payload_str(), "last-words");
  EXPECT_EQ(read_frame(reader(), r, &f), Status::Eof);
}

TEST_F(SocketPair, CrcCoversTheTypeField) {
  // Protocol v2: the CRC spans type + length + payload. Flipping the
  // type byte leaves the payload CRC-clean, so only header coverage
  // catches it — v1 would have happily delivered a Record as a Done.
  auto bytes = encode_frame(FrameType::Record, std::string("{\"cell\":1}"));
  bytes[4] ^= 0x10;
  ASSERT_TRUE(write_all(writer(), bytes.data(), bytes.size()));

  FrameReader r;
  Frame f;
  EXPECT_EQ(read_frame(reader(), r, &f), Status::Corrupt);
  EXPECT_TRUE(r.corrupt());
}

TEST_F(SocketPair, CrcCoversTheLengthField) {
  // Shrink the length field by one: the truncated "payload" is still a
  // plausible frame shape, so only the CRC over the length can reject it.
  auto bytes = encode_frame(FrameType::Record, std::string("abc"));
  bytes[5] = 2;
  ASSERT_TRUE(write_all(writer(), bytes.data(), bytes.size()));

  FrameReader r;
  Frame f;
  EXPECT_EQ(read_frame(reader(), r, &f), Status::Corrupt);
}

TEST_F(SocketPair, WriteToClosedPeerFailsInsteadOfSignaling) {
  close_reader();
  // Without MSG_NOSIGNAL this would raise SIGPIPE and kill the test.
  const auto bytes = encode_frame(FrameType::Heartbeat, std::string(""));
  bool ok = true;
  for (int i = 0; i < 64 && ok; ++i) {
    ok = write_all(writer(), bytes.data(), bytes.size());
  }
  EXPECT_FALSE(ok);
}

// ---------------------------------------------------------------------------
// Fuzz: the reader must be byte-boundary-agnostic and corruption-tight.
// Deterministic seeds — these are regression tests, not a CI lottery.
// ---------------------------------------------------------------------------

std::vector<std::string> random_payloads(std::mt19937& rng, int count,
                                         std::size_t max_len) {
  std::vector<std::string> payloads;
  for (int i = 0; i < count; ++i) {
    std::string p(rng() % (max_len + 1), '\0');
    for (auto& c : p) c = static_cast<char>(rng() & 0xFF);
    payloads.push_back(std::move(p));
  }
  return payloads;
}

std::vector<std::uint8_t> encode_stream(const std::vector<std::string>& payloads) {
  std::vector<std::uint8_t> all;
  for (const auto& p : payloads) {
    const auto e = encode_frame(FrameType::Record, p);
    all.insert(all.end(), e.begin(), e.end());
  }
  return all;
}

TEST_F(SocketPair, FuzzRandomSlicedWritesDecodeEveryFrameExactly) {
  // EINTR/short-read hardening: ship 32 frames in random 1..7-byte
  // slices, pumping between slices so the reader sees every boundary.
  std::mt19937 rng(0x5EED0001);
  const auto payloads = random_payloads(rng, 32, 200);
  const auto all = encode_stream(payloads);

  FrameReader r;
  Frame f;
  std::size_t off = 0;
  std::size_t got = 0;
  while (off < all.size()) {
    const std::size_t n = std::min<std::size_t>(1 + rng() % 7, all.size() - off);
    ASSERT_TRUE(write_all(writer(), all.data() + off, n));
    off += n;
    ASSERT_NE(r.pump(reader()), Status::Eof);
    Status st;
    while ((st = r.next(&f)) == Status::Frame) {
      ASSERT_LT(got, payloads.size());
      ASSERT_EQ(f.payload_str(), payloads[got]);
      ++got;
    }
    ASSERT_EQ(st, Status::NeedMore);
  }
  close_writer();
  Status st;
  while ((st = read_frame(reader(), r, &f)) == Status::Frame) {
    ASSERT_LT(got, payloads.size());
    ASSERT_EQ(f.payload_str(), payloads[got]);
    ++got;
  }
  EXPECT_EQ(st, Status::Eof);
  EXPECT_EQ(got, payloads.size());
}

TEST(WireFuzz, SingleBitCorruptionNeverYieldsAPhantomFrame) {
  // Flip one random bit anywhere in an 8-frame stream (header, CRC or
  // payload — every byte is covered) and deliver it in random slices.
  // The decoded frames must be the exact clean prefix before the flipped
  // frame; the stream must then end Corrupt (sticky) or Eof, never a
  // wrong or extra frame.
  std::mt19937 rng(0x5EED0002);
  for (int trial = 0; trial < 40; ++trial) {
    const auto payloads = random_payloads(rng, 8, 60);
    auto all = encode_stream(payloads);

    // Locate which frame the flipped byte belongs to.
    const std::size_t flip_at = rng() % all.size();
    all[flip_at] ^= static_cast<std::uint8_t>(1u << (rng() % 8));
    std::size_t clean_prefix = 0;
    for (std::size_t pos = 0; clean_prefix < payloads.size(); ++clean_prefix) {
      const std::size_t frame_end =
          pos + kHeaderBytes + payloads[clean_prefix].size();
      if (flip_at < frame_end) break;
      pos = frame_end;
    }

    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    std::size_t off = 0;
    while (off < all.size()) {
      const std::size_t n = std::min<std::size_t>(1 + rng() % 7, all.size() - off);
      ASSERT_TRUE(write_all(fds[1], all.data() + off, n));
      off += n;
    }
    ::close(fds[1]);

    FrameReader r;
    Frame f;
    Status st;
    std::size_t got = 0;
    while ((st = read_frame(fds[0], r, &f)) == Status::Frame) {
      ASSERT_LT(got, clean_prefix) << "trial " << trial << ": frame decoded "
                                   << "past the corrupted byte";
      ASSERT_EQ(f.payload_str(), payloads[got]) << "trial " << trial;
      ++got;
    }
    EXPECT_EQ(got, clean_prefix) << "trial " << trial;
    EXPECT_TRUE(st == Status::Corrupt || st == Status::Eof) << "trial " << trial;
    if (st == Status::Corrupt) {
      // Sticky: a poisoned stream can never produce another frame.
      EXPECT_EQ(r.next(&f), Status::Corrupt);
    }
    ::close(fds[0]);
  }
}

}  // namespace
}  // namespace tbi::wire
