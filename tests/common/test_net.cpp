/// \file test_net.cpp
/// TCP plumbing tests for the fleet transport: address parsing,
/// listen/accept/connect round trips carrying real wire frames, bounded
/// connect failure, and the SIGPIPE-ignored guarantee the driver and
/// workers rely on when a peer dies mid-write.
#include "common/net.hpp"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <string>

#include "common/wire.hpp"

namespace tbi::net {
namespace {

TEST(NetSplitHostport, SplitsAtTheLastColon) {
  std::string host, port, err;
  ASSERT_TRUE(split_hostport("127.0.0.1:8080", &host, &port, &err)) << err;
  EXPECT_EQ(host, "127.0.0.1");
  EXPECT_EQ(port, "8080");
}

TEST(NetSplitHostport, EmptyHostMeansWildcard) {
  std::string host, port, err;
  ASSERT_TRUE(split_hostport(":0", &host, &port, &err)) << err;
  EXPECT_EQ(host, "");
  EXPECT_EQ(port, "0");
}

TEST(NetSplitHostport, BracketedIpv6LiteralKeepsItsColons) {
  std::string host, port, err;
  ASSERT_TRUE(split_hostport("[::1]:443", &host, &port, &err)) << err;
  EXPECT_EQ(host, "::1");
  EXPECT_EQ(port, "443");
}

TEST(NetSplitHostport, RejectsMissingOrBadPort) {
  std::string host, port, err;
  EXPECT_FALSE(split_hostport("localhost", &host, &port, &err));
  EXPECT_FALSE(err.empty());
  EXPECT_FALSE(split_hostport("host:notaport", &host, &port, &err));
  EXPECT_FALSE(split_hostport("host:", &host, &port, &err));
  EXPECT_FALSE(split_hostport("host:70000", &host, &port, &err));
}

TEST(NetTcp, ListenConnectAcceptRoundTripsAWireFrame) {
  std::string err;
  const int lfd = listen_tcp("127.0.0.1:0", &err);
  ASSERT_GE(lfd, 0) << err;
  const std::uint16_t port = local_port(lfd);
  ASSERT_NE(port, 0);

  const std::string spec = "127.0.0.1:" + std::to_string(port);
  const int cfd = connect_tcp(spec, 2000, &err);
  ASSERT_GE(cfd, 0) << err;

  // The listener is nonblocking: poll until the connection lands.
  int afd = -1;
  for (int i = 0; i < 400 && afd < 0; ++i) {
    afd = accept_tcp(lfd);
    if (afd < 0) ::usleep(5000);
  }
  ASSERT_GE(afd, 0);
  set_nonblocking(afd, false);

  ASSERT_TRUE(wire::write_frame(cfd, wire::FrameType::Hello, "{\"proto\":2}"));
  wire::FrameReader r;
  wire::Frame f;
  ASSERT_EQ(wire::read_frame(afd, r, &f), wire::FrameReader::Status::Frame);
  EXPECT_EQ(f.type, wire::FrameType::Hello);
  EXPECT_EQ(f.payload_str(), "{\"proto\":2}");

  ::close(afd);
  ::close(cfd);
  ::close(lfd);
}

TEST(NetTcp, AcceptWithNothingPendingReturnsMinusOne) {
  std::string err;
  const int lfd = listen_tcp("127.0.0.1:0", &err);
  ASSERT_GE(lfd, 0) << err;
  EXPECT_EQ(accept_tcp(lfd), -1);
  ::close(lfd);
}

TEST(NetTcp, ConnectToDeadPortFailsWithError) {
  // Bind an ephemeral port, then close it: nobody listens there anymore.
  std::string err;
  const int lfd = listen_tcp("127.0.0.1:0", &err);
  ASSERT_GE(lfd, 0) << err;
  const std::uint16_t port = local_port(lfd);
  ::close(lfd);

  err.clear();
  const int fd = connect_tcp("127.0.0.1:" + std::to_string(port), 500, &err);
  EXPECT_EQ(fd, -1);
  EXPECT_FALSE(err.empty());
}

TEST(NetTcp, ListenOnMalformedSpecFails) {
  std::string err;
  EXPECT_EQ(listen_tcp("no-port-here", &err), -1);
  EXPECT_FALSE(err.empty());
}

TEST(NetTcp, ListenOnForeignAddressFails) {
  // 192.0.2.0/24 is TEST-NET-1: never assigned to a local interface, so
  // the bind must fail instead of silently listening elsewhere.
  std::string err;
  EXPECT_EQ(listen_tcp("192.0.2.1:0", &err), -1);
  EXPECT_FALSE(err.empty());
}

TEST(NetTcp, LocalPortOnBadFdIsZero) {
  EXPECT_EQ(local_port(-1), 0);
}

TEST(NetSigpipe, RawWriteToClosedPeerFailsWithEpipeNotASignal) {
  // The driver and workers both call ignore_sigpipe() on entry; a raw
  // write(2) to a dead peer must then surface EPIPE — without the
  // handler this test would die on SIGPIPE, not fail an expectation.
  ignore_sigpipe();
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ::close(fds[0]);

  const char byte = 'x';
  ssize_t n = 0;
  for (int i = 0; i < 64; ++i) {
    n = ::write(fds[1], &byte, 1);
    if (n < 0) break;
  }
  EXPECT_LT(n, 0);
  EXPECT_EQ(errno, EPIPE);
  ::close(fds[1]);
}

}  // namespace
}  // namespace tbi::net
