#include "common/bits.hpp"

#include <gtest/gtest.h>

namespace tbi {
namespace {

TEST(Bits, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(1ULL << 63));
  EXPECT_FALSE(is_pow2((1ULL << 63) + 1));
}

TEST(Bits, Ilog2KnownValues) {
  EXPECT_EQ(ilog2(1), 0u);
  EXPECT_EQ(ilog2(2), 1u);
  EXPECT_EQ(ilog2(3), 1u);
  EXPECT_EQ(ilog2(4), 2u);
  EXPECT_EQ(ilog2(255), 7u);
  EXPECT_EQ(ilog2(256), 8u);
  EXPECT_EQ(ilog2(~0ULL), 63u);
}

TEST(Bits, Clog2RoundsUp) {
  EXPECT_EQ(clog2(1), 0u);
  EXPECT_EQ(clog2(2), 1u);
  EXPECT_EQ(clog2(3), 2u);
  EXPECT_EQ(clog2(4), 2u);
  EXPECT_EQ(clog2(5), 3u);
  EXPECT_EQ(clog2(1ULL << 40), 40u);
  EXPECT_EQ(clog2((1ULL << 40) + 1), 41u);
}

TEST(Bits, CeilPow2) {
  EXPECT_EQ(ceil_pow2(1), 1u);
  EXPECT_EQ(ceil_pow2(3), 4u);
  EXPECT_EQ(ceil_pow2(4), 4u);
  EXPECT_EQ(ceil_pow2(1000), 1024u);
}

TEST(Bits, LowMask) {
  EXPECT_EQ(low_mask(0), 0u);
  EXPECT_EQ(low_mask(1), 1u);
  EXPECT_EQ(low_mask(8), 0xFFu);
  EXPECT_EQ(low_mask(63), (1ULL << 63) - 1);
}

TEST(Bits, ExtractDepositRoundTrip) {
  const std::uint64_t v = 0xDEADBEEFCAFEBABEULL;
  for (unsigned pos = 0; pos < 64; pos += 7) {
    for (unsigned cnt = 1; cnt + pos <= 64; cnt += 9) {
      const std::uint64_t field = extract_bits(v, pos, cnt);
      const std::uint64_t rebuilt = deposit_bits(v, pos, cnt, field);
      EXPECT_EQ(rebuilt, v) << "pos=" << pos << " cnt=" << cnt;
    }
  }
}

TEST(Bits, DepositOverwrites) {
  EXPECT_EQ(deposit_bits(0xFF00, 4, 4, 0xA), 0xFFA0u);
  EXPECT_EQ(deposit_bits(0, 60, 4, 0xF), 0xF000000000000000ULL);
}

TEST(Bits, Parity) {
  EXPECT_EQ(parity(0), 0u);
  EXPECT_EQ(parity(1), 1u);
  EXPECT_EQ(parity(3), 0u);
  EXPECT_EQ(parity(7), 1u);
  EXPECT_EQ(parity(0xFFFFFFFFFFFFFFFFULL), 0u);
}

TEST(Bits, ReverseBits) {
  EXPECT_EQ(reverse_bits(0b001, 3), 0b100u);
  EXPECT_EQ(reverse_bits(0b110, 3), 0b011u);
  EXPECT_EQ(reverse_bits(0x1, 64), 1ULL << 63);
  // Involution property on a sample of widths/values.
  for (unsigned n : {1u, 5u, 17u, 33u, 64u}) {
    for (std::uint64_t v : {0ULL, 1ULL, 0x123456789ABCDEFULL}) {
      const std::uint64_t masked = n == 64 ? v : (v & low_mask(n));
      EXPECT_EQ(reverse_bits(reverse_bits(masked, n), n), masked);
    }
  }
}

}  // namespace
}  // namespace tbi
