#include "common/mathutil.hpp"

#include <gtest/gtest.h>

namespace tbi {
namespace {

TEST(MathUtil, DivCeil) {
  EXPECT_EQ(div_ceil(0, 4), 0u);
  EXPECT_EQ(div_ceil(1, 4), 1u);
  EXPECT_EQ(div_ceil(4, 4), 1u);
  EXPECT_EQ(div_ceil(5, 4), 2u);
}

TEST(MathUtil, RoundUp) {
  EXPECT_EQ(round_up(0, 8), 0u);
  EXPECT_EQ(round_up(1, 8), 8u);
  EXPECT_EQ(round_up(8, 8), 8u);
  EXPECT_EQ(round_up(9, 8), 16u);
}

TEST(MathUtil, TriangularNumber) {
  EXPECT_EQ(triangular_number(0), 0u);
  EXPECT_EQ(triangular_number(1), 1u);
  EXPECT_EQ(triangular_number(4), 10u);
  EXPECT_EQ(triangular_number(5000), 12502500u);  // the paper's 12.5 M
}

TEST(MathUtil, IsqrtExactAndFloor) {
  EXPECT_EQ(isqrt(0), 0u);
  EXPECT_EQ(isqrt(1), 1u);
  EXPECT_EQ(isqrt(3), 1u);
  EXPECT_EQ(isqrt(4), 2u);
  EXPECT_EQ(isqrt(15), 3u);
  EXPECT_EQ(isqrt(16), 4u);
  EXPECT_EQ(isqrt(1ULL << 62), 1ULL << 31);
  for (std::uint64_t v = 0; v < 3000; ++v) {
    const std::uint64_t r = isqrt(v);
    EXPECT_LE(r * r, v);
    EXPECT_GT((r + 1) * (r + 1), v);
  }
}

TEST(MathUtil, TriangularSideFor) {
  EXPECT_EQ(triangular_side_for(0), 0u);
  EXPECT_EQ(triangular_side_for(1), 1u);
  EXPECT_EQ(triangular_side_for(2), 2u);
  EXPECT_EQ(triangular_side_for(3), 2u);
  EXPECT_EQ(triangular_side_for(4), 3u);
  EXPECT_EQ(triangular_side_for(12502500), 5000u);
  EXPECT_EQ(triangular_side_for(12502501), 5001u);
  // Minimality property across a range.
  for (std::uint64_t e = 1; e < 5000; e += 13) {
    const std::uint64_t n = triangular_side_for(e);
    EXPECT_GE(triangular_number(n), e);
    EXPECT_LT(triangular_number(n - 1), e);
  }
}

TEST(MathUtil, TriRowOffsetMatchesCumulativeLengths) {
  const std::uint64_t n = 57;
  std::uint64_t acc = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    EXPECT_EQ(tri_row_offset(n, i), acc);
    acc += tri_row_length(n, i);
  }
  EXPECT_EQ(acc, triangular_number(n));
  EXPECT_EQ(tri_row_offset(n, n), triangular_number(n));
}

TEST(MathUtil, TriangleGeometrySymmetry) {
  const std::uint64_t n = 23;
  for (std::uint64_t i = 0; i < n; ++i) {
    EXPECT_EQ(tri_row_length(n, i), tri_col_length(n, i));
    for (std::uint64_t j = 0; j < n; ++j) {
      // (i,j) inside iff (j,i) inside: the upper-left triangle is symmetric.
      EXPECT_EQ(tri_contains(n, i, j), tri_contains(n, j, i));
    }
  }
  EXPECT_TRUE(tri_contains(n, 0, n - 1));
  EXPECT_TRUE(tri_contains(n, n - 1, 0));
  EXPECT_FALSE(tri_contains(n, 1, n - 1));
  EXPECT_FALSE(tri_contains(n, n, 0));
}

}  // namespace
}  // namespace tbi
