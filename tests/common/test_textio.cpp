#include <gtest/gtest.h>

#include "common/cli.hpp"
#include "common/csv.hpp"
#include "common/log.hpp"
#include "common/table.hpp"

namespace tbi {
namespace {

TEST(TextTable, PctFormatsLikeThePaper) {
  EXPECT_EQ(TextTable::pct(0.9599), "95.99 %");
  EXPECT_EQ(TextTable::pct(1.0), "100.00 %");
  EXPECT_EQ(TextTable::pct(0.435), "43.50 %");
}

TEST(TextTable, RenderAligns) {
  TextTable t("Title");
  t.set_header({"A", "Long header"});
  t.add_row({"very long cell", "x"});
  const std::string out = t.render();
  EXPECT_NE(out.find("Title"), std::string::npos);
  EXPECT_NE(out.find("| very long cell | x           |"), std::string::npos);
}

TEST(TextTable, MarkdownHasSeparator) {
  TextTable t;
  t.set_header({"h1", "h2"});
  t.add_row({"a", "b"});
  const std::string md = t.render_markdown();
  EXPECT_NE(md.find("|----"), std::string::npos);
  EXPECT_NE(md.find("| a  | b  |"), std::string::npos);
}

TEST(Csv, EscapesSpecials) {
  CsvWriter w;
  w.set_header({"a", "b"});
  w.add_row({"plain", "with,comma"});
  w.add_row({"quote\"inside", "line\nbreak"});
  const std::string out = w.str();
  EXPECT_NE(out.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(out.find("\"quote\"\"inside\""), std::string::npos);
  EXPECT_NE(out.find("\"line\nbreak\""), std::string::npos);
  EXPECT_EQ(out.find("plain,"), out.find("plain"));
}

TEST(Cli, ParsesFlagsValuesAndPositionals) {
  CliParser cli("prog", "test");
  cli.add_option("device", "name", "device name");
  cli.add_option("check", "", "boolean flag");
  const char* argv[] = {"prog", "--device", "DDR4-3200", "--check", "pos1"};
  ASSERT_TRUE(cli.parse(5, argv));
  EXPECT_EQ(cli.get("device", ""), "DDR4-3200");
  EXPECT_TRUE(cli.get_flag("check"));
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "pos1");
}

TEST(Cli, EqualsSyntaxAndNumbers) {
  CliParser cli("prog", "test");
  cli.add_option("n", "count", "a number");
  cli.add_option("x", "float", "a float");
  const char* argv[] = {"prog", "--n=123", "--x=2.5"};
  ASSERT_TRUE(cli.parse(3, argv));
  EXPECT_EQ(cli.get_int("n", 0), 123);
  EXPECT_DOUBLE_EQ(cli.get_double("x", 0), 2.5);
  EXPECT_EQ(cli.get_int("missing", -7), -7);
}

TEST(Cli, RejectsUnknownOption) {
  CliParser cli("prog", "test");
  const char* argv[] = {"prog", "--nope"};
  EXPECT_FALSE(cli.parse(2, argv));
  EXPECT_NE(cli.error().find("nope"), std::string::npos);
}

TEST(Cli, MissingValueIsError) {
  CliParser cli("prog", "test");
  cli.add_option("k", "v", "needs value");
  const char* argv[] = {"prog", "--k"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(Cli, UsageListsOptions) {
  CliParser cli("prog", "summary text");
  cli.add_option("alpha", "x", "the alpha");
  cli.add_option("beta", "", "the beta flag");
  const std::string u = cli.usage();
  EXPECT_NE(u.find("--alpha <x>"), std::string::npos);
  EXPECT_NE(u.find("--beta"), std::string::npos);
  EXPECT_NE(u.find("summary text"), std::string::npos);
}

TEST(Log, LevelGate) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::Error);
  EXPECT_EQ(log_level(), LogLevel::Error);
  // Emitting below the threshold must be a no-op (no crash, no output check
  // needed — this exercises the code path).
  log_debug("hidden");
  log_error("visible");
  set_log_level(before);
}

}  // namespace
}  // namespace tbi
