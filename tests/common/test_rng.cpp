#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace tbi {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 2);
}

TEST(Rng, ReseedResets) {
  Rng a(7);
  const auto x0 = a.next_u64();
  a.next_u64();
  a.reseed(7);
  EXPECT_EQ(a.next_u64(), x0);
}

TEST(Rng, UniformInBounds) {
  Rng rng(3);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.uniform(bound), bound);
  }
}

TEST(Rng, UniformCoversAllResidues) {
  Rng rng(11);
  std::vector<int> hits(7, 0);
  for (int i = 0; i < 7000; ++i) ++hits[rng.uniform(7)];
  for (int h : hits) {
    EXPECT_GT(h, 700);  // each residue ~1000 expected; crude uniformity
    EXPECT_LT(h, 1300);
  }
}

TEST(Rng, UniformDoubleRange) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform_double();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BernoulliRate) {
  Rng rng(9);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, GeometricMeanMatches) {
  Rng rng(13);
  const double p = 0.1;
  double sum = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) sum += static_cast<double>(rng.geometric(p));
  // mean of failures-before-success = (1-p)/p = 9
  EXPECT_NEAR(sum / trials, 9.0, 0.5);
}

TEST(Rng, GeometricPOne) {
  Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.geometric(1.0), 0u);
}

}  // namespace
}  // namespace tbi
