#include "interleaver/triangular.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

namespace tbi::interleaver {
namespace {

TEST(Triangular, WritePositionInvertsInputIndex) {
  const TriangularInterleaver t(57);
  for (std::uint64_t k = 0; k < t.capacity(); ++k) {
    const auto [i, j] = t.write_position(k);
    EXPECT_LT(i, 57u);
    EXPECT_LT(j, tri_row_length(57, i));
    EXPECT_EQ(t.input_index(i, j), k);
  }
}

TEST(Triangular, PermuteIsInvolution) {
  // Reading column-wise from the symmetric triangle swaps (i,j) -> (j,i),
  // so applying the permutation twice must give the identity.
  const TriangularInterleaver t(41);
  for (std::uint64_t k = 0; k < t.capacity(); ++k) {
    EXPECT_EQ(t.permute(t.permute(k)), k);
  }
}

TEST(Triangular, PermuteIsBijective) {
  const TriangularInterleaver t(33);
  std::set<std::uint64_t> out;
  for (std::uint64_t k = 0; k < t.capacity(); ++k) {
    EXPECT_TRUE(out.insert(t.permute(k)).second);
  }
  EXPECT_EQ(out.size(), t.capacity());
  EXPECT_EQ(*out.rbegin(), t.capacity() - 1);
}

TEST(Triangular, KnownSmallExample) {
  // side 3: positions (i,j): (0,0)(0,1)(0,2)(1,0)(1,1)(2,0)
  // write order k:             0     1     2    3     4    5
  // read column-wise: col 0: (0,0)(1,0)(2,0) -> 0,3,5
  //                   col 1: (0,1)(1,1)      -> 1,4
  //                   col 2: (0,2)           -> 2
  const TriangularInterleaver t(3);
  std::vector<std::uint8_t> in = {10, 11, 12, 13, 14, 15};
  const auto out = t.interleave(in);
  const std::vector<std::uint8_t> expected = {10, 13, 15, 11, 14, 12};
  EXPECT_EQ(out, expected);
  EXPECT_EQ(t.deinterleave(out), in);
}

TEST(Triangular, InterleaveDeinterleaveRoundTripLarge) {
  const TriangularInterleaver t(200);
  std::vector<std::uint8_t> data(t.capacity());
  for (std::size_t k = 0; k < data.size(); ++k) {
    data[k] = static_cast<std::uint8_t>(k * 2654435761u >> 24);
  }
  EXPECT_EQ(t.deinterleave(t.interleave(data)), data);
}

TEST(Triangular, ApplyMatchesPermute) {
  const TriangularInterleaver t(64);
  std::vector<std::uint8_t> data(t.capacity());
  std::iota(data.begin(), data.end(), 0);
  const auto out = t.interleave(data);
  for (std::uint64_t k = 0; k < t.capacity(); ++k) {
    EXPECT_EQ(out[t.permute(k)], data[k] & 0xFF);
  }
}

TEST(Triangular, BurstErrorSpreadsOverDistinctRows) {
  // The purpose of the interleaver (paper §I): a burst of consecutive
  // *transmitted* (interleaved) symbols must deinterleave onto distinct
  // code-word rows, at most ceil(L / column-height) hits per row.
  const std::uint64_t side = 100;
  const TriangularInterleaver t(side);
  const std::uint64_t burst_len = 50;
  for (std::uint64_t start : {0ULL, 777ULL, 3000ULL}) {
    std::vector<unsigned> per_row(side, 0);
    for (std::uint64_t k = start; k < start + burst_len; ++k) {
      const std::uint64_t input = t.permute(k);  // involution: output->input
      const auto [i, j] = t.write_position(input);
      (void)j;
      ++per_row[i];
    }
    // Burst shorter than the first column touched -> at most 2 per row
    // (column changes mid-burst at triangle edges).
    for (unsigned n : per_row) EXPECT_LE(n, 2u);
  }
}

TEST(Triangular, DepthGrowsAlongTheStream) {
  // Early output symbols come from short columns (shallow interleaving),
  // late ones from long columns: the column length read at output k is
  // n - j for column j, and j increases along the output stream.
  const std::uint64_t side = 50;
  const TriangularInterleaver t(side);
  const auto [i_first, j_first] = t.write_position(t.permute(0));
  (void)i_first;
  const auto [i_last, j_last] = t.write_position(t.permute(t.capacity() - 1));
  (void)i_last;
  EXPECT_EQ(j_first, 0u);
  EXPECT_EQ(j_last, side - 1);
}

TEST(Triangular, RejectsBadInput) {
  EXPECT_THROW(TriangularInterleaver(0), std::invalid_argument);
  const TriangularInterleaver t(10);
  EXPECT_THROW(t.write_position(t.capacity()), std::out_of_range);
  EXPECT_THROW(t.interleave(std::vector<std::uint8_t>(3)), std::invalid_argument);
}

}  // namespace
}  // namespace tbi::interleaver
