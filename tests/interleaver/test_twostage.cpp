#include "interleaver/twostage.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <map>
#include <set>

#include "common/rng.hpp"

namespace tbi::interleaver {
namespace {

TEST(TwoStage, CapacityAccounting) {
  const TwoStageInterleaver t(8, 4);  // side 8 bursts, 4 symbols each
  EXPECT_EQ(t.capacity_bursts(), 36u);
  EXPECT_EQ(t.capacity_symbols(), 144u);
  EXPECT_EQ(t.symbols_per_burst(), 4u);
}

TEST(TwoStage, PermuteIsBijective) {
  const TwoStageInterleaver t(8, 4);
  std::set<std::uint64_t> out;
  for (std::uint64_t k = 0; k < t.capacity_symbols(); ++k) {
    const std::uint64_t p = t.permute(k);
    EXPECT_LT(p, t.capacity_symbols());
    EXPECT_TRUE(out.insert(p).second);
  }
}

TEST(TwoStage, RoundTrip) {
  const TwoStageInterleaver t(12, 8);
  std::vector<std::uint8_t> data(t.capacity_symbols());
  for (std::size_t k = 0; k < data.size(); ++k) {
    data[k] = static_cast<std::uint8_t>(k * 131 + 7);
  }
  EXPECT_EQ(t.deinterleave(t.interleave(data)), data);
}

TEST(TwoStage, BurstsContainDistinctCodeWordChunks) {
  // Paper §II: the SRAM stage must ensure the symbols inside one DRAM
  // burst belong to different code words. Check every full super-block
  // burst of the *intermediate* stream through the end-to-end map: the
  // spb symbols that land in one output burst must come from spb distinct
  // input chunks.
  const std::uint64_t side = 8;  // capacity 36 bursts
  const std::uint64_t spb = 4;
  const TwoStageInterleaver t(side, spb);
  const std::uint64_t full_bursts = (t.capacity_bursts() / spb) * spb;

  // Group output symbols by output burst.
  std::vector<std::set<std::uint64_t>> chunks_in_burst(t.capacity_bursts());
  for (std::uint64_t k = 0; k < t.capacity_symbols(); ++k) {
    const std::uint64_t out = t.permute(k);
    const std::uint64_t out_burst = out / spb;
    // Which stage-2 burst fed this output burst? Stage 2 permutes whole
    // bursts, so the originating intermediate burst is k's super-block
    // slot; what matters for the property is the input *chunk*.
    if ((k / (spb * spb)) < full_bursts / spb) {
      chunks_in_burst[out_burst].insert(k / spb);
    }
  }
  for (std::uint64_t b = 0; b < t.capacity_bursts(); ++b) {
    if (chunks_in_burst[b].size() < spb) continue;  // tail region
    EXPECT_EQ(chunks_in_burst[b].size(), spb)
        << "burst " << b << " mixes symbols of the same chunk";
  }
}

TEST(TwoStage, SuperBlocksFillCompleteOutputBursts) {
  // Stage 2 permutes whole bursts: the spb*spb symbols of one super-block
  // must land in exactly spb complete output bursts (spb symbols each).
  const std::uint64_t spb = 4;
  const TwoStageInterleaver t(6, spb);  // 21 bursts -> 5 full super-blocks
  const std::uint64_t full_super_blocks = t.capacity_bursts() / spb;
  for (std::uint64_t sb = 0; sb < full_super_blocks; ++sb) {
    std::map<std::uint64_t, unsigned> hits;  // output burst -> count
    for (std::uint64_t k0 = 0; k0 < spb * spb; ++k0) {
      ++hits[t.permute(sb * spb * spb + k0) / spb];
    }
    EXPECT_EQ(hits.size(), spb) << "super-block " << sb;
    for (const auto& [burst, n] : hits) EXPECT_EQ(n, spb) << "burst " << burst;
  }
}

TEST(TwoStage, RejectsBadInput) {
  EXPECT_THROW(TwoStageInterleaver(8, 0), std::invalid_argument);
  const TwoStageInterleaver t(8, 4);
  EXPECT_THROW(t.permute(t.capacity_symbols()), std::out_of_range);
  EXPECT_THROW(t.interleave(std::vector<std::uint8_t>(7)), std::invalid_argument);
}

TEST(TwoStage, InverseUndoesPermute) {
  const TwoStageInterleaver t(12, 8);
  for (std::uint64_t k = 0; k < t.capacity_symbols(); ++k) {
    EXPECT_EQ(t.inverse(t.permute(k)), k);
    EXPECT_EQ(t.permute(t.inverse(k)), k);
  }
  EXPECT_THROW(t.inverse(t.capacity_symbols()), std::out_of_range);
}

TEST(TwoStage, RandomizedRoundTripOnSampledSides) {
  // Property check over sampled geometries, including sides well past the
  // RS-255 triangle: the interleaver stays a bijection and the inverse
  // recovers the input exactly.
  Rng rng(0xA11CE);
  for (int iter = 0; iter < 8; ++iter) {
    const std::uint64_t side = 20 + rng.uniform(130);
    const std::uint64_t spb = 2 + rng.uniform(14);
    const TwoStageInterleaver t(side, spb);
    SCOPED_TRACE("side=" + std::to_string(side) + " spb=" + std::to_string(spb));

    std::vector<std::uint8_t> data(t.capacity_symbols());
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_u64());
    EXPECT_EQ(t.deinterleave(t.interleave(data)), data);

    // Sparse inverse spot-check (the full scan runs in InverseUndoesPermute).
    for (int s = 0; s < 64; ++s) {
      const std::uint64_t k = rng.uniform(t.capacity_symbols());
      EXPECT_EQ(t.inverse(t.permute(k)), k);
    }
  }
}

TEST(TwoStage, RandomizedPermuteMatchesMaterializedComposition) {
  // permute() must agree with literally composing the two stages: the
  // spb x spb SRAM transpose applied per full super-block, then the
  // triangular permutation of whole bursts. Both component interleavers
  // are independently tested, so this pins the composition order and the
  // partial-tail pass-through.
  Rng rng(0xC0FFEE);
  for (int iter = 0; iter < 6; ++iter) {
    const std::uint64_t side = 16 + rng.uniform(100);
    const std::uint64_t spb = 2 + rng.uniform(12);
    const TwoStageInterleaver t(side, spb);
    const BlockInterleaver stage1(spb, spb);
    const TriangularInterleaver stage2(side);
    SCOPED_TRACE("side=" + std::to_string(side) + " spb=" + std::to_string(spb));

    const std::uint64_t sb_symbols = spb * spb;
    const std::uint64_t full_super_blocks = t.capacity_bursts() / spb;
    for (std::uint64_t k = 0; k < t.capacity_symbols(); ++k) {
      std::uint64_t m = k;
      if (k / sb_symbols < full_super_blocks) {
        m = (k / sb_symbols) * sb_symbols + stage1.permute(k % sb_symbols);
      }
      const std::uint64_t expected = stage2.permute(m / spb) * spb + m % spb;
      ASSERT_EQ(t.permute(k), expected) << "k=" << k;
    }
  }
}

TEST(TwoStage, RandomizedBurstsHoldDistinctChunks) {
  // Paper §II on sampled geometries: inside the full-super-block region,
  // every output burst carries exactly spb symbols from spb *distinct*
  // code-word chunks, so a fully faded DRAM burst costs each chunk at
  // most one symbol.
  Rng rng(0xB0B);
  for (int iter = 0; iter < 6; ++iter) {
    const std::uint64_t side = 16 + rng.uniform(80);
    const std::uint64_t spb = 2 + rng.uniform(10);
    const TwoStageInterleaver t(side, spb);
    SCOPED_TRACE("side=" + std::to_string(side) + " spb=" + std::to_string(spb));

    const std::uint64_t sb_symbols = spb * spb;
    const std::uint64_t full_super_blocks = t.capacity_bursts() / spb;
    std::map<std::uint64_t, std::set<std::uint64_t>> chunks_in_burst;
    for (std::uint64_t k = 0; k < full_super_blocks * sb_symbols; ++k) {
      chunks_in_burst[t.permute(k) / spb].insert(k / spb);
    }
    for (const auto& [burst, chunks] : chunks_in_burst) {
      EXPECT_EQ(chunks.size(), spb) << "burst " << burst;
    }
  }
}

TEST(TwoStage, InverseAtPaperScaleAndBeyond) {
  // The streaming pipeline relies on inverse() staying O(1) and exact at
  // sides far past the materializable range (paper 12.5 M-burst stage-2
  // triangles with >2G symbols).
  const TwoStageInterleaver t(5000, 170);
  EXPECT_EQ(t.capacity_bursts(), 12'502'500u);
  EXPECT_EQ(t.capacity_symbols(), 12'502'500ull * 170ull);
  Rng rng(7);
  for (int s = 0; s < 4096; ++s) {
    const std::uint64_t k = rng.uniform(t.capacity_symbols());
    ASSERT_EQ(t.inverse(t.permute(k)), k) << "k=" << k;
    ASSERT_EQ(t.permute(t.inverse(k)), k) << "k=" << k;
  }
}

TEST(TwoStage, PaperScaleGeometry) {
  // 512-bit bursts of 3-bit symbols: 170 symbols per burst (paper §II).
  const TwoStageInterleaver t(383, 170);
  EXPECT_EQ(t.capacity_bursts(), 73536u);
  EXPECT_GT(t.capacity_symbols(), 12'500'000u);
  // Spot-check the permutation at scale.
  std::set<std::uint64_t> sample;
  for (std::uint64_t k = 0; k < t.capacity_symbols(); k += 999983) {
    EXPECT_TRUE(sample.insert(t.permute(k)).second);
  }
}

}  // namespace
}  // namespace tbi::interleaver
