#include "interleaver/streams.hpp"

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "dram/standards.hpp"
#include "mapping/factory.hpp"

namespace tbi::interleaver {
namespace {

using dram::find_config;

TEST(Streams, BurstTriangleSideMatchesPaperGeometry) {
  // 12.5M 3-bit symbols on 64 B bursts: 73243 bursts -> side 383.
  EXPECT_EQ(burst_triangle_side(12'500'000, 3, 64), 383u);
  // On 32 B bursts (LPDDR): 146485 bursts -> side 541.
  EXPECT_EQ(burst_triangle_side(12'500'000, 3, 32), 541u);
  EXPECT_EQ(burst_triangle_side(1, 3, 64), 1u);
  EXPECT_EQ(burst_triangle_side(0, 3, 64), 0u);
}

TEST(Streams, WritePhaseCoversTriangleRowWise) {
  const auto& dev = *find_config("DDR4-3200");
  const std::uint64_t side = 40;
  const auto m = mapping::make_mapping("row-major", dev, side);
  WritePhaseStream s(*m);
  dram::Request r;
  std::uint64_t count = 0;
  std::set<std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>> seen;
  std::uint64_t prev_linear = 0;
  while (s.next(r)) {
    EXPECT_TRUE(r.is_write);
    EXPECT_TRUE(seen.insert({r.addr.bank, r.addr.row, r.addr.column}).second);
    // Row-major mapping + row-wise walk = strictly sequential addresses.
    const auto* rm = dynamic_cast<const mapping::RowMajorMapping*>(m.get());
    ASSERT_NE(rm, nullptr);
    ++count;
    (void)prev_linear;
  }
  EXPECT_EQ(count, triangular_number(side));
}

TEST(Streams, ReadPhaseCoversSameAddressesColumnWise) {
  const auto& dev = *find_config("DDR4-3200");
  const std::uint64_t side = 40;
  const auto m = mapping::make_mapping("optimized", dev, side);

  std::set<std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>> w, rd;
  {
    WritePhaseStream s(*m);
    dram::Request r;
    while (s.next(r)) w.insert({r.addr.bank, r.addr.row, r.addr.column});
  }
  {
    ReadPhaseStream s(*m);
    dram::Request r;
    while (s.next(r)) {
      EXPECT_FALSE(r.is_write);
      rd.insert({r.addr.bank, r.addr.row, r.addr.column});
    }
  }
  EXPECT_EQ(w, rd) << "both phases must touch exactly the same DRAM bursts";
  EXPECT_EQ(w.size(), triangular_number(side));
}

TEST(Streams, ReadPhaseOrderIsColumnMajor) {
  const auto& dev = *find_config("DDR4-3200");
  const std::uint64_t side = 10;
  const auto m = mapping::make_mapping("row-major", dev, side);
  const auto* rm = static_cast<const mapping::RowMajorMapping*>(m.get());

  ReadPhaseStream s(*m);
  dram::Request r;
  std::vector<std::uint64_t> linear;
  std::uint64_t i = 0, j = 0;
  while (s.next(r)) {
    linear.push_back(rm->linear_index(i, j));
    if (++i >= tri_col_length(side, j)) {
      i = 0;
      ++j;
    }
  }
  ASSERT_EQ(linear.size(), triangular_number(side));
  // First column: offsets 0, side, side+(side-1), ...
  EXPECT_EQ(linear[0], 0u);
  EXPECT_EQ(linear[1], 10u);
  EXPECT_EQ(linear[2], 19u);
}

TEST(Streams, MaxBurstsTruncates) {
  const auto& dev = *find_config("DDR3-800");
  const auto m = mapping::make_mapping("optimized", dev, 100);
  WritePhaseStream ws(*m, 17);
  ReadPhaseStream rs(*m, 23);
  dram::Request r;
  std::uint64_t wc = 0, rc = 0;
  while (ws.next(r)) ++wc;
  while (rs.next(r)) ++rc;
  EXPECT_EQ(wc, 17u);
  EXPECT_EQ(rc, 23u);
}

}  // namespace
}  // namespace tbi::interleaver
