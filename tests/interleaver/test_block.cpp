#include "interleaver/block.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace tbi::interleaver {
namespace {

TEST(Block, PermuteMatchesTransposeSemantics) {
  // 2 rows x 3 cols, written row-wise [0 1 2 / 3 4 5], read column-wise:
  // output order 0,3,1,4,2,5.
  const BlockInterleaver b(2, 3);
  EXPECT_EQ(b.permute(0), 0u);
  EXPECT_EQ(b.permute(1), 2u);
  EXPECT_EQ(b.permute(2), 4u);
  EXPECT_EQ(b.permute(3), 1u);
  EXPECT_EQ(b.permute(4), 3u);
  EXPECT_EQ(b.permute(5), 5u);
}

TEST(Block, InverseUndoesPermute) {
  const BlockInterleaver b(7, 11);
  for (std::uint64_t k = 0; k < b.capacity(); ++k) {
    EXPECT_EQ(b.inverse(b.permute(k)), k);
    EXPECT_EQ(b.permute(b.inverse(k)), k);
  }
}

TEST(Block, InterleaveDeinterleaveRoundTrip) {
  const BlockInterleaver b(16, 32);
  std::vector<std::uint8_t> data(b.capacity());
  std::iota(data.begin(), data.end(), 0);
  const auto mixed = b.interleave(data);
  EXPECT_NE(mixed, data);
  EXPECT_EQ(b.deinterleave(mixed), data);
}

TEST(Block, SpreadsBurstErrorsAcrossRows) {
  // A burst of L consecutive symbols in the interleaved stream touches
  // ceil(L/rows) symbols per row at most — the classic depth guarantee.
  const std::uint64_t rows = 8, cols = 16;
  const BlockInterleaver b(rows, cols);
  const std::uint64_t burst_len = rows;  // one full column
  for (std::uint64_t start = 0; start + burst_len <= b.capacity(); start += 13) {
    std::vector<unsigned> per_row(rows, 0);
    for (std::uint64_t k = start; k < start + burst_len; ++k) {
      const std::uint64_t input = b.inverse(k);
      ++per_row[input / cols];
    }
    for (unsigned n : per_row) EXPECT_LE(n, 2u);
  }
}

TEST(Block, SquareTransposeIsInvolution) {
  const BlockInterleaver b(12, 12);
  for (std::uint64_t k = 0; k < b.capacity(); ++k) {
    EXPECT_EQ(b.permute(b.permute(k)), k);
  }
}

TEST(Block, RejectsBadInput) {
  EXPECT_THROW(BlockInterleaver(0, 4), std::invalid_argument);
  EXPECT_THROW(BlockInterleaver(4, 0), std::invalid_argument);
  const BlockInterleaver b(4, 4);
  EXPECT_THROW(b.permute(16), std::out_of_range);
  EXPECT_THROW(b.interleave(std::vector<std::uint8_t>(15)), std::invalid_argument);
}

}  // namespace
}  // namespace tbi::interleaver
