/// Source layer (src/source/): ChannelSource equivalence with raw
/// channels, random access via rewind, multi-link composition, and the
/// burst-trace record/replay format.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <vector>

#include "channel/gilbert_elliott.hpp"
#include "channel/leo.hpp"
#include "source/source.hpp"
#include "source/trace.hpp"

namespace tbi::source {
namespace {

ChannelFactory ge_factory() {
  return [] {
    const auto p =
        channel::GilbertElliottParams::from_burst_profile(300, 0.05, 0.95, 8);
    return std::make_unique<channel::GilbertElliottChannel>(p);
  };
}

ChannelFactory leo_factory() {
  return [] {
    channel::LeoChannelParams p;
    p.fade_probability = 0.05;
    p.fade_depth_error_rate = 0.9;
    p.symbols_per_sample = 300;
    p.coherence_time_s = 2e-7;
    return std::make_unique<channel::LeoFadingChannel>(p);
  };
}

/// Reference corruption pattern: the raw channel walked sequentially.
std::vector<std::uint8_t> reference_wire(const ChannelFactory& factory,
                                         std::uint64_t seed, std::size_t total) {
  auto ch = factory();
  Rng rng(seed);
  std::vector<std::uint8_t> wire(total, 0);
  ch->apply(wire, rng);
  return wire;
}

std::vector<Corruption> events_of(const std::vector<std::uint8_t>& wire,
                                  std::uint64_t base = 0) {
  std::vector<Corruption> out;
  for (std::size_t i = 0; i < wire.size(); ++i) {
    if (wire[i] != 0) out.push_back({base + i, wire[i]});
  }
  return out;
}

TEST(ChannelSource, CorruptMatchesRawChannelApply) {
  constexpr std::size_t kTotal = 60'000;
  const auto expected = reference_wire(ge_factory(), 5, kTotal);

  ChannelSource src(ge_factory(), 5, 4096);
  std::vector<std::uint8_t> wire(kTotal, 0);
  // Frame-sized forward chunks, like the materialized pipeline.
  for (std::size_t pos = 0; pos < kTotal; pos += 7000) {
    const std::size_t len = std::min<std::size_t>(7000, kTotal - pos);
    src.corrupt(pos, std::span<std::uint8_t>(wire.data() + pos, len));
  }
  EXPECT_EQ(wire, expected);
}

TEST(ChannelSource, EventsMatchCorruptPattern) {
  // events() over zeroed scratch chunks must discover exactly the
  // corruption corrupt() writes, independent of the chunk size.
  constexpr std::size_t kTotal = 40'000;
  const auto expected = events_of(reference_wire(ge_factory(), 11, kTotal));
  ASSERT_FALSE(expected.empty());

  for (const std::uint64_t chunk : {1u, 313u, 4096u, 100'000u}) {
    ChannelSource src(ge_factory(), 11, chunk);
    std::vector<Corruption> got;
    const auto n = src.collect(0, kTotal, got);
    EXPECT_EQ(n, got.size());
    EXPECT_EQ(got, expected) << "chunk_symbols = " << chunk;
  }
}

TEST(ChannelSource, RandomAccessRewindsDeterministically) {
  constexpr std::size_t kTotal = 30'000;
  const auto expected = reference_wire(leo_factory(), 21, kTotal);

  ChannelSource src(leo_factory(), 21, 4096);
  // Walk to the end, then jump back to arbitrary earlier windows: each
  // must reproduce the sequential pattern exactly.
  std::vector<Corruption> sink;
  src.collect(0, kTotal, sink);
  for (const std::size_t start : {25'000u, 100u, 12'345u, 0u}) {
    const std::size_t len = std::min<std::size_t>(2048, kTotal - start);
    std::vector<std::uint8_t> window(len, 0);
    src.corrupt(start, window);
    for (std::size_t i = 0; i < len; ++i) {
      ASSERT_EQ(window[i], expected[start + i])
          << "window start " << start << " offset " << i;
    }
  }
}

TEST(ChannelSource, ScratchGrowsWithChunkOnly) {
  ChannelSource src(ge_factory(), 3, 8192);
  EXPECT_EQ(src.scratch_bytes(), 0u) << "chunk buffer is lazy";
  std::vector<Corruption> sink;
  src.collect(0, 100'000, sink);
  EXPECT_EQ(src.scratch_bytes(), 8192u);
}

TEST(MultiLink, SingleLinkIsIdentityRemap) {
  // N=1, zero phase: the composite must emit exactly the inner source's
  // events at unchanged positions.
  constexpr std::size_t kTotal = 30'000;
  ChannelSource plain(ge_factory(), 77, 4096);
  std::vector<Corruption> expected;
  plain.collect(0, kTotal, expected);
  ASSERT_FALSE(expected.empty());

  std::vector<MultiLinkSource::Link> links;
  links.push_back({std::make_unique<ChannelSource>(ge_factory(), 77, 4096), 0});
  MultiLinkSource multi(std::move(links));
  std::vector<Corruption> got;
  multi.collect(0, kTotal, got);
  std::sort(got.begin(), got.end(),
            [](const Corruption& a, const Corruption& b) {
              return a.wire_pos < b.wire_pos;
            });
  EXPECT_EQ(got, expected);
}

TEST(MultiLink, RoundRobinCompositionMatchesPerLinkStreams) {
  // Global position p belongs to link p % N at local position p / N
  // (plus the link's phase offset). Verify the composite against each
  // link's standalone event stream.
  constexpr std::size_t kLinks = 3;
  constexpr std::size_t kSpan = 30'000;
  const std::uint64_t phase[kLinks] = {0, 1000, 50'000};

  std::vector<MultiLinkSource::Link> links;
  std::vector<std::vector<Corruption>> per_link(kLinks);
  for (std::size_t l = 0; l < kLinks; ++l) {
    const std::uint64_t seed = 400 + l;
    links.push_back(
        {std::make_unique<ChannelSource>(ge_factory(), seed, 4096), phase[l]});
    // Standalone reference covering every local position the composite
    // can touch for this link.
    ChannelSource ref(ge_factory(), seed, 4096);
    ref.collect(phase[l], kSpan / kLinks + 1, per_link[l]);
  }
  MultiLinkSource multi(std::move(links));
  EXPECT_EQ(multi.link_count(), kLinks);

  std::vector<Corruption> got;
  multi.collect(0, kSpan, got);
  ASSERT_FALSE(got.empty());

  // Rebuild the expected composite stream from the per-link references.
  std::vector<Corruption> expected;
  for (std::size_t l = 0; l < kLinks; ++l) {
    for (const auto& e : per_link[l]) {
      const std::uint64_t global = (e.wire_pos - phase[l]) * kLinks + l;
      if (global < kSpan) expected.push_back({global, e.flip});
    }
  }
  const auto by_pos = [](const Corruption& a, const Corruption& b) {
    return a.wire_pos < b.wire_pos;
  };
  std::sort(expected.begin(), expected.end(), by_pos);
  std::sort(got.begin(), got.end(), by_pos);
  EXPECT_EQ(got, expected);
}

TEST(MultiLink, ChunkedQueriesMatchOneShot) {
  // Splitting the global range at arbitrary boundaries must not change
  // the event set (each link sees correctly clipped local sub-ranges).
  constexpr std::size_t kSpan = 24'000;
  const auto build = [] {
    std::vector<MultiLinkSource::Link> links;
    for (std::size_t l = 0; l < 4; ++l) {
      links.push_back(
          {std::make_unique<ChannelSource>(ge_factory(), 900 + l, 4096),
           l * 137});
    }
    return std::make_unique<MultiLinkSource>(std::move(links));
  };

  std::vector<Corruption> one_shot;
  build()->collect(0, kSpan, one_shot);
  ASSERT_FALSE(one_shot.empty());

  auto chunked_src = build();
  std::vector<Corruption> chunked;
  Rng len_rng(6);
  for (std::size_t pos = 0; pos < kSpan;) {
    const std::size_t len = std::min(
        kSpan - pos, static_cast<std::size_t>(1 + len_rng.uniform(5000)));
    chunked_src->collect(pos, len, chunked);
    pos += len;
  }
  const auto by_pos = [](const Corruption& a, const Corruption& b) {
    return a.wire_pos < b.wire_pos;
  };
  std::sort(one_shot.begin(), one_shot.end(), by_pos);
  std::sort(chunked.begin(), chunked.end(), by_pos);
  EXPECT_EQ(chunked, one_shot);
}

TEST(BurstTrace, EventLineRoundTrip) {
  const Corruption e{123'456'789, 200};
  EXPECT_EQ(format_burst_event(e), "123456789 200");
  Corruption parsed;
  ASSERT_TRUE(parse_burst_event("123456789 200", parsed));
  EXPECT_EQ(parsed, e);
}

TEST(BurstTrace, ParserSkipsCommentsAndRejectsMalformed) {
  Corruption e;
  EXPECT_FALSE(parse_burst_event("", e));
  EXPECT_FALSE(parse_burst_event("   ", e));
  EXPECT_FALSE(parse_burst_event("# comment", e));
  EXPECT_THROW(parse_burst_event("42", e), std::invalid_argument);
  EXPECT_THROW(parse_burst_event("42 0", e), std::invalid_argument);
  EXPECT_THROW(parse_burst_event("42 256", e), std::invalid_argument);
  EXPECT_THROW(parse_burst_event("42 7 junk", e), std::invalid_argument);
  EXPECT_THROW(parse_burst_event("not a number 7", e), std::invalid_argument);
}

TEST(BurstTrace, WriterReaderRoundTripSortsByPosition) {
  std::ostringstream out;
  BurstTraceWriter writer(out);
  writer.comment("recorded by test");
  writer.record({500, 9});
  writer.record({10, 255});  // out of order on purpose
  writer.record({200, 1});
  EXPECT_EQ(writer.events_written(), 3u);

  std::istringstream in(out.str());
  const auto events = read_burst_trace(in);
  const std::vector<Corruption> expected{{10, 255}, {200, 1}, {500, 9}};
  EXPECT_EQ(events, expected);
}

TEST(BurstTrace, ReaderRequiresHeader) {
  std::istringstream in("10 255\n");
  EXPECT_THROW(read_burst_trace(in), std::invalid_argument);
}

TEST(TraceReplay, RangeQueriesAreClippedBinarySearches) {
  TraceReplaySource src({{5, 1}, {100, 2}, {101, 3}, {5000, 4}});
  EXPECT_EQ(src.total_events(), 4u);

  std::vector<Corruption> got;
  src.collect(0, 5, got);
  EXPECT_TRUE(got.empty()) << "position 5 is outside [0, 5)";
  src.collect(5, 96, got);  // [5, 101): picks up 5 and 100
  const std::vector<Corruption> first{{5, 1}, {100, 2}};
  EXPECT_EQ(got, first);
  got.clear();
  src.collect(101, 1'000'000, got);
  const std::vector<Corruption> rest{{101, 3}, {5000, 4}};
  EXPECT_EQ(got, rest);
}

TEST(TraceReplay, CorruptXorsEventsIntoBuffer) {
  TraceReplaySource src({{2, 0x0F}, {7, 0xF0}});
  std::vector<std::uint8_t> wire(10, 0xAA);
  EXPECT_EQ(src.corrupt(0, wire), 2u);
  EXPECT_EQ(wire[2], 0xAA ^ 0x0F);
  EXPECT_EQ(wire[7], 0xAA ^ 0xF0);
  EXPECT_EQ(wire[0], 0xAA);
}

TEST(Recording, TeeWritesEveryEventAndForwards) {
  // Record a channel run, then replay the written text: the replayed
  // event set must equal the live one.
  constexpr std::size_t kTotal = 80'000;
  auto out = std::make_unique<std::ostringstream>();
  auto* out_raw = out.get();
  RecordingSource rec(std::make_unique<ChannelSource>(ge_factory(), 55, 4096),
                      std::move(out));

  std::vector<Corruption> live;
  rec.collect(0, kTotal, live);
  ASSERT_FALSE(live.empty());
  EXPECT_EQ(rec.events_written(), live.size());
  EXPECT_STREQ(rec.name(), "gilbert-elliott") << "name forwards to the inner";

  std::istringstream in(out_raw->str());
  auto events = read_burst_trace(in);
  std::sort(live.begin(), live.end(),
            [](const Corruption& a, const Corruption& b) {
              return a.wire_pos < b.wire_pos;
            });
  EXPECT_EQ(events, live);

  // And the replayed source corrupts a wire identically to the original
  // channel walked sequentially.
  TraceReplaySource replay(std::move(events));
  std::vector<std::uint8_t> wire(kTotal, 0);
  replay.corrupt(0, wire);
  EXPECT_EQ(wire, reference_wire(ge_factory(), 55, kTotal));
}

}  // namespace
}  // namespace tbi::source
