#include "fec/gf256.hpp"

#include <gtest/gtest.h>

namespace tbi::fec {
namespace {

TEST(GF256, AddIsXor) {
  EXPECT_EQ(GF256::add(0x53, 0xCA), 0x53 ^ 0xCA);
  EXPECT_EQ(GF256::add(7, 7), 0);
  EXPECT_EQ(GF256::sub(0x53, 0xCA), GF256::add(0x53, 0xCA));
}

TEST(GF256, MulBasics) {
  EXPECT_EQ(GF256::mul(0, 77), 0);
  EXPECT_EQ(GF256::mul(77, 0), 0);
  EXPECT_EQ(GF256::mul(1, 77), 77);
  EXPECT_EQ(GF256::mul(77, 1), 77);
  // alpha * alpha^254 = alpha^255 = 1
  EXPECT_EQ(GF256::mul(GF256::pow_alpha(1), GF256::pow_alpha(254)), 1);
}

TEST(GF256, MulCommutativeAssociativeSample) {
  for (unsigned a = 1; a < 256; a += 17) {
    for (unsigned b = 1; b < 256; b += 23) {
      EXPECT_EQ(GF256::mul(a, b), GF256::mul(b, a));
      for (unsigned c = 1; c < 256; c += 51) {
        EXPECT_EQ(GF256::mul(GF256::mul(a, b), c), GF256::mul(a, GF256::mul(b, c)));
      }
    }
  }
}

TEST(GF256, DistributesOverAdd) {
  for (unsigned a = 1; a < 256; a += 13) {
    for (unsigned b = 0; b < 256; b += 19) {
      for (unsigned c = 0; c < 256; c += 29) {
        EXPECT_EQ(GF256::mul(a, GF256::add(b, c)),
                  GF256::add(GF256::mul(a, b), GF256::mul(a, c)));
      }
    }
  }
}

TEST(GF256, EveryNonzeroElementHasInverse) {
  for (unsigned a = 1; a < 256; ++a) {
    const std::uint8_t inv = GF256::inv(static_cast<std::uint8_t>(a));
    EXPECT_EQ(GF256::mul(static_cast<std::uint8_t>(a), inv), 1) << "a=" << a;
    EXPECT_EQ(GF256::div(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(a)), 1);
  }
}

TEST(GF256, AlphaGeneratesTheFullMultiplicativeGroup) {
  bool seen[256] = {false};
  for (unsigned p = 0; p < 255; ++p) {
    const std::uint8_t v = GF256::pow_alpha(p);
    EXPECT_NE(v, 0);
    EXPECT_FALSE(seen[v]) << "alpha^" << p << " repeats";
    seen[v] = true;
  }
  EXPECT_EQ(GF256::pow_alpha(255), GF256::pow_alpha(0));
}

TEST(GF256, LogIsInverseOfPow) {
  for (unsigned p = 0; p < 255; ++p) {
    EXPECT_EQ(GF256::log_alpha(GF256::pow_alpha(p)), p);
  }
}

/// Naive carry-less (schoolbook) multiply: shift-and-add in GF(2)[x],
/// then reduce by the primitive polynomial. The table-driven mul()
/// (doubled antilog table indexed with log(a)+log(b), no modulo) must
/// reproduce it for every one of the 256 x 256 input pairs.
std::uint8_t carryless_reference_mul(std::uint8_t a, std::uint8_t b) {
  unsigned product = 0;
  for (unsigned bit = 0; bit < 8; ++bit) {
    if (b & (1u << bit)) product ^= static_cast<unsigned>(a) << bit;
  }
  for (int degree = 14; degree >= 8; --degree) {
    if (product & (1u << degree)) {
      product ^= GF256::kPrimitivePoly << (degree - 8);
    }
  }
  return static_cast<std::uint8_t>(product);
}

TEST(GF256, MulMatchesCarrylessReferenceExhaustively) {
  for (unsigned a = 0; a < 256; ++a) {
    for (unsigned b = 0; b < 256; ++b) {
      ASSERT_EQ(GF256::mul(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b)),
                carryless_reference_mul(static_cast<std::uint8_t>(a),
                                        static_cast<std::uint8_t>(b)))
          << "a=" << a << " b=" << b;
    }
  }
}

TEST(GF256, DivInvertsMulExhaustively) {
  for (unsigned a = 0; a < 256; ++a) {
    for (unsigned b = 1; b < 256; ++b) {
      const std::uint8_t p = GF256::mul(static_cast<std::uint8_t>(a),
                                        static_cast<std::uint8_t>(b));
      ASSERT_EQ(GF256::div(p, static_cast<std::uint8_t>(b)), a)
          << "a=" << a << " b=" << b;
    }
  }
}

}  // namespace
}  // namespace tbi::fec
