#include "fec/reed_solomon.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.hpp"

namespace tbi::fec {
namespace {

std::vector<std::uint8_t> random_data(unsigned k, Rng& rng) {
  std::vector<std::uint8_t> d(k);
  for (auto& b : d) b = static_cast<std::uint8_t>(rng.next_u64());
  return d;
}

TEST(ReedSolomon, EncodeIsSystematic) {
  Rng rng(1);
  const ReedSolomon rs(255, 223);
  const auto data = random_data(rs.k(), rng);
  const auto word = rs.encode(data);
  ASSERT_EQ(word.size(), rs.n());
  for (unsigned i = 0; i < rs.k(); ++i) EXPECT_EQ(word[i], data[i]);
}

TEST(ReedSolomon, EncodedWordsAreValid) {
  Rng rng(2);
  for (auto [n, k] : {std::pair{255u, 223u}, {255u, 239u}, {63u, 47u}, {15u, 7u}}) {
    const ReedSolomon rs(n, k);
    for (int trial = 0; trial < 5; ++trial) {
      EXPECT_TRUE(rs.is_codeword(rs.encode(random_data(k, rng))));
    }
  }
}

TEST(ReedSolomon, DecodeCleanWordNoOp) {
  Rng rng(3);
  const ReedSolomon rs(255, 223);
  auto word = rs.encode(random_data(rs.k(), rng));
  const auto copy = word;
  const auto res = rs.decode(word);
  EXPECT_TRUE(res.ok);
  EXPECT_EQ(res.corrected_symbols, 0u);
  EXPECT_EQ(word, copy);
}

class RsCorrection : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>> {};

TEST_P(RsCorrection, CorrectsUpToTErrors) {
  const auto [n, k] = GetParam();
  const ReedSolomon rs(n, k);
  Rng rng(n * 1000 + k);
  for (unsigned errors = 1; errors <= rs.t(); ++errors) {
    const auto data = random_data(rs.k(), rng);
    const auto clean = rs.encode(data);
    auto word = clean;
    // Inject `errors` distinct-position symbol errors.
    std::vector<unsigned> positions;
    while (positions.size() < errors) {
      const unsigned p = static_cast<unsigned>(rng.uniform(rs.n()));
      bool dup = false;
      for (unsigned q : positions) dup |= q == p;
      if (!dup) positions.push_back(p);
    }
    for (unsigned p : positions) {
      std::uint8_t flip = 0;
      while (flip == 0) flip = static_cast<std::uint8_t>(rng.next_u64());
      word[p] ^= flip;
    }
    const auto res = rs.decode(word);
    EXPECT_TRUE(res.ok) << "errors=" << errors;
    EXPECT_EQ(res.corrected_symbols, errors);
    EXPECT_EQ(word, clean);
  }
}

INSTANTIATE_TEST_SUITE_P(
    CodeSizes, RsCorrection,
    ::testing::Values(std::tuple{255u, 223u}, std::tuple{255u, 239u},
                      std::tuple{255u, 191u}, std::tuple{63u, 31u},
                      std::tuple{31u, 15u}, std::tuple{15u, 7u}),
    [](const auto& info) {
      return "RS_" + std::to_string(std::get<0>(info.param)) + "_" +
             std::to_string(std::get<1>(info.param));
    });

TEST(ReedSolomon, DetectsBeyondTErrors) {
  // t+1 errors are uncorrectable; decode must fail (or at worst
  // miscorrect into a *valid* different word — rare; with these seeds it
  // must report failure).
  const ReedSolomon rs(255, 223);
  Rng rng(99);
  const auto data = random_data(rs.k(), rng);
  auto word = rs.encode(data);
  const auto clean = word;
  unsigned injected = 0;
  for (unsigned p = 0; injected < rs.t() + 5; p += 3, ++injected) {
    word[p] ^= 0x5A;
  }
  const auto res = rs.decode(word);
  if (res.ok) {
    // If decoding "succeeded" it must at least be a valid code word.
    EXPECT_TRUE(rs.is_codeword(word));
    EXPECT_NE(word, clean) << "cannot possibly recover the original";
  }
}

TEST(ReedSolomon, BurstOfTConsecutiveErrorsCorrected) {
  // Relevant case for interleaving: bursts inside one code word.
  const ReedSolomon rs(255, 223);
  Rng rng(7);
  const auto data = random_data(rs.k(), rng);
  const auto clean = rs.encode(data);
  auto word = clean;
  for (unsigned p = 40; p < 40 + rs.t(); ++p) word[p] ^= 0xFF;
  const auto res = rs.decode(word);
  EXPECT_TRUE(res.ok);
  EXPECT_EQ(word, clean);
}

TEST(ReedSolomon, ParityOnlyErrorsCorrected) {
  const ReedSolomon rs(63, 47);
  Rng rng(13);
  const auto clean = rs.encode(random_data(rs.k(), rng));
  auto word = clean;
  word[rs.n() - 1] ^= 1;
  word[rs.n() - 2] ^= 0x80;
  EXPECT_TRUE(rs.decode(word).ok);
  EXPECT_EQ(word, clean);
}

TEST(ReedSolomon, RejectsBadParameters) {
  EXPECT_THROW(ReedSolomon(256, 200), std::invalid_argument);
  EXPECT_THROW(ReedSolomon(100, 100), std::invalid_argument);
  EXPECT_THROW(ReedSolomon(100, 0), std::invalid_argument);
  EXPECT_THROW(ReedSolomon(100, 99), std::invalid_argument);  // odd parity
  const ReedSolomon rs(255, 223);
  EXPECT_THROW(rs.encode(std::vector<std::uint8_t>(10)), std::invalid_argument);
  std::vector<std::uint8_t> short_word(10);
  EXPECT_THROW(rs.decode(short_word), std::invalid_argument);
}

}  // namespace
}  // namespace tbi::fec
