/// \file test_gf256_simd.cpp
/// Oracle wall for the vectorized GF(2^8) constant-multiplier kernel
/// (gf256_simd.hpp). Every backend the host supports is driven through
/// gf256_muladd_backend and checked byte-for-byte against a carry-less
/// (schoolbook) reference multiply that shares no tables with the kernel
/// under test — every multiplier 0..255, the full strip/tail length
/// ladder, and every src/dst misalignment the 16/32/64-byte strips can
/// see. A cross-backend encode -> corrupt -> decode property test then
/// pins the full codec to byte-identical output on every backend.
#include "fec/gf256_simd.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

#include "fec/gf256.hpp"
#include "fec/reed_solomon.hpp"

namespace tbi::fec {
namespace {

/// Naive carry-less multiply in GF(2)[x] reduced by the primitive
/// polynomial — the same independent reference test_gf256.cpp pins
/// GF256::mul against. No shared code with the kernel's 64 KiB product
/// table, nibble split tables, or affine matrices.
std::uint8_t carryless_reference_mul(std::uint8_t a, std::uint8_t b) {
  unsigned product = 0;
  for (unsigned bit = 0; bit < 8; ++bit) {
    if (b & (1u << bit)) product ^= static_cast<unsigned>(a) << bit;
  }
  for (int degree = 14; degree >= 8; --degree) {
    if (product & (1u << degree)) {
      product ^= GF256::kPrimitivePoly << (degree - 8);
    }
  }
  return static_cast<std::uint8_t>(product);
}

/// reference_rows()[m][x] = m * x from the carry-less reference, built
/// once per process so the exhaustive sweep is table-lookup cheap.
const std::uint8_t (*reference_rows())[256] {
  static const auto* rows = [] {
    auto* t = new std::uint8_t[256][256];
    for (unsigned m = 0; m < 256; ++m) {
      for (unsigned x = 0; x < 256; ++x) {
        t[m][x] = carryless_reference_mul(static_cast<std::uint8_t>(m),
                                          static_cast<std::uint8_t>(x));
      }
    }
    return t;
  }();
  return rows;
}

/// Run one kernel call against the reference on pattern buffers with
/// guard regions. The full-buffer memcmp checks both the result span and
/// that not a single byte outside [doff, doff + len) was written.
void check_muladd(GfBackend backend, const std::vector<std::uint8_t>& src,
                  const std::vector<std::uint8_t>& dst0, std::size_t soff,
                  std::size_t doff, unsigned m, std::size_t len,
                  std::vector<std::uint8_t>& dst,
                  std::vector<std::uint8_t>& want) {
  const std::uint8_t* row = reference_rows()[m];
  std::memcpy(dst.data(), dst0.data(), dst0.size());
  std::memcpy(want.data(), dst0.data(), dst0.size());
  for (std::size_t i = 0; i < len; ++i) {
    want[doff + i] = static_cast<std::uint8_t>(want[doff + i] ^ row[src[soff + i]]);
  }
  gf256_muladd_backend(backend, dst.data() + doff, src.data() + soff,
                       static_cast<std::uint8_t>(m), len);
  if (std::memcmp(dst.data(), want.data(), dst.size()) != 0) {
    for (std::size_t i = 0; i < dst.size(); ++i) {
      ASSERT_EQ(static_cast<unsigned>(dst[i]), static_cast<unsigned>(want[i]))
          << gf256_backend_name(backend) << " m=" << m << " len=" << len
          << " soff=" << soff << " doff=" << doff << " byte=" << i
          << (i < doff || i >= doff + len ? " (guard)" : "");
    }
  }
}

TEST(Gf256SimdOracle, EveryMultiplierEveryLengthEveryBackend) {
  const auto backends = gf256_supported_backends();
  ASSERT_FALSE(backends.empty());
  EXPECT_EQ(backends.front(), GfBackend::Scalar);

  // Length ladder from the issue: every length a scalar-only or
  // single-strip call can have (0..64), one full code word (255), and
  // every tail shape of a 4 KiB body (4097..4159) so the 64/32/16-byte
  // strip cascade plus scalar tail all see every residue.
  std::vector<std::size_t> lens;
  for (std::size_t l = 0; l <= 64; ++l) lens.push_back(l);
  lens.push_back(255);
  for (std::size_t l = 4097; l <= 4159; ++l) lens.push_back(l);

  constexpr std::size_t kPad = 64;  // guard region below and above
  const std::size_t size = lens.back() + 2 * kPad;
  std::mt19937 rng(0xC0DEu);
  std::vector<std::uint8_t> src(size), dst0(size);
  for (auto& b : src) b = static_cast<std::uint8_t>(rng());
  for (auto& b : dst0) b = static_cast<std::uint8_t>(rng());
  std::vector<std::uint8_t> dst(size), want(size);

  for (const GfBackend backend : backends) {
    for (unsigned m = 0; m < 256; ++m) {
      for (std::size_t li = 0; li < lens.size(); ++li) {
        // Rotate both offsets with the sweep so unaligned src and dst
        // ride through every multiplier and length; the dedicated
        // misalignment test below covers the full 32x32 offset grid.
        const std::size_t soff = kPad + ((m + li) & 31);
        const std::size_t doff = kPad + ((m + 5 * li) & 31);
        check_muladd(backend, src, dst0, soff, doff, m, lens[li], dst, want);
        if (HasFatalFailure()) return;
      }
    }
  }
}

TEST(Gf256SimdOracle, EverySrcDstMisalignmentPair) {
  // Fixed multiplier and length (one 64-byte strip, one 32-byte strip,
  // one odd scalar tail), the complete 32x32 src/dst offset grid.
  constexpr unsigned kM = 0x57;
  constexpr std::size_t kLen = 97;
  constexpr std::size_t kPad = 64;
  const std::size_t size = kLen + 2 * kPad;
  std::mt19937 rng(0xA11Du);
  std::vector<std::uint8_t> src(size), dst0(size);
  for (auto& b : src) b = static_cast<std::uint8_t>(rng());
  for (auto& b : dst0) b = static_cast<std::uint8_t>(rng());
  std::vector<std::uint8_t> dst(size), want(size);

  for (const GfBackend backend : gf256_supported_backends()) {
    for (std::size_t soff = 0; soff < 32; ++soff) {
      for (std::size_t doff = 0; doff < 32; ++doff) {
        check_muladd(backend, src, dst0, kPad / 2 + soff, kPad / 2 + doff, kM,
                     kLen, dst, want);
        if (HasFatalFailure()) return;
      }
    }
  }
}

TEST(Gf256SimdDispatch, ScalarAlwaysSupportedActiveIsSupported) {
  EXPECT_TRUE(gf256_backend_supported(GfBackend::Scalar));
  const auto backends = gf256_supported_backends();
  for (const GfBackend b : backends) {
    EXPECT_TRUE(gf256_backend_supported(b)) << gf256_backend_name(b);
  }
  const GfBackend active = gf256_active_backend();
  EXPECT_NE(std::find(backends.begin(), backends.end(), active), backends.end())
      << gf256_backend_name(active);
}

TEST(Gf256SimdDispatch, BackendNamesAreStable) {
  EXPECT_STREQ(gf256_backend_name(GfBackend::Scalar), "scalar");
  EXPECT_STREQ(gf256_backend_name(GfBackend::Avx2), "avx2");
  EXPECT_STREQ(gf256_backend_name(GfBackend::Gfni), "gfni");
}

TEST(Gf256SimdDispatch, ForceBackendPinsTheDispatchedEntryPoint) {
  std::mt19937 rng(99);
  std::uint8_t src[96], base[96];
  for (auto& b : src) b = static_cast<std::uint8_t>(rng());
  for (auto& b : base) b = static_cast<std::uint8_t>(rng());

  for (const GfBackend backend : gf256_supported_backends()) {
    gf256_force_backend(backend);
    EXPECT_EQ(gf256_active_backend(), backend);
    std::uint8_t got[96], want[96];
    std::memcpy(got, base, sizeof base);
    std::memcpy(want, base, sizeof base);
    gf256_muladd(got, src, 0x9D, sizeof got);  // dispatched entry point
    for (std::size_t i = 0; i < sizeof want; ++i) {
      want[i] ^= reference_rows()[0x9D][src[i]];
    }
    EXPECT_EQ(std::memcmp(got, want, sizeof got), 0)
        << gf256_backend_name(backend);
  }
  gf256_reset_backend();
}

TEST(Gf256SimdDispatch, UnsupportedBackendThrows) {
  // Vacuous on hosts/builds where everything is supported; on a
  // TBI_SIMD_DISABLE build or a pre-AVX2 machine this is the real check
  // that forcing or calling a missing backend fails loudly.
  for (const GfBackend b : {GfBackend::Avx2, GfBackend::Gfni}) {
    if (gf256_backend_supported(b)) continue;
    EXPECT_THROW(gf256_force_backend(b), std::runtime_error);
    std::uint8_t byte = 0;
    EXPECT_THROW(gf256_muladd_backend(b, &byte, &byte, 3, 0), std::runtime_error);
  }
}

TEST(Gf256SimdDispatch, TbiSimdOverrideAndErrors) {
  // The suite may itself be running under TBI_SIMD (CI does exactly
  // that), so save and restore whatever was set.
  const char* prev = std::getenv("TBI_SIMD");
  const std::string saved = prev ? prev : "";
  const bool had_prev = prev != nullptr;

  setenv("TBI_SIMD", "scalar", 1);
  gf256_reset_backend();
  EXPECT_EQ(gf256_active_backend(), GfBackend::Scalar);

  setenv("TBI_SIMD", "no-such-backend", 1);
  gf256_reset_backend();
  EXPECT_THROW(gf256_active_backend(), std::invalid_argument);

  // A known but locally unsupported name is a different failure: the
  // override is explicit, so dispatch must refuse rather than degrade.
  for (const GfBackend b : {GfBackend::Avx2, GfBackend::Gfni}) {
    if (gf256_backend_supported(b)) continue;
    setenv("TBI_SIMD", gf256_backend_name(b), 1);
    gf256_reset_backend();
    EXPECT_THROW(gf256_active_backend(), std::runtime_error);
  }

  if (had_prev) {
    setenv("TBI_SIMD", saved.c_str(), 1);
  } else {
    unsetenv("TBI_SIMD");
  }
  gf256_reset_backend();
  EXPECT_NO_THROW(gf256_active_backend());
}

TEST(Gf256SimdCodec, EncodeCorruptDecodeByteIdenticalAcrossBackends) {
  // The codec property the whole PR rests on: for every supported
  // backend, encode produces the same parity and decode walks back to the
  // same corrected word — so TBI_SIMD can never change a single FER
  // counter. Every rs_k of the sweep grid, fixed seed per k.
  const auto backends = gf256_supported_backends();
  for (const unsigned k : {239u, 223u, 191u}) {
    const ReedSolomon rs(255, k);
    const unsigned t = (255 - k) / 2;
    std::mt19937 rng(k * 7919u);
    for (unsigned trial = 0; trial < 6; ++trial) {
      std::vector<std::uint8_t> data(k);
      for (auto& b : data) b = static_cast<std::uint8_t>(rng());

      std::vector<std::uint8_t> clean;
      for (std::size_t bi = 0; bi < backends.size(); ++bi) {
        gf256_force_backend(backends[bi]);
        const auto word = rs.encode(data);
        if (bi == 0) {
          clean = word;
        } else {
          ASSERT_EQ(word, clean) << gf256_backend_name(backends[bi])
                                 << " k=" << k << " trial=" << trial;
        }
      }

      // Corrupt exactly t distinct positions — the worst correctable
      // word, so decode exercises full BM/Chien/Forney on every backend.
      auto corrupted = clean;
      std::vector<unsigned> positions(255);
      for (unsigned i = 0; i < 255; ++i) positions[i] = i;
      std::shuffle(positions.begin(), positions.end(), rng);
      for (unsigned e = 0; e < t; ++e) {
        corrupted[positions[e]] ^= static_cast<std::uint8_t>((rng() % 255) + 1);
      }

      for (const GfBackend backend : backends) {
        gf256_force_backend(backend);
        auto word = corrupted;
        const RsDecodeResult res = rs.decode(word);
        EXPECT_TRUE(res.ok) << gf256_backend_name(backend) << " k=" << k;
        EXPECT_EQ(res.corrected_symbols, t) << gf256_backend_name(backend);
        ASSERT_EQ(word, clean) << gf256_backend_name(backend) << " k=" << k
                               << " trial=" << trial;
      }
    }
  }
  gf256_reset_backend();
}

}  // namespace
}  // namespace tbi::fec
