#include "dram/energy.hpp"

#include <gtest/gtest.h>

#include "dram/standards.hpp"

namespace tbi::dram {
namespace {

PhaseStats make_stats(std::uint64_t reads, std::uint64_t writes,
                      std::uint64_t acts, std::uint64_t refs, Ps elapsed) {
  PhaseStats s;
  s.reads = reads;
  s.writes = writes;
  s.bursts = reads + writes;
  s.activates = acts;
  s.refreshes = refs;
  s.start = 0;
  s.end = elapsed;
  s.busy = 0;
  return s;
}

TEST(Energy, ComponentsAddUp) {
  const DeviceConfig& dev = *find_config("DDR4-3200");
  const auto s = make_stats(1000, 500, 100, 10, 1000000);
  const auto r = compute_energy(dev, s, RefreshMode::AllBank);
  EXPECT_DOUBLE_EQ(r.total_nj(), r.act_pre_nj + r.rd_nj + r.wr_nj +
                                     r.refresh_nj + r.background_nj);
  EXPECT_NEAR(r.rd_nj, 1e-3 * dev.energy.rd_pj * 1000, 1e-9);
  EXPECT_NEAR(r.wr_nj, 1e-3 * dev.energy.wr_pj * 500, 1e-9);
  EXPECT_NEAR(r.act_pre_nj, 1e-3 * dev.energy.act_pre_pj * 100, 1e-9);
}

TEST(Energy, BackgroundScalesWithTime) {
  const DeviceConfig& dev = *find_config("DDR4-3200");
  const auto a = compute_energy(dev, make_stats(0, 0, 0, 0, 1000000),
                                RefreshMode::Disabled);
  const auto b = compute_energy(dev, make_stats(0, 0, 0, 0, 2000000),
                                RefreshMode::Disabled);
  EXPECT_NEAR(b.background_nj, 2 * a.background_nj, 1e-9);
  // 100 mW for 1 us = 100 nJ (DDR4-3200 background is 110 mW).
  EXPECT_NEAR(a.background_nj, dev.energy.background_mw, 1e-9);
}

TEST(Energy, GroupRefreshScaledToAllBankEquivalent)  {
  const DeviceConfig& dev = *find_config("LPDDR4-4266");
  const auto s = make_stats(0, 0, 0, dev.banks, 0);  // one full rotation
  const auto pb = compute_energy(dev, s, RefreshMode::PerBank);
  PhaseStats one_ab = make_stats(0, 0, 0, 1, 0);
  const auto ab = compute_energy(dev, one_ab, RefreshMode::AllBank);
  EXPECT_NEAR(pb.refresh_nj, ab.refresh_nj, 1e-9)
      << "a full per-bank rotation equals one all-bank refresh";
}

TEST(Energy, MoreActivatesCostMore) {
  const DeviceConfig& dev = *find_config("LPDDR5-8533");
  const auto low = compute_energy(dev, make_stats(1000, 0, 10, 0, 1000000),
                                  RefreshMode::Disabled);
  const auto high = compute_energy(dev, make_stats(1000, 0, 900, 0, 1000000),
                                   RefreshMode::Disabled);
  EXPECT_GT(high.total_nj(), low.total_nj());
}

TEST(Energy, NjPerByte) {
  const DeviceConfig& dev = *find_config("DDR3-800");
  const auto r = compute_energy(dev, make_stats(100, 0, 0, 0, 0),
                                RefreshMode::Disabled);
  EXPECT_GT(r.nj_per_byte(100 * dev.burst_bytes), 0.0);
  EXPECT_DOUBLE_EQ(r.nj_per_byte(0), 0.0);
}

}  // namespace
}  // namespace tbi::dram
