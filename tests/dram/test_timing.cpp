#include "dram/timing.hpp"

#include <gtest/gtest.h>

#include "dram/standards.hpp"

namespace tbi::dram {
namespace {

TimingParams valid_params() {
  return find_config("DDR4-3200")->timing;
}

TEST(Timing, StandardParamsValidate) {
  EXPECT_NO_THROW(valid_params().validate());
}

TEST(Timing, RejectsZeroClock) {
  TimingParams t = valid_params();
  t.tCK = 0;
  EXPECT_THROW(t.validate(), std::invalid_argument);
}

TEST(Timing, RejectsInconsistentRowCycle) {
  TimingParams t = valid_params();
  t.tRC = t.tRAS + t.tRP - 1;
  EXPECT_THROW(t.validate(), std::invalid_argument);
}

TEST(Timing, RejectsRasShorterThanRcd) {
  TimingParams t = valid_params();
  t.tRAS = t.tRCD - 1;
  t.tRC = t.tRAS + t.tRP;
  EXPECT_THROW(t.validate(), std::invalid_argument);
}

TEST(Timing, RejectsInvertedRrd) {
  TimingParams t = valid_params();
  t.tRRD_L = t.tRRD_S - 1;
  EXPECT_THROW(t.validate(), std::invalid_argument);
}

TEST(Timing, RejectsInvertedCcd) {
  TimingParams t = valid_params();
  t.tCCD_L = t.tCCD_S - 1;
  EXPECT_THROW(t.validate(), std::invalid_argument);
}

TEST(Timing, RejectsFawBelowRrd) {
  TimingParams t = valid_params();
  t.tFAW = t.tRRD_S - 1;
  EXPECT_THROW(t.validate(), std::invalid_argument);
}

TEST(Timing, RejectsRefreshWithoutRfc) {
  TimingParams t = valid_params();
  t.tRFC_ab = 0;
  EXPECT_THROW(t.validate(), std::invalid_argument);
}

TEST(Timing, RejectsRefcIntervalBelowRfc) {
  TimingParams t = valid_params();
  t.tREFI = t.tRFC_ab;
  EXPECT_THROW(t.validate(), std::invalid_argument);
}

TEST(Timing, RefreshDisabledIsLegal) {
  TimingParams t = valid_params();
  t.tREFI = 0;
  EXPECT_NO_THROW(t.validate());
}

}  // namespace
}  // namespace tbi::dram
