#include "dram/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "dram/standards.hpp"
#include "dram/stream.hpp"
#include "interleaver/streams.hpp"
#include "mapping/factory.hpp"

namespace tbi::dram {
namespace {

TEST(Trace, FormatParseRoundTrip) {
  Command cmd{.kind = CommandKind::Rd, .issue = 123456789, .bank = 7, .row = 42,
              .column = 99, .data_start = 123470539, .data_end = 123473039};
  Command back;
  ASSERT_TRUE(parse_command(format_command(cmd), back));
  EXPECT_EQ(back.kind, cmd.kind);
  EXPECT_EQ(back.issue, cmd.issue);
  EXPECT_EQ(back.bank, cmd.bank);
  EXPECT_EQ(back.row, cmd.row);
  EXPECT_EQ(back.column, cmd.column);
  EXPECT_EQ(back.data_start, cmd.data_start);
  EXPECT_EQ(back.data_end, cmd.data_end);
}

TEST(Trace, AllKindsRoundTrip) {
  for (CommandKind kind : {CommandKind::Act, CommandKind::Pre, CommandKind::Rd,
                           CommandKind::Wr, CommandKind::RefAb, CommandKind::RefGrp}) {
    Command cmd{.kind = kind, .issue = 1, .bank = 2, .row = 3, .column = 4};
    Command back;
    ASSERT_TRUE(parse_command(format_command(cmd), back));
    EXPECT_EQ(back.kind, kind);
  }
}

TEST(Trace, SkipsCommentsAndBlankLines) {
  Command out;
  EXPECT_FALSE(parse_command("# a comment", out));
  EXPECT_FALSE(parse_command("", out));
  EXPECT_FALSE(parse_command("   \t", out));
}

TEST(Trace, RejectsMalformedLines) {
  Command out;
  EXPECT_THROW(parse_command("12 BOGUS 1 2 3 4 5", out), std::invalid_argument);
  EXPECT_THROW(parse_command("not a trace line", out), std::invalid_argument);
}

TEST(Trace, RecorderCapturesControllerRun) {
  const DeviceConfig& dev = *find_config("DDR4-3200");
  std::ostringstream sink;
  TraceRecorder recorder(sink);
  recorder.comment("write phase");

  Controller ctl(dev, {});
  ctl.set_observer(&recorder);
  std::vector<Request> reqs;
  for (unsigned i = 0; i < 2000; ++i) {
    reqs.push_back(Request{Address{i % dev.banks, (i / 512) % 4,
                                   (i / dev.banks) % dev.columns_per_page},
                           i % 2 == 0, 0});
  }
  VectorStream stream(std::move(reqs));
  const auto stats = ctl.run_phase(stream, "trace-test");

  std::istringstream src(sink.str());
  const auto commands = parse_trace(src);
  EXPECT_EQ(commands.size(), recorder.commands_written());
  const auto summary = summarize_trace(commands, dev.banks);
  EXPECT_EQ(summary.reads + summary.writes, stats.bursts);
  EXPECT_EQ(summary.activates, stats.activates);
  EXPECT_EQ(summary.precharges, stats.precharges);
  EXPECT_EQ(summary.refreshes, stats.refreshes);
  EXPECT_GT(summary.last_issue, summary.first_issue);
}

TEST(Trace, DiagonalMappingBalancesBanks) {
  // The diagonal mapping assigns each anti-diagonal (x + y = const) to one
  // bank, and anti-diagonals of a *triangle* vary in length, so per-bank
  // loads differ by roughly NB/side — bounded, not exactly equal. For
  // side 200 / 16 banks that is ~14 %; what must never happen is a bank
  // being starved or doubly loaded (imbalance near 1).
  const DeviceConfig& dev = *find_config("DDR4-3200");
  std::ostringstream sink;
  TraceRecorder recorder(sink);
  Controller ctl(dev, {});
  ctl.set_observer(&recorder);

  const auto m = mapping::make_mapping("optimized", dev, 200);
  interleaver::WritePhaseStream stream(*m);
  ctl.run_phase(stream, "balance");

  std::istringstream src(sink.str());
  const auto summary = summarize_trace(parse_trace(src), dev.banks);
  EXPECT_LT(summary.bank_imbalance(), 0.25);
  for (const auto n : summary.per_bank_accesses) EXPECT_GT(n, 0u);
}

TEST(Trace, SummaryHandlesEmptyAndForeignBanks) {
  const auto empty = summarize_trace({}, 8);
  EXPECT_EQ(empty.activates, 0u);
  EXPECT_DOUBLE_EQ(empty.bank_imbalance(), 0.0);
  // Banks beyond range are counted in kind totals but not per-bank.
  const auto s = summarize_trace(
      {Command{.kind = CommandKind::Rd, .issue = 5, .bank = 99}}, 8);
  EXPECT_EQ(s.reads, 1u);
}

}  // namespace
}  // namespace tbi::dram
