#include "dram/standards.hpp"

#include <gtest/gtest.h>

#include <set>

namespace tbi::dram {
namespace {

TEST(Standards, ExactlyThePapersTenConfigurations) {
  const auto& configs = standard_configs();
  ASSERT_EQ(configs.size(), 10u);
  const std::vector<std::string> expected = {
      "DDR3-800",    "DDR3-1600",  "DDR4-1600",   "DDR4-3200",  "DDR5-3200",
      "DDR5-6400",   "LPDDR4-2133", "LPDDR4-4266", "LPDDR5-4267", "LPDDR5-8533"};
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(configs[i].name, expected[i]) << "Table I row order";
  }
}

TEST(Standards, FindConfig) {
  EXPECT_NE(find_config("DDR4-3200"), nullptr);
  EXPECT_EQ(find_config("DDR4-3200")->standard, Standard::DDR4);
  EXPECT_EQ(find_config("DDR6-9999"), nullptr);
}

TEST(Standards, AllValidate) {
  for (const auto& c : standard_configs()) EXPECT_NO_THROW(c.validate()) << c.name;
}

TEST(Standards, BankGroupsMatchStandard) {
  for (const auto& c : standard_configs()) {
    switch (c.standard) {
      case Standard::DDR3:
      case Standard::LPDDR4:
        EXPECT_EQ(c.bank_groups, 1u) << c.name << " has no bank groups";
        break;
      case Standard::DDR4:
        EXPECT_EQ(c.bank_groups, 4u) << c.name;
        EXPECT_EQ(c.banks, 16u) << c.name;
        break;
      case Standard::DDR5:
        EXPECT_EQ(c.bank_groups, 8u) << c.name;
        EXPECT_EQ(c.banks, 32u) << c.name;
        break;
      case Standard::LPDDR5:
        EXPECT_EQ(c.bank_groups, 4u) << c.name;
        EXPECT_EQ(c.banks, 16u) << c.name;
        break;
    }
  }
}

TEST(Standards, FasterGradeOfEachPairHasShorterBurst) {
  const auto& c = standard_configs();
  for (std::size_t i = 0; i + 1 < c.size(); i += 2) {
    EXPECT_EQ(c[i].standard, c[i + 1].standard);
    EXPECT_LT(c[i].data_rate_mts, c[i + 1].data_rate_mts);
    EXPECT_GT(c[i].burst_time, c[i + 1].burst_time);
    // Core row timings are specified in nanoseconds, so they must not
    // scale down proportionally with the data rate (bin-to-bin jitter of a
    // few ns is normal).
    EXPECT_LT(c[i + 1].timing.tRCD, c[i].timing.tRCD * 3 / 2) << c[i].name;
    EXPECT_GT(c[i + 1].timing.tRCD, c[i].timing.tRCD / 2) << c[i].name;
  }
}

TEST(Standards, BankGroupStandardsSeparateCcd) {
  for (const auto& c : standard_configs()) {
    if (c.bank_groups > 1 && c.data_rate_mts >= 3200) {
      EXPECT_GE(c.timing.tCCD_L, c.timing.tCCD_S) << c.name;
    }
    if (c.bank_groups == 1) {
      EXPECT_EQ(c.timing.tCCD_L, c.timing.tCCD_S) << c.name;
    }
  }
}

TEST(Standards, PeakBandwidthMatchesDataRate) {
  // 64-bit-equivalent channels: peak = burst_bytes / burst_time.
  const auto* ddr4 = find_config("DDR4-3200");
  EXPECT_NEAR(ddr4->peak_bandwidth_gbps(), 204.8, 0.1);
  const auto* lp5 = find_config("LPDDR5-8533");
  EXPECT_NEAR(lp5->peak_bandwidth_gbps(), 8000.0 * 32 / 1875, 0.1);
}

TEST(Standards, RefreshDefaultsFollowStandard) {
  EXPECT_EQ(find_config("DDR3-800")->default_refresh, RefreshMode::AllBank);
  EXPECT_EQ(find_config("DDR4-3200")->default_refresh, RefreshMode::AllBank);
  EXPECT_EQ(find_config("DDR5-6400")->default_refresh, RefreshMode::SameBank);
  EXPECT_EQ(find_config("LPDDR4-2133")->default_refresh, RefreshMode::PerBank);
  EXPECT_EQ(find_config("LPDDR5-8533")->default_refresh, RefreshMode::PerBank);
}

TEST(Standards, CapacityIsPlausible) {
  for (const auto& c : standard_configs()) {
    EXPECT_GE(c.capacity_bytes(), 1ULL << 30) << c.name;  // >= 1 GiB
    EXPECT_LE(c.capacity_bytes(), 1ULL << 36) << c.name;  // <= 64 GiB
    // Must fit the paper's interleaver: 12.5 M x 3 bit < capacity.
    EXPECT_GT(c.capacity_bytes() * 8, 12'500'000ULL * 3) << c.name;
  }
}

TEST(Standards, JsonRoundTripPreservesEverything) {
  for (const auto& c : standard_configs()) {
    const Json j = config_to_json(c);
    const DeviceConfig back = config_from_json(j);
    EXPECT_EQ(back.name, c.name);
    EXPECT_EQ(back.standard, c.standard);
    EXPECT_EQ(back.banks, c.banks);
    EXPECT_EQ(back.bank_groups, c.bank_groups);
    EXPECT_EQ(back.columns_per_page, c.columns_per_page);
    EXPECT_EQ(back.rows_per_bank, c.rows_per_bank);
    EXPECT_EQ(back.burst_bytes, c.burst_bytes);
    EXPECT_EQ(back.burst_time, c.burst_time);
    EXPECT_EQ(back.default_refresh, c.default_refresh);
    EXPECT_EQ(back.timing.tRCD, c.timing.tRCD);
    EXPECT_EQ(back.timing.tFAW, c.timing.tFAW);
    EXPECT_EQ(back.timing.tCCD_L, c.timing.tCCD_L);
    EXPECT_EQ(back.timing.tRFC_grp, c.timing.tRFC_grp);
    EXPECT_DOUBLE_EQ(back.energy.act_pre_pj, c.energy.act_pre_pj);
  }
}

TEST(Standards, ValidateRejectsBrokenGeometry) {
  DeviceConfig c = *find_config("DDR4-3200");
  c.banks = 12;  // not a power of two
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = *find_config("DDR4-3200");
  c.bank_groups = 3;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = *find_config("DDR4-3200");
  c.columns_per_page = 100;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = *find_config("DDR4-3200");
  c.burst_time = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}


TEST(Standards, ExtendedGradesValidateAndResolve) {
  const auto& ext = extended_configs();
  ASSERT_EQ(ext.size(), 5u);
  for (const auto& c : ext) {
    EXPECT_NO_THROW(c.validate()) << c.name;
    EXPECT_EQ(find_config(c.name), &c) << c.name;
  }
  // Extended grades sit strictly between the paper's two grades of the
  // same standard in data rate.
  EXPECT_EQ(find_config("DDR4-2400")->standard, Standard::DDR4);
  EXPECT_GT(find_config("DDR4-2400")->data_rate_mts,
            find_config("DDR4-1600")->data_rate_mts);
  EXPECT_LT(find_config("DDR4-2400")->data_rate_mts,
            find_config("DDR4-3200")->data_rate_mts);
  EXPECT_GT(find_config("LPDDR5-6400")->burst_time,
            find_config("LPDDR5-8533")->burst_time);
}

TEST(Standards, ExtendedGradesShareGeometryWithTheirFamily) {
  for (const auto& c : extended_configs()) {
    // Find the paper sibling of the same standard and compare geometry.
    for (const auto& base : standard_configs()) {
      if (base.standard != c.standard) continue;
      EXPECT_EQ(c.banks, base.banks) << c.name;
      EXPECT_EQ(c.bank_groups, base.bank_groups) << c.name;
      EXPECT_EQ(c.columns_per_page, base.columns_per_page) << c.name;
      EXPECT_EQ(c.burst_bytes, base.burst_bytes) << c.name;
    }
  }
}

TEST(Standards, ExtendedGradesJsonRoundTrip) {
  for (const auto& c : extended_configs()) {
    const DeviceConfig back = config_from_json(config_to_json(c));
    EXPECT_EQ(back.name, c.name);
    EXPECT_EQ(back.burst_time, c.burst_time);
    EXPECT_EQ(back.timing.tFAW, c.timing.tFAW);
  }
}

}  // namespace
}  // namespace tbi::dram
