#include <gtest/gtest.h>

#include "dram/checker.hpp"
#include "dram/controller.hpp"
#include "dram/standards.hpp"

namespace tbi::dram {
namespace {

std::vector<Request> rotating_traffic(const DeviceConfig& dev, unsigned count) {
  std::vector<Request> v;
  for (unsigned i = 0; i < count; ++i) {
    v.push_back(Request{Address{i % dev.banks, 0,
                                (i / dev.banks) % dev.columns_per_page},
                        false, 0});
  }
  return v;
}

PhaseStats run_mode(const DeviceConfig& dev, RefreshMode mode, unsigned count,
                    TimingChecker* checker = nullptr) {
  ControllerConfig cfg;
  cfg.use_device_default_refresh = false;
  cfg.refresh_mode = mode;
  Controller ctl(dev, cfg);
  if (checker) ctl.set_observer(checker);
  VectorStream s(rotating_traffic(dev, count));
  return ctl.run_phase(s, "refresh-test");
}

TEST(Refresh, DisabledIssuesNoRefreshes) {
  const auto stats = run_mode(*find_config("DDR4-3200"), RefreshMode::Disabled, 20000);
  EXPECT_EQ(stats.refreshes, 0u);
}

TEST(Refresh, AllBankCadenceMatchesTrefi) {
  const DeviceConfig& dev = *find_config("DDR4-3200");
  const auto stats = run_mode(dev, RefreshMode::AllBank, 200000);
  const double expected =
      static_cast<double>(stats.end) / static_cast<double>(dev.timing.tREFI);
  EXPECT_NEAR(static_cast<double>(stats.refreshes), expected, expected * 0.1 + 2);
}

TEST(Refresh, PerBankCadenceIsBanksTimesFaster) {
  const DeviceConfig& dev = *find_config("LPDDR4-4266");
  const auto stats = run_mode(dev, RefreshMode::PerBank, 200000);
  const double expected = static_cast<double>(stats.end) * dev.banks /
                          static_cast<double>(dev.timing.tREFI);
  EXPECT_NEAR(static_cast<double>(stats.refreshes), expected, expected * 0.1 + 2);
}

TEST(Refresh, AllBankCostsMoreBandwidthThanDisabled) {
  const DeviceConfig& dev = *find_config("DDR4-3200");
  const auto with = run_mode(dev, RefreshMode::AllBank, 100000);
  const auto without = run_mode(dev, RefreshMode::Disabled, 100000);
  EXPECT_LT(with.utilization(), without.utilization());
  // All-bank refresh overhead is roughly tRFC/tREFI.
  const double overhead = static_cast<double>(dev.timing.tRFC_ab) /
                          static_cast<double>(dev.timing.tREFI);
  EXPECT_NEAR(without.utilization() - with.utilization(), overhead, 0.03);
}

TEST(Refresh, PerBankIsCheaperThanAllBankUnderLoad) {
  // Per-bank refresh blocks one bank while the other banks keep serving:
  // with bank-parallel traffic it must beat all-bank refresh.
  const DeviceConfig& dev = *find_config("LPDDR4-4266");
  const auto ab = run_mode(dev, RefreshMode::AllBank, 100000);
  const auto pb = run_mode(dev, RefreshMode::PerBank, 100000);
  EXPECT_GT(pb.utilization(), ab.utilization() - 0.005);
}

TEST(Refresh, ModesAreProtocolClean) {
  for (const char* name : {"DDR4-3200", "DDR5-6400", "LPDDR4-4266", "LPDDR5-8533"}) {
    const DeviceConfig& dev = *find_config(name);
    for (RefreshMode mode : {RefreshMode::AllBank, RefreshMode::PerBank,
                             RefreshMode::SameBank, RefreshMode::Disabled}) {
      TimingChecker checker(dev, mode);
      try {
        run_mode(dev, mode, 50000, &checker);
      } catch (const std::invalid_argument&) {
        continue;  // mode unsustainable on this device (e.g. DDR5 per-bank)
      }
      const auto v = checker.finish();
      EXPECT_TRUE(v.empty()) << name << "/" << to_string(mode) << ": "
                             << (v.empty() ? "" : v.front());
    }
  }
}

TEST(Refresh, UnsustainableCadenceRejected) {
  // DDR5 per-bank refresh would need a REF every tREFI/32 = 122 ns with a
  // 160 ns cycle time — the controller must refuse instead of deadlocking.
  ControllerConfig cfg;
  cfg.use_device_default_refresh = false;
  cfg.refresh_mode = RefreshMode::PerBank;
  EXPECT_THROW(Controller(*find_config("DDR5-6400"), cfg), std::invalid_argument);
  EXPECT_THROW(Controller(*find_config("DDR5-3200"), cfg), std::invalid_argument);
  // The standard's own mode is fine.
  cfg.refresh_mode = RefreshMode::SameBank;
  EXPECT_NO_THROW(Controller(*find_config("DDR5-6400"), cfg));
}

TEST(Refresh, SameBankGroupsCoverAllBanksInRotation) {
  // DDR5 same-bank refresh rotates banks_per_group groups; after a long
  // run every bank must have been refreshed (indirectly observable via
  // protocol cleanliness with open-page traffic on all banks).
  const DeviceConfig& dev = *find_config("DDR5-3200");
  TimingChecker checker(dev, RefreshMode::SameBank);
  const auto stats = run_mode(dev, RefreshMode::SameBank, 300000, &checker);
  EXPECT_TRUE(checker.finish().empty());
  const double expected = static_cast<double>(stats.end) *
                          dev.banks_per_group() /
                          static_cast<double>(dev.timing.tREFI);
  EXPECT_NEAR(static_cast<double>(stats.refreshes), expected, expected * 0.1 + 2);
}

}  // namespace
}  // namespace tbi::dram
