/// \file test_scheduler_equivalence.cpp
/// The incremental FR-FCFS pick (per-bank bins, membership counts, global
/// data-slot floor) must be observationally identical to the brute-force
/// replan-everything reference (Policy::FrFcfsOracle): same command
/// stream, command for command, and same PhaseStats — over random request
/// mixes on DDR4, DDR5 and LPDDR4 geometries, across queue depths.
#include "dram/controller.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "dram/standards.hpp"

namespace tbi::dram {
namespace {

class CommandRecorder final : public CommandObserver {
 public:
  void on_command(const Command& cmd) override { commands.push_back(cmd); }
  std::vector<Command> commands;
};

bool same_command(const Command& a, const Command& b) {
  return a.kind == b.kind && a.issue == b.issue && a.bank == b.bank &&
         a.row == b.row && a.column == b.column && a.data_start == b.data_start &&
         a.data_end == b.data_end;
}

void expect_same_stats(const PhaseStats& a, const PhaseStats& b) {
  EXPECT_EQ(a.bursts, b.bursts);
  EXPECT_EQ(a.reads, b.reads);
  EXPECT_EQ(a.writes, b.writes);
  EXPECT_EQ(a.activates, b.activates);
  EXPECT_EQ(a.precharges, b.precharges);
  EXPECT_EQ(a.refreshes, b.refreshes);
  EXPECT_EQ(a.row_hits, b.row_hits);
  EXPECT_EQ(a.row_misses, b.row_misses);
  EXPECT_EQ(a.row_conflicts, b.row_conflicts);
  EXPECT_EQ(a.start, b.start);
  EXPECT_EQ(a.end, b.end);
  EXPECT_EQ(a.busy, b.busy);
}

/// Random mix with enough structure to hit every scheduling regime:
/// clustered rows (row hits and conflicts), all banks, both directions.
std::vector<Request> random_requests(const DeviceConfig& dev, Rng& rng,
                                     unsigned count, unsigned row_pool,
                                     double write_fraction) {
  std::vector<Request> v;
  v.reserve(count);
  for (unsigned i = 0; i < count; ++i) {
    Request r;
    r.addr.bank = static_cast<std::uint32_t>(rng.uniform(dev.banks));
    r.addr.row = static_cast<std::uint32_t>(rng.uniform(row_pool));
    r.addr.column = static_cast<std::uint32_t>(rng.uniform(dev.columns_per_page));
    r.is_write = rng.uniform_double() < write_fraction;
    v.push_back(r);
  }
  return v;
}

struct PolicyRun {
  std::vector<PhaseStats> stats;
  std::vector<Command> commands;
};

PolicyRun run_policy(const DeviceConfig& dev, ControllerConfig::Policy policy,
               unsigned queue_depth,
               const std::vector<std::vector<Request>>& phases) {
  ControllerConfig cfg;
  cfg.policy = policy;
  cfg.queue_depth = queue_depth;
  Controller ctl(dev, cfg);
  CommandRecorder recorder;
  ctl.set_observer(&recorder);
  PolicyRun run;
  for (const auto& reqs : phases) {
    VectorStream stream(reqs);
    run.stats.push_back(ctl.run_phase(stream, "phase"));
  }
  run.commands = std::move(recorder.commands);
  return run;
}

class SchedulerEquivalence : public ::testing::TestWithParam<const char*> {};

TEST_P(SchedulerEquivalence, IncrementalMatchesOracleOnRandomStreams) {
  const DeviceConfig& dev = *find_config(GetParam());
  Rng rng(0xE9u ^ std::hash<std::string>{}(dev.name));
  for (const unsigned queue_depth : {3u, 16u, 64u}) {
    for (const unsigned row_pool : {2u, 8u, 64u}) {
      for (const double write_fraction : {0.0, 0.5, 1.0}) {
        // Two chained phases so bank/bus/refresh state carries across.
        std::vector<std::vector<Request>> phases = {
            random_requests(dev, rng, 1500, row_pool, write_fraction),
            random_requests(dev, rng, 500, row_pool, 1.0 - write_fraction)};
        const PolicyRun fast = run_policy(dev, ControllerConfig::Policy::FrFcfs,
                                    queue_depth, phases);
        const PolicyRun oracle = run_policy(dev, ControllerConfig::Policy::FrFcfsOracle,
                                      queue_depth, phases);
        ASSERT_EQ(fast.stats.size(), oracle.stats.size());
        for (std::size_t p = 0; p < fast.stats.size(); ++p) {
          expect_same_stats(fast.stats[p], oracle.stats[p]);
        }
        ASSERT_EQ(fast.commands.size(), oracle.commands.size())
            << dev.name << " q" << queue_depth << " rows " << row_pool
            << " wf " << write_fraction;
        for (std::size_t c = 0; c < fast.commands.size(); ++c) {
          ASSERT_TRUE(same_command(fast.commands[c], oracle.commands[c]))
              << dev.name << " q" << queue_depth << " command " << c << " ("
              << to_string(fast.commands[c].kind) << " vs "
              << to_string(oracle.commands[c].kind) << ")";
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, SchedulerEquivalence,
                         ::testing::Values("DDR4-3200", "DDR5-6400",
                                           "LPDDR4-4266"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& ch : name)
                             if (ch == '-') ch = '_';
                           return name;
                         });

}  // namespace
}  // namespace tbi::dram
