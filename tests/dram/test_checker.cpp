#include "dram/checker.hpp"

#include <gtest/gtest.h>

#include "dram/standards.hpp"

namespace tbi::dram {
namespace {

// Hand-crafted command streams that violate exactly one rule each; the
// checker must catch every one. Times in ps on DDR4-3200 timing.

const DeviceConfig& dev() { return *find_config("DDR4-3200"); }

Command act(Ps t, std::uint32_t bank, std::uint32_t row) {
  return Command{.kind = CommandKind::Act, .issue = t, .bank = bank, .row = row};
}

Command pre(Ps t, std::uint32_t bank) {
  return Command{.kind = CommandKind::Pre, .issue = t, .bank = bank};
}

Command rd(Ps t, std::uint32_t bank, std::uint32_t row, Ps data_start) {
  return Command{.kind = CommandKind::Rd, .issue = t, .bank = bank, .row = row,
                 .column = 0, .data_start = data_start,
                 .data_end = data_start + dev().burst_time};
}

std::vector<std::string> check(std::initializer_list<Command> cmds) {
  TimingChecker checker(dev(), RefreshMode::Disabled);
  for (const auto& c : cmds) checker.on_command(c);
  return checker.finish();
}

TEST(Checker, AcceptsLegalMissSequence) {
  const TimingParams& t = dev().timing;
  const Ps a = 0;
  const Ps cas = a + t.tRCD;
  EXPECT_TRUE(check({act(a, 0, 5), rd(cas, 0, 5, cas + t.CL)}).empty());
}

TEST(Checker, CatchesActToOpenBank) {
  const auto v = check({act(0, 0, 1), act(100000, 0, 2)});
  ASSERT_FALSE(v.empty());
  EXPECT_NE(v.front().find("ACT to open bank"), std::string::npos);
}

TEST(Checker, CatchesRcdViolation) {
  const TimingParams& t = dev().timing;
  const auto v = check({act(0, 0, 1), rd(t.tRCD - 1, 0, 1, t.tRCD - 1 + t.CL)});
  ASSERT_FALSE(v.empty());
  EXPECT_NE(v.front().find("tRCD"), std::string::npos);
}

TEST(Checker, CatchesRasViolation) {
  const TimingParams& t = dev().timing;
  const auto v = check({act(0, 0, 1), pre(t.tRAS - 1, 0)});
  ASSERT_FALSE(v.empty());
  EXPECT_NE(v.front().find("tRAS"), std::string::npos);
}

TEST(Checker, CatchesRpViolation) {
  const TimingParams& t = dev().timing;
  const auto v = check({act(0, 0, 1), pre(t.tRAS, 0),
                        act(t.tRAS + t.tRP - 1, 0, 2)});
  ASSERT_FALSE(v.empty());
  EXPECT_NE(v.front().find("tRP"), std::string::npos);
}

TEST(Checker, CatchesRrdSViolation) {
  const TimingParams& t = dev().timing;
  // Banks 0 and 1 are in different groups (group-major ids).
  const auto v = check({act(0, 0, 1), act(t.tRRD_S - 1, 1, 1)});
  ASSERT_FALSE(v.empty());
  EXPECT_NE(v.front().find("tRRD_S"), std::string::npos);
}

TEST(Checker, CatchesRrdLViolation) {
  const TimingParams& t = dev().timing;
  // Banks 0 and 4 share bank group 0 (16 banks, 4 groups).
  const auto v = check({act(0, 0, 1), act(t.tRRD_L - 1, 4, 1)});
  ASSERT_FALSE(v.empty());
  EXPECT_NE(v.front().find("tRRD_L"), std::string::npos);
}

TEST(Checker, CatchesFawViolation) {
  const TimingParams& t = dev().timing;
  // Five activates, spaced legally pairwise but all within tFAW.
  const Ps d = t.tRRD_L;
  const auto v = check({act(0 * d, 0, 1), act(1 * d, 1, 1), act(2 * d, 2, 1),
                        act(3 * d, 3, 1), act(4 * d, 4, 1)});
  ASSERT_FALSE(v.empty());
  EXPECT_NE(v.front().find("tFAW"), std::string::npos);
}

TEST(Checker, AcceptsFiveActsOutsideFaw) {
  const TimingParams& t = dev().timing;
  const Ps d = t.tFAW / 4 + 100;
  EXPECT_TRUE(check({act(0 * d, 0, 1), act(1 * d, 1, 1), act(2 * d, 2, 1),
                     act(3 * d, 3, 1), act(4 * d, 4, 1)})
                  .empty());
}

TEST(Checker, CatchesCasToClosedBank) {
  const TimingParams& t = dev().timing;
  const auto v = check({rd(0, 0, 1, t.CL)});
  ASSERT_FALSE(v.empty());
  EXPECT_NE(v.front().find("CAS to closed bank"), std::string::npos);
}

TEST(Checker, CatchesCasToWrongRow) {
  const TimingParams& t = dev().timing;
  const Ps cas = t.tRCD;
  const auto v = check({act(0, 0, 1), rd(cas, 0, 2, cas + t.CL)});
  ASSERT_FALSE(v.empty());
  EXPECT_NE(v.front().find("wrong row"), std::string::npos);
}

TEST(Checker, CatchesCcdSViolation) {
  const TimingParams& t = dev().timing;
  const Ps a = 0;
  const Ps cas1 = a + t.tRCD + t.tRRD_S;  // both banks activated by then
  const auto v = check({act(0, 0, 1), act(t.tRRD_S, 1, 1),
                        rd(cas1, 0, 1, cas1 + t.CL),
                        rd(cas1 + t.tCCD_S - 1, 1, 1, cas1 + t.tCCD_S - 1 + t.CL)});
  ASSERT_FALSE(v.empty());
  EXPECT_NE(v.front().find("tCCD_S"), std::string::npos);
}

TEST(Checker, CatchesCcdLViolation) {
  const TimingParams& t = dev().timing;
  const Ps cas1 = t.tRRD_L + t.tRCD;
  // Banks 0 and 4: same bank group -> tCCD_L applies.
  const Ps cas2 = cas1 + t.tCCD_L - 1;
  const auto v = check({act(0, 0, 1), act(t.tRRD_L, 4, 1),
                        rd(cas1, 0, 1, cas1 + t.CL), rd(cas2, 4, 1, cas2 + t.CL)});
  ASSERT_FALSE(v.empty());
  EXPECT_NE(v.front().find("tCCD_L"), std::string::npos);
}

TEST(Checker, CatchesDataBusOverlap) {
  const TimingParams& t = dev().timing;
  const Ps cas1 = t.tRRD_S + t.tRCD;
  const Ps cas2 = cas1 + t.tCCD_S;
  // Legal command spacing but data_start overlapping the previous burst.
  TimingChecker checker(dev(), RefreshMode::Disabled);
  checker.on_command(act(0, 0, 1));
  checker.on_command(act(t.tRRD_S, 1, 1));
  checker.on_command(rd(cas1, 0, 1, cas1 + t.CL));
  Command second = rd(cas2, 1, 1, cas1 + t.CL + dev().burst_time / 2);
  checker.on_command(second);
  const auto v = checker.finish();
  ASSERT_FALSE(v.empty());
  EXPECT_NE(v.front().find("data bus overlap"), std::string::npos);
}

TEST(Checker, CatchesCasLatencyViolation) {
  const TimingParams& t = dev().timing;
  const Ps cas = t.tRCD;
  const auto v = check({act(0, 0, 1), rd(cas, 0, 1, cas + t.CL - 1)});
  ASSERT_FALSE(v.empty());
  EXPECT_NE(v.front().find("CAS latency"), std::string::npos);
}

TEST(Checker, CatchesRefreshWithOpenBank) {
  TimingChecker checker(dev(), RefreshMode::AllBank);
  checker.on_command(act(0, 0, 1));
  checker.on_command(Command{.kind = CommandKind::RefAb, .issue = 1000000});
  const auto v = checker.finish();
  ASSERT_FALSE(v.empty());
  EXPECT_NE(v.front().find("REFab with open bank"), std::string::npos);
}

TEST(Checker, SortsOutOfOrderEmission) {
  // The controller may emit commands out of global time order; the checker
  // must sort before validating.
  const TimingParams& t = dev().timing;
  TimingChecker checker(dev(), RefreshMode::Disabled);
  const Ps cas = t.tRCD;
  checker.on_command(rd(cas, 0, 1, cas + t.CL));  // emitted first,
  checker.on_command(act(0, 0, 1));               // issued earlier
  EXPECT_TRUE(checker.finish().empty());
}

}  // namespace
}  // namespace tbi::dram
