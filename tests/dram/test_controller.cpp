#include "dram/controller.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "dram/checker.hpp"
#include "dram/standards.hpp"

namespace tbi::dram {
namespace {

std::vector<Request> sequential_hits(std::uint32_t bank, std::uint32_t row,
                                     unsigned count, bool write,
                                     unsigned columns_per_page) {
  std::vector<Request> v;
  for (unsigned i = 0; i < count; ++i) {
    v.push_back(Request{Address{bank, row, i % columns_per_page}, write, 0});
  }
  return v;
}

PhaseStats run(const DeviceConfig& dev, std::vector<Request> reqs,
               ControllerConfig cfg = {}) {
  Controller ctl(dev, cfg);
  VectorStream stream(std::move(reqs));
  return ctl.run_phase(stream, "test");
}

TEST(Controller, CountsAreConsistent) {
  const DeviceConfig& dev = *find_config("DDR4-3200");
  const auto stats = run(dev, sequential_hits(0, 0, 500, false, dev.columns_per_page));
  EXPECT_EQ(stats.bursts, 500u);
  EXPECT_EQ(stats.reads, 500u);
  EXPECT_EQ(stats.writes, 0u);
  EXPECT_EQ(stats.row_hits + stats.row_misses + stats.row_conflicts, 500u);
  EXPECT_EQ(stats.row_misses, 1u);  // only the very first access
  EXPECT_EQ(stats.busy, 500 * dev.burst_time);
  EXPECT_GT(stats.end, stats.start);
}

TEST(Controller, SingleBankSamePageIsCcdLLimited) {
  // DDR5-6400: tCCD_L (5 ns) is twice the burst time (2.5 ns), so a
  // same-bank hit stream can only reach ~50 % utilization.
  const DeviceConfig& dev = *find_config("DDR5-6400");
  ControllerConfig cfg;
  cfg.use_device_default_refresh = false;
  cfg.refresh_mode = RefreshMode::Disabled;
  const auto stats = run(dev, sequential_hits(0, 0, 2000, false, dev.columns_per_page), cfg);
  EXPECT_NEAR(stats.utilization(),
              static_cast<double>(dev.burst_time) / dev.timing.tCCD_L, 0.02);
}

TEST(Controller, BankGroupRotationReachesFullBandwidth) {
  // Same device, but rotating across bank groups engages tCCD_S == burst.
  const DeviceConfig& dev = *find_config("DDR5-6400");
  ControllerConfig cfg;
  cfg.use_device_default_refresh = false;
  cfg.refresh_mode = RefreshMode::Disabled;
  std::vector<Request> reqs;
  for (unsigned i = 0; i < 4000; ++i) {
    const std::uint32_t bank = i % dev.bank_groups;  // group-major ids
    reqs.push_back(Request{Address{bank, 0, (i / dev.bank_groups) %
                                               dev.columns_per_page},
                           false, 0});
  }
  const auto stats = run(dev, std::move(reqs), cfg);
  EXPECT_GT(stats.utilization(), 0.98);
}

TEST(Controller, SingleBankRowPingPongIsTrcLimited) {
  const DeviceConfig& dev = *find_config("DDR4-3200");
  ControllerConfig cfg;
  cfg.use_device_default_refresh = false;
  cfg.refresh_mode = RefreshMode::Disabled;
  // FCFS keeps the strict row alternation (FR-FCFS would legally batch
  // requests by row and dodge most of the conflicts).
  cfg.policy = ControllerConfig::Policy::Fcfs;
  std::vector<Request> reqs;
  for (unsigned i = 0; i < 1000; ++i) {
    reqs.push_back(Request{Address{0, i % 2, 0}, false, 0});
  }
  const auto stats = run(dev, std::move(reqs), cfg);
  // One burst per row cycle.
  const double expected = static_cast<double>(dev.burst_time) / dev.timing.tRC;
  EXPECT_NEAR(stats.utilization(), expected, 0.01);
  EXPECT_EQ(stats.row_conflicts, 999u);  // all but the first (miss) access
}

TEST(Controller, EightBankConflictRotationIsFawLimited) {
  // DDR3-1600 all-miss rotation: ACT rate limited by tFAW/4 = 7.5 ns
  // against a 5 ns burst -> ~2/3 utilization.
  const DeviceConfig& dev = *find_config("DDR3-1600");
  ControllerConfig cfg;
  cfg.use_device_default_refresh = false;
  cfg.refresh_mode = RefreshMode::Disabled;
  std::vector<Request> reqs;
  for (unsigned i = 0; i < 8000; ++i) {
    const std::uint32_t bank = i % dev.banks;
    const std::uint32_t row = static_cast<std::uint32_t>(i / dev.banks);
    reqs.push_back(Request{Address{bank, row, 0}, false, 0});
  }
  const auto stats = run(dev, std::move(reqs), cfg);
  const double expected = static_cast<double>(dev.burst_time) /
                          (static_cast<double>(dev.timing.tFAW) / 4.0);
  EXPECT_NEAR(stats.utilization(), expected, 0.03);
}

TEST(Controller, FrFcfsBeatsFcfsOnHitConflictMix) {
  const DeviceConfig& dev = *find_config("DDR4-3200");
  // Interleave: conflicting accesses on bank 0, hits on banks 1..15.
  std::vector<Request> reqs;
  for (unsigned i = 0; i < 4000; ++i) {
    if (i % 8 == 0) {
      reqs.push_back(Request{Address{0, static_cast<std::uint32_t>(i), 0}, false, 0});
    } else {
      const std::uint32_t bank = 1 + (i % 15);
      reqs.push_back(Request{Address{bank, 0, i % dev.columns_per_page}, false, 0});
    }
  }
  ControllerConfig frfcfs;
  ControllerConfig fcfs;
  fcfs.policy = ControllerConfig::Policy::Fcfs;
  const auto a = run(dev, reqs, frfcfs);
  const auto b = run(dev, reqs, fcfs);
  EXPECT_GT(a.utilization(), b.utilization());
}

TEST(Controller, WriteToReadTurnaroundCostsBandwidth) {
  const DeviceConfig& dev = *find_config("DDR4-3200");
  ControllerConfig cfg;
  cfg.use_device_default_refresh = false;
  cfg.refresh_mode = RefreshMode::Disabled;
  cfg.policy = ControllerConfig::Policy::Fcfs;  // keep the alternation
  std::vector<Request> alternating;
  std::vector<Request> pure;
  for (unsigned i = 0; i < 2000; ++i) {
    alternating.push_back(
        Request{Address{i % dev.banks, 0, i % dev.columns_per_page}, i % 2 == 0, 0});
    pure.push_back(
        Request{Address{i % dev.banks, 0, i % dev.columns_per_page}, false, 0});
  }
  const auto mixed = run(dev, std::move(alternating), cfg);
  const auto reads = run(dev, std::move(pure), cfg);
  EXPECT_LT(mixed.utilization(), reads.utilization() - 0.2)
      << "tWTR and the RD->WR bubble must hurt alternating traffic";
}

TEST(Controller, RejectsOutOfRangeAddresses) {
  const DeviceConfig& dev = *find_config("DDR3-800");
  EXPECT_THROW(run(dev, {Request{Address{dev.banks, 0, 0}, false, 0}}),
               std::out_of_range);
  EXPECT_THROW(run(dev, {Request{Address{0, dev.rows_per_bank, 0}, false, 0}}),
               std::out_of_range);
  EXPECT_THROW(run(dev, {Request{Address{0, 0, dev.columns_per_page}, false, 0}}),
               std::out_of_range);
}

TEST(Controller, RejectsZeroQueueDepth) {
  ControllerConfig cfg;
  cfg.queue_depth = 0;
  EXPECT_THROW(Controller(*find_config("DDR3-800"), cfg), std::invalid_argument);
}

TEST(Controller, EmptyStreamYieldsEmptyStats) {
  const auto stats = run(*find_config("DDR3-800"), {});
  EXPECT_EQ(stats.bursts, 0u);
  EXPECT_DOUBLE_EQ(stats.utilization(), 0.0);
}

TEST(Controller, PhasesChainOnOneController) {
  const DeviceConfig& dev = *find_config("DDR4-3200");
  Controller ctl(dev, {});
  VectorStream s1(sequential_hits(0, 0, 100, true, dev.columns_per_page));
  VectorStream s2(sequential_hits(0, 0, 100, false, dev.columns_per_page));
  const auto w = ctl.run_phase(s1, "write");
  const auto r = ctl.run_phase(s2, "read");
  EXPECT_GE(r.start, w.end) << "second phase must continue after the first";
  // Bank 0 row 0 stays open across phases: no new activate needed.
  EXPECT_EQ(r.row_misses + r.row_conflicts, 0u);
}

TEST(Controller, RandomTrafficIsProtocolClean) {
  // Fuzz: random addresses and directions on every device; the
  // independent checker must accept every command stream.
  Rng rng(2024);
  for (const auto& dev : standard_configs()) {
    ControllerConfig cfg;
    Controller ctl(dev, cfg);
    TimingChecker checker(dev, ctl.refresh_mode());
    ctl.set_observer(&checker);
    std::vector<Request> reqs;
    for (unsigned i = 0; i < 3000; ++i) {
      reqs.push_back(Request{
          Address{static_cast<std::uint32_t>(rng.uniform(dev.banks)),
                  static_cast<std::uint32_t>(rng.uniform(64)),
                  static_cast<std::uint32_t>(rng.uniform(dev.columns_per_page))},
          rng.bernoulli(0.5), 0});
    }
    VectorStream stream(std::move(reqs));
    ctl.run_phase(stream, "fuzz");
    const auto violations = checker.finish();
    EXPECT_TRUE(violations.empty())
        << dev.name << ": " << (violations.empty() ? "" : violations.front());
  }
}

}  // namespace
}  // namespace tbi::dram
