#include "dram/decoder.hpp"

#include <gtest/gtest.h>

#include <set>
#include <tuple>

namespace tbi::dram {
namespace {

class DecoderBijectivity
    : public ::testing::TestWithParam<std::tuple<std::string, AddressLayout>> {};

TEST_P(DecoderBijectivity, RoundTripAndInBounds) {
  const auto& [device_name, layout] = GetParam();
  const DeviceConfig& dev = *find_config(device_name);
  const AddressDecoder dec(dev, layout);

  // Sample a dense prefix plus strided high addresses.
  std::set<std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>> seen;
  const std::uint64_t dense = 4096;
  for (std::uint64_t idx = 0; idx < dense; ++idx) {
    const Address a = dec.decode(idx);
    EXPECT_LT(a.bank, dev.banks);
    EXPECT_LT(a.row, dev.rows_per_bank);
    EXPECT_LT(a.column, dev.columns_per_page);
    EXPECT_EQ(dec.encode(a), idx);
    EXPECT_TRUE(seen.insert({a.bank, a.row, a.column}).second)
        << "collision at idx " << idx;
  }
  for (std::uint64_t idx = 0; idx < dec.capacity_bursts(); idx += 999331) {
    EXPECT_EQ(dec.encode(dec.decode(idx)), idx);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllDevicesAllLayouts, DecoderBijectivity,
    ::testing::Combine(
        ::testing::Values("DDR3-1600", "DDR4-3200", "DDR5-6400", "LPDDR4-4266",
                          "LPDDR5-8533"),
        ::testing::Values(AddressLayout::RoBaCoBg, AddressLayout::RoBaCo,
                          AddressLayout::RoCoBa, AddressLayout::RoBaCoBgXor)),
    [](const auto& info) {
      std::string n = std::get<0>(info.param) + "_";
      switch (std::get<1>(info.param)) {
        case AddressLayout::RoBaCoBg: n += "RoBaCoBg"; break;
        case AddressLayout::RoBaCo: n += "RoBaCo"; break;
        case AddressLayout::RoCoBa: n += "RoCoBa"; break;
        case AddressLayout::RoBaCoBgXor: n += "Xor"; break;
      }
      for (auto& c : n) {
        if (c == '-') c = '_';
      }
      return n;
    });

TEST(Decoder, RoBaCoBgRotatesBankGroupEveryBurst) {
  const DeviceConfig& dev = *find_config("DDR4-3200");
  const AddressDecoder dec(dev, AddressLayout::RoBaCoBg);
  for (std::uint64_t idx = 0; idx < 64; ++idx) {
    const Address a = dec.decode(idx);
    EXPECT_EQ(a.bank % dev.bank_groups, idx % dev.bank_groups)
        << "sequential bursts must round-robin bank groups";
  }
}

TEST(Decoder, RoBaCoKeepsSequentialStreamInOneBank) {
  const DeviceConfig& dev = *find_config("DDR4-3200");
  const AddressDecoder dec(dev, AddressLayout::RoBaCo);
  const Address first = dec.decode(0);
  for (std::uint64_t idx = 1; idx < dev.columns_per_page; ++idx) {
    const Address a = dec.decode(idx);
    EXPECT_EQ(a.bank, first.bank);
    EXPECT_EQ(a.row, first.row);
    EXPECT_EQ(a.column, idx);
  }
  EXPECT_NE(dec.decode(dev.columns_per_page).bank, first.bank);
}

TEST(Decoder, RoCoBaRotatesAllBanks) {
  const DeviceConfig& dev = *find_config("DDR3-1600");
  const AddressDecoder dec(dev, AddressLayout::RoCoBa);
  for (std::uint64_t idx = 0; idx < 32; ++idx) {
    EXPECT_EQ(dec.decode(idx).bank, idx % dev.banks);
  }
}

TEST(Decoder, XorLayoutPermutesBanksAcrossRows) {
  const DeviceConfig& dev = *find_config("DDR4-3200");
  const AddressDecoder dec(dev, AddressLayout::RoBaCoBgXor);
  // Same in-row offset, consecutive rows -> different banks (XOR fold).
  const std::uint64_t row_span =
      std::uint64_t{dev.columns_per_page} * dev.banks;
  const Address r0 = dec.decode(0);
  const Address r1 = dec.decode(row_span);
  const Address r2 = dec.decode(2 * row_span);
  EXPECT_EQ(r0.bank % dev.bank_groups, r1.bank % dev.bank_groups)
      << "xor fold must not change the bank group bits";
  EXPECT_NE(r0.bank, r1.bank);
  EXPECT_NE(r1.bank, r2.bank);
}

TEST(Decoder, ThrowsBeyondCapacity) {
  const DeviceConfig& dev = *find_config("DDR3-800");
  const AddressDecoder dec(dev, AddressLayout::RoBaCoBg);
  EXPECT_NO_THROW(dec.decode(dec.capacity_bursts() - 1));
  EXPECT_THROW(dec.decode(dec.capacity_bursts()), std::out_of_range);
}

}  // namespace
}  // namespace tbi::dram
