/// End-to-end system test: RS-coded frames through the triangular
/// interleaver and a bursty channel. This exercises the full
/// communication-side stack (fec + interleaver + channel) and verifies the
/// claim that motivates the whole paper: interleaving converts long
/// channel bursts into per-code-word error counts the FEC can correct.
///
/// Framing follows the paper's construction: code words are written
/// row-wise into the triangle, one (shortened) RS(255,223) word per row —
/// row i holds 255-i symbols, realized as an RS word shortened by i
/// virtual zero data symbols. A channel burst of B symbols in the
/// column-wise transmitted stream then touches each row at most
/// ceil(B / column-height) ~ #columns times, which is what keeps every
/// word below the correction radius t = 16.
#include <gtest/gtest.h>

#include <vector>

#include "channel/gilbert_elliott.hpp"
#include "common/rng.hpp"
#include "fec/reed_solomon.hpp"
#include "interleaver/triangular.hpp"

namespace tbi {
namespace {

constexpr std::uint64_t kSide = 255;
constexpr unsigned kParity = 32;

const fec::ReedSolomon& rs() {
  static const fec::ReedSolomon codec(255, 223);
  return codec;
}

/// Encode one row of the triangle: row i carries 255-i transmitted
/// symbols = (223-i) data symbols + 32 parity (shortened RS).
std::vector<std::uint8_t> encode_row(std::uint64_t i,
                                     const std::vector<std::uint8_t>& data) {
  std::vector<std::uint8_t> full(rs().k(), 0);  // i leading virtual zeros
  std::copy(data.begin(), data.end(), full.begin() + static_cast<long>(i));
  auto word = rs().encode(full);
  return {word.begin() + static_cast<long>(i), word.end()};
}

/// Decode one received row; returns true when the row was recovered.
bool decode_row(std::uint64_t i, std::vector<std::uint8_t> row,
                const std::vector<std::uint8_t>& expected_data) {
  std::vector<std::uint8_t> word(i, 0);  // reinsert virtual zeros
  word.insert(word.end(), row.begin(), row.end());
  if (!rs().decode(word).ok) return false;
  return std::equal(expected_data.begin(), expected_data.end(),
                    word.begin() + static_cast<long>(i));
}

struct Frame {
  std::vector<std::vector<std::uint8_t>> row_data;  ///< per-row payload
  std::vector<std::uint8_t> stream;                 ///< packed triangle
};

Frame make_frame(Rng& rng) {
  const interleaver::TriangularInterleaver tri(kSide);
  Frame f;
  f.stream.resize(tri.capacity());
  f.row_data.resize(kSide);
  std::uint64_t pos = 0;
  for (std::uint64_t i = 0; i < kSide; ++i) {
    const std::uint64_t len = tri_row_length(kSide, i);
    if (len <= kParity) {  // tail rows too short for data: fill parity-only
      f.row_data[i] = {};
      for (std::uint64_t j = 0; j < len; ++j) f.stream[pos++] = 0;
      continue;
    }
    std::vector<std::uint8_t> data(len - kParity);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_u64());
    f.row_data[i] = data;
    const auto coded = encode_row(i, data);
    std::copy(coded.begin(), coded.end(),
              f.stream.begin() + static_cast<long>(pos));
    pos += len;
  }
  return f;
}

unsigned count_failures(const Frame& f, const std::vector<std::uint8_t>& rx) {
  unsigned failures = 0;
  std::uint64_t pos = 0;
  for (std::uint64_t i = 0; i < kSide; ++i) {
    const std::uint64_t len = tri_row_length(kSide, i);
    if (!f.row_data[i].empty()) {
      std::vector<std::uint8_t> row(rx.begin() + static_cast<long>(pos),
                                    rx.begin() + static_cast<long>(pos + len));
      if (!decode_row(i, std::move(row), f.row_data[i])) ++failures;
    }
    pos += len;
  }
  return failures;
}

unsigned run_single_burst(bool use_interleaver, std::uint64_t burst_len,
                          Rng& rng) {
  const interleaver::TriangularInterleaver tri(kSide);
  Frame f = make_frame(rng);
  auto tx = use_interleaver ? tri.interleave(f.stream) : f.stream;
  const std::uint64_t start = tx.size() / 3;
  for (std::uint64_t k = start; k < start + burst_len && k < tx.size(); ++k) {
    tx[k] ^= 0xA5;
  }
  const auto rx = use_interleaver ? tri.deinterleave(tx) : tx;
  return count_failures(f, rx);
}

TEST(EndToEnd, InterleaverRescuesBurstThatKillsDirectTransmission) {
  Rng rng(42);
  // 1500-symbol burst: direct transmission loses ~7 consecutive rows
  // beyond repair; interleaved it spans ~8 columns -> <= 8 errors per row,
  // well below t = 16.
  const std::uint64_t burst = 1500;
  const unsigned direct = run_single_burst(false, burst, rng);
  const unsigned interleaved = run_single_burst(true, burst, rng);
  EXPECT_GE(direct, 4u);
  EXPECT_EQ(interleaved, 0u)
      << "triangular interleaving must spread the burst below t per word";
}

TEST(EndToEnd, ShortBurstsHarmlessEitherWay) {
  Rng rng(43);
  EXPECT_EQ(run_single_burst(false, 10, rng), 0u);
  EXPECT_EQ(run_single_burst(true, 10, rng), 0u);
}

TEST(EndToEnd, VeryLongBurstOverwhelmsEvenTheInterleaver) {
  // Sanity check of the model, not of the paper: once the burst exceeds
  // t columns' worth of symbols, even perfect interleaving cannot save
  // the frame. (This is why the interleaver must be sized to the channel
  // coherence time.)
  Rng rng(45);
  const unsigned interleaved = run_single_burst(true, 40 * kSide, rng);
  EXPECT_GT(interleaved, 0u);
}

TEST(EndToEnd, GilbertElliottChannelStatisticsWithInterleaver) {
  Rng rng(44);
  const interleaver::TriangularInterleaver tri(kSide);

  auto run_channel = [&](bool interleave) {
    Rng noise(77);  // identical channel noise for both systems
    Frame f = make_frame(rng);
    auto tx = interleave ? tri.interleave(f.stream) : f.stream;
    auto params =
        channel::GilbertElliottParams::from_burst_profile(300, 0.03, 0.5, 8);
    channel::GilbertElliottChannel ch(params);
    ch.apply(tx, noise);
    const auto rx = interleave ? tri.deinterleave(tx) : tx;
    return count_failures(f, rx);
  };

  const unsigned direct_failures = run_channel(false);
  const unsigned interleaved_failures = run_channel(true);
  EXPECT_LT(interleaved_failures, direct_failures)
      << "interleaving must reduce the frame error count on a burst channel";
  EXPECT_EQ(interleaved_failures, 0u);
}

}  // namespace
}  // namespace tbi
