#include "sim/pipeline.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <stdexcept>

namespace tbi::sim {
namespace {

/// A bursty Gilbert-Elliott profile whose fades are long enough to swamp
/// single code words (mean 300 symbols at 95 % error rate, versus a
/// correction capability of t = 16 per RS(255,223) word) but short
/// relative to the 32640-symbol triangular block, so the interleaver can
/// spread them below t.
PipelineConfig burst_config(const std::string& interleaver, std::uint64_t seed) {
  PipelineConfig c;
  c.interleaver = interleaver;
  c.channel = "gilbert-elliott";
  c.fade_fraction = 0.004;
  c.mean_burst_symbols = 300;
  c.error_rate_bad = 0.95;
  c.frames = 20;
  c.seed = seed;
  c.run_dram = false;
  return c;
}

TEST(Pipeline, CleanChannelHasZeroErrors) {
  for (const char* il : {"none", "triangular", "block"}) {
    PipelineConfig c;
    c.interleaver = il;
    c.channel = "none";
    c.frames = 3;
    c.run_dram = false;
    const auto r = run_pipeline(c);
    EXPECT_EQ(r.word_errors, 0u) << il;
    EXPECT_EQ(r.frame_errors, 0u) << il;
    EXPECT_EQ(r.channel_symbol_errors, 0u) << il;
    EXPECT_EQ(r.corrected_symbols, 0u) << il;
    EXPECT_EQ(r.frames, 3u);
    // One shortened word per triangle row long enough to carry data:
    // rows 0..k-1, i.e. k words per frame.
    EXPECT_EQ(r.code_words, 3u * 223u) << il;
  }
}

TEST(Pipeline, ZeroProbabilityBscIsClean) {
  PipelineConfig c;
  c.channel = "bsc";
  c.error_probability = 0.0;
  c.frames = 2;
  c.run_dram = false;
  const auto r = run_pipeline(c);
  EXPECT_EQ(r.word_errors, 0u);
  EXPECT_EQ(r.frame_errors, 0u);
}

TEST(Pipeline, BurstsBeyondRsBreakUninterleavedFrames) {
  for (const std::uint64_t seed : {1ull, 7ull, 42ull}) {
    const auto r = run_pipeline(burst_config("none", seed));
    EXPECT_GT(r.channel_symbol_errors, 0u) << seed;
    EXPECT_GT(r.word_errors, 0u) << seed;
    EXPECT_GT(r.frame_errors, 0u) << seed;
  }
}

TEST(Pipeline, TriangularInterleavingRecoversTheSameBursts) {
  for (const std::uint64_t seed : {1ull, 7ull, 42ull}) {
    const auto direct = run_pipeline(burst_config("none", seed));
    const auto interleaved = run_pipeline(burst_config("triangular", seed));
    // Decoupled channel seeding: both systems saw the same fades.
    EXPECT_EQ(direct.channel_symbol_errors, interleaved.channel_symbol_errors) << seed;
    EXPECT_GT(direct.frame_errors, 0u) << seed;
    EXPECT_EQ(interleaved.word_errors, 0u) << seed;
    EXPECT_EQ(interleaved.frame_errors, 0u) << seed;
    // The errors did not vanish — RS corrected them after spreading.
    EXPECT_GT(interleaved.corrected_symbols, 0u) << seed;
  }
}

TEST(Pipeline, MemorylessChannelIsInterleaverNeutral) {
  // Control case: on a BSC the interleaver must not change the outcome
  // (identical channel draws, symbol-wise independent errors).
  PipelineConfig c;
  c.channel = "bsc";
  c.error_probability = 0.01;
  c.frames = 5;
  c.run_dram = false;
  c.interleaver = "none";
  const auto direct = run_pipeline(c);
  c.interleaver = "triangular";
  const auto interleaved = run_pipeline(c);
  EXPECT_EQ(direct.channel_symbol_errors, interleaved.channel_symbol_errors);
  EXPECT_EQ(direct.word_errors, interleaved.word_errors);
}

TEST(Pipeline, LeoChannelRuns) {
  PipelineConfig c;
  c.interleaver = "triangular";
  c.channel = "leo";
  c.fade_fraction = 0.05;
  c.mean_burst_symbols = 1500;
  c.frames = 5;
  c.run_dram = false;
  const auto r = run_pipeline(c);
  EXPECT_GT(r.channel_symbol_errors, 0u);
  EXPECT_EQ(r.code_words, 5u * 223u);
}

TEST(Pipeline, DramStageReportsFeasibility) {
  PipelineConfig c;
  c.channel = "none";
  c.frames = 1;
  c.run_dram = true;
  c.device = *dram::find_config("DDR4-3200");
  c.dram_max_bursts_per_phase = 0;  // full (small) triangle
  c.check_protocol = true;
  const auto r = run_pipeline(c);
  ASSERT_TRUE(r.dram_ran);
  // One 32640-byte triangular block = 510 bursts of 64 B -> side 32.
  EXPECT_EQ(r.dram.write.stats.bursts, r.dram.read.stats.bursts);
  EXPECT_GT(r.dram.write.stats.bursts, 500u);
  EXPECT_GT(r.dram_throughput_gbps, 0.0);
  EXPECT_EQ(r.dram.device_name, "DDR4-3200");
}

TEST(Pipeline, NoDramStageForSramInterleavers) {
  for (const char* il : {"none", "block"}) {
    PipelineConfig c;
    c.interleaver = il;
    c.channel = "none";
    c.frames = 1;
    c.run_dram = true;
    c.device = *dram::find_config("DDR4-3200");
    const auto r = run_pipeline(c);
    EXPECT_FALSE(r.dram_ran) << il;
  }
}

TEST(Pipeline, RejectsBadConfigs) {
  const auto expect_invalid = [](const std::function<void(PipelineConfig&)>& tweak) {
    PipelineConfig c;
    c.run_dram = false;
    tweak(c);
    EXPECT_THROW(run_pipeline(c), std::invalid_argument);
  };
  expect_invalid([](PipelineConfig& c) { c.interleaver = "helical"; });
  expect_invalid([](PipelineConfig& c) { c.channel = "awgn"; });
  expect_invalid([](PipelineConfig& c) { c.rs_k = 0; });
  expect_invalid([](PipelineConfig& c) { c.rs_k = 222; /* odd parity */ });
  expect_invalid([](PipelineConfig& c) {
    c.run_dram = true;  // no device set
    c.channel = "none";
    c.frames = 1;
  });
}

TEST(Pipeline, CodeRateAxisChangesCorrectionPower) {
  // A stronger code (more parity) corrects bursts a weaker one cannot.
  auto weak = burst_config("triangular", 7);
  weak.rs_k = 251;  // t = 2
  const auto weak_r = run_pipeline(weak);
  auto strong = burst_config("triangular", 7);
  strong.rs_k = 223;  // t = 16
  const auto strong_r = run_pipeline(strong);
  EXPECT_GT(weak_r.word_errors, 0u);
  EXPECT_EQ(strong_r.word_errors, 0u);
}

TEST(FerSweep, GridRecordsMatchScenarios) {
  SweepGrid grid;
  grid.devices = {"DDR4-3200"};
  grid.interleavers = {"none", "triangular"};
  grid.channels = {"gilbert-elliott"};
  FerSweepOptions o;
  o.base = burst_config("triangular", 0);
  o.base.frames = 5;
  o.base.run_dram = false;
  o.sweep.threads = 2;
  const auto records = run_fer_sweep(grid, o);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].scenario.interleaver, "none");
  EXPECT_EQ(records[1].scenario.interleaver, "triangular");
  EXPECT_EQ(records[0].config.interleaver, "none");
  EXPECT_EQ(records[0].result.frames, 5u);
}

TEST(FerSweep, DeterministicAcrossThreadCounts) {
  SweepGrid grid;
  grid.devices = {"DDR4-3200"};
  grid.interleavers = {"none", "triangular", "block"};
  grid.channels = {"bsc", "gilbert-elliott", "leo"};
  grid.rs_ks = {223, 239};
  FerSweepOptions o;
  o.base.frames = 2;
  o.base.run_dram = false;
  o.base.fade_fraction = 0.01;
  o.base.mean_burst_symbols = 200;
  o.sweep.base_seed = 5;

  o.sweep.threads = 1;
  const auto serial = run_fer_sweep(grid, o);
  o.sweep.threads = 4;
  const auto parallel = run_fer_sweep(grid, o);
  ASSERT_EQ(serial.size(), 18u);
  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].config.seed, parallel[i].config.seed) << i;
    EXPECT_EQ(serial[i].result.word_errors, parallel[i].result.word_errors) << i;
    EXPECT_EQ(serial[i].result.frame_errors, parallel[i].result.frame_errors) << i;
    EXPECT_EQ(serial[i].result.channel_symbol_errors,
              parallel[i].result.channel_symbol_errors) << i;
    EXPECT_EQ(serial[i].result.corrected_symbols,
              parallel[i].result.corrected_symbols) << i;
  }
}

TEST(MakeChannel, FactoryCoversAllKinds) {
  PipelineConfig c;
  c.channel = "none";
  EXPECT_EQ(make_channel(c), nullptr);
  c.channel = "bsc";
  EXPECT_STREQ(make_channel(c)->name(), "symmetric");
  c.channel = "gilbert-elliott";
  EXPECT_STREQ(make_channel(c)->name(), "gilbert-elliott");
  c.channel = "leo";
  EXPECT_STREQ(make_channel(c)->name(), "leo-fading");
  c.channel = "bogus";
  EXPECT_THROW(make_channel(c), std::invalid_argument);
}

}  // namespace
}  // namespace tbi::sim
