#include "sim/pipeline.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <functional>
#include <stdexcept>

#include "fec/gf256_simd.hpp"
#include "fec/reed_solomon.hpp"
#include "source/trace.hpp"

namespace tbi::sim {
namespace {

/// A bursty Gilbert-Elliott profile whose fades are long enough to swamp
/// single code words (mean 300 symbols at 95 % error rate, versus a
/// correction capability of t = 16 per RS(255,223) word) but short
/// relative to the 32640-symbol triangular block, so the interleaver can
/// spread them below t.
PipelineConfig burst_config(const std::string& interleaver, std::uint64_t seed) {
  PipelineConfig c;
  c.interleaver = interleaver;
  c.channel = "gilbert-elliott";
  c.fade_fraction = 0.004;
  c.mean_burst_symbols = 300;
  c.error_rate_bad = 0.95;
  c.frames = 20;
  c.seed = seed;
  c.run_dram = false;
  return c;
}

TEST(Pipeline, CleanChannelHasZeroErrors) {
  for (const char* il : {"none", "triangular", "block"}) {
    PipelineConfig c;
    c.interleaver = il;
    c.channel = "none";
    c.frames = 3;
    c.run_dram = false;
    const auto r = run_pipeline(c);
    EXPECT_EQ(r.word_errors, 0u) << il;
    EXPECT_EQ(r.frame_errors, 0u) << il;
    EXPECT_EQ(r.channel_symbol_errors, 0u) << il;
    EXPECT_EQ(r.corrected_symbols, 0u) << il;
    EXPECT_EQ(r.frames, 3u);
    // One shortened word per triangle row long enough to carry data:
    // rows 0..k-1, i.e. k words per frame.
    EXPECT_EQ(r.code_words, 3u * 223u) << il;
  }
}

TEST(Pipeline, SteadyStateFrameLoopAllocatesNothing) {
  // The workspace-reuse invariant behind every bench record's
  // allocations_per_frame == 0: after the warm-up frame, neither the
  // materialized nor the streaming frame path touches the allocator.
  for (const char* il : {"none", "block", "triangular"}) {
    auto c = burst_config(il, 3);
    const auto r = run_pipeline(c);
    EXPECT_EQ(r.steady_allocations, 0u) << il;
    EXPECT_EQ(r.steady_frames, static_cast<std::uint64_t>(c.frames) - 1) << il;
    EXPECT_EQ(r.allocations_per_frame(), 0.0) << il;
    EXPECT_GT(r.host_ns, 0u) << il;
    // The channel sees the full frame capacity every frame.
    EXPECT_EQ(r.channel_symbols, static_cast<std::uint64_t>(c.frames) * r.frame_symbols)
        << il;
    EXPECT_GT(r.channel_symbols_per_second(), 0.0) << il;
  }
  // Streaming path (side decoupled from the code word), all channels.
  for (const char* channel : {"bsc", "gilbert-elliott", "leo"}) {
    auto c = burst_config("triangular", 3);
    c.channel = channel;
    c.side = 400;
    c.stream_chunk_symbols = 8192;
    const auto r = run_pipeline(c);
    EXPECT_EQ(r.steady_allocations, 0u) << channel;
    EXPECT_EQ(r.allocations_per_frame(), 0.0) << channel;
    EXPECT_EQ(r.channel_symbols, static_cast<std::uint64_t>(c.frames) * r.frame_symbols)
        << channel;
  }
  // A channel-free run pushes nothing through the channel counter.
  PipelineConfig clean;
  clean.channel = "none";
  clean.frames = 2;
  clean.run_dram = false;
  const auto r = run_pipeline(clean);
  EXPECT_EQ(r.channel_symbols, 0u);
  EXPECT_EQ(r.channel_symbols_per_second(), 0.0);
  EXPECT_EQ(r.steady_allocations, 0u);
}

TEST(Pipeline, ZeroProbabilityBscIsClean) {
  PipelineConfig c;
  c.channel = "bsc";
  c.error_probability = 0.0;
  c.frames = 2;
  c.run_dram = false;
  const auto r = run_pipeline(c);
  EXPECT_EQ(r.word_errors, 0u);
  EXPECT_EQ(r.frame_errors, 0u);
}

TEST(Pipeline, BurstsBeyondRsBreakUninterleavedFrames) {
  for (const std::uint64_t seed : {1ull, 7ull, 42ull}) {
    const auto r = run_pipeline(burst_config("none", seed));
    EXPECT_GT(r.channel_symbol_errors, 0u) << seed;
    EXPECT_GT(r.word_errors, 0u) << seed;
    EXPECT_GT(r.frame_errors, 0u) << seed;
  }
}

TEST(Pipeline, TriangularInterleavingRecoversTheSameBursts) {
  for (const std::uint64_t seed : {1ull, 7ull, 42ull}) {
    const auto direct = run_pipeline(burst_config("none", seed));
    const auto interleaved = run_pipeline(burst_config("triangular", seed));
    // Decoupled channel seeding: both systems saw the same fades.
    EXPECT_EQ(direct.channel_symbol_errors, interleaved.channel_symbol_errors) << seed;
    EXPECT_GT(direct.frame_errors, 0u) << seed;
    EXPECT_EQ(interleaved.word_errors, 0u) << seed;
    EXPECT_EQ(interleaved.frame_errors, 0u) << seed;
    // The errors did not vanish — RS corrected them after spreading.
    EXPECT_GT(interleaved.corrected_symbols, 0u) << seed;
  }
}

TEST(Pipeline, MemorylessChannelIsInterleaverNeutral) {
  // Control case: on a BSC the interleaver must not change the outcome
  // (identical channel draws, symbol-wise independent errors).
  PipelineConfig c;
  c.channel = "bsc";
  c.error_probability = 0.01;
  c.frames = 5;
  c.run_dram = false;
  c.interleaver = "none";
  const auto direct = run_pipeline(c);
  c.interleaver = "triangular";
  const auto interleaved = run_pipeline(c);
  EXPECT_EQ(direct.channel_symbol_errors, interleaved.channel_symbol_errors);
  EXPECT_EQ(direct.word_errors, interleaved.word_errors);
}

TEST(Pipeline, LeoChannelRuns) {
  PipelineConfig c;
  c.interleaver = "triangular";
  c.channel = "leo";
  c.fade_fraction = 0.05;
  c.mean_burst_symbols = 1500;
  c.frames = 5;
  c.run_dram = false;
  const auto r = run_pipeline(c);
  EXPECT_GT(r.channel_symbol_errors, 0u);
  EXPECT_EQ(r.code_words, 5u * 223u);
}

TEST(Pipeline, DramStageReportsFeasibility) {
  PipelineConfig c;
  c.channel = "none";
  c.frames = 1;
  c.run_dram = true;
  c.device = *dram::find_config("DDR4-3200");
  c.dram_max_bursts_per_phase = 0;  // full (small) triangle
  c.check_protocol = true;
  const auto r = run_pipeline(c);
  ASSERT_TRUE(r.dram_ran);
  // One 32640-byte triangular block = 510 bursts of 64 B -> side 32.
  EXPECT_EQ(r.dram.write.stats.bursts, r.dram.read.stats.bursts);
  EXPECT_GT(r.dram.write.stats.bursts, 500u);
  EXPECT_GT(r.dram_throughput_gbps, 0.0);
  EXPECT_EQ(r.dram.device_name, "DDR4-3200");
}

TEST(Pipeline, DramStageRejectsSramInterleavers) {
  // "none" buffers nothing and "block" is the SRAM stage-1 structure:
  // asking for their DRAM phases is a configuration error, not a silent
  // no-op.
  for (const char* il : {"none", "block"}) {
    PipelineConfig c;
    c.interleaver = il;
    c.channel = "none";
    c.frames = 1;
    c.run_dram = true;
    c.device = *dram::find_config("DDR4-3200");
    EXPECT_THROW(run_pipeline(c), std::invalid_argument) << il;
  }
}

TEST(Pipeline, TwoStageGoldenDramCounters) {
  // Golden DDR4-3200 counters for a small two-stage run: the stage-2
  // triangle is burst-granular, so both phases move exactly T(side)
  // bursts, and the optimized mapping keeps the row hits near-perfect.
  PipelineConfig c;
  c.interleaver = "two-stage";
  c.side = 32;
  c.symbols_per_burst = 8;
  c.channel = "none";
  c.frames = 1;
  c.run_dram = true;
  c.device = *dram::find_config("DDR4-3200");
  c.dram_max_bursts_per_phase = 0;  // full (small) burst triangle
  c.check_protocol = true;
  const auto r = run_pipeline(c);

  EXPECT_EQ(r.frame_symbols, 528u * 8u);
  EXPECT_EQ(r.code_words, 16u);  // floor(4224 / 255) full words per frame
  EXPECT_EQ(r.word_errors, 0u);

  ASSERT_TRUE(r.dram_ran);
  EXPECT_EQ(r.dram.device_name, "DDR4-3200");
  const auto& w = r.dram.write.stats;
  const auto& rd = r.dram.read.stats;
  EXPECT_EQ(w.bursts, 528u);
  EXPECT_EQ(rd.bursts, 528u);
  EXPECT_EQ(w.activates, 16u);
  EXPECT_EQ(w.row_hits, 512u);
  EXPECT_EQ(w.row_misses, 16u);
  EXPECT_EQ(w.row_conflicts, 0u);
  EXPECT_EQ(rd.activates, 0u);  // rows stay open across the phase switch
  EXPECT_EQ(rd.row_hits, 528u);
  EXPECT_EQ(w.elapsed(), 1322500u);
  EXPECT_EQ(rd.elapsed(), 1322500u);
  EXPECT_NEAR(r.dram.min_utilization(), 0.998110, 1e-6);
  EXPECT_GT(r.dram_throughput_gbps, 0.0);
}

TEST(Pipeline, RejectsBadConfigs) {
  const auto expect_invalid = [](const std::function<void(PipelineConfig&)>& tweak) {
    PipelineConfig c;
    c.run_dram = false;
    tweak(c);
    EXPECT_THROW(run_pipeline(c), std::invalid_argument);
  };
  expect_invalid([](PipelineConfig& c) { c.interleaver = "helical"; });
  expect_invalid([](PipelineConfig& c) { c.channel = "awgn"; });
  expect_invalid([](PipelineConfig& c) { c.rs_k = 0; });
  expect_invalid([](PipelineConfig& c) { c.rs_k = 222; /* odd parity */ });
  expect_invalid([](PipelineConfig& c) {
    c.run_dram = true;  // no device set
    c.channel = "none";
    c.frames = 1;
  });
  expect_invalid([](PipelineConfig& c) {
    c.interleaver = "two-stage";
    c.symbols_per_burst = 0;
  });
  expect_invalid([](PipelineConfig& c) {
    c.side = 10;  // T(10) = 55 < one RS(255, k) code word
  });
}

TEST(Pipeline, CodeRateAxisChangesCorrectionPower) {
  // A stronger code (more parity) corrects bursts a weaker one cannot.
  auto weak = burst_config("triangular", 7);
  weak.rs_k = 251;  // t = 2
  const auto weak_r = run_pipeline(weak);
  auto strong = burst_config("triangular", 7);
  strong.rs_k = 223;  // t = 16
  const auto strong_r = run_pipeline(strong);
  EXPECT_GT(weak_r.word_errors, 0u);
  EXPECT_EQ(strong_r.word_errors, 0u);
}

// ---------------------------------------------------------------------------
// Streaming frame path (side decoupled from rs_n, "two-stage")
// ---------------------------------------------------------------------------

TEST(PipelineStreaming, CleanChannelEveryKind) {
  // Streaming frames pack full RS words back to back; a clean channel
  // must decode every one of them without touching the error machinery.
  for (const char* il : {"none", "block", "triangular", "two-stage"}) {
    PipelineConfig c;
    c.interleaver = il;
    c.side = 40;  // != rs_n -> streaming for every kind
    c.symbols_per_burst = 8;
    c.channel = "none";
    c.frames = 3;
    c.run_dram = false;
    const auto r = run_pipeline(c);
    const std::uint64_t capacity =
        std::string(il) == "two-stage" ? 820u * 8u : 820u;
    EXPECT_EQ(r.frame_symbols, capacity) << il;
    EXPECT_EQ(r.code_words, 3u * (capacity / 255u)) << il;
    EXPECT_EQ(r.word_errors, 0u) << il;
    EXPECT_EQ(r.frame_errors, 0u) << il;
    EXPECT_EQ(r.channel_symbol_errors, 0u) << il;
  }
}

TEST(PipelineStreaming, TriangularStreamingRecoversBursts) {
  // Streaming analogue of the legacy recovery test at a side far past
  // rs_n. Channel corruption is data-independent, so the "none" and
  // "triangular" systems see the *identical* corruption pattern and only
  // the interleaving differs.
  PipelineConfig c;
  c.channel = "gilbert-elliott";
  c.side = 600;
  c.fade_fraction = 0.004;
  c.mean_burst_symbols = 300;
  c.error_rate_bad = 0.95;
  c.frames = 10;
  c.seed = 1;
  c.run_dram = false;

  c.interleaver = "none";
  const auto direct = run_pipeline(c);
  c.interleaver = "triangular";
  const auto interleaved = run_pipeline(c);

  EXPECT_EQ(direct.channel_symbol_errors, interleaved.channel_symbol_errors);
  EXPECT_GT(direct.frame_errors, 0u);
  EXPECT_EQ(interleaved.word_errors, 0u);
  EXPECT_EQ(interleaved.frame_errors, 0u);
  EXPECT_GT(interleaved.corrected_symbols, 0u);
}

TEST(PipelineStreaming, ChunkSizeNeverChangesResults) {
  // stream_chunk_symbols is a pure memory knob: every channel evolves
  // its state continuously in symbol time (the LEO power process carries
  // its sample phase across calls), so chunk boundaries are invisible to
  // the corruption pattern.
  for (const char* channel : {"bsc", "gilbert-elliott", "leo"}) {
    PipelineConfig c;
    c.interleaver = "two-stage";
    c.side = 64;
    c.symbols_per_burst = 16;
    c.channel = channel;
    c.error_probability = 0.01;
    c.fade_fraction = 0.05;
    c.mean_burst_symbols = 700;  // not a divisor of any chunk size
    c.frames = 3;
    c.run_dram = false;
    c.stream_chunk_symbols = 1024;
    const auto small_chunks = run_pipeline(c);
    c.stream_chunk_symbols = 1 << 20;
    const auto one_chunk = run_pipeline(c);
    EXPECT_GT(small_chunks.channel_symbol_errors, 0u) << channel;
    EXPECT_EQ(small_chunks.channel_symbol_errors, one_chunk.channel_symbol_errors)
        << channel;
    EXPECT_EQ(small_chunks.word_errors, one_chunk.word_errors) << channel;
    EXPECT_EQ(small_chunks.corrected_symbols, one_chunk.corrected_symbols)
        << channel;
  }
}

TEST(PipelineStreaming, PaperScaleTwoStageBoundedMemory) {
  // Acceptance scale: a >= 5000-burst-side two-stage pipeline (25 M
  // symbols per frame) completes, and the instrumented workspace peak is
  // bounded by the chunk size plus the sparse error list — never by the
  // triangle capacity.
  PipelineConfig c;
  c.interleaver = "two-stage";
  c.side = 5000;
  c.symbols_per_burst = 2;
  c.channel = "gilbert-elliott";
  c.fade_fraction = 0.001;
  c.mean_burst_symbols = 2000;
  c.error_rate_bad = 0.8;
  c.frames = 1;
  c.run_dram = false;
  const auto r = run_pipeline(c);

  EXPECT_EQ(r.frame_symbols, 12'502'500u * 2u);
  EXPECT_EQ(r.code_words, 25'005'000u / 255u);
  EXPECT_GT(r.channel_symbol_errors, 1000u);
  // The paper-scale two-stage frame swallows these fades completely.
  // (corrected can trail the channel count only by hits landing in the
  // sub-word zero-padding tail: capacity % 255 == 210 symbols.)
  EXPECT_EQ(r.word_errors, 0u);
  EXPECT_LE(r.corrected_symbols, r.channel_symbol_errors);
  EXPECT_LE(r.channel_symbol_errors - r.corrected_symbols, 210u);

  // Peak allocation: one chunk buffer + the sorted error list (16 B per
  // hit, 4096-entry up-front headroom, vector growth <= 2x) + small
  // constant scratch. A materialized frame would need >= 3 capacity-sized
  // buffers.
  const std::uint64_t chunk_bytes = c.stream_chunk_symbols;
  EXPECT_GT(r.workspace_peak_bytes, 0u);
  EXPECT_LE(r.workspace_peak_bytes,
            chunk_bytes + 32u * r.channel_symbol_errors + 4096u * 16u + 16384u);
  EXPECT_LT(r.workspace_peak_bytes, r.frame_symbols / 8);
}

TEST(PipelineStreaming, FerOrdersTwoStageTriangularBlockNone) {
  // Fixed-seed statistical assertion (paper §I/§II): under long
  // Gilbert-Elliott fades that saturate inside the fade, the frame error
  // rates order two-stage <= triangular <= block <= none.
  //
  // Geometry: the classic systems run the row-aligned RS-255 triangle;
  // the two-stage system runs its natural burst-granular scale (side 255
  // bursts of one code word each, 8.3 M symbols per frame — 255x the
  // data per frame, which only strengthens the assertion). With
  // symbols_per_burst == rs_n, one stage-1 chunk is exactly one code
  // word, so a fully faded DRAM burst costs every word of its super-block
  // one symbol, and a word only dies when >= t+1 faded bursts land in
  // one super-block — a fade longer than anything this channel produces.
  const auto run = [](const char* il, unsigned frames) {
    PipelineConfig c;
    c.interleaver = il;
    c.channel = "gilbert-elliott";
    c.fade_fraction = 0.01;
    c.mean_burst_symbols = 1500;
    c.error_rate_bad = 1.0;
    c.frames = frames;
    c.seed = 1;
    c.run_dram = false;
    c.side = 255;
    c.symbols_per_burst = 255;
    return run_pipeline(c);
  };
  const auto none = run("none", 300);
  const auto block = run("block", 300);
  const auto tri = run("triangular", 300);
  const auto two_stage = run("two-stage", 6);

  // Every system was genuinely stressed.
  EXPECT_GT(none.word_errors, 0u);
  EXPECT_GT(block.word_errors, 0u);
  EXPECT_GT(tri.word_errors, 0u);
  EXPECT_GT(two_stage.channel_symbol_errors, 100'000u);

  const double f_none = none.frame_error_rate();
  const double f_block = block.frame_error_rate();
  const double f_tri = tri.frame_error_rate();
  const double f_two = two_stage.frame_error_rate();
  EXPECT_LE(f_two, f_tri);
  EXPECT_LE(f_tri, f_block);
  EXPECT_LE(f_block, f_none);
  // The interesting joints are strict at this seed, with wide margins.
  EXPECT_EQ(two_stage.word_errors, 0u);
  EXPECT_LT(f_tri, f_block);
  EXPECT_LT(2.0 * f_block, f_none);
}

TEST(FerSweep, GridRecordsMatchScenarios) {
  SweepGrid grid;
  grid.devices = {"DDR4-3200"};
  grid.interleavers = {"none", "triangular"};
  grid.channels = {"gilbert-elliott"};
  FerSweepOptions o;
  o.base = burst_config("triangular", 0);
  o.base.frames = 5;
  o.base.run_dram = false;
  o.sweep.threads = 2;
  const auto records = run_fer_sweep(grid, o);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].scenario.interleaver, "none");
  EXPECT_EQ(records[1].scenario.interleaver, "triangular");
  EXPECT_EQ(records[0].config.interleaver, "none");
  EXPECT_EQ(records[0].result.frames, 5u);
}

TEST(FerSweep, DeterministicAcrossThreadCounts) {
  // Covers the full interleaver axis including "two-stage" and the
  // symbols_per_burst axis: records must be identical for any thread
  // count.
  SweepGrid grid;
  grid.devices = {"DDR4-3200"};
  grid.interleavers = {"none", "triangular", "block", "two-stage"};
  grid.channels = {"bsc", "gilbert-elliott", "leo"};
  grid.rs_ks = {223, 239};
  grid.symbols_per_bursts = {4, 8};
  FerSweepOptions o;
  o.base.frames = 2;
  o.base.run_dram = false;
  o.base.side = 64;  // streaming path for every cell, small frames
  o.base.fade_fraction = 0.01;
  o.base.mean_burst_symbols = 200;
  o.sweep.base_seed = 5;

  o.sweep.threads = 1;
  const auto serial = run_fer_sweep(grid, o);
  o.sweep.threads = 4;
  const auto parallel = run_fer_sweep(grid, o);
  ASSERT_EQ(serial.size(), 48u);
  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].config.seed, parallel[i].config.seed) << i;
    EXPECT_EQ(serial[i].result.word_errors, parallel[i].result.word_errors) << i;
    EXPECT_EQ(serial[i].result.frame_errors, parallel[i].result.frame_errors) << i;
    EXPECT_EQ(serial[i].result.channel_symbol_errors,
              parallel[i].result.channel_symbol_errors) << i;
    EXPECT_EQ(serial[i].result.corrected_symbols,
              parallel[i].result.corrected_symbols) << i;
    EXPECT_EQ(serial[i].result.frame_symbols, parallel[i].result.frame_symbols) << i;
  }
}

TEST(FerSweep, SymbolsPerBurstAxisReachesTwoStageCells) {
  SweepGrid grid;
  grid.devices = {"DDR4-3200"};
  grid.interleavers = {"two-stage"};
  grid.channels = {"gilbert-elliott"};
  grid.symbols_per_bursts = {4, 8};
  FerSweepOptions o;
  o.base.frames = 2;
  o.base.run_dram = false;
  o.base.side = 64;
  const auto records = run_fer_sweep(grid, o);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].config.symbols_per_burst, 4u);
  EXPECT_EQ(records[1].config.symbols_per_burst, 8u);
  EXPECT_EQ(records[0].result.frame_symbols, 2080u * 4u);
  EXPECT_EQ(records[1].result.frame_symbols, 2080u * 8u);
  EXPECT_NE(records[0].scenario.label(), records[1].scenario.label());
}

TEST(FerSweep, RunDramNarrowedToDramResidentCells) {
  // A mixed grid with run_dram set in the template must not trip the
  // SRAM-interleaver error: the sweep narrows run_dram per cell.
  SweepGrid grid;
  grid.devices = {"DDR4-3200"};
  grid.interleavers = {"none", "block", "triangular", "two-stage"};
  grid.channels = {"none"};
  FerSweepOptions o;
  o.base.frames = 1;
  o.base.run_dram = true;
  o.base.side = 64;
  o.base.symbols_per_burst = 8;
  o.base.dram_max_bursts_per_phase = 500;
  const auto records = run_fer_sweep(grid, o);
  ASSERT_EQ(records.size(), 4u);
  EXPECT_FALSE(records[0].result.dram_ran);  // none
  EXPECT_FALSE(records[1].result.dram_ran);  // block
  EXPECT_TRUE(records[2].result.dram_ran);   // triangular
  EXPECT_TRUE(records[3].result.dram_ran);   // two-stage
  EXPECT_GT(records[3].result.dram.write.stats.bursts, 0u);
}

// ---------------------------------------------------------------------------
// Burst sources: trace record/replay and multi-link ingestion
// ---------------------------------------------------------------------------

TEST(PipelineTrace, RecordThenReplayReproducesTheRun) {
  // Record a live Gilbert-Elliott run to a burst trace, then replay the
  // trace through the same pipeline: every error counter must match, and
  // re-recording the replay must produce the identical event set (same
  // corruption positions and flips).
  const std::string trace = ::testing::TempDir() + "pipeline_trace_XXXXXX.txt";
  auto live_cfg = burst_config("triangular", 13);
  live_cfg.trace_record = trace;
  const auto live = run_pipeline(live_cfg);
  EXPECT_GT(live.channel_symbol_errors, 0u);

  PipelineConfig replay_cfg = live_cfg;
  replay_cfg.trace_record.clear();
  replay_cfg.channel = "trace";
  replay_cfg.trace_replay = trace;
  const std::string retrace = trace + ".again";
  replay_cfg.trace_record = retrace;
  const auto replayed = run_pipeline(replay_cfg);

  EXPECT_EQ(replayed.channel_symbol_errors, live.channel_symbol_errors);
  EXPECT_EQ(replayed.word_errors, live.word_errors);
  EXPECT_EQ(replayed.frame_errors, live.frame_errors);
  EXPECT_EQ(replayed.corrected_symbols, live.corrected_symbols);
  EXPECT_EQ(replayed.code_words, live.code_words);

  // Event-level identity: the replay's own recording is the same sorted
  // (position, flip) set as the original.
  std::ifstream a(trace), b(retrace);
  ASSERT_TRUE(a && b);
  auto ea = source::read_burst_trace(a);
  auto eb = source::read_burst_trace(b);
  EXPECT_FALSE(ea.empty());
  EXPECT_EQ(ea, eb);
  std::remove(trace.c_str());
  std::remove(retrace.c_str());
}

TEST(PipelineTrace, StreamingPathRecordsAndReplaysIdentically) {
  // Same round trip on the streaming frame path (side != rs_n), where
  // events flow through the sink instead of the in-place fast path.
  const std::string trace = ::testing::TempDir() + "pipeline_trace_stream.txt";
  auto live_cfg = burst_config("two-stage", 29);
  live_cfg.side = 64;
  live_cfg.symbols_per_burst = 8;
  live_cfg.fade_fraction = 0.02;  // small frames: keep the burst count up
  live_cfg.frames = 5;
  live_cfg.trace_record = trace;
  const auto live = run_pipeline(live_cfg);
  EXPECT_GT(live.channel_symbol_errors, 0u);

  PipelineConfig replay_cfg = live_cfg;
  replay_cfg.trace_record.clear();
  replay_cfg.channel = "trace";
  replay_cfg.trace_replay = trace;
  const auto replayed = run_pipeline(replay_cfg);

  EXPECT_EQ(replayed.channel_symbol_errors, live.channel_symbol_errors);
  EXPECT_EQ(replayed.word_errors, live.word_errors);
  EXPECT_EQ(replayed.frame_errors, live.frame_errors);
  EXPECT_EQ(replayed.corrected_symbols, live.corrected_symbols);
  std::remove(trace.c_str());
}

TEST(PipelineMultiLink, SingleLinkMatchesLegacySingleChannel) {
  // links = 1 must be byte-identical to the pre-source pipeline: the
  // single-link path hands the channel root seed to one ChannelSource.
  auto c = burst_config("triangular", 17);
  const auto base = run_pipeline(c);
  c.links = 1;
  const auto one_link = run_pipeline(c);
  EXPECT_EQ(one_link.channel_symbol_errors, base.channel_symbol_errors);
  EXPECT_EQ(one_link.word_errors, base.word_errors);
  EXPECT_EQ(one_link.corrected_symbols, base.corrected_symbols);
}

TEST(PipelineMultiLink, LinksChangeTheErrorProcess) {
  // N independent links interleave N distinct channel streams, so the
  // composite corruption pattern differs from any single link — but the
  // run stays deterministic and allocation-free in steady state.
  auto c = burst_config("triangular", 17);
  const auto single = run_pipeline(c);
  c.links = 4;
  const auto multi = run_pipeline(c);
  const auto multi_again = run_pipeline(c);

  EXPECT_GT(multi.channel_symbol_errors, 0u);
  EXPECT_NE(multi.channel_symbol_errors, single.channel_symbol_errors);
  EXPECT_EQ(multi.channel_symbol_errors, multi_again.channel_symbol_errors);
  EXPECT_EQ(multi.word_errors, multi_again.word_errors);
  EXPECT_EQ(multi.steady_allocations, 0u);
}

TEST(PipelineMultiLink, PhaseOffsetsShiftPerLinkStreams) {
  auto c = burst_config("triangular", 23);
  c.links = 3;
  const auto aligned = run_pipeline(c);
  c.link_phase_symbols = 10'000;
  const auto staggered = run_pipeline(c);
  EXPECT_GT(aligned.channel_symbol_errors, 0u);
  EXPECT_GT(staggered.channel_symbol_errors, 0u);
  EXPECT_NE(aligned.channel_symbol_errors, staggered.channel_symbol_errors);
}

TEST(PipelineMultiLink, StreamingPathSupportsLinks) {
  auto c = burst_config("two-stage", 31);
  c.side = 64;
  c.symbols_per_burst = 8;
  c.frames = 3;
  c.links = 4;
  const auto r = run_pipeline(c);
  EXPECT_GT(r.channel_symbol_errors, 0u);
  EXPECT_EQ(r.steady_allocations, 0u);
  EXPECT_EQ(r.channel_symbols,
            static_cast<std::uint64_t>(c.frames) * r.frame_symbols);
}

TEST(MakeSource, ValidatesConfig) {
  PipelineConfig c;
  c.run_dram = false;
  c.links = 0;
  EXPECT_THROW(make_source(c), std::invalid_argument);
  c = PipelineConfig{};
  c.trace_replay = "whatever.txt";  // replay needs channel == "trace"
  EXPECT_THROW(make_source(c), std::invalid_argument);
  c = PipelineConfig{};
  c.channel = "trace";  // trace channel needs a replay file
  EXPECT_THROW(make_source(c), std::invalid_argument);
  c = PipelineConfig{};
  c.channel = "trace";
  c.trace_replay = ::testing::TempDir() + "does_not_exist.trace";
  EXPECT_THROW(make_source(c), std::runtime_error);
  c = PipelineConfig{};
  c.channel = "none";
  EXPECT_EQ(make_source(c), nullptr);
  c.trace_record = "anything.txt";  // nothing to record on a clean channel
  EXPECT_THROW(make_source(c), std::invalid_argument);
  c = PipelineConfig{};
  c.channel = "gilbert-elliott";
  c.links = 4;
  const auto src = make_source(c);
  ASSERT_NE(src, nullptr);
  EXPECT_STREQ(src->name(), "multi-link");
}

TEST(FerSweep, LinksAxisExpandsAndStaysDeterministic) {
  SweepGrid grid;
  grid.devices = {"DDR4-3200"};
  grid.interleavers = {"triangular"};
  grid.channels = {"gilbert-elliott"};
  grid.links = {1, 4};
  FerSweepOptions o;
  o.base = burst_config("triangular", 0);
  o.base.frames = 3;
  o.base.run_dram = false;

  o.sweep.threads = 1;
  const auto serial = run_fer_sweep(grid, o);
  o.sweep.threads = 4;
  const auto parallel = run_fer_sweep(grid, o);
  ASSERT_EQ(serial.size(), 2u);
  ASSERT_EQ(parallel.size(), 2u);
  EXPECT_EQ(serial[0].scenario.links, 1u);
  EXPECT_EQ(serial[1].scenario.links, 4u);
  EXPECT_EQ(serial[0].config.links, 1u);
  EXPECT_EQ(serial[1].config.links, 4u);
  EXPECT_NE(serial[0].scenario.label(), serial[1].scenario.label());
  EXPECT_NE(serial[0].result.channel_symbol_errors,
            serial[1].result.channel_symbol_errors);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].result.channel_symbol_errors,
              parallel[i].result.channel_symbol_errors) << i;
    EXPECT_EQ(serial[i].result.word_errors, parallel[i].result.word_errors) << i;
  }
}

TEST(MakeChannel, FactoryCoversAllKinds) {
  PipelineConfig c;
  c.channel = "none";
  EXPECT_EQ(make_channel(c), nullptr);
  c.channel = "bsc";
  EXPECT_STREQ(make_channel(c)->name(), "symmetric");
  c.channel = "gilbert-elliott";
  EXPECT_STREQ(make_channel(c)->name(), "gilbert-elliott");
  c.channel = "leo";
  EXPECT_STREQ(make_channel(c)->name(), "leo-fading");
  c.channel = "bogus";
  EXPECT_THROW(make_channel(c), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Intra-frame slicing
// ---------------------------------------------------------------------------

TEST(PipelineSlices, SliceRangesPartitionCapacity) {
  for (const std::uint64_t capacity : {0ull, 1ull, 7ull, 820ull, 25'005'000ull}) {
    for (const unsigned S : {1u, 2u, 3u, 4u, 7u, 16u}) {
      std::uint64_t covered = 0;
      std::uint64_t min_size = capacity + 1, max_size = 0;
      for (unsigned s = 0; s < S; ++s) {
        const auto [lo, hi] = stream_slice_range(capacity, s, S);
        ASSERT_EQ(lo, covered) << "capacity=" << capacity << " S=" << S;
        ASSERT_LE(hi, capacity);
        covered = hi;
        min_size = std::min(min_size, hi - lo);
        max_size = std::max(max_size, hi - lo);
      }
      EXPECT_EQ(covered, capacity) << "capacity=" << capacity << " S=" << S;
      EXPECT_LE(max_size - min_size, 1u) << "capacity=" << capacity << " S=" << S;
    }
  }
}

TEST(PipelineSlices, CombineMatchesUnslicedRun) {
  // Any slice count must reassemble to the unsliced result on every
  // field except the two the API documents as run-shaped
  // (workspace_peak_bytes, host_ns). Multi-link + two-stage is the
  // hardest case: wire position and input position differ everywhere.
  PipelineConfig c;
  c.interleaver = "two-stage";
  c.side = 200;
  c.symbols_per_burst = 16;
  c.channel = "gilbert-elliott";
  c.fade_fraction = 0.01;
  c.mean_burst_symbols = 400;
  c.error_rate_bad = 0.9;
  c.frames = 3;
  c.seed = 42;
  c.links = 2;
  c.run_dram = false;
  ASSERT_TRUE(pipeline_streams(c));
  const fec::ReedSolomon rs(c.rs_n, c.rs_k);
  const auto whole = run_pipeline(c, rs);
  ASSERT_GT(whole.channel_symbol_errors, 0u);

  for (const unsigned S : {1u, 2u, 4u, 7u}) {
    std::vector<PipelineSliceResult> slices;
    std::uint64_t slice_errors = 0;
    for (unsigned s = 0; s < S; ++s) {
      slices.push_back(run_pipeline_slice(c, s, S));
      slice_errors += slices.back().channel_symbol_errors;
    }
    EXPECT_EQ(slice_errors, whole.channel_symbol_errors) << "S=" << S;
    const auto merged = combine_pipeline_slices(c, rs, std::move(slices));
    EXPECT_EQ(merged.frames, whole.frames) << "S=" << S;
    EXPECT_EQ(merged.code_words, whole.code_words) << "S=" << S;
    EXPECT_EQ(merged.word_errors, whole.word_errors) << "S=" << S;
    EXPECT_EQ(merged.frame_errors, whole.frame_errors) << "S=" << S;
    EXPECT_EQ(merged.channel_symbol_errors, whole.channel_symbol_errors) << "S=" << S;
    EXPECT_EQ(merged.corrected_symbols, whole.corrected_symbols) << "S=" << S;
    EXPECT_EQ(merged.frame_symbols, whole.frame_symbols) << "S=" << S;
    EXPECT_EQ(merged.channel_symbols, whole.channel_symbols) << "S=" << S;
    EXPECT_EQ(merged.steady_allocations, whole.steady_allocations) << "S=" << S;
    EXPECT_EQ(merged.steady_frames, whole.steady_frames) << "S=" << S;
    EXPECT_EQ(merged.dram_ran, whole.dram_ran) << "S=" << S;
  }
}

TEST(PipelineSlices, RejectsNonStreamingAndInvalidArguments) {
  PipelineConfig materialized;  // side == rs_n, "none": legacy path
  materialized.frames = 1;
  materialized.run_dram = false;
  ASSERT_FALSE(pipeline_streams(materialized));
  EXPECT_THROW(run_pipeline_slice(materialized, 0, 2), std::invalid_argument);

  PipelineConfig c;
  c.interleaver = "two-stage";
  c.side = 40;
  c.symbols_per_burst = 8;
  c.frames = 1;
  c.run_dram = false;
  ASSERT_TRUE(pipeline_streams(c));
  EXPECT_THROW(run_pipeline_slice(c, 2, 2), std::invalid_argument);
  c.trace_record = "/tmp/tbi-slice-trace.bin";  // a slice would tear the trace
  EXPECT_THROW(run_pipeline_slice(c, 0, 2), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// SIMD backend identity
// ---------------------------------------------------------------------------

TEST(FerSweep, ScalarBackendMatchesDefaultDispatchByteForByte) {
  // The vectorized codec must never move a single sweep counter: pin the
  // kernel to the scalar oracle, run a small grid, re-run on whatever
  // CPUID dispatch picked, and demand equality on every result field but
  // wall time. (Under TBI_SIMD=scalar both runs are scalar and the test
  // is a tautology — CI also runs the suite with dispatch enabled.)
  SweepGrid grid;
  grid.interleavers = {"two-stage", "block"};
  grid.channels = {"gilbert-elliott"};
  grid.rs_ks = {223, 191};
  FerSweepOptions o;
  o.sweep.threads = 2;
  o.sweep.base_seed = 17;
  o.base.frames = 2;
  o.base.side = 64;
  o.base.symbols_per_burst = 16;
  o.base.run_dram = false;

  fec::gf256_force_backend(fec::GfBackend::Scalar);
  const auto scalar = run_fer_sweep(grid, o);
  fec::gf256_reset_backend();
  const auto dispatched = run_fer_sweep(grid, o);

  ASSERT_EQ(scalar.size(), dispatched.size());
  for (std::size_t i = 0; i < scalar.size(); ++i) {
    const auto& a = scalar[i].result;
    const auto& b = dispatched[i].result;
    const std::string label = scalar[i].scenario.label();
    EXPECT_EQ(a.frames, b.frames) << label;
    EXPECT_EQ(a.code_words, b.code_words) << label;
    EXPECT_EQ(a.word_errors, b.word_errors) << label;
    EXPECT_EQ(a.frame_errors, b.frame_errors) << label;
    EXPECT_EQ(a.channel_symbol_errors, b.channel_symbol_errors) << label;
    EXPECT_EQ(a.corrected_symbols, b.corrected_symbols) << label;
    EXPECT_EQ(a.frame_symbols, b.frame_symbols) << label;
    EXPECT_EQ(a.channel_symbols, b.channel_symbols) << label;
    EXPECT_EQ(a.workspace_peak_bytes, b.workspace_peak_bytes) << label;
    EXPECT_EQ(a.steady_allocations, b.steady_allocations) << label;
  }
}

}  // namespace
}  // namespace tbi::sim
