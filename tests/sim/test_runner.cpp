#include "sim/runner.hpp"

#include <gtest/gtest.h>

#include "common/mathutil.hpp"
#include "dram/standards.hpp"

namespace tbi::sim {
namespace {

using dram::find_config;

RunConfig base_config(const char* device, const char* mapping,
                      std::uint64_t max_bursts = 20000) {
  RunConfig rc;
  rc.device = *find_config(device);
  rc.mapping_spec = mapping;
  rc.side = paper_side_for(rc.device);
  rc.max_bursts_per_phase = max_bursts;
  return rc;
}

TEST(Runner, PaperSideMatchesBurstSize) {
  EXPECT_EQ(paper_side_for(*find_config("DDR4-3200")), 383u);
  EXPECT_EQ(paper_side_for(*find_config("LPDDR4-4266")), 541u);
}

TEST(Runner, RunsBothPhases) {
  const auto run = run_interleaver(base_config("DDR4-3200", "optimized"));
  EXPECT_EQ(run.device_name, "DDR4-3200");
  EXPECT_EQ(run.mapping_name, "optimized[diag,tile,offset]");
  EXPECT_EQ(run.write.stats.bursts, 20000u);
  EXPECT_EQ(run.read.stats.bursts, 20000u);
  EXPECT_EQ(run.write.stats.writes, 20000u);
  EXPECT_EQ(run.read.stats.reads, 20000u);
  EXPECT_GT(run.write.stats.utilization(), 0.5);
  EXPECT_GT(run.read.stats.utilization(), 0.5);
  EXPECT_GT(run.write.energy.total_nj(), 0.0);
}

TEST(Runner, FullTriangleWhenUntruncated) {
  auto rc = base_config("DDR4-3200", "optimized", 0);
  rc.side = 100;
  const auto run = run_interleaver(rc);
  EXPECT_EQ(run.write.stats.bursts, triangular_number(100));
  EXPECT_EQ(run.read.stats.bursts, triangular_number(100));
}

TEST(Runner, MinUtilizationIsTheMinimum) {
  const auto run = run_interleaver(base_config("DDR4-3200", "row-major"));
  EXPECT_DOUBLE_EQ(run.min_utilization(),
                   std::min(run.write.stats.utilization(),
                            run.read.stats.utilization()));
  EXPECT_LE(run.throughput_gbps(64),
            run.write.stats.bandwidth_gbps(64) + 1e-9);
}

TEST(Runner, ProtocolCheckedRunsAreClean) {
  // Both mappings on a representative device pass the independent JEDEC
  // checker end to end — this is the test that guards the whole pipeline.
  for (const char* mapping : {"row-major", "optimized", "optimized/diag",
                              "optimized/tile", "optimized/diag+tile"}) {
    auto rc = base_config("DDR4-3200", mapping, 15000);
    rc.check_protocol = true;
    EXPECT_NO_THROW(run_interleaver(rc)) << mapping;
  }
}

TEST(Runner, ProtocolCleanOnAllTenDevices) {
  for (const auto& dev : dram::standard_configs()) {
    RunConfig rc;
    rc.device = dev;
    rc.mapping_spec = "optimized";
    rc.side = paper_side_for(dev);
    rc.max_bursts_per_phase = 8000;
    rc.check_protocol = true;
    EXPECT_NO_THROW(run_interleaver(rc)) << dev.name;
  }
}

TEST(Runner, RequiresSide) {
  RunConfig rc;
  rc.device = *find_config("DDR3-800");
  rc.side = 0;
  EXPECT_THROW(run_interleaver(rc), std::invalid_argument);
}

TEST(Runner, RefreshDisabledImprovesUtilization) {
  auto with = base_config("DDR4-3200", "optimized", 60000);
  auto without = with;
  without.controller.use_device_default_refresh = false;
  without.controller.refresh_mode = dram::RefreshMode::Disabled;
  const auto a = run_interleaver(with);
  const auto b = run_interleaver(without);
  EXPECT_GE(b.min_utilization(), a.min_utilization());
}


TEST(Streaming, MixedPhaseCoversAllData) {
  auto rc = base_config("DDR4-3200", "optimized", 0);
  rc.side = 80;
  const auto result = run_streaming(rc);
  // Both blocks fully transferred: 2x the triangle, half writes half reads.
  EXPECT_EQ(result.stats.bursts, 2 * triangular_number(80));
  EXPECT_EQ(result.stats.writes, triangular_number(80));
  EXPECT_EQ(result.stats.reads, triangular_number(80));
  EXPECT_GT(result.stats.utilization(), 0.5);
}

TEST(Streaming, ProtocolCleanWithChecker) {
  for (const char* mapping : {"row-major", "optimized"}) {
    auto rc = base_config("LPDDR5-8533", mapping, 10000);
    rc.check_protocol = true;
    EXPECT_NO_THROW(run_streaming(rc)) << mapping;
  }
}

TEST(Streaming, RegionsDoNotCollide) {
  // The read block must sit in a disjoint row region: with a tiny
  // rows_per_bank the shifted region exceeds the device and must throw.
  // One block needs 84 rows on this geometry: 100 rows fit one block but
  // not two, so the shifted read region must be rejected.
  auto rc = base_config("DDR4-3200", "optimized", 1000);
  rc.device.rows_per_bank = 100;
  EXPECT_THROW(run_streaming(rc), std::out_of_range);
}

TEST(Streaming, RequiresSide) {
  RunConfig rc;
  rc.device = *find_config("DDR3-800");
  rc.side = 0;
  EXPECT_THROW(run_streaming(rc), std::invalid_argument);
}

}  // namespace
}  // namespace tbi::sim
