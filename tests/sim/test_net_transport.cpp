/// \file test_net_transport.cpp
/// Fleet-mode (TCP transport) tests for the distributed sweep backend.
/// The driver runs in the test's main thread; remote workers are either
/// std::threads running dsweep_worker_connect against 127.0.0.1 (so
/// connection faults like drop-conn-after can run in-process) or real
/// re-exec'd child processes when the test needs to SIGKILL one.
/// Every recovery path must converge to the byte-identical single-process
/// result.
#include "sim/net_transport.hpp"

#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <functional>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "common/net.hpp"
#include "common/wire.hpp"
#include "perf/counters.hpp"
#include "sim/dsweep.hpp"

namespace tbi::sim {
namespace {

constexpr std::uint64_t kCells = 24;
constexpr std::uint64_t kSeed = 7;

Json echo_job(unsigned sleep_us = 2000) {
  Json job;
  job["tag"] = "t";
  job["sleep_us"] = static_cast<std::uint64_t>(sleep_us);
  return job;
}

/// Clean single-process reference for \p job.
std::vector<std::string> echo_reference(const Json& job) {
  DsweepOptions opt;
  opt.workers = 1;
  opt.threads = 2;
  const auto res = dsweep_run("test-echo", job, kCells, kSeed, opt);
  std::vector<std::string> dumps;
  for (const auto& r : res.records) dumps.push_back(r.dump(0));
  return dumps;
}

void expect_matches_reference(const DsweepResult& res, const Json& job) {
  const auto ref = echo_reference(job);
  ASSERT_EQ(res.records.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_TRUE(res.done[i]) << "cell " << i << " missing";
    EXPECT_EQ(res.records[i].dump(0), ref[i]) << "cell " << i;
  }
}

/// In-thread remote workers dialing an ephemeral driver port published
/// through on_listening.
struct Fleet {
  std::promise<std::uint16_t> port_promise;
  std::shared_future<std::uint16_t> port = port_promise.get_future().share();
  std::vector<std::thread> threads;
  std::vector<int> exit_codes;

  DsweepOptions driver_options(unsigned workers) {
    DsweepOptions opt;
    opt.workers = workers;
    opt.threads = 2;
    opt.listen = "127.0.0.1:0";
    opt.backoff_base_ms = 1;  // keep reconnect tests fast
    opt.on_listening = [this](std::uint16_t p) { port_promise.set_value(p); };
    return opt;
  }

  void start_workers(unsigned n) {
    exit_codes.assign(n, -1);
    for (unsigned i = 0; i < n; ++i) {
      threads.emplace_back([this, i] {
        WorkerConnectOptions w;
        w.backoff_base_ms = 2;
        w.max_retries = 8;
        exit_codes[i] = dsweep_worker_connect(
            "127.0.0.1:" + std::to_string(port.get()), w);
      });
    }
  }

  void join() {
    for (auto& t : threads) t.join();
    threads.clear();
  }
};

TEST(DsweepTcp, FleetRunMatchesSingleProcessByteForByte) {
  Fleet fleet;
  auto opt = fleet.driver_options(2);
  fleet.start_workers(2);
  const auto res = dsweep_run("test-echo", echo_job(), kCells, kSeed, opt);
  fleet.join();

  EXPECT_TRUE(res.stats.tcp);
  EXPECT_FALSE(res.stats.degraded_inprocess);
  EXPECT_GE(res.stats.connections_adopted, 2u);
  EXPECT_EQ(res.stats.connections_rejected, 0u);
  for (const int code : fleet.exit_codes) EXPECT_EQ(code, 0);
  expect_matches_reference(res, echo_job());
}

TEST(DsweepTcp, DroppedConnectionIsReassignedAndWorkerReconnects) {
  Fleet fleet;
  auto opt = fleet.driver_options(2);
  opt.faults = FaultSpec::parse("drop-conn-after=2@0");
  fleet.start_workers(2);
  const auto res = dsweep_run("test-echo", echo_job(), kCells, kSeed, opt);
  fleet.join();

  EXPECT_GE(res.stats.worker_restarts, 1u);
  EXPECT_GE(res.stats.cells_reassigned, 1u);
  EXPECT_FALSE(res.stats.degraded_inprocess);
  expect_matches_reference(res, echo_job());
}

TEST(DsweepTcp, PartitionedWorkerHitsHeartbeatTimeoutAndIsReplaced) {
  Fleet fleet;
  auto opt = fleet.driver_options(2);
  opt.heartbeat_interval_ms = 25;
  opt.heartbeat_timeout_ms = 300;
  // The connection stays open but heartbeats stop: only the liveness
  // window can tell this "partitioned" worker from a slow one.
  opt.faults = FaultSpec::parse("stall-conn-after=1@0");
  fleet.start_workers(2);
  const auto res = dsweep_run("test-echo", echo_job(), kCells, kSeed, opt);
  fleet.join();

  EXPECT_GE(res.stats.heartbeat_timeouts, 1u);
  EXPECT_GE(res.stats.worker_restarts, 1u);
  expect_matches_reference(res, echo_job());
}

TEST(DsweepTcp, CorruptHeaderFrameIsRejectedNeverMerged) {
  Fleet fleet;
  auto opt = fleet.driver_options(2);
  // corrupt-frame flips a header type bit — only the v2 CRC (which
  // covers the header) catches it.
  opt.faults = FaultSpec::parse("corrupt-frame=2@0");
  fleet.start_workers(2);
  const auto res = dsweep_run("test-echo", echo_job(), kCells, kSeed, opt);
  fleet.join();

  EXPECT_GE(res.stats.batches_rejected, 1u);
  EXPECT_GE(res.stats.worker_restarts, 1u);
  expect_matches_reference(res, echo_job());
}

TEST(DsweepTcp, NoWorkerEverConnectsDegradesToInProcess) {
  DsweepOptions opt;
  opt.workers = 2;
  opt.threads = 2;
  opt.listen = "127.0.0.1:0";
  opt.accept_timeout_ms = 150;
  const auto res = dsweep_run("test-echo", echo_job(0), kCells, kSeed, opt);

  EXPECT_TRUE(res.stats.tcp);
  EXPECT_TRUE(res.stats.degraded_inprocess);
  EXPECT_EQ(res.stats.connections_adopted, 0u);
  expect_matches_reference(res, echo_job(0));
}

TEST(DsweepTcp, KilledRemoteWorkerProcessIsRecovered) {
  // One worker is a real re-exec'd process; SIGKILL lands mid-grid (a
  // cell takes 5 ms, the grid ~60 ms across two workers). The driver
  // must survive the dead peer (EPIPE, not SIGPIPE), reassign its
  // in-flight cell and finish on the surviving worker.
  Fleet fleet;
  const Json job = echo_job(5000);
  auto opt = fleet.driver_options(2);
  fleet.start_workers(1);

  char exe[4096] = {0};
  ASSERT_GT(::readlink("/proc/self/exe", exe, sizeof exe - 1), 0);
  std::thread killer([&fleet, &exe] {
    const std::string spec = "127.0.0.1:" + std::to_string(fleet.port.get());
    const pid_t pid = ::fork();
    if (pid == 0) {
      ::execl(exe, exe, ("--connect=" + spec).c_str(), (char*)nullptr);
      ::_exit(127);
    }
    ASSERT_GT(pid, 0);
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    ::kill(pid, SIGKILL);
    int status = 0;
    ::waitpid(pid, &status, 0);
  });

  const auto res = dsweep_run("test-echo", job, kCells, kSeed, opt);
  killer.join();
  fleet.join();

  EXPECT_GE(res.stats.worker_restarts, 1u);
  EXPECT_FALSE(res.stats.degraded_inprocess);
  expect_matches_reference(res, job);
}

TEST(DsweepTcp, WorkerConnectBudgetExhaustedReturnsFailure) {
  // Bind an ephemeral port and close it again: every dial must fail,
  // and the bounded retry budget must end in a clean error exit.
  std::string err;
  const int lfd = net::listen_tcp("127.0.0.1:0", &err);
  ASSERT_GE(lfd, 0) << err;
  const std::uint16_t port = net::local_port(lfd);
  ::close(lfd);

  WorkerConnectOptions w;
  w.max_retries = 2;
  w.backoff_base_ms = 1;
  w.connect_timeout_ms = 200;
  EXPECT_EQ(dsweep_worker_connect("127.0.0.1:" + std::to_string(port), w), 1);
}

TEST(DsweepTcp, MalformedListenSpecThrows) {
  DsweepOptions opt;
  opt.workers = 2;
  opt.listen = "no-port-here";
  EXPECT_THROW(dsweep_run("test-echo", echo_job(0), kCells, kSeed, opt),
               std::invalid_argument);
}

TEST(DsweepTcp, UnbindableListenAddressThrows) {
  DsweepOptions opt;
  opt.workers = 2;
  opt.listen = "192.0.2.1:0";  // TEST-NET-1: never a local interface
  EXPECT_THROW(dsweep_run("test-echo", echo_job(0), kCells, kSeed, opt),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// TcpTransport handshake unit tests: drive service() directly.
// ---------------------------------------------------------------------------

bool pump_until(TcpTransport& t, const std::function<bool()>& done,
                int timeout_ms = 2000) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    t.service(perf::now_ns());
    if (done()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return false;
}

int dial(const TcpTransport& t) {
  std::string err;
  const int fd =
      net::connect_tcp("127.0.0.1:" + std::to_string(t.port()), 2000, &err);
  EXPECT_GE(fd, 0) << err;
  return fd;
}

std::string hello_payload(std::uint64_t proto, const std::string& fingerprint) {
  Json hello;
  hello["proto"] = proto;
  hello["fingerprint"] = fingerprint;
  return hello.dump(0);
}

TEST(TcpTransportHandshake, ForeignFingerprintGetsARejectFrame) {
  TcpTransportOptions topt;
  topt.fingerprint = "feedface";
  TcpTransport t("127.0.0.1:0", topt);
  ASSERT_NE(t.port(), 0);

  const int fd = dial(t);
  ASSERT_TRUE(wire::write_frame(fd, wire::FrameType::Hello,
                                hello_payload(wire::kProtocolVersion, "deadbeef")));
  ASSERT_TRUE(pump_until(t, [&t] { return t.rejected() > 0; }));
  EXPECT_EQ(t.rejected(), 1u);
  EXPECT_EQ(t.adopted(), 0u);

  // The worker hears why before the close: Reject frame, then EOF.
  wire::FrameReader r;
  wire::Frame f;
  ASSERT_EQ(wire::read_frame(fd, r, &f), wire::FrameReader::Status::Frame);
  EXPECT_EQ(f.type, wire::FrameType::Reject);
  EXPECT_FALSE(f.payload.empty());
  EXPECT_EQ(wire::read_frame(fd, r, &f), wire::FrameReader::Status::Eof);
  ::close(fd);
}

TEST(TcpTransportHandshake, ProtocolVersionMismatchIsRejected) {
  TcpTransportOptions topt;
  topt.fingerprint = "feedface";
  TcpTransport t("127.0.0.1:0", topt);

  const int fd = dial(t);
  ASSERT_TRUE(wire::write_frame(
      fd, wire::FrameType::Hello,
      hello_payload(wire::kProtocolVersion + 1, "feedface")));
  ASSERT_TRUE(pump_until(t, [&t] { return t.rejected() > 0; }));

  wire::FrameReader r;
  wire::Frame f;
  ASSERT_EQ(wire::read_frame(fd, r, &f), wire::FrameReader::Status::Frame);
  EXPECT_EQ(f.type, wire::FrameType::Reject);
  ::close(fd);
}

TEST(TcpTransportHandshake, FreshAndMatchingWorkersAreQueuedForAdoption) {
  TcpTransportOptions topt;
  topt.fingerprint = "feedface";
  TcpTransport t("127.0.0.1:0", topt);

  // A first-contact worker has no fingerprint yet; a reconnecting one
  // echoes this run's. Both must pass the handshake.
  const int fresh = dial(t);
  ASSERT_TRUE(wire::write_frame(fresh, wire::FrameType::Hello,
                                hello_payload(wire::kProtocolVersion, "")));
  const int back = dial(t);
  ASSERT_TRUE(wire::write_frame(back, wire::FrameType::Hello,
                                hello_payload(wire::kProtocolVersion, "feedface")));

  int a = -1;
  int b = -1;
  ASSERT_TRUE(pump_until(t, [&] {
    if (a < 0) a = t.acquire(0);
    if (a >= 0 && b < 0) b = t.acquire(1);
    return a >= 0 && b >= 0;
  }));
  EXPECT_EQ(t.adopted(), 2u);
  EXPECT_EQ(t.rejected(), 0u);

  t.release(0, a);
  t.release(1, b);
  ::close(fresh);
  ::close(back);
}

TEST(TcpTransportHandshake, SilentConnectionTimesOutWithoutPinningASlot) {
  TcpTransportOptions topt;
  topt.fingerprint = "feedface";
  topt.handshake_timeout_ms = 100;
  TcpTransport t("127.0.0.1:0", topt);

  const int fd = dial(t);  // connect, then never say Hello
  ASSERT_TRUE(pump_until(t, [&t] { return t.busy(); }, 1000));
  // busy() while the handshake is pending, idle again once it expires.
  ASSERT_TRUE(pump_until(t, [&t] { return !t.busy(); }, 1000));
  EXPECT_EQ(t.acquire(0), -1);
  EXPECT_EQ(t.adopted(), 0u);
  ::close(fd);
}

}  // namespace
}  // namespace tbi::sim
