/// \file test_dsweep.cpp
/// Fault-tolerant sweep backend tests. The worker processes these tests
/// spawn are re-invocations of the test binary itself (tests/main.cpp
/// dispatches --worker-fd and registers the test kernels), so every
/// recovery path runs against real fork/exec workers, not mocks.
#include "sim/dsweep.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include "sim/manifest.hpp"
#include "sim/pipeline.hpp"

namespace tbi::sim {
namespace {

constexpr std::uint64_t kCells = 24;
constexpr std::uint64_t kSeed = 7;

Json echo_job() {
  Json job;
  job["tag"] = "t";
  // Stretch each cell to ~2 ms so count-triggered faults always fire
  // before a sibling drains the whole grid.
  job["sleep_us"] = 2000;
  return job;
}

/// Clean single-process reference for the echo job.
std::vector<std::string> echo_reference() {
  DsweepOptions opt;
  opt.workers = 1;
  opt.threads = 2;
  const auto res = dsweep_run("test-echo", echo_job(), kCells, kSeed, opt);
  std::vector<std::string> dumps;
  for (const auto& r : res.records) dumps.push_back(r.dump(0));
  return dumps;
}

void expect_matches_reference(const DsweepResult& res) {
  const auto ref = echo_reference();
  ASSERT_EQ(res.records.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_TRUE(res.done[i]) << "cell " << i << " missing";
    EXPECT_EQ(res.records[i].dump(0), ref[i]) << "cell " << i;
  }
}

DsweepOptions fast_recovery_options(unsigned workers) {
  DsweepOptions opt;
  opt.workers = workers;
  opt.threads = 2;
  opt.backoff_base_ms = 1;  // keep injected-crash tests fast
  return opt;
}

std::string temp_manifest(const char* tag) {
  return ::testing::TempDir() + "dsweep_" + tag + "_" +
         std::to_string(::getpid()) + ".manifest";
}

TEST(Dsweep, InProcessRecordsCarryPerCellSeeds) {
  DsweepOptions opt;
  opt.workers = 1;
  opt.threads = 4;
  const auto res = dsweep_run("test-echo", echo_job(), kCells, kSeed, opt);
  ASSERT_EQ(res.records.size(), kCells);
  EXPECT_FALSE(res.stats.interrupted);
  EXPECT_FALSE(res.stats.degraded_inprocess);
  for (std::uint64_t i = 0; i < kCells; ++i) {
    ASSERT_TRUE(res.done[i]);
    EXPECT_EQ(res.records[i].at("index").as_double(), static_cast<double>(i));
    EXPECT_EQ(res.records[i].at("seed").as_string(),
              std::to_string(job_seed(kSeed, i)));
  }
}

TEST(Dsweep, MultiProcessMatchesInProcessByteForByte) {
  const auto res =
      dsweep_run("test-echo", echo_job(), kCells, kSeed, fast_recovery_options(3));
  EXPECT_EQ(res.stats.workers, 3u);
  EXPECT_EQ(res.stats.worker_restarts, 0u);
  expect_matches_reference(res);
}

TEST(Dsweep, KilledWorkerIsRespawnedAndResultUnchanged) {
  auto opt = fast_recovery_options(3);
  opt.faults = FaultSpec::parse("kill-after=2@0");
  const auto res = dsweep_run("test-echo", echo_job(), kCells, kSeed, opt);
  EXPECT_GE(res.stats.worker_restarts, 1u);
  EXPECT_GE(res.stats.cells_reassigned, 1u);
  EXPECT_FALSE(res.stats.interrupted);
  expect_matches_reference(res);
}

TEST(Dsweep, HungWorkerHitsHeartbeatTimeoutAndResultUnchanged) {
  auto opt = fast_recovery_options(2);
  opt.heartbeat_interval_ms = 25;
  opt.heartbeat_timeout_ms = 300;
  opt.faults = FaultSpec::parse("stall-after=1@0");
  const auto res = dsweep_run("test-echo", echo_job(), kCells, kSeed, opt);
  EXPECT_GE(res.stats.heartbeat_timeouts, 1u);
  EXPECT_GE(res.stats.worker_restarts, 1u);
  expect_matches_reference(res);
}

TEST(Dsweep, CorruptBatchIsRejectedNeverMerged) {
  auto opt = fast_recovery_options(2);
  opt.faults = FaultSpec::parse("corrupt-batch=2@0");
  const auto res = dsweep_run("test-echo", echo_job(), kCells, kSeed, opt);
  EXPECT_GE(res.stats.batches_rejected, 1u);
  EXPECT_GE(res.stats.worker_restarts, 1u);
  expect_matches_reference(res);
}

TEST(Dsweep, TruncatedBatchIsDiscardedAndRecomputed) {
  auto opt = fast_recovery_options(2);
  opt.faults = FaultSpec::parse("truncate-batch=2@0");
  const auto res = dsweep_run("test-echo", echo_job(), kCells, kSeed, opt);
  EXPECT_GE(res.stats.worker_restarts, 1u);
  expect_matches_reference(res);
}

TEST(Dsweep, SpawnFailureDegradesToInProcess) {
  auto opt = fast_recovery_options(4);
  opt.faults = FaultSpec::parse("spawn-fail");
  const auto res = dsweep_run("test-echo", echo_job(), kCells, kSeed, opt);
  EXPECT_TRUE(res.stats.degraded_inprocess);
  EXPECT_EQ(res.stats.workers, 0u);
  expect_matches_reference(res);
}

TEST(Dsweep, AbortIsCheckpointedAndResumeCompletesIdentically) {
  const std::string manifest = temp_manifest("resume");
  std::remove(manifest.c_str());

  auto opt = fast_recovery_options(2);
  opt.manifest_path = manifest;
  opt.faults = FaultSpec::parse("abort-after=3");
  const auto partial = dsweep_run("test-echo", echo_job(), kCells, kSeed, opt);
  EXPECT_TRUE(partial.stats.interrupted);
  std::uint64_t done = 0;
  for (const bool d : partial.done) done += d ? 1 : 0;
  EXPECT_GE(done, 3u);
  EXPECT_LT(done, kCells);

  auto resume = fast_recovery_options(2);
  resume.manifest_path = manifest;
  resume.resume = true;
  const auto full = dsweep_run("test-echo", echo_job(), kCells, kSeed, resume);
  EXPECT_FALSE(full.stats.interrupted);
  EXPECT_EQ(full.stats.resumed_cells, done);
  expect_matches_reference(full);
  std::remove(manifest.c_str());
}

TEST(Dsweep, ResumeRejectsManifestFromDifferentRun) {
  const std::string manifest = temp_manifest("mismatch");
  std::remove(manifest.c_str());

  auto opt = fast_recovery_options(1);
  opt.manifest_path = manifest;
  opt.faults = FaultSpec::parse("abort-after=2");
  (void)dsweep_run("test-echo", echo_job(), kCells, kSeed, opt);

  auto resume = fast_recovery_options(1);
  resume.manifest_path = manifest;
  resume.resume = true;
  // Different base seed => different fingerprint: silently mixing the old
  // records would corrupt the sweep, so this must throw.
  EXPECT_THROW(dsweep_run("test-echo", echo_job(), kCells, kSeed + 1, resume),
               std::runtime_error);
  std::remove(manifest.c_str());
}

TEST(Dsweep, NonPositiveWorkerTimeoutIsRejected) {
  DsweepOptions opt;
  opt.heartbeat_timeout_ms = 0;
  EXPECT_THROW(dsweep_run("test-echo", echo_job(), 4, kSeed, opt),
               std::invalid_argument);
}

TEST(Dsweep, UnknownKernelThrows) {
  DsweepOptions opt;
  EXPECT_THROW(dsweep_run("no-such-kernel", Json(), 1, 1, opt),
               std::invalid_argument);
}

TEST(Dsweep, ZeroCellsReturnsEmptyWithoutSpawningAnything) {
  auto opt = fast_recovery_options(4);
  const auto res = dsweep_run("test-echo", echo_job(), 0, kSeed, opt);
  EXPECT_TRUE(res.records.empty());
  EXPECT_TRUE(res.done.empty());
  EXPECT_EQ(res.stats.workers, 0u);
}

TEST(Dsweep, DeterministicKernelFailurePropagatesFromWorkers) {
  Json job;
  job["fail_at"] = 1;
  auto opt = fast_recovery_options(2);
  EXPECT_THROW(dsweep_run("test-fail-at", job, 4, kSeed, opt),
               std::invalid_argument);
}

TEST(Dsweep, DeterministicKernelFailurePropagatesInProcess) {
  Json job;
  job["fail_at"] = 1;
  DsweepOptions opt;
  opt.workers = 1;
  opt.threads = 2;
  EXPECT_THROW(dsweep_run("test-fail-at", job, 4, kSeed, opt),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Sharded sweeps: any I/N partition must merge back byte-identically.
// ---------------------------------------------------------------------------

TEST(DsweepShard, RangesTileTheGridExactly) {
  for (const std::uint64_t cells : {std::uint64_t(1), std::uint64_t(7),
                                    std::uint64_t(24), std::uint64_t(100)}) {
    for (const unsigned n : {1u, 2u, 3u, 5u, 24u}) {
      std::uint64_t next = 0;
      for (unsigned i = 0; i < n; ++i) {
        const auto r = shard_range(cells, i, n);
        EXPECT_EQ(r.begin, next) << cells << " cells, shard " << i << "/" << n;
        EXPECT_LE(r.size(), cells / n + 1);
        next = r.end;
      }
      EXPECT_EQ(next, cells) << cells << " cells over " << n << " shards";
    }
  }
  EXPECT_THROW(shard_range(10, 0, 0), std::invalid_argument);
  EXPECT_THROW(shard_range(10, 3, 3), std::invalid_argument);
}

TEST(DsweepShard, ParseShardSpecValidatesInput) {
  unsigned index = 9;
  unsigned count = 9;
  parse_shard_spec("1/3", &index, &count);
  EXPECT_EQ(index, 1u);
  EXPECT_EQ(count, 3u);
  for (const char* bad : {"", "1", "/", "1/", "/3", "a/3", "1/b", "3/3", "4/3",
                          "0/0", "1/3/5", "-1/3"}) {
    EXPECT_THROW(parse_shard_spec(bad, &index, &count), std::invalid_argument)
        << "spec '" << bad << "'";
  }
}

TEST(DsweepShard, AnyPartitionMergesByteIdenticalToUnsharded) {
  for (const unsigned n : {2u, 3u, 5u}) {
    std::vector<std::string> manifests;
    for (unsigned i = 0; i < n; ++i) {
      const std::string tag =
          "shard" + std::to_string(n) + "_" + std::to_string(i);
      const std::string m = temp_manifest(tag.c_str());
      std::remove(m.c_str());
      manifests.push_back(m);

      DsweepOptions opt;
      opt.workers = 1;
      opt.threads = 2;
      opt.manifest_path = m;
      opt.shard_index = i;
      opt.shard_count = n;
      const auto res = dsweep_run("test-echo", echo_job(), kCells, kSeed, opt);
      EXPECT_FALSE(res.stats.interrupted);
      // A shard computes exactly its contiguous range, nothing else.
      const auto range = shard_range(kCells, i, n);
      for (std::uint64_t c = 0; c < kCells; ++c) {
        EXPECT_EQ(static_cast<bool>(res.done[c]), range.contains(c))
            << "shard " << i << "/" << n << ", cell " << c;
      }
    }

    const auto merged =
        dsweep_merge_shards("test-echo", echo_job(), kCells, kSeed, manifests);
    expect_matches_reference(merged);
    for (const auto& m : manifests) std::remove(m.c_str());
  }
}

TEST(DsweepShard, TornTailShardResumesAndMergesIdentically) {
  const std::string m0 = temp_manifest("torn0");
  const std::string m1 = temp_manifest("torn1");
  std::remove(m0.c_str());
  std::remove(m1.c_str());

  // Shard 0 is preempted mid-run...
  auto opt0 = fast_recovery_options(1);
  opt0.manifest_path = m0;
  opt0.shard_index = 0;
  opt0.shard_count = 2;
  opt0.faults = FaultSpec::parse("abort-after=2");
  const auto partial = dsweep_run("test-echo", echo_job(), kCells, kSeed, opt0);
  EXPECT_TRUE(partial.stats.interrupted);

  // ...and the crash tears the journal's final line.
  {
    std::FILE* f = std::fopen(m0.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    std::fputs("{\"cell\": 999, \"rec", f);
    std::fclose(f);
  }

  auto resume0 = fast_recovery_options(1);
  resume0.manifest_path = m0;
  resume0.shard_index = 0;
  resume0.shard_count = 2;
  resume0.resume = true;
  const auto full0 = dsweep_run("test-echo", echo_job(), kCells, kSeed, resume0);
  EXPECT_FALSE(full0.stats.interrupted);
  EXPECT_GE(full0.stats.resumed_cells, 2u);

  auto opt1 = fast_recovery_options(1);
  opt1.manifest_path = m1;
  opt1.shard_index = 1;
  opt1.shard_count = 2;
  const auto full1 = dsweep_run("test-echo", echo_job(), kCells, kSeed, opt1);
  EXPECT_FALSE(full1.stats.interrupted);

  const auto merged =
      dsweep_merge_shards("test-echo", echo_job(), kCells, kSeed, {m0, m1});
  expect_matches_reference(merged);
  std::remove(m0.c_str());
  std::remove(m1.c_str());
}

TEST(DsweepShard, MergeRejectsForeignManifest) {
  const std::string m0 = temp_manifest("foreign0");
  const std::string m1 = temp_manifest("foreign1");
  std::remove(m0.c_str());
  std::remove(m1.c_str());

  auto opt = fast_recovery_options(1);
  opt.manifest_path = m0;
  opt.shard_index = 0;
  opt.shard_count = 2;
  (void)dsweep_run("test-echo", echo_job(), kCells, kSeed, opt);

  // Shard 1 computed under a different base seed: merging it would mix
  // two different runs, exactly like resuming from a foreign manifest.
  opt.manifest_path = m1;
  opt.shard_index = 1;
  (void)dsweep_run("test-echo", echo_job(), kCells, kSeed + 1, opt);

  EXPECT_THROW(
      dsweep_merge_shards("test-echo", echo_job(), kCells, kSeed, {m0, m1}),
      std::runtime_error);
  std::remove(m0.c_str());
  std::remove(m1.c_str());
}

TEST(DsweepShard, MergeRequiresFullCoverage) {
  const std::string m0 = temp_manifest("coverage0");
  std::remove(m0.c_str());

  auto opt = fast_recovery_options(1);
  opt.manifest_path = m0;
  opt.shard_index = 0;
  opt.shard_count = 2;
  (void)dsweep_run("test-echo", echo_job(), kCells, kSeed, opt);

  // Half the grid is missing: an unfinished fleet must be an error, not
  // a silently truncated result.
  EXPECT_THROW(dsweep_merge_shards("test-echo", echo_job(), kCells, kSeed, {m0}),
               std::runtime_error);
  EXPECT_THROW(dsweep_merge_shards("test-echo", echo_job(), kCells, kSeed,
                                   {m0, "/nonexistent/dir/x.manifest"}),
               std::runtime_error);
  std::remove(m0.c_str());
}

// ---------------------------------------------------------------------------
// FER integration: the distributed path must reproduce run_fer_sweep.
// ---------------------------------------------------------------------------

TEST(DsweepFer, DistributedSweepMatchesInProcessSweep) {
  SweepGrid grid;
  grid.devices = {"LPDDR5-8533"};
  grid.interleavers = {"none", "block"};
  grid.channels = {"bsc", "gilbert-elliott"};
  grid.rs_ks = {223, 191};

  FerSweepOptions options;
  options.sweep.threads = 2;
  options.sweep.base_seed = 11;
  options.base.frames = 2;
  options.base.side = 64;
  options.base.run_dram = false;

  const auto reference = run_fer_sweep(grid, options);

  DsweepOptions dist;
  dist.workers = 3;
  dist.backoff_base_ms = 1;
  const auto res = run_fer_sweep_dist(grid, options, dist);

  ASSERT_EQ(res.cells.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    ASSERT_TRUE(res.done[i]);
    const auto& a = reference[i];
    const auto& b = res.cells[i];
    EXPECT_EQ(a.scenario.label(), b.scenario.label());
    EXPECT_EQ(a.result.frames, b.result.frames);
    EXPECT_EQ(a.result.code_words, b.result.code_words);
    EXPECT_EQ(a.result.word_errors, b.result.word_errors);
    EXPECT_EQ(a.result.frame_errors, b.result.frame_errors);
    EXPECT_EQ(a.result.channel_symbol_errors, b.result.channel_symbol_errors);
    EXPECT_EQ(a.result.corrected_symbols, b.result.corrected_symbols);
    EXPECT_EQ(a.result.frame_symbols, b.result.frame_symbols);
    EXPECT_EQ(a.result.workspace_peak_bytes, b.result.workspace_peak_bytes);
    EXPECT_EQ(a.result.steady_allocations, b.result.steady_allocations);
    EXPECT_EQ(a.result.channel_symbols, b.result.channel_symbols);
    EXPECT_EQ(a.result.dram_ran, b.result.dram_ran);
  }
}

TEST(DsweepFer, JobConfigFingerprintIsStable) {
  SweepGrid grid;
  grid.devices = {"LPDDR5-8533"};
  FerSweepOptions options;
  const Json a = fer_job_config(grid, options);
  const Json b = fer_job_config(grid, options);
  EXPECT_EQ(sweep_fingerprint("fer", a, grid.size(), 1),
            sweep_fingerprint("fer", b, grid.size(), 1));
}

TEST(DsweepFer, CellRecordRoundTripsThroughWireJson) {
  Scenario s;
  s.device = "LPDDR5-8533";
  s.interleaver = "two-stage";
  s.channel = "leo";
  s.rs_k = 191;
  s.symbols_per_burst = 64;
  PipelineResult r;
  r.frames = 4;
  r.code_words = 123;
  r.word_errors = 5;
  r.frame_errors = 2;
  r.channel_symbol_errors = 999;
  r.corrected_symbols = 321;
  r.frame_symbols = 2080;
  r.workspace_peak_bytes = 65536;
  r.host_ns = 123456789;
  r.steady_allocations = 0;
  r.steady_frames = 3;
  r.channel_symbols = 8320;
  r.dram_ran = false;

  const Json wire = fer_cell_to_json(s, r);
  // Round trip through dump/parse exactly as the socket does.
  const FerCell back = fer_cell_from_json(Json::parse(wire.dump(0)));
  EXPECT_EQ(back.scenario.label(), s.label());
  EXPECT_EQ(back.result.code_words, r.code_words);
  EXPECT_EQ(back.result.word_errors, r.word_errors);
  EXPECT_EQ(back.result.frame_errors, r.frame_errors);
  EXPECT_EQ(back.result.channel_symbol_errors, r.channel_symbol_errors);
  EXPECT_EQ(back.result.workspace_peak_bytes, r.workspace_peak_bytes);
  EXPECT_EQ(back.result.host_ns, r.host_ns);
  EXPECT_FALSE(back.result.dram_ran);
}

TEST(DsweepFer, SliceRecordRoundTripsThroughWireJson) {
  Scenario s;
  s.device = "LPDDR5-8533";
  s.interleaver = "two-stage";
  s.channel = "gilbert-elliott";
  s.rs_k = 223;
  s.symbols_per_burst = 16;
  PipelineSliceResult r;
  r.slice = 2;
  r.num_slices = 4;
  r.frames = 3;
  r.channel_symbols = 1'000'000;
  r.channel_symbol_errors = 2;
  r.workspace_peak_bytes = 70000;
  r.host_ns = 424242;
  r.hits = {{0, 5, 0x80}, {2, 12'502'499, 0xFF}};

  const Json wire = fer_slice_to_json(s, r);
  const PipelineSliceResult back = fer_slice_from_json(Json::parse(wire.dump(0)));
  EXPECT_EQ(back.slice, r.slice);
  EXPECT_EQ(back.num_slices, r.num_slices);
  EXPECT_EQ(back.frames, r.frames);
  EXPECT_EQ(back.channel_symbols, r.channel_symbols);
  EXPECT_EQ(back.channel_symbol_errors, r.channel_symbol_errors);
  EXPECT_EQ(back.workspace_peak_bytes, r.workspace_peak_bytes);
  EXPECT_EQ(back.host_ns, r.host_ns);
  ASSERT_EQ(back.hits.size(), r.hits.size());
  for (std::size_t i = 0; i < r.hits.size(); ++i) {
    EXPECT_EQ(back.hits[i].frame, r.hits[i].frame);
    EXPECT_EQ(back.hits[i].input_index, r.hits[i].input_index);
    EXPECT_EQ(back.hits[i].flip, r.hits[i].flip);
  }

  // A torn hit array (not a multiple of the triplet width) must be
  // rejected, not silently truncated.
  Json torn = Json::parse(wire.dump(0));
  Json::Array hits = torn.at("slice").at("hits").as_array();
  hits.pop_back();
  torn["slice"]["hits"] = Json(hits);
  EXPECT_THROW(fer_slice_from_json(torn), std::invalid_argument);
}

TEST(DsweepFer, JobConfigOmitsSliceKeysWhenUnsliced) {
  // frame_slices == 1 must leave the job config byte-identical to
  // pre-slice drivers: the config feeds the run fingerprint, so adding
  // the keys unconditionally would orphan every existing manifest.
  SweepGrid grid;
  grid.devices = {"LPDDR5-8533"};
  FerSweepOptions options;
  const Json unsliced = fer_job_config(grid, options);
  EXPECT_FALSE(unsliced.contains("frame_slices"));
  EXPECT_FALSE(unsliced.contains("base_seed"));
  options.frame_slices = 4;
  const Json sliced = fer_job_config(grid, options);
  ASSERT_TRUE(sliced.contains("frame_slices"));
  EXPECT_EQ(sliced.at("frame_slices").as_double(), 4.0);
  // Json numbers are doubles; the 64-bit seed rides as a string.
  EXPECT_EQ(sliced.at("base_seed").as_string(),
            std::to_string(options.sweep.base_seed));
}

TEST(DsweepFer, PaperScaleFrameSplitsAcrossWorkersByteIdentical) {
  // The tentpole's distribution payoff: one side-5000 streaming frame
  // (25 M symbols) split into 4 intra-frame slices, run on 1, 2 and 4
  // worker processes, must merge to the same record bytes regardless of
  // worker count, and must match the in-process unsliced sweep on every
  // field the slice API pins (everything but workspace_peak_bytes and
  // host_ns).
  SweepGrid grid;
  grid.devices = {"LPDDR5-8533"};
  grid.interleavers = {"two-stage"};
  grid.channels = {"gilbert-elliott"};
  grid.rs_ks = {223};

  FerSweepOptions options;
  options.sweep.threads = 2;
  options.sweep.base_seed = 29;
  options.base.frames = 1;
  options.base.side = 5000;
  options.base.symbols_per_burst = 2;
  options.base.fade_fraction = 0.001;
  options.base.mean_burst_symbols = 2000;
  options.base.error_rate_bad = 0.8;
  options.base.run_dram = false;

  const auto reference = run_fer_sweep(grid, options);
  ASSERT_EQ(reference.size(), 1u);
  const auto& ref = reference[0].result;
  ASSERT_GT(ref.channel_symbol_errors, 1000u);

  options.frame_slices = 4;
  std::vector<FerDistResult> runs;
  for (const unsigned workers : {1u, 2u, 4u}) {
    DsweepOptions dist;
    dist.workers = workers;
    dist.backoff_base_ms = 1;
    runs.push_back(run_fer_sweep_dist(grid, options, dist));
  }

  for (std::size_t w = 0; w < runs.size(); ++w) {
    ASSERT_EQ(runs[w].cells.size(), 1u);
    ASSERT_TRUE(runs[w].done[0]);
    const auto& got = runs[w].cells[0].result;
    EXPECT_EQ(got.frames, ref.frames) << "run " << w;
    EXPECT_EQ(got.code_words, ref.code_words) << "run " << w;
    EXPECT_EQ(got.word_errors, ref.word_errors) << "run " << w;
    EXPECT_EQ(got.frame_errors, ref.frame_errors) << "run " << w;
    EXPECT_EQ(got.channel_symbol_errors, ref.channel_symbol_errors) << "run " << w;
    EXPECT_EQ(got.corrected_symbols, ref.corrected_symbols) << "run " << w;
    EXPECT_EQ(got.frame_symbols, ref.frame_symbols) << "run " << w;
    EXPECT_EQ(got.channel_symbols, ref.channel_symbols) << "run " << w;
    EXPECT_EQ(got.steady_allocations, ref.steady_allocations) << "run " << w;
    EXPECT_EQ(got.dram_ran, ref.dram_ran) << "run " << w;
    // PR 5 streaming bound: the sliced path may hold its own hit
    // buffers, but never anything near the materialized triangle.
    EXPECT_GT(got.workspace_peak_bytes, 0u) << "run " << w;
    EXPECT_LT(got.workspace_peak_bytes, got.frame_symbols / 8) << "run " << w;
  }

  // Across worker counts the merged record is byte-identical including
  // the workspace peak — only wall time may differ.
  for (std::size_t w = 1; w < runs.size(); ++w) {
    const auto& a = runs[0].cells[0].result;
    const auto& b = runs[w].cells[0].result;
    EXPECT_EQ(a.word_errors, b.word_errors);
    EXPECT_EQ(a.frame_errors, b.frame_errors);
    EXPECT_EQ(a.channel_symbol_errors, b.channel_symbol_errors);
    EXPECT_EQ(a.corrected_symbols, b.corrected_symbols);
    EXPECT_EQ(a.workspace_peak_bytes, b.workspace_peak_bytes);
    EXPECT_EQ(a.steady_allocations, b.steady_allocations);
  }
}

}  // namespace
}  // namespace tbi::sim
