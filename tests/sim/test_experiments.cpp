#include "sim/experiments.hpp"

#include <gtest/gtest.h>

namespace tbi::sim {
namespace {

Table1Options quick_options() {
  Table1Options o;
  o.max_bursts_per_phase = 12000;  // keep the suite fast; full run in bench
  return o;
}

TEST(Table1, CoversAllTenConfigurations) {
  const auto rows = run_table1(quick_options());
  ASSERT_EQ(rows.size(), 10u);
  EXPECT_EQ(rows.front().config, "DDR3-800");
  EXPECT_EQ(rows.back().config, "LPDDR5-8533");
}

TEST(Table1, DeviceFilterWorks) {
  auto o = quick_options();
  o.devices = {"DDR4-3200", "LPDDR4-4266"};
  const auto rows = run_table1(o);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].config, "DDR4-3200");
  EXPECT_EQ(rows[1].config, "LPDDR4-4266");
}

TEST(Table1, PaperShapeHolds) {
  // The qualitative claims of the paper, asserted on truncated phases:
  //  * row-major write stays high on every configuration,
  //  * row-major read collapses on the fast grade of LPDDR4,
  //  * the optimized mapping clears both phases on every configuration,
  //  * the optimized minimum beats the row-major minimum where the paper
  //    reports a win.
  auto o = quick_options();
  const auto rows = run_table1(o);
  for (const auto& r : rows) {
    EXPECT_GT(r.row_major_write, 0.85) << r.config;
    EXPECT_GT(r.optimized_write, 0.85) << r.config;
    EXPECT_GT(r.optimized_read, 0.85) << r.config;
    const double rm_min = std::min(r.row_major_write, r.row_major_read);
    const double op_min = std::min(r.optimized_write, r.optimized_read);
    EXPECT_GE(op_min, rm_min - 0.06) << r.config;
  }
  const auto* lp4_fast = &rows[7];
  ASSERT_EQ(lp4_fast->config, "LPDDR4-4266");
  EXPECT_LT(lp4_fast->row_major_read, 0.55);
  const auto* ddr4_fast = &rows[3];
  ASSERT_EQ(ddr4_fast->config, "DDR4-3200");
  EXPECT_LT(ddr4_fast->row_major_read, 0.70);
}

TEST(Table1, RefreshDisabledLiftsOptimizedAbove97) {
  // Paper §III: with refresh disabled the optimized mapping exceeds 99 %
  // on every configuration (we assert a slightly relaxed bound on the
  // truncated phases used in unit tests; the bench runs the full claim).
  auto o = quick_options();
  o.refresh_disabled = true;
  const auto rows = run_table1(o);
  for (const auto& r : rows) {
    EXPECT_GT(std::min(r.optimized_write, r.optimized_read), 0.90) << r.config;
  }
}

TEST(Table1, FormatMatchesPaperLayout) {
  auto o = quick_options();
  o.devices = {"DDR3-800"};
  const auto table = format_table1(run_table1(o), "Table I");
  const std::string text = table.render();
  EXPECT_NE(text.find("DDR3-800"), std::string::npos);
  EXPECT_NE(text.find("%"), std::string::npos);
  EXPECT_EQ(table.row_count(), 1u);
}

TEST(Ablation, FullMappingWinsOnFastDevice) {
  const auto rows =
      run_ablation(*dram::find_config("LPDDR4-4266"), 2'000'000, 12000);
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_EQ(rows.front().variant, "optimized[-,-,-]");
  EXPECT_EQ(rows.back().variant, "optimized[diag,tile,offset]");
  // The full mapping must beat the no-optimization corner decisively.
  EXPECT_GT(rows.back().min(), rows.front().min() + 0.15);
  // And tiling alone must already help the read phase vs nothing.
  EXPECT_GT(rows[2].min(), rows.front().min() - 0.02);
}

TEST(DimensionSweep, UtilizationInsensitiveToSize) {
  // Paper §III: "Results for other interleaver dimensions ... differ only
  // slightly." Sweep three sizes around the paper's and require the
  // optimized minimum to stay within a narrow band.
  const auto rows = run_dimension_sweep(*dram::find_config("DDR4-3200"),
                                        {2'000'000, 6'000'000, 12'500'000});
  ASSERT_EQ(rows.size(), 3u);
  double lo = 1.0, hi = 0.0;
  for (const auto& r : rows) {
    EXPECT_GT(r.side_bursts, 0u);
    lo = std::min(lo, r.optimized_min);
    hi = std::max(hi, r.optimized_min);
  }
  EXPECT_LT(hi - lo, 0.06);
}

}  // namespace
}  // namespace tbi::sim
