#include "sim/sweep.hpp"

#include <gtest/gtest.h>

#include "sim/experiments.hpp"

#include <atomic>
#include <set>
#include <stdexcept>

namespace tbi::sim {
namespace {

TEST(JobSeed, DeterministicAndCollisionFree) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    const std::uint64_t s = job_seed(42, i);
    EXPECT_EQ(s, job_seed(42, i));
    EXPECT_TRUE(seen.insert(s).second) << "seed collision at index " << i;
  }
  EXPECT_NE(job_seed(1, 0), job_seed(2, 0));
}

TEST(ResolveThreads, ClampsNonsenseRequests) {
  EXPECT_GE(resolve_threads(0), 1u);           // "all cores" never yields zero
  EXPECT_EQ(resolve_threads(4), 4u);
  // A CLI "--threads -1" wraps to UINT_MAX through the unsigned cast; the
  // resolver must clamp instead of letting the pool abort in thread spawn.
  EXPECT_LE(resolve_threads(0xFFFFFFFFu), 256u);
}

TEST(ThreadPool, RunsAllJobs) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { ++count; });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIdleRethrowsJobException) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
}

TEST(ThreadPool, JobExceptionPropagatesExactlyOnceAndPoolStaysUsable) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The captured error must not resurface on the next drain...
  EXPECT_NO_THROW(pool.wait_idle());
  // ...and the workers must still run jobs after rethrowing.
  std::atomic<int> count{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&count] { ++count; });
  }
  EXPECT_NO_THROW(pool.wait_idle());
  EXPECT_EQ(count.load(), 50);
}

TEST(SweepMap, ThrowingJobPropagatesAndNextSweepWorks) {
  SweepOptions opt;
  opt.threads = 4;
  EXPECT_THROW(sweep_map(16, opt,
                         [](std::uint64_t i, std::uint64_t) -> int {
                           if (i == 7) throw std::runtime_error("cell failed");
                           return static_cast<int>(i);
                         }),
               std::runtime_error);
  const auto out = sweep_map(16, opt, [](std::uint64_t i, std::uint64_t) {
    return static_cast<int>(i) + 1;
  });
  ASSERT_EQ(out.size(), 16u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], i + 1);
}

TEST(ThreadPool, ReusableAfterWait) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.submit([&count] { ++count; });
  pool.wait_idle();
  pool.submit([&count] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 2);
}

TEST(SweepMap, ResultsAreIndexOrdered) {
  SweepOptions opt;
  opt.threads = 4;
  const auto out = sweep_map(64, opt, [](std::uint64_t i, std::uint64_t) {
    return i * i;
  });
  ASSERT_EQ(out.size(), 64u);
  for (std::uint64_t i = 0; i < 64; ++i) EXPECT_EQ(out[i], i * i);
}

TEST(SweepMap, SeedsMatchSchedule) {
  SweepOptions opt;
  opt.threads = 3;
  opt.base_seed = 17;
  const auto seeds = sweep_map(32, opt, [](std::uint64_t, std::uint64_t seed) {
    return seed;
  });
  for (std::uint64_t i = 0; i < 32; ++i) EXPECT_EQ(seeds[i], job_seed(17, i));
}

TEST(SweepMap, ProgressReachesTotal) {
  SweepOptions opt;
  opt.threads = 4;
  std::uint64_t last = 0;
  opt.progress = [&](const SweepProgress& p) {
    EXPECT_EQ(p.total, 20u);
    last = p.completed;
  };
  sweep_map(20, opt, [](std::uint64_t i, std::uint64_t) { return i; });
  EXPECT_EQ(last, 20u);
}

TEST(SweepGrid, ExpandIsRowMajorCartesian) {
  SweepGrid grid;
  grid.devices = {"A", "B"};
  grid.mapping_specs = {"row-major", "optimized"};
  grid.channels = {"none", "bsc"};
  EXPECT_EQ(grid.size(), 8u);
  const auto cells = grid.expand();
  ASSERT_EQ(cells.size(), 8u);
  EXPECT_EQ(cells[0].device, "A");
  EXPECT_EQ(cells[0].mapping_spec, "row-major");
  EXPECT_EQ(cells[0].channel, "none");
  EXPECT_EQ(cells[1].channel, "bsc");
  EXPECT_EQ(cells[2].mapping_spec, "optimized");
  EXPECT_EQ(cells[4].device, "B");
}

TEST(SweepGrid, PaperGridCoversTableI) {
  const auto grid = SweepGrid::paper_bandwidth_grid();
  EXPECT_EQ(grid.devices.size(), 10u);
  EXPECT_EQ(grid.mapping_specs.size(), 2u);
  EXPECT_EQ(grid.size(), 20u);
}

TEST(Scenario, LabelIsInjectiveOverTheFullGrid) {
  // Regression: the label used to elide the "triangular" interleaver and
  // the rs_k of channel-free cells, so e.g. RS(255,223) and RS(255,191)
  // cells with channel == "none" collided — summaries then reported the
  // wrong worst cell. Every axis value must produce a distinct label.
  SweepGrid grid;
  grid.devices = {"DDR4-3200", "LPDDR5-8533"};
  grid.mapping_specs = {"row-major", "optimized"};
  grid.interleavers = {"none", "block", "triangular", "two-stage"};
  grid.channels = {"none", "bsc", "gilbert-elliott", "leo"};
  grid.rs_ks = {239, 223, 191};
  grid.symbols_per_bursts = {0, 64, 170};
  const auto cells = grid.expand();
  ASSERT_EQ(cells.size(), grid.size());
  std::set<std::string> labels;
  for (const auto& cell : cells) {
    EXPECT_TRUE(labels.insert(cell.label()).second)
        << "duplicate label: " << cell.label();
  }
}

BandwidthSweepOptions quick_sweep(unsigned threads) {
  BandwidthSweepOptions o;
  o.sweep.threads = threads;
  o.max_bursts_per_phase = 8000;
  return o;
}

bool stats_equal(const dram::PhaseStats& a, const dram::PhaseStats& b) {
  return a.bursts == b.bursts && a.reads == b.reads && a.writes == b.writes &&
         a.activates == b.activates && a.precharges == b.precharges &&
         a.refreshes == b.refreshes && a.row_hits == b.row_hits &&
         a.row_misses == b.row_misses && a.row_conflicts == b.row_conflicts &&
         a.start == b.start && a.end == b.end && a.busy == b.busy;
}

TEST(BandwidthSweep, IdenticalRecordsForAnyThreadCount) {
  // The acceptance bar of this subsystem: a Table-I-shaped sweep must
  // produce byte-identical records on one worker and on many.
  SweepGrid grid = SweepGrid::paper_bandwidth_grid();
  const auto serial = run_bandwidth_sweep(grid, quick_sweep(1));
  const auto parallel4 = run_bandwidth_sweep(grid, quick_sweep(4));
  const auto parallel7 = run_bandwidth_sweep(grid, quick_sweep(7));
  ASSERT_EQ(serial.size(), 20u);
  ASSERT_EQ(parallel4.size(), serial.size());
  ASSERT_EQ(parallel7.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].scenario.device, parallel4[i].scenario.device);
    EXPECT_EQ(serial[i].scenario.mapping_spec, parallel4[i].scenario.mapping_spec);
    EXPECT_TRUE(stats_equal(serial[i].run.write.stats, parallel4[i].run.write.stats)) << i;
    EXPECT_TRUE(stats_equal(serial[i].run.read.stats, parallel4[i].run.read.stats)) << i;
    EXPECT_TRUE(stats_equal(serial[i].run.write.stats, parallel7[i].run.write.stats)) << i;
    EXPECT_TRUE(stats_equal(serial[i].run.read.stats, parallel7[i].run.read.stats)) << i;
    EXPECT_EQ(serial[i].run.write.energy.total_nj(), parallel4[i].run.write.energy.total_nj());
  }
}

TEST(BandwidthSweep, GoldenDdr4Counters) {
  // Golden regression on a small Table-1 configuration: the exact command
  // counts and bus occupancy of the optimized mapping on DDR4-3200 with
  // 12000-burst phases. Any controller/mapping change that alters these
  // numbers must be deliberate.
  SweepGrid grid;
  grid.devices = {"DDR4-3200"};
  grid.mapping_specs = {"optimized"};
  BandwidthSweepOptions o;
  o.max_bursts_per_phase = 12000;
  const auto records = run_bandwidth_sweep(grid, o);
  ASSERT_EQ(records.size(), 1u);
  const auto& w = records[0].run.write.stats;
  EXPECT_EQ(w.bursts, 12000u);
  EXPECT_EQ(w.activates, 3181u);
  EXPECT_EQ(w.row_hits, 8819u);
  EXPECT_EQ(w.row_misses, 64u);
  EXPECT_EQ(w.row_conflicts, 3117u);
  EXPECT_EQ(w.elapsed(), 30965000);
  EXPECT_EQ(w.busy, 30000000);
  const auto& r = records[0].run.read.stats;
  EXPECT_EQ(r.bursts, 12000u);
  EXPECT_EQ(r.activates, 6205u);
  EXPECT_EQ(r.elapsed(), 32493750);
  EXPECT_EQ(r.busy, 30000000);
}

TEST(BandwidthSweep, GoldenTable1Utilizations) {
  // Same pin at the Table-1 row level, both mappings, two devices.
  Table1Options o;
  o.devices = {"DDR4-3200", "LPDDR4-4266"};
  o.max_bursts_per_phase = 12000;
  o.threads = 2;
  const auto rows = run_table1(o);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_NEAR(rows[0].row_major_write, 0.9696969697, 1e-9);
  EXPECT_NEAR(rows[0].row_major_read, 0.6338809360, 1e-9);
  EXPECT_NEAR(rows[0].optimized_write, 0.9688357823, 1e-9);
  EXPECT_NEAR(rows[0].optimized_read, 0.9232544720, 1e-9);
  EXPECT_NEAR(rows[1].row_major_write, 1.0000000000, 1e-9);
  EXPECT_NEAR(rows[1].row_major_read, 0.4124392756, 1e-9);
  EXPECT_NEAR(rows[1].optimized_write, 0.9717095272, 1e-9);
  EXPECT_NEAR(rows[1].optimized_read, 0.9948938640, 1e-9);
}

TEST(BandwidthSweep, UnknownDeviceThrows) {
  SweepGrid grid;
  grid.devices = {"NO-SUCH-DEVICE"};
  EXPECT_THROW(run_bandwidth_sweep(grid, quick_sweep(2)), std::invalid_argument);
}

TEST(Summary, TracksBestAndWorst) {
  SweepGrid grid;
  grid.devices = {"DDR4-3200", "LPDDR4-4266"};
  grid.mapping_specs = {"row-major", "optimized"};
  const auto records = run_bandwidth_sweep(grid, quick_sweep(2));
  const auto summary = summarize(records);
  EXPECT_EQ(summary.records, 4u);
  EXPECT_GT(summary.min_utilization, 0.0);
  EXPECT_LE(summary.min_utilization, summary.mean_utilization);
  EXPECT_LE(summary.mean_utilization, summary.max_utilization);
  // Row-major read collapses on LPDDR4-4266 (paper Table I), so that cell
  // must be the worst of this grid.
  EXPECT_EQ(summary.worst_scenario,
            "LPDDR4-4266/row-major/triangular/none/RS(255,223)");
}

TEST(Summary, EmptyIsZero) {
  const auto summary = summarize({});
  EXPECT_EQ(summary.records, 0u);
  EXPECT_EQ(summary.mean_utilization, 0.0);
}

TEST(EffectiveThreads, ClampsToJobCountAndNeverZero) {
  EXPECT_EQ(effective_threads(8, 3), 3u);   // never spawn idle workers
  EXPECT_EQ(effective_threads(2, 100), 2u);
  EXPECT_EQ(effective_threads(1, 0), 1u);   // ThreadPool rejects 0 threads
  EXPECT_GE(effective_threads(0, 1000), 1u);
  EXPECT_LE(effective_threads(0, 2), 2u);
}

TEST(SweepMap, EmptyGridReturnsWithoutSpawningAPool) {
  SweepOptions options;
  options.threads = 8;
  bool ran = false;
  const auto results = sweep_map(0, options, [&](std::uint64_t, std::uint64_t) {
    ran = true;
    return 1;
  });
  EXPECT_TRUE(results.empty());
  EXPECT_FALSE(ran);
}

TEST(SweepMap, MoreThreadsThanJobsCompletesAndStaysOrdered) {
  SweepOptions options;
  options.threads = 64;  // far more than the 3 jobs
  const auto results = sweep_map(3, options, [](std::uint64_t i, std::uint64_t) {
    return static_cast<int>(i) + 1;
  });
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0], 1);
  EXPECT_EQ(results[1], 2);
  EXPECT_EQ(results[2], 3);
}

TEST(SweepGrid, CellMatchesExpandAtEveryIndex) {
  SweepGrid grid;
  grid.devices = {"DDR4-3200", "LPDDR4-4266"};
  grid.mapping_specs = {"row-major", "optimized"};
  grid.interleavers = {"none", "triangular", "two-stage"};
  grid.channels = {"bsc", "leo"};
  grid.rs_ks = {239, 223, 191};
  grid.symbols_per_bursts = {0, 64};

  const auto cells = grid.expand();
  ASSERT_EQ(cells.size(), grid.size());
  for (std::uint64_t i = 0; i < grid.size(); ++i) {
    const Scenario direct = grid.cell(i);
    EXPECT_EQ(direct.label(), cells[i].label()) << "index " << i;
    EXPECT_EQ(direct.symbols_per_burst, cells[i].symbols_per_burst);
  }
}

TEST(SweepGrid, LinksAxisIsInnermostAndLabeled) {
  SweepGrid grid;
  grid.devices = {"DDR4-3200"};
  grid.interleavers = {"none", "triangular"};
  grid.channels = {"gilbert-elliott"};
  grid.links = {0, 4};
  EXPECT_EQ(grid.size(), 4u);
  const auto cells = grid.expand();
  ASSERT_EQ(cells.size(), 4u);
  // links is the innermost axis: it cycles fastest, so extending a grid
  // with it preserves every existing cell's index (and thus its seed).
  EXPECT_EQ(cells[0].links, 0u);
  EXPECT_EQ(cells[1].links, 4u);
  EXPECT_EQ(cells[0].interleaver, cells[1].interleaver);
  EXPECT_EQ(cells[2].interleaver, "triangular");
  for (std::uint64_t i = 0; i < grid.size(); ++i) {
    EXPECT_EQ(grid.cell(i).label(), cells[i].label()) << i;
    EXPECT_EQ(grid.cell(i).links, cells[i].links) << i;
  }
  // links == 0 means "inherit the template" and stays out of the label,
  // so pre-links grids keep their exact labels; explicit links are named.
  EXPECT_EQ(cells[0].label().find("links"), std::string::npos);
  EXPECT_NE(cells[1].label().find("/links4"), std::string::npos);
  std::set<std::string> labels;
  for (const auto& cell : cells) {
    EXPECT_TRUE(labels.insert(cell.label()).second) << cell.label();
  }
}

TEST(SweepGrid, CellThrowsPastTheEnd) {
  SweepGrid grid;
  grid.devices = {"DDR4-3200"};
  EXPECT_THROW(grid.cell(grid.size()), std::out_of_range);
}

}  // namespace
}  // namespace tbi::sim
