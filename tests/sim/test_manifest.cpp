#include "sim/manifest.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "common/json.hpp"

namespace tbi::sim {
namespace {

class ManifestTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "manifest_test_" +
            std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".manifest";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
};

Json record(std::uint64_t i) {
  Json r;
  r["value"] = i * 10;
  return r;
}

TEST(SweepFingerprint, SensitiveToEveryInput) {
  Json job;
  job["frames"] = 40;
  const std::string base = sweep_fingerprint("fer", job, 36, 1);
  EXPECT_EQ(base.size(), 16u);
  EXPECT_EQ(base, sweep_fingerprint("fer", job, 36, 1));  // deterministic

  EXPECT_NE(base, sweep_fingerprint("bandwidth", job, 36, 1));
  EXPECT_NE(base, sweep_fingerprint("fer", job, 37, 1));
  EXPECT_NE(base, sweep_fingerprint("fer", job, 36, 2));
  Json other = job;
  other["frames"] = 41;
  EXPECT_NE(base, sweep_fingerprint("fer", other, 36, 1));
}

TEST_F(ManifestTest, RoundTripsEntries) {
  ManifestWriter w;
  ASSERT_TRUE(w.open(path_, "fp1", /*fresh=*/true));
  ASSERT_TRUE(w.append(3, record(3)));
  ASSERT_TRUE(w.append(0, record(0)));
  w.close();

  const auto load = load_manifest(path_, "fp1");
  ASSERT_TRUE(load.found);
  ASSERT_TRUE(load.fingerprint_ok);
  ASSERT_EQ(load.entries.size(), 2u);
  EXPECT_EQ(load.entries[0].cell, 3u);
  EXPECT_EQ(load.entries[0].record.at("value").as_double(), 30);
  EXPECT_EQ(load.entries[1].cell, 0u);
}

TEST_F(ManifestTest, MissingFileIsNotFound) {
  const auto load = load_manifest(path_, "fp1");
  EXPECT_FALSE(load.found);
  EXPECT_TRUE(load.entries.empty());
}

TEST_F(ManifestTest, FingerprintMismatchLoadsNothing) {
  ManifestWriter w;
  ASSERT_TRUE(w.open(path_, "fp1", /*fresh=*/true));
  ASSERT_TRUE(w.append(1, record(1)));
  w.close();

  const auto load = load_manifest(path_, "fp2");
  EXPECT_TRUE(load.found);
  EXPECT_FALSE(load.fingerprint_ok);
  EXPECT_TRUE(load.entries.empty());
}

TEST_F(ManifestTest, TornTailIsDroppedNotFatal) {
  ManifestWriter w;
  ASSERT_TRUE(w.open(path_, "fp1", /*fresh=*/true));
  ASSERT_TRUE(w.append(0, record(0)));
  ASSERT_TRUE(w.append(1, record(1)));
  w.close();
  // Simulate a crash mid-append: a half-written last line.
  {
    std::ofstream out(path_, std::ios::app);
    out << "{\"cell\":2,\"record\":{\"val";
  }

  const auto load = load_manifest(path_, "fp1");
  ASSERT_TRUE(load.found);
  ASSERT_TRUE(load.fingerprint_ok);
  ASSERT_EQ(load.entries.size(), 2u);  // the torn entry is recomputed, not trusted
  EXPECT_EQ(load.entries[1].cell, 1u);
}

TEST_F(ManifestTest, AppendModeKeepsExistingEntries) {
  {
    ManifestWriter w;
    ASSERT_TRUE(w.open(path_, "fp1", /*fresh=*/true));
    ASSERT_TRUE(w.append(0, record(0)));
    w.close();
  }
  {
    ManifestWriter w;
    ASSERT_TRUE(w.open(path_, "fp1", /*fresh=*/false));  // resume: append only
    ASSERT_TRUE(w.append(1, record(1)));
    w.close();
  }
  const auto load = load_manifest(path_, "fp1");
  ASSERT_EQ(load.entries.size(), 2u);
  EXPECT_EQ(load.entries[0].cell, 0u);
  EXPECT_EQ(load.entries[1].cell, 1u);
}

}  // namespace
}  // namespace tbi::sim
