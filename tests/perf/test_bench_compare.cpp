#include "perf/bench_compare.hpp"

#include <gtest/gtest.h>

namespace tbi::perf {
namespace {

/// A miniature bench document in the shape the six bench --json sinks
/// emit: config + wall time + a record array with mixed metric classes.
Json fixture_doc() {
  Json doc;
  doc["bench"] = "bench_fixture";
  Json config;
  config["device"] = "LPDDR5-8533";
  config["frames"] = 40;
  config["threads"] = 1;
  doc["config"] = config;
  doc["wall_seconds"] = 2.0;
  doc["scenarios_per_second"] = 18.0;
  Json::Array rows;
  for (int i = 0; i < 3; ++i) {
    Json row;
    row["interleaver"] = i == 0 ? "none" : (i == 1 ? "triangular" : "two-stage");
    row["channel"] = "leo";
    row["rs_k"] = 223;
    row["word_errors"] = 10 * i;
    row["fer"] = 0.25 * i;
    row["steady_allocations"] = 0;
    row["allocations_per_frame"] = 0.0;
    row["workspace_peak_bytes"] = 100000;
    row["host_ns"] = 5000000;
    row["channel_symbols_per_second"] = 1e8;
    rows.push_back(row);
  }
  doc["records"] = rows;
  Json perf;
  perf["process_allocations"] = 123456;
  doc["perf"] = perf;
  return doc;
}

TEST(ClassifyMetric, FollowsNamingConventions) {
  EXPECT_EQ(classify_metric("word_errors"), MetricKind::Exact);
  EXPECT_EQ(classify_metric("fer"), MetricKind::Exact);
  EXPECT_EQ(classify_metric("steady_allocations"), MetricKind::Exact);
  EXPECT_EQ(classify_metric("allocations_per_frame"), MetricKind::Exact);
  EXPECT_EQ(classify_metric("wall_seconds"), MetricKind::TimeUp);
  EXPECT_EQ(classify_metric("host_ns"), MetricKind::TimeUp);
  EXPECT_EQ(classify_metric("sched_ns_per_pick"), MetricKind::TimeUp);
  EXPECT_EQ(classify_metric("ns_per_pick"), MetricKind::TimeUp);
  EXPECT_EQ(classify_metric("bursts_per_second"), MetricKind::TimeDown);
  EXPECT_EQ(classify_metric("channel_symbols_per_second"), MetricKind::TimeDown);
  EXPECT_EQ(classify_metric("workspace_peak_bytes"), MetricKind::Size);
  EXPECT_EQ(classify_metric("threads"), MetricKind::Ignored);
  EXPECT_EQ(classify_metric("process_allocations"), MetricKind::Ignored);
  EXPECT_EQ(classify_metric("simd_backend"), MetricKind::Ignored);
}

TEST(CompareBench, IdenticalDocumentsPass) {
  const Json doc = fixture_doc();
  const auto report = compare_bench(doc, doc);
  EXPECT_TRUE(report.ok()) << report.render();
  EXPECT_GT(report.metrics_compared, 10u);
  EXPECT_GE(report.metrics_ignored, 2u);  // threads + process_allocations
}

TEST(CompareBench, PerturbedExactMetricFailsWithCellContext) {
  // The acceptance fixture: perturb one deterministic counter in one
  // record and the compare must go non-zero with a report naming the cell.
  const Json baseline = fixture_doc();
  Json candidate = fixture_doc();
  candidate["records"].as_array();  // type check
  Json::Array rows = baseline.at("records").as_array();
  rows[1]["word_errors"] = 11;  // was 10
  candidate["records"] = rows;

  const auto report = compare_bench(baseline, candidate);
  ASSERT_FALSE(report.ok());
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_NE(report.failures[0].path.find("records[1]"), std::string::npos);
  EXPECT_NE(report.failures[0].path.find("triangular"), std::string::npos)
      << "cell context label missing: " << report.failures[0].path;
  EXPECT_NE(report.failures[0].path.find("word_errors"), std::string::npos);
  EXPECT_NE(report.render().find("FAIL"), std::string::npos);
}

TEST(CompareBench, HotPathAllocationRegressionIsExact) {
  // allocations_per_frame going 0 -> anything is a hard failure — no
  // band applies to the zero-allocation invariant.
  const Json baseline = fixture_doc();
  Json candidate = fixture_doc();
  Json::Array rows = baseline.at("records").as_array();
  rows[2]["steady_allocations"] = 39;
  rows[2]["allocations_per_frame"] = 1.0;
  candidate["records"] = rows;
  const auto report = compare_bench(baseline, candidate);
  EXPECT_EQ(report.failures.size(), 2u) << report.render();
}

TEST(CompareBench, TimeBandIsLooseAndOneSided) {
  const Json baseline = fixture_doc();
  CompareOptions opt;
  opt.time_tol_pct = 50.0;

  Json faster = fixture_doc();
  faster["wall_seconds"] = 0.5;           // 4x faster: never a failure
  faster["scenarios_per_second"] = 72.0;  // rate up: never a failure
  EXPECT_TRUE(compare_bench(baseline, faster, opt).ok());

  Json slower = fixture_doc();
  slower["wall_seconds"] = 2.9;  // +45%: inside the 50% band
  EXPECT_TRUE(compare_bench(baseline, slower, opt).ok());
  slower["wall_seconds"] = 3.2;  // +60%: outside
  EXPECT_FALSE(compare_bench(baseline, slower, opt).ok());

  Json slow_rate = fixture_doc();
  slow_rate["scenarios_per_second"] = 10.0;  // -44%: inside
  EXPECT_TRUE(compare_bench(baseline, slow_rate, opt).ok());
  slow_rate["scenarios_per_second"] = 8.0;  // -56%: outside
  EXPECT_FALSE(compare_bench(baseline, slow_rate, opt).ok());
}

TEST(CompareBench, SizeBandIsOneSided) {
  const Json baseline = fixture_doc();
  CompareOptions opt;
  opt.size_tol_pct = 10.0;
  Json candidate = fixture_doc();
  Json::Array rows = baseline.at("records").as_array();
  rows[0]["workspace_peak_bytes"] = 50000;  // shrinking is fine
  rows[1]["workspace_peak_bytes"] = 105000;  // +5%: inside
  candidate["records"] = rows;
  EXPECT_TRUE(compare_bench(baseline, candidate, opt).ok());
  rows[2]["workspace_peak_bytes"] = 120000;  // +20%: outside
  candidate["records"] = rows;
  EXPECT_FALSE(compare_bench(baseline, candidate, opt).ok());
}

TEST(CompareBench, SchemaDriftIsStructural) {
  const Json baseline = fixture_doc();

  Json missing = fixture_doc();
  Json::Array rows = baseline.at("records").as_array();
  Json::Object row1 = rows[1].as_object();
  row1.erase("fer");
  rows[1] = Json(row1);
  missing["records"] = rows;
  auto report = compare_bench(baseline, missing);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.failures[0].structural);

  Json extra = fixture_doc();
  extra["new_metric"] = 1.0;
  report = compare_bench(baseline, extra);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.failures[0].structural);

  Json short_doc = fixture_doc();
  Json::Array two = baseline.at("records").as_array();
  two.pop_back();
  short_doc["records"] = two;
  report = compare_bench(baseline, short_doc);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.failures[0].structural);
  EXPECT_NE(report.failures[0].what.find("length"), std::string::npos);
}

TEST(CompareBench, IgnoredKeysNeverFail) {
  const Json baseline = fixture_doc();
  Json candidate = fixture_doc();
  candidate["config"]["threads"] = 16;        // harness knob
  candidate["perf"]["process_allocations"] = 1;  // run-dependent
  EXPECT_TRUE(compare_bench(baseline, candidate).ok());
  // Even missing entirely is fine for ignored keys.
  Json::Object cfg = baseline.at("config").as_object();
  cfg.erase("threads");
  candidate["config"] = Json(cfg);
  EXPECT_TRUE(compare_bench(baseline, candidate).ok());
}

TEST(CompareBench, SimdBackendKeyIsNeverStructuralDrift) {
  // bench_fer stamps config.simd_backend with whichever GF(2^8) kernel
  // dispatch picked. All backends are byte-identical, so a different
  // backend, a pre-SIMD baseline without the key, or a scalar-forced
  // candidate missing it must all compare clean.
  const Json baseline = fixture_doc();
  Json candidate = fixture_doc();
  candidate["config"]["simd_backend"] = "gfni";  // key only in candidate
  EXPECT_TRUE(compare_bench(baseline, candidate).ok());
  EXPECT_TRUE(compare_bench(candidate, baseline).ok());  // only in baseline

  Json other = fixture_doc();
  other["config"]["simd_backend"] = "scalar";  // differing values
  EXPECT_TRUE(compare_bench(candidate, other).ok());
}

TEST(CompareBench, StringAndBoolChangesFail) {
  const Json baseline = fixture_doc();
  Json candidate = fixture_doc();
  candidate["bench"] = "bench_other";
  const auto report = compare_bench(baseline, candidate);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.failures[0].what.find("bench_other"), std::string::npos);
}

}  // namespace
}  // namespace tbi::perf
