#include "perf/counters.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

namespace tbi::perf {
namespace {

TEST(NowNs, MonotonicAndAdvances) {
  const std::uint64_t a = now_ns();
  const std::uint64_t b = now_ns();
  EXPECT_GE(b, a);
}

TEST(AllocationScope, CountsOperatorNew) {
  AllocationScope scope;
  // Volatile-free but observable: make allocations the optimizer cannot
  // elide by keeping the pointers alive across the reads.
  std::vector<std::unique_ptr<int>> keep;
  for (int i = 0; i < 10; ++i) keep.push_back(std::make_unique<int>(i));
  EXPECT_GE(scope.allocations(), 10u);
  EXPECT_GE(scope.bytes(), 10u * sizeof(int));
}

TEST(AllocationScope, RestartMovesTheWindow) {
  AllocationScope scope;
  auto warmup = std::make_unique<int>(1);
  EXPECT_GE(scope.allocations(), 1u);
  scope.restart();
  EXPECT_EQ(scope.allocations(), 0u);
  EXPECT_EQ(scope.bytes(), 0u);
  auto counted = std::make_unique<int>(2);
  EXPECT_GE(scope.allocations(), 1u);
}

TEST(AllocationScope, ThreadLocalWindowIgnoresOtherThreads) {
  AllocationScope scope;
  scope.restart();
  const std::uint64_t before = scope.allocations();
  std::thread other([] {
    std::vector<std::unique_ptr<int>> keep;
    for (int i = 0; i < 1000; ++i) keep.push_back(std::make_unique<int>(i));
  });
  other.join();
  // The other thread's 1000 allocations must not appear in this thread's
  // window (thread startup may allocate on this thread via the runtime,
  // so allow a small slop, not 1000).
  EXPECT_LT(scope.allocations() - before, 100u);
}

TEST(ProcessAllocCount, SeesAllThreads) {
  const std::uint64_t before = process_alloc_count();
  std::thread other([] {
    std::vector<std::unique_ptr<int>> keep;
    for (int i = 0; i < 1000; ++i) keep.push_back(std::make_unique<int>(i));
  });
  other.join();
  EXPECT_GE(process_alloc_count() - before, 1000u);
}

TEST(AllocationHook, AlignedNewIsCountedAndUsable) {
  AllocationScope scope;
  scope.restart();
  struct alignas(64) Wide {
    double d[8];
  };
  auto p = std::make_unique<Wide>();
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p.get()) % 64, 0u);
  EXPECT_GE(scope.allocations(), 1u);
}

}  // namespace
}  // namespace tbi::perf
