/// \file main.cpp
/// Custom gtest entry point. The dsweep tests spawn worker processes by
/// re-invoking *this* binary with --worker-fd, so main() must dispatch to
/// the worker protocol loop before gtest parses argv — and the test
/// kernels must be registered before either path runs, because the
/// re-exec'd worker needs them too.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "sim/dsweep.hpp"

int main(int argc, char** argv) {
  // Cheap deterministic kernel for protocol/recovery tests: echoes the
  // cell index, its seed and a job tag without touching the simulator.
  // job["sleep_us"] stretches each cell so injected faults fire before a
  // fast sibling drains the grid.
  tbi::sim::dsweep_register_kernel(
      "test-echo",
      [](const tbi::Json& job, std::uint64_t index, std::uint64_t seed) {
        const auto sleep_us = static_cast<unsigned>(job.get_or("sleep_us", 0.0));
        if (sleep_us > 0) {
          std::this_thread::sleep_for(std::chrono::microseconds(sleep_us));
        }
        tbi::Json r;
        r["index"] = index;
        r["seed"] = std::to_string(seed);
        r["tag"] = job.get_or("tag", std::string(""));
        return r;
      });
  // Kernel that fails deterministically on one cell (no-retry path).
  tbi::sim::dsweep_register_kernel(
      "test-fail-at",
      [](const tbi::Json& job, std::uint64_t index, std::uint64_t) {
        if (index == static_cast<std::uint64_t>(job.at("fail_at").as_double())) {
          throw std::invalid_argument("test-fail-at: poison cell");
        }
        tbi::Json r;
        r["index"] = index;
        return r;
      });

  const int worker_fd = tbi::sim::dsweep_worker_fd(argc, argv);
  if (worker_fd >= 0) {
    return tbi::sim::dsweep_worker_main(worker_fd);
  }
  // Remote-worker re-invocation (TCP transport tests): dial the driver.
  const std::string connect_spec = tbi::sim::dsweep_worker_connect_arg(argc, argv);
  if (!connect_spec.empty()) {
    tbi::sim::WorkerConnectOptions wopt;
    wopt.backoff_base_ms = 10;  // keep kill/reconnect tests fast
    return tbi::sim::dsweep_worker_connect(connect_spec, wopt);
  }

  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
