#include "mapping/rowmajor.hpp"

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "common/mathutil.hpp"
#include "dram/standards.hpp"
#include "mapping/factory.hpp"

namespace tbi::mapping {
namespace {

using dram::find_config;

TEST(RowMajor, PackedLinearizationIsSequentialAcrossRows) {
  const auto& dev = *find_config("DDR4-3200");
  const std::uint64_t side = 100;
  const RowMajorMapping m(dev, side);
  std::uint64_t expected = 0;
  for (std::uint64_t i = 0; i < side; ++i) {
    for (std::uint64_t j = 0; j < tri_row_length(side, i); ++j) {
      EXPECT_EQ(m.linear_index(i, j), expected);
      ++expected;
    }
  }
  EXPECT_EQ(expected, triangular_number(side));
}

TEST(RowMajor, SquareModePadsRows) {
  const auto& dev = *find_config("DDR4-3200");
  const RowMajorMapping m(dev, 50, dram::AddressLayout::RoBaCoBg, false);
  EXPECT_EQ(m.linear_index(0, 49), 49u);
  EXPECT_EQ(m.linear_index(1, 0), 50u);
  EXPECT_EQ(m.linear_index(2, 5), 105u);
}

TEST(RowMajor, BijectiveOverTheTriangle) {
  const auto& dev = *find_config("LPDDR4-4266");
  const std::uint64_t side = 180;
  const RowMajorMapping m(dev, side);
  std::set<std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>> seen;
  for (std::uint64_t i = 0; i < side; ++i) {
    for (std::uint64_t j = 0; j < tri_row_length(side, i); ++j) {
      const auto a = m.map(i, j);
      ASSERT_LT(a.bank, dev.banks);
      ASSERT_LT(a.column, dev.columns_per_page);
      ASSERT_TRUE(seen.insert({a.bank, a.row, a.column}).second);
    }
  }
  EXPECT_EQ(seen.size(), triangular_number(side));
}

TEST(RowMajor, ReadDirectionStridesThroughPages) {
  // The defining pathology: walking a column visits a different DRAM page
  // (of some bank) nearly every access once the stride exceeds the page.
  const auto& dev = *find_config("DDR4-3200");
  const std::uint64_t side = 383;  // the paper's 12.5M-symbol geometry
  const RowMajorMapping m(dev, side);
  unsigned same_page = 0;
  const std::uint64_t j = 0;
  for (std::uint64_t i = 0; i + 1 < 200; ++i) {
    const auto a = m.map(i, j);
    const auto b = m.map(i + 1, j);
    same_page += (a.bank == b.bank && a.row == b.row);
  }
  // The ~383-burst stride occasionally stays inside one page window, but
  // the overwhelming majority of steps must change the page.
  EXPECT_LT(same_page, 60u);
}

TEST(RowMajor, WriteDirectionStaysSequential) {
  const auto& dev = *find_config("DDR4-3200");
  const RowMajorMapping m(dev, 383);
  // Consecutive row-wise positions map to consecutive linear indices,
  // which the RoBaCoBg layout turns into rotating bank groups.
  for (std::uint64_t j = 0; j + 1 < 100; ++j) {
    const auto a = m.map(0, j);
    const auto b = m.map(0, j + 1);
    EXPECT_NE(a.bank % dev.bank_groups, b.bank % dev.bank_groups);
  }
}

TEST(RowMajor, RejectsOversizedInterleaver) {
  dram::DeviceConfig small = *find_config("DDR3-800");
  small.rows_per_bank = 1;
  EXPECT_THROW(RowMajorMapping(small, 4000), std::invalid_argument);
}

TEST(RowMajor, RejectsZeroSide) {
  EXPECT_THROW(RowMajorMapping(*find_config("DDR3-800"), 0), std::invalid_argument);
}

TEST(Factory, KnownSpecs) {
  const auto& dev = *find_config("DDR4-3200");
  EXPECT_EQ(make_mapping("row-major", dev, 50)->name(),
            "row-major[Ro-Ba-CoH-Bg-CoL,packed]");
  EXPECT_EQ(make_mapping("row-major/robaco", dev, 50)->name(),
            "row-major[Ro-Ba-Co,packed]");
  EXPECT_EQ(make_mapping("row-major/rocoba", dev, 50)->name(),
            "row-major[Ro-Co-Ba,packed]");
  EXPECT_EQ(make_mapping("optimized", dev, 50)->name(),
            "optimized[diag,tile,offset]");
  EXPECT_EQ(make_mapping("optimized/diag+tile", dev, 50)->name(),
            "optimized[diag,tile,-]");
  EXPECT_EQ(make_mapping("optimized/none", dev, 50)->name(),
            "optimized[-,-,-]");
}

TEST(Factory, UnknownSpecThrows) {
  const auto& dev = *find_config("DDR4-3200");
  EXPECT_THROW(make_mapping("banana", dev, 50), std::invalid_argument);
}

}  // namespace
}  // namespace tbi::mapping
