#include "mapping/offset.hpp"

#include <gtest/gtest.h>

#include <set>

#include "dram/standards.hpp"
#include "mapping/factory.hpp"

namespace tbi::mapping {
namespace {

using dram::find_config;

TEST(RowOffset, ShiftsOnlyTheRow) {
  const auto& dev = *find_config("DDR4-3200");
  const auto base = make_mapping("optimized", dev, 64);
  RowOffsetMapping shifted(make_mapping("optimized", dev, 64), 100,
                           dev.rows_per_bank);
  for (std::uint64_t i = 0; i < 30; ++i) {
    for (std::uint64_t j = 0; j < 30; ++j) {
      const auto a = base->map(i, j);
      const auto b = shifted.map(i, j);
      EXPECT_EQ(b.bank, a.bank);
      EXPECT_EQ(b.column, a.column);
      EXPECT_EQ(b.row, a.row + 100);
    }
  }
}

TEST(RowOffset, DisjointFromUnshiftedRegion) {
  const auto& dev = *find_config("LPDDR4-4266");
  const std::uint64_t side = 64;
  const auto base = make_mapping("optimized", dev, side);
  // Probe the footprint, then shift by exactly that many rows.
  std::uint32_t rows = 0;
  for (std::uint64_t i = 0; i < side; ++i) {
    for (std::uint64_t j = 0; j < side - i; ++j) {
      rows = std::max(rows, base->map(i, j).row + 1);
    }
  }
  RowOffsetMapping shifted(make_mapping("optimized", dev, side), rows,
                           dev.rows_per_bank);
  std::set<std::pair<std::uint32_t, std::uint32_t>> region_a, region_b;
  for (std::uint64_t i = 0; i < side; ++i) {
    for (std::uint64_t j = 0; j < side - i; ++j) {
      const auto a = base->map(i, j);
      const auto b = shifted.map(i, j);
      region_a.insert({a.bank, a.row});
      region_b.insert({b.bank, b.row});
    }
  }
  for (const auto& page : region_b) {
    EXPECT_EQ(region_a.count(page), 0u) << "page overlap between buffers";
  }
}

TEST(RowOffset, ThrowsBeyondDevice) {
  const auto& dev = *find_config("DDR3-800");
  RowOffsetMapping shifted(make_mapping("row-major", dev, 64),
                           dev.rows_per_bank - 1, dev.rows_per_bank);
  EXPECT_THROW(shifted.map(63, 0), std::out_of_range);
}

TEST(RowOffset, NullInnerRejected) {
  EXPECT_THROW(RowOffsetMapping(nullptr, 0, 100), std::invalid_argument);
}

TEST(RowOffset, NameDocumentsTheShift) {
  const auto& dev = *find_config("DDR3-800");
  RowOffsetMapping shifted(make_mapping("optimized", dev, 16), 42,
                           dev.rows_per_bank);
  EXPECT_NE(shifted.name().find("+rows:42"), std::string::npos);
  EXPECT_EQ(shifted.row_offset(), 42u);
  EXPECT_EQ(shifted.space().side, 16u);
}

}  // namespace
}  // namespace tbi::mapping
