#include "mapping/optimized.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <tuple>

#include "dram/standards.hpp"

namespace tbi::mapping {
namespace {

using dram::DeviceConfig;
using dram::find_config;

class OptimizedOnDevice : public ::testing::TestWithParam<std::string> {
 protected:
  const DeviceConfig& dev() const { return *find_config(GetParam()); }
};

TEST_P(OptimizedOnDevice, TileGeometryInvariants) {
  const OptimizedMapping m(dev(), 200);
  // One full DRAM page per bank per tile (optimization 2).
  EXPECT_EQ(m.tile_width() * m.tile_height(),
            std::uint64_t{dev().banks} * dev().columns_per_page);
  // Both tile dimensions divisible by the bank count (needed for the
  // per-bank column bijection).
  EXPECT_EQ(m.tile_width() % dev().banks, 0u);
  EXPECT_EQ(m.tile_height() % dev().banks, 0u);
  // Offsets stagger one bank per Tw/NB columns (optimization 3).
  EXPECT_EQ(m.offset_dx(), m.tile_width() / dev().banks);
  EXPECT_EQ(m.offset_dy(), m.tile_height() / dev().banks);
}

TEST_P(OptimizedOnDevice, BijectiveOverTheFullRectangle) {
  const std::uint64_t side = 150;
  const OptimizedMapping m(dev(), side);
  std::set<std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>> seen;
  for (std::uint64_t i = 0; i < side; ++i) {
    for (std::uint64_t j = 0; j < side; ++j) {
      const dram::Address a = m.map(i, j);
      ASSERT_LT(a.bank, dev().banks);
      ASSERT_LT(a.row, dev().rows_per_bank);
      ASSERT_LT(a.column, dev().columns_per_page);
      ASSERT_TRUE(seen.insert({a.bank, a.row, a.column}).second)
          << "duplicate DRAM address at (" << i << "," << j << ")";
    }
  }
}

TEST_P(OptimizedOnDevice, DiagonalBankRoundRobinBothDirections) {
  // Optimization 1 / Fig. 1a: the bank index increments by one with every
  // access in both the row-wise and the column-wise direction.
  const OptimizedMapping m(dev(), 100);
  const std::uint32_t nb = dev().banks;
  for (std::uint64_t i = 0; i < 40; ++i) {
    for (std::uint64_t j = 0; j < 40; ++j) {
      const auto here = m.map(i, j).bank;
      EXPECT_EQ(m.map(i, j + 1).bank, (here + 1) % nb);
      EXPECT_EQ(m.map(i + 1, j).bank, (here + 1) % nb);
    }
  }
}

TEST_P(OptimizedOnDevice, BankGroupSwitchesEveryAccess) {
  // Group-major flat ids: consecutive accesses must change the bank group
  // (this is what makes tCCD_S apply instead of tCCD_L).
  if (dev().bank_groups == 1) GTEST_SKIP() << "standard without bank groups";
  const OptimizedMapping m(dev(), 100);
  for (std::uint64_t i = 0; i < 30; ++i) {
    for (std::uint64_t j = 0; j < 30; ++j) {
      const auto g0 = m.map(i, j).bank % dev().bank_groups;
      const auto g1 = m.map(i, j + 1).bank % dev().bank_groups;
      EXPECT_NE(g0, g1);
    }
  }
}

TEST_P(OptimizedOnDevice, OnePageChangePerBankPerTileCrossingRowWise) {
  // Optimization 2: walking one index row, each bank switches its DRAM row
  // exactly once per tile crossed (instead of on nearly every access as in
  // the row-major read direction).
  const std::uint64_t side = 200;
  const OptimizedMapping m(dev(), side);
  const std::uint64_t i = 7;  // arbitrary row
  std::map<std::uint32_t, std::uint32_t> last_row;
  std::map<std::uint32_t, unsigned> changes;
  for (std::uint64_t j = 0; j < side; ++j) {
    const auto a = m.map(i, j);
    auto it = last_row.find(a.bank);
    if (it != last_row.end() && it->second != a.row) ++changes[a.bank];
    last_row[a.bank] = a.row;
  }
  // The circular shift can add one extra wrap at the padded border.
  const std::uint64_t crossings = (side + m.tile_width() - 1) / m.tile_width() + 1;
  for (const auto& [bank, n] : changes) {
    EXPECT_LE(n, crossings) << "bank " << bank;
  }
}

TEST_P(OptimizedOnDevice, ColumnOffsetStaggersPageMisses) {
  // Optimization 3 / Fig. 1d: different banks must cross tile boundaries
  // at different positions along a row, so their page misses interleave.
  const std::uint64_t side = 200;
  const OptimizedMapping m(dev(), side);
  const std::uint64_t i = 3;
  std::map<std::uint32_t, std::uint64_t> first_change;
  std::map<std::uint32_t, std::uint32_t> last_row;
  for (std::uint64_t j = 0; j < side; ++j) {
    const auto a = m.map(i, j);
    auto it = last_row.find(a.bank);
    if (it != last_row.end() && it->second != a.row &&
        first_change.find(a.bank) == first_change.end()) {
      first_change[a.bank] = j;
    }
    last_row[a.bank] = a.row;
  }
  // With the offset the first misses of distinct banks happen at distinct
  // positions; without it they would bunch at the same tile boundary.
  std::set<std::uint64_t> positions;
  for (const auto& [bank, j] : first_change) positions.insert(j);
  EXPECT_GE(positions.size(), first_change.size() / 2)
      << "page misses are not staggered";
}

TEST_P(OptimizedOnDevice, WithoutOffsetMissesBunchAtTileBoundaries) {
  const std::uint64_t side = 200;
  const OptimizedMapping m(dev(), side, OptimizedOptions{true, true, false});
  const std::uint64_t i = 3;
  std::map<std::uint32_t, std::uint32_t> last_row;
  std::set<std::uint64_t> change_positions;
  for (std::uint64_t j = 0; j < side; ++j) {
    const auto a = m.map(i, j);
    auto it = last_row.find(a.bank);
    if (it != last_row.end() && it->second != a.row) {
      // Without the offset every change must happen right after a tile
      // boundary, i.e. within one bank rotation of it.
      EXPECT_LT(j % m.tile_width(), dev().banks)
          << "unstaggered miss not at tile boundary, j=" << j;
      change_positions.insert(j);
    }
    last_row[a.bank] = a.row;
  }
  EXPECT_FALSE(change_positions.empty());
}

TEST_P(OptimizedOnDevice, AblationVariantsAreBijectiveToo) {
  const std::uint64_t side = 100;
  for (const OptimizedOptions opt :
       {OptimizedOptions{true, false, false}, OptimizedOptions{false, true, false},
        OptimizedOptions{true, true, false}, OptimizedOptions{false, false, false}}) {
    const OptimizedMapping m(dev(), side, opt);
    std::set<std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>> seen;
    for (std::uint64_t i = 0; i < side; ++i) {
      for (std::uint64_t j = 0; j < side; ++j) {
        const dram::Address a = m.map(i, j);
        ASSERT_LT(a.bank, dev().banks);
        ASSERT_LT(a.row, dev().rows_per_bank);
        ASSERT_LT(a.column, dev().columns_per_page);
        ASSERT_TRUE(seen.insert({a.bank, a.row, a.column}).second)
            << m.name() << " duplicate at (" << i << "," << j << ")";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllStandards, OptimizedOnDevice,
                         ::testing::Values("DDR3-800", "DDR3-1600", "DDR4-1600",
                                           "DDR4-3200", "DDR5-3200", "DDR5-6400",
                                           "LPDDR4-2133", "LPDDR4-4266",
                                           "LPDDR5-4267", "LPDDR5-8533"),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (auto& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

TEST(Optimized, OffsetRequiresDiagonalAndTiling) {
  const auto& dev = *find_config("DDR4-3200");
  EXPECT_THROW(OptimizedMapping(dev, 100, OptimizedOptions{false, true, true}),
               std::invalid_argument);
  EXPECT_THROW(OptimizedMapping(dev, 100, OptimizedOptions{true, false, true}),
               std::invalid_argument);
}

TEST(Optimized, RejectsZeroSide) {
  EXPECT_THROW(OptimizedMapping(*find_config("DDR4-3200"), 0),
               std::invalid_argument);
}

TEST(Optimized, RejectsOversizedInterleaver) {
  dram::DeviceConfig small = *find_config("DDR4-3200");
  small.rows_per_bank = 4;
  EXPECT_THROW(OptimizedMapping(small, 5000), std::invalid_argument);
}

TEST(Optimized, NameReflectsOptions) {
  const auto& dev = *find_config("DDR3-800");
  EXPECT_EQ(OptimizedMapping(dev, 10).name(), "optimized[diag,tile,offset]");
  EXPECT_EQ(OptimizedMapping(dev, 10, OptimizedOptions{true, false, false}).name(),
            "optimized[diag,-,-]");
  EXPECT_EQ(OptimizedMapping(dev, 10, OptimizedOptions{false, true, false}).name(),
            "optimized[-,tile,-]");
}

TEST(Optimized, PaddedSpaceCoversTriangleSide) {
  const auto& dev = *find_config("DDR4-3200");
  const OptimizedMapping m(dev, 383);
  EXPECT_GE(m.space().width, 383u);
  EXPECT_GE(m.space().height, 383u);
  EXPECT_EQ(m.space().width % m.tile_width(), 0u);
  EXPECT_EQ(m.space().height % m.tile_height(), 0u);
}

}  // namespace
}  // namespace tbi::mapping
