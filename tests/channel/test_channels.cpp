#include <gtest/gtest.h>

#include <cmath>

#include "channel/bsc.hpp"
#include "channel/gilbert_elliott.hpp"
#include "channel/leo.hpp"

namespace tbi::channel {
namespace {

TEST(CorruptSymbol, AlwaysChangesValueWithinMask) {
  Rng rng(1);
  for (unsigned bits : {1u, 3u, 8u}) {
    for (int i = 0; i < 200; ++i) {
      std::uint8_t s = static_cast<std::uint8_t>(rng.next_u64());
      const std::uint8_t before = s;
      corrupt_symbol(s, bits, rng);
      EXPECT_NE(s, before);
      if (bits < 8) {
        EXPECT_EQ(s >> bits, before >> bits) << "high bits must not change";
      }
    }
  }
}

TEST(Symmetric, ErrorRateMatches) {
  SymmetricChannel ch(0.1, 3);
  Rng rng(7);
  std::vector<std::uint8_t> data(100000, 0);
  const auto errors = ch.apply(data, rng);
  EXPECT_NEAR(static_cast<double>(errors) / data.size(), 0.1, 0.01);
  std::uint64_t nonzero = 0;
  for (auto s : data) nonzero += s != 0;
  EXPECT_EQ(nonzero, errors);
}

TEST(Symmetric, ZeroAndOneProbabilities) {
  Rng rng(2);
  std::vector<std::uint8_t> data(1000, 0);
  SymmetricChannel none(0.0, 3);
  EXPECT_EQ(none.apply(data, rng), 0u);
  SymmetricChannel all(1.0, 3);
  EXPECT_EQ(all.apply(data, rng), data.size());
}

TEST(Symmetric, RejectsBadParams) {
  EXPECT_THROW(SymmetricChannel(-0.1, 3), std::invalid_argument);
  EXPECT_THROW(SymmetricChannel(1.1, 3), std::invalid_argument);
  EXPECT_THROW(SymmetricChannel(0.5, 0), std::invalid_argument);
}

TEST(GilbertElliott, StationaryBadFraction) {
  const auto p = GilbertElliottParams::from_burst_profile(1000, 0.2, 0.5, 3);
  GilbertElliottChannel ch(p);
  EXPECT_NEAR(ch.stationary_bad(), 0.2, 1e-9);
}

TEST(GilbertElliott, ProducesBurstsNotUniformErrors) {
  // Same average error rate as a BSC, but errors must cluster: compare the
  // number of error-run boundaries; bursty channels have far fewer.
  const double mean_burst = 500;
  const auto p = GilbertElliottParams::from_burst_profile(mean_burst, 0.1, 1.0, 3);
  GilbertElliottChannel ge(p);
  Rng rng(11);
  std::vector<std::uint8_t> data(200000, 0);
  const auto ge_errors = ge.apply(data, rng);
  ASSERT_GT(ge_errors, 1000u);

  std::uint64_t transitions = 0;
  for (std::size_t i = 1; i < data.size(); ++i) {
    transitions += (data[i] != 0) != (data[i - 1] != 0);
  }
  // A memoryless channel at the same rate would have ~2*rate*(1-rate)*N
  // transitions; the burst channel has ~2*N/(mean_burst+mean_gap).
  const double rate = static_cast<double>(ge_errors) / data.size();
  const double memoryless = 2 * rate * (1 - rate) * data.size();
  EXPECT_LT(static_cast<double>(transitions), memoryless / 10);
}

TEST(GilbertElliott, MeanBurstLengthRoughlyMatches) {
  const double mean_burst = 200;
  const auto p = GilbertElliottParams::from_burst_profile(mean_burst, 0.1, 1.0, 3);
  GilbertElliottChannel ge(p);
  Rng rng(23);
  std::vector<std::uint8_t> data(500000, 0);
  ge.apply(data, rng);
  // Measure mean run length of corrupted symbols.
  std::uint64_t runs = 0, in_run = 0, total = 0;
  for (auto s : data) {
    if (s != 0) {
      ++total;
      if (!in_run) ++runs, in_run = 1;
    } else {
      in_run = 0;
    }
  }
  ASSERT_GT(runs, 50u);
  const double measured = static_cast<double>(total) / static_cast<double>(runs);
  EXPECT_NEAR(measured, mean_burst, mean_burst * 0.35);
}

TEST(GilbertElliott, RejectsBadProfiles) {
  EXPECT_THROW(GilbertElliottParams::from_burst_profile(0.5, 0.1, 0.5, 3),
               std::invalid_argument);
  EXPECT_THROW(GilbertElliottParams::from_burst_profile(100, 0.0, 0.5, 3),
               std::invalid_argument);
  GilbertElliottParams p;
  p.p_gb = 1.5;
  EXPECT_THROW(GilbertElliottChannel{p}, std::invalid_argument);
}

TEST(Leo, FadeDutyCycleMatchesTarget) {
  LeoChannelParams p;
  p.fade_probability = 0.1;
  p.fade_depth_error_rate = 1.0;
  p.symbols_per_sample = 256;
  // Very short coherence so the 4M-symbol window spans hundreds of
  // independent fade intervals and the duty cycle concentrates.
  p.coherence_time_s = 2e-7;
  LeoFadingChannel ch(p);
  Rng rng(5);
  std::vector<std::uint8_t> data(4'000'000, 0);
  const auto errors = ch.apply(data, rng);
  EXPECT_NEAR(static_cast<double>(errors) / data.size(), 0.1, 0.05);
}

TEST(Leo, ShortStreamsStartFromStationaryState) {
  // Regression: the AR(1) power process used to start at state = 0 (the
  // median, with zero variance), so every fresh channel was guaranteed
  // fade-free until the state random-walked down — strongly correlated
  // processes (rho ~ 0.99) under-faded short streams by an order of
  // magnitude. The first sample must be drawn from the stationary N(0,1),
  // which makes the fade duty cycle of many independent short streams
  // match the configured probability.
  LeoChannelParams p;
  p.symbol_rate_hz = 1.0;
  p.coherence_time_s = 6400.0;  // 100 samples per coherence -> rho ~ 0.99
  p.symbols_per_sample = 64;
  p.fade_probability = 0.3;
  p.fade_depth_error_rate = 1.0;  // faded <=> corrupted, so errors == duty

  std::uint64_t errors = 0;
  std::uint64_t total = 0;
  for (std::uint64_t s = 0; s < 500; ++s) {
    LeoFadingChannel ch(p);  // fresh channel: each stream is a cold start
    Rng rng(1000 + s);
    std::vector<std::uint8_t> data(2048, 0);  // 32 samples << coherence
    errors += ch.apply(data, rng);
    total += data.size();
  }
  const double duty = static_cast<double>(errors) / static_cast<double>(total);
  // The broken cold start measured ~0.01-0.03 here; the stationary start
  // concentrates near the configured 0.3.
  EXPECT_NEAR(duty, 0.3, 0.06);
}

TEST(Leo, CoherenceProducesLongFades) {
  // With a 2 ms coherence time at 50 Gsym/s, fades span millions of
  // symbols — the paper's motivation for huge interleavers.
  LeoChannelParams p;  // defaults: 2 ms, 50 Gsym/s
  LeoFadingChannel ch(p);
  EXPECT_GT(ch.rho(), 0.99) << "power process must be strongly correlated";
  Rng rng(17);
  std::vector<std::uint8_t> data(4'000'000, 0);
  ch.apply(data, rng);
  // Longest error run should be large when any fade occurs.
  std::uint64_t longest = 0, cur = 0;
  for (auto s : data) {
    cur = s != 0 ? cur + 1 : 0;
    longest = std::max(longest, cur);
  }
  if (longest > 0) {
    EXPECT_GT(longest, 10000u);
  }
}

TEST(Leo, SplitApplyMatchesWholeStream) {
  // The power process is continuous in symbol time: applying the channel
  // to a stream in arbitrary pieces must yield the identical corruption
  // pattern as one call (the streaming pipeline chunks the wire order
  // and relies on this).
  LeoChannelParams p;
  p.fade_probability = 0.1;
  p.fade_depth_error_rate = 0.8;
  p.symbols_per_sample = 300;  // deliberately no divisor relationship
  p.coherence_time_s = 2e-7;
  constexpr std::size_t kTotal = 200'000;

  LeoFadingChannel whole(p);
  Rng rng_whole(9);
  std::vector<std::uint8_t> data_whole(kTotal, 0);
  const auto errors_whole = whole.apply(data_whole, rng_whole);

  LeoFadingChannel split(p);
  Rng rng_split(9);
  std::vector<std::uint8_t> data_split;
  std::uint64_t errors_split = 0;
  Rng chunk_rng(3);
  for (std::size_t pos = 0; pos < kTotal;) {
    const std::size_t len =
        std::min(kTotal - pos, static_cast<std::size_t>(1 + chunk_rng.uniform(7777)));
    std::vector<std::uint8_t> chunk(len, 0);
    errors_split += split.apply(chunk, rng_split);
    data_split.insert(data_split.end(), chunk.begin(), chunk.end());
    pos += len;
  }

  EXPECT_GT(errors_whole, 0u);
  EXPECT_EQ(errors_whole, errors_split);
  EXPECT_EQ(data_whole, data_split);
}

TEST(Leo, RejectsBadParams) {
  LeoChannelParams p;
  p.fade_probability = 0.0;
  EXPECT_THROW(LeoFadingChannel{p}, std::invalid_argument);
  p = LeoChannelParams{};
  p.symbols_per_sample = 0;
  EXPECT_THROW(LeoFadingChannel{p}, std::invalid_argument);
  p = LeoChannelParams{};
  p.coherence_time_s = 0;
  EXPECT_THROW(LeoFadingChannel{p}, std::invalid_argument);
}

}  // namespace
}  // namespace tbi::channel
