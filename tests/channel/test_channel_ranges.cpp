/// Counter-based random access (Channel::apply_range / skip): chunking a
/// stream through apply_range at arbitrary boundaries — including one
/// symbol at a time — must be byte-identical to a single sequential
/// apply() over the whole stream, for every channel model. This is the
/// contract the source layer (src/source/) builds on.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "channel/bsc.hpp"
#include "channel/gilbert_elliott.hpp"
#include "channel/leo.hpp"

namespace tbi::channel {
namespace {

std::unique_ptr<Channel> make_named(const std::string& which) {
  if (which == "bsc") return std::make_unique<SymmetricChannel>(0.01, 8);
  if (which == "ge") {
    const auto p = GilbertElliottParams::from_burst_profile(300, 0.05, 0.95, 8);
    return std::make_unique<GilbertElliottChannel>(p);
  }
  LeoChannelParams p;
  // Aggressive fading so even the 4k-symbol single-step test crosses
  // fades: short coherence decorrelates the power samples quickly.
  p.fade_probability = 0.2;
  p.fade_depth_error_rate = 0.9;
  p.symbols_per_sample = 300;
  p.coherence_time_s = 2e-8;
  return std::make_unique<LeoFadingChannel>(p);
}

class ChannelRanges : public ::testing::TestWithParam<std::string> {};

TEST_P(ChannelRanges, ChunkedApplyRangeMatchesSequentialApply) {
  constexpr std::size_t kTotal = 50'000;

  auto whole = make_named(GetParam());
  Rng rng_whole(42);
  std::vector<std::uint8_t> data_whole(kTotal, 0);
  const auto errors_whole = whole->apply(data_whole, rng_whole);
  ASSERT_GT(errors_whole, 0u);

  // Random chunk boundaries, no divisor relationship with any internal
  // period (GE burst length, LEO sample window).
  auto chunked = make_named(GetParam());
  Rng rng_chunked(42);
  std::vector<std::uint8_t> data_chunked(kTotal, 0);
  std::uint64_t errors_chunked = 0;
  Rng len_rng(7);
  for (std::size_t pos = 0; pos < kTotal;) {
    const std::size_t len = std::min(
        kTotal - pos, static_cast<std::size_t>(1 + len_rng.uniform(997)));
    errors_chunked += chunked->apply_range(
        pos, std::span<std::uint8_t>(data_chunked.data() + pos, len),
        rng_chunked);
    pos += len;
  }
  EXPECT_EQ(errors_chunked, errors_whole);
  EXPECT_EQ(data_chunked, data_whole);
}

TEST_P(ChannelRanges, SingleSymbolChunksMatchSequentialApply) {
  // The degenerate chunk size: one apply_range call per symbol.
  constexpr std::size_t kTotal = 4'000;

  auto whole = make_named(GetParam());
  Rng rng_whole(9);
  std::vector<std::uint8_t> data_whole(kTotal, 0);
  const auto errors_whole = whole->apply(data_whole, rng_whole);

  auto stepped = make_named(GetParam());
  Rng rng_stepped(9);
  std::vector<std::uint8_t> data_stepped(kTotal, 0);
  std::uint64_t errors_stepped = 0;
  for (std::size_t pos = 0; pos < kTotal; ++pos) {
    errors_stepped += stepped->apply_range(
        pos, std::span<std::uint8_t>(data_stepped.data() + pos, 1), rng_stepped);
  }
  EXPECT_EQ(errors_stepped, errors_whole);
  EXPECT_EQ(data_stepped, data_whole);
}

TEST_P(ChannelRanges, SparseRangesMatchSequentialPattern) {
  // Reading disjoint windows with gaps: the skipped spans must consume
  // exactly the draws a full walk would, so the windows land on the same
  // corruption pattern a sequential apply produces.
  constexpr std::size_t kTotal = 60'000;

  auto whole = make_named(GetParam());
  Rng rng_whole(31);
  std::vector<std::uint8_t> reference(kTotal, 0);
  whole->apply(reference, rng_whole);

  auto sparse = make_named(GetParam());
  Rng rng_sparse(31);
  Rng len_rng(13);
  std::size_t pos = 0;
  bool compared_nonzero = false;
  while (pos < kTotal) {
    pos += len_rng.uniform(3000);  // gap, never materialized
    if (pos >= kTotal) break;
    const std::size_t len = std::min(
        kTotal - pos, static_cast<std::size_t>(1 + len_rng.uniform(2000)));
    std::vector<std::uint8_t> window(len, 0);
    sparse->apply_range(pos, window, rng_sparse);
    for (std::size_t i = 0; i < len; ++i) {
      EXPECT_EQ(window[i], reference[pos + i]) << "wire position " << pos + i;
      compared_nonzero |= reference[pos + i] != 0;
    }
    pos += len;
  }
  EXPECT_TRUE(compared_nonzero) << "test never crossed a corrupted symbol";
}

TEST_P(ChannelRanges, BackwardStartThrows) {
  auto ch = make_named(GetParam());
  Rng rng(1);
  std::vector<std::uint8_t> data(100, 0);
  ch->apply_range(500, data, rng);
  EXPECT_EQ(ch->position(), 600u);
  EXPECT_THROW(ch->apply_range(599, data, rng), std::logic_error);
}

INSTANTIATE_TEST_SUITE_P(AllModels, ChannelRanges,
                         ::testing::Values("bsc", "ge", "leo"));

TEST(ChannelSkipAhead, LeoFixedSeedGolden) {
  // Deterministic regression pin: skipping 1M symbols into a fixed-seed
  // LEO channel and corrupting the next window must reproduce the pattern
  // of a sequential walk over the same prefix. Guards the O(1)
  // un-faded-sample fast path in LeoFadingChannel against draw-order
  // drift. Fades are seed luck (the AR(1) samples are correlated), so
  // scan a fixed seed range for the first one whose window actually fades
  // — the scan itself is deterministic.
  LeoChannelParams p;
  p.fade_probability = 0.1;
  p.fade_depth_error_rate = 0.9;
  p.symbols_per_sample = 300;
  p.coherence_time_s = 2e-7;
  constexpr std::uint64_t kSkip = 1'000'000;
  constexpr std::size_t kWindow = 16'384;

  bool faded_window_found = false;
  for (std::uint64_t seed = 1; seed <= 32; ++seed) {
    // Reference from a sequential walk over the same wire prefix.
    LeoFadingChannel seq(p);
    Rng rng_seq(seed);
    std::vector<std::uint8_t> prefix(kSkip, 0);
    seq.apply(prefix, rng_seq);
    std::vector<std::uint8_t> expected(kWindow, 0);
    const auto expected_errors = seq.apply(expected, rng_seq);

    LeoFadingChannel skip(p);
    Rng rng_skip(seed);
    std::vector<std::uint8_t> window(kWindow, 0);
    const auto errors = skip.apply_range(kSkip, window, rng_skip);

    ASSERT_EQ(errors, expected_errors) << "seed " << seed;
    ASSERT_EQ(window, expected) << "seed " << seed;
    if (errors > 0) {
      faded_window_found = true;
      break;
    }
  }
  EXPECT_TRUE(faded_window_found)
      << "no seed in range fades the window — weaken the fade params";
}

}  // namespace
}  // namespace tbi::channel
