/// \file bench_table1.cpp
/// E1 — reproduces the paper's Table I: DRAM bandwidth utilization of the
/// 12.5 M-element triangular block interleaver, row-major vs optimized
/// mapping, write and read phase, on all ten device configurations.
///
/// The minimum of write/read per mapping (printed in the Min columns)
/// bounds the interleaver throughput (paper §I). Expected shape: row-major
/// write stays high, row-major read collapses on fast speed grades, the
/// optimized mapping stays >90 % everywhere.
///
/// The full grid (ten devices x two mappings) runs on the parallel sweep
/// engine; --threads shards it over the machine.
///
/// Usage: bench_table1 [--symbols N] [--max-bursts M] [--csv FILE]
///                     [--json FILE] [--markdown] [--check] [--threads T]
#include <chrono>
#include <cstdio>
#include <string>

#include "common/cli.hpp"
#include "common/csv.hpp"
#include "common/json.hpp"
#include "common/table.hpp"
#include "perf/counters.hpp"
#include "sim/experiments.hpp"

int main(int argc, char** argv) {
  tbi::CliParser cli("bench_table1", "reproduce Table I (bandwidth utilizations)");
  cli.add_option("symbols", "count", "interleaver symbols (default 12.5M)");
  cli.add_option("max-bursts", "count", "truncate phases for quick runs");
  cli.add_option("csv", "file", "also write results as CSV");
  cli.add_option("json", "file", "write config + wall time + rows as JSON");
  cli.add_option("markdown", "", "print GitHub markdown instead of ASCII");
  cli.add_option("check", "", "validate all command streams with the JEDEC checker");
  cli.add_option("threads", "T", "sweep worker threads (default: all cores)");
  if (!cli.parse(argc, argv)) {
    std::fprintf(stderr, "error: %s\n%s", cli.error().c_str(), cli.usage().c_str());
    return 1;
  }
  if (cli.has("help")) {
    std::fputs(cli.usage().c_str(), stdout);
    return 0;
  }

  tbi::sim::Table1Options options;
  options.total_symbols = static_cast<std::uint64_t>(cli.get_int("symbols", 0));
  options.max_bursts_per_phase =
      static_cast<std::uint64_t>(cli.get_int("max-bursts", 0));
  options.check_protocol = cli.has("check");
  options.threads = static_cast<unsigned>(cli.get_int("threads", 0));

  const auto wall_start = std::chrono::steady_clock::now();
  const auto rows = tbi::sim::run_table1(options);
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start)
          .count();

  if (cli.has("json")) {
    tbi::Json doc;
    doc["bench"] = "bench_table1";
    tbi::Json config;
    config["symbols"] = options.total_symbols;
    config["max_bursts"] = options.max_bursts_per_phase;
    config["threads"] = static_cast<std::uint64_t>(options.threads);
    config["check"] = options.check_protocol;
    doc["config"] = config;
    doc["wall_seconds"] = wall_seconds;
    tbi::Json::Array out_rows;
    for (const auto& r : rows) {
      tbi::Json row;
      row["config"] = r.config;
      row["row_major_write"] = r.row_major_write;
      row["row_major_read"] = r.row_major_read;
      row["optimized_write"] = r.optimized_write;
      row["optimized_read"] = r.optimized_read;
      row["row_major_min"] = std::min(r.row_major_write, r.row_major_read);
      row["optimized_min"] = std::min(r.optimized_write, r.optimized_read);
      row["row_major_sched_ns_per_pick"] = r.row_major_ns_per_pick;
      row["optimized_sched_ns_per_pick"] = r.optimized_ns_per_pick;
      out_rows.push_back(row);
    }
    doc["rows"] = out_rows;
    tbi::Json perf;
    perf["process_allocations"] = tbi::perf::process_alloc_count();
    doc["perf"] = perf;
    if (!tbi::Json::write_file(cli.get("json", ""), doc)) {
      return 1;
    }
  }

  const auto table = tbi::sim::format_table1(
      rows, "Table I: DRAM bandwidth utilizations (12.5M-element triangular interleaver)");
  std::fputs(cli.has("markdown") ? table.render_markdown().c_str()
                                 : table.render().c_str(),
             stdout);

  // Min columns, the paper's bold numbers.
  tbi::TextTable mins("Throughput-limiting (minimum) utilization per mapping");
  mins.set_header({"DRAM Configuration", "Row-Major Min", "Optimized Min", "Gain"});
  for (const auto& r : rows) {
    const double rm = std::min(r.row_major_write, r.row_major_read);
    const double op = std::min(r.optimized_write, r.optimized_read);
    mins.add_row({r.config, tbi::TextTable::pct(rm), tbi::TextTable::pct(op),
                  tbi::TextTable::num(op / rm, 2) + "x"});
  }
  std::fputs(cli.has("markdown") ? mins.render_markdown().c_str()
                                 : mins.render().c_str(),
             stdout);

  if (cli.has("csv")) {
    tbi::CsvWriter csv;
    csv.set_header({"config", "row_major_write", "row_major_read",
                    "optimized_write", "optimized_read"});
    for (const auto& r : rows) {
      csv.add_row({r.config, tbi::TextTable::num(r.row_major_write, 6),
                   tbi::TextTable::num(r.row_major_read, 6),
                   tbi::TextTable::num(r.optimized_write, 6),
                   tbi::TextTable::num(r.optimized_read, 6)});
    }
    if (!csv.write_file(cli.get("csv", ""))) {
      std::fprintf(stderr, "failed to write %s\n", cli.get("csv", "").c_str());
      return 1;
    }
  }
  return 0;
}
