/// \file bench_streaming.cpp
/// Extension experiment (beyond the paper's separate-phase evaluation):
/// continuous double-buffered operation — block k+1 is written while
/// block k is read from a disjoint row region, requests interleaved 1:1.
/// The paper argues min(write, read) bounds this mixed rate; here we
/// measure the mixed rate directly, including the read/write bus
/// turnaround penalties the separate phases never see, and compare it to
/// that bound.
///
/// Usage: bench_streaming [--max-bursts M] [--markdown]
#include <algorithm>
#include <cstdio>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "dram/standards.hpp"
#include "sim/runner.hpp"

int main(int argc, char** argv) {
  tbi::CliParser cli("bench_streaming",
                     "continuous write+read operation vs the min(phase) bound");
  cli.add_option("max-bursts", "count", "truncate each walk (default full)");
  cli.add_option("markdown", "", "print GitHub markdown");
  if (!cli.parse(argc, argv)) {
    std::fprintf(stderr, "error: %s\n%s", cli.error().c_str(), cli.usage().c_str());
    return 1;
  }
  if (cli.has("help")) {
    std::fputs(cli.usage().c_str(), stdout);
    return 0;
  }
  const auto max_bursts =
      static_cast<std::uint64_t>(cli.get_int("max-bursts", 0));

  tbi::TextTable t("Continuous operation (1:1 mixed write/read)");
  t.set_header({"DRAM Configuration", "Mapping", "min(W,R) bound", "Streaming",
                "Turnaround cost"});

  for (const auto& device : tbi::dram::standard_configs()) {
    for (const std::string spec : {"row-major", "optimized"}) {
      tbi::sim::RunConfig rc;
      rc.device = device;
      rc.mapping_spec = spec;
      rc.side = tbi::sim::paper_side_for(device);
      rc.max_bursts_per_phase = max_bursts;

      const auto phased = tbi::sim::run_interleaver(rc);
      const auto streaming = tbi::sim::run_streaming(rc);
      const double bound = phased.min_utilization();
      const double mixed = streaming.stats.utilization();

      t.add_row({spec == "row-major" ? device.name : "", spec,
                 tbi::TextTable::pct(bound), tbi::TextTable::pct(mixed),
                 tbi::TextTable::pct(std::max(0.0, bound - mixed))});
    }
  }
  std::fputs(cli.has("markdown") ? t.render_markdown().c_str() : t.render().c_str(),
             stdout);
  std::puts(
      "\nTwo effects are visible: mixed traffic pays bus-turnaround and\n"
      "write-to-read penalties (optimized mapping: a few %% below the\n"
      "min(W,R) bound), while for the row-major mapping the fast write\n"
      "stream can fill bubbles of the crippled read stream and lift the\n"
      "mixed utilization above min(W,R) — without changing the verdict:\n"
      "the optimized mapping sustains the higher block rate everywhere.");
  return 0;
}
