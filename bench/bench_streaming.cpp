/// \file bench_streaming.cpp
/// Extension experiment (beyond the paper's separate-phase evaluation):
/// continuous double-buffered operation — block k+1 is written while
/// block k is read from a disjoint row region, requests interleaved 1:1.
/// The paper argues min(write, read) bounds this mixed rate; here we
/// measure the mixed rate directly, including the read/write bus
/// turnaround penalties the separate phases never see, and compare it to
/// that bound.
///
/// Usage: bench_streaming [--max-bursts M] [--markdown] [--json FILE]
#include <algorithm>
#include <chrono>
#include <cstdio>

#include "common/cli.hpp"
#include "common/json.hpp"
#include "common/table.hpp"
#include "dram/standards.hpp"
#include "perf/counters.hpp"
#include "sim/runner.hpp"

int main(int argc, char** argv) {
  tbi::CliParser cli("bench_streaming",
                     "continuous write+read operation vs the min(phase) bound");
  cli.add_option("max-bursts", "count", "truncate each walk (default full)");
  cli.add_option("markdown", "", "print GitHub markdown");
  cli.add_option("json", "file", "write config + wall time + records as JSON");
  if (!cli.parse(argc, argv)) {
    std::fprintf(stderr, "error: %s\n%s", cli.error().c_str(), cli.usage().c_str());
    return 1;
  }
  if (cli.has("help")) {
    std::fputs(cli.usage().c_str(), stdout);
    return 0;
  }
  const auto max_bursts =
      static_cast<std::uint64_t>(cli.get_int("max-bursts", 0));

  tbi::TextTable t("Continuous operation (1:1 mixed write/read)");
  t.set_header({"DRAM Configuration", "Mapping", "min(W,R) bound", "Streaming",
                "Turnaround cost"});

  const auto wall_start = std::chrono::steady_clock::now();
  tbi::Json::Array rows;
  for (const auto& device : tbi::dram::standard_configs()) {
    for (const std::string spec : {"row-major", "optimized"}) {
      tbi::sim::RunConfig rc;
      rc.device = device;
      rc.mapping_spec = spec;
      rc.side = tbi::sim::paper_side_for(device);
      rc.max_bursts_per_phase = max_bursts;

      const auto phased = tbi::sim::run_interleaver(rc);
      const auto streaming = tbi::sim::run_streaming(rc);
      const double bound = phased.min_utilization();
      const double mixed = streaming.stats.utilization();

      t.add_row({spec == "row-major" ? device.name : "", spec,
                 tbi::TextTable::pct(bound), tbi::TextTable::pct(mixed),
                 tbi::TextTable::pct(std::max(0.0, bound - mixed))});

      tbi::Json row;
      row["device"] = device.name;
      row["mapping"] = spec;
      row["min_phase_utilization"] = bound;
      row["streaming_utilization"] = mixed;
      row["bursts"] = streaming.stats.bursts;
      row["activates"] = streaming.stats.activates;
      row["row_hit_rate"] = streaming.stats.row_hit_rate();
      rows.push_back(row);
    }
  }
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start)
          .count();
  std::fputs(cli.has("markdown") ? t.render_markdown().c_str() : t.render().c_str(),
             stdout);
  std::puts(
      "\nTwo effects are visible: mixed traffic pays bus-turnaround and\n"
      "write-to-read penalties (optimized mapping: a few %% below the\n"
      "min(W,R) bound), while for the row-major mapping the fast write\n"
      "stream can fill bubbles of the crippled read stream and lift the\n"
      "mixed utilization above min(W,R) — without changing the verdict:\n"
      "the optimized mapping sustains the higher block rate everywhere.");

  if (cli.has("json")) {
    tbi::Json doc;
    doc["bench"] = "bench_streaming";
    tbi::Json config;
    config["max_bursts"] = max_bursts;
    doc["config"] = config;
    doc["wall_seconds"] = wall_seconds;
    doc["records"] = rows;
    tbi::Json perf;
    perf["process_allocations"] = tbi::perf::process_alloc_count();
    doc["perf"] = perf;
    if (!tbi::Json::write_file(cli.get("json", ""), doc)) {
      return 1;
    }
  }
  return 0;
}
