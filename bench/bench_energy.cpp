/// \file bench_energy.cpp
/// E7 — the paper's §I motivation: oversizing the DRAM to compensate for a
/// bad mapping "leads to higher costs and additional energy consumption."
/// Quantifies the energy per interleaved gigabyte for both mappings: the
/// row-major mapping burns more activates per byte *and* keeps the device
/// powered longer per interleaver block.
///
/// Usage: bench_energy [--symbols N] [--max-bursts M] [--markdown]
///                     [--json FILE]
#include <chrono>
#include <cstdio>

#include "common/cli.hpp"
#include "common/json.hpp"
#include "common/table.hpp"
#include "dram/standards.hpp"
#include "interleaver/streams.hpp"
#include "perf/counters.hpp"
#include "sim/runner.hpp"

int main(int argc, char** argv) {
  tbi::CliParser cli("bench_energy", "energy per interleaved GiB (paper §I)");
  cli.add_option("symbols", "count", "interleaver symbols (default 12.5M)");
  cli.add_option("max-bursts", "count", "truncate phases for quick runs");
  cli.add_option("markdown", "", "print GitHub markdown");
  cli.add_option("json", "file", "write config + wall time + records as JSON");
  if (!cli.parse(argc, argv)) {
    std::fprintf(stderr, "error: %s\n%s", cli.error().c_str(), cli.usage().c_str());
    return 1;
  }
  if (cli.has("help")) {
    std::fputs(cli.usage().c_str(), stdout);
    return 0;
  }
  const auto symbols =
      static_cast<std::uint64_t>(cli.get_int("symbols", 12'500'000));
  const auto max_bursts =
      static_cast<std::uint64_t>(cli.get_int("max-bursts", 0));

  tbi::TextTable t("Energy per interleaved GiB (write + read phase)");
  t.set_header({"DRAM Configuration", "Mapping", "ACT/kBurst", "Energy",
                "nJ/B", "Overhead"});

  const auto wall_start = std::chrono::steady_clock::now();
  tbi::Json::Array rows;
  for (const auto& device : tbi::dram::standard_configs()) {
    double baseline_nj = 0;
    for (const std::string spec : {"optimized", "row-major"}) {
      tbi::sim::RunConfig rc;
      rc.device = device;
      rc.mapping_spec = spec;
      rc.side =
          tbi::interleaver::burst_triangle_side(symbols, 3, device.burst_bytes);
      rc.max_bursts_per_phase = max_bursts;
      const auto run = tbi::sim::run_interleaver(rc);

      const double total_nj =
          run.write.energy.total_nj() + run.read.energy.total_nj();
      const auto bursts = run.write.stats.bursts + run.read.stats.bursts;
      const double bytes = static_cast<double>(bursts) * device.burst_bytes;
      const double acts_per_kburst =
          1000.0 *
          static_cast<double>(run.write.stats.activates +
                              run.read.stats.activates) /
          static_cast<double>(bursts);

      if (spec == "optimized") baseline_nj = total_nj;
      char energy[32], npb[32], overhead[32];
      std::snprintf(energy, sizeof energy, "%.2f mJ", total_nj * 1e-6);
      std::snprintf(npb, sizeof npb, "%.3f", total_nj / bytes);
      std::snprintf(overhead, sizeof overhead, "%+.1f %%",
                    100.0 * (total_nj / baseline_nj - 1.0));
      t.add_row({spec == "optimized" ? device.name : "", spec,
                 tbi::TextTable::num(acts_per_kburst, 1), energy, npb,
                 overhead});

      tbi::Json row;
      row["device"] = device.name;
      row["mapping"] = spec;
      row["bursts"] = bursts;
      row["activates"] = run.write.stats.activates + run.read.stats.activates;
      row["energy_nj"] = total_nj;
      row["nj_per_byte"] = total_nj / bytes;
      row["energy_overhead_pct"] = 100.0 * (total_nj / baseline_nj - 1.0);
      row["sched_ns_per_pick"] = run.sched_ns_per_pick();
      rows.push_back(row);
    }
  }
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start)
          .count();
  std::fputs(cli.has("markdown") ? t.render_markdown().c_str() : t.render().c_str(),
             stdout);
  std::puts(
      "\nOverhead column: extra energy of the row-major mapping relative to\n"
      "the optimized mapping on the same device (same data moved).");

  if (cli.has("json")) {
    tbi::Json doc;
    doc["bench"] = "bench_energy";
    tbi::Json config;
    config["symbols"] = symbols;
    config["max_bursts"] = max_bursts;
    doc["config"] = config;
    doc["wall_seconds"] = wall_seconds;
    doc["records"] = rows;
    tbi::Json perf;
    perf["process_allocations"] = tbi::perf::process_alloc_count();
    doc["perf"] = perf;
    if (!tbi::Json::write_file(cli.get("json", ""), doc)) {
      return 1;
    }
  }
  return 0;
}
