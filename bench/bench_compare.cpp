/// \file bench_compare.cpp
/// Bench-trend gate: diff a fresh bench `--json` run against a committed
/// BENCH_*.json baseline with per-metric tolerance classes (exact for
/// deterministic counters, loose one-sided bands for host timing — see
/// src/perf/bench_compare.hpp). Exits 0 when the candidate is within
/// tolerance, 1 with a per-cell report on any regression or schema
/// drift, 2 on usage or I/O errors.
///
/// Usage: bench_compare --baseline FILE --candidate FILE
///                      [--time-tol-pct P] [--size-tol-pct P]
#include <cstdio>

#include "common/cli.hpp"
#include "common/json.hpp"
#include "perf/bench_compare.hpp"

int main(int argc, char** argv) {
  tbi::CliParser cli("bench_compare",
                     "diff a bench --json run against a committed baseline");
  cli.add_option("baseline", "file", "committed BENCH_*.json baseline");
  cli.add_option("candidate", "file", "fresh bench --json output");
  cli.add_option("time-tol-pct", "p",
                 "one-sided band for wall-clock metrics (default 50)");
  cli.add_option("size-tol-pct", "p",
                 "one-sided band for byte-size metrics (default 10)");
  if (!cli.parse(argc, argv)) {
    std::fprintf(stderr, "error: %s\n%s", cli.error().c_str(), cli.usage().c_str());
    return 2;
  }
  if (cli.has("help")) {
    std::fputs(cli.usage().c_str(), stdout);
    return 0;
  }
  const std::string baseline_path = cli.get("baseline", "");
  const std::string candidate_path = cli.get("candidate", "");
  if (baseline_path.empty() || candidate_path.empty()) {
    std::fprintf(stderr, "error: --baseline and --candidate are required\n%s",
                 cli.usage().c_str());
    return 2;
  }

  tbi::perf::CompareOptions options;
  options.time_tol_pct = cli.get_double("time-tol-pct", options.time_tol_pct);
  options.size_tol_pct = cli.get_double("size-tol-pct", options.size_tol_pct);

  tbi::Json baseline, candidate;
  try {
    baseline = tbi::Json::read_file(baseline_path);
    candidate = tbi::Json::read_file(candidate_path);
  } catch (const tbi::JsonError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }

  const auto report = tbi::perf::compare_bench(baseline, candidate, options);
  std::fputs(report.render().c_str(), stdout);
  if (!report.ok()) {
    std::printf("candidate '%s' regressed against baseline '%s'\n",
                candidate_path.c_str(), baseline_path.c_str());
    return 1;
  }
  return 0;
}
