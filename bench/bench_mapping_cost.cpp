/// \file bench_mapping_cost.cpp
/// E6 — the paper's hardware-complexity claim (§II): the mapping rules
/// "only consist of additions, logical shifts and bitwise operations,
/// which enables a hardware implementation with low complexity."
///
/// Software proxy for that claim: google-benchmark timing of the address
/// computation itself. The optimized mapping must stay within a small
/// factor of the trivial row-major linearization (a few ns per address),
/// i.e. nothing in it needs division trees, tables or iteration.
#include <benchmark/benchmark.h>

#include "dram/standards.hpp"
#include "mapping/factory.hpp"

namespace {

using tbi::dram::find_config;

constexpr std::uint64_t kSide = 383;  // paper geometry on 64 B bursts

void BM_RowMajorMapping(benchmark::State& state) {
  const auto& dev = *find_config("DDR4-3200");
  const auto m = tbi::mapping::make_mapping("row-major", dev, kSide);
  std::uint64_t i = 0, j = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(m->map(i, j));
    j = (j + 1) % (kSide - i);
    if (j == 0) i = (i + 1) % kSide;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RowMajorMapping);

void BM_OptimizedMapping(benchmark::State& state) {
  const auto& dev = *find_config("DDR4-3200");
  const auto m = tbi::mapping::make_mapping("optimized", dev, kSide);
  std::uint64_t i = 0, j = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(m->map(i, j));
    j = (j + 1) % (kSide - i);
    if (j == 0) i = (i + 1) % kSide;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OptimizedMapping);

void BM_OptimizedMappingAllDevices(benchmark::State& state) {
  const auto& dev = tbi::dram::standard_configs()[static_cast<std::size_t>(
      state.range(0))];
  const auto m = tbi::mapping::make_mapping("optimized", dev, kSide);
  std::uint64_t i = 0, j = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(m->map(i, j));
    j = (j + 1) % (kSide - i);
    if (j == 0) i = (i + 1) % kSide;
  }
  state.SetLabel(dev.name);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OptimizedMappingAllDevices)->DenseRange(0, 9);

void BM_OptimizedAblationVariants(benchmark::State& state) {
  static const char* kSpecs[] = {"optimized/none", "optimized/diag",
                                 "optimized/tile", "optimized/diag+tile",
                                 "optimized"};
  const char* spec = kSpecs[state.range(0)];
  const auto& dev = *find_config("DDR4-3200");
  const auto m = tbi::mapping::make_mapping(spec, dev, kSide);
  std::uint64_t i = 0, j = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(m->map(i, j));
    j = (j + 1) % (kSide - i);
    if (j == 0) i = (i + 1) % kSide;
  }
  state.SetLabel(spec);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OptimizedAblationVariants)->DenseRange(0, 4);

void BM_FullPhaseAddressGeneration(benchmark::State& state) {
  // Amortized cost of generating a complete write-phase address stream —
  // what a streaming hardware block would have to sustain per burst.
  const auto& dev = *find_config("LPDDR5-8533");
  const auto m = tbi::mapping::make_mapping("optimized", dev, 541);
  for (auto _ : state) {
    std::uint64_t acc = 0;
    for (std::uint64_t i = 0; i < 541; ++i) {
      for (std::uint64_t j = 0; j < 541 - i; ++j) {
        const auto a = m->map(i, j);
        acc += a.bank + a.row + a.column;
      }
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * 146'611);
}
BENCHMARK(BM_FullPhaseAddressGeneration);

}  // namespace

BENCHMARK_MAIN();
