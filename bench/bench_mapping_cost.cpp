/// \file bench_mapping_cost.cpp
/// E6 — the paper's hardware-complexity claim (§II): the mapping rules
/// "only consist of additions, logical shifts and bitwise operations,
/// which enables a hardware implementation with low complexity."
///
/// Software proxy for that claim: google-benchmark timing of the address
/// computation itself. The optimized mapping must stay within a small
/// factor of the trivial row-major linearization (a few ns per address),
/// i.e. nothing in it needs division trees, tables or iteration.
///
/// `--json FILE` bypasses google-benchmark and times the same cases with
/// the in-process perf counters, emitting the shared bench JSON schema
/// (config + records + perf) for bench_compare / the bench-trend CI step.
/// All other arguments go to google-benchmark as usual.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>

#include "common/json.hpp"
#include "dram/standards.hpp"
#include "mapping/factory.hpp"
#include "perf/counters.hpp"

namespace {

using tbi::dram::find_config;

constexpr std::uint64_t kSide = 383;  // paper geometry on 64 B bursts

void BM_RowMajorMapping(benchmark::State& state) {
  const auto& dev = *find_config("DDR4-3200");
  const auto m = tbi::mapping::make_mapping("row-major", dev, kSide);
  std::uint64_t i = 0, j = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(m->map(i, j));
    j = (j + 1) % (kSide - i);
    if (j == 0) i = (i + 1) % kSide;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RowMajorMapping);

void BM_OptimizedMapping(benchmark::State& state) {
  const auto& dev = *find_config("DDR4-3200");
  const auto m = tbi::mapping::make_mapping("optimized", dev, kSide);
  std::uint64_t i = 0, j = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(m->map(i, j));
    j = (j + 1) % (kSide - i);
    if (j == 0) i = (i + 1) % kSide;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OptimizedMapping);

void BM_OptimizedMappingAllDevices(benchmark::State& state) {
  const auto& dev = tbi::dram::standard_configs()[static_cast<std::size_t>(
      state.range(0))];
  const auto m = tbi::mapping::make_mapping("optimized", dev, kSide);
  std::uint64_t i = 0, j = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(m->map(i, j));
    j = (j + 1) % (kSide - i);
    if (j == 0) i = (i + 1) % kSide;
  }
  state.SetLabel(dev.name);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OptimizedMappingAllDevices)->DenseRange(0, 9);

void BM_OptimizedAblationVariants(benchmark::State& state) {
  static const char* kSpecs[] = {"optimized/none", "optimized/diag",
                                 "optimized/tile", "optimized/diag+tile",
                                 "optimized"};
  const char* spec = kSpecs[state.range(0)];
  const auto& dev = *find_config("DDR4-3200");
  const auto m = tbi::mapping::make_mapping(spec, dev, kSide);
  std::uint64_t i = 0, j = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(m->map(i, j));
    j = (j + 1) % (kSide - i);
    if (j == 0) i = (i + 1) % kSide;
  }
  state.SetLabel(spec);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OptimizedAblationVariants)->DenseRange(0, 4);

void BM_FullPhaseAddressGeneration(benchmark::State& state) {
  // Amortized cost of generating a complete write-phase address stream —
  // what a streaming hardware block would have to sustain per burst.
  const auto& dev = *find_config("LPDDR5-8533");
  const auto m = tbi::mapping::make_mapping("optimized", dev, 541);
  for (auto _ : state) {
    std::uint64_t acc = 0;
    for (std::uint64_t i = 0; i < 541; ++i) {
      for (std::uint64_t j = 0; j < 541 - i; ++j) {
        const auto a = m->map(i, j);
        acc += a.bank + a.row + a.column;
      }
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * 146'611);
}
BENCHMARK(BM_FullPhaseAddressGeneration);

volatile std::uint64_t g_sink = 0;  ///< keeps the --json timing loops honest

/// ns per map() over the same triangular walk the benchmark cases use.
double time_mapping_ns(const char* spec, const tbi::dram::DeviceConfig& dev,
                       std::uint64_t side, std::uint64_t iters) {
  const auto m = tbi::mapping::make_mapping(spec, dev, side);
  std::uint64_t i = 0, j = 0, acc = 0;
  const std::uint64_t start = tbi::perf::now_ns();
  for (std::uint64_t it = 0; it < iters; ++it) {
    const auto a = m->map(i, j);
    acc += a.bank + a.row + a.column;
    j = (j + 1) % (side - i);
    if (j == 0) i = (i + 1) % side;
  }
  const std::uint64_t ns = tbi::perf::now_ns() - start;
  g_sink = acc;
  return static_cast<double>(ns) / static_cast<double>(iters);
}

int run_json(const char* path) {
  constexpr std::uint64_t kIters = 2'000'000;
  const auto& ddr4 = *find_config("DDR4-3200");

  const auto wall_start = std::chrono::steady_clock::now();
  tbi::Json::Array rows;
  const auto add_row = [&rows](const std::string& label, const char* spec,
                               const tbi::dram::DeviceConfig& dev,
                               std::uint64_t iters) {
    tbi::Json row;
    row["case"] = label;
    row["device"] = dev.name;
    row["mapping"] = spec;
    time_mapping_ns(spec, dev, kSide, iters / 4);  // warm-up, untimed
    row["map_ns"] = time_mapping_ns(spec, dev, kSide, iters);
    rows.push_back(row);
  };
  add_row("row-major", "row-major", ddr4, kIters);
  add_row("optimized", "optimized", ddr4, kIters);
  for (const char* spec : {"optimized/none", "optimized/diag", "optimized/tile",
                           "optimized/diag+tile"}) {
    add_row(std::string("ablation:") + spec, spec, ddr4, kIters);
  }
  for (const auto& dev : tbi::dram::standard_configs()) {
    add_row(std::string("device:") + dev.name, "optimized", dev, kIters / 4);
  }
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start)
          .count();

  tbi::Json doc;
  doc["bench"] = "bench_mapping_cost";
  tbi::Json config;
  config["side"] = kSide;
  config["iterations"] = kIters;
  doc["config"] = config;
  doc["wall_seconds"] = wall_seconds;
  doc["records"] = rows;
  tbi::Json perf;
  perf["process_allocations"] = tbi::perf::process_alloc_count();
  doc["perf"] = perf;
  return tbi::Json::write_file(path, doc) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) return run_json(argv[i + 1]);
    if (arg.rfind("--json=", 0) == 0) return run_json(argv[i] + 7);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
