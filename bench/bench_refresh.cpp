/// \file bench_refresh.cpp
/// E3 — the paper's refresh claim (§III): the missing percentages of the
/// optimized mapping are caused by refresh; disabling refresh (legal while
/// the interleaver data lifetime stays below the retention time) lifts the
/// optimized mapping above 99 % on every configuration.
///
/// Prints optimized-mapping utilizations with the device-default refresh
/// mode and with refresh disabled, plus the interleaver data lifetime so
/// the legality condition (lifetime < 32..64 ms retention) can be checked.
///
/// Usage: bench_refresh [--symbols N] [--max-bursts M] [--markdown]
///                      [--json FILE]
#include <chrono>
#include <cstdio>

#include "common/cli.hpp"
#include "common/json.hpp"
#include "common/table.hpp"
#include "dram/standards.hpp"
#include "interleaver/streams.hpp"
#include "perf/counters.hpp"
#include "sim/runner.hpp"

int main(int argc, char** argv) {
  tbi::CliParser cli("bench_refresh", "refresh on/off ablation (paper §III)");
  cli.add_option("symbols", "count", "interleaver symbols (default 12.5M)");
  cli.add_option("max-bursts", "count", "truncate phases for quick runs");
  cli.add_option("markdown", "", "print GitHub markdown");
  cli.add_option("json", "file", "write config + wall time + records as JSON");
  if (!cli.parse(argc, argv)) {
    std::fprintf(stderr, "error: %s\n%s", cli.error().c_str(), cli.usage().c_str());
    return 1;
  }
  if (cli.has("help")) {
    std::fputs(cli.usage().c_str(), stdout);
    return 0;
  }
  const auto symbols =
      static_cast<std::uint64_t>(cli.get_int("symbols", 12'500'000));
  const auto max_bursts =
      static_cast<std::uint64_t>(cli.get_int("max-bursts", 0));

  tbi::TextTable t(
      "Optimized mapping: device-default refresh vs refresh disabled");
  t.set_header({"DRAM Configuration", "Refresh Mode", "Write", "Read",
                "Write (no REF)", "Read (no REF)", "Data Lifetime"});

  const auto wall_start = std::chrono::steady_clock::now();
  tbi::Json::Array rows;
  for (const auto& device : tbi::dram::standard_configs()) {
    tbi::sim::RunConfig rc;
    rc.device = device;
    rc.mapping_spec = "optimized";
    rc.side = tbi::interleaver::burst_triangle_side(symbols, 3, device.burst_bytes);
    rc.max_bursts_per_phase = max_bursts;

    const auto with_ref = tbi::sim::run_interleaver(rc);
    rc.controller.use_device_default_refresh = false;
    rc.controller.refresh_mode = tbi::dram::RefreshMode::Disabled;
    const auto no_ref = tbi::sim::run_interleaver(rc);

    // Data lifetime = wall time between writing the first burst and
    // reading the last one ~ both phases back to back.
    const double lifetime_ms =
        (no_ref.read.stats.end - no_ref.write.stats.start) / 1e9;
    char lifetime[32];
    std::snprintf(lifetime, sizeof lifetime, "%.2f ms", lifetime_ms);

    t.add_row({device.name, to_string(device.default_refresh),
               tbi::TextTable::pct(with_ref.write.stats.utilization()),
               tbi::TextTable::pct(with_ref.read.stats.utilization()),
               tbi::TextTable::pct(no_ref.write.stats.utilization()),
               tbi::TextTable::pct(no_ref.read.stats.utilization()), lifetime});

    tbi::Json row;
    row["device"] = device.name;
    row["refresh_mode"] = to_string(device.default_refresh);
    row["write_utilization"] = with_ref.write.stats.utilization();
    row["read_utilization"] = with_ref.read.stats.utilization();
    row["write_utilization_no_ref"] = no_ref.write.stats.utilization();
    row["read_utilization_no_ref"] = no_ref.read.stats.utilization();
    row["refreshes"] = with_ref.write.stats.refreshes + with_ref.read.stats.refreshes;
    row["lifetime_ms"] = lifetime_ms;
    rows.push_back(row);
  }
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start)
          .count();
  std::fputs(cli.has("markdown") ? t.render_markdown().c_str() : t.render().c_str(),
             stdout);
  std::puts(
      "\nDisabling refresh is legal while the data lifetime stays below the\n"
      "DRAM retention period (32..64 ms, paper §III).");

  if (cli.has("json")) {
    tbi::Json doc;
    doc["bench"] = "bench_refresh";
    tbi::Json config;
    config["symbols"] = symbols;
    config["max_bursts"] = max_bursts;
    doc["config"] = config;
    doc["wall_seconds"] = wall_seconds;
    doc["records"] = rows;
    tbi::Json perf;
    perf["process_allocations"] = tbi::perf::process_alloc_count();
    doc["perf"] = perf;
    if (!tbi::Json::write_file(cli.get("json", ""), doc)) {
      return 1;
    }
  }
  return 0;
}
