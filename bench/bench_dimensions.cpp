/// \file bench_dimensions.cpp
/// E4 — the paper's robustness note (§III): "Results for other interleaver
/// dimensions are omitted ... because they differ only slightly." Sweeps
/// the interleaver size over two orders of magnitude on every device and
/// reports the throughput-limiting utilization of both mappings.
///
/// Usage: bench_dimensions [--device NAME] [--json FILE] [--markdown]
///                         [--threads T]
#include <chrono>
#include <cstdio>
#include <vector>

#include "common/cli.hpp"
#include "common/json.hpp"
#include "common/table.hpp"
#include "dram/standards.hpp"
#include "perf/counters.hpp"
#include "sim/experiments.hpp"

int main(int argc, char** argv) {
  tbi::CliParser cli("bench_dimensions", "interleaver size sweep (paper §III)");
  cli.add_option("device", "name", "single device (default: all ten)");
  cli.add_option("json", "file", "write config + wall time + rows as JSON");
  cli.add_option("markdown", "", "print GitHub markdown");
  cli.add_option("threads", "T", "sweep worker threads (default: all cores)");
  if (!cli.parse(argc, argv)) {
    std::fprintf(stderr, "error: %s\n%s", cli.error().c_str(), cli.usage().c_str());
    return 1;
  }
  if (cli.has("help")) {
    std::fputs(cli.usage().c_str(), stdout);
    return 0;
  }

  const std::vector<std::uint64_t> sizes = {800'000, 3'000'000, 12'500'000,
                                            50'000'000};

  tbi::TextTable t("Interleaver dimension sweep (min utilization per mapping)");
  std::vector<std::string> header = {"DRAM Configuration", "Mapping"};
  for (auto s : sizes) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.1fM sym", static_cast<double>(s) / 1e6);
    header.push_back(buf);
  }
  t.set_header(header);

  const auto wall_start = std::chrono::steady_clock::now();
  tbi::Json::Array device_docs;
  for (const auto& device : tbi::dram::standard_configs()) {
    if (cli.has("device") && device.name != cli.get("device", "")) continue;
    const auto rows = tbi::sim::run_dimension_sweep(
        device, sizes, static_cast<unsigned>(cli.get_int("threads", 0)));
    std::vector<std::string> rm = {device.name, "row-major"};
    std::vector<std::string> opt = {"", "optimized"};
    tbi::Json device_doc;
    device_doc["device"] = device.name;
    tbi::Json::Array out_rows;
    for (const auto& r : rows) {
      rm.push_back(tbi::TextTable::pct(r.row_major_min));
      opt.push_back(tbi::TextTable::pct(r.optimized_min));
      tbi::Json row;
      row["total_symbols"] = r.total_symbols;
      row["side_bursts"] = r.side_bursts;
      row["row_major_min"] = r.row_major_min;
      row["optimized_min"] = r.optimized_min;
      row["row_major_sched_ns_per_pick"] = r.row_major_ns_per_pick;
      row["optimized_sched_ns_per_pick"] = r.optimized_ns_per_pick;
      out_rows.push_back(row);
    }
    device_doc["rows"] = out_rows;
    device_docs.push_back(device_doc);
    t.add_row(rm);
    t.add_row(opt);
  }

  if (cli.has("json")) {
    tbi::Json doc;
    doc["bench"] = "bench_dimensions";
    tbi::Json config;
    config["device"] = cli.get("device", "");
    config["threads"] = static_cast<std::uint64_t>(cli.get_int("threads", 0));
    doc["config"] = config;
    doc["wall_seconds"] =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start)
            .count();
    doc["devices"] = device_docs;
    tbi::Json perf;
    perf["process_allocations"] = tbi::perf::process_alloc_count();
    doc["perf"] = perf;
    if (!tbi::Json::write_file(cli.get("json", ""), doc)) {
      return 1;
    }
  }

  std::fputs(cli.has("markdown") ? t.render_markdown().c_str() : t.render().c_str(),
             stdout);
  std::puts(
      "\nExpected shape: per mapping the columns differ only slightly\n"
      "(paper §III), while row-major vs optimized differ greatly.");
  return 0;
}
