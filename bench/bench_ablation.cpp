/// \file bench_ablation.cpp
/// E5 — ablation of the three optimizations of §II on representative fast
/// speed grades. Shows why each ingredient is needed:
///   none        : square row-major placement (baseline pathology)
///   diag        : bank round-robin only — tCCD_S everywhere, but page
///                 misses still concentrate in one direction
///   tile        : page tiling only — misses split between directions, but
///                 consecutive accesses stay in one bank group
///   diag+tile   : both — misses of all banks collide at tile boundaries
///   full        : + bank-dependent column offset staggers those misses
///
/// Usage: bench_ablation [--device NAME] [--symbols N] [--max-bursts M]
///                       [--threads T]
#include <cstdio>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "dram/standards.hpp"
#include "sim/experiments.hpp"

int main(int argc, char** argv) {
  tbi::CliParser cli("bench_ablation", "per-optimization ablation (paper §II)");
  cli.add_option("device", "name", "single device (default: three fast grades)");
  cli.add_option("symbols", "count", "interleaver symbols (default 12.5M)");
  cli.add_option("max-bursts", "count", "truncate phases for quick runs");
  cli.add_option("markdown", "", "print GitHub markdown");
  cli.add_option("threads", "T", "sweep worker threads (default: all cores)");
  if (!cli.parse(argc, argv)) {
    std::fprintf(stderr, "error: %s\n%s", cli.error().c_str(), cli.usage().c_str());
    return 1;
  }
  if (cli.has("help")) {
    std::fputs(cli.usage().c_str(), stdout);
    return 0;
  }

  const auto symbols =
      static_cast<std::uint64_t>(cli.get_int("symbols", 12'500'000));
  const auto max_bursts =
      static_cast<std::uint64_t>(cli.get_int("max-bursts", 0));
  const auto threads = static_cast<unsigned>(cli.get_int("threads", 0));

  std::vector<std::string> devices;
  if (cli.has("device")) {
    devices = {cli.get("device", "")};
  } else {
    devices = {"DDR4-3200", "LPDDR4-4266", "LPDDR5-8533"};
  }

  for (const auto& name : devices) {
    const auto* device = tbi::dram::find_config(name);
    if (device == nullptr) {
      std::fprintf(stderr, "unknown device '%s'\n", name.c_str());
      return 1;
    }
    const auto rows = tbi::sim::run_ablation(*device, symbols, max_bursts, threads);
    tbi::TextTable t("Optimization ablation on " + name);
    t.set_header({"Mapping Variant", "Write", "Read", "Min"});
    for (const auto& r : rows) {
      t.add_row({r.variant, tbi::TextTable::pct(r.write),
                 tbi::TextTable::pct(r.read), tbi::TextTable::pct(r.min())});
    }
    std::fputs(cli.has("markdown") ? t.render_markdown().c_str()
                                   : t.render().c_str(),
               stdout);
    std::puts("");
  }
  return 0;
}
