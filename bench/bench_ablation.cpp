/// \file bench_ablation.cpp
/// E5 — ablation of the three optimizations of §II on representative fast
/// speed grades. Shows why each ingredient is needed:
///   none        : square row-major placement (baseline pathology)
///   diag        : bank round-robin only — tCCD_S everywhere, but page
///                 misses still concentrate in one direction
///   tile        : page tiling only — misses split between directions, but
///                 consecutive accesses stay in one bank group
///   diag+tile   : both — misses of all banks collide at tile boundaries
///   full        : + bank-dependent column offset staggers those misses
///
/// Usage: bench_ablation [--device NAME] [--symbols N] [--max-bursts M]
///                       [--json FILE] [--threads T]
#include <chrono>
#include <cstdio>

#include "common/cli.hpp"
#include "common/json.hpp"
#include "common/table.hpp"
#include "dram/standards.hpp"
#include "perf/counters.hpp"
#include "sim/experiments.hpp"

int main(int argc, char** argv) {
  tbi::CliParser cli("bench_ablation", "per-optimization ablation (paper §II)");
  cli.add_option("device", "name", "single device (default: three fast grades)");
  cli.add_option("symbols", "count", "interleaver symbols (default 12.5M)");
  cli.add_option("max-bursts", "count", "truncate phases for quick runs");
  cli.add_option("json", "file", "write config + wall time + rows as JSON");
  cli.add_option("markdown", "", "print GitHub markdown");
  cli.add_option("threads", "T", "sweep worker threads (default: all cores)");
  if (!cli.parse(argc, argv)) {
    std::fprintf(stderr, "error: %s\n%s", cli.error().c_str(), cli.usage().c_str());
    return 1;
  }
  if (cli.has("help")) {
    std::fputs(cli.usage().c_str(), stdout);
    return 0;
  }

  const auto symbols =
      static_cast<std::uint64_t>(cli.get_int("symbols", 12'500'000));
  const auto max_bursts =
      static_cast<std::uint64_t>(cli.get_int("max-bursts", 0));
  const auto threads = static_cast<unsigned>(cli.get_int("threads", 0));

  std::vector<std::string> devices;
  if (cli.has("device")) {
    devices = {cli.get("device", "")};
  } else {
    devices = {"DDR4-3200", "LPDDR4-4266", "LPDDR5-8533"};
  }

  const auto wall_start = std::chrono::steady_clock::now();
  tbi::Json::Array device_docs;
  for (const auto& name : devices) {
    const auto* device = tbi::dram::find_config(name);
    if (device == nullptr) {
      std::fprintf(stderr, "unknown device '%s'\n", name.c_str());
      return 1;
    }
    const auto rows = tbi::sim::run_ablation(*device, symbols, max_bursts, threads);
    tbi::TextTable t("Optimization ablation on " + name);
    t.set_header({"Mapping Variant", "Write", "Read", "Min"});
    tbi::Json device_doc;
    device_doc["device"] = name;
    tbi::Json::Array out_rows;
    for (const auto& r : rows) {
      t.add_row({r.variant, tbi::TextTable::pct(r.write),
                 tbi::TextTable::pct(r.read), tbi::TextTable::pct(r.min())});
      tbi::Json row;
      row["variant"] = r.variant;
      row["write"] = r.write;
      row["read"] = r.read;
      row["min"] = r.min();
      row["sched_ns_per_pick"] = r.ns_per_pick;
      out_rows.push_back(row);
    }
    device_doc["rows"] = out_rows;
    device_docs.push_back(device_doc);
    std::fputs(cli.has("markdown") ? t.render_markdown().c_str()
                                   : t.render().c_str(),
               stdout);
    std::puts("");
  }

  if (cli.has("json")) {
    tbi::Json doc;
    doc["bench"] = "bench_ablation";
    tbi::Json config;
    config["symbols"] = symbols;
    config["max_bursts"] = max_bursts;
    config["threads"] = static_cast<std::uint64_t>(threads);
    doc["config"] = config;
    doc["wall_seconds"] =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start)
            .count();
    doc["devices"] = device_docs;
    tbi::Json perf;
    perf["process_allocations"] = tbi::perf::process_alloc_count();
    doc["perf"] = perf;
    if (!tbi::Json::write_file(cli.get("json", ""), doc)) {
      return 1;
    }
  }
  return 0;
}
