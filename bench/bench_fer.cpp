/// \file bench_fer.cpp
/// E9 — end-to-end frame-error-rate sweep over the full scenario grid:
/// interleaver type x channel model x code rate, with the triangular
/// interleaver's DRAM feasibility reported alongside. This is the paper's
/// motivating story (§I) quantified: a bursty optical LEO downlink needs
/// the triangular interleaver to make the RS code useful, and the
/// DRAM-resident implementation sustains the link rate only with the
/// optimized mapping.
///
/// Runs on the fault-tolerant sweep backend (sim/dsweep.hpp) with
/// deterministic per-cell seeding: the records are identical for any
/// --threads *and* --workers value. `--workers N` shards the grid over N
/// worker processes with crash recovery; with `--json` every completed
/// cell is checkpointed to `<file>.manifest`, `--resume` skips the cells
/// already recorded there, and SIGINT/SIGTERM flush a valid partial
/// document (plus the manifest) before exiting 130. `--stable-json` drops
/// the host-timing fields so two runs of the same sweep can be compared
/// with a plain diff.
///
/// The interleaver axis includes the paper's headline "two-stage" scheme
/// (§II): those cells run the streaming frame path at the burst-granular
/// stage-2 side (--side, in bursts) with --spb symbols per DRAM burst, so
/// their frames are spb x larger than the RS-255 triangle of the classic
/// rows.
///
/// Fleet mode: `--listen HOST:PORT` adopts remote TCP workers started
/// with `--connect HOST:PORT` instead of forking local ones; `--shard
/// I/N` computes one contiguous slice of the grid into its own manifest
/// and `--merge-shards M1,M2,..` reassembles the slices into output
/// byte-identical (under --stable-json) to a single-process run.
///
/// Usage: bench_fer [--device NAME] [--frames N] [--seed S] [--threads T]
///                  [--workers N] [--resume] [--fade-prob P]
///                  [--burst-symbols B] [--side S] [--spb B] [--links N]
///                  [--listen HOST:PORT | --connect HOST:PORT]
///                  [--worker-timeout-ms MS] [--accept-timeout-ms MS]
///                  [--shard I/N] [--merge-shards M1,M2,..]
///                  [--markdown] [--progress] [--json FILE] [--stable-json]
#include <chrono>
#include <csignal>
#include <cstdio>

#include "common/cli.hpp"
#include "common/json.hpp"
#include "common/table.hpp"
#include "dram/standards.hpp"
#include "fec/gf256_simd.hpp"
#include "perf/counters.hpp"
#include "sim/dsweep.hpp"
#include "sim/manifest.hpp"
#include "sim/pipeline.hpp"

namespace {

volatile std::sig_atomic_t g_cancel = 0;

void handle_signal(int) { g_cancel = 1; }

}  // namespace

int main(int argc, char** argv) {
  // Worker re-invocation? Hand the process to the protocol loop before
  // any CLI parsing.
  const int worker_fd = tbi::sim::dsweep_worker_fd(argc, argv);
  if (worker_fd >= 0) {
    return tbi::sim::dsweep_worker_main(worker_fd);
  }
  // Remote-worker invocation: dial the fleet driver and serve cells.
  const std::string connect_spec = tbi::sim::dsweep_worker_connect_arg(argc, argv);
  if (!connect_spec.empty()) {
    return tbi::sim::dsweep_worker_connect(connect_spec);
  }

  tbi::CliParser cli("bench_fer", "FER sweep: interleaver x channel x code rate");
  cli.add_option("device", "name", "DRAM device (default LPDDR5-8533)");
  cli.add_option("frames", "n", "frames per scenario (default 40)");
  cli.add_option("seed", "s", "sweep base seed (default 1)");
  cli.add_option("threads", "T", "sweep worker threads (default: all cores)");
  cli.add_option("workers", "N", "worker processes (default 1 = in-process)");
  cli.add_option("resume", "", "skip cells recorded in the --json manifest");
  cli.add_option("fade-prob", "p", "stationary fade duty cycle (default 0.004)");
  cli.add_option("burst-symbols", "b", "mean fade length in symbols (default 300)");
  cli.add_option("side", "s", "interleaver side (0 = RS-255 triangle; bursts for two-stage)");
  cli.add_option("spb", "b", "two-stage symbols per DRAM burst (default 64)");
  cli.add_option("links", "n", "downlinks interleaved on the wire (default 1)");
  cli.add_option("frame-slices", "n",
                 "split each streaming cell's frames into n intra-frame "
                 "channel slices spread over the sweep workers (default 1)");
  cli.add_option("listen", "h:p", "adopt remote TCP workers (fleet driver mode)");
  cli.add_option("connect", "h:p", "serve a --listen driver as a remote worker");
  cli.add_option("worker-timeout-ms", "ms",
                 "declare a silent worker dead/partitioned after this long (default 5000)");
  cli.add_option("accept-timeout-ms", "ms",
                 "--listen: run in-process when no worker connects for this long "
                 "(default 10000)");
  cli.add_option("shard", "i/n", "compute only shard i of n (needs --json)");
  cli.add_option("merge-shards", "m1,m2,..",
                 "merge shard manifests into the full result (no compute)");
  cli.add_option("markdown", "", "print GitHub markdown");
  cli.add_option("progress", "", "print sweep progress to stderr");
  cli.add_option("json", "file", "write config + wall time + records as JSON");
  cli.add_option("stable-json", "", "omit host-timing fields (diffable output)");
  if (!cli.parse(argc, argv)) {
    std::fprintf(stderr, "error: %s\n%s", cli.error().c_str(), cli.usage().c_str());
    return 1;
  }
  if (cli.has("help")) {
    std::fputs(cli.usage().c_str(), stdout);
    return 0;
  }

  const std::string device = cli.get("device", "LPDDR5-8533");
  if (tbi::dram::find_config(device) == nullptr) {
    std::fprintf(stderr, "unknown device '%s'\n", device.c_str());
    return 1;
  }
  if (cli.has("resume") && !cli.has("json")) {
    std::fprintf(stderr, "error: --resume needs --json (the manifest lives "
                         "next to the JSON sink)\n");
    return 1;
  }

  const unsigned links = static_cast<unsigned>(cli.get_int("links", 1));
  if (links == 0) {
    std::fprintf(stderr, "error: --links must be >= 1\n");
    return 1;
  }

  tbi::sim::SweepGrid grid;
  grid.devices = {device};
  grid.interleavers = {"none", "block", "triangular", "two-stage"};
  grid.channels = {"bsc", "gilbert-elliott", "leo"};
  grid.rs_ks = {239, 223, 191};
  // Route --links through the grid axis (not the base template) so the
  // scenario labels and checkpoint manifests identify multi-link cells;
  // the default 1 keeps the axis in its unset state and the cell order,
  // seeds and labels of single-link sweeps unchanged.
  if (links > 1) grid.links = {links};

  tbi::sim::FerSweepOptions options;
  options.sweep.threads = static_cast<unsigned>(cli.get_int("threads", 0));
  options.sweep.base_seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  options.base.frames = static_cast<unsigned>(cli.get_int("frames", 40));
  options.base.fade_fraction = cli.get_double("fade-prob", 0.004);
  options.base.mean_burst_symbols = cli.get_double("burst-symbols", 300);
  options.base.error_probability = 2e-3;
  options.base.error_rate_bad = 0.95;
  options.base.side = static_cast<std::uint64_t>(cli.get_int("side", 0));
  options.base.symbols_per_burst = static_cast<std::uint64_t>(cli.get_int("spb", 64));
  const std::int64_t frame_slices = cli.get_int("frame-slices", 1);
  if (frame_slices <= 0) {
    std::fprintf(stderr, "error: --frame-slices must be >= 1\n");
    return 1;
  }
  options.frame_slices = static_cast<unsigned>(frame_slices);

  tbi::sim::DsweepOptions dist;
  dist.workers = static_cast<unsigned>(cli.get_int("workers", 1));
  dist.resume = cli.has("resume");
  if (cli.has("json")) {
    dist.manifest_path = cli.get("json", "") + ".manifest";
  }
  dist.listen = cli.get("listen", "");
  const std::int64_t worker_timeout = cli.get_int("worker-timeout-ms", 5000);
  if (worker_timeout <= 0) {
    std::fprintf(stderr, "error: --worker-timeout-ms must be positive\n");
    return 1;
  }
  dist.heartbeat_timeout_ms = static_cast<unsigned>(worker_timeout);
  const std::int64_t accept_timeout = cli.get_int("accept-timeout-ms", 10000);
  if (accept_timeout <= 0) {
    std::fprintf(stderr, "error: --accept-timeout-ms must be positive\n");
    return 1;
  }
  dist.accept_timeout_ms = static_cast<unsigned>(accept_timeout);
  if (cli.has("shard")) {
    try {
      tbi::sim::parse_shard_spec(cli.get("shard", ""), &dist.shard_index,
                                 &dist.shard_count);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
    if (!cli.has("json")) {
      std::fprintf(stderr, "error: --shard needs --json (the shard's output is "
                           "its manifest)\n");
      return 1;
    }
  }
  dist.cancel = &g_cancel;
  if (cli.has("progress")) {
    dist.progress = [](const tbi::sim::SweepProgress& p) {
      std::fprintf(stderr, "\r%llu/%llu scenarios",
                   static_cast<unsigned long long>(p.completed),
                   static_cast<unsigned long long>(p.total));
      if (p.completed == p.total) std::fputc('\n', stderr);
    };
  }

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  tbi::sim::FerDistResult sweep;
  const auto wall_start = std::chrono::steady_clock::now();
  try {
    if (cli.has("merge-shards")) {
      // Reassemble shard manifests; the records then flow through the
      // exact same formatting path as a computed sweep, so the merged
      // document is byte-identical (under --stable-json) to an unsharded
      // run.
      std::vector<std::string> paths;
      const std::string spec = cli.get("merge-shards", "");
      for (std::size_t pos = 0; pos <= spec.size();) {
        const auto comma = spec.find(',', pos);
        const auto end = comma == std::string::npos ? spec.size() : comma;
        if (end > pos) paths.push_back(spec.substr(pos, end - pos));
        pos = end + 1;
      }
      sweep = tbi::sim::run_fer_merge_shards(grid, options, paths);
    } else {
      dist.faults = tbi::sim::FaultSpec::from_env();
      sweep = tbi::sim::run_fer_sweep_dist(grid, options, dist);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start)
          .count();
  const bool interrupted = sweep.stats.interrupted;
  std::uint64_t completed = 0;
  for (const bool d : sweep.done) completed += d ? 1 : 0;

  if (cli.has("json")) {
    // --stable-json drops everything that varies run to run (host timing,
    // machine load, process bookkeeping, worker topology), so clean,
    // fault-injected and resumed runs of one sweep are literally
    // diffable. The default document keeps it all for bench_compare.
    const bool stable = cli.has("stable-json");
    tbi::Json doc;
    doc["bench"] = "bench_fer";
    tbi::Json config;
    config["device"] = device;
    config["frames"] = static_cast<std::uint64_t>(options.base.frames);
    config["seed"] = options.sweep.base_seed;
    if (!stable) {
      config["threads"] = static_cast<std::uint64_t>(options.sweep.threads);
      config["workers"] = static_cast<std::uint64_t>(dist.workers);
      // Which GF(2^8) kernel dispatch picked (TBI_SIMD override included)
      // — lets bench_compare trend lines name the backend they measured.
      config["simd_backend"] =
          tbi::fec::gf256_backend_name(tbi::fec::gf256_active_backend());
    }
    if (options.frame_slices > 1) {
      config["frame_slices"] = static_cast<std::uint64_t>(options.frame_slices);
    }
    config["fade_prob"] = options.base.fade_fraction;
    config["burst_symbols"] = options.base.mean_burst_symbols;
    config["side"] = options.base.side;
    config["spb"] = options.base.symbols_per_burst;
    config["links"] = static_cast<std::uint64_t>(links);
    doc["config"] = config;
    if (!stable) {
      doc["wall_seconds"] = wall_seconds;
      doc["scenarios_per_second"] =
          wall_seconds > 0 ? static_cast<double>(completed) / wall_seconds : 0.0;
    }
    if (interrupted) {
      doc["interrupted"] = true;  // partial document: completed cells only
    }
    tbi::Json::Array rows;
    for (std::size_t i = 0; i < sweep.cells.size(); ++i) {
      if (!sweep.done[i]) continue;
      const auto& r = sweep.cells[i];
      tbi::Json row;
      row["interleaver"] = r.scenario.interleaver;
      row["channel"] = r.scenario.channel;
      row["rs_k"] = static_cast<std::uint64_t>(r.scenario.rs_k);
      if (r.scenario.links != 0) {
        row["links"] = static_cast<std::uint64_t>(r.scenario.links);
      }
      row["frame_symbols"] = r.result.frame_symbols;
      row["code_words"] = r.result.code_words;
      row["word_errors"] = r.result.word_errors;
      row["frame_errors"] = r.result.frame_errors;
      row["channel_symbol_errors"] = r.result.channel_symbol_errors;
      row["corrected_symbols"] = r.result.corrected_symbols;
      row["wer"] = r.result.word_error_rate();
      row["fer"] = r.result.frame_error_rate();
      // Perf counters (src/perf/counters.hpp): exact fields pin the
      // zero-allocation hot-path invariant, *_ns / *_per_second fields are
      // host timing and only band-checked by bench_compare.
      row["workspace_peak_bytes"] = r.result.workspace_peak_bytes;
      row["steady_allocations"] = r.result.steady_allocations;
      row["steady_frames"] = r.result.steady_frames;
      row["allocations_per_frame"] = r.result.allocations_per_frame();
      if (!stable) {
        row["host_ns"] = r.result.host_ns;
      }
      row["channel_symbols"] = r.result.channel_symbols;
      if (!stable) {
        row["channel_symbols_per_second"] = r.result.channel_symbols_per_second();
      }
      if (r.result.dram_ran) {
        row["dram_throughput_gbps"] = r.result.dram_throughput_gbps;
        row["dram_bursts"] = r.dram_bursts;
        if (!stable) {
          row["dram_sched_ns_per_pick"] = r.dram_sched_ns_per_pick;
        }
      }
      rows.push_back(row);
    }
    doc["records"] = rows;
    if (!stable) {
      doc["dsweep"] = sweep.stats.to_json();
      tbi::Json perf;
      perf["process_allocations"] = tbi::perf::process_alloc_count();
      doc["perf"] = perf;
    }
    if (!tbi::Json::write_file(cli.get("json", ""), doc)) {
      return 1;
    }
    // A completed shard's manifest IS its output (--merge-shards consumes
    // it), so only unsharded compute runs discard the checkpoint.
    if (!interrupted && !dist.manifest_path.empty() && dist.shard_count == 1 &&
        !cli.has("merge-shards")) {
      std::remove(dist.manifest_path.c_str());  // checkpoint served its purpose
    }
  }

  tbi::TextTable t("End-to-end FER on " + device + " (" +
                   std::to_string(options.base.frames) + " frames per scenario)");
  t.set_header({"Interleaver", "Channel", "Code", "Word Errors", "WER", "FER",
                "DRAM Gbit/s"});
  for (std::size_t i = 0; i < sweep.cells.size(); ++i) {
    if (!sweep.done[i]) continue;
    const auto& r = sweep.cells[i];
    char code[24], wer[24], fer[24], gbps[24];
    std::snprintf(code, sizeof code, "RS(255,%u)", r.scenario.rs_k);
    std::snprintf(wer, sizeof wer, "%.5f", r.result.word_error_rate());
    std::snprintf(fer, sizeof fer, "%.3f", r.result.frame_error_rate());
    if (r.result.dram_ran) {
      std::snprintf(gbps, sizeof gbps, "%.1f", r.result.dram_throughput_gbps);
    } else {
      std::snprintf(gbps, sizeof gbps, "-");
    }
    t.add_row({r.scenario.interleaver, r.scenario.channel, code,
               std::to_string(r.result.word_errors), wer, fer, gbps});
  }
  std::fputs(cli.has("markdown") ? t.render_markdown().c_str() : t.render().c_str(),
             stdout);
  if (interrupted) {
    std::fprintf(stderr,
                 "interrupted: %llu/%llu scenarios completed (checkpointed%s)\n",
                 static_cast<unsigned long long>(completed),
                 static_cast<unsigned long long>(sweep.cells.size()),
                 cli.has("json") ? "; rerun with --resume to finish" : "");
    return 130;
  }
  std::puts(
      "\nExpected shape: the memoryless bsc rows are interleaver-neutral;\n"
      "on the bursty channels the triangular interleaver turns frame losses\n"
      "into corrected words at the same channel error count. The two-stage\n"
      "rows stream spb x larger burst-granular frames (paper §II): at the\n"
      "paper's code rates (RS(255,223) and stronger) they hold the classic\n"
      "rows' protection despite seeing spb x more fades per frame, while\n"
      "the weakest code shows the residual cost of burst granularity.");
  return 0;
}
