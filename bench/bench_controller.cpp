/// \file bench_controller.cpp
/// Supplementary sweeps of controller design choices that the paper holds
/// fixed: scheduling policy, queue depth and the baseline's physical
/// address layout. These quantify how much of the row-major baseline's
/// behavior depends on controller quality rather than on the mapping —
/// and show that no realistic controller configuration rescues it.
///
/// Usage: bench_controller [--device NAME] [--max-bursts M] [--markdown]
///                         [--json FILE]
#include <chrono>
#include <cstdio>
#include <vector>

#include "common/cli.hpp"
#include "common/json.hpp"
#include "common/table.hpp"
#include "dram/standards.hpp"
#include "perf/counters.hpp"
#include "sim/runner.hpp"

namespace {

tbi::sim::InterleaverRun run_with(const tbi::dram::DeviceConfig& device,
                                  const std::string& mapping, unsigned queue,
                                  tbi::dram::ControllerConfig::Policy policy,
                                  std::uint64_t max_bursts) {
  tbi::sim::RunConfig rc;
  rc.device = device;
  rc.mapping_spec = mapping;
  rc.side = tbi::sim::paper_side_for(device);
  rc.max_bursts_per_phase = max_bursts;
  rc.controller.queue_depth = queue;
  rc.controller.policy = policy;
  return tbi::sim::run_interleaver(rc);
}

}  // namespace

int main(int argc, char** argv) {
  using Policy = tbi::dram::ControllerConfig::Policy;
  tbi::CliParser cli("bench_controller", "controller design-space sweeps");
  cli.add_option("device", "name", "device (default DDR4-3200)");
  cli.add_option("max-bursts", "count", "truncate phases for quick runs");
  cli.add_option("markdown", "", "print GitHub markdown");
  cli.add_option("json", "file", "write config + wall time + results as JSON");
  if (!cli.parse(argc, argv)) {
    std::fprintf(stderr, "error: %s\n%s", cli.error().c_str(), cli.usage().c_str());
    return 1;
  }
  if (cli.has("help")) {
    std::fputs(cli.usage().c_str(), stdout);
    return 0;
  }
  const auto* device = tbi::dram::find_config(cli.get("device", "DDR4-3200"));
  if (device == nullptr) {
    std::fprintf(stderr, "unknown device\n");
    return 1;
  }
  const auto max_bursts =
      static_cast<std::uint64_t>(cli.get_int("max-bursts", 0));
  const bool md = cli.has("markdown");

  const auto wall_start = std::chrono::steady_clock::now();
  tbi::Json::Array queue_rows, policy_rows, layout_rows;
  std::uint64_t total_bursts = 0;

  {
    tbi::TextTable t("Queue depth sweep on " + device->name +
                     " (FR-FCFS, min utilization)");
    t.set_header({"Queue Depth", "Row-Major", "Optimized"});
    for (unsigned q : {1u, 4u, 16u, 64u, 256u}) {
      const auto rm = run_with(*device, "row-major", q, Policy::FrFcfs, max_bursts);
      const auto opt = run_with(*device, "optimized", q, Policy::FrFcfs, max_bursts);
      t.add_row({std::to_string(q), tbi::TextTable::pct(rm.min_utilization()),
                 tbi::TextTable::pct(opt.min_utilization())});
      total_bursts += rm.write.stats.bursts + rm.read.stats.bursts +
                      opt.write.stats.bursts + opt.read.stats.bursts;
      tbi::Json row;
      row["queue_depth"] = static_cast<std::uint64_t>(q);
      row["row_major_min_utilization"] = rm.min_utilization();
      row["optimized_min_utilization"] = opt.min_utilization();
      row["bursts"] = rm.total_bursts() + opt.total_bursts();
      row["row_major_sched_ns_per_pick"] = rm.sched_ns_per_pick();
      row["optimized_sched_ns_per_pick"] = opt.sched_ns_per_pick();
      queue_rows.push_back(row);
    }
    std::fputs(md ? t.render_markdown().c_str() : t.render().c_str(), stdout);
    std::puts("");
  }

  {
    tbi::TextTable t("Scheduling policy on " + device->name + " (min utilization)");
    t.set_header({"Policy", "Row-Major", "Optimized"});
    for (auto [policy, name] :
         {std::pair{Policy::Fcfs, "FCFS"}, std::pair{Policy::FrFcfs, "FR-FCFS"}}) {
      const auto rm = run_with(*device, "row-major", 64, policy, max_bursts);
      const auto opt = run_with(*device, "optimized", 64, policy, max_bursts);
      t.add_row({name, tbi::TextTable::pct(rm.min_utilization()),
                 tbi::TextTable::pct(opt.min_utilization())});
      total_bursts += rm.write.stats.bursts + rm.read.stats.bursts +
                      opt.write.stats.bursts + opt.read.stats.bursts;
      tbi::Json row;
      row["policy"] = name;
      row["row_major_min_utilization"] = rm.min_utilization();
      row["optimized_min_utilization"] = opt.min_utilization();
      row["bursts"] = rm.total_bursts() + opt.total_bursts();
      row["row_major_sched_ns_per_pick"] = rm.sched_ns_per_pick();
      row["optimized_sched_ns_per_pick"] = opt.sched_ns_per_pick();
      policy_rows.push_back(row);
    }
    std::fputs(md ? t.render_markdown().c_str() : t.render().c_str(), stdout);
    std::puts("");
  }

  {
    tbi::TextTable t("Row-major baseline: physical address layout on " +
                     device->name);
    t.set_header({"Layout", "Write", "Read", "Min"});
    for (const char* spec : {"row-major", "row-major/robaco", "row-major/rocoba",
                             "row-major/xor"}) {
      const auto run = run_with(*device, spec, 64, Policy::FrFcfs, max_bursts);
      t.add_row({run.mapping_name,
                 tbi::TextTable::pct(run.write.stats.utilization()),
                 tbi::TextTable::pct(run.read.stats.utilization()),
                 tbi::TextTable::pct(run.min_utilization())});
      total_bursts += run.write.stats.bursts + run.read.stats.bursts;
      tbi::Json row;
      row["layout"] = run.mapping_name;
      row["write_utilization"] = run.write.stats.utilization();
      row["read_utilization"] = run.read.stats.utilization();
      row["min_utilization"] = run.min_utilization();
      row["bursts"] = run.total_bursts();
      row["sched_ns_per_pick"] = run.sched_ns_per_pick();
      layout_rows.push_back(row);
    }
    std::fputs(md ? t.render_markdown().c_str() : t.render().c_str(), stdout);
  }

  if (cli.has("json")) {
    const double wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start)
            .count();
    tbi::Json doc;
    doc["bench"] = "bench_controller";
    tbi::Json config;
    config["device"] = device->name;
    config["max_bursts"] = max_bursts;
    doc["config"] = config;
    doc["wall_seconds"] = wall_seconds;
    doc["simulated_bursts"] = total_bursts;
    doc["bursts_per_second"] =
        wall_seconds > 0 ? static_cast<double>(total_bursts) / wall_seconds : 0.0;
    doc["queue_depth_sweep"] = queue_rows;
    doc["policies"] = policy_rows;
    doc["layouts"] = layout_rows;
    tbi::Json perf;
    perf["process_allocations"] = tbi::perf::process_alloc_count();
    doc["perf"] = perf;
    if (!tbi::Json::write_file(cli.get("json", ""), doc)) {
      return 1;
    }
  }
  return 0;
}
