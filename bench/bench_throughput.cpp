/// \file bench_throughput.cpp
/// E8 — the paper's framing of the problem (§I): the interleaver
/// throughput is bounded by min(write, read) bandwidth, and a >100 Gbit/s
/// optical downlink therefore needs either the optimized mapping or a
/// heavily oversized DRAM configuration.
///
/// Prints the achievable interleaver throughput per device and mapping and
/// flags which (device, mapping) pairs clear the 100 Gbit/s requirement.
///
/// Usage: bench_throughput [--target-gbps G] [--max-bursts M] [--markdown]
///                         [--threads T] [--json FILE]
#include <chrono>
#include <cstdio>

#include "common/cli.hpp"
#include "common/json.hpp"
#include "common/table.hpp"
#include "dram/standards.hpp"
#include "perf/counters.hpp"
#include "sim/sweep.hpp"

int main(int argc, char** argv) {
  tbi::CliParser cli("bench_throughput",
                     "achievable interleaver throughput per configuration");
  cli.add_option("target-gbps", "G", "link requirement (default 100)");
  cli.add_option("max-bursts", "count", "truncate phases for quick runs");
  cli.add_option("markdown", "", "print GitHub markdown");
  cli.add_option("threads", "T", "sweep worker threads (default: all cores)");
  cli.add_option("json", "file", "write config + wall time + records as JSON");
  if (!cli.parse(argc, argv)) {
    std::fprintf(stderr, "error: %s\n%s", cli.error().c_str(), cli.usage().c_str());
    return 1;
  }
  if (cli.has("help")) {
    std::fputs(cli.usage().c_str(), stdout);
    return 0;
  }
  const double target = cli.get_double("target-gbps", 100.0);

  tbi::sim::BandwidthSweepOptions options;
  options.sweep.threads = static_cast<unsigned>(cli.get_int("threads", 0));
  options.max_bursts_per_phase =
      static_cast<std::uint64_t>(cli.get_int("max-bursts", 0));
  const auto grid = tbi::sim::SweepGrid::paper_bandwidth_grid();
  const auto wall_start = std::chrono::steady_clock::now();
  const auto records = tbi::sim::run_bandwidth_sweep(grid, options);
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start)
          .count();

  tbi::TextTable t("Achievable interleaver throughput (min of both phases)");
  t.set_header({"DRAM Configuration", "Peak", "Row-Major", "Optimized",
                "Row-Major OK?", "Optimized OK?"});

  // Records are device-major with the two mappings adjacent.
  for (std::size_t d = 0; d < grid.devices.size(); ++d) {
    const auto& device = records[2 * d].config.device;
    const double rm = records[2 * d].run.throughput_gbps(device.burst_bytes);
    const double opt = records[2 * d + 1].run.throughput_gbps(device.burst_bytes);

    // The interleaver writes AND reads every bit, so a link rate of G
    // needs G of write bandwidth and G of read bandwidth concurrently-ish;
    // with serialized phases the requirement per phase is 2G of the
    // device budget. We report the serialized-phase figure of merit
    // (min-phase bandwidth / 2) against the target.
    char peak[32], rms[32], opts[32];
    std::snprintf(peak, sizeof peak, "%.1f", device.peak_bandwidth_gbps());
    std::snprintf(rms, sizeof rms, "%.1f", rm);
    std::snprintf(opts, sizeof opts, "%.1f", opt);
    t.add_row({device.name, peak, rms, opts,
               rm / 2.0 >= target ? "yes" : "no",
               opt / 2.0 >= target ? "yes" : "no"});
  }
  std::fputs(cli.has("markdown") ? t.render_markdown().c_str() : t.render().c_str(),
             stdout);
  std::printf(
      "\nAll numbers in Gbit/s. OK? columns: half the min-phase bandwidth\n"
      "must clear the %.0f Gbit/s link (each bit is written and read).\n",
      target);

  if (cli.has("json")) {
    tbi::Json doc;
    doc["bench"] = "bench_throughput";
    tbi::Json config;
    config["target_gbps"] = target;
    config["max_bursts"] = options.max_bursts_per_phase;
    config["threads"] = static_cast<std::uint64_t>(options.sweep.threads);
    doc["config"] = config;
    doc["wall_seconds"] = wall_seconds;
    std::uint64_t total_bursts = 0;
    tbi::Json::Array rows;
    for (const auto& r : records) {
      const auto& device = r.config.device;
      tbi::Json row;
      row["device"] = device.name;
      row["mapping"] = r.run.mapping_name;
      row["peak_gbps"] = device.peak_bandwidth_gbps();
      row["write_gbps"] = r.run.write.stats.bandwidth_gbps(device.burst_bytes);
      row["read_gbps"] = r.run.read.stats.bandwidth_gbps(device.burst_bytes);
      row["throughput_gbps"] = r.run.throughput_gbps(device.burst_bytes);
      row["meets_target"] = r.run.throughput_gbps(device.burst_bytes) / 2.0 >= target;
      row["bursts"] = r.run.total_bursts();
      row["activates"] = r.run.total_activates();
      row["sched_ns_per_pick"] = r.run.sched_ns_per_pick();
      rows.push_back(row);
      total_bursts += r.run.write.stats.bursts + r.run.read.stats.bursts;
    }
    doc["records"] = rows;
    doc["simulated_bursts"] = total_bursts;
    doc["bursts_per_second"] =
        wall_seconds > 0 ? static_cast<double>(total_bursts) / wall_seconds : 0.0;
    tbi::Json perf;
    perf["process_allocations"] = tbi::perf::process_alloc_count();
    doc["perf"] = perf;
    if (!tbi::Json::write_file(cli.get("json", ""), doc)) {
      return 1;
    }
  }
  return 0;
}
