#include "channel/bsc.hpp"

#include <stdexcept>

namespace tbi::channel {

SymmetricChannel::SymmetricChannel(double error_probability, unsigned symbol_bits)
    : p_(error_probability), symbol_bits_(symbol_bits) {
  if (p_ < 0.0 || p_ > 1.0) {
    throw std::invalid_argument("SymmetricChannel: probability out of range");
  }
  if (symbol_bits_ == 0) {
    throw std::invalid_argument("SymmetricChannel: symbol_bits must be > 0");
  }
}

std::uint64_t SymmetricChannel::advance(std::uint8_t* data, std::uint64_t span,
                                        Rng& rng) {
  std::uint64_t corrupted = 0;
  for (std::uint64_t i = 0; i < span; ++i) {
    if (rng.bernoulli(p_)) {
      const std::uint8_t flip = corrupt_flip(symbol_bits_, rng);
      if (data != nullptr) data[i] ^= flip;
      ++corrupted;
    }
  }
  return corrupted;
}

}  // namespace tbi::channel
