#include "channel/bsc.hpp"

#include <stdexcept>

namespace tbi::channel {

SymmetricChannel::SymmetricChannel(double error_probability, unsigned symbol_bits)
    : p_(error_probability), symbol_bits_(symbol_bits) {
  if (p_ < 0.0 || p_ > 1.0) {
    throw std::invalid_argument("SymmetricChannel: probability out of range");
  }
  if (symbol_bits_ == 0) {
    throw std::invalid_argument("SymmetricChannel: symbol_bits must be > 0");
  }
}

std::uint64_t SymmetricChannel::apply(std::vector<std::uint8_t>& symbols, Rng& rng) {
  std::uint64_t corrupted = 0;
  for (auto& s : symbols) {
    if (rng.bernoulli(p_)) {
      corrupt_symbol(s, symbol_bits_, rng);
      ++corrupted;
    }
  }
  return corrupted;
}

}  // namespace tbi::channel
