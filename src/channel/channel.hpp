/// \file channel.hpp
/// Symbol-error channel model interface.
///
/// The paper motivates triangular interleaving with the optical LEO
/// downlink: long coherence time (> 2 ms) means errors arrive in very
/// long bursts. Real downlink traces are proprietary, so these synthetic
/// models reproduce the relevant statistics (DESIGN.md §5): a memoryless
/// BSC as control, a Gilbert-Elliott two-state burst channel, and a
/// correlated-fading LEO model with configurable coherence time.
///
/// Channels operate on *symbol* streams: apply() flips (XOR-corrupts)
/// symbols in place and returns the number of corrupted symbols.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace tbi::channel {

class Channel {
 public:
  virtual ~Channel() = default;

  /// Corrupt \p symbols in place; a corrupted symbol is XORed with a
  /// non-zero random value (so it is guaranteed to differ).
  /// Returns the number of corrupted symbols.
  virtual std::uint64_t apply(std::vector<std::uint8_t>& symbols, Rng& rng) = 0;

  virtual const char* name() const = 0;
};

/// Corrupt one symbol, guaranteeing a change in its low \p bits.
inline void corrupt_symbol(std::uint8_t& sym, unsigned bits, Rng& rng) {
  const std::uint64_t mask = (bits >= 8) ? 0xFF : ((1u << bits) - 1);
  std::uint8_t flip = 0;
  while (flip == 0) flip = static_cast<std::uint8_t>(rng.next_u64() & mask);
  sym ^= flip;
}

}  // namespace tbi::channel
