/// \file channel.hpp
/// Symbol-error channel model interface.
///
/// The paper motivates triangular interleaving with the optical LEO
/// downlink: long coherence time (> 2 ms) means errors arrive in very
/// long bursts. Real downlink traces are proprietary, so these synthetic
/// models reproduce the relevant statistics (DESIGN.md §5): a memoryless
/// BSC as control, a Gilbert-Elliott two-state burst channel, and a
/// correlated-fading LEO model with configurable coherence time.
///
/// Channels operate on *symbol* streams: apply() flips (XOR-corrupts)
/// symbols in place and returns the number of corrupted symbols.
///
/// Every channel is a deterministic state machine over a *wire position*
/// counter: symbol i of the stream is corrupted by a fixed function of
/// (parameters, RNG seed, the i-1 symbols before it). The one primitive a
/// subclass implements, advance(), walks a span of symbols either
/// corrupting a buffer or — with a null buffer — consuming the *identical*
/// RNG draws without writing. That second mode is the deterministic
/// skip-ahead behind apply_range(): a fresh channel can fast-forward to
/// any wire position and continue byte-identically to a sequential walk,
/// which is what lets range-addressable error sources (src/source/) hand
/// disjoint spans of one frame to independent workers.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"

namespace tbi::channel {

class Channel {
 public:
  virtual ~Channel() = default;

  /// Corrupt \p symbols in place; a corrupted symbol is XORed with a
  /// non-zero random value (so it is guaranteed to differ).
  /// Returns the number of corrupted symbols and advances position().
  std::uint64_t apply(std::vector<std::uint8_t>& symbols, Rng& rng) {
    return apply(std::span<std::uint8_t>(symbols), rng);
  }
  std::uint64_t apply(std::span<std::uint8_t> symbols, Rng& rng) {
    position_ += symbols.size();
    return advance(symbols.data(), symbols.size(), rng);
  }

  /// Fast-forward the channel over \p span symbols without observing any
  /// data: consumes exactly the RNG draws apply() would, so a subsequent
  /// apply() continues byte-identically to an uninterrupted sequential
  /// walk. Cost is RNG-only (no memory traffic); the LEO model skips
  /// un-faded power samples in O(1) per sample.
  void skip(std::uint64_t span, Rng& rng) {
    position_ += span;
    advance(nullptr, span, rng);
  }

  /// Counter-based random access: corrupt \p symbols as the wire range
  /// [start, start + symbols.size()). Requires start >= position() (the
  /// channel only runs forward; rewind by constructing a fresh instance
  /// and reseeding the RNG); the gap is crossed with skip(). Chunking a
  /// stream through apply_range at any boundaries is byte-identical to
  /// one sequential apply() over the whole stream (tested property).
  std::uint64_t apply_range(std::uint64_t start, std::span<std::uint8_t> symbols,
                            Rng& rng);

  /// Wire position of the next symbol apply()/skip() will consume.
  std::uint64_t position() const { return position_; }

  virtual const char* name() const = 0;

 protected:
  /// The one subclass primitive: walk \p span symbols of the wire. When
  /// \p data is non-null, XOR-corrupt data[0..span); when null, draw the
  /// identical RNG sequence without writing (skip mode). Returns the
  /// number of (would-be) corrupted symbols.
  virtual std::uint64_t advance(std::uint8_t* data, std::uint64_t span,
                                Rng& rng) = 0;

 private:
  std::uint64_t position_ = 0;
};

/// Random non-zero flip mask confined to the low \p bits. Drawing (and
/// discarding) this in skip mode is what keeps the RNG stream aligned
/// with the corrupting walk.
inline std::uint8_t corrupt_flip(unsigned bits, Rng& rng) {
  const std::uint64_t mask = (bits >= 8) ? 0xFF : ((1u << bits) - 1);
  std::uint8_t flip = 0;
  while (flip == 0) flip = static_cast<std::uint8_t>(rng.next_u64() & mask);
  return flip;
}

/// Corrupt one symbol, guaranteeing a change in its low \p bits.
inline void corrupt_symbol(std::uint8_t& sym, unsigned bits, Rng& rng) {
  sym ^= corrupt_flip(bits, rng);
}

}  // namespace tbi::channel
