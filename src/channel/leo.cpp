#include "channel/leo.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tbi::channel {

namespace {

/// Inverse standard-normal CDF (Acklam's rational approximation); enough
/// precision to position the fade threshold for a target duty cycle.
double inv_norm_cdf(double p) {
  if (p <= 0.0 || p >= 1.0) throw std::invalid_argument("inv_norm_cdf: p in (0,1)");
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425;
  if (p < plow) {
    const double q = std::sqrt(-2 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  if (p > 1 - plow) {
    const double q = std::sqrt(-2 * std::log(1 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  const double q = p - 0.5;
  const double r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1);
}

}  // namespace

LeoFadingChannel::LeoFadingChannel(LeoChannelParams params) : params_(params) {
  if (params_.symbol_rate_hz <= 0 || params_.coherence_time_s <= 0 ||
      params_.symbols_per_sample == 0) {
    throw std::invalid_argument("LeoFadingChannel: bad parameters");
  }
  if (params_.fade_probability <= 0.0 || params_.fade_probability >= 1.0) {
    throw std::invalid_argument("LeoFadingChannel: fade_probability in (0,1)");
  }
  const double samples_per_coherence =
      params_.coherence_time_s * params_.symbol_rate_hz /
      static_cast<double>(params_.symbols_per_sample);
  rho_ = std::exp(-1.0 / samples_per_coherence);
  threshold_ = inv_norm_cdf(params_.fade_probability);
}

double LeoFadingChannel::next_gaussian(Rng& rng) {
  // Marsaglia polar method with spare caching.
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u, v, s;
  do {
    u = 2.0 * rng.uniform_double() - 1.0;
    v = 2.0 * rng.uniform_double() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double m = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * m;
  has_spare_ = true;
  return u * m;
}

std::uint64_t LeoFadingChannel::advance(std::uint8_t* data, std::uint64_t span,
                                        Rng& rng) {
  std::uint64_t corrupted = 0;
  const double sigma = std::sqrt(1.0 - rho_ * rho_);
  std::uint64_t k = 0;
  while (k < span) {
    if (sample_phase_ == 0) {
      if (started_) {
        state_ = rho_ * state_ + sigma * next_gaussian(rng);
      } else {
        // Stationary start: the process is unit-variance in steady state,
        // so the very first sample comes from N(0,1) — not from the
        // zero-variance median, which under-fades the first coherence
        // time of every stream.
        state_ = next_gaussian(rng);
        started_ = true;
      }
      faded_ = state_ < threshold_;
    }
    const std::uint64_t take = std::min(
        span - k,
        static_cast<std::uint64_t>(params_.symbols_per_sample - sample_phase_));
    if (faded_) {
      // The per-symbol draws only exist inside fades, so skip mode
      // (data == nullptr) crosses every clean sample window for free.
      for (std::uint64_t i = k; i < k + take; ++i) {
        if (rng.bernoulli(params_.fade_depth_error_rate)) {
          const std::uint8_t flip = corrupt_flip(params_.symbol_bits, rng);
          if (data != nullptr) data[i] ^= flip;
          ++corrupted;
        }
      }
    }
    sample_phase_ = static_cast<unsigned>(
        (sample_phase_ + take) % params_.symbols_per_sample);
    k += take;
  }
  return corrupted;
}

}  // namespace tbi::channel
