/// \file bsc.hpp
/// Memoryless binary/symbol-symmetric channel: each symbol independently
/// corrupted with probability p. Control case for the interleaving
/// experiments (an interleaver cannot help or hurt a memoryless channel).
#pragma once

#include "channel/channel.hpp"

namespace tbi::channel {

class SymmetricChannel final : public Channel {
 public:
  SymmetricChannel(double error_probability, unsigned symbol_bits);

  const char* name() const override { return "symmetric"; }

  double error_probability() const { return p_; }

 protected:
  std::uint64_t advance(std::uint8_t* data, std::uint64_t span, Rng& rng) override;

 private:
  double p_;
  unsigned symbol_bits_;
};

}  // namespace tbi::channel
