#include "channel/gilbert_elliott.hpp"

#include <stdexcept>

namespace tbi::channel {

GilbertElliottParams GilbertElliottParams::from_burst_profile(
    double mean_burst_symbols, double bad_fraction, double error_bad,
    unsigned symbol_bits) {
  if (mean_burst_symbols < 1.0 || bad_fraction <= 0.0 || bad_fraction >= 1.0) {
    throw std::invalid_argument("GilbertElliottParams: bad burst profile");
  }
  GilbertElliottParams p;
  p.p_bg = 1.0 / mean_burst_symbols;
  // stationary bad fraction = p_gb / (p_gb + p_bg)
  p.p_gb = p.p_bg * bad_fraction / (1.0 - bad_fraction);
  p.error_good = 0.0;
  p.error_bad = error_bad;
  p.symbol_bits = symbol_bits;
  return p;
}

GilbertElliottChannel::GilbertElliottChannel(GilbertElliottParams params)
    : params_(params) {
  auto check01 = [](double v) { return v >= 0.0 && v <= 1.0; };
  if (!check01(params_.p_gb) || !check01(params_.p_bg) ||
      !check01(params_.error_good) || !check01(params_.error_bad)) {
    throw std::invalid_argument("GilbertElliottChannel: probability out of range");
  }
}

double GilbertElliottChannel::stationary_bad() const {
  const double denom = params_.p_gb + params_.p_bg;
  return denom > 0.0 ? params_.p_gb / denom : 0.0;
}

std::uint64_t GilbertElliottChannel::advance(std::uint8_t* data,
                                             std::uint64_t span, Rng& rng) {
  std::uint64_t corrupted = 0;
  for (std::uint64_t i = 0; i < span; ++i) {
    if (bad_) {
      if (rng.bernoulli(params_.p_bg)) bad_ = false;
    } else {
      if (rng.bernoulli(params_.p_gb)) bad_ = true;
    }
    const double p = bad_ ? params_.error_bad : params_.error_good;
    if (p > 0.0 && rng.bernoulli(p)) {
      const std::uint8_t flip = corrupt_flip(params_.symbol_bits, rng);
      if (data != nullptr) data[i] ^= flip;
      ++corrupted;
    }
  }
  return corrupted;
}

}  // namespace tbi::channel
