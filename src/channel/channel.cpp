#include "channel/channel.hpp"

#include <stdexcept>
#include <string>

namespace tbi::channel {

std::uint64_t Channel::apply_range(std::uint64_t start,
                                   std::span<std::uint8_t> symbols, Rng& rng) {
  if (start < position_) {
    throw std::logic_error(
        std::string("Channel::apply_range: start ") + std::to_string(start) +
        " is behind position " + std::to_string(position_) +
        " — channels only run forward; rewind with a fresh instance");
  }
  if (start > position_) skip(start - position_, rng);
  return apply(symbols, rng);
}

}  // namespace tbi::channel
