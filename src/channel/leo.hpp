/// \file leo.hpp
/// Correlated-fading optical LEO downlink model.
///
/// Free-space optical links from LEO satellites fade slowly relative to
/// the symbol rate: the channel coherence time exceeds 2 ms (paper §I)
/// while a >100 Gbit/s link moves tens of millions of symbols in that
/// window. This model evolves a log-normal-ish received-power process as
/// a first-order autoregressive (AR(1)) sequence sampled once per
/// `symbols_per_sample` symbols and erases/corrupts symbols whenever the
/// power drops below threshold — producing the long, smooth error bursts
/// the triangular interleaver exists to break up.
#pragma once

#include "channel/channel.hpp"

namespace tbi::channel {

struct LeoChannelParams {
  double symbol_rate_hz = 50e9;      ///< symbols per second on the link
  double coherence_time_s = 2e-3;    ///< AR(1) correlation time constant
  double fade_probability = 0.05;    ///< stationary fraction of faded time
  double fade_depth_error_rate = 0.5;///< symbol error rate while faded
  unsigned symbol_bits = 3;
  unsigned symbols_per_sample = 4096;///< power-process sampling stride
};

class LeoFadingChannel final : public Channel {
 public:
  explicit LeoFadingChannel(LeoChannelParams params);

  const char* name() const override { return "leo-fading"; }

  const LeoChannelParams& params() const { return params_; }

  /// AR(1) coefficient per sample, derived from coherence time.
  double rho() const { return rho_; }
  /// Fade threshold on the unit-variance Gaussian power proxy.
  double threshold() const { return threshold_; }

 protected:
  /// Skip mode (data == nullptr) is where the LEO model's skip-ahead is
  /// genuinely fast: an un-faded power sample consumes no per-symbol
  /// draws at all, so crossing a clean span costs O(1) per
  /// symbols_per_sample window — only faded stretches (the configured few
  /// percent) are walked symbol by symbol.
  std::uint64_t advance(std::uint8_t* data, std::uint64_t span, Rng& rng) override;

 private:
  double next_gaussian(Rng& rng);

  LeoChannelParams params_;
  double rho_;
  double threshold_;
  double state_ = 0.0;
  /// False until the first power sample. The AR(1) recurrence is
  /// variance-preserving only from a stationary start, so the first
  /// sample is drawn from N(0,1) directly; seeding state_ = 0 (the
  /// median, with zero variance) would bias short streams fade-free for
  /// the first ~coherence time.
  bool started_ = false;
  bool faded_ = false;
  /// Symbols already consumed of the current power sample. Carrying the
  /// phase across apply() calls makes the fading process continuous in
  /// symbol time, so splitting a stream into chunks of any size yields
  /// the identical corruption pattern (the streaming pipeline relies on
  /// this).
  unsigned sample_phase_ = 0;
  bool has_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace tbi::channel
