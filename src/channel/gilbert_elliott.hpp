/// \file gilbert_elliott.hpp
/// Gilbert-Elliott two-state Markov burst-error channel.
///
/// State G(ood) and B(ad) with per-symbol transition probabilities; each
/// state corrupts symbols with its own error rate. Expected burst length
/// is 1/p_bg symbols, so the LEO-scale bursts of the paper (milliseconds
/// at >100 Gbit/s, i.e. millions of symbols) are configured directly from
/// the desired mean burst length.
#pragma once

#include "channel/channel.hpp"

namespace tbi::channel {

struct GilbertElliottParams {
  double p_gb = 1e-5;      ///< P(Good -> Bad) per symbol
  double p_bg = 1e-3;      ///< P(Bad -> Good) per symbol; mean burst = 1/p_bg
  double error_good = 0.0; ///< symbol error rate in Good
  double error_bad = 0.5;  ///< symbol error rate in Bad
  unsigned symbol_bits = 3;

  /// Convenience: configure from mean burst length and duty cycle.
  static GilbertElliottParams from_burst_profile(double mean_burst_symbols,
                                                 double bad_fraction,
                                                 double error_bad,
                                                 unsigned symbol_bits);
};

class GilbertElliottChannel final : public Channel {
 public:
  explicit GilbertElliottChannel(GilbertElliottParams params);

  const char* name() const override { return "gilbert-elliott"; }

  const GilbertElliottParams& params() const { return params_; }

  /// Stationary probability of being in the Bad state.
  double stationary_bad() const;

 protected:
  std::uint64_t advance(std::uint8_t* data, std::uint64_t span, Rng& rng) override;

 private:
  GilbertElliottParams params_;
  bool bad_ = false;
};

}  // namespace tbi::channel
