#include "dram/timing.hpp"

#include <stdexcept>
#include <string>

namespace tbi::dram {

namespace {
void require(bool cond, const std::string& what) {
  if (!cond) throw std::invalid_argument("TimingParams: " + what);
}
}  // namespace

void TimingParams::validate() const {
  require(tCK > 0, "tCK must be positive");
  require(CL > 0 && CWL > 0, "CAS latencies must be positive");
  require(tRCD > 0 && tRP > 0 && tRAS > 0, "row timings must be positive");
  require(tRC >= tRAS + tRP, "tRC must cover tRAS + tRP");
  require(tRAS >= tRCD, "tRAS must cover tRCD");
  require(tRRD_L >= tRRD_S, "tRRD_L must be >= tRRD_S");
  require(tFAW >= tRRD_S, "tFAW must be >= tRRD_S");
  require(tCCD_L >= tCCD_S, "tCCD_L must be >= tCCD_S");
  require(tCCD_S > 0, "tCCD_S must be positive");
  require(tRTP > 0 && tWR > 0, "read/write recovery must be positive");
  require(tREFI == 0 || tRFC_ab > 0, "refresh enabled needs tRFC_ab");
  require(tREFI == 0 || tREFI > tRFC_ab, "tREFI must exceed tRFC_ab");
}

}  // namespace tbi::dram
