#include "dram/controller.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace tbi::dram {

namespace {

RefreshMode effective_refresh_mode(const DeviceConfig& dev,
                                   const ControllerConfig& cfg) {
  if (cfg.use_device_default_refresh) return dev.default_refresh;
  return cfg.refresh_mode;
}

}  // namespace

Controller::Controller(DeviceConfig device, ControllerConfig config)
    : device_(std::move(device)),
      config_(config),
      refresh_mode_(effective_refresh_mode(device_, config)) {
  device_.validate();
  if (config_.queue_depth == 0) {
    throw std::invalid_argument("Controller: queue_depth must be > 0");
  }
  banks_.resize(device_.banks);
  last_act_in_group_.assign(device_.bank_groups, kNegInf);
  last_cas_in_group_.assign(device_.bank_groups, kNegInf);

  switch (refresh_mode_) {
    case RefreshMode::Disabled:
      refresh_interval_ = 0;
      refresh_groups_ = 1;
      break;
    case RefreshMode::AllBank:
      refresh_interval_ = device_.timing.tREFI;
      refresh_groups_ = 1;
      break;
    case RefreshMode::PerBank:
      refresh_groups_ = device_.banks;
      refresh_interval_ = device_.timing.tREFI / refresh_groups_;
      break;
    case RefreshMode::SameBank:
      refresh_groups_ = device_.banks_per_group();
      refresh_interval_ = device_.timing.tREFI / refresh_groups_;
      break;
  }
  // A refresh cadence whose command interval is not clearly longer than
  // the refresh cycle time can never keep up — the backlog grows without
  // bound (e.g. hypothetical DDR5 per-bank refresh: tREFI/32 < tRFCpb,
  // which is why the standard only defines REFsb). Reject it up front.
  if (refresh_mode_ != RefreshMode::Disabled) {
    const Ps cycle = refresh_mode_ == RefreshMode::AllBank
                         ? device_.timing.tRFC_ab
                         : device_.timing.tRFC_grp;
    if (refresh_interval_ <= cycle) {
      throw std::invalid_argument("Controller: refresh mode " +
                                  std::string(to_string(refresh_mode_)) +
                                  " is unsustainable on " + device_.name);
    }
  }
  next_refresh_ = refresh_interval_;
}

void Controller::emit(const Command& cmd) {
  if (observer_ != nullptr) observer_->on_command(cmd);
}

RowBufferResult Controller::classify(const Request& req) const {
  const Bank& b = banks_[req.addr.bank];
  if (!b.open) return RowBufferResult::Miss;
  return b.row == req.addr.row ? RowBufferResult::Hit : RowBufferResult::Conflict;
}

Ps Controller::earliest_act_after(Ps floor, std::uint32_t bank_id) const {
  const unsigned bg = bank_id % device_.bank_groups;
  Ps t = floor;
  t = std::max(t, last_act_any_ + device_.timing.tRRD_S);
  t = std::max(t, last_act_in_group_[bg] + device_.timing.tRRD_L);
  if (faw_window_.size() == 4) {
    t = std::max(t, faw_window_.front() + device_.timing.tFAW);
  }
  return t;
}

Controller::Plan Controller::plan_request(const Request& req) const {
  const std::uint32_t bank_id = req.addr.bank;
  const unsigned bg = bank_id % device_.bank_groups;
  const Bank& b = banks_[bank_id];
  const TimingParams& t = device_.timing;

  Plan plan;
  plan.kind = classify(req);

  Ps rdwr_ready = b.rdwr_ready;
  switch (plan.kind) {
    case RowBufferResult::Hit:
      break;
    case RowBufferResult::Miss: {
      plan.act_t = earliest_act_after(b.act_ready, bank_id);
      rdwr_ready = plan.act_t + t.tRCD;
      break;
    }
    case RowBufferResult::Conflict: {
      plan.pre_t = std::max(b.pre_ready, b.last_act + t.tRAS);
      const Ps act_floor = std::max(b.act_ready, plan.pre_t + t.tRP);
      plan.act_t = earliest_act_after(act_floor, bank_id);
      rdwr_ready = plan.act_t + t.tRCD;
      break;
    }
  }

  Ps cas_t = rdwr_ready;
  cas_t = std::max(cas_t, last_cas_any_ + t.tCCD_S);
  cas_t = std::max(cas_t, last_cas_in_group_[bg] + t.tCCD_L);
  if (!req.is_write) {
    cas_t = std::max(cas_t, last_wr_data_end_ + t.tWTR);  // rank-level W->R
  }

  const Ps cas_latency = req.is_write ? t.CWL : t.CL;
  Ps data_start = cas_t + cas_latency;
  Ps bus_ready = bus_free_;
  if (req.is_write && !last_burst_was_write_) {
    bus_ready = std::max(bus_ready, last_rd_data_end_ + t.tRTW_bubble);
  }
  if (data_start < bus_ready) {
    cas_t += bus_ready - data_start;
    data_start = bus_ready;
  }

  plan.cas_t = cas_t;
  plan.data_start = data_start;
  plan.data_end = data_start + device_.burst_time;
  return plan;
}

Ps Controller::close_bank(std::uint32_t bank_id, PhaseStats& stats) {
  Bank& b = banks_[bank_id];
  assert(b.open);
  const Ps pre_t = std::max(b.pre_ready, b.last_act + device_.timing.tRAS);
  b.open = false;
  b.act_ready = std::max(b.act_ready, pre_t + device_.timing.tRP);
  b.ref_ready = std::max(b.ref_ready, pre_t + device_.timing.tRP);
  ++stats.precharges;
  emit(Command{.kind = CommandKind::Pre, .issue = pre_t, .bank = bank_id});
  return pre_t;
}

void Controller::note_act_rate(Ps t, unsigned bank_group) {
  last_act_any_ = t;
  last_act_in_group_[bank_group] = t;
  faw_window_.push_back(t);
  if (faw_window_.size() > 4) faw_window_.pop_front();
}

void Controller::commit(const Request& req, const Plan& plan, PhaseStats& stats) {
  const std::uint32_t bank_id = req.addr.bank;
  const unsigned bg = bank_id % device_.bank_groups;
  Bank& b = banks_[bank_id];
  const TimingParams& t = device_.timing;

  switch (plan.kind) {
    case RowBufferResult::Hit:
      ++stats.row_hits;
      break;
    case RowBufferResult::Conflict: {
      ++stats.row_conflicts;
      b.open = false;
      b.act_ready = std::max(b.act_ready, plan.pre_t + t.tRP);
      b.ref_ready = std::max(b.ref_ready, plan.pre_t + t.tRP);
      ++stats.precharges;
      emit(Command{.kind = CommandKind::Pre, .issue = plan.pre_t, .bank = bank_id});
      [[fallthrough]];
    }
    case RowBufferResult::Miss: {
      if (plan.kind == RowBufferResult::Miss) ++stats.row_misses;
      b.open = true;
      b.row = req.addr.row;
      b.last_act = plan.act_t;
      b.act_ready = plan.act_t + t.tRC;
      b.rdwr_ready = plan.act_t + t.tRCD;
      b.pre_ready = plan.act_t + t.tRAS;
      note_act_rate(plan.act_t, bg);
      ++stats.activates;
      emit(Command{.kind = CommandKind::Act, .issue = plan.act_t, .bank = bank_id,
                   .row = req.addr.row});
      break;
    }
  }

  last_cas_any_ = plan.cas_t;
  last_cas_in_group_[bg] = plan.cas_t;
  bus_free_ = plan.data_end;
  last_burst_was_write_ = req.is_write;
  if (req.is_write) {
    last_wr_data_end_ = plan.data_end;
    b.pre_ready = std::max(b.pre_ready, plan.data_end + t.tWR);
    ++stats.writes;
  } else {
    last_rd_data_end_ = plan.data_end;
    b.pre_ready = std::max(b.pre_ready, plan.cas_t + t.tRTP);
    ++stats.reads;
  }

  ++stats.bursts;
  stats.busy += device_.burst_time;
  if (stats.bursts == 1) stats.start = plan.data_start;
  stats.end = plan.data_end;
  now_ = std::max(now_, plan.data_end);

  emit(Command{.kind = req.is_write ? CommandKind::Wr : CommandKind::Rd,
               .issue = plan.cas_t,
               .bank = bank_id,
               .row = req.addr.row,
               .column = req.addr.column,
               .data_start = plan.data_start,
               .data_end = plan.data_end});
}

std::size_t Controller::pick_request() const {
  assert(!queue_.empty());
  if (config_.policy == ControllerConfig::Policy::Fcfs) return 0;

  // Earliest-data-slot greedy (see ControllerConfig::Policy). data_start
  // can never precede the current bus_free_, so a request landing exactly
  // there is unbeatable and ends the scan early; ties resolve to the
  // oldest request because the queue is scanned in arrival order.
  std::size_t best = 0;
  Ps best_slot = std::numeric_limits<Ps>::max();
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    const Ps slot = plan_request(queue_[i]).data_start;
    if (slot < best_slot) {
      best_slot = slot;
      best = i;
      if (slot <= bus_free_) break;
    }
  }
  return best;
}

void Controller::do_refresh(PhaseStats& stats) {
  const TimingParams& t = device_.timing;
  Ps ready = next_refresh_;

  if (refresh_mode_ == RefreshMode::AllBank) {
    for (std::uint32_t i = 0; i < device_.banks; ++i) {
      if (banks_[i].open) close_bank(i, stats);
      ready = std::max(ready, banks_[i].ref_ready);
    }
    ready = std::max(ready, last_refresh_ + t.tRFC_ab);
    for (auto& b : banks_) {
      b.act_ready = std::max(b.act_ready, ready + t.tRFC_ab);
    }
    emit(Command{.kind = CommandKind::RefAb, .issue = ready});
  } else {
    // Per-bank / same-bank rotation group.
    const unsigned group = next_refresh_group_;
    auto is_member = [&](std::uint32_t i) {
      return (refresh_mode_ == RefreshMode::PerBank)
                 ? (i == group)
                 : (i / device_.bank_groups == group);
    };
    for (std::uint32_t i = 0; i < device_.banks; ++i) {
      if (!is_member(i)) continue;
      if (banks_[i].open) close_bank(i, stats);
      ready = std::max(ready, banks_[i].ref_ready);
    }
    ready = std::max(ready, last_refresh_ + t.tRFC_grp);
    for (std::uint32_t i = 0; i < device_.banks; ++i) {
      if (is_member(i)) {
        banks_[i].act_ready = std::max(banks_[i].act_ready, ready + t.tRFC_grp);
      }
    }
    emit(Command{.kind = CommandKind::RefGrp, .issue = ready, .bank = group});
    next_refresh_group_ = (next_refresh_group_ + 1) % refresh_groups_;
  }

  last_refresh_ = ready;
  ++stats.refreshes;
  next_refresh_ += refresh_interval_;
}

void Controller::refresh_if_due(PhaseStats& stats) {
  if (refresh_mode_ == RefreshMode::Disabled) return;
  while (next_refresh_ <= now_) do_refresh(stats);
}

PhaseStats Controller::run_phase(RequestStream& stream, std::string label) {
  PhaseStats stats;
  stats.label = std::move(label);

  auto refill = [&] {
    Request r;
    while (queue_.size() < config_.queue_depth && stream.next(r)) {
      r.seq = next_seq_++;
      if (r.addr.bank >= device_.banks || r.addr.row >= device_.rows_per_bank ||
          r.addr.column >= device_.columns_per_page) {
        throw std::out_of_range("Controller: request address outside device");
      }
      queue_.push_back(r);
    }
  };

  refill();
  while (!queue_.empty()) {
    refresh_if_due(stats);
    const std::size_t idx = pick_request();
    const Request req = queue_[idx];
    const Plan plan = plan_request(req);
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(idx));
    commit(req, plan, stats);
    refill();
  }
  return stats;
}

}  // namespace tbi::dram
