#include "dram/controller.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <stdexcept>

#include "perf/counters.hpp"

namespace tbi::dram {

namespace {

RefreshMode effective_refresh_mode(const DeviceConfig& dev,
                                   const ControllerConfig& cfg) {
  if (cfg.use_device_default_refresh) return dev.default_refresh;
  return cfg.refresh_mode;
}

}  // namespace

Controller::Controller(DeviceConfig device, ControllerConfig config)
    : device_(std::move(device)),
      config_(config),
      refresh_mode_(effective_refresh_mode(device_, config)) {
  device_.validate();
  if (config_.queue_depth == 0) {
    throw std::invalid_argument("Controller: queue_depth must be > 0");
  }
  banks_.resize(device_.banks);
  last_act_in_group_.assign(device_.bank_groups, kNegInf);
  last_cas_in_group_.assign(device_.bank_groups, kNegInf);
  group_of_.resize(device_.banks);
  for (std::uint32_t b = 0; b < device_.banks; ++b) {
    group_of_[b] = b % device_.bank_groups;
  }
  queued_per_group_.assign(device_.bank_groups, {0, 0});

  slots_.resize(config_.queue_depth);
  free_slots_.reserve(config_.queue_depth);
  for (std::uint32_t id = config_.queue_depth; id-- > 0;) free_slots_.push_back(id);
  fifo_next_.assign(config_.queue_depth, kNoSlot);
  fifo_prev_.assign(config_.queue_depth, kNoSlot);
  bank_next_.assign(config_.queue_depth, kNoSlot);
  bank_prev_.assign(config_.queue_depth, kNoSlot);
  bins_.resize(device_.banks);
  populated_.assign((device_.banks + 63) / 64, 0);
  std::size_t table = 64;
  while (table < static_cast<std::size_t>(config_.queue_depth) * 4) table *= 2;
  row_counts_.assign(table, RowCountEntry{});
  row_mask_ = table - 1;

  switch (refresh_mode_) {
    case RefreshMode::Disabled:
      refresh_interval_ = 0;
      refresh_groups_ = 1;
      break;
    case RefreshMode::AllBank:
      refresh_interval_ = device_.timing.tREFI;
      refresh_groups_ = 1;
      break;
    case RefreshMode::PerBank:
      refresh_groups_ = device_.banks;
      refresh_interval_ = device_.timing.tREFI / refresh_groups_;
      break;
    case RefreshMode::SameBank:
      refresh_groups_ = device_.banks_per_group();
      refresh_interval_ = device_.timing.tREFI / refresh_groups_;
      break;
  }
  // A refresh cadence whose command interval is not clearly longer than
  // the refresh cycle time can never keep up — the backlog grows without
  // bound (e.g. hypothetical DDR5 per-bank refresh: tREFI/32 < tRFCpb,
  // which is why the standard only defines REFsb). Reject it up front.
  if (refresh_mode_ != RefreshMode::Disabled) {
    const Ps cycle = refresh_mode_ == RefreshMode::AllBank
                         ? device_.timing.tRFC_ab
                         : device_.timing.tRFC_grp;
    if (refresh_interval_ <= cycle) {
      throw std::invalid_argument("Controller: refresh mode " +
                                  std::string(to_string(refresh_mode_)) +
                                  " is unsustainable on " + device_.name);
    }
  }
  next_refresh_ = refresh_interval_;
}

void Controller::emit(const Command& cmd) {
  if (observer_ != nullptr) observer_->on_command(cmd);
}

RowBufferResult Controller::classify(const Request& req) const {
  const Bank& b = banks_[req.addr.bank];
  if (!b.open) return RowBufferResult::Miss;
  return b.row == req.addr.row ? RowBufferResult::Hit : RowBufferResult::Conflict;
}

Ps Controller::earliest_act_after(Ps floor, std::uint32_t bank_id) const {
  const unsigned bg = group_of_[bank_id];
  Ps t = floor;
  t = std::max(t, last_act_any_ + device_.timing.tRRD_S);
  t = std::max(t, last_act_in_group_[bg] + device_.timing.tRRD_L);
  if (faw_len_ == 4) {
    t = std::max(t, faw_[faw_head_] + device_.timing.tFAW);
  }
  return t;
}

Controller::Plan Controller::plan_class(std::uint32_t bank_id, RowBufferResult kind,
                                        bool is_write) const {
  const unsigned bg = group_of_[bank_id];
  const Bank& b = banks_[bank_id];
  const TimingParams& t = device_.timing;

  Plan plan;
  plan.kind = kind;

  Ps rdwr_ready = b.rdwr_ready;
  switch (kind) {
    case RowBufferResult::Hit:
      break;
    case RowBufferResult::Miss: {
      plan.act_t = earliest_act_after(b.act_ready, bank_id);
      rdwr_ready = plan.act_t + t.tRCD;
      break;
    }
    case RowBufferResult::Conflict: {
      plan.pre_t = std::max(b.pre_ready, b.last_act + t.tRAS);
      const Ps act_floor = std::max(b.act_ready, plan.pre_t + t.tRP);
      plan.act_t = earliest_act_after(act_floor, bank_id);
      rdwr_ready = plan.act_t + t.tRCD;
      break;
    }
  }

  Ps cas_t = rdwr_ready;
  cas_t = std::max(cas_t, last_cas_any_ + t.tCCD_S);
  cas_t = std::max(cas_t, last_cas_in_group_[bg] + t.tCCD_L);
  if (!is_write) {
    cas_t = std::max(cas_t, last_wr_data_end_ + t.tWTR);  // rank-level W->R
  }

  const Ps cas_latency = is_write ? t.CWL : t.CL;
  Ps data_start = cas_t + cas_latency;
  Ps bus_ready = bus_free_;
  if (is_write && !last_burst_was_write_) {
    bus_ready = std::max(bus_ready, last_rd_data_end_ + t.tRTW_bubble);
  }
  if (data_start < bus_ready) {
    cas_t += bus_ready - data_start;
    data_start = bus_ready;
  }

  plan.cas_t = cas_t;
  plan.data_start = data_start;
  plan.data_end = data_start + device_.burst_time;
  return plan;
}

Ps Controller::eval_class(std::uint32_t bank_id, RowBufferResult kind,
                          bool is_write) const {
  // Mirrors plan_class() but folds straight to data_start:
  //   data_start = max(cas_t + latency, bus_ready)
  // with cas_t the max of the bank-chain, CAS-rate and W->R floors.
  const unsigned bg = group_of_[bank_id];
  const Bank& b = banks_[bank_id];
  const TimingParams& t = device_.timing;

  Ps rdwr_ready = b.rdwr_ready;
  switch (kind) {
    case RowBufferResult::Hit:
      break;
    case RowBufferResult::Miss:
      rdwr_ready = earliest_act_after(b.act_ready, bank_id) + t.tRCD;
      break;
    case RowBufferResult::Conflict: {
      const Ps pre_t = std::max(b.pre_ready, b.last_act + t.tRAS);
      const Ps act_floor = std::max(b.act_ready, pre_t + t.tRP);
      rdwr_ready = earliest_act_after(act_floor, bank_id) + t.tRCD;
      break;
    }
  }

  Ps cas_t = std::max(rdwr_ready, last_cas_any_ + t.tCCD_S);
  cas_t = std::max(cas_t, last_cas_in_group_[bg] + t.tCCD_L);
  Ps bus_ready = bus_free_;
  if (is_write) {
    if (!last_burst_was_write_) {
      bus_ready = std::max(bus_ready, last_rd_data_end_ + t.tRTW_bubble);
    }
    return std::max(cas_t + t.CWL, bus_ready);
  }
  cas_t = std::max(cas_t, last_wr_data_end_ + t.tWTR);  // rank-level W->R
  return std::max(cas_t + t.CL, bus_ready);
}

Controller::Plan Controller::plan_request(const Request& req) const {
  return plan_class(req.addr.bank, classify(req), req.is_write);
}

Ps Controller::close_bank(std::uint32_t bank_id, PhaseStats& stats) {
  Bank& b = banks_[bank_id];
  assert(b.open);
  const Ps pre_t = std::max(b.pre_ready, b.last_act + device_.timing.tRAS);
  queued_hits_ -= row_count_get(row_key(bank_id, b.row, false)) +
                  row_count_get(row_key(bank_id, b.row, true));
  b.open = false;
  b.act_ready = std::max(b.act_ready, pre_t + device_.timing.tRP);
  b.ref_ready = std::max(b.ref_ready, pre_t + device_.timing.tRP);
  ++stats.precharges;
  emit(Command{.kind = CommandKind::Pre, .issue = pre_t, .bank = bank_id});
  return pre_t;
}

void Controller::note_act_rate(Ps t, unsigned bank_group) {
  last_act_any_ = t;
  last_act_in_group_[bank_group] = t;
  if (faw_len_ < 4) {
    faw_[(faw_head_ + faw_len_) & 3] = t;
    ++faw_len_;
  } else {
    faw_[faw_head_] = t;
    faw_head_ = (faw_head_ + 1) & 3;
  }
}

void Controller::commit(const Request& req, const Plan& plan, PhaseStats& stats) {
  const std::uint32_t bank_id = req.addr.bank;
  const unsigned bg = group_of_[bank_id];
  Bank& b = banks_[bank_id];
  const TimingParams& t = device_.timing;

  switch (plan.kind) {
    case RowBufferResult::Hit:
      ++stats.row_hits;
      break;
    case RowBufferResult::Conflict: {
      ++stats.row_conflicts;
      queued_hits_ -= row_count_get(row_key(bank_id, b.row, false)) +
                      row_count_get(row_key(bank_id, b.row, true));
      b.open = false;
      b.act_ready = std::max(b.act_ready, plan.pre_t + t.tRP);
      b.ref_ready = std::max(b.ref_ready, plan.pre_t + t.tRP);
      ++stats.precharges;
      emit(Command{.kind = CommandKind::Pre, .issue = plan.pre_t, .bank = bank_id});
      [[fallthrough]];
    }
    case RowBufferResult::Miss: {
      if (plan.kind == RowBufferResult::Miss) ++stats.row_misses;
      b.open = true;
      b.row = req.addr.row;
      queued_hits_ += row_count_get(row_key(bank_id, b.row, false)) +
                      row_count_get(row_key(bank_id, b.row, true));
      b.last_act = plan.act_t;
      b.act_ready = plan.act_t + t.tRC;
      b.rdwr_ready = plan.act_t + t.tRCD;
      b.pre_ready = plan.act_t + t.tRAS;
      note_act_rate(plan.act_t, bg);
      ++stats.activates;
      emit(Command{.kind = CommandKind::Act, .issue = plan.act_t, .bank = bank_id,
                   .row = req.addr.row});
      break;
    }
  }

  last_cas_any_ = plan.cas_t;
  last_cas_in_group_[bg] = plan.cas_t;
  bus_free_ = plan.data_end;
  last_burst_was_write_ = req.is_write;
  if (req.is_write) {
    last_wr_data_end_ = plan.data_end;
    b.pre_ready = std::max(b.pre_ready, plan.data_end + t.tWR);
    ++stats.writes;
  } else {
    last_rd_data_end_ = plan.data_end;
    b.pre_ready = std::max(b.pre_ready, plan.cas_t + t.tRTP);
    ++stats.reads;
  }

  ++stats.bursts;
  stats.busy += device_.burst_time;
  if (stats.bursts == 1) stats.start = plan.data_start;
  stats.end = plan.data_end;
  now_ = std::max(now_, plan.data_end);

  emit(Command{.kind = req.is_write ? CommandKind::Wr : CommandKind::Rd,
               .issue = plan.cas_t,
               .bank = bank_id,
               .row = req.addr.row,
               .column = req.addr.column,
               .data_start = plan.data_start,
               .data_end = plan.data_end});
}

std::size_t Controller::row_slot(std::uint64_t key) const {
  // Fibonacci hashing: one multiply, top bits. The keys are structured
  // (bank | row | dir) and the golden-ratio multiply spreads consecutive
  // rows well enough for short linear-probe chains at 4x slack.
  const std::uint64_t h = key * 0x9E3779B97F4A7C15ull;
  return static_cast<std::size_t>(h >> 32) & row_mask_;
}

void Controller::row_count_add(std::uint64_t key) {
  std::size_t i = row_slot(key);
  while (row_counts_[i].key != key && row_counts_[i].key != kEmptyKey) {
    i = (i + 1) & row_mask_;
  }
  row_counts_[i].key = key;
  ++row_counts_[i].count;
}

void Controller::row_count_remove(std::uint64_t key) {
  std::size_t i = row_slot(key);
  while (row_counts_[i].key != key) i = (i + 1) & row_mask_;
  if (--row_counts_[i].count > 0) return;
  // Backward-shift deletion keeps probe chains tombstone-free.
  std::size_t j = i;
  for (;;) {
    j = (j + 1) & row_mask_;
    if (row_counts_[j].key == kEmptyKey) break;
    const std::size_t ideal = row_slot(row_counts_[j].key);
    if (((j - ideal) & row_mask_) >= ((j - i) & row_mask_)) {
      row_counts_[i] = row_counts_[j];
      i = j;
    }
  }
  row_counts_[i] = RowCountEntry{};
}

std::uint32_t Controller::row_count_get(std::uint64_t key) const {
  std::size_t i = row_slot(key);
  while (row_counts_[i].key != kEmptyKey) {
    if (row_counts_[i].key == key) return row_counts_[i].count;
    i = (i + 1) & row_mask_;
  }
  return 0;
}

std::uint32_t Controller::enqueue(const Request& req) {
  assert(!free_slots_.empty());
  const std::uint32_t id = free_slots_.back();
  free_slots_.pop_back();
  slots_[id] = req;

  fifo_prev_[id] = fifo_tail_;
  fifo_next_[id] = kNoSlot;
  if (fifo_tail_ != kNoSlot) {
    fifo_next_[fifo_tail_] = id;
  } else {
    fifo_head_ = id;
  }
  fifo_tail_ = id;

  Bin& bin = bins_[req.addr.bank];
  bank_prev_[id] = bin.tail;
  bank_next_[id] = kNoSlot;
  if (bin.tail != kNoSlot) {
    bank_next_[bin.tail] = id;
  } else {
    bin.head = id;
    populated_[req.addr.bank >> 6] |= std::uint64_t{1} << (req.addr.bank & 63);
  }
  bin.tail = id;
  ++bin.total[req.is_write ? 1 : 0];
  ++queued_per_group_[group_of_[req.addr.bank]][req.is_write ? 1 : 0];
  row_count_add(row_key(req.addr.bank, req.addr.row, req.is_write));
  const Bank& b = banks_[req.addr.bank];
  if (b.open && b.row == req.addr.row) ++queued_hits_;
  return id;
}

void Controller::dequeue(std::uint32_t slot_id) {
  const std::uint32_t fn = fifo_next_[slot_id];
  const std::uint32_t fp = fifo_prev_[slot_id];
  (fp != kNoSlot ? fifo_next_[fp] : fifo_head_) = fn;
  (fn != kNoSlot ? fifo_prev_[fn] : fifo_tail_) = fp;

  const Request& req = slots_[slot_id];
  Bin& bin = bins_[req.addr.bank];
  const std::uint32_t bn = bank_next_[slot_id];
  const std::uint32_t bp = bank_prev_[slot_id];
  (bp != kNoSlot ? bank_next_[bp] : bin.head) = bn;
  (bn != kNoSlot ? bank_prev_[bn] : bin.tail) = bp;
  if (bin.head == kNoSlot) {
    populated_[req.addr.bank >> 6] &= ~(std::uint64_t{1} << (req.addr.bank & 63));
  }
  --bin.total[req.is_write ? 1 : 0];
  --queued_per_group_[group_of_[req.addr.bank]][req.is_write ? 1 : 0];
  row_count_remove(row_key(req.addr.bank, req.addr.row, req.is_write));
  const Bank& b = banks_[req.addr.bank];
  if (b.open && b.row == req.addr.row) --queued_hits_;

  free_slots_.push_back(slot_id);
}

Ps Controller::pick_bound() const {
  // E = min over populated (bank group, direction) classes of the
  // group-global data-slot floor. Every term is a floor that
  // plan_class() applies to every request of that group and direction,
  // so no queued request can start earlier. Using each group's own
  // CAS-rate state (instead of the loosest group's) makes the floor
  // exact whenever the winner is rate- rather than bank-limited — the
  // steady state of every paper workload. When no queued request hits
  // an open row, every plan additionally carries an ACT, so the group's
  // ACT-rate floor (tRRD / four-activate window) plus tRCD tightens the
  // bound further — the ACT-limited conflict-chain regimes.
  const TimingParams& t = device_.timing;
  const Ps cas_any = last_cas_any_ + t.tCCD_S;
  Ps act_any = kNegInf;
  if (queued_hits_ == 0) {
    act_any = last_act_any_ + t.tRRD_S;
    if (faw_len_ == 4) act_any = std::max(act_any, faw_[faw_head_] + t.tFAW);
  }
  const Ps wtr_floor = last_wr_data_end_ + t.tWTR;
  Ps bus_w = bus_free_;
  if (!last_burst_was_write_) {
    bus_w = std::max(bus_w, last_rd_data_end_ + t.tRTW_bubble);
  }

  Ps bound = std::numeric_limits<Ps>::max();
  for (std::size_t g = 0; g < queued_per_group_.size(); ++g) {
    const auto& queued = queued_per_group_[g];
    if (queued[0] == 0 && queued[1] == 0) continue;
    Ps cas_g = std::max(cas_any, last_cas_in_group_[g] + t.tCCD_L);
    if (queued_hits_ == 0) {
      const Ps act_g =
          std::max(act_any, last_act_in_group_[g] + t.tRRD_L);
      cas_g = std::max(cas_g, act_g + t.tRCD);
    }
    if (queued[0] > 0) {  // reads
      const Ps cas_r = std::max(cas_g, wtr_floor);
      bound = std::min(bound, std::max(bus_free_, cas_r + t.CL));
    }
    if (queued[1] > 0) {  // writes
      bound = std::min(bound, std::max(bus_w, cas_g + t.CWL));
    }
  }
  return bound;
}

#ifdef TBI_PICK_STATS
namespace {
struct PickStats {
  unsigned long long picks = 0, fast_exits = 0, fallback_banks = 0, plans = 0;
  unsigned long long exit_step[17] = {};
  ~PickStats() {
    std::fprintf(stderr,
                 "picks %llu fast %llu (%.1f%%) fallback-banks/pick %.2f "
                 "plans/pick %.2f\n",
                 picks, fast_exits, 100.0 * fast_exits / picks,
                 double(fallback_banks) / picks, double(plans) / picks);
    for (int i = 0; i < 17; ++i)
      if (exit_step[i])
        std::fprintf(stderr, "  exit@walk%d: %.1f%%\n", i,
                     100.0 * exit_step[i] / picks);
  }
} g_pick_stats;
}  // namespace
#define PICK_STAT(field, n) (g_pick_stats.field += (n))
#else
#define PICK_STAT(field, n) ((void)0)
#endif

std::uint32_t Controller::pick_fr_fcfs(Plan& plan_out) const {
  assert(fifo_head_ != kNoSlot);
  // Fast path: walk the oldest few requests in age order and compare
  // each Plan against the global floor E (pick_bound). data_start >= E
  // for every queued request, so the first — i.e. oldest — request
  // landing on the floor is unbeatable: nothing can be earlier, and it
  // wins every tie by age. In steady state (bus- or rate-limited, the
  // regime of every paper workload) some front-of-queue request sits on
  // the floor and the pick resolves after one or two Plans. Consecutive
  // classmates (same bank, outcome, direction) share a Plan and lose the
  // age tie-break, so runs of them — the single-bank conflict-chain
  // regime — cost one classify() each, not a replan.
  constexpr unsigned kWalkLimit = 8;
  PICK_STAT(picks, 1);
  // Nothing can start before the current end of the bus schedule, so a
  // head request landing exactly there wins outright — without even
  // computing the full floor. This is the saturated-bus steady state.
  const Request& head = slots_[fifo_head_];
  const RowBufferResult head_kind = classify(head);
  if (fifo_next_[fifo_head_] == kNoSlot) {  // single-element queue
    PICK_STAT(fast_exits, 1);
    plan_out = plan_class(head.addr.bank, head_kind, head.is_write);
    return fifo_head_;
  }
  const Ps head_ds = eval_class(head.addr.bank, head_kind, head.is_write);
  if (head_ds <= bus_free_) {
    PICK_STAT(fast_exits, 1);
    PICK_STAT(exit_step[0], 1);
    plan_out = plan_class(head.addr.bank, head_kind, head.is_write);
    return fifo_head_;
  }
  const Ps bound = pick_bound();
  if (head_ds <= bound) {  // oldest on the floor: unbeatable
    PICK_STAT(fast_exits, 1);
    PICK_STAT(exit_step[0], 1);
    plan_out = plan_class(head.addr.bank, head_kind, head.is_write);
    return fifo_head_;
  }
  std::uint32_t best = fifo_head_;
  Ps best_slot = head_ds;
  std::uint64_t best_seq = head.seq;
  std::uint32_t prev_bank = head.addr.bank;
  unsigned prev_class = class_index(head_kind, head.is_write);
  std::uint32_t id = fifo_next_[fifo_head_];
  for (unsigned walked = 1; walked < kWalkLimit && id != kNoSlot;
       ++walked, id = fifo_next_[id]) {
    const Request& r = slots_[id];
    const RowBufferResult kind = classify(r);
    const unsigned cls = class_index(kind, r.is_write);
    if (r.addr.bank == prev_bank && cls == prev_class) continue;
    prev_bank = r.addr.bank;
    prev_class = cls;
    const Ps ds = eval_class(r.addr.bank, kind, r.is_write);
    PICK_STAT(plans, 1);
    if (ds < best_slot) {  // age order: ties keep the older
      best_slot = ds;
      best_seq = r.seq;
      best = id;
      if (best_slot <= bound) {
        PICK_STAT(fast_exits, 1);
        PICK_STAT(exit_step[walked > 16 ? 16 : walked], 1);
        plan_out = plan_class(r.addr.bank, kind, r.is_write);
        return best;
      }
    }
  }
  if (id == kNoSlot) {  // the walk covered the whole queue
    plan_out = plan_request(slots_[best]);
    return best;
  }

  // Fallback: only the oldest queued request of each (bank, outcome,
  // direction) class can win — classmates share one Plan and lose the
  // age tie-break. Which classes are populated follows in O(1) from the
  // membership counts and the bank's open row, and each bin scan stops
  // once every populated class produced its oldest member, so the fold
  // is O(banks with queued work) instead of O(queue_depth). Re-planning
  // a class the walk already folded is harmless: it reproduces the same
  // (data_start, seq) and loses the strict comparison.
  for (std::size_t w = 0; w < populated_.size(); ++w) {
  for (std::uint64_t word = populated_[w]; word != 0; word &= word - 1) {
    const std::uint32_t bank =
        static_cast<std::uint32_t>(w * 64) +
        static_cast<std::uint32_t>(std::countr_zero(word));
    const Bin& bin = bins_[bank];
    PICK_STAT(fallback_banks, 1);
    // Once some candidate reached the floor, plans strictly below it are
    // impossible and ties lose to age: a bank whose oldest request is
    // younger than the incumbent cannot win.
    if (best_slot <= bound && slots_[bin.head].seq > best_seq) continue;
    const Bank& b = banks_[bank];
    // Every class of this bank starts at or after rdwr_ready + CAS
    // latency (an ACT chain only pushes later), so a bank strictly above
    // the incumbent cannot win or tie.
    const Ps lat_min = std::min(device_.timing.CL, device_.timing.CWL);
    if (b.rdwr_ready + lat_min > best_slot) continue;
    unsigned present = 0;
    if (!b.open) {
      for (unsigned dir = 0; dir < 2; ++dir) {
        if (bin.total[dir] > 0) {
          present |= 1u << class_index(RowBufferResult::Miss, dir != 0);
        }
      }
    } else {
      for (unsigned dir = 0; dir < 2; ++dir) {
        if (bin.total[dir] == 0) continue;
        const std::uint32_t hits = row_count_get(row_key(bank, b.row, dir != 0));
        if (hits > 0) present |= 1u << class_index(RowBufferResult::Hit, dir != 0);
        if (bin.total[dir] > hits) {
          present |= 1u << class_index(RowBufferResult::Conflict, dir != 0);
        }
      }
    }
    for (std::uint32_t cand = bin.head; cand != kNoSlot && present != 0;
         cand = bank_next_[cand]) {
      const Request& r = slots_[cand];
      const RowBufferResult kind = classify(r);
      const unsigned c = class_index(kind, r.is_write);
      if ((present & (1u << c)) == 0) continue;
      present &= ~(1u << c);
      PICK_STAT(plans, 1);
      const Ps ds = eval_class(bank, kind, r.is_write);
      if (ds < best_slot || (ds == best_slot && r.seq < best_seq)) {
        best_slot = ds;
        best_seq = r.seq;
        best = cand;
      }
    }
  }
  }
  plan_out = plan_request(slots_[best]);
  return best;
}

std::uint32_t Controller::pick_fr_fcfs_oracle(Plan& plan_out) const {
  assert(fifo_head_ != kNoSlot);
  // Brute-force reference: replan every queued request on every pick.
  // data_start can never precede the current bus_free_, so a request
  // landing exactly there is unbeatable and ends the scan early; ties
  // resolve to the oldest request because the FIFO is scanned in arrival
  // order.
  std::uint32_t best = fifo_head_;
  Ps best_slot = std::numeric_limits<Ps>::max();
  for (std::uint32_t id = fifo_head_; id != kNoSlot; id = fifo_next_[id]) {
    const Plan p = plan_request(slots_[id]);
    if (p.data_start < best_slot) {
      best_slot = p.data_start;
      best = id;
      plan_out = p;
      if (best_slot <= bus_free_) break;
    }
  }
  return best;
}

void Controller::do_refresh(PhaseStats& stats) {
  const TimingParams& t = device_.timing;
  Ps ready = next_refresh_;

  if (refresh_mode_ == RefreshMode::AllBank) {
    for (std::uint32_t i = 0; i < device_.banks; ++i) {
      if (banks_[i].open) close_bank(i, stats);
      ready = std::max(ready, banks_[i].ref_ready);
    }
    ready = std::max(ready, last_refresh_ + t.tRFC_ab);
    for (auto& b : banks_) {
      b.act_ready = std::max(b.act_ready, ready + t.tRFC_ab);
    }
    emit(Command{.kind = CommandKind::RefAb, .issue = ready});
  } else {
    // Per-bank / same-bank rotation group.
    const unsigned group = next_refresh_group_;
    auto is_member = [&](std::uint32_t i) {
      return (refresh_mode_ == RefreshMode::PerBank)
                 ? (i == group)
                 : (i / device_.bank_groups == group);
    };
    for (std::uint32_t i = 0; i < device_.banks; ++i) {
      if (!is_member(i)) continue;
      if (banks_[i].open) close_bank(i, stats);
      ready = std::max(ready, banks_[i].ref_ready);
    }
    ready = std::max(ready, last_refresh_ + t.tRFC_grp);
    for (std::uint32_t i = 0; i < device_.banks; ++i) {
      if (is_member(i)) {
        banks_[i].act_ready = std::max(banks_[i].act_ready, ready + t.tRFC_grp);
      }
    }
    emit(Command{.kind = CommandKind::RefGrp, .issue = ready, .bank = group});
    next_refresh_group_ = (next_refresh_group_ + 1) % refresh_groups_;
  }

  last_refresh_ = ready;
  ++stats.refreshes;
  next_refresh_ += refresh_interval_;
}

void Controller::refresh_if_due(PhaseStats& stats) {
  if (refresh_mode_ == RefreshMode::Disabled) return;
  while (next_refresh_ <= now_) do_refresh(stats);
}

PhaseStats Controller::run_phase(RequestStream& stream, std::string label) {
  PhaseStats stats;
  stats.label = std::move(label);
  const std::uint64_t host_start_ns = perf::now_ns();

  const std::uint32_t banks = device_.banks;
  const std::uint32_t rows = device_.rows_per_bank;
  const std::uint32_t columns = device_.columns_per_page;
  auto refill = [&] {
    Request r;
    while (!free_slots_.empty() && stream.next(r)) {
      r.seq = next_seq_++;
      if (r.addr.bank >= banks || r.addr.row >= rows || r.addr.column >= columns) {
        throw std::out_of_range("Controller: request address outside device");
      }
      enqueue(r);
    }
  };

  refill();
  while (fifo_head_ != kNoSlot) {
    refresh_if_due(stats);
    Plan plan;
    std::uint32_t slot_id;
    switch (config_.policy) {
      case ControllerConfig::Policy::Fcfs:
        slot_id = fifo_head_;
        plan = plan_request(slots_[slot_id]);
        break;
      case ControllerConfig::Policy::FrFcfs:
        slot_id = pick_fr_fcfs(plan);
        break;
      case ControllerConfig::Policy::FrFcfsOracle:
        slot_id = pick_fr_fcfs_oracle(plan);
        break;
      default:
        throw std::logic_error("Controller: unknown policy");
    }
    ++stats.picks;
    const Request req = slots_[slot_id];
    dequeue(slot_id);
    commit(req, plan, stats);
    refill();
  }
  stats.host_ns = perf::now_ns() - host_start_ns;
  return stats;
}

}  // namespace tbi::dram
