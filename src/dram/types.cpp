#include "dram/types.hpp"

namespace tbi::dram {

const char* to_string(CommandKind kind) {
  switch (kind) {
    case CommandKind::Act: return "ACT";
    case CommandKind::Pre: return "PRE";
    case CommandKind::Rd: return "RD";
    case CommandKind::Wr: return "WR";
    case CommandKind::RefAb: return "REFab";
    case CommandKind::RefGrp: return "REFgrp";
  }
  return "?";
}

}  // namespace tbi::dram
