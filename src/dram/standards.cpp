#include "dram/standards.hpp"

#include <stdexcept>

#include "common/bits.hpp"

namespace tbi::dram {

const char* to_string(Standard s) {
  switch (s) {
    case Standard::DDR3: return "DDR3";
    case Standard::DDR4: return "DDR4";
    case Standard::DDR5: return "DDR5";
    case Standard::LPDDR4: return "LPDDR4";
    case Standard::LPDDR5: return "LPDDR5";
  }
  return "?";
}

const char* to_string(RefreshMode m) {
  switch (m) {
    case RefreshMode::Disabled: return "disabled";
    case RefreshMode::AllBank: return "all-bank";
    case RefreshMode::PerBank: return "per-bank";
    case RefreshMode::SameBank: return "same-bank";
  }
  return "?";
}

void DeviceConfig::validate() const {
  auto require = [&](bool cond, const char* what) {
    if (!cond) throw std::invalid_argument("DeviceConfig " + name + ": " + what);
  };
  require(banks > 0 && is_pow2(banks), "banks must be a power of two");
  require(bank_groups > 0 && banks % bank_groups == 0,
          "bank_groups must divide banks");
  require(is_pow2(bank_groups), "bank_groups must be a power of two");
  require(columns_per_page > 0 && is_pow2(columns_per_page),
          "columns_per_page must be a power of two");
  require(rows_per_bank > 0, "rows_per_bank must be positive");
  require(burst_bytes > 0, "burst_bytes must be positive");
  require(burst_time > 0, "burst_time must be positive");
  timing.validate();
  require(timing.tCCD_S >= burst_time || timing.tCCD_S > 0,
          "tCCD_S must be meaningful");
}

namespace {

// Parameter sources: public JEDEC standards / representative vendor
// datasheets (DESIGN.md §5 documents the approximations). All times in ps.

DeviceConfig ddr3_800() {
  DeviceConfig c;
  c.name = "DDR3-800";
  c.standard = Standard::DDR3;
  c.data_rate_mts = 800;
  c.banks = 8;
  c.bank_groups = 1;
  c.columns_per_page = 128;  // 8 KiB page / 64 B burst
  c.rows_per_bank = 65536;
  c.burst_bytes = 64;
  c.burst_time = 10000;  // BL8 @ 800 MT/s
  c.timing = TimingParams{
      .tCK = 2500, .CL = 12500, .CWL = 12500,
      .tRCD = 12500, .tRP = 12500, .tRAS = 37500, .tRC = 50000,
      .tRRD_S = 10000, .tRRD_L = 10000, .tFAW = 40000,
      .tCCD_S = 10000, .tCCD_L = 10000,
      .tRTP = 10000, .tWR = 15000, .tWTR = 10000, .tRTW_bubble = 5000,
      .tREFI = 7800000, .tRFC_ab = 260000, .tRFC_grp = 260000};
  c.energy = EnergyParams{2200, 1400, 1500, 28000, 120};
  c.default_refresh = RefreshMode::AllBank;
  return c;
}

DeviceConfig ddr3_1600() {
  DeviceConfig c = ddr3_800();
  c.name = "DDR3-1600";
  c.data_rate_mts = 1600;
  c.burst_time = 5000;
  c.timing = TimingParams{
      .tCK = 1250, .CL = 13750, .CWL = 10000,
      .tRCD = 13750, .tRP = 13750, .tRAS = 35000, .tRC = 48750,
      .tRRD_S = 6250, .tRRD_L = 6250, .tFAW = 30000,
      .tCCD_S = 5000, .tCCD_L = 5000,
      .tRTP = 7500, .tWR = 15000, .tWTR = 7500, .tRTW_bubble = 2500,
      .tREFI = 7800000, .tRFC_ab = 260000, .tRFC_grp = 260000};
  c.energy = EnergyParams{2000, 1300, 1400, 26000, 130};
  return c;
}

DeviceConfig ddr4_1600() {
  DeviceConfig c;
  c.name = "DDR4-1600";
  c.standard = Standard::DDR4;
  c.data_rate_mts = 1600;
  c.banks = 16;
  c.bank_groups = 4;
  c.columns_per_page = 128;  // 8 KiB DIMM page (x8 devices) / 64 B burst
  c.rows_per_bank = 65536;
  c.burst_bytes = 64;
  c.burst_time = 5000;
  c.timing = TimingParams{
      .tCK = 1250, .CL = 13750, .CWL = 11250,
      .tRCD = 13750, .tRP = 13750, .tRAS = 35000, .tRC = 48750,
      .tRRD_S = 6250, .tRRD_L = 7500, .tFAW = 25000,
      .tCCD_S = 5000, .tCCD_L = 6250,
      .tRTP = 7500, .tWR = 15000, .tWTR = 7500, .tRTW_bubble = 2500,
      .tREFI = 7800000, .tRFC_ab = 260000, .tRFC_grp = 260000};
  c.energy = EnergyParams{1800, 1100, 1200, 25000, 100};
  c.default_refresh = RefreshMode::AllBank;
  return c;
}

DeviceConfig ddr4_3200() {
  DeviceConfig c = ddr4_1600();
  c.name = "DDR4-3200";
  c.data_rate_mts = 3200;
  c.burst_time = 2500;
  c.timing = TimingParams{
      .tCK = 625, .CL = 13750, .CWL = 10000,
      .tRCD = 13750, .tRP = 13750, .tRAS = 32000, .tRC = 45750,
      .tRRD_S = 2500, .tRRD_L = 4875, .tFAW = 20000,
      .tCCD_S = 2500, .tCCD_L = 5000,
      .tRTP = 7500, .tWR = 15000, .tWTR = 7500, .tRTW_bubble = 1250,
      .tREFI = 7800000, .tRFC_ab = 260000, .tRFC_grp = 260000};
  c.energy = EnergyParams{1700, 1000, 1100, 24000, 110};
  return c;
}

DeviceConfig ddr5_3200() {
  DeviceConfig c;
  c.name = "DDR5-3200";
  c.standard = Standard::DDR5;
  c.data_rate_mts = 3200;
  c.banks = 32;
  c.bank_groups = 8;
  c.columns_per_page = 128;
  c.rows_per_bank = 65536;
  c.burst_bytes = 64;
  c.burst_time = 5000;  // BL16 on a 32-bit subchannel
  c.timing = TimingParams{
      .tCK = 625, .CL = 13750, .CWL = 11875,
      .tRCD = 13750, .tRP = 13750, .tRAS = 32000, .tRC = 45750,
      .tRRD_S = 5000, .tRRD_L = 5000, .tFAW = 20000,
      .tCCD_S = 5000, .tCCD_L = 5000,
      .tRTP = 7500, .tWR = 30000, .tWTR = 10000, .tRTW_bubble = 1250,
      .tREFI = 3900000, .tRFC_ab = 295000, .tRFC_grp = 160000};
  c.energy = EnergyParams{1500, 900, 1000, 22000, 90};
  c.default_refresh = RefreshMode::SameBank;
  return c;
}

DeviceConfig ddr5_6400() {
  DeviceConfig c = ddr5_3200();
  c.name = "DDR5-6400";
  c.data_rate_mts = 6400;
  c.burst_time = 2500;
  c.timing = TimingParams{
      .tCK = 312, .CL = 13750, .CWL = 12500,
      .tRCD = 13750, .tRP = 13750, .tRAS = 32000, .tRC = 45750,
      .tRRD_S = 2500, .tRRD_L = 5000, .tFAW = 11250,
      .tCCD_S = 2500, .tCCD_L = 5000,
      .tRTP = 7500, .tWR = 30000, .tWTR = 10000, .tRTW_bubble = 625,
      .tREFI = 3900000, .tRFC_ab = 295000, .tRFC_grp = 160000};
  c.energy = EnergyParams{1400, 850, 950, 21000, 95};
  return c;
}

DeviceConfig lpddr4_2133() {
  DeviceConfig c;
  c.name = "LPDDR4-2133";
  c.standard = Standard::LPDDR4;
  c.data_rate_mts = 2133;
  c.banks = 8;
  c.bank_groups = 1;
  c.columns_per_page = 128;  // 4 KiB effective page / 32 B burst
  c.rows_per_bank = 65536;
  c.burst_bytes = 32;  // x16 channel, BL16
  c.burst_time = 7502;
  c.timing = TimingParams{
      .tCK = 938, .CL = 17000, .CWL = 8000,
      .tRCD = 18000, .tRP = 18000, .tRAS = 42000, .tRC = 60000,
      .tRRD_S = 10000, .tRRD_L = 10000, .tFAW = 40000,
      .tCCD_S = 7502, .tCCD_L = 7502,
      .tRTP = 7500, .tWR = 18000, .tWTR = 10000, .tRTW_bubble = 3750,
      .tREFI = 3904000, .tRFC_ab = 280000, .tRFC_grp = 140000};
  c.energy = EnergyParams{900, 500, 550, 15000, 40};
  c.default_refresh = RefreshMode::PerBank;
  return c;
}

DeviceConfig lpddr4_4266() {
  DeviceConfig c = lpddr4_2133();
  c.name = "LPDDR4-4266";
  c.data_rate_mts = 4266;
  c.burst_time = 3751;
  c.timing.tCK = 469;
  c.timing.tCCD_S = 3751;
  c.timing.tCCD_L = 3751;
  c.timing.tRTW_bubble = 1875;
  c.energy = EnergyParams{850, 470, 520, 14000, 45};
  return c;
}

DeviceConfig lpddr5_4267() {
  DeviceConfig c;
  c.name = "LPDDR5-4267";
  c.standard = Standard::LPDDR5;
  c.data_rate_mts = 4267;
  c.banks = 16;
  c.bank_groups = 4;  // bank-group mode
  c.columns_per_page = 64;  // 2 KiB page / 32 B burst
  c.rows_per_bank = 65536;
  c.burst_bytes = 32;
  c.burst_time = 3750;
  c.timing = TimingParams{
      .tCK = 1875, .CL = 17000, .CWL = 9000,
      .tRCD = 15000, .tRP = 15000, .tRAS = 42000, .tRC = 57000,
      .tRRD_S = 7500, .tRRD_L = 7500, .tFAW = 30000,
      .tCCD_S = 3750, .tCCD_L = 7500,
      .tRTP = 7500, .tWR = 10000, .tWTR = 10000, .tRTW_bubble = 1875,
      .tREFI = 3904000, .tRFC_ab = 280000, .tRFC_grp = 140000};
  c.energy = EnergyParams{700, 380, 420, 12000, 35};
  c.default_refresh = RefreshMode::PerBank;
  return c;
}

DeviceConfig lpddr5_8533() {
  DeviceConfig c = lpddr5_4267();
  c.name = "LPDDR5-8533";
  c.data_rate_mts = 8533;
  c.burst_time = 1875;
  c.timing.tCK = 938;
  c.timing.tRRD_S = 3750;
  c.timing.tRRD_L = 3750;
  c.timing.tFAW = 15000;
  c.timing.tCCD_S = 1875;
  c.timing.tCCD_L = 3750;
  c.timing.tRTW_bubble = 938;
  c.timing.tRCD = 15000;
  c.timing.tRP = 15000;
  c.timing.tRC = 57000;
  c.timing.tWR = 10000;
  c.energy = EnergyParams{650, 360, 400, 11500, 40};
  return c;
}

}  // namespace

const std::vector<DeviceConfig>& standard_configs() {
  static const std::vector<DeviceConfig> configs = [] {
    std::vector<DeviceConfig> v{
        ddr3_800(),    ddr3_1600(),  ddr4_1600(),   ddr4_3200(),
        ddr5_3200(),   ddr5_6400(),  lpddr4_2133(), lpddr4_4266(),
        lpddr5_4267(), lpddr5_8533()};
    for (auto& c : v) c.validate();
    return v;
  }();
  return configs;
}

namespace {

DeviceConfig ddr3_1066() {
  DeviceConfig c = ddr3_800();
  c.name = "DDR3-1066";
  c.data_rate_mts = 1066;
  c.burst_time = 7505;  // BL8 @ 1066 MT/s
  c.timing = TimingParams{
      .tCK = 1876, .CL = 13130, .CWL = 11256,
      .tRCD = 13130, .tRP = 13130, .tRAS = 37500, .tRC = 50630,
      .tRRD_S = 7505, .tRRD_L = 7505, .tFAW = 37500,
      .tCCD_S = 7505, .tCCD_L = 7505,
      .tRTP = 7505, .tWR = 15000, .tWTR = 7505, .tRTW_bubble = 3752,
      .tREFI = 7800000, .tRFC_ab = 260000, .tRFC_grp = 260000};
  c.energy = EnergyParams{2100, 1350, 1450, 27000, 125};
  return c;
}

DeviceConfig ddr4_2400() {
  DeviceConfig c = ddr4_1600();
  c.name = "DDR4-2400";
  c.data_rate_mts = 2400;
  c.burst_time = 3334;
  c.timing = TimingParams{
      .tCK = 833, .CL = 13320, .CWL = 10000,
      .tRCD = 13320, .tRP = 13320, .tRAS = 32000, .tRC = 45320,
      .tRRD_S = 3334, .tRRD_L = 4900, .tFAW = 21000,
      .tCCD_S = 3334, .tCCD_L = 5000,
      .tRTP = 7500, .tWR = 15000, .tWTR = 7500, .tRTW_bubble = 1667,
      .tREFI = 7800000, .tRFC_ab = 260000, .tRFC_grp = 260000};
  c.energy = EnergyParams{1750, 1050, 1150, 24500, 105};
  return c;
}

DeviceConfig ddr5_4800() {
  DeviceConfig c = ddr5_3200();
  c.name = "DDR5-4800";
  c.data_rate_mts = 4800;
  c.burst_time = 3334;
  c.timing = TimingParams{
      .tCK = 416, .CL = 13750, .CWL = 12000,
      .tRCD = 13750, .tRP = 13750, .tRAS = 32000, .tRC = 45750,
      .tRRD_S = 3334, .tRRD_L = 5000, .tFAW = 13336,
      .tCCD_S = 3334, .tCCD_L = 5000,
      .tRTP = 7500, .tWR = 30000, .tWTR = 10000, .tRTW_bubble = 832,
      .tREFI = 3900000, .tRFC_ab = 295000, .tRFC_grp = 160000};
  c.energy = EnergyParams{1450, 875, 975, 21500, 92};
  return c;
}

DeviceConfig lpddr4_3200() {
  DeviceConfig c = lpddr4_2133();
  c.name = "LPDDR4-3200";
  c.data_rate_mts = 3200;
  c.burst_time = 5000;
  c.timing.tCK = 625;
  c.timing.tCCD_S = 5000;
  c.timing.tCCD_L = 5000;
  c.timing.tRTW_bubble = 2500;
  c.energy = EnergyParams{875, 485, 535, 14500, 42};
  return c;
}

DeviceConfig lpddr5_6400() {
  DeviceConfig c = lpddr5_4267();
  c.name = "LPDDR5-6400";
  c.data_rate_mts = 6400;
  c.burst_time = 2500;
  c.timing.tCK = 1250;
  c.timing.tRRD_S = 5000;
  c.timing.tRRD_L = 5000;
  c.timing.tFAW = 20000;
  c.timing.tCCD_S = 2500;
  c.timing.tCCD_L = 5000;
  c.timing.tRTW_bubble = 1250;
  c.energy = EnergyParams{675, 370, 410, 11800, 37};
  return c;
}

}  // namespace

const std::vector<DeviceConfig>& extended_configs() {
  static const std::vector<DeviceConfig> configs = [] {
    std::vector<DeviceConfig> v{ddr3_1066(), ddr4_2400(), ddr5_4800(),
                                lpddr4_3200(), lpddr5_6400()};
    for (auto& c : v) c.validate();
    return v;
  }();
  return configs;
}

const DeviceConfig* find_config(std::string_view name) {
  for (const auto& c : standard_configs()) {
    if (c.name == name) return &c;
  }
  for (const auto& c : extended_configs()) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

namespace {

RefreshMode refresh_mode_from_string(const std::string& s) {
  if (s == "disabled") return RefreshMode::Disabled;
  if (s == "all-bank") return RefreshMode::AllBank;
  if (s == "per-bank") return RefreshMode::PerBank;
  if (s == "same-bank") return RefreshMode::SameBank;
  throw std::invalid_argument("unknown refresh mode: " + s);
}

Standard standard_from_string(const std::string& s) {
  if (s == "DDR3") return Standard::DDR3;
  if (s == "DDR4") return Standard::DDR4;
  if (s == "DDR5") return Standard::DDR5;
  if (s == "LPDDR4") return Standard::LPDDR4;
  if (s == "LPDDR5") return Standard::LPDDR5;
  throw std::invalid_argument("unknown standard: " + s);
}

}  // namespace

Json config_to_json(const DeviceConfig& cfg) {
  Json j;
  j["name"] = cfg.name;
  j["standard"] = to_string(cfg.standard);
  j["data_rate_mts"] = static_cast<std::int64_t>(cfg.data_rate_mts);
  j["banks"] = static_cast<std::int64_t>(cfg.banks);
  j["bank_groups"] = static_cast<std::int64_t>(cfg.bank_groups);
  j["columns_per_page"] = static_cast<std::int64_t>(cfg.columns_per_page);
  j["rows_per_bank"] = static_cast<std::int64_t>(cfg.rows_per_bank);
  j["burst_bytes"] = static_cast<std::int64_t>(cfg.burst_bytes);
  j["burst_time_ps"] = cfg.burst_time;
  j["default_refresh"] = to_string(cfg.default_refresh);
  Json t;
  const TimingParams& p = cfg.timing;
  t["tCK"] = p.tCK; t["CL"] = p.CL; t["CWL"] = p.CWL;
  t["tRCD"] = p.tRCD; t["tRP"] = p.tRP; t["tRAS"] = p.tRAS; t["tRC"] = p.tRC;
  t["tRRD_S"] = p.tRRD_S; t["tRRD_L"] = p.tRRD_L; t["tFAW"] = p.tFAW;
  t["tCCD_S"] = p.tCCD_S; t["tCCD_L"] = p.tCCD_L;
  t["tRTP"] = p.tRTP; t["tWR"] = p.tWR; t["tWTR"] = p.tWTR;
  t["tRTW_bubble"] = p.tRTW_bubble;
  t["tREFI"] = p.tREFI; t["tRFC_ab"] = p.tRFC_ab; t["tRFC_grp"] = p.tRFC_grp;
  j["timing"] = t;
  Json e;
  e["act_pre_pj"] = cfg.energy.act_pre_pj;
  e["rd_pj"] = cfg.energy.rd_pj;
  e["wr_pj"] = cfg.energy.wr_pj;
  e["ref_ab_pj"] = cfg.energy.ref_ab_pj;
  e["background_mw"] = cfg.energy.background_mw;
  j["energy"] = e;
  return j;
}

DeviceConfig config_from_json(const Json& j) {
  DeviceConfig c;
  c.name = j.at("name").as_string();
  c.standard = standard_from_string(j.at("standard").as_string());
  c.data_rate_mts = static_cast<unsigned>(j.at("data_rate_mts").as_int());
  c.banks = static_cast<unsigned>(j.at("banks").as_int());
  c.bank_groups = static_cast<unsigned>(j.at("bank_groups").as_int());
  c.columns_per_page = static_cast<unsigned>(j.at("columns_per_page").as_int());
  c.rows_per_bank = static_cast<unsigned>(j.at("rows_per_bank").as_int());
  c.burst_bytes = static_cast<unsigned>(j.at("burst_bytes").as_int());
  c.burst_time = j.at("burst_time_ps").as_int();
  c.default_refresh = refresh_mode_from_string(j.at("default_refresh").as_string());
  const Json& t = j.at("timing");
  TimingParams& p = c.timing;
  p.tCK = t.at("tCK").as_int(); p.CL = t.at("CL").as_int(); p.CWL = t.at("CWL").as_int();
  p.tRCD = t.at("tRCD").as_int(); p.tRP = t.at("tRP").as_int();
  p.tRAS = t.at("tRAS").as_int(); p.tRC = t.at("tRC").as_int();
  p.tRRD_S = t.at("tRRD_S").as_int(); p.tRRD_L = t.at("tRRD_L").as_int();
  p.tFAW = t.at("tFAW").as_int();
  p.tCCD_S = t.at("tCCD_S").as_int(); p.tCCD_L = t.at("tCCD_L").as_int();
  p.tRTP = t.at("tRTP").as_int(); p.tWR = t.at("tWR").as_int();
  p.tWTR = t.at("tWTR").as_int(); p.tRTW_bubble = t.at("tRTW_bubble").as_int();
  p.tREFI = t.at("tREFI").as_int(); p.tRFC_ab = t.at("tRFC_ab").as_int();
  p.tRFC_grp = t.at("tRFC_grp").as_int();
  if (j.contains("energy")) {
    const Json& e = j.at("energy");
    c.energy.act_pre_pj = e.at("act_pre_pj").as_double();
    c.energy.rd_pj = e.at("rd_pj").as_double();
    c.energy.wr_pj = e.at("wr_pj").as_double();
    c.energy.ref_ab_pj = e.at("ref_ab_pj").as_double();
    c.energy.background_mw = e.at("background_mw").as_double();
  }
  c.validate();
  return c;
}

}  // namespace tbi::dram
