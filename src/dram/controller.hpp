/// \file controller.hpp
/// Command-level DRAM memory controller / timing model.
///
/// The controller consumes burst requests from a RequestStream through a
/// fixed-depth scheduling queue, chooses the next request with FR-FCFS
/// (row hits first, then oldest) or plain FCFS, and schedules the ACT /
/// PRE / RD / WR / REF commands needed at their earliest legal issue time
/// under the JEDEC constraints of dram/timing.hpp. Time is continuous
/// integer picoseconds; there is no cycle stepping, which makes the model
/// fast enough (millions of bursts per second) to reproduce all Table I
/// configurations in seconds.
///
/// Incremental FR-FCFS (design note). The earliest-data-slot pick needs
/// the earliest-legal Plan of every queued request, but a full replan of
/// the whole queue per burst is O(queue_depth) and dominates paper-scale
/// runs. The scheduler instead exploits two structural facts of the
/// timing model:
///
///  1. Class sharing. A request's Plan depends only on (bank, row-buffer
///     outcome, direction) plus global bus/CAS/ACT-rate state — never on
///     its row or column — so all queued requests of one bank with the
///     same outcome and direction share one Plan, and only the *oldest*
///     member of each such class can win the pick (ties go to age).
///     Requests are binned per bank on intrusive arrival-ordered lists,
///     and a pick evaluates at most one Plan per populated class.
///  2. A computable global floor. Every Plan of direction d satisfies
///     data_start >= E(d) = max(bus availability, global CAS-rate floor
///     + CAS latency), a bound built purely from rank-global state in
///     O(1). The globally oldest request is planned first; if it lands
///     on the floor it is unbeatable — nothing can be earlier and it
///     wins every tie — so the steady-state pick costs ONE Plan. Only
///     when bank-local chains (tRP/tRCD/tRAS) push the oldest request
///     off the floor does the pick fall back to the per-bank class scan,
///     which again prunes with the floor: once some candidate reaches
///     E, a bank whose oldest request is younger cannot win and is
///     skipped without planning.
///
/// Cache and invalidation rules: which classes are populated is tracked
/// by state-independent membership counts — per-bin totals per direction
/// plus an exact (bank, row, direction) count table — updated only on
/// enqueue/dequeue and never invalidated, because a committed command
/// changes a bank's *open row*, not which rows the queued requests
/// target. Comparing a bin's counts against its bank's open row yields
/// the populated classes in O(1) (e.g. zero requests for the open row
/// proves there is no hit without touching the bin). Global bus/CAS/ACT
/// state changes on *every* commit, but it enters the Plan through a
/// handful of max() terms, so it is folded in fresh, in O(1) per
/// evaluated class, at pick time rather than invalidating anything.
/// A pick is thus O(1) in steady state and O(banks with queued work)
/// in the worst case, not O(queue_depth), and the command stream is
/// bit-identical to the brute-force scan (Policy::FrFcfsOracle keeps the
/// replan-everything reference; a randomized test asserts equivalence on
/// DDR4/DDR5/LPDDR4).
///
/// Fidelity notes (DESIGN.md §5): per-bank row state, bank-group-aware
/// tCCD/tRRD, the four-activate window, rank-level write-to-read
/// turnaround, data-bus serialization, and all-bank / per-bank / same-bank
/// refresh are modeled; command-bus slot contention and PHY effects are
/// not. Every scheduled command can be streamed into a TimingChecker that
/// independently re-validates the protocol.
#pragma once

#include <array>
#include <limits>
#include <vector>

#include "dram/standards.hpp"
#include "dram/stats.hpp"
#include "dram/stream.hpp"
#include "dram/types.hpp"

namespace tbi::dram {

/// Observer for every command the controller schedules (checker, traces).
class CommandObserver {
 public:
  virtual ~CommandObserver() = default;
  virtual void on_command(const Command& cmd) = 0;
};

struct ControllerConfig {
  /// FrFcfs: earliest-data-slot greedy over the whole queue — the request
  /// whose burst can reach the data bus first is served next (ties go to
  /// the oldest). This emulates a cycle-accurate FR-FCFS controller: row
  /// hits naturally overtake conflicting requests while a conflict whose
  /// PRE/ACT chain has completed costs nothing extra and regains priority
  /// through its age. Implemented incrementally (see the design note in
  /// the file header); FrFcfsOracle is the brute-force replan-everything
  /// reference with the same observable behavior, kept for validation.
  /// Fcfs: strict arrival order (baseline for tests/ablation).
  enum class Policy { FrFcfs, Fcfs, FrFcfsOracle };

  unsigned queue_depth = 64;
  Policy policy = Policy::FrFcfs;
  /// When true, the device's default refresh mode is used and
  /// `refresh_mode` is ignored.
  bool use_device_default_refresh = true;
  RefreshMode refresh_mode = RefreshMode::AllBank;
};

class Controller {
 public:
  Controller(DeviceConfig device, ControllerConfig config);

  /// Drain \p stream completely and return the phase statistics.
  /// Controller state (open rows, clock, refresh phase) carries over to
  /// the next call, so write phase and read phase chain realistically.
  PhaseStats run_phase(RequestStream& stream, std::string label);

  /// Attach an observer receiving every scheduled command (or nullptr).
  void set_observer(CommandObserver* observer) { observer_ = observer; }

  const DeviceConfig& device() const { return device_; }
  RefreshMode refresh_mode() const { return refresh_mode_; }

  /// Current simulated time (end of last scheduled data burst).
  Ps now() const { return now_; }

 private:
  static constexpr Ps kNegInf = std::numeric_limits<Ps>::min() / 4;
  static constexpr std::uint32_t kNoSlot = std::numeric_limits<std::uint32_t>::max();

  struct Bank {
    bool open = false;
    std::uint32_t row = 0;
    Ps last_act = kNegInf;      ///< issue time of last ACT
    Ps act_ready = 0;           ///< earliest next ACT (tRP / tRC / refresh)
    Ps rdwr_ready = 0;          ///< earliest CAS after ACT (tRCD)
    Ps pre_ready = 0;           ///< earliest PRE (tRAS / tRTP / tWR)
    Ps ref_ready = 0;           ///< earliest REF touching this bank (tRP after PRE)
  };

  /// Fully computed earliest-legal schedule for one request.
  struct Plan {
    RowBufferResult kind = RowBufferResult::Hit;
    Ps pre_t = 0;   ///< valid when kind == Conflict
    Ps act_t = 0;   ///< valid when kind != Hit
    Ps cas_t = 0;
    Ps data_start = 0;
    Ps data_end = 0;
  };

  /// Per-bank view of the queue for the incremental FR-FCFS pick: an
  /// intrusive arrival-ordered list of the bank's queued slots plus
  /// per-direction member totals. Which (outcome x direction) classes are
  /// populated is derived in O(1) from the totals and the row-count table
  /// (see the header design note), so the per-bin scan for class
  /// representatives stops as soon as every populated class produced its
  /// oldest member — one step in the common single-class regimes.
  struct Bin {
    std::uint32_t head = kNoSlot;          ///< oldest queued slot of this bank
    std::uint32_t tail = kNoSlot;
    std::array<std::uint32_t, 2> total{};  ///< queued members per direction
  };

  /// Open-addressing count table keyed by (bank, row, direction): how
  /// many queued requests target that exact page. Membership counts do
  /// not depend on bank state, so they are maintained incrementally on
  /// enqueue/dequeue only and never invalidated; the pick uses them to
  /// prove the absence of row hits without scanning a bin. Linear
  /// probing with backward-shift deletion; sized at 4x queue depth so
  /// probe chains stay short.
  struct RowCountEntry {
    std::uint64_t key = kEmptyKey;
    std::uint32_t count = 0;
  };
  static constexpr std::uint64_t kEmptyKey = ~std::uint64_t{0};

  static constexpr unsigned class_index(RowBufferResult kind, bool is_write) {
    return static_cast<unsigned>(kind) * 2 + (is_write ? 1 : 0);
  }

  RowBufferResult classify(const Request& req) const;
  /// Earliest-legal Plan for any (bank, outcome, direction) class; the
  /// single source of scheduling truth shared by all policies.
  Plan plan_class(std::uint32_t bank_id, RowBufferResult kind, bool is_write) const;
  /// data_start of plan_class() alone — the pick's comparison key —
  /// without materializing the Plan. The winner is re-planned in full
  /// exactly once per pick.
  Ps eval_class(std::uint32_t bank_id, RowBufferResult kind, bool is_write) const;
  Plan plan_request(const Request& req) const;
  void commit(const Request& req, const Plan& plan, PhaseStats& stats);
  void refresh_if_due(PhaseStats& stats);
  void do_refresh(PhaseStats& stats);
  Ps close_bank(std::uint32_t bank_id, PhaseStats& stats);
  void note_act_rate(Ps t, unsigned bank_group);
  Ps earliest_act_after(Ps floor, std::uint32_t bank_id) const;
  void emit(const Command& cmd);

  // Queue management (slot arena + arrival FIFO + per-bank bins).
  std::uint32_t enqueue(const Request& req);
  void dequeue(std::uint32_t slot_id);
  /// E = min over queued directions of the global data-slot floor (see
  /// the header design note): no queued request can start earlier.
  Ps pick_bound() const;
  std::uint32_t pick_fr_fcfs(Plan& plan_out) const;
  std::uint32_t pick_fr_fcfs_oracle(Plan& plan_out) const;

  // Row-count table primitives.
  static std::uint64_t row_key(std::uint32_t bank, std::uint32_t row, bool is_write) {
    return (static_cast<std::uint64_t>(bank) << 33) |
           (static_cast<std::uint64_t>(row) << 1) | (is_write ? 1 : 0);
  }
  std::size_t row_slot(std::uint64_t key) const;
  void row_count_add(std::uint64_t key);
  void row_count_remove(std::uint64_t key);
  std::uint32_t row_count_get(std::uint64_t key) const;

  DeviceConfig device_;
  ControllerConfig config_;
  RefreshMode refresh_mode_;
  CommandObserver* observer_ = nullptr;

  std::vector<Bank> banks_;
  std::vector<Ps> last_act_in_group_;   ///< per bank group, for tRRD_L
  std::vector<Ps> last_cas_in_group_;   ///< per bank group, for tCCD_L
  std::vector<std::uint32_t> group_of_; ///< bank id -> bank group (no div on hot path)
  Ps last_act_any_ = kNegInf;
  Ps last_cas_any_ = kNegInf;
  // Four-activate window as a fixed ring (ACT times are strictly
  // increasing, so the oldest of the last four is faw_[faw_head_]).
  std::array<Ps, 4> faw_{};
  unsigned faw_head_ = 0;
  unsigned faw_len_ = 0;
  Ps bus_free_ = 0;
  Ps last_wr_data_end_ = kNegInf;
  Ps last_rd_data_end_ = kNegInf;
  bool last_burst_was_write_ = false;
  Ps now_ = 0;

  Ps next_refresh_ = 0;
  Ps refresh_interval_ = 0;
  unsigned refresh_groups_ = 1;
  unsigned next_refresh_group_ = 0;
  Ps last_refresh_ = kNegInf;

  // Scheduling queue: a fixed arena of requests threaded onto two
  // intrusive doubly-linked lists — the global arrival FIFO and the
  // owning bank's bin — so enqueue, dequeue and in-order iteration are
  // all O(1) with no element movement at any queue depth.
  std::vector<Request> slots_;               ///< fixed arena of queued requests
  std::vector<std::uint32_t> free_slots_;
  std::vector<std::uint32_t> fifo_next_, fifo_prev_;
  std::vector<std::uint32_t> bank_next_, bank_prev_;
  std::uint32_t fifo_head_ = kNoSlot;        ///< oldest queued slot
  std::uint32_t fifo_tail_ = kNoSlot;
  std::vector<Bin> bins_;                    ///< one per bank
  /// Bitmask of banks with a non-empty bin (64 banks per word); the
  /// pick's fallback visits only set bits instead of scanning every bank.
  std::vector<std::uint64_t> populated_;
  std::vector<RowCountEntry> row_counts_;    ///< (bank, row, dir) -> queued count
  std::size_t row_mask_ = 0;                 ///< row_counts_.size() - 1 (power of two)
  /// Queued totals per (bank group, direction): lets the pick's floor use
  /// each populated group's own CAS/ACT-rate state instead of the loosest
  /// group's, which is what makes it exact in the steady state.
  std::vector<std::array<std::uint32_t, 2>> queued_per_group_;
  /// Number of queued requests that currently hit an open row. Updated on
  /// enqueue/dequeue and on every open-row change (ACT/PRE/refresh).
  /// When zero, every queued request needs an ACT, so the pick's floor
  /// may include the global ACT-rate terms — the tight bound in the
  /// ACT-limited (conflict-chain) regimes.
  std::uint32_t queued_hits_ = 0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace tbi::dram
