/// \file controller.hpp
/// Command-level DRAM memory controller / timing model.
///
/// The controller consumes burst requests from a RequestStream through a
/// fixed-depth scheduling queue, chooses the next request with FR-FCFS
/// (row hits first, then oldest) or plain FCFS, and schedules the ACT /
/// PRE / RD / WR / REF commands needed at their earliest legal issue time
/// under the JEDEC constraints of dram/timing.hpp. Time is continuous
/// integer picoseconds; there is no cycle stepping, which makes the model
/// fast enough (millions of bursts per second) to reproduce all Table I
/// configurations in seconds.
///
/// Fidelity notes (DESIGN.md §5): per-bank row state, bank-group-aware
/// tCCD/tRRD, the four-activate window, rank-level write-to-read
/// turnaround, data-bus serialization, and all-bank / per-bank / same-bank
/// refresh are modeled; command-bus slot contention and PHY effects are
/// not. Every scheduled command can be streamed into a TimingChecker that
/// independently re-validates the protocol.
#pragma once

#include <deque>
#include <limits>
#include <vector>

#include "dram/standards.hpp"
#include "dram/stats.hpp"
#include "dram/stream.hpp"
#include "dram/types.hpp"

namespace tbi::dram {

/// Observer for every command the controller schedules (checker, traces).
class CommandObserver {
 public:
  virtual ~CommandObserver() = default;
  virtual void on_command(const Command& cmd) = 0;
};

struct ControllerConfig {
  /// FrFcfs: earliest-data-slot greedy over the whole queue — the request
  /// whose burst can reach the data bus first is served next (ties go to
  /// the oldest). This emulates a cycle-accurate FR-FCFS controller: row
  /// hits naturally overtake conflicting requests while a conflict whose
  /// PRE/ACT chain has completed costs nothing extra and regains priority
  /// through its age.
  /// Fcfs: strict arrival order (baseline for tests/ablation).
  enum class Policy { FrFcfs, Fcfs };

  unsigned queue_depth = 64;
  Policy policy = Policy::FrFcfs;
  /// When true, the device's default refresh mode is used and
  /// `refresh_mode` is ignored.
  bool use_device_default_refresh = true;
  RefreshMode refresh_mode = RefreshMode::AllBank;
};

class Controller {
 public:
  Controller(DeviceConfig device, ControllerConfig config);

  /// Drain \p stream completely and return the phase statistics.
  /// Controller state (open rows, clock, refresh phase) carries over to
  /// the next call, so write phase and read phase chain realistically.
  PhaseStats run_phase(RequestStream& stream, std::string label);

  /// Attach an observer receiving every scheduled command (or nullptr).
  void set_observer(CommandObserver* observer) { observer_ = observer; }

  const DeviceConfig& device() const { return device_; }
  RefreshMode refresh_mode() const { return refresh_mode_; }

  /// Current simulated time (end of last scheduled data burst).
  Ps now() const { return now_; }

 private:
  static constexpr Ps kNegInf = std::numeric_limits<Ps>::min() / 4;

  struct Bank {
    bool open = false;
    std::uint32_t row = 0;
    Ps last_act = kNegInf;      ///< issue time of last ACT
    Ps act_ready = 0;           ///< earliest next ACT (tRP / tRC / refresh)
    Ps rdwr_ready = 0;          ///< earliest CAS after ACT (tRCD)
    Ps pre_ready = 0;           ///< earliest PRE (tRAS / tRTP / tWR)
    Ps ref_ready = 0;           ///< earliest REF touching this bank (tRP after PRE)
  };

  /// Fully computed earliest-legal schedule for one request.
  struct Plan {
    RowBufferResult kind = RowBufferResult::Hit;
    Ps pre_t = 0;   ///< valid when kind == Conflict
    Ps act_t = 0;   ///< valid when kind != Hit
    Ps cas_t = 0;
    Ps data_start = 0;
    Ps data_end = 0;
  };

  RowBufferResult classify(const Request& req) const;
  Plan plan_request(const Request& req) const;
  void commit(const Request& req, const Plan& plan, PhaseStats& stats);
  void refresh_if_due(PhaseStats& stats);
  void do_refresh(PhaseStats& stats);
  Ps close_bank(std::uint32_t bank_id, PhaseStats& stats);
  void note_act_rate(Ps t, unsigned bank_group);
  Ps earliest_act_after(Ps floor, std::uint32_t bank_id) const;
  std::size_t pick_request() const;
  void emit(const Command& cmd);

  DeviceConfig device_;
  ControllerConfig config_;
  RefreshMode refresh_mode_;
  CommandObserver* observer_ = nullptr;

  std::vector<Bank> banks_;
  std::vector<Ps> last_act_in_group_;   ///< per bank group, for tRRD_L
  std::vector<Ps> last_cas_in_group_;   ///< per bank group, for tCCD_L
  Ps last_act_any_ = kNegInf;
  Ps last_cas_any_ = kNegInf;
  std::deque<Ps> faw_window_;           ///< issue times of recent ACTs
  Ps bus_free_ = 0;
  Ps last_wr_data_end_ = kNegInf;
  Ps last_rd_data_end_ = kNegInf;
  bool last_burst_was_write_ = false;
  Ps now_ = 0;

  Ps next_refresh_ = 0;
  Ps refresh_interval_ = 0;
  unsigned refresh_groups_ = 1;
  unsigned next_refresh_group_ = 0;
  Ps last_refresh_ = kNegInf;

  std::deque<Request> queue_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace tbi::dram
