/// \file standards.hpp
/// Device configurations for the five JEDEC standards (two speed grades
/// each) evaluated in the paper, plus JSON (de)serialization for custom
/// devices.
///
/// Channel conventions (documented in DESIGN.md §5):
///  * one rank per channel;
///  * DDR3/DDR4/DDR5: 64 B per burst (64-bit channel x BL8, or 32-bit
///    DDR5 subchannel x BL16), 8 KiB pages -> 128 bursts per page;
///  * LPDDR4/LPDDR5: x16 channel, 32 B per burst (BL16); effective page
///    128 bursts (LPDDR4, ganged) / 64 bursts (LPDDR5);
///  * flat bank ids are bank-group-major (see dram/types.hpp).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/json.hpp"
#include "dram/timing.hpp"

namespace tbi::dram {

enum class Standard { DDR3, DDR4, DDR5, LPDDR4, LPDDR5 };

const char* to_string(Standard s);

/// How the controller refreshes the device (JEDEC command availability
/// differs per standard; defaults follow the standard).
enum class RefreshMode {
  Disabled,  ///< legal while interleaver data lifetime < retention (paper §III)
  AllBank,   ///< REFab: whole rank blocked for tRFC_ab (DDR3/DDR4)
  PerBank,   ///< REFpb: one bank at a time (LPDDR4/LPDDR5)
  SameBank,  ///< REFsb: same bank index in every bank group (DDR5)
};

const char* to_string(RefreshMode m);

/// Rough per-command energy model (DRAMPower-style abstraction, values are
/// representative per-channel numbers, not vendor data).
struct EnergyParams {
  double act_pre_pj = 0;     ///< one ACT + eventual PRE pair
  double rd_pj = 0;          ///< one read burst
  double wr_pj = 0;          ///< one write burst
  double ref_ab_pj = 0;      ///< one all-bank refresh (group refresh scaled)
  double background_mw = 0;  ///< standby power while the phase runs
};

/// Complete description of one DRAM channel configuration.
struct DeviceConfig {
  std::string name;
  Standard standard = Standard::DDR4;
  unsigned data_rate_mts = 0;     ///< transfers per second (informational)
  unsigned banks = 0;             ///< total banks in the rank
  unsigned bank_groups = 1;       ///< 1 => standard without bank groups
  unsigned columns_per_page = 0;  ///< page size counted in bursts
  unsigned rows_per_bank = 0;
  unsigned burst_bytes = 0;       ///< user data moved per burst
  Ps burst_time = 0;              ///< data-bus occupancy per burst
  TimingParams timing;
  EnergyParams energy;
  RefreshMode default_refresh = RefreshMode::AllBank;

  unsigned banks_per_group() const { return banks / bank_groups; }
  std::uint64_t page_bytes() const {
    return std::uint64_t{columns_per_page} * burst_bytes;
  }
  std::uint64_t capacity_bytes() const {
    return page_bytes() * rows_per_bank * banks;
  }
  /// Theoretical peak data bandwidth in Gbit/s (bytes/ps * 8000).
  double peak_bandwidth_gbps() const {
    return 8000.0 * burst_bytes / static_cast<double>(burst_time);
  }

  /// Sanity-checks geometry and timing; throws std::invalid_argument.
  void validate() const;
};

/// The ten configurations of the paper's Table I, in table order.
const std::vector<DeviceConfig>& standard_configs();

/// Additional intermediate speed grades (DDR3-1066, DDR4-2400, DDR5-4800,
/// LPDDR4-3200, LPDDR5-6400) for sweeps beyond the paper's table; same
/// channel conventions, parameters interpolated from public bins.
const std::vector<DeviceConfig>& extended_configs();

/// Look up a configuration by name in the standard and extended sets
/// (e.g. "DDR4-3200" or "DDR4-2400"); returns nullptr when unknown.
const DeviceConfig* find_config(std::string_view name);

/// JSON round-trip for custom device descriptions.
Json config_to_json(const DeviceConfig& cfg);
DeviceConfig config_from_json(const Json& j);

}  // namespace tbi::dram
