#include "dram/decoder.hpp"

#include <stdexcept>

#include "common/bits.hpp"

namespace tbi::dram {

const char* to_string(AddressLayout layout) {
  switch (layout) {
    case AddressLayout::RoBaCoBg: return "Ro-Ba-CoH-Bg-CoL";
    case AddressLayout::RoBaCo: return "Ro-Ba-Co";
    case AddressLayout::RoCoBa: return "Ro-Co-Ba";
    case AddressLayout::RoBaCoBgXor: return "Ro-Ba-CoH-Bg-CoL (xor)";
  }
  return "?";
}

AddressDecoder::AddressDecoder(const DeviceConfig& device, AddressLayout layout)
    : layout_(layout),
      bank_bits_(ilog2(device.banks)),
      group_bits_(ilog2(device.bank_groups)),
      column_bits_(ilog2(device.columns_per_page)),
      row_bits_(clog2(device.rows_per_bank)),
      capacity_(std::uint64_t{device.banks} * device.rows_per_bank *
                device.columns_per_page) {
  if (group_bits_ > column_bits_) {
    throw std::invalid_argument("AddressDecoder: more bank-group bits than column bits");
  }
}

std::uint64_t AddressDecoder::encode(const Address& addr) const {
  switch (layout_) {
    case AddressLayout::RoBaCoBg:
    case AddressLayout::RoBaCoBgXor: {
      const std::uint64_t group = addr.bank & low_mask(group_bits_);
      std::uint64_t bank_in_group = addr.bank >> group_bits_;
      const std::uint64_t row = addr.row;
      if (layout_ == AddressLayout::RoBaCoBgXor && bank_bits_ > group_bits_) {
        bank_in_group ^= row & low_mask(bank_bits_ - group_bits_);
      }
      std::uint64_t idx = group;
      unsigned pos = group_bits_;
      idx |= std::uint64_t{addr.column} << pos;
      pos += column_bits_;
      idx |= bank_in_group << pos;
      pos += bank_bits_ - group_bits_;
      idx |= row << pos;
      return idx;
    }
    case AddressLayout::RoBaCo:
      return std::uint64_t{addr.column} |
             (std::uint64_t{addr.bank} << column_bits_) |
             (std::uint64_t{addr.row} << (column_bits_ + bank_bits_));
    case AddressLayout::RoCoBa:
      return std::uint64_t{addr.bank} |
             (std::uint64_t{addr.column} << bank_bits_) |
             (std::uint64_t{addr.row} << (bank_bits_ + column_bits_));
  }
  return 0;
}

}  // namespace tbi::dram
