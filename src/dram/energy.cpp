#include "dram/energy.hpp"

namespace tbi::dram {

EnergyReport compute_energy(const DeviceConfig& device, const PhaseStats& stats,
                            RefreshMode refresh_mode) {
  const EnergyParams& e = device.energy;
  EnergyReport r;
  r.act_pre_nj = 1e-3 * e.act_pre_pj * static_cast<double>(stats.activates);
  r.rd_nj = 1e-3 * e.rd_pj * static_cast<double>(stats.reads);
  r.wr_nj = 1e-3 * e.wr_pj * static_cast<double>(stats.writes);
  // Group refreshes touch banks/groups-of-banks; scale to the all-bank
  // equivalent by the fraction of banks refreshed per command.
  double ref_scale = 1.0;
  switch (refresh_mode) {
    case RefreshMode::PerBank: ref_scale = 1.0 / device.banks; break;
    case RefreshMode::SameBank: ref_scale = 1.0 / device.banks_per_group(); break;
    default: break;
  }
  r.refresh_nj = 1e-3 * e.ref_ab_pj * ref_scale * static_cast<double>(stats.refreshes);
  // background_mw [mW] * elapsed [ps] -> nJ: 1 mW * 1 ps = 1e-12 mJ = 1e-6 nJ.
  r.background_nj = e.background_mw * static_cast<double>(stats.elapsed()) * 1e-6;
  return r;
}

}  // namespace tbi::dram
