#include "dram/checker.hpp"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <limits>

namespace tbi::dram {

namespace {

constexpr Ps kNegInf = std::numeric_limits<Ps>::min() / 4;

struct BankShadow {
  bool open = false;
  std::uint32_t row = 0;
  Ps last_act = kNegInf;
  Ps last_pre = kNegInf;
  Ps last_rd_cas = kNegInf;
  Ps last_wr_data_end = kNegInf;
  Ps ref_block_until = kNegInf;
};

std::string fmt(const char* what, const Command& c) {
  char buf[160];
  std::snprintf(buf, sizeof buf, "%s: %s @%lld ps bank=%u row=%u col=%u",
                what, to_string(c.kind), static_cast<long long>(c.issue),
                c.bank, c.row, c.column);
  return buf;
}

}  // namespace

std::vector<std::string> TimingChecker::finish() {
  std::vector<std::string> violations;
  auto flag = [&](const char* what, const Command& c) {
    if (violations.size() < 64) violations.push_back(fmt(what, c));
  };

  std::stable_sort(commands_.begin(), commands_.end(),
                   [](const Command& a, const Command& b) { return a.issue < b.issue; });

  const TimingParams& t = device_.timing;
  std::vector<BankShadow> banks(device_.banks);
  std::vector<Ps> last_act_bg(device_.bank_groups, kNegInf);
  std::vector<Ps> last_cas_bg(device_.bank_groups, kNegInf);
  Ps last_act_any = kNegInf;
  Ps last_cas_any = kNegInf;
  Ps last_wr_data_end = kNegInf;
  Ps bus_busy_until = kNegInf;
  std::deque<Ps> faw;

  auto group_of = [&](std::uint32_t bank) { return bank % device_.bank_groups; };

  for (const Command& c : commands_) {
    switch (c.kind) {
      case CommandKind::Act: {
        BankShadow& b = banks[c.bank];
        if (b.open) flag("ACT to open bank", c);
        if (c.issue < b.last_pre + t.tRP) flag("tRP violated", c);
        if (c.issue < b.last_act + t.tRC) flag("tRC violated", c);
        if (c.issue < b.ref_block_until) flag("ACT during refresh", c);
        if (c.issue < last_act_any + t.tRRD_S) flag("tRRD_S violated", c);
        if (c.issue < last_act_bg[group_of(c.bank)] + t.tRRD_L) flag("tRRD_L violated", c);
        if (faw.size() == 4 && c.issue < faw.front() + t.tFAW) flag("tFAW violated", c);
        b.open = true;
        b.row = c.row;
        b.last_act = c.issue;
        last_act_any = c.issue;
        last_act_bg[group_of(c.bank)] = c.issue;
        faw.push_back(c.issue);
        if (faw.size() > 4) faw.pop_front();
        break;
      }
      case CommandKind::Pre: {
        BankShadow& b = banks[c.bank];
        if (!b.open) flag("PRE to closed bank", c);
        if (c.issue < b.last_act + t.tRAS) flag("tRAS violated", c);
        if (c.issue < b.last_rd_cas + t.tRTP) flag("tRTP violated", c);
        if (c.issue < b.last_wr_data_end + t.tWR) flag("tWR violated", c);
        b.open = false;
        b.last_pre = c.issue;
        break;
      }
      case CommandKind::Rd:
      case CommandKind::Wr: {
        BankShadow& b = banks[c.bank];
        const bool is_wr = c.kind == CommandKind::Wr;
        if (!b.open) flag("CAS to closed bank", c);
        if (b.open && b.row != c.row) flag("CAS to wrong row", c);
        if (c.issue < b.last_act + t.tRCD) flag("tRCD violated", c);
        if (c.issue < last_cas_any + t.tCCD_S) flag("tCCD_S violated", c);
        if (c.issue < last_cas_bg[group_of(c.bank)] + t.tCCD_L) flag("tCCD_L violated", c);
        if (!is_wr && c.issue < last_wr_data_end + t.tWTR) flag("tWTR violated", c);
        if (c.data_start < bus_busy_until) flag("data bus overlap", c);
        const Ps latency = is_wr ? t.CWL : t.CL;
        if (c.data_start < c.issue + latency) flag("CAS latency violated", c);
        if (c.data_end != c.data_start + device_.burst_time) flag("bad burst length", c);
        last_cas_any = c.issue;
        last_cas_bg[group_of(c.bank)] = c.issue;
        bus_busy_until = c.data_end;
        if (is_wr) {
          last_wr_data_end = c.data_end;
          b.last_wr_data_end = c.data_end;
        } else {
          b.last_rd_cas = c.issue;
        }
        break;
      }
      case CommandKind::RefAb: {
        for (std::uint32_t i = 0; i < device_.banks; ++i) {
          BankShadow& b = banks[i];
          if (b.open) flag("REFab with open bank", c);
          if (c.issue < b.last_pre + t.tRP) flag("REFab before tRP", c);
          b.ref_block_until = c.issue + t.tRFC_ab;
        }
        break;
      }
      case CommandKind::RefGrp: {
        for (std::uint32_t i = 0; i < device_.banks; ++i) {
          const bool member = (refresh_mode_ == RefreshMode::PerBank)
                                  ? (i == c.bank)
                                  : (i / device_.bank_groups == c.bank);
          if (!member) continue;
          BankShadow& b = banks[i];
          if (b.open) flag("REFgrp with open bank", c);
          if (c.issue < b.last_pre + t.tRP) flag("REFgrp before tRP", c);
          b.ref_block_until = c.issue + t.tRFC_grp;
        }
        break;
      }
    }
  }
  return violations;
}

}  // namespace tbi::dram
