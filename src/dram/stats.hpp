/// \file stats.hpp
/// Per-phase performance counters and derived metrics.
#pragma once

#include <cstdint>
#include <string>

#include "common/types.hpp"

namespace tbi::dram {

/// Counters accumulated while the controller executes one access phase
/// (the interleaver's write phase or read phase).
struct PhaseStats {
  std::string label;

  std::uint64_t bursts = 0;
  /// Scheduler decisions taken while draining the phase (one per burst
  /// served; separate counter so the pick-cost metric stays honest if the
  /// scheduling loop ever changes shape).
  std::uint64_t picks = 0;
  /// Host wall time spent inside Controller::run_phase for this phase, in
  /// nanoseconds (two clock reads per phase — not per pick).
  std::uint64_t host_ns = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t activates = 0;
  std::uint64_t precharges = 0;
  std::uint64_t refreshes = 0;
  std::uint64_t row_hits = 0;
  std::uint64_t row_misses = 0;
  std::uint64_t row_conflicts = 0;

  Ps start = 0;  ///< first data beat of the phase
  Ps end = 0;    ///< one past the last data beat
  Ps busy = 0;   ///< accumulated data-bus occupancy

  Ps elapsed() const { return end > start ? end - start : 0; }

  /// Data-bus utilization in [0,1] — the paper's "bandwidth utilization".
  double utilization() const {
    const Ps e = elapsed();
    return e > 0 ? static_cast<double>(busy) / static_cast<double>(e) : 0.0;
  }

  /// Achieved data bandwidth in Gbit/s given the burst payload size
  /// (bytes/ps * 8000 = Gbit/s).
  double bandwidth_gbps(unsigned burst_bytes) const {
    const Ps e = elapsed();
    if (e <= 0) return 0.0;
    return 8000.0 * static_cast<double>(bursts) * burst_bytes / static_cast<double>(e);
  }

  /// Host nanoseconds per scheduler pick — the perf-observability metric
  /// for the controller hot path (compared with a loose band, never
  /// exactly: it is host timing, not simulated time).
  double ns_per_pick() const {
    return picks ? static_cast<double>(host_ns) / static_cast<double>(picks) : 0.0;
  }

  double row_hit_rate() const {
    const std::uint64_t total = row_hits + row_misses + row_conflicts;
    return total ? static_cast<double>(row_hits) / static_cast<double>(total) : 0.0;
  }
};

}  // namespace tbi::dram
