/// \file types.hpp
/// Core value types of the command-level DRAM model.
#pragma once

#include <cstdint>
#include <string>

#include "common/types.hpp"

namespace tbi::dram {

/// A decoded DRAM location at burst granularity.
///
/// `bank` is the *flat* bank id in bank-group-major order: bank group =
/// `bank % bank_groups`, bank-within-group = `bank / bank_groups`. This
/// numbering implements the paper's convention that "the lower bank address
/// bits always denote the bank group", so incrementing the flat id by one
/// always switches the bank group (round-robin).
struct Address {
  std::uint32_t bank = 0;
  std::uint32_t row = 0;
  std::uint32_t column = 0;  ///< column counted in bursts within the page

  friend bool operator==(const Address&, const Address&) = default;
};

/// One burst-sized memory request as produced by the interleaver streams.
struct Request {
  Address addr;
  bool is_write = false;
  std::uint64_t seq = 0;  ///< arrival order, used for FCFS age comparison
};

/// DRAM command set of the timing model (rank-level, one rank).
enum class CommandKind : std::uint8_t {
  Act,     ///< activate a row (bank must be precharged)
  Pre,     ///< precharge a bank
  Rd,      ///< column read burst
  Wr,      ///< column write burst
  RefAb,   ///< all-bank refresh
  RefGrp,  ///< partial refresh (per-bank / same-bank group rotation)
};

const char* to_string(CommandKind kind);

/// A fully scheduled command; consumed by the protocol checker and by
/// optional trace dumps.
struct Command {
  CommandKind kind = CommandKind::Act;
  Ps issue = 0;               ///< command issue time
  std::uint32_t bank = 0;     ///< undefined for RefAb
  std::uint32_t row = 0;      ///< ACT only
  std::uint32_t column = 0;   ///< RD/WR only
  Ps data_start = 0;          ///< RD/WR: first data beat on the bus
  Ps data_end = 0;            ///< RD/WR: one past the last data beat
};

/// Row-buffer outcome of a request, for statistics.
enum class RowBufferResult : std::uint8_t {
  Hit,       ///< page already open
  Miss,      ///< bank precharged, ACT needed
  Conflict,  ///< other row open, PRE + ACT needed
};

}  // namespace tbi::dram
