#include "dram/trace.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace tbi::dram {

void TraceRecorder::on_command(const Command& cmd) {
  out_ << format_command(cmd) << '\n';
  ++count_;
}

void TraceRecorder::comment(const std::string& text) { out_ << "# " << text << '\n'; }

std::string format_command(const Command& cmd) {
  char buf[160];
  std::snprintf(buf, sizeof buf, "%" PRId64 " %s %u %u %u %" PRId64 " %" PRId64,
                cmd.issue, to_string(cmd.kind), cmd.bank, cmd.row, cmd.column,
                cmd.data_start, cmd.data_end);
  return buf;
}

bool parse_command(const std::string& line, Command& out) {
  // Skip blank lines and comments.
  const auto first = line.find_first_not_of(" \t\r");
  if (first == std::string::npos || line[first] == '#') return false;

  char kind[16] = {0};
  long long issue = 0, data_start = 0, data_end = 0;
  unsigned bank = 0, row = 0, column = 0;
  const int n = std::sscanf(line.c_str(), "%lld %15s %u %u %u %lld %lld", &issue,
                            kind, &bank, &row, &column, &data_start, &data_end);
  if (n != 7) throw std::invalid_argument("trace: malformed line: " + line);

  const std::string k = kind;
  if (k == "ACT") out.kind = CommandKind::Act;
  else if (k == "PRE") out.kind = CommandKind::Pre;
  else if (k == "RD") out.kind = CommandKind::Rd;
  else if (k == "WR") out.kind = CommandKind::Wr;
  else if (k == "REFab") out.kind = CommandKind::RefAb;
  else if (k == "REFgrp") out.kind = CommandKind::RefGrp;
  else throw std::invalid_argument("trace: unknown command kind: " + k);

  out.issue = issue;
  out.bank = bank;
  out.row = row;
  out.column = column;
  out.data_start = data_start;
  out.data_end = data_end;
  return true;
}

std::vector<Command> parse_trace(std::istream& in) {
  std::vector<Command> commands;
  std::string line;
  while (std::getline(in, line)) {
    Command cmd;
    if (parse_command(line, cmd)) commands.push_back(cmd);
  }
  return commands;
}

double TraceSummary::bank_imbalance() const {
  if (per_bank_accesses.empty()) return 0.0;
  const auto [lo, hi] =
      std::minmax_element(per_bank_accesses.begin(), per_bank_accesses.end());
  if (*hi == 0) return 0.0;
  return static_cast<double>(*hi - *lo) / static_cast<double>(*hi);
}

TraceSummary summarize_trace(const std::vector<Command>& commands, unsigned banks) {
  TraceSummary s;
  s.per_bank_accesses.assign(banks, 0);
  bool first = true;
  for (const Command& c : commands) {
    if (first) {
      s.first_issue = c.issue;
      first = false;
    }
    s.first_issue = std::min(s.first_issue, c.issue);
    s.last_issue = std::max(s.last_issue, c.issue);
    switch (c.kind) {
      case CommandKind::Act: ++s.activates; break;
      case CommandKind::Pre: ++s.precharges; break;
      case CommandKind::Rd:
        ++s.reads;
        if (c.bank < banks) ++s.per_bank_accesses[c.bank];
        break;
      case CommandKind::Wr:
        ++s.writes;
        if (c.bank < banks) ++s.per_bank_accesses[c.bank];
        break;
      case CommandKind::RefAb:
      case CommandKind::RefGrp: ++s.refreshes; break;
    }
  }
  return s;
}

}  // namespace tbi::dram
