/// \file trace.hpp
/// Command trace recording and replay (DRAMSys-style .stl-like text
/// format). A TraceRecorder observes a controller run and serializes every
/// command; parse_trace() loads a trace back for offline analysis, and
/// trace_histogram() computes per-bank / per-kind summaries. Used by the
/// inspect_phases example and by tests that assert on command sequences.
///
/// Format: one command per line,
///   <issue_ps> <KIND> <bank> <row> <column> <data_start> <data_end>
/// with '#'-prefixed comment lines.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "dram/controller.hpp"
#include "dram/types.hpp"

namespace tbi::dram {

/// Streams every observed command into an std::ostream.
class TraceRecorder final : public CommandObserver {
 public:
  explicit TraceRecorder(std::ostream& out) : out_(out) {}

  void on_command(const Command& cmd) override;

  /// Emit a comment line (phase markers etc.).
  void comment(const std::string& text);

  std::uint64_t commands_written() const { return count_; }

 private:
  std::ostream& out_;
  std::uint64_t count_ = 0;
};

/// Serialize one command in trace format (without newline).
std::string format_command(const Command& cmd);

/// Parse one trace line; returns false for comments/blank lines and throws
/// std::invalid_argument on malformed input.
bool parse_command(const std::string& line, Command& out);

/// Load a whole trace document.
std::vector<Command> parse_trace(std::istream& in);

/// Aggregate statistics of a (possibly replayed) command stream.
struct TraceSummary {
  std::uint64_t activates = 0;
  std::uint64_t precharges = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t refreshes = 0;
  Ps first_issue = 0;
  Ps last_issue = 0;
  std::vector<std::uint64_t> per_bank_accesses;  ///< RD+WR per bank

  /// Largest / smallest per-bank access count (load-balance check).
  double bank_imbalance() const;
};

TraceSummary summarize_trace(const std::vector<Command>& commands,
                             unsigned banks);

}  // namespace tbi::dram
