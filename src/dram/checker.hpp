/// \file checker.hpp
/// Independent JEDEC protocol validator.
///
/// The checker consumes the command stream emitted by the controller and
/// re-validates every inter-command constraint with its own (deliberately
/// separate) bookkeeping, mirroring how DRAMSys pairs its channel model
/// with a trace checker. Tests attach it to every simulation they run, so
/// a scheduling bug in the controller cannot silently produce optimistic
/// bandwidth numbers.
///
/// The controller may emit commands out of global time order (it schedules
/// each chosen request at its earliest legal slot, so an ACT for request
/// k+1 can precede the CAS of request k on another bank). Call finish() to
/// sort by issue time and run the validation pass.
#pragma once

#include <string>
#include <vector>

#include "dram/controller.hpp"
#include "dram/standards.hpp"
#include "dram/types.hpp"

namespace tbi::dram {

class TimingChecker final : public CommandObserver {
 public:
  explicit TimingChecker(DeviceConfig device, RefreshMode refresh_mode)
      : device_(std::move(device)), refresh_mode_(refresh_mode) {}

  void on_command(const Command& cmd) override { commands_.push_back(cmd); }

  /// Validate the recorded stream; returns the list of violations
  /// (empty means the stream is protocol-clean).
  std::vector<std::string> finish();

  std::size_t command_count() const { return commands_.size(); }
  const std::vector<Command>& commands() const { return commands_; }

 private:
  DeviceConfig device_;
  RefreshMode refresh_mode_;
  std::vector<Command> commands_;
};

}  // namespace tbi::dram
