/// \file timing.hpp
/// JEDEC inter-command timing constraints in integer picoseconds.
///
/// The subset modeled here is exactly the set that bounds *sustained*
/// bandwidth of page-hit/page-miss streams: row timings (tRCD/tRP/tRAS/tRC),
/// activation rate limits (tRRD_S/L, tFAW), CAS-to-CAS spacing with bank
/// groups (tCCD_S/L), write recovery and turnaround (tWR, tWTR, tRTP), and
/// refresh (tREFI, tRFC variants). PHY/training/ODT effects shift absolute
/// latency, not sustained bandwidth, and are out of scope (DESIGN.md §5).
#pragma once

#include <string>

#include "common/types.hpp"

namespace tbi::dram {

struct TimingParams {
  Ps tCK = 0;      ///< command clock period (informational; model is ps-based)
  Ps CL = 0;       ///< read command to first data
  Ps CWL = 0;      ///< write command to first data
  Ps tRCD = 0;     ///< ACT to RD/WR, same bank
  Ps tRP = 0;      ///< PRE to ACT, same bank
  Ps tRAS = 0;     ///< ACT to PRE, same bank
  Ps tRC = 0;      ///< ACT to ACT, same bank
  Ps tRRD_S = 0;   ///< ACT to ACT, different bank group
  Ps tRRD_L = 0;   ///< ACT to ACT, same bank group
  Ps tFAW = 0;     ///< four-activate window (rank)
  Ps tCCD_S = 0;   ///< CAS to CAS, different bank group
  Ps tCCD_L = 0;   ///< CAS to CAS, same bank group
  Ps tRTP = 0;     ///< RD to PRE, same bank
  Ps tWR = 0;      ///< end of write data to PRE, same bank
  Ps tWTR = 0;     ///< end of write data to RD command (rank)
  Ps tRTW_bubble = 0;  ///< extra data-bus gap when turning RD -> WR
  Ps tREFI = 0;    ///< average refresh interval (all-bank equivalent)
  Ps tRFC_ab = 0;  ///< all-bank refresh cycle time
  Ps tRFC_grp = 0; ///< per-bank / same-bank refresh cycle time

  /// Throws std::invalid_argument when a parameter combination is
  /// physically inconsistent (e.g. tRC < tRAS + tRP).
  void validate() const;
};

}  // namespace tbi::dram
