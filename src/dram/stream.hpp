/// \file stream.hpp
/// Pull-based request stream interface between the interleaver layer and
/// the memory controller. Streams generate addresses on the fly, so a
/// 12.5 M-element interleaver phase never materializes in memory.
#pragma once

#include <cstddef>
#include <vector>

#include "dram/types.hpp"

namespace tbi::dram {

class RequestStream {
 public:
  virtual ~RequestStream() = default;

  /// Produce the next request; returns false at end of stream.
  virtual bool next(Request& out) = 0;
};

/// Fixed request sequence, mostly for tests.
class VectorStream final : public RequestStream {
 public:
  explicit VectorStream(std::vector<Request> requests)
      : requests_(std::move(requests)) {}

  bool next(Request& out) override {
    if (pos_ >= requests_.size()) return false;
    out = requests_[pos_++];
    return true;
  }

 private:
  std::vector<Request> requests_;
  std::size_t pos_ = 0;
};

}  // namespace tbi::dram
