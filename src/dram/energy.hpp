/// \file energy.hpp
/// DRAMPower-style per-command energy accounting.
///
/// The paper's §I motivates the optimized mapping with the cost and
/// *energy* of oversizing DRAM bandwidth; this model quantifies that:
/// a phase that needs more activates and runs longer at the same burst
/// count burns measurably more energy per interleaved gigabyte.
#pragma once

#include "dram/standards.hpp"
#include "dram/stats.hpp"

namespace tbi::dram {

/// Energy totals for one phase, derived from its command counts.
struct EnergyReport {
  double act_pre_nj = 0;
  double rd_nj = 0;
  double wr_nj = 0;
  double refresh_nj = 0;
  double background_nj = 0;

  double total_nj() const {
    return act_pre_nj + rd_nj + wr_nj + refresh_nj + background_nj;
  }

  /// Energy efficiency in nanojoule per transferred byte.
  double nj_per_byte(std::uint64_t bytes) const {
    return bytes ? total_nj() / static_cast<double>(bytes) : 0.0;
  }
};

/// Compute the energy of one executed phase on \p device; \p refresh_mode
/// is the mode the controller actually ran with (scales group refreshes).
EnergyReport compute_energy(const DeviceConfig& device, const PhaseStats& stats,
                            RefreshMode refresh_mode);

}  // namespace tbi::dram
