/// \file decoder.hpp
/// Physical address decoding: linear burst index -> {bank, row, column}.
///
/// The row-major baseline mapping linearizes the interleaver's triangular
/// index space exactly like an SRAM implementation would, and then relies
/// on the memory controller's address decoder — this file — to place the
/// linear stream in DRAM. Several classic layouts are provided:
///
///  * RoBaCoBg (default): row | bank-in-group | column-high | bank-group |
///    column-low. Bank-group bits sit inside the column bits, so a
///    sequential stream rotates bank groups every burst and runs at
///    tCCD_S — this is what real controllers do and is the *fair*
///    baseline against the paper's optimized mapping.
///  * RoBaCo: row | bank | column. Naive layout; a sequential stream
///    stays inside one bank group and pays tCCD_L (ablation).
///  * RoCoBa: row | column | bank. All bank bits lowest; sequential
///    streams rotate all banks each burst, page misses arrive on all
///    banks almost simultaneously (ablation).
///  * RoBaCoBgXor: RoBaCoBg with the bank bits XOR-folded with the low
///    row bits (permutation-based interleaving, cf. [4][7]).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "common/bits.hpp"
#include "dram/standards.hpp"
#include "dram/types.hpp"

namespace tbi::dram {

enum class AddressLayout { RoBaCoBg, RoBaCo, RoCoBa, RoBaCoBgXor };

const char* to_string(AddressLayout layout);

/// Decodes linear burst indices for one device geometry.
/// All field widths are powers of two (DeviceConfig::validate enforces
/// this), so decoding is pure shift/mask work.
class AddressDecoder {
 public:
  AddressDecoder(const DeviceConfig& device, AddressLayout layout);

  /// Decode a linear burst index into a DRAM location. Defined inline:
  /// every generated request passes through here, and the call overhead
  /// is measurable at paper scale.
  Address decode(std::uint64_t idx) const {
    if (idx >= capacity_) throw std::out_of_range("AddressDecoder: index beyond capacity");
    Address a;
    switch (layout_) {
      case AddressLayout::RoBaCoBg:
      case AddressLayout::RoBaCoBgXor: {
        // idx = row | bank-in-group | column | bank-group
        // Bank-group bits are the lowest bits: consecutive bursts rotate
        // groups; the flat bank id is group-major (bank % groups == group).
        unsigned pos = 0;
        const std::uint64_t group = extract_bits(idx, pos, group_bits_);
        pos += group_bits_;
        const std::uint64_t col = extract_bits(idx, pos, column_bits_);
        pos += column_bits_;
        std::uint64_t bank_in_group = extract_bits(idx, pos, bank_bits_ - group_bits_);
        pos += bank_bits_ - group_bits_;
        const std::uint64_t row = idx >> pos;
        if (layout_ == AddressLayout::RoBaCoBgXor && bank_bits_ > group_bits_) {
          bank_in_group ^= row & low_mask(bank_bits_ - group_bits_);
        }
        a.bank = static_cast<std::uint32_t>(group + (bank_in_group << group_bits_));
        a.column = static_cast<std::uint32_t>(col);
        a.row = static_cast<std::uint32_t>(row);
        break;
      }
      case AddressLayout::RoBaCo: {
        a.column = static_cast<std::uint32_t>(extract_bits(idx, 0, column_bits_));
        a.bank = static_cast<std::uint32_t>(extract_bits(idx, column_bits_, bank_bits_));
        a.row = static_cast<std::uint32_t>(idx >> (column_bits_ + bank_bits_));
        break;
      }
      case AddressLayout::RoCoBa: {
        a.bank = static_cast<std::uint32_t>(extract_bits(idx, 0, bank_bits_));
        a.column = static_cast<std::uint32_t>(extract_bits(idx, bank_bits_, column_bits_));
        a.row = static_cast<std::uint32_t>(idx >> (bank_bits_ + column_bits_));
        break;
      }
    }
    return a;
  }

  /// Inverse of decode() (used by tests to prove bijectivity).
  std::uint64_t encode(const Address& addr) const;

  /// Number of addressable bursts (banks * rows * columns).
  std::uint64_t capacity_bursts() const { return capacity_; }

  AddressLayout layout() const { return layout_; }

 private:
  AddressLayout layout_;
  unsigned bank_bits_;
  unsigned group_bits_;
  unsigned column_bits_;
  unsigned row_bits_;
  std::uint64_t capacity_;
};

}  // namespace tbi::dram
