/// \file decoder.hpp
/// Physical address decoding: linear burst index -> {bank, row, column}.
///
/// The row-major baseline mapping linearizes the interleaver's triangular
/// index space exactly like an SRAM implementation would, and then relies
/// on the memory controller's address decoder — this file — to place the
/// linear stream in DRAM. Several classic layouts are provided:
///
///  * RoBaCoBg (default): row | bank-in-group | column-high | bank-group |
///    column-low. Bank-group bits sit inside the column bits, so a
///    sequential stream rotates bank groups every burst and runs at
///    tCCD_S — this is what real controllers do and is the *fair*
///    baseline against the paper's optimized mapping.
///  * RoBaCo: row | bank | column. Naive layout; a sequential stream
///    stays inside one bank group and pays tCCD_L (ablation).
///  * RoCoBa: row | column | bank. All bank bits lowest; sequential
///    streams rotate all banks each burst, page misses arrive on all
///    banks almost simultaneously (ablation).
///  * RoBaCoBgXor: RoBaCoBg with the bank bits XOR-folded with the low
///    row bits (permutation-based interleaving, cf. [4][7]).
#pragma once

#include <cstdint>
#include <string>

#include "dram/standards.hpp"
#include "dram/types.hpp"

namespace tbi::dram {

enum class AddressLayout { RoBaCoBg, RoBaCo, RoCoBa, RoBaCoBgXor };

const char* to_string(AddressLayout layout);

/// Decodes linear burst indices for one device geometry.
/// All field widths are powers of two (DeviceConfig::validate enforces
/// this), so decoding is pure shift/mask work.
class AddressDecoder {
 public:
  AddressDecoder(const DeviceConfig& device, AddressLayout layout);

  /// Decode a linear burst index into a DRAM location.
  Address decode(std::uint64_t linear_burst_index) const;

  /// Inverse of decode() (used by tests to prove bijectivity).
  std::uint64_t encode(const Address& addr) const;

  /// Number of addressable bursts (banks * rows * columns).
  std::uint64_t capacity_bursts() const { return capacity_; }

  AddressLayout layout() const { return layout_; }

 private:
  AddressLayout layout_;
  unsigned bank_bits_;
  unsigned group_bits_;
  unsigned column_bits_;
  unsigned row_bits_;
  std::uint64_t capacity_;
};

}  // namespace tbi::dram
