#include "interleaver/twostage.hpp"

#include <stdexcept>

namespace tbi::interleaver {

TwoStageInterleaver::TwoStageInterleaver(std::uint64_t side_bursts,
                                         std::uint64_t symbols_per_burst)
    : stage2_(side_bursts),
      stage1_(symbols_per_burst, symbols_per_burst),
      spb_(symbols_per_burst) {
  if (symbols_per_burst == 0) {
    throw std::invalid_argument("TwoStageInterleaver: symbols_per_burst must be > 0");
  }
}

std::uint64_t TwoStageInterleaver::permute(std::uint64_t k) const {
  if (k >= capacity_symbols()) throw std::out_of_range("TwoStageInterleaver::permute");
  const std::uint64_t sb_symbols = spb_ * spb_;
  const std::uint64_t full_super_blocks = capacity_bursts() / spb_;
  const std::uint64_t sb = k / sb_symbols;

  // Stage 1: transpose within the super-block so each burst collects one
  // symbol of every code-word chunk. The (rare) partial tail keeps its
  // natural order (frames are sized to full super-blocks in practice).
  std::uint64_t m = k;
  if (sb < full_super_blocks) {
    m = sb * sb_symbols + stage1_.permute(k % sb_symbols);
  }

  // Stage 2: triangular permutation of whole bursts.
  const std::uint64_t burst = m / spb_;
  const std::uint64_t offset = m % spb_;
  return stage2_.permute(burst) * spb_ + offset;
}

std::uint64_t TwoStageInterleaver::inverse(std::uint64_t q) const {
  if (q >= capacity_symbols()) throw std::out_of_range("TwoStageInterleaver::inverse");
  const std::uint64_t sb_symbols = spb_ * spb_;
  const std::uint64_t full_super_blocks = capacity_bursts() / spb_;

  // Undo stage 2 first: the triangular permutation of whole bursts is an
  // involution, so applying it again recovers the intermediate burst.
  const std::uint64_t burst = stage2_.permute(q / spb_);
  const std::uint64_t m = burst * spb_ + q % spb_;

  // Undo stage 1: the square transpose inside a full super-block (the
  // partial tail was passed through unpermuted).
  const std::uint64_t sb = m / sb_symbols;
  if (sb < full_super_blocks) {
    return sb * sb_symbols + stage1_.inverse(m % sb_symbols);
  }
  return m;
}

std::vector<std::uint8_t> TwoStageInterleaver::interleave(
    const std::vector<std::uint8_t>& in) const {
  if (in.size() != capacity_symbols()) {
    throw std::invalid_argument("TwoStageInterleaver: bad block size");
  }
  std::vector<std::uint8_t> out(in.size());
  for (std::uint64_t k = 0; k < in.size(); ++k) out[permute(k)] = in[k];
  return out;
}

std::vector<std::uint8_t> TwoStageInterleaver::deinterleave(
    const std::vector<std::uint8_t>& in) const {
  if (in.size() != capacity_symbols()) {
    throw std::invalid_argument("TwoStageInterleaver: bad block size");
  }
  std::vector<std::uint8_t> out(in.size());
  for (std::uint64_t k = 0; k < in.size(); ++k) out[k] = in[permute(k)];
  return out;
}

}  // namespace tbi::interleaver
