#include "interleaver/streams.hpp"

namespace tbi::interleaver {

std::uint64_t burst_triangle_side(std::uint64_t total_symbols, unsigned symbol_bits,
                                  unsigned burst_bytes) {
  const std::uint64_t total_bits = total_symbols * symbol_bits;
  const std::uint64_t bursts = div_ceil(total_bits, std::uint64_t{8} * burst_bytes);
  return triangular_side_for(bursts);
}

bool WritePhaseStream::next(dram::Request& out) {
  const std::uint64_t n = mapping_.space().side;
  if (i_ >= n) return false;
  if (limit_ != 0 && produced_ >= limit_) return false;
  out.addr = mapping_.map(i_, j_);
  out.is_write = true;
  ++produced_;
  if (++j_ >= tri_row_length(n, i_)) {
    j_ = 0;
    ++i_;
  }
  return true;
}

bool ReadPhaseStream::next(dram::Request& out) {
  const std::uint64_t n = mapping_.space().side;
  if (j_ >= n) return false;
  if (limit_ != 0 && produced_ >= limit_) return false;
  out.addr = mapping_.map(i_, j_);
  out.is_write = false;
  ++produced_;
  if (++i_ >= tri_col_length(n, j_)) {
    i_ = 0;
    ++j_;
  }
  return true;
}

bool StreamingPhaseStream::next(dram::Request& out) {
  for (int attempts = 0; attempts < 2; ++attempts) {
    const bool try_write = write_turn_ ? !write_done_ : read_done_;
    write_turn_ = !write_turn_;
    if (try_write) {
      if (write_.next(out)) return true;
      write_done_ = true;
    } else {
      if (read_.next(out)) return true;
      read_done_ = true;
    }
  }
  return false;
}

}  // namespace tbi::interleaver
