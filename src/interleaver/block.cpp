#include "interleaver/block.hpp"

namespace tbi::interleaver {

BlockInterleaver::BlockInterleaver(std::uint64_t rows, std::uint64_t cols)
    : rows_(rows), cols_(cols) {
  if (rows == 0 || cols == 0) {
    throw std::invalid_argument("BlockInterleaver: dimensions must be positive");
  }
}

std::uint64_t BlockInterleaver::permute(std::uint64_t k) const {
  if (k >= capacity()) throw std::out_of_range("BlockInterleaver::permute");
  const std::uint64_t i = k / cols_;  // written row-wise
  const std::uint64_t j = k % cols_;
  return j * rows_ + i;  // read column-wise
}

std::uint64_t BlockInterleaver::inverse(std::uint64_t k) const {
  if (k >= capacity()) throw std::out_of_range("BlockInterleaver::inverse");
  const std::uint64_t j = k / rows_;
  const std::uint64_t i = k % rows_;
  return i * cols_ + j;
}

void BlockInterleaver::interleave_into(std::span<const std::uint8_t> in,
                                       std::span<std::uint8_t> out) const {
  if (in.size() != capacity() || out.size() != capacity()) {
    throw std::invalid_argument("BlockInterleaver: bad size");
  }
  // Row-wise in, column-wise out: iterate the write order directly so the
  // input is read sequentially and no div/mod runs per symbol.
  std::uint64_t k = 0;
  for (std::uint64_t i = 0; i < rows_; ++i) {
    std::uint8_t* col = out.data() + i;
    for (std::uint64_t j = 0; j < cols_; ++j) col[j * rows_] = in[k++];
  }
}

void BlockInterleaver::deinterleave_into(std::span<const std::uint8_t> in,
                                         std::span<std::uint8_t> out) const {
  if (in.size() != capacity() || out.size() != capacity()) {
    throw std::invalid_argument("BlockInterleaver: bad size");
  }
  std::uint64_t k = 0;
  for (std::uint64_t i = 0; i < rows_; ++i) {
    const std::uint8_t* col = in.data() + i;
    for (std::uint64_t j = 0; j < cols_; ++j) out[k++] = col[j * rows_];
  }
}

std::vector<std::uint8_t> BlockInterleaver::interleave(
    const std::vector<std::uint8_t>& in) const {
  std::vector<std::uint8_t> out(in.size());
  interleave_into(in, out);
  return out;
}

std::vector<std::uint8_t> BlockInterleaver::deinterleave(
    const std::vector<std::uint8_t>& in) const {
  std::vector<std::uint8_t> out(in.size());
  deinterleave_into(in, out);
  return out;
}

}  // namespace tbi::interleaver
