#include "interleaver/block.hpp"

namespace tbi::interleaver {

BlockInterleaver::BlockInterleaver(std::uint64_t rows, std::uint64_t cols)
    : rows_(rows), cols_(cols) {
  if (rows == 0 || cols == 0) {
    throw std::invalid_argument("BlockInterleaver: dimensions must be positive");
  }
}

std::uint64_t BlockInterleaver::permute(std::uint64_t k) const {
  if (k >= capacity()) throw std::out_of_range("BlockInterleaver::permute");
  const std::uint64_t i = k / cols_;  // written row-wise
  const std::uint64_t j = k % cols_;
  return j * rows_ + i;  // read column-wise
}

std::uint64_t BlockInterleaver::inverse(std::uint64_t k) const {
  if (k >= capacity()) throw std::out_of_range("BlockInterleaver::inverse");
  const std::uint64_t j = k / rows_;
  const std::uint64_t i = k % rows_;
  return i * cols_ + j;
}

std::vector<std::uint8_t> BlockInterleaver::interleave(
    const std::vector<std::uint8_t>& in) const {
  if (in.size() != capacity()) throw std::invalid_argument("BlockInterleaver: bad size");
  std::vector<std::uint8_t> out(in.size());
  for (std::uint64_t k = 0; k < in.size(); ++k) out[permute(k)] = in[k];
  return out;
}

std::vector<std::uint8_t> BlockInterleaver::deinterleave(
    const std::vector<std::uint8_t>& in) const {
  if (in.size() != capacity()) throw std::invalid_argument("BlockInterleaver: bad size");
  std::vector<std::uint8_t> out(in.size());
  for (std::uint64_t k = 0; k < in.size(); ++k) out[inverse(k)] = in[k];
  return out;
}

}  // namespace tbi::interleaver
