/// \file triangular.hpp
/// Functional triangular block interleaver (paper §I).
///
/// Symbols of consecutive code words are written row-wise into the upper
/// left half of a square array (row i holds n-i symbols) and read
/// column-wise. Because the upper-left triangle is symmetric in (i,j),
/// the column-wise packed output offset of column j equals the row-wise
/// packed offset of row j — both are tri_row_offset(n, j) — which gives a
/// closed-form O(1) permutation used by both the functional model and the
/// tests.
///
/// The interleaver depth grows along the stream: the first symbols of a
/// frame are spread shallowly, later ones deeply — exactly the property
/// that matches the slowly fading optical LEO channel (coherence > 2 ms),
/// where error bursts are long but the link quality ramps in and out.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "common/mathutil.hpp"

namespace tbi::interleaver {

class TriangularInterleaver {
 public:
  explicit TriangularInterleaver(std::uint64_t side);

  std::uint64_t side() const { return side_; }
  std::uint64_t capacity() const { return triangular_number(side_); }

  /// (row, col) of the k-th symbol in *write* (input) order.
  std::pair<std::uint64_t, std::uint64_t> write_position(std::uint64_t k) const;

  /// Packed input offset of position (i, j).
  std::uint64_t input_index(std::uint64_t i, std::uint64_t j) const {
    return tri_row_offset(side_, i) + j;
  }

  /// Packed output offset of position (i, j) (column-wise read order).
  std::uint64_t output_index(std::uint64_t i, std::uint64_t j) const {
    return tri_row_offset(side_, j) + i;
  }

  /// Output position of input symbol \p k; an involution composed with
  /// itself yields the identity (tested property).
  std::uint64_t permute(std::uint64_t k) const;

  std::vector<std::uint8_t> interleave(const std::vector<std::uint8_t>& in) const;
  std::vector<std::uint8_t> deinterleave(const std::vector<std::uint8_t>& in) const;

  /// Allocation-free variants writing into a caller-owned buffer; both
  /// spans must be capacity() long and must not alias.
  void interleave_into(std::span<const std::uint8_t> in,
                       std::span<std::uint8_t> out) const;
  void deinterleave_into(std::span<const std::uint8_t> in,
                         std::span<std::uint8_t> out) const;

 private:
  std::uint64_t side_;
  /// row_offset_[i] = tri_row_offset(side_, i): hoists the per-symbol
  /// offset arithmetic out of the block-permutation inner loops.
  std::vector<std::uint64_t> row_offset_;
};

}  // namespace tbi::interleaver
