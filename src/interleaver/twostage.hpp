/// \file twostage.hpp
/// Two-stage interleaver of the paper's §II.
///
/// One DRAM burst carries many symbols (e.g. 512-bit burst vs 3-bit
/// symbols). Stage 1 is a small SRAM block interleaver that fills each
/// burst with symbols from `symbols_per_burst` *different* code-word
/// chunks, so that when stage 2 — the DRAM-resident triangular block
/// interleaver — permutes whole bursts, symbol-level burst errors on the
/// channel still land in distinct code words.
///
/// The functional model here composes both permutations symbol-exactly;
/// the bandwidth experiments use only the stage-2 geometry (bursts), which
/// is the part that touches DRAM.
#pragma once

#include <cstdint>
#include <vector>

#include "interleaver/block.hpp"
#include "interleaver/triangular.hpp"

namespace tbi::interleaver {

class TwoStageInterleaver {
 public:
  /// \p side_bursts: triangle side of the stage-2 (burst) interleaver.
  /// \p symbols_per_burst: symbols packed into one DRAM burst.
  TwoStageInterleaver(std::uint64_t side_bursts, std::uint64_t symbols_per_burst);

  std::uint64_t side_bursts() const { return stage2_.side(); }
  std::uint64_t symbols_per_burst() const { return spb_; }
  std::uint64_t capacity_bursts() const { return stage2_.capacity(); }
  std::uint64_t capacity_symbols() const { return stage2_.capacity() * spb_; }

  /// End-to-end output position of input symbol \p k.
  std::uint64_t permute(std::uint64_t k) const;

  /// Inverse of permute(): input position of output symbol \p q. Both
  /// stages are involutions (square transpose, triangular permutation),
  /// but their composition is not, so the inverse applies them in reverse
  /// order. O(1), so a streaming consumer can map sparse channel events
  /// back to code-word positions without materializing the frame.
  std::uint64_t inverse(std::uint64_t q) const;

  std::vector<std::uint8_t> interleave(const std::vector<std::uint8_t>& in) const;
  std::vector<std::uint8_t> deinterleave(const std::vector<std::uint8_t>& in) const;

  /// Code-word chunk that input symbol \p k belongs to under the
  /// "consecutive chunks of spb symbols" framing (used by tests to verify
  /// the distinct-code-words-per-burst property).
  std::uint64_t chunk_of_input(std::uint64_t k) const { return (k / spb_) % spb_; }

 private:
  TriangularInterleaver stage2_;
  BlockInterleaver stage1_;  ///< spb x spb block per super-block
  std::uint64_t spb_;
};

}  // namespace tbi::interleaver
