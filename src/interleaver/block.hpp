/// \file block.hpp
/// Rectangular block interleaver (write row-wise, read column-wise).
///
/// This is the classic SRAM interleaver structure and serves two roles in
/// the reproduction: it is the stage-1 interleaver that distributes the
/// symbols sharing one DRAM burst over different code words (paper §II),
/// and it is the reference behavior the triangular interleaver tests
/// compare against.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace tbi::interleaver {

class BlockInterleaver {
 public:
  /// \p rows x \p cols storage array; capacity() symbols per block.
  BlockInterleaver(std::uint64_t rows, std::uint64_t cols);

  std::uint64_t rows() const { return rows_; }
  std::uint64_t cols() const { return cols_; }
  std::uint64_t capacity() const { return rows_ * cols_; }

  /// Output position of input symbol \p k (row-major in, column-major out).
  std::uint64_t permute(std::uint64_t k) const;
  /// Inverse permutation.
  std::uint64_t inverse(std::uint64_t k) const;

  /// Apply the permutation to a full block (in.size() == capacity()).
  std::vector<std::uint8_t> interleave(const std::vector<std::uint8_t>& in) const;
  std::vector<std::uint8_t> deinterleave(const std::vector<std::uint8_t>& in) const;

  /// Allocation-free variants writing into a caller-owned buffer; both
  /// spans must be capacity() long and must not alias.
  void interleave_into(std::span<const std::uint8_t> in,
                       std::span<std::uint8_t> out) const;
  void deinterleave_into(std::span<const std::uint8_t> in,
                         std::span<std::uint8_t> out) const;

 private:
  std::uint64_t rows_;
  std::uint64_t cols_;
};

}  // namespace tbi::interleaver
