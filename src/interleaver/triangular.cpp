#include "interleaver/triangular.hpp"

namespace tbi::interleaver {

TriangularInterleaver::TriangularInterleaver(std::uint64_t side) : side_(side) {
  if (side == 0) throw std::invalid_argument("TriangularInterleaver: side must be > 0");
  row_offset_.resize(side);
  for (std::uint64_t i = 0; i < side; ++i) row_offset_[i] = tri_row_offset(side, i);
}

std::pair<std::uint64_t, std::uint64_t> TriangularInterleaver::write_position(
    std::uint64_t k) const {
  if (k >= capacity()) throw std::out_of_range("TriangularInterleaver::write_position");
  // Solve tri_row_offset(n, i) <= k via the quadratic root of
  // -i^2/2 + i(n + 1/2) - k = 0, then fix up integer rounding.
  const std::uint64_t n = side_;
  const std::uint64_t disc = (2 * n + 1) * (2 * n + 1) - 8 * k;
  std::uint64_t i = (2 * n + 1 - isqrt(disc)) / 2;
  while (i > 0 && tri_row_offset(n, i) > k) --i;
  while (i + 1 < n && tri_row_offset(n, i + 1) <= k) ++i;
  return {i, k - tri_row_offset(n, i)};
}

std::uint64_t TriangularInterleaver::permute(std::uint64_t k) const {
  const auto [i, j] = write_position(k);
  return output_index(i, j);
}

void TriangularInterleaver::interleave_into(std::span<const std::uint8_t> in,
                                            std::span<std::uint8_t> out) const {
  if (in.size() != capacity() || out.size() != capacity()) {
    throw std::invalid_argument("TriangularInterleaver: bad block size");
  }
  // out[output_index(i, j)] = out[row_offset_[j] + i]: sequential read,
  // table-driven scatter.
  const std::uint64_t* off = row_offset_.data();
  std::uint64_t k = 0;
  for (std::uint64_t i = 0; i < side_; ++i) {
    const std::uint64_t len = side_ - i;  // tri_row_length(side_, i)
    for (std::uint64_t j = 0; j < len; ++j) out[off[j] + i] = in[k++];
  }
}

void TriangularInterleaver::deinterleave_into(std::span<const std::uint8_t> in,
                                              std::span<std::uint8_t> out) const {
  if (in.size() != capacity() || out.size() != capacity()) {
    throw std::invalid_argument("TriangularInterleaver: bad block size");
  }
  const std::uint64_t* off = row_offset_.data();
  std::uint64_t k = 0;
  for (std::uint64_t i = 0; i < side_; ++i) {
    const std::uint64_t len = side_ - i;
    for (std::uint64_t j = 0; j < len; ++j) out[k++] = in[off[j] + i];
  }
}

std::vector<std::uint8_t> TriangularInterleaver::interleave(
    const std::vector<std::uint8_t>& in) const {
  std::vector<std::uint8_t> out(in.size());
  interleave_into(in, out);
  return out;
}

std::vector<std::uint8_t> TriangularInterleaver::deinterleave(
    const std::vector<std::uint8_t>& in) const {
  std::vector<std::uint8_t> out(in.size());
  deinterleave_into(in, out);
  return out;
}

}  // namespace tbi::interleaver
