/// \file streams.hpp
/// DRAM request streams for the interleaver's two access phases.
///
/// The write phase visits the triangular burst grid row-wise (as code
/// words arrive from the transmitter chain), the read phase column-wise
/// (as interleaved bursts leave toward the modulator). Streams generate
/// addresses lazily through an IndexMapping, so even the 12.5 M-element
/// configuration never materializes a request vector.
#pragma once

#include <cstdint>

#include "common/mathutil.hpp"
#include "dram/stream.hpp"
#include "mapping/mapping.hpp"

namespace tbi::interleaver {

/// Burst-granular triangle side for a symbol-level interleaver:
/// ceil(total_symbols * symbol_bits / (8 * burst_bytes)) bursts, rounded
/// up to the next triangular number's side.
std::uint64_t burst_triangle_side(std::uint64_t total_symbols, unsigned symbol_bits,
                                  unsigned burst_bytes);

/// Row-wise walk (write phase). Optionally truncated to max_bursts.
class WritePhaseStream final : public dram::RequestStream {
 public:
  explicit WritePhaseStream(const mapping::IndexMapping& mapping,
                            std::uint64_t max_bursts = 0)
      : mapping_(mapping), limit_(max_bursts) {}

  bool next(dram::Request& out) override;

 private:
  const mapping::IndexMapping& mapping_;
  std::uint64_t limit_;
  std::uint64_t i_ = 0;
  std::uint64_t j_ = 0;
  std::uint64_t produced_ = 0;
};

/// Column-wise walk (read phase). Optionally truncated to max_bursts.
class ReadPhaseStream final : public dram::RequestStream {
 public:
  explicit ReadPhaseStream(const mapping::IndexMapping& mapping,
                           std::uint64_t max_bursts = 0)
      : mapping_(mapping), limit_(max_bursts) {}

  bool next(dram::Request& out) override;

 private:
  const mapping::IndexMapping& mapping_;
  std::uint64_t limit_;
  std::uint64_t i_ = 0;
  std::uint64_t j_ = 0;
  std::uint64_t produced_ = 0;
};

/// Continuous (double-buffered) operation: while interleaver block k+1 is
/// written row-wise into one DRAM region, block k is read column-wise from
/// another. Requests alternate write/read 1:1 (both move the same total
/// data), so the memory controller sees the realistic mixed stream with
/// its read/write turnaround penalties instead of two idealized pure
/// phases. Ends when both walks finish.
class StreamingPhaseStream final : public dram::RequestStream {
 public:
  /// \p write_mapping and \p read_mapping must target disjoint DRAM rows
  /// (see mapping::RowOffsetMapping).
  StreamingPhaseStream(const mapping::IndexMapping& write_mapping,
                       const mapping::IndexMapping& read_mapping,
                       std::uint64_t max_bursts = 0)
      : write_(write_mapping, max_bursts), read_(read_mapping, max_bursts) {}

  bool next(dram::Request& out) override;

 private:
  WritePhaseStream write_;
  ReadPhaseStream read_;
  bool write_turn_ = true;
  bool write_done_ = false;
  bool read_done_ = false;
};

}  // namespace tbi::interleaver
