/// \file fault.hpp
/// Deterministic fault injection for the distributed sweep backend.
///
/// Recovery paths that only run when hardware misbehaves are recovery
/// paths that have never run. This layer turns every failure mode the
/// dsweep parent must survive — a worker crashing mid-grid, a hung
/// worker that stops heartbeating, a corrupted or truncated record
/// batch, a preempted parent — into a scriptable, reproducible event
/// driven by the `TBI_FAULT_INJECT` environment variable (or a parsed
/// spec in tests).
///
/// Spec grammar: comma-separated actions, each `name=COUNT[@SLOT]`
/// (SLOT defaults to 0; parent-side actions ignore it):
///
///   kill-after=K[@s]      worker slot s exits hard after its Kth cell
///   stall-after=K[@s]     worker hangs (heartbeats stop) after K cells
///   corrupt-batch=K[@s]   worker flips a byte in its Kth record batch
///   truncate-batch=K[@s]  worker writes half its Kth batch, then exits
///   delay-batch=K:MS[@s]  worker sleeps MS ms before its Kth batch
///   drop-conn-after=K[@s] worker severs its connection after K cells (a
///                         dropped TCP link / closed socketpair); remote
///                         workers reconnect with backoff
///   stall-conn-after=K[@s] worker keeps the connection open but stops
///                         heartbeating after K cells — a network
///                         partition as the driver sees it
///   corrupt-frame=K[@s]   worker flips a bit inside its Kth frame's
///                         header/payload bytes (corrupt-batch targets
///                         the payload; this one may hit the header)
///   abort-after=K         parent stops after K committed cells, as if
///                         preempted (manifest flushed, exit via the
///                         interrupted path) — the `--resume` test hook
///   spawn-fail            parent pretends workers cannot spawn
///                         (exercises in-process degradation)
///
/// Faults are delivered to a worker slot's *first* incarnation only:
/// respawned replacements run clean, so every injected failure converges
/// to a recovered run instead of a crash loop.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hpp"

namespace tbi::sim {

struct FaultAction {
  enum class Kind {
    KillAfterCells,
    StallAfterCells,
    CorruptBatch,
    TruncateBatch,
    DelayBatch,
    DropConnAfter,
    StallConnAfter,
    CorruptFrame,
    AbortAfterCells,
    SpawnFail,
  };
  Kind kind = Kind::SpawnFail;
  std::uint64_t count = 0;  ///< cells/batches before the fault fires
  unsigned slot = 0;        ///< worker slot (parent actions ignore it)
  unsigned delay_ms = 0;    ///< DelayBatch only
};

struct FaultSpec {
  std::vector<FaultAction> actions;

  bool empty() const { return actions.empty(); }

  /// Parse the spec grammar above; throws std::invalid_argument on
  /// malformed input (an unreadable fault spec must fail loudly, not
  /// silently test nothing).
  static FaultSpec parse(const std::string& spec);

  /// Parse `TBI_FAULT_INJECT` (empty spec when unset).
  static FaultSpec from_env();

  /// Worker-side actions addressed to \p slot, serialized for the
  /// job-config frame.
  Json worker_actions_json(unsigned slot) const;
  static std::vector<FaultAction> worker_actions_from_json(const Json& arr);

  /// First action of \p kind, or nullptr.
  const FaultAction* find(FaultAction::Kind kind) const;
};

}  // namespace tbi::sim
