#include "sim/net_transport.hpp"

#include <unistd.h>

#include <stdexcept>

#include "common/json.hpp"
#include "common/net.hpp"

namespace tbi::sim {

namespace {
using WStatus = wire::FrameReader::Status;
}

TcpTransport::TcpTransport(const std::string& hostport, TcpTransportOptions options)
    : options_(std::move(options)) {
  std::string host;
  std::string port;
  std::string err;
  if (!net::split_hostport(hostport, &host, &port, &err)) {
    throw std::invalid_argument("dsweep: " + err);
  }
  listen_fd_ = net::listen_tcp(hostport, &err);
  if (listen_fd_ < 0) {
    throw std::runtime_error("dsweep: " + err);
  }
  port_ = net::local_port(listen_fd_);
}

TcpTransport::~TcpTransport() {
  for (const auto& p : pending_) ::close(p.fd);
  for (const int fd : ready_) ::close(fd);
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

bool TcpTransport::handshake_ok(const std::string& payload,
                                std::string* reason) const {
  Json hello;
  try {
    hello = Json::parse(payload);
  } catch (const JsonError&) {
    *reason = "malformed Hello payload";
    return false;
  }
  const auto proto = static_cast<std::uint32_t>(hello.get_or("proto", 0.0));
  if (proto != wire::kProtocolVersion) {
    *reason = "protocol version mismatch (driver " +
              std::to_string(wire::kProtocolVersion) + ", worker " +
              std::to_string(proto) + ")";
    return false;
  }
  std::string fp;
  try {
    fp = hello.at("fingerprint").as_string();
  } catch (const JsonError&) {
    *reason = "Hello carries no fingerprint field";
    return false;
  }
  // An empty fingerprint is a fresh worker that has not served any run
  // yet; a non-empty one must match, exactly like a resume manifest.
  if (!fp.empty() && fp != options_.fingerprint) {
    *reason = "fingerprint mismatch: worker served a different run";
    return false;
  }
  return true;
}

void TcpTransport::service(std::uint64_t now_ns) {
  // Adopt every connection the kernel has queued since the last tick.
  for (;;) {
    const int fd = net::accept_tcp(listen_fd_);
    if (fd < 0) break;
    net::set_nonblocking(fd, true);
    net::set_tcp_nodelay(fd);
    Pending p;
    p.fd = fd;
    p.deadline_ns =
        now_ns + static_cast<std::uint64_t>(options_.handshake_timeout_ms) * 1'000'000ull;
    pending_.push_back(std::move(p));
  }

  // Advance handshakes; drop anything corrupt, foreign, or stalled.
  for (std::size_t i = 0; i < pending_.size();) {
    Pending& p = pending_[i];
    bool drop = false;
    const WStatus pumped = p.reader.pump(p.fd);
    wire::Frame f;
    const WStatus st = p.reader.next(&f);
    if (st == WStatus::Frame) {
      std::string reason;
      if (f.type == wire::FrameType::Hello && handshake_ok(f.payload_str(), &reason)) {
        ready_.push_back(p.fd);
        pending_.erase(pending_.begin() + static_cast<long>(i));
        continue;
      }
      if (reason.empty()) reason = "expected Hello frame";
      wire::write_frame(p.fd, wire::FrameType::Reject, reason);
      ++rejected_;
      drop = true;
    } else if (st == WStatus::Corrupt || pumped == WStatus::Eof ||
               now_ns >= p.deadline_ns) {
      drop = true;
    }
    if (drop) {
      ::close(p.fd);
      pending_.erase(pending_.begin() + static_cast<long>(i));
    } else {
      ++i;
    }
  }
}

int TcpTransport::acquire(unsigned slot) {
  (void)slot;
  if (ready_.empty()) return -1;
  const int fd = ready_.front();
  ready_.pop_front();
  ++adopted_;
  return fd;
}

void TcpTransport::release(unsigned slot, int fd) {
  (void)slot;
  if (fd >= 0) ::close(fd);
}

}  // namespace tbi::sim
