/// \file dsweep_kernels.cpp
/// Built-in dsweep kernels. Each is a pure function of (job JSON, cell
/// index, seed) so it can run identically on a parent thread or inside a
/// re-exec'd worker process — anything the cell needs must be
/// reconstructible from the job config (devices travel by standard-config
/// name, never by value).
#include <mutex>
#include <stdexcept>

#include "dram/standards.hpp"
#include "fec/reed_solomon.hpp"
#include "interleaver/streams.hpp"
#include "sim/dsweep.hpp"
#include "sim/runner.hpp"

namespace tbi::sim {

namespace {

std::vector<std::string> string_axis(const Json& grid, const std::string& key) {
  std::vector<std::string> out;
  for (const auto& v : grid.at(key).as_array()) out.push_back(v.as_string());
  return out;
}

SweepGrid grid_from_json(const Json& g) {
  SweepGrid grid;
  grid.devices = string_axis(g, "devices");
  grid.mapping_specs = string_axis(g, "mapping_specs");
  grid.interleavers = string_axis(g, "interleavers");
  grid.channels = string_axis(g, "channels");
  grid.rs_ks.clear();
  for (const auto& v : g.at("rs_ks").as_array()) {
    grid.rs_ks.push_back(static_cast<unsigned>(v.as_double()));
  }
  grid.symbols_per_bursts.clear();
  for (const auto& v : g.at("symbols_per_bursts").as_array()) {
    grid.symbols_per_bursts.push_back(static_cast<std::uint64_t>(v.as_double()));
  }
  // Absent in pre-links job configs (checkpoint manifests written before
  // the axis existed resume fine): default to the single "inherit" cell.
  if (g.contains("links")) {
    grid.links.clear();
    for (const auto& v : g.at("links").as_array()) {
      grid.links.push_back(static_cast<unsigned>(v.as_double()));
    }
  }
  return grid;
}

PipelineConfig base_from_json(const Json& b) {
  PipelineConfig base;
  base.interleaver = b.at("interleaver").as_string();
  base.channel = b.at("channel").as_string();
  base.rs_n = static_cast<unsigned>(b.at("rs_n").as_double());
  base.rs_k = static_cast<unsigned>(b.at("rs_k").as_double());
  base.frames = static_cast<unsigned>(b.at("frames").as_double());
  base.side = static_cast<std::uint64_t>(b.at("side").as_double());
  base.symbols_per_burst =
      static_cast<std::uint64_t>(b.at("symbols_per_burst").as_double());
  base.stream_chunk_symbols =
      static_cast<std::uint64_t>(b.at("stream_chunk_symbols").as_double());
  base.error_probability = b.at("error_probability").as_double();
  base.fade_fraction = b.at("fade_fraction").as_double();
  base.mean_burst_symbols = b.at("mean_burst_symbols").as_double();
  base.error_rate_bad = b.at("error_rate_bad").as_double();
  base.links = static_cast<unsigned>(b.get_or("links", 1.0));
  base.link_phase_symbols =
      static_cast<std::uint64_t>(b.get_or("link_phase_symbols", 0.0));
  base.run_dram = b.at("run_dram").as_bool();
  base.mapping_spec = b.at("mapping_spec").as_string();
  base.dram_max_bursts_per_phase =
      static_cast<std::uint64_t>(b.at("dram_max_bursts_per_phase").as_double());
  base.check_protocol = b.at("check_protocol").as_bool();
  const std::string device_name = b.at("device").as_string();
  if (!device_name.empty()) {
    const auto* device = dram::find_config(device_name);
    if (device == nullptr) {
      throw std::invalid_argument("fer kernel: unknown base device '" +
                                  device_name + "'");
    }
    base.device = *device;
  }
  return base;
}

/// "fer": one cell of a FER sweep. Mirrors run_fer_sweep's per-cell body
/// exactly (fer_cell_config is shared), so the distributed path produces
/// byte-identical records.
///
/// When the job config carries frame_slices = S > 1, the index space is
/// expanded to grid.size() x S and this kernel computes one intra-frame
/// channel slice of cell index/S instead (run_pipeline_slice); the driver
/// merges the S slice records with combine_pipeline_slices. Every slice
/// of a cell must run under the cell's own seed, so slice mode recomputes
/// it from the job-carried base_seed rather than using the driver's
/// expanded-index seed.
Json fer_kernel(const Json& job, std::uint64_t index, std::uint64_t seed) {
  const SweepGrid grid = grid_from_json(job.at("grid"));
  const PipelineConfig base = base_from_json(job.at("base"));
  const auto num_slices =
      static_cast<unsigned>(job.get_or("frame_slices", 1.0));
  std::uint64_t cell = index;
  unsigned slice = 0;
  std::uint64_t cell_seed = seed;
  if (num_slices > 1) {
    cell = index / num_slices;
    slice = static_cast<unsigned>(index % num_slices);
    cell_seed = job_seed(std::stoull(job.at("base_seed").as_string()), cell);
  }
  const Scenario scenario = grid.cell(cell);
  if (base.rs_n > 255 || scenario.rs_k == 0 || scenario.rs_k >= base.rs_n ||
      (base.rs_n - scenario.rs_k) % 2 != 0) {
    throw std::invalid_argument("fer kernel: invalid RS(n, k)");
  }
  const PipelineConfig config = fer_cell_config(base, scenario, cell_seed);
  if (num_slices > 1 && pipeline_streams(config)) {
    return fer_slice_to_json(scenario,
                             run_pipeline_slice(config, slice, num_slices));
  }
  if (num_slices > 1 && slice != 0) {
    // Materialized cells can't split inside a frame; their slice 0
    // computes the whole cell and the remaining slices are placeholders
    // the merge step skips.
    Json j;
    j["skipped"] = true;
    return j;
  }
  const fec::ReedSolomon rs(config.rs_n, config.rs_k);
  return fer_cell_to_json(scenario, run_pipeline(config, rs));
}

/// "bandwidth": one run of an experiment_runner batch. Deterministic DRAM
/// phases only — the seed is unused. Job config mirrors the runner's file
/// format: {"symbols", "max_bursts", "queue_depth", "runs": [...]}; the
/// cell index selects the run.
Json bandwidth_kernel(const Json& job, std::uint64_t index, std::uint64_t) {
  const auto& runs = job.at("runs").as_array();
  if (index >= runs.size()) {
    throw std::invalid_argument("bandwidth kernel: run index out of range");
  }
  const Json& run_cfg = runs[static_cast<std::size_t>(index)];
  const auto symbols = static_cast<std::uint64_t>(job.get_or("symbols", 12'500'000.0));

  const std::string device_name = run_cfg.at("device").as_string();
  const auto* device = dram::find_config(device_name);
  if (device == nullptr) {
    throw std::invalid_argument("bandwidth kernel: unknown device '" +
                                device_name + "'");
  }
  RunConfig rc;
  rc.device = *device;
  rc.mapping_spec = run_cfg.get_or("mapping", std::string("optimized"));
  rc.side = interleaver::burst_triangle_side(symbols, 3, device->burst_bytes);
  rc.max_bursts_per_phase = static_cast<std::uint64_t>(job.get_or("max_bursts", 0.0));
  rc.controller.queue_depth =
      static_cast<unsigned>(job.get_or("queue_depth", 64.0));
  if (run_cfg.get_or("refresh", std::string("default")) == "disabled") {
    rc.controller.use_device_default_refresh = false;
    rc.controller.refresh_mode = dram::RefreshMode::Disabled;
  }
  rc.check_protocol = run_cfg.get_or("check", false);

  const InterleaverRun run = run_interleaver(rc);
  const auto phase_json = [burst_bytes = device->burst_bytes](const PhaseResult& p) {
    Json j;
    j["utilization"] = p.stats.utilization();
    j["bandwidth_gbps"] = p.stats.bandwidth_gbps(burst_bytes);
    j["bursts"] = p.stats.bursts;
    j["activates"] = p.stats.activates;
    j["row_hit_rate"] = p.stats.row_hit_rate();
    j["refreshes"] = p.stats.refreshes;
    j["elapsed_us"] = static_cast<double>(p.stats.elapsed()) / 1e6;
    j["energy_nj"] = p.energy.total_nj();
    return j;
  };
  Json r;
  r["device"] = run.device_name;
  r["mapping"] = run.mapping_name;
  r["side_bursts"] = rc.side;
  r["write"] = phase_json(run.write);
  r["read"] = phase_json(run.read);
  r["min_utilization"] = run.min_utilization();
  r["throughput_gbps"] = run.throughput_gbps(device->burst_bytes);
  return r;
}

}  // namespace

void dsweep_register_builtin_kernels() {
  static std::once_flag once;
  std::call_once(once, [] {
    dsweep_register_kernel("fer", fer_kernel);
    dsweep_register_kernel("bandwidth", bandwidth_kernel);
  });
}

}  // namespace tbi::sim
