#include "sim/fault.hpp"

#include <cstdlib>
#include <stdexcept>

namespace tbi::sim {

namespace {

using Kind = FaultAction::Kind;

const char* kind_name(Kind k) {
  switch (k) {
    case Kind::KillAfterCells: return "kill-after";
    case Kind::StallAfterCells: return "stall-after";
    case Kind::CorruptBatch: return "corrupt-batch";
    case Kind::TruncateBatch: return "truncate-batch";
    case Kind::DelayBatch: return "delay-batch";
    case Kind::DropConnAfter: return "drop-conn-after";
    case Kind::StallConnAfter: return "stall-conn-after";
    case Kind::CorruptFrame: return "corrupt-frame";
    case Kind::AbortAfterCells: return "abort-after";
    case Kind::SpawnFail: return "spawn-fail";
  }
  return "?";
}

bool kind_from_name(const std::string& name, Kind* out) {
  for (Kind k : {Kind::KillAfterCells, Kind::StallAfterCells, Kind::CorruptBatch,
                 Kind::TruncateBatch, Kind::DelayBatch, Kind::DropConnAfter,
                 Kind::StallConnAfter, Kind::CorruptFrame, Kind::AbortAfterCells,
                 Kind::SpawnFail}) {
    if (name == kind_name(k)) {
      *out = k;
      return true;
    }
  }
  return false;
}

std::uint64_t parse_u64(const std::string& s, const std::string& what) {
  if (s.empty() || s.find_first_not_of("0123456789") != std::string::npos) {
    throw std::invalid_argument("fault spec: bad " + what + " '" + s + "'");
  }
  return std::strtoull(s.c_str(), nullptr, 10);
}

FaultAction parse_action(const std::string& item) {
  FaultAction a;
  std::string body = item;
  // Optional @SLOT suffix.
  if (const auto at = body.rfind('@'); at != std::string::npos) {
    a.slot = static_cast<unsigned>(parse_u64(body.substr(at + 1), "slot"));
    body = body.substr(0, at);
  }
  const auto eq = body.find('=');
  const std::string name = body.substr(0, eq == std::string::npos ? body.size() : eq);
  if (!kind_from_name(name, &a.kind)) {
    throw std::invalid_argument("fault spec: unknown action '" + name + "'");
  }
  if (a.kind == Kind::SpawnFail) {
    if (eq != std::string::npos) {
      throw std::invalid_argument("fault spec: spawn-fail takes no value");
    }
    return a;
  }
  if (eq == std::string::npos) {
    throw std::invalid_argument("fault spec: '" + name + "' needs =COUNT");
  }
  std::string value = body.substr(eq + 1);
  if (a.kind == Kind::DelayBatch) {
    const auto colon = value.find(':');
    if (colon == std::string::npos) {
      throw std::invalid_argument("fault spec: delay-batch needs =COUNT:MS");
    }
    a.delay_ms = static_cast<unsigned>(parse_u64(value.substr(colon + 1), "delay"));
    value = value.substr(0, colon);
  }
  a.count = parse_u64(value, "count");
  if (a.count == 0) {
    throw std::invalid_argument("fault spec: '" + name + "' count must be >= 1");
  }
  return a;
}

}  // namespace

FaultSpec FaultSpec::parse(const std::string& spec) {
  FaultSpec out;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const auto comma = spec.find(',', pos);
    const std::string item =
        spec.substr(pos, comma == std::string::npos ? std::string::npos : comma - pos);
    if (!item.empty()) out.actions.push_back(parse_action(item));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

FaultSpec FaultSpec::from_env() {
  const char* env = std::getenv("TBI_FAULT_INJECT");
  return env != nullptr ? parse(env) : FaultSpec{};
}

Json FaultSpec::worker_actions_json(unsigned slot) const {
  Json::Array arr;
  for (const auto& a : actions) {
    if (a.kind == Kind::AbortAfterCells || a.kind == Kind::SpawnFail) continue;
    if (a.slot != slot) continue;
    Json j;
    j["kind"] = kind_name(a.kind);
    j["count"] = a.count;
    j["delay_ms"] = static_cast<std::uint64_t>(a.delay_ms);
    arr.push_back(j);
  }
  return Json(arr);
}

std::vector<FaultAction> FaultSpec::worker_actions_from_json(const Json& arr) {
  std::vector<FaultAction> out;
  for (const auto& j : arr.as_array()) {
    FaultAction a;
    if (!kind_from_name(j.at("kind").as_string(), &a.kind)) continue;
    a.count = static_cast<std::uint64_t>(j.at("count").as_double());
    a.delay_ms = static_cast<unsigned>(j.at("delay_ms").as_double());
    out.push_back(a);
  }
  return out;
}

const FaultAction* FaultSpec::find(Kind kind) const {
  for (const auto& a : actions) {
    if (a.kind == kind) return &a;
  }
  return nullptr;
}

}  // namespace tbi::sim
