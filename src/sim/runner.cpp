#include "sim/runner.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "dram/checker.hpp"
#include "interleaver/streams.hpp"
#include "mapping/factory.hpp"
#include "mapping/offset.hpp"

namespace tbi::sim {

std::uint64_t paper_side_for(const dram::DeviceConfig& device) {
  return interleaver::burst_triangle_side(kPaperSymbols, kPaperSymbolBits,
                                          device.burst_bytes);
}

InterleaverRun run_interleaver(const RunConfig& config) {
  if (config.side == 0) {
    throw std::invalid_argument("run_interleaver: side must be set");
  }
  const auto mapping =
      mapping::make_mapping(config.mapping_spec, config.device, config.side);

  dram::Controller controller(config.device, config.controller);
  std::unique_ptr<dram::TimingChecker> checker;
  if (config.check_protocol) {
    checker = std::make_unique<dram::TimingChecker>(config.device,
                                                    controller.refresh_mode());
    controller.set_observer(checker.get());
  }

  InterleaverRun run;
  run.device_name = config.device.name;
  run.mapping_name = mapping->name();

  interleaver::WritePhaseStream write_stream(*mapping, config.max_bursts_per_phase);
  run.write.stats = controller.run_phase(write_stream, "write");
  run.write.energy = dram::compute_energy(config.device, run.write.stats,
                                          controller.refresh_mode());

  interleaver::ReadPhaseStream read_stream(*mapping, config.max_bursts_per_phase);
  run.read.stats = controller.run_phase(read_stream, "read");
  run.read.energy = dram::compute_energy(config.device, run.read.stats,
                                         controller.refresh_mode());

  if (checker) {
    const auto violations = checker->finish();
    if (!violations.empty()) {
      std::string msg = "protocol violations (" + run.device_name + ", " +
                        run.mapping_name + "):";
      for (const auto& v : violations) msg += "\n  " + v;
      throw std::runtime_error(msg);
    }
  }
  return run;
}

PhaseResult run_streaming(const RunConfig& config) {
  if (config.side == 0) {
    throw std::invalid_argument("run_streaming: side must be set");
  }
  // Two instances of the same mapping in disjoint row regions. The exact
  // row footprint of one block is found by scanning the triangle once —
  // the mapping costs ~25 ns per position, so even the paper-sized
  // geometry probes in a few milliseconds.
  auto probe_rows = [&](const mapping::IndexMapping& m) {
    std::uint32_t max_row = 0;
    const std::uint64_t n = m.space().side;
    for (std::uint64_t i = 0; i < n; ++i) {
      for (std::uint64_t j = 0; j < n - i; ++j) {
        max_row = std::max(max_row, m.map(i, j).row);
      }
    }
    return max_row + 1;
  };

  auto write_map =
      mapping::make_mapping(config.mapping_spec, config.device, config.side);
  const std::uint32_t region_rows = probe_rows(*write_map);
  auto read_map = std::make_unique<mapping::RowOffsetMapping>(
      mapping::make_mapping(config.mapping_spec, config.device, config.side),
      region_rows, config.device.rows_per_bank);

  dram::Controller controller(config.device, config.controller);
  std::unique_ptr<dram::TimingChecker> checker;
  if (config.check_protocol) {
    checker = std::make_unique<dram::TimingChecker>(config.device,
                                                    controller.refresh_mode());
    controller.set_observer(checker.get());
  }

  interleaver::StreamingPhaseStream stream(*write_map, *read_map,
                                           config.max_bursts_per_phase);
  PhaseResult result;
  result.stats = controller.run_phase(stream, "streaming");
  result.energy = dram::compute_energy(config.device, result.stats,
                                       controller.refresh_mode());

  if (checker) {
    const auto violations = checker->finish();
    if (!violations.empty()) {
      throw std::runtime_error("run_streaming: protocol violation: " +
                               violations.front());
    }
  }
  return result;
}

}  // namespace tbi::sim
