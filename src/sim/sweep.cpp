#include "sim/sweep.hpp"

#include <algorithm>
#include <stdexcept>

#include "dram/standards.hpp"
#include "interleaver/streams.hpp"

namespace tbi::sim {

namespace {
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}
}  // namespace

std::uint64_t job_seed(std::uint64_t base_seed, std::uint64_t index) {
  // Mix twice so consecutive indices land far apart even for tiny bases;
  // splitmix64 is a bijection, so distinct indices never collide under
  // one base seed.
  return splitmix64(splitmix64(base_seed) ^ index);
}

unsigned resolve_threads(unsigned requested) {
  // Hard cap: protects against nonsense like "--threads -1" wrapping to
  // 4.3 billion through an unsigned cast and aborting in thread spawn.
  constexpr unsigned kMaxThreads = 256;
  if (requested == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    requested = hw != 0 ? hw : 1;
  }
  return std::min(requested, kMaxThreads);
}

unsigned effective_threads(unsigned requested, std::uint64_t jobs) {
  const std::uint64_t resolved = resolve_threads(requested);
  return static_cast<unsigned>(std::max<std::uint64_t>(1, std::min(resolved, jobs)));
}

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) {
    throw std::invalid_argument("ThreadPool: need at least one thread");
  }
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(job));
    ++in_flight_;
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    auto err = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(err);
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      job();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

// ---------------------------------------------------------------------------
// Scenario grids
// ---------------------------------------------------------------------------

std::string Scenario::label() const {
  // Injective over the full tuple: every axis is always spelled out, so
  // two distinct cells can never share a label (eliding "triangular" or
  // the rs_k of channel-free cells used to collide e.g. distinct rs_k
  // cells under channel == "none"). Only the optional symbols_per_burst
  // and links axes are elided, and only in their single "unset" state (0).
  std::string s = device + "/" + mapping_spec + "/" + interleaver;
  if (symbols_per_burst != 0) s += "/spb" + std::to_string(symbols_per_burst);
  s += "/" + channel;
  if (links != 0) s += "/links" + std::to_string(links);
  s += "/RS(255," + std::to_string(rs_k) + ")";
  return s;
}

SweepGrid SweepGrid::paper_bandwidth_grid() {
  SweepGrid grid;
  for (const auto& device : dram::standard_configs()) {
    grid.devices.push_back(device.name);
  }
  grid.mapping_specs = {"row-major", "optimized"};
  return grid;
}

std::uint64_t SweepGrid::size() const {
  return static_cast<std::uint64_t>(devices.size()) * mapping_specs.size() *
         interleavers.size() * channels.size() * rs_ks.size() *
         symbols_per_bursts.size() * links.size();
}

Scenario SweepGrid::cell(std::uint64_t index) const {
  if (index >= size()) {
    throw std::out_of_range("SweepGrid::cell: index " + std::to_string(index) +
                            " out of " + std::to_string(size()));
  }
  // expand() is row-major with links innermost, so the index peels off
  // axis digits from the inside out.
  const auto digit = [&index](std::uint64_t radix) {
    const std::uint64_t d = index % radix;
    index /= radix;
    return d;
  };
  Scenario s;
  s.links = links[digit(links.size())];
  s.symbols_per_burst = symbols_per_bursts[digit(symbols_per_bursts.size())];
  s.rs_k = rs_ks[digit(rs_ks.size())];
  s.channel = channels[digit(channels.size())];
  s.interleaver = interleavers[digit(interleavers.size())];
  s.mapping_spec = mapping_specs[digit(mapping_specs.size())];
  s.device = devices[digit(devices.size())];
  return s;
}

std::vector<Scenario> SweepGrid::expand() const {
  std::vector<Scenario> cells;
  cells.reserve(size());
  for (const auto& device : devices) {
    for (const auto& mapping : mapping_specs) {
      for (const auto& il : interleavers) {
        for (const auto& ch : channels) {
          for (const unsigned k : rs_ks) {
            for (const std::uint64_t spb : symbols_per_bursts) {
              for (const unsigned lk : links) {
                Scenario s;
                s.device = device;
                s.mapping_spec = mapping;
                s.interleaver = il;
                s.channel = ch;
                s.rs_k = k;
                s.symbols_per_burst = spb;
                s.links = lk;
                cells.push_back(std::move(s));
              }
            }
          }
        }
      }
    }
  }
  return cells;
}

// ---------------------------------------------------------------------------
// Bandwidth sweeps
// ---------------------------------------------------------------------------

std::vector<BandwidthRecord> run_bandwidth_sweep(const SweepGrid& grid,
                                                 const BandwidthSweepOptions& options) {
  const auto cells = grid.expand();
  const std::uint64_t symbols =
      options.total_symbols ? options.total_symbols : kPaperSymbols;

  return sweep_map(cells.size(), options.sweep,
                   [&](std::uint64_t index, std::uint64_t /*seed*/) {
    const Scenario& scenario = cells[index];
    const auto* device = dram::find_config(scenario.device);
    if (device == nullptr) {
      throw std::invalid_argument("run_bandwidth_sweep: unknown device '" +
                                  scenario.device + "'");
    }
    BandwidthRecord record;
    record.scenario = scenario;
    record.config.device = *device;
    record.config.mapping_spec = scenario.mapping_spec;
    record.config.controller.queue_depth = options.queue_depth;
    if (options.refresh_disabled) {
      record.config.controller.use_device_default_refresh = false;
      record.config.controller.refresh_mode = dram::RefreshMode::Disabled;
    }
    record.config.side = interleaver::burst_triangle_side(
        symbols, kPaperSymbolBits, device->burst_bytes);
    record.config.max_bursts_per_phase = options.max_bursts_per_phase;
    record.config.check_protocol = options.check_protocol;
    record.run = run_interleaver(record.config);
    return record;
  });
}

SweepSummary summarize(const std::vector<BandwidthRecord>& records) {
  SweepSummary summary;
  summary.records = records.size();
  if (records.empty()) return summary;

  double sum = 0;
  summary.min_utilization = 2.0;
  summary.max_utilization = -1.0;
  for (const auto& r : records) {
    const double u = r.run.min_utilization();
    sum += u;
    if (u < summary.min_utilization) {
      summary.min_utilization = u;
      summary.worst_scenario = r.scenario.label();
    }
    if (u > summary.max_utilization) {
      summary.max_utilization = u;
      summary.best_scenario = r.scenario.label();
    }
  }
  summary.mean_utilization = sum / static_cast<double>(records.size());
  return summary;
}

}  // namespace tbi::sim
