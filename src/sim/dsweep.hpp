/// \file dsweep.hpp
/// Fault-tolerant multi-process sweep backend.
///
/// `sweep_map` shards a grid across threads of one process; this backend
/// shards it across N worker *processes*, each a re-invocation of the
/// current binary with `--worker-fd` (the Mu2e DAQ shape: N independent
/// links with per-link state feeding one merge). The parent assigns cells
/// one at a time, workers stream length-prefixed, CRC-checked record
/// batches back (common/wire.hpp), and the parent merges them **by cell
/// index**, so the result vector is byte-identical to the single-process
/// order no matter how cells land on workers — every cell's seed is
/// `job_seed(base_seed, index)`, exactly as in `sweep_map`, which stays
/// the in-process fallback with unchanged semantics.
///
/// The worker connection itself is pluggable (sim/transport.hpp):
///  * fork/exec over a local socketpair (the default), or
///  * TCP (`DsweepOptions::listen` + `dsweep_worker_connect`): the driver
///    listens, remote workers dial in, handshake with a `Hello` frame
///    carrying the run fingerprint (foreign workers are rejected exactly
///    like foreign manifests), and reconnect with exponential backoff
///    under a bounded retry budget when the link drops.
///
/// Large grids split across driver processes with `shard_index /
/// shard_count`: each shard computes a contiguous cell range into its own
/// manifest (all shards share the full-run fingerprint), and
/// `dsweep_merge_shards` reassembles the ranges into a result
/// byte-identical to the unsharded run.
///
/// Failure model (all paths exercised deterministically via
/// sim/fault.hpp):
///  * crashed worker (exit/kill): EOF on the socket -> its in-flight cell
///    is reassigned, the slot respawns with exponential backoff up to a
///    bounded retry budget;
///  * hung worker: heartbeat frames stop -> SIGKILL after the heartbeat
///    timeout, then the same reassign/respawn path;
///  * corrupt or truncated batch: CRC/framing failure -> the batch is
///    rejected and the worker discarded (never merged);
///  * workers cannot spawn at all (or every retry budget is exhausted):
///    graceful degradation to in-process execution of the remaining
///    cells on a thread pool;
///  * parent preemption (SIGINT/SIGTERM or injected abort): completed
///    cells are already in the append-fsync manifest
///    (sim/manifest.hpp); `resume` skips them on the next run.
///
/// Work is expressed as a **kernel**: a named, deterministic function
/// (job config JSON, cell index, per-cell seed) -> record JSON. Kernels
/// must be registered in both the parent and the re-exec'd worker binary
/// (built-ins via dsweep_register_builtin_kernels, test kernels in the
/// test main). The multi-process path ships the job config as JSON, so
/// kernels must be reconstructible from it — e.g. the "fer" kernel
/// addresses DRAM devices by standard-config name.
#pragma once

#include <csignal>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "sim/fault.hpp"
#include "sim/pipeline.hpp"
#include "sim/sweep.hpp"

namespace tbi::sim {

/// A sweep kernel: deterministic (job, index, seed) -> record. Runs on
/// parent threads (in-process mode) or inside worker processes.
using DsweepKernel =
    std::function<Json(const Json& job, std::uint64_t index, std::uint64_t seed)>;

/// Register \p kernel under \p name (replaces an existing registration).
void dsweep_register_kernel(const std::string& name, DsweepKernel kernel);

/// Register the built-in kernels ("fer", "bandwidth"); idempotent, called
/// automatically by dsweep_run and dsweep_worker_main.
void dsweep_register_builtin_kernels();

struct DsweepOptions {
  /// Worker processes; <= 1 runs in-process on `threads` threads. The
  /// effective count is clamped to the number of outstanding cells.
  unsigned workers = 1;
  unsigned threads = 0;  ///< in-process executor threads (0 = all cores)
  bool resume = false;   ///< load the manifest and skip recorded cells
  /// Checkpoint journal path (conventionally `<json-sink>.manifest`);
  /// empty disables checkpointing and resume.
  std::string manifest_path;
  unsigned max_worker_restarts = 3;    ///< respawn budget per worker slot
  unsigned heartbeat_interval_ms = 250;
  /// Liveness window: a worker that sends neither records nor heartbeats
  /// for this long is declared dead/partitioned and its in-flight cell is
  /// reassigned. Must be positive (dsweep_run throws otherwise).
  unsigned heartbeat_timeout_ms = 5000;
  unsigned backoff_base_ms = 100;      ///< respawn delay, doubled per restart
  /// TCP fleet mode: listen on "host:port" (port 0 = ephemeral) and adopt
  /// remote workers that dial in, instead of forking local ones.
  /// `workers` becomes the number of adoption slots.
  std::string listen;
  /// TCP: degrade to in-process execution when no worker has been alive
  /// or mid-handshake for this long.
  unsigned accept_timeout_ms = 10000;
  /// TCP: called with the bound port once the listener is up (ephemeral
  /// port discovery for tests and logs).
  std::function<void(std::uint16_t)> on_listening;
  /// Shard `shard_index` of `shard_count`: compute only the contiguous
  /// range shard_range(cells, index, count). The manifest still carries
  /// the full-run fingerprint, so dsweep_merge_shards can reassemble.
  unsigned shard_index = 0;
  unsigned shard_count = 1;
  FaultSpec faults;                    ///< injected faults (tests / CI)
  /// Cooperative cancellation (SIGINT/SIGTERM handler flag): checked
  /// between cells; a set flag stops assignment, flushes the manifest and
  /// returns the completed prefix with stats.interrupted set.
  const volatile std::sig_atomic_t* cancel = nullptr;
  std::function<void(const SweepProgress&)> progress;  ///< optional
};

struct DsweepWorkerStats {
  unsigned slot = 0;
  unsigned restarts = 0;            ///< respawns of this slot
  std::uint64_t cells_completed = 0;
};

struct DsweepStats {
  unsigned workers = 0;             ///< processes spawned initially
  unsigned worker_restarts = 0;     ///< total respawns across slots
  unsigned heartbeat_timeouts = 0;  ///< hung workers detected and killed
  unsigned batches_rejected = 0;    ///< corrupt/truncated record batches
  std::uint64_t cells_reassigned = 0;
  std::uint64_t resumed_cells = 0;  ///< cells loaded from the manifest
  bool degraded_inprocess = false;  ///< fell back to in-process execution
  bool interrupted = false;         ///< stopped by cancel/abort, result partial
  bool tcp = false;                 ///< the TCP transport carried this run
  unsigned connections_adopted = 0;   ///< TCP: handshaken connections adopted
  unsigned connections_rejected = 0;  ///< TCP: handshakes refused (foreign/versions)
  std::vector<DsweepWorkerStats> per_worker;

  Json to_json() const;
};

struct DsweepResult {
  /// Record per cell, index-ordered. On an interrupted run only the
  /// completed cells are non-null (`done[i]` tells them apart).
  std::vector<Json> records;
  std::vector<bool> done;
  DsweepStats stats;
};

/// Run \p cells cells of \p kernel over the configured backend. Throws
/// std::invalid_argument for unknown kernels / deterministic kernel
/// failures and std::runtime_error when a resume manifest does not match
/// this run's fingerprint.
DsweepResult dsweep_run(const std::string& kernel, const Json& job,
                        std::uint64_t cells, std::uint64_t base_seed,
                        const DsweepOptions& options);

/// Reassemble a sharded sweep from its per-shard manifests. Every
/// manifest must carry this run's fingerprint (foreign manifests throw
/// std::runtime_error) and together the shards must cover every cell —
/// a torn or unfinished shard must be `--resume`d to completion before
/// it can merge. Records keep their manifest bytes, so the merged result
/// is byte-identical to a single-process run.
DsweepResult dsweep_merge_shards(const std::string& kernel, const Json& job,
                                 std::uint64_t cells, std::uint64_t base_seed,
                                 const std::vector<std::string>& manifest_paths);

// ---------------------------------------------------------------------------
// Worker entry points
// ---------------------------------------------------------------------------

/// Detect the worker re-invocation: returns the inherited socket fd when
/// argv contains `--worker-fd N` (or `--worker-fd=N`), else -1. Call this
/// FIRST in main(), before any CLI parsing.
int dsweep_worker_fd(int argc, const char* const* argv);

/// Worker protocol loop on \p fd; returns the process exit code.
int dsweep_worker_main(int fd);

/// Detect the remote-worker invocation: returns the "host:port" spec when
/// argv contains `--connect SPEC` (or `--connect=SPEC`), else "".
std::string dsweep_worker_connect_arg(int argc, const char* const* argv);

struct WorkerConnectOptions {
  unsigned max_retries = 10;       ///< consecutive failed dials before giving up
  unsigned backoff_base_ms = 100;  ///< reconnect delay, doubled per attempt
  unsigned backoff_cap_ms = 5000;
  unsigned connect_timeout_ms = 5000;
};

/// Remote worker: dial the driver at \p hostport, handshake (Hello with
/// the last-served fingerprint), serve cells, and reconnect with
/// exponential backoff when the link drops mid-run. The attempt counter
/// resets after every successful adoption, so the budget bounds
/// *consecutive* failures, not total reconnects. Returns the process
/// exit code (0 = run complete, 5 = rejected by the driver).
int dsweep_worker_connect(const std::string& hostport,
                          const WorkerConnectOptions& options = {});

// ---------------------------------------------------------------------------
// FER sweeps on the distributed backend
// ---------------------------------------------------------------------------

/// One merged FER cell. `result.dram` is not populated on this path (the
/// wire format carries the derived DRAM metrics instead).
struct FerCell {
  Scenario scenario;
  PipelineResult result;
  std::uint64_t dram_bursts = 0;
  double dram_sched_ns_per_pick = 0;
};

struct FerDistResult {
  std::vector<FerCell> cells;  ///< index-ordered; valid where done[i]
  std::vector<bool> done;
  DsweepStats stats;
};

/// The "fer" kernel's job config for this grid + options.
Json fer_job_config(const SweepGrid& grid, const FerSweepOptions& options);

/// Wire-format conversions for one FER cell record.
Json fer_cell_to_json(const Scenario& scenario, const PipelineResult& result);
FerCell fer_cell_from_json(const Json& record);

/// Wire-format conversions for one intra-frame slice record (the "fer"
/// kernel's output when the job config carries frame_slices > 1): the
/// slice's channel counters plus its flat (frame, input_index, flip)
/// event triplets.
Json fer_slice_to_json(const Scenario& scenario, const PipelineSliceResult& slice);
PipelineSliceResult fer_slice_from_json(const Json& record);

/// run_fer_sweep on the distributed backend: same grid semantics, same
/// per-cell seeds, records merged in single-process order. `dist.threads`
/// is taken from `options.sweep.threads`.
FerDistResult run_fer_sweep_dist(const SweepGrid& grid, const FerSweepOptions& options,
                                 DsweepOptions dist);

/// dsweep_merge_shards for the "fer" kernel: reassemble shard manifests
/// of this grid into a full FerDistResult.
FerDistResult run_fer_merge_shards(const SweepGrid& grid, const FerSweepOptions& options,
                                   const std::vector<std::string>& manifest_paths);

}  // namespace tbi::sim
