#include "sim/dsweep.hpp"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "common/net.hpp"
#include "common/wire.hpp"
#include "perf/counters.hpp"
#include "sim/manifest.hpp"
#include "sim/net_transport.hpp"
#include "sim/transport.hpp"

namespace tbi::sim {

namespace {

using WStatus = wire::FrameReader::Status;

std::mutex g_kernel_mutex;

std::map<std::string, DsweepKernel>& kernel_map() {
  static std::map<std::string, DsweepKernel> m;
  return m;
}

DsweepKernel find_kernel(const std::string& name) {
  std::lock_guard<std::mutex> lock(g_kernel_mutex);
  const auto it = kernel_map().find(name);
  if (it == kernel_map().end()) {
    throw std::invalid_argument("dsweep: unknown kernel '" + name + "'");
  }
  return it->second;
}

std::uint64_t parse_u64_str(const std::string& s) {
  return std::strtoull(s.c_str(), nullptr, 10);
}

std::string self_exe() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
  if (n <= 0) return "";
  buf[n] = '\0';
  return buf;
}

// ---------------------------------------------------------------------------
// Fork/exec transport: the original local backend behind the Transport
// interface. acquire() spawns a worker process re-invoking the current
// binary with --worker-fd over a socketpair; release() SIGKILLs and
// reaps it.
// ---------------------------------------------------------------------------

class ForkTransport : public Transport {
 public:
  ForkTransport(std::string exe, unsigned slots) : exe_(std::move(exe)), pids_(slots, -1) {}
  ~ForkTransport() override {
    for (unsigned s = 0; s < pids_.size(); ++s) release(s, -1);
  }

  const char* name() const override { return "fork"; }
  bool transient_acquire() const override { return false; }

  int acquire(unsigned slot) override {
    int sv[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) return -1;
    // Parent end: close-on-exec (later spawns must not leak it into
    // sibling workers) and nonblocking for the poll loop. The worker end
    // stays inheritable — it must survive the exec.
    ::fcntl(sv[0], F_SETFD, FD_CLOEXEC);
    ::fcntl(sv[0], F_SETFL, O_NONBLOCK);
    char fdbuf[16];
    std::snprintf(fdbuf, sizeof fdbuf, "%d", sv[1]);
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(sv[0]);
      ::close(sv[1]);
      return -1;
    }
    if (pid == 0) {
      // Child: async-signal-safe territory only until exec.
      const char* argv[] = {exe_.c_str(), "--worker-fd", fdbuf, nullptr};
      ::execv(exe_.c_str(), const_cast<char* const*>(argv));
      ::_exit(127);
    }
    ::close(sv[1]);
    pids_[slot] = pid;
    return sv[0];
  }

  void release(unsigned slot, int fd) override {
    if (fd >= 0) ::close(fd);
    if (slot < pids_.size() && pids_[slot] > 0) {
      ::kill(pids_[slot], SIGKILL);
      int status = 0;
      while (::waitpid(pids_[slot], &status, 0) < 0 && errno == EINTR) {
      }
      pids_[slot] = -1;
    }
  }

 private:
  std::string exe_;
  std::vector<pid_t> pids_;
};

// ---------------------------------------------------------------------------
// Parent driver
// ---------------------------------------------------------------------------

struct WorkerSlot {
  unsigned slot = 0;
  int fd = -1;
  wire::FrameReader reader;
  std::int64_t current = -1;  ///< in-flight cell, -1 when idle
  std::uint64_t last_seen_ns = 0;
  unsigned restarts = 0;
  unsigned incarnation = 0;  ///< adoption count; faults ship to incarnation 1 only
  std::uint64_t respawn_at_ns = 0;  ///< next acquire attempt (0 = none scheduled)
  bool alive = false;
  bool retired = false;  ///< restart budget exhausted
  std::uint64_t cells_completed = 0;
};

class Driver {
 public:
  Driver(std::string kernel_name, DsweepKernel kernel, const Json& job,
         std::uint64_t cells, std::uint64_t base_seed, const DsweepOptions& options,
         const ShardRange& range, std::string fingerprint, DsweepResult& result,
         std::uint64_t done_count, ManifestWriter& manifest)
      : kernel_name_(std::move(kernel_name)),
        kernel_(std::move(kernel)),
        job_(job),
        cells_(cells),
        base_seed_(base_seed),
        options_(options),
        range_(range),
        fingerprint_(std::move(fingerprint)),
        result_(result),
        done_count_(done_count),
        manifest_(manifest) {
    abort_after_ = options_.faults.find(FaultAction::Kind::AbortAfterCells);
  }

  void run() {
    for (std::uint64_t i = range_.begin; i < range_.end; ++i) {
      if (!result_.done[i]) pending_.push_back(i);
    }
    remaining_ = pending_.size();
    if (remaining_ == 0) return;

    const bool tcp = !options_.listen.empty();
    bool multi_requested = tcp;
    bool multi = false;
    unsigned want = 0;
    if (tcp) {
      TcpTransportOptions topts;
      topts.fingerprint = fingerprint_;
      topts.handshake_timeout_ms = options_.heartbeat_timeout_ms;
      // A bad address or busy port is a config error, not a worker
      // failure: let the ctor's throw propagate instead of degrading.
      transport_ = std::make_unique<TcpTransport>(options_.listen, topts);
      if (options_.on_listening) {
        options_.on_listening(static_cast<TcpTransport*>(transport_.get())->port());
      }
      result_.stats.tcp = true;
      want = static_cast<unsigned>(
          std::min<std::uint64_t>(std::max(options_.workers, 1u), remaining_));
      multi = true;
    } else {
      multi_requested = options_.workers >= 2 && remaining_ >= 2;
      multi = multi_requested &&
              options_.faults.find(FaultAction::Kind::SpawnFail) == nullptr;
      std::string exe;
      if (multi) {
        exe = self_exe();
        multi = !exe.empty();
      }
      if (multi) {
        want = static_cast<unsigned>(
            std::min<std::uint64_t>(options_.workers, remaining_));
        transport_ = std::make_unique<ForkTransport>(std::move(exe), want);
      }
    }

    if (multi) {
      slots_.resize(want);
      const std::uint64_t now = perf::now_ns();
      unsigned adopted = 0;
      for (unsigned s = 0; s < want; ++s) {
        slots_[s].slot = s;
        if (tcp) {
          // Remote workers arrive on their own schedule; mark the slot as
          // wanting one and let the event loop adopt connections.
          slots_[s].respawn_at_ns = now;
        } else if (try_adopt(slots_[s])) {
          ++adopted;
        } else {
          slots_[s].retired = true;
        }
      }
      result_.stats.workers = tcp ? want : adopted;
      if (tcp || adopted > 0) {
        event_loop();
      }
      cleanup_workers();
      if (tcp) {
        const auto* t = static_cast<const TcpTransport*>(transport_.get());
        result_.stats.connections_adopted = t->adopted();
        result_.stats.connections_rejected = t->rejected();
      }
      for (const auto& s : slots_) {
        result_.stats.per_worker.push_back({s.slot, s.restarts, s.cells_completed});
      }
    }

    if (cancelled()) interrupted_ = true;
    if (!interrupted_ && kernel_error_.empty() && remaining_ > 0) {
      // Workers never spawned/connected, died past their retry budgets,
      // or were skipped: finish the remaining cells in this process.
      result_.stats.degraded_inprocess = multi_requested;
      local_run();
    }
    result_.stats.interrupted = interrupted_;
    if (!kernel_error_.empty()) {
      throw std::invalid_argument("dsweep: kernel failed: " + kernel_error_);
    }
  }

 private:
  bool cancelled() const { return options_.cancel != nullptr && *options_.cancel != 0; }

  // --- shared commit path --------------------------------------------------

  void commit(std::uint64_t cell, Json record) {
    if (result_.done[cell]) return;  // reassigned cell raced its dead owner
    result_.done[cell] = true;
    result_.records[cell] = std::move(record);
    ++done_count_;
    if (remaining_ > 0) --remaining_;
    ++committed_this_run_;
    if (manifest_.is_open()) manifest_.append(cell, result_.records[cell]);
    if (options_.progress) options_.progress({done_count_, range_.size()});
    if (abort_after_ != nullptr && committed_this_run_ >= abort_after_->count) {
      interrupted_ = true;  // injected preemption: stop as SIGINT would
    }
  }

  // --- in-process executor -------------------------------------------------

  void local_run() {
    std::vector<std::uint64_t> todo;
    for (std::uint64_t i = range_.begin; i < range_.end; ++i) {
      if (!result_.done[i]) todo.push_back(i);
    }
    if (todo.empty()) return;
    const unsigned threads = effective_threads(options_.threads, todo.size());
    ThreadPool pool(threads);
    std::atomic<std::uint64_t> next{0};
    std::atomic<bool> stop{false};
    std::mutex commit_mutex;
    for (unsigned t = 0; t < threads; ++t) {
      pool.submit([&] {
        for (;;) {
          if (stop.load(std::memory_order_relaxed) || cancelled()) return;
          const std::uint64_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= todo.size()) return;
          const std::uint64_t cell = todo[i];
          Json record = kernel_(job_, cell, job_seed(base_seed_, cell));
          std::lock_guard<std::mutex> lock(commit_mutex);
          commit(cell, std::move(record));
          if (interrupted_) stop.store(true, std::memory_order_relaxed);
        }
      });
    }
    pool.wait_idle();  // rethrows deterministic kernel failures
    if (cancelled()) interrupted_ = true;
  }

  // --- multi-process executor ----------------------------------------------

  bool try_adopt(WorkerSlot& s) {
    const int fd = transport_->acquire(s.slot);
    if (fd < 0) return false;
    s.respawn_at_ns = 0;
    s.fd = fd;
    s.alive = true;
    s.reader = wire::FrameReader();
    s.last_seen_ns = perf::now_ns();
    ++s.incarnation;

    Json cfg;
    cfg["kernel"] = kernel_name_;
    cfg["job"] = job_;
    // Seeds are full-range u64; JSON numbers are doubles, so ship the
    // seed as a decimal string to survive the round trip bit-exactly.
    cfg["base_seed"] = std::to_string(base_seed_);
    // Remote workers echo the fingerprint back in reconnect Hellos, so a
    // worker can never be adopted by a driver running a different sweep.
    cfg["fingerprint"] = fingerprint_;
    cfg["heartbeat_interval_ms"] =
        static_cast<std::uint64_t>(options_.heartbeat_interval_ms);
    // Injected faults hit a slot's first incarnation only: replacements
    // run clean, so every injected failure converges to recovery.
    cfg["faults"] = s.incarnation == 1 ? options_.faults.worker_actions_json(s.slot)
                                       : Json(Json::Array{});
    if (!wire::write_frame(s.fd, wire::FrameType::JobConfig, cfg.dump(0))) {
      drop(s);
      return false;
    }
    assign_next(s);
    return true;
  }

  /// Release the connection (fork: kill + reap the process too), no
  /// reassignment bookkeeping.
  void drop(WorkerSlot& s) {
    s.alive = false;
    transport_->release(s.slot, s.fd);
    s.fd = -1;
  }

  void fail_worker(WorkerSlot& s) {
    if (!s.alive) return;
    drop(s);
    if (s.current >= 0) {
      const auto cell = static_cast<std::uint64_t>(s.current);
      if (!result_.done[cell]) {
        pending_.push_front(cell);
        ++result_.stats.cells_reassigned;
      }
      s.current = -1;
    }
    if (s.restarts >= options_.max_worker_restarts) {
      s.retired = true;
      return;
    }
    // Exponential backoff before the retry: a worker dying instantly
    // (bad node, OOM loop, flapping link) must not turn the parent into a
    // fork bomb or an adopt/fail spin.
    const std::uint64_t delay_ms = std::min<std::uint64_t>(
        static_cast<std::uint64_t>(options_.backoff_base_ms) << s.restarts, 10'000);
    ++s.restarts;
    ++result_.stats.worker_restarts;
    s.respawn_at_ns = perf::now_ns() + delay_ms * 1'000'000ull;
  }

  void assign_next(WorkerSlot& s) {
    if (!s.alive || s.current >= 0 || pending_.empty()) return;
    const std::uint64_t cell = pending_.front();
    pending_.pop_front();
    s.current = static_cast<std::int64_t>(cell);
    if (!wire::write_frame(s.fd, wire::FrameType::Assign, std::to_string(cell))) {
      fail_worker(s);  // requeues the cell
    }
  }

  void dispatch_pending() {
    for (auto& s : slots_) {
      if (pending_.empty()) return;
      assign_next(s);
    }
  }

  void handle_record(WorkerSlot& s, const wire::Frame& f) {
    std::uint64_t cell = 0;
    Json record;
    try {
      const Json v = Json::parse(f.payload_str());
      cell = static_cast<std::uint64_t>(v.at("cell").as_double());
      record = v.at("record");
    } catch (const JsonError&) {
      ++result_.stats.batches_rejected;
      fail_worker(s);
      return;
    }
    if (!range_.contains(cell)) {
      ++result_.stats.batches_rejected;
      fail_worker(s);
      return;
    }
    if (s.current == static_cast<std::int64_t>(cell)) s.current = -1;
    ++s.cells_completed;
    commit(cell, std::move(record));
    if (!interrupted_) assign_next(s);
  }

  void service(WorkerSlot& s) {
    const WStatus pumped = s.reader.pump(s.fd);
    for (;;) {
      wire::Frame f;
      const WStatus st = s.reader.next(&f);
      if (st == WStatus::Frame) {
        s.last_seen_ns = perf::now_ns();
        if (f.type == wire::FrameType::Record) {
          handle_record(s, f);
        } else if (f.type == wire::FrameType::Error) {
          // Deterministic kernel failure (bad config): retrying cannot
          // help, abort the whole run with the worker's message.
          kernel_error_ = f.payload_str();
          return;
        }
        // Heartbeats only refresh last_seen.
        if (!s.alive || interrupted_) return;
        continue;
      }
      if (st == WStatus::Corrupt) {
        ++result_.stats.batches_rejected;
        fail_worker(s);
        return;
      }
      break;  // NeedMore
    }
    if (pumped == WStatus::Eof && s.alive) fail_worker(s);
  }

  void event_loop() {
    const std::uint64_t hb_timeout_ns =
        static_cast<std::uint64_t>(options_.heartbeat_timeout_ms) * 1'000'000ull;
    const std::uint64_t accept_timeout_ns =
        static_cast<std::uint64_t>(options_.accept_timeout_ms) * 1'000'000ull;
    const int tick_ms = static_cast<int>(
        std::max(10u, std::min(options_.heartbeat_interval_ms, 200u)));
    const bool tcp = transport_->event_fd() >= 0;
    std::uint64_t last_live_ns = perf::now_ns();

    while (remaining_ > 0 && !interrupted_ && kernel_error_.empty()) {
      if (cancelled()) {
        interrupted_ = true;
        break;
      }
      const std::uint64_t now = perf::now_ns();
      transport_->service(now);

      // Slots whose retry backoff expired: fork respawns here; TCP adopts
      // the next handshaken connection, if one is queued.
      for (auto& s : slots_) {
        if (!s.alive && !s.retired && s.respawn_at_ns != 0 && now >= s.respawn_at_ns) {
          if (!try_adopt(s) && !transport_->transient_acquire()) s.retired = true;
        }
      }
      dispatch_pending();

      std::vector<struct pollfd> fds;
      std::vector<WorkerSlot*> owners;
      bool any_alive = false;
      bool any_waiting = false;
      std::uint64_t earliest_respawn = 0;
      for (auto& s : slots_) {
        if (s.alive) {
          fds.push_back({s.fd, POLLIN, 0});
          owners.push_back(&s);
          any_alive = true;
        } else if (!s.retired && s.respawn_at_ns != 0) {
          any_waiting = true;
          if (earliest_respawn == 0 || s.respawn_at_ns < earliest_respawn) {
            earliest_respawn = s.respawn_at_ns;
          }
        }
      }
      if (any_alive || transport_->busy()) last_live_ns = now;
      if (!any_alive) {
        if (!any_waiting) break;  // every slot retired: degrade
        if (tcp && now - last_live_ns > accept_timeout_ns) {
          // Nobody connected (or everybody left) for the whole window:
          // stop waiting for the fleet and run the cells ourselves.
          break;
        }
      }
      const int efd = transport_->event_fd();
      if (efd >= 0) {
        fds.push_back({efd, POLLIN, 0});
        owners.push_back(nullptr);  // transport-level readiness; serviced above
      }
      if (fds.empty()) {
        // Fork backend with only backoff timers outstanding.
        std::this_thread::sleep_for(std::chrono::milliseconds(
            std::min<std::uint64_t>(
                (std::max(earliest_respawn, now) - now) / 1'000'000ull + 1, 50)));
        continue;
      }

      const int ready = ::poll(fds.data(), static_cast<nfds_t>(fds.size()), tick_ms);
      if (ready > 0) {
        for (std::size_t i = 0; i < fds.size(); ++i) {
          if (owners[i] == nullptr) continue;
          if (fds[i].revents & (POLLIN | POLLHUP | POLLERR)) {
            service(*owners[i]);
            if (interrupted_ || !kernel_error_.empty()) break;
          }
        }
      }

      const std::uint64_t scan = perf::now_ns();
      for (auto& s : slots_) {
        if (s.alive && scan - s.last_seen_ns > hb_timeout_ns) {
          // Dead or partitioned worker: no records and no heartbeats for
          // the whole window. Abandon the connection and recover — a
          // stuck cell must not stall the grid forever.
          ++result_.stats.heartbeat_timeouts;
          fail_worker(s);
        }
      }
    }
  }

  void cleanup_workers() {
    for (auto& s : slots_) {
      if (!s.alive) continue;
      wire::write_frame(s.fd, wire::FrameType::Done, "");  // best effort
      drop(s);
    }
  }

  const std::string kernel_name_;
  const DsweepKernel kernel_;
  const Json& job_;
  const std::uint64_t cells_;
  const std::uint64_t base_seed_;
  const DsweepOptions& options_;
  const ShardRange range_;
  const std::string fingerprint_;
  DsweepResult& result_;
  std::uint64_t done_count_;
  std::uint64_t remaining_ = 0;
  std::uint64_t committed_this_run_ = 0;
  ManifestWriter& manifest_;
  const FaultAction* abort_after_ = nullptr;
  std::deque<std::uint64_t> pending_;
  std::vector<WorkerSlot> slots_;
  std::unique_ptr<Transport> transport_;
  std::string kernel_error_;
  bool interrupted_ = false;
};

}  // namespace

void dsweep_register_kernel(const std::string& name, DsweepKernel kernel) {
  std::lock_guard<std::mutex> lock(g_kernel_mutex);
  kernel_map()[name] = std::move(kernel);
}

Json DsweepStats::to_json() const {
  Json j;
  j["workers"] = static_cast<std::uint64_t>(workers);
  j["worker_restarts"] = static_cast<std::uint64_t>(worker_restarts);
  j["heartbeat_timeouts"] = static_cast<std::uint64_t>(heartbeat_timeouts);
  j["batches_rejected"] = static_cast<std::uint64_t>(batches_rejected);
  j["cells_reassigned"] = cells_reassigned;
  j["resumed_cells"] = resumed_cells;
  j["degraded_inprocess"] = degraded_inprocess;
  j["interrupted"] = interrupted;
  if (tcp) {
    // Only present on TCP runs: the default fork-backend schema stays
    // stable for bench_compare's structural drift check.
    j["tcp"] = true;
    j["connections_adopted"] = static_cast<std::uint64_t>(connections_adopted);
    j["connections_rejected"] = static_cast<std::uint64_t>(connections_rejected);
  }
  Json::Array per;
  for (const auto& w : per_worker) {
    Json e;
    e["slot"] = static_cast<std::uint64_t>(w.slot);
    e["restarts"] = static_cast<std::uint64_t>(w.restarts);
    e["cells_completed"] = w.cells_completed;
    per.push_back(e);
  }
  j["per_worker"] = Json(per);
  return j;
}

DsweepResult dsweep_run(const std::string& kernel, const Json& job,
                        std::uint64_t cells, std::uint64_t base_seed,
                        const DsweepOptions& options) {
  if (options.heartbeat_timeout_ms == 0) {
    throw std::invalid_argument("dsweep: worker timeout must be positive");
  }
  net::ignore_sigpipe();
  dsweep_register_builtin_kernels();
  DsweepKernel fn = find_kernel(kernel);

  // Validates the shard spec (throws on index >= count / count == 0).
  const ShardRange range = shard_range(cells, options.shard_index, options.shard_count);

  DsweepResult result;
  result.records.resize(cells);
  result.done.assign(cells, false);

  const std::string fingerprint = sweep_fingerprint(kernel, job, cells, base_seed);
  ManifestWriter manifest;
  std::uint64_t done_count = 0;
  if (!options.manifest_path.empty()) {
    bool fresh = true;
    if (options.resume) {
      const auto load = load_manifest(options.manifest_path, fingerprint);
      if (load.found && !load.fingerprint_ok) {
        throw std::runtime_error(
            "dsweep: manifest '" + options.manifest_path +
            "' was written by a different run (grid/seed/config changed); "
            "delete it or drop --resume");
      }
      if (load.found && load.fingerprint_ok) {
        fresh = false;
        for (const auto& e : load.entries) {
          // Cells outside this shard's range (a manifest written under a
          // different --shard split) are ignored: this run only owns and
          // only reports its own range.
          if (range.contains(e.cell) && !result.done[e.cell]) {
            result.done[e.cell] = true;
            result.records[e.cell] = e.record;
            ++done_count;
            ++result.stats.resumed_cells;
          }
        }
      }
    }
    // A manifest that cannot be opened disables checkpointing (the error
    // is printed) but never blocks the sweep itself.
    manifest.open(options.manifest_path, fingerprint, fresh, options.shard_index,
                  options.shard_count);
    if (options.progress && done_count > 0) {
      options.progress({done_count, range.size()});
    }
  }

  if (range.size() == 0 || done_count == range.size()) return result;

  Driver driver(kernel, std::move(fn), job, cells, base_seed, options, range,
                fingerprint, result, done_count, manifest);
  driver.run();
  return result;
}

DsweepResult dsweep_merge_shards(const std::string& kernel, const Json& job,
                                 std::uint64_t cells, std::uint64_t base_seed,
                                 const std::vector<std::string>& manifest_paths) {
  const std::string fingerprint = sweep_fingerprint(kernel, job, cells, base_seed);
  DsweepResult result;
  result.records.resize(cells);
  result.done.assign(cells, false);

  std::uint64_t merged = 0;
  for (const auto& path : manifest_paths) {
    const auto load = load_manifest(path, fingerprint);
    if (!load.found) {
      throw std::runtime_error("dsweep: cannot read shard manifest '" + path + "'");
    }
    if (!load.fingerprint_ok) {
      throw std::runtime_error("dsweep: shard manifest '" + path +
                               "' was written by a different run "
                               "(grid/seed/config changed)");
    }
    for (const auto& e : load.entries) {
      if (e.cell < cells && !result.done[e.cell]) {
        result.done[e.cell] = true;
        result.records[e.cell] = e.record;
        ++merged;
      }
    }
  }
  if (merged < cells) {
    std::uint64_t first_missing = 0;
    while (first_missing < cells && result.done[first_missing]) ++first_missing;
    throw std::runtime_error(
        "dsweep: shard manifests cover " + std::to_string(merged) + "/" +
        std::to_string(cells) + " cells (first missing: cell " +
        std::to_string(first_missing) +
        "); resume the unfinished shard before merging");
  }
  return result;
}

// ---------------------------------------------------------------------------
// Worker entry points
// ---------------------------------------------------------------------------

int dsweep_worker_fd(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--worker-fd" && i + 1 < argc) return std::atoi(argv[i + 1]);
    if (arg.rfind("--worker-fd=", 0) == 0) return std::atoi(arg.c_str() + 12);
  }
  return -1;
}

std::string dsweep_worker_connect_arg(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--connect" && i + 1 < argc) return argv[i + 1];
    if (arg.rfind("--connect=", 0) == 0) return arg.substr(10);
  }
  return "";
}

namespace {

/// How one serve session over one connection ended.
enum class ServeEnd {
  Done,       ///< driver sent Done: the run is complete
  ConnLost,   ///< EOF / write failure: the driver dropped us (or died)
  StreamBad,  ///< corrupt frame stream from the driver
  Rejected,   ///< driver refused the handshake (foreign run / version)
  Protocol,   ///< unexpected frame where JobConfig/Assign belonged
};

/// Serve one driver connection on \p fd: read the JobConfig, then loop on
/// Assign frames until Done or failure. \p fingerprint is updated with
/// the run fingerprint from the JobConfig (remote workers echo it in
/// reconnect Hellos); \p adopted is set once a JobConfig was received.
ServeEnd worker_serve(int fd, std::string* fingerprint, bool* adopted) {
  wire::FrameReader reader;
  wire::Frame frame;
  const WStatus first = wire::read_frame(fd, reader, &frame);
  if (first != WStatus::Frame) {
    return first == WStatus::Eof ? ServeEnd::ConnLost : ServeEnd::StreamBad;
  }
  if (frame.type == wire::FrameType::Reject) {
    std::fprintf(stderr, "dsweep worker: rejected by driver: %s\n",
                 frame.payload_str().c_str());
    return ServeEnd::Rejected;
  }
  if (frame.type != wire::FrameType::JobConfig) return ServeEnd::Protocol;
  if (adopted != nullptr) *adopted = true;

  DsweepKernel kernel;
  Json job;
  std::uint64_t base_seed = 0;
  unsigned hb_ms = 250;
  std::vector<FaultAction> faults;
  try {
    const Json cfg = Json::parse(frame.payload_str());
    job = cfg.at("job");
    base_seed = parse_u64_str(cfg.at("base_seed").as_string());
    hb_ms = static_cast<unsigned>(cfg.at("heartbeat_interval_ms").as_double());
    faults = FaultSpec::worker_actions_from_json(cfg.at("faults"));
    kernel = find_kernel(cfg.at("kernel").as_string());
    if (fingerprint != nullptr) *fingerprint = cfg.get_or("fingerprint", std::string());
  } catch (const std::exception& e) {
    wire::write_frame(fd, wire::FrameType::Error, e.what());
    return ServeEnd::Protocol;
  }
  const auto fault = [&faults](FaultAction::Kind kind) -> const FaultAction* {
    for (const auto& a : faults) {
      if (a.kind == kind) return &a;
    }
    return nullptr;
  };

  // Heartbeat thread: liveness signal decoupled from cell completion, so
  // the driver can tell "slow cell" from "hung worker". Serialized with
  // record writes — interleaving two frames would corrupt the stream.
  std::mutex write_mutex;
  std::atomic<bool> stop{false};
  std::atomic<bool> stall{false};
  std::thread heartbeat([&] {
    while (!stop.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(std::max(hb_ms, 1u)));
      if (stop.load() || stall.load()) continue;
      std::lock_guard<std::mutex> lock(write_mutex);
      if (!wire::write_frame(fd, wire::FrameType::Heartbeat, "")) return;
    }
  });
  const auto finish = [&](ServeEnd end) {
    stop.store(true);
    heartbeat.join();
    return end;
  };

  std::uint64_t cells_done = 0;
  std::uint64_t batches_sent = 0;
  for (;;) {
    const WStatus st = wire::read_frame(fd, reader, &frame);
    if (st != WStatus::Frame) {
      return finish(st == WStatus::Eof ? ServeEnd::ConnLost : ServeEnd::StreamBad);
    }
    if (frame.type == wire::FrameType::Done) return finish(ServeEnd::Done);
    if (frame.type != wire::FrameType::Assign) return finish(ServeEnd::Protocol);
    const std::uint64_t cell = parse_u64_str(frame.payload_str());

    Json record;
    try {
      record = kernel(job, cell, job_seed(base_seed, cell));
    } catch (const std::exception& e) {
      Json err;
      err["cell"] = cell;
      err["error"] = std::string(e.what());
      std::lock_guard<std::mutex> lock(write_mutex);
      wire::write_frame(fd, wire::FrameType::Error, err.dump(0));
      continue;  // driver aborts the run on Error; stay responsive meanwhile
    }
    ++cells_done;

    Json out;
    out["cell"] = cell;
    out["record"] = record;
    auto bytes = wire::encode_frame(wire::FrameType::Record, out.dump(0));
    ++batches_sent;

    // --- injected batch faults --------------------------------------------
    if (const auto* a = fault(FaultAction::Kind::DelayBatch);
        a != nullptr && batches_sent == a->count) {
      std::this_thread::sleep_for(std::chrono::milliseconds(a->delay_ms));
    }
    if (const auto* a = fault(FaultAction::Kind::CorruptBatch);
        a != nullptr && batches_sent == a->count) {
      // Flip one payload byte after the CRC was computed: the driver must
      // reject the batch, not merge garbage.
      bytes[wire::kHeaderBytes + (bytes.size() - wire::kHeaderBytes) / 2] ^= 0x5A;
    }
    if (const auto* a = fault(FaultAction::Kind::CorruptFrame);
        a != nullptr && batches_sent == a->count) {
      // Flip a bit in the header's type byte: only a CRC that covers the
      // header (wire v2) catches this one.
      bytes[4] ^= 0x10;
    }
    if (const auto* a = fault(FaultAction::Kind::TruncateBatch);
        a != nullptr && batches_sent == a->count) {
      std::lock_guard<std::mutex> lock(write_mutex);
      wire::write_all(fd, bytes.data(), bytes.size() / 2);
      std::_Exit(3);
    }
    {
      std::lock_guard<std::mutex> lock(write_mutex);
      if (!wire::write_all(fd, bytes.data(), bytes.size())) {
        return finish(ServeEnd::ConnLost);
      }
    }
    if (const auto* a = fault(FaultAction::Kind::KillAfterCells);
        a != nullptr && cells_done == a->count) {
      std::_Exit(4);  // hard crash, no cleanup — the recovery path's job
    }
    if (const auto* a = fault(FaultAction::Kind::StallAfterCells);
        a != nullptr && cells_done == a->count) {
      stall.store(true);  // heartbeats stop; hang until the driver SIGKILLs us
      for (;;) std::this_thread::sleep_for(std::chrono::seconds(1));
    }
    if (const auto* a = fault(FaultAction::Kind::DropConnAfter);
        a != nullptr && cells_done == a->count) {
      // Sever the link mid-run (dropped TCP session / yanked cable). The
      // driver reassigns; a remote worker reconnects with backoff.
      ::shutdown(fd, SHUT_RDWR);
      return finish(ServeEnd::ConnLost);
    }
    if (const auto* a = fault(FaultAction::Kind::StallConnAfter);
        a != nullptr && cells_done == a->count) {
      // Network partition as the driver sees it: the connection stays
      // open but heartbeats stop. Poll for the driver abandoning us (EOF
      // after its liveness timeout) so the partition heals into a
      // reconnect instead of a leaked process.
      stall.store(true);
      for (;;) {
        struct pollfd p{fd, POLLIN, 0};
        if (::poll(&p, 1, 100) < 0 && errno != EINTR) {
          return finish(ServeEnd::ConnLost);
        }
        if (p.revents & (POLLIN | POLLHUP | POLLERR)) {
          std::uint8_t junk[4096];
          const ssize_t n = ::read(fd, junk, sizeof junk);
          if (n == 0 || (n < 0 && errno != EINTR && errno != EAGAIN)) {
            return finish(ServeEnd::ConnLost);
          }
        }
      }
    }
  }
}

}  // namespace

int dsweep_worker_main(int fd) {
  net::ignore_sigpipe();
  dsweep_register_builtin_kernels();
  switch (worker_serve(fd, nullptr, nullptr)) {
    case ServeEnd::Done: return 0;
    case ServeEnd::ConnLost: return 0;  // driver is gone; nothing left to do
    case ServeEnd::StreamBad: return 1;
    case ServeEnd::Rejected: return 5;
    case ServeEnd::Protocol: return 2;
  }
  return 2;
}

int dsweep_worker_connect(const std::string& hostport,
                          const WorkerConnectOptions& options) {
  net::ignore_sigpipe();
  dsweep_register_builtin_kernels();
  std::string fingerprint;
  unsigned attempt = 0;
  for (;;) {
    std::string err;
    const int fd = net::connect_tcp(hostport, options.connect_timeout_ms, &err);
    if (fd >= 0) {
      Json hello;
      hello["proto"] = static_cast<std::uint64_t>(wire::kProtocolVersion);
      hello["fingerprint"] = fingerprint;
      bool adopted = false;
      ServeEnd end = ServeEnd::ConnLost;
      if (wire::write_frame(fd, wire::FrameType::Hello, hello.dump(0))) {
        end = worker_serve(fd, &fingerprint, &adopted);
      }
      ::close(fd);
      switch (end) {
        case ServeEnd::Done: return 0;
        case ServeEnd::Rejected: return 5;  // the driver will never want us
        case ServeEnd::Protocol: return 2;
        case ServeEnd::ConnLost:
        case ServeEnd::StreamBad:
          // Dropped or garbled link: redial. Serving real work resets the
          // budget — it bounds consecutive failures, not total reconnects.
          if (adopted) attempt = 0;
          break;
      }
    }
    if (attempt >= options.max_retries) {
      std::fprintf(stderr, "dsweep worker: giving up on %s after %u attempts: %s\n",
                   hostport.c_str(), attempt + 1, err.empty() ? "link lost" : err.c_str());
      return 1;
    }
    const std::uint64_t delay_ms = std::min<std::uint64_t>(
        static_cast<std::uint64_t>(options.backoff_base_ms) << attempt,
        options.backoff_cap_ms);
    ++attempt;
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
  }
}

// ---------------------------------------------------------------------------
// FER sweeps on the distributed backend
// ---------------------------------------------------------------------------

namespace {

Json string_array(const std::vector<std::string>& v) {
  Json::Array arr;
  for (const auto& s : v) arr.push_back(Json(s));
  return Json(std::move(arr));
}

template <typename T>
Json number_array(const std::vector<T>& v) {
  Json::Array arr;
  for (const T x : v) arr.push_back(Json(static_cast<std::uint64_t>(x)));
  return Json(std::move(arr));
}

FerDistResult fer_dist_from_dsweep(DsweepResult res) {
  FerDistResult out;
  out.done = std::move(res.done);
  out.stats = std::move(res.stats);
  out.cells.resize(res.records.size());
  for (std::size_t i = 0; i < res.records.size(); ++i) {
    if (out.done[i]) out.cells[i] = fer_cell_from_json(res.records[i]);
  }
  return out;
}

}  // namespace

Json fer_job_config(const SweepGrid& grid, const FerSweepOptions& options) {
  Json g;
  g["devices"] = string_array(grid.devices);
  g["mapping_specs"] = string_array(grid.mapping_specs);
  g["interleavers"] = string_array(grid.interleavers);
  g["channels"] = string_array(grid.channels);
  g["rs_ks"] = number_array(grid.rs_ks);
  g["symbols_per_bursts"] = number_array(grid.symbols_per_bursts);
  g["links"] = number_array(grid.links);

  const PipelineConfig& b = options.base;
  Json base;
  base["interleaver"] = b.interleaver;
  base["channel"] = b.channel;
  base["rs_n"] = static_cast<std::uint64_t>(b.rs_n);
  base["rs_k"] = static_cast<std::uint64_t>(b.rs_k);
  base["frames"] = static_cast<std::uint64_t>(b.frames);
  base["side"] = b.side;
  base["symbols_per_burst"] = b.symbols_per_burst;
  base["stream_chunk_symbols"] = b.stream_chunk_symbols;
  base["error_probability"] = b.error_probability;
  base["fade_fraction"] = b.fade_fraction;
  base["mean_burst_symbols"] = b.mean_burst_symbols;
  base["error_rate_bad"] = b.error_rate_bad;
  base["links"] = static_cast<std::uint64_t>(b.links);
  base["link_phase_symbols"] = b.link_phase_symbols;
  base["run_dram"] = b.run_dram;
  // Workers rebuild the device from the standard-config table; custom
  // DeviceConfigs can't ride the wire (grids name their devices anyway).
  base["device"] = b.device.name;
  base["mapping_spec"] = b.mapping_spec;
  base["dram_max_bursts_per_phase"] = b.dram_max_bursts_per_phase;
  base["check_protocol"] = b.check_protocol;

  Json job;
  job["grid"] = g;
  job["base"] = base;
  // Intra-frame slicing rides in the job config so a worker can recover
  // (cell, slice) from its expanded index and recompute the cell's own
  // seed — the driver's per-record seeds walk the expanded cell x slice
  // space. base_seed travels as a string: Json numbers are doubles and
  // would round 64-bit seeds. Both keys are omitted for frame_slices == 1
  // so classic sweeps keep their pre-slice fingerprints (old manifests
  // resume fine).
  if (options.frame_slices > 1) {
    job["frame_slices"] = static_cast<std::uint64_t>(options.frame_slices);
    job["base_seed"] = std::to_string(options.sweep.base_seed);
  }
  return job;
}

namespace {

Json fer_scenario_to_json(const Scenario& scenario) {
  Json sc;
  sc["device"] = scenario.device;
  sc["mapping_spec"] = scenario.mapping_spec;
  sc["interleaver"] = scenario.interleaver;
  sc["channel"] = scenario.channel;
  sc["rs_k"] = static_cast<std::uint64_t>(scenario.rs_k);
  sc["symbols_per_burst"] = scenario.symbols_per_burst;
  sc["links"] = static_cast<std::uint64_t>(scenario.links);
  return sc;
}

}  // namespace

Json fer_cell_to_json(const Scenario& scenario, const PipelineResult& result) {
  Json sc = fer_scenario_to_json(scenario);

  Json r;
  r["frames"] = result.frames;
  r["code_words"] = result.code_words;
  r["word_errors"] = result.word_errors;
  r["frame_errors"] = result.frame_errors;
  r["channel_symbol_errors"] = result.channel_symbol_errors;
  r["corrected_symbols"] = result.corrected_symbols;
  r["frame_symbols"] = result.frame_symbols;
  r["workspace_peak_bytes"] = result.workspace_peak_bytes;
  r["host_ns"] = result.host_ns;
  r["steady_allocations"] = result.steady_allocations;
  r["steady_frames"] = result.steady_frames;
  r["channel_symbols"] = result.channel_symbols;
  r["dram_ran"] = result.dram_ran;
  if (result.dram_ran) {
    r["dram_throughput_gbps"] = result.dram_throughput_gbps;
    r["dram_bursts"] = result.dram.total_bursts();
    r["dram_sched_ns_per_pick"] = result.dram.sched_ns_per_pick();
  }

  Json j;
  j["scenario"] = sc;
  j["result"] = r;
  return j;
}

FerCell fer_cell_from_json(const Json& record) {
  const Json& sc = record.at("scenario");
  const Json& r = record.at("result");
  FerCell cell;
  cell.scenario.device = sc.at("device").as_string();
  cell.scenario.mapping_spec = sc.at("mapping_spec").as_string();
  cell.scenario.interleaver = sc.at("interleaver").as_string();
  cell.scenario.channel = sc.at("channel").as_string();
  cell.scenario.rs_k = static_cast<unsigned>(sc.at("rs_k").as_double());
  cell.scenario.symbols_per_burst =
      static_cast<std::uint64_t>(sc.at("symbols_per_burst").as_double());
  cell.scenario.links = static_cast<unsigned>(sc.get_or("links", 0.0));

  const auto u64 = [&r](const char* key) {
    return static_cast<std::uint64_t>(r.at(key).as_double());
  };
  cell.result.frames = u64("frames");
  cell.result.code_words = u64("code_words");
  cell.result.word_errors = u64("word_errors");
  cell.result.frame_errors = u64("frame_errors");
  cell.result.channel_symbol_errors = u64("channel_symbol_errors");
  cell.result.corrected_symbols = u64("corrected_symbols");
  cell.result.frame_symbols = u64("frame_symbols");
  cell.result.workspace_peak_bytes = u64("workspace_peak_bytes");
  cell.result.host_ns = u64("host_ns");
  cell.result.steady_allocations = u64("steady_allocations");
  cell.result.steady_frames = u64("steady_frames");
  cell.result.channel_symbols = u64("channel_symbols");
  cell.result.dram_ran = r.at("dram_ran").as_bool();
  if (cell.result.dram_ran) {
    cell.result.dram_throughput_gbps = r.at("dram_throughput_gbps").as_double();
    cell.dram_bursts = u64("dram_bursts");
    cell.dram_sched_ns_per_pick = r.at("dram_sched_ns_per_pick").as_double();
  }
  return cell;
}

Json fer_slice_to_json(const Scenario& scenario, const PipelineSliceResult& s) {
  Json r;
  r["index"] = static_cast<std::uint64_t>(s.slice);
  r["count"] = static_cast<std::uint64_t>(s.num_slices);
  r["frames"] = s.frames;
  r["channel_symbols"] = s.channel_symbols;
  r["channel_symbol_errors"] = s.channel_symbol_errors;
  r["workspace_peak_bytes"] = s.workspace_peak_bytes;
  r["host_ns"] = s.host_ns;
  // Flat (frame, input_index, flip) triplets. Input indices are frame
  // positions (< 2^53 by a wide margin), so double-backed Json numbers
  // carry them exactly.
  Json::Array hits;
  hits.reserve(s.hits.size() * 3);
  for (const StreamHit& h : s.hits) {
    hits.push_back(Json(h.frame));
    hits.push_back(Json(h.input_index));
    hits.push_back(Json(static_cast<std::uint64_t>(h.flip)));
  }
  r["hits"] = Json(std::move(hits));

  Json j;
  j["scenario"] = fer_scenario_to_json(scenario);
  j["slice"] = r;
  return j;
}

PipelineSliceResult fer_slice_from_json(const Json& record) {
  const Json& r = record.at("slice");
  const auto u64 = [&r](const char* key) {
    return static_cast<std::uint64_t>(r.at(key).as_double());
  };
  PipelineSliceResult s;
  s.slice = static_cast<unsigned>(u64("index"));
  s.num_slices = static_cast<unsigned>(u64("count"));
  s.frames = u64("frames");
  s.channel_symbols = u64("channel_symbols");
  s.channel_symbol_errors = u64("channel_symbol_errors");
  s.workspace_peak_bytes = u64("workspace_peak_bytes");
  s.host_ns = u64("host_ns");
  const auto& hits = r.at("hits").as_array();
  if (hits.size() % 3 != 0) {
    throw std::invalid_argument("fer slice record: torn hits array");
  }
  s.hits.reserve(hits.size() / 3);
  for (std::size_t i = 0; i < hits.size(); i += 3) {
    StreamHit h;
    h.frame = static_cast<std::uint64_t>(hits[i].as_double());
    h.input_index = static_cast<std::uint64_t>(hits[i + 1].as_double());
    h.flip = static_cast<std::uint8_t>(hits[i + 2].as_double());
    s.hits.push_back(h);
  }
  return s;
}

namespace {

/// Merge an expanded cell x slice run back to one FerCell per scenario:
/// streaming cells combine their slices (channel events merged, decode +
/// DRAM phases run here — both deterministic), materialized cells were
/// computed whole by their slice 0. A cell is done only when every one of
/// its slices is.
FerDistResult fer_dist_from_sliced(const SweepGrid& grid,
                                   const FerSweepOptions& options,
                                   DsweepResult res) {
  const unsigned S = options.frame_slices;
  const std::uint64_t cells = grid.size();
  FerDistResult out;
  out.stats = std::move(res.stats);
  out.done.assign(cells, false);
  out.cells.resize(cells);
  std::map<unsigned, fec::ReedSolomon> codecs;
  for (std::uint64_t c = 0; c < cells; ++c) {
    bool all = true;
    for (unsigned s = 0; s < S && all; ++s) all = res.done[c * S + s];
    if (!all) continue;
    const Json& first = res.records[c * S];
    if (first.contains("slice")) {
      std::vector<PipelineSliceResult> slices;
      slices.reserve(S);
      for (unsigned s = 0; s < S; ++s) {
        slices.push_back(fer_slice_from_json(res.records[c * S + s]));
      }
      const Scenario scenario = grid.cell(c);
      const PipelineConfig config = fer_cell_config(
          options.base, scenario, job_seed(options.sweep.base_seed, c));
      auto it = codecs.find(scenario.rs_k);
      if (it == codecs.end()) {
        it = codecs.try_emplace(scenario.rs_k, options.base.rs_n, scenario.rs_k)
                 .first;
      }
      FerCell cell;
      cell.scenario = scenario;
      cell.result = combine_pipeline_slices(config, it->second, std::move(slices));
      if (cell.result.dram_ran) {
        cell.dram_bursts = cell.result.dram.total_bursts();
        cell.dram_sched_ns_per_pick = cell.result.dram.sched_ns_per_pick();
      }
      out.cells[c] = std::move(cell);
    } else {
      out.cells[c] = fer_cell_from_json(first);
    }
    out.done[c] = true;
  }
  return out;
}

}  // namespace

FerDistResult run_fer_sweep_dist(const SweepGrid& grid, const FerSweepOptions& options,
                                 DsweepOptions dist) {
  dist.threads = options.sweep.threads;
  const Json job = fer_job_config(grid, options);
  const unsigned S = options.frame_slices > 1 ? options.frame_slices : 1;
  DsweepResult res =
      dsweep_run("fer", job, grid.size() * S, options.sweep.base_seed, dist);
  if (S > 1) return fer_dist_from_sliced(grid, options, std::move(res));
  return fer_dist_from_dsweep(std::move(res));
}

FerDistResult run_fer_merge_shards(const SweepGrid& grid, const FerSweepOptions& options,
                                   const std::vector<std::string>& manifest_paths) {
  const Json job = fer_job_config(grid, options);
  const unsigned S = options.frame_slices > 1 ? options.frame_slices : 1;
  DsweepResult res = dsweep_merge_shards("fer", job, grid.size() * S,
                                         options.sweep.base_seed, manifest_paths);
  if (S > 1) return fer_dist_from_sliced(grid, options, std::move(res));
  return fer_dist_from_dsweep(std::move(res));
}

}  // namespace tbi::sim
