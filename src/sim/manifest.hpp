/// \file manifest.hpp
/// Done-cell checkpoint manifest for distributed sweeps.
///
/// A sweep that takes hours on a preemptible machine must not lose the
/// cells it already finished. The manifest is an append-fsync journal
/// living next to the `--json` sink (`<sink>.manifest`): the first line
/// names the run fingerprint, every following line is one completed cell
/// with its full record. `--resume` loads the journal, skips the
/// recorded cells, and merges their records byte-identically with the
/// freshly computed remainder.
///
/// Durability model: each entry is a single O_APPEND write + fdatasync
/// (common/fsio.hpp), so a crash tears at most the final line; the
/// loader stops at the first unparseable line and the cells after the
/// tear are simply recomputed. The manifest is removed once the final
/// document is committed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/fsio.hpp"
#include "common/json.hpp"

namespace tbi::sim {

/// Fingerprint of a sweep run: a 64-bit hash (hex) over the kernel name,
/// the job configuration, the cell count and the base seed. Manifest
/// entries only ever apply to a run with an identical fingerprint —
/// resuming a 40-frame sweep from a 20-frame manifest would silently mix
/// incompatible records.
std::string sweep_fingerprint(const std::string& kernel, const Json& job,
                              std::uint64_t cells, std::uint64_t base_seed);

struct ManifestEntry {
  std::uint64_t cell = 0;
  Json record;
};

struct ManifestLoad {
  bool found = false;           ///< the file existed and was readable
  bool fingerprint_ok = false;  ///< header matched the expected fingerprint
  /// Valid entry prefix in journal (arrival) order. Entries after a torn
  /// or corrupt line are dropped.
  std::vector<ManifestEntry> entries;
};

/// Load \p path and validate it against \p fingerprint.
ManifestLoad load_manifest(const std::string& path, const std::string& fingerprint);

/// Append-fsync manifest writer.
class ManifestWriter {
 public:
  /// Open \p path for appending. \p fresh truncates and writes a new
  /// header; otherwise the journal is extended in place (resume). Returns
  /// false when the file cannot be opened or the header cannot be
  /// written.
  bool open(const std::string& path, const std::string& fingerprint, bool fresh);
  bool is_open() const { return log_.is_open(); }

  /// Append one completed cell. Returns false on write/sync failure.
  bool append(std::uint64_t cell, const Json& record);

  void close() { log_.close(); }

 private:
  AppendLog log_;
};

}  // namespace tbi::sim
