/// \file manifest.hpp
/// Done-cell checkpoint manifest for distributed sweeps.
///
/// A sweep that takes hours on a preemptible machine must not lose the
/// cells it already finished. The manifest is an append-fsync journal
/// living next to the `--json` sink (`<sink>.manifest`): the first line
/// names the run fingerprint, every following line is one completed cell
/// with its full record. `--resume` loads the journal, skips the
/// recorded cells, and merges their records byte-identically with the
/// freshly computed remainder.
///
/// Durability model: each entry is a single O_APPEND write + fdatasync
/// (common/fsio.hpp), so a crash tears at most the final line; the
/// loader stops at the first unparseable line and the cells after the
/// tear are simply recomputed. The manifest is removed once the final
/// document is committed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/fsio.hpp"
#include "common/json.hpp"

namespace tbi::sim {

/// Fingerprint of a sweep run: a 64-bit hash (hex) over the kernel name,
/// the job configuration, the cell count and the base seed. Manifest
/// entries only ever apply to a run with an identical fingerprint —
/// resuming a 40-frame sweep from a 20-frame manifest would silently mix
/// incompatible records.
std::string sweep_fingerprint(const std::string& kernel, const Json& job,
                              std::uint64_t cells, std::uint64_t base_seed);

/// Contiguous cell range `[begin, end)` owned by one shard of a sweep.
struct ShardRange {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;

  std::uint64_t size() const { return end - begin; }
  bool contains(std::uint64_t cell) const { return cell >= begin && cell < end; }
};

/// Split \p cells into \p count contiguous ranges and return range
/// \p index: `[cells*index/count, cells*(index+1)/count)`. Every cell
/// belongs to exactly one shard and ranges differ in size by at most 1.
/// Throws std::invalid_argument when count == 0 or index >= count.
ShardRange shard_range(std::uint64_t cells, unsigned index, unsigned count);

/// Parse a `--shard I/N` spec. Throws std::invalid_argument on malformed
/// input, N == 0, or I >= N.
void parse_shard_spec(const std::string& spec, unsigned* index, unsigned* count);

struct ManifestEntry {
  std::uint64_t cell = 0;
  Json record;
};

struct ManifestLoad {
  bool found = false;           ///< the file existed and was readable
  bool fingerprint_ok = false;  ///< header matched the expected fingerprint
  /// Valid entry prefix in journal (arrival) order. Entries after a torn
  /// or corrupt line are dropped.
  std::vector<ManifestEntry> entries;
};

/// Load \p path and validate it against \p fingerprint.
ManifestLoad load_manifest(const std::string& path, const std::string& fingerprint);

/// Append-fsync manifest writer.
class ManifestWriter {
 public:
  /// Open \p path for appending. \p fresh truncates and writes a new
  /// header; otherwise the journal is extended in place (resume). Sharded
  /// runs (shard_count > 1) annotate the header with their shard so a
  /// human can tell the journals apart — the resume/merge logic keys on
  /// the fingerprint alone. Returns false when the file cannot be opened
  /// or the header cannot be written.
  bool open(const std::string& path, const std::string& fingerprint, bool fresh,
            unsigned shard_index = 0, unsigned shard_count = 1);
  bool is_open() const { return log_.is_open(); }

  /// Append one completed cell. Returns false on write/sync failure.
  bool append(std::uint64_t cell, const Json& record);

  void close() { log_.close(); }

 private:
  AppendLog log_;
};

}  // namespace tbi::sim
