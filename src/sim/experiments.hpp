/// \file experiments.hpp
/// Reusable experiment drivers for the paper's evaluation artifacts
/// (DESIGN.md §4). Bench binaries format the returned records; tests
/// assert on their shape.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "dram/standards.hpp"
#include "sim/runner.hpp"

namespace tbi::sim {

/// One row of Table I: a device configuration with both mappings.
struct Table1Row {
  std::string config;
  double row_major_write = 0;
  double row_major_read = 0;
  double optimized_write = 0;
  double optimized_read = 0;
  /// Host scheduling cost (perf counter, both phases pooled), per mapping.
  double row_major_ns_per_pick = 0;
  double optimized_ns_per_pick = 0;
};

struct Table1Options {
  /// 0 = the paper's 12.5 M symbols; otherwise total symbol count.
  std::uint64_t total_symbols = 0;
  /// 0 = full phases; otherwise truncate each phase (faster smoke runs).
  std::uint64_t max_bursts_per_phase = 0;
  /// Refresh override; when false the device default applies.
  bool refresh_disabled = false;
  /// Restrict to these device names (empty = all ten).
  std::vector<std::string> devices;
  /// Validate every command stream against the JEDEC checker.
  bool check_protocol = false;
  unsigned queue_depth = 64;
  /// Worker threads for the sweep (0 = all hardware threads).
  unsigned threads = 0;
};

/// E1 / E3: run row-major and optimized mappings over the configured
/// devices and report write/read bandwidth utilizations.
std::vector<Table1Row> run_table1(const Table1Options& options);

/// Render Table-I rows in the paper's format.
TextTable format_table1(const std::vector<Table1Row>& rows, const std::string& title);

/// E5: ablation of the three optimizations on one device.
struct AblationRow {
  std::string variant;
  double write = 0;
  double read = 0;
  /// Host scheduling cost (perf counter, both phases pooled).
  double ns_per_pick = 0;
  double min() const { return write < read ? write : read; }
};

std::vector<AblationRow> run_ablation(const dram::DeviceConfig& device,
                                      std::uint64_t total_symbols,
                                      std::uint64_t max_bursts_per_phase = 0,
                                      unsigned threads = 0);

/// E4: interleaver dimension sweep on one device, both mappings.
struct DimensionRow {
  std::uint64_t total_symbols = 0;
  std::uint64_t side_bursts = 0;
  double row_major_min = 0;
  double optimized_min = 0;
  /// Host scheduling cost (perf counter, both phases pooled), per mapping.
  double row_major_ns_per_pick = 0;
  double optimized_ns_per_pick = 0;
};

std::vector<DimensionRow> run_dimension_sweep(const dram::DeviceConfig& device,
                                              const std::vector<std::uint64_t>& symbol_counts,
                                              unsigned threads = 0);

}  // namespace tbi::sim
