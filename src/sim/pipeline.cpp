#include "sim/pipeline.hpp"

#include <algorithm>
#include <stdexcept>

#include "channel/bsc.hpp"
#include "channel/gilbert_elliott.hpp"
#include "channel/leo.hpp"
#include "common/mathutil.hpp"
#include "common/rng.hpp"
#include "fec/reed_solomon.hpp"
#include "interleaver/block.hpp"
#include "interleaver/streams.hpp"
#include "interleaver/triangular.hpp"

namespace tbi::sim {

namespace {

constexpr unsigned kChannelSymbolBits = 8;  // RS symbols are bytes

/// Stream permutation for the pipeline's interleaver axis. The block
/// variant reshapes the packed triangle into an exact rows x cols
/// rectangle (classic SRAM interleaver) as the non-triangular baseline.
class StreamInterleaver {
 public:
  StreamInterleaver(const std::string& kind, std::uint64_t side) {
    if (kind == "none") {
      return;
    }
    if (kind == "triangular") {
      tri_ = std::make_unique<interleaver::TriangularInterleaver>(side);
      return;
    }
    if (kind == "block") {
      // T(side) = side*(side+1)/2 factors exactly as rows x cols with
      // rows = side (side odd) or side+1 (side even).
      const std::uint64_t rows = (side % 2 == 1) ? side : side + 1;
      block_ = std::make_unique<interleaver::BlockInterleaver>(
          rows, triangular_number(side) / rows);
      return;
    }
    throw std::invalid_argument("pipeline: unknown interleaver '" + kind + "'");
  }

  std::vector<std::uint8_t> forward(const std::vector<std::uint8_t>& in) const {
    if (tri_) return tri_->interleave(in);
    if (block_) return block_->interleave(in);
    return in;
  }

  std::vector<std::uint8_t> backward(const std::vector<std::uint8_t>& in) const {
    if (tri_) return tri_->deinterleave(in);
    if (block_) return block_->deinterleave(in);
    return in;
  }

 private:
  std::unique_ptr<interleaver::TriangularInterleaver> tri_;
  std::unique_ptr<interleaver::BlockInterleaver> block_;
};

/// One triangular block: per-row shortened code words and the packed
/// transmit stream (row i transmits word symbols i..n-1).
struct Frame {
  std::vector<std::vector<std::uint8_t>> row_data;  ///< empty = row carries no word
  std::vector<std::uint8_t> stream;
};

Frame make_frame(const fec::ReedSolomon& rs, std::uint64_t side, Rng& rng) {
  const unsigned parity = rs.parity();
  Frame f;
  f.stream.resize(triangular_number(side));
  f.row_data.resize(side);
  std::uint64_t pos = 0;
  for (std::uint64_t i = 0; i < side; ++i) {
    const std::uint64_t len = tri_row_length(side, i);
    if (len <= parity) {  // too short for a shortened word; padding row
      pos += len;
      continue;
    }
    std::vector<std::uint8_t> data(len - parity);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_u64());
    f.row_data[i] = data;
    std::vector<std::uint8_t> full(rs.k(), 0);
    std::copy(data.begin(), data.end(), full.begin() + static_cast<long>(i));
    const auto word = rs.encode(full);
    std::copy(word.begin() + static_cast<long>(i), word.end(),
              f.stream.begin() + static_cast<long>(pos));
    pos += len;
  }
  return f;
}

void decode_frame(const fec::ReedSolomon& rs, std::uint64_t side, const Frame& f,
                  const std::vector<std::uint8_t>& rx, PipelineResult& result) {
  std::uint64_t failures = 0;
  std::uint64_t pos = 0;
  for (std::uint64_t i = 0; i < side; ++i) {
    const std::uint64_t len = tri_row_length(side, i);
    if (!f.row_data[i].empty()) {
      std::vector<std::uint8_t> word(i, 0);
      word.insert(word.end(), rx.begin() + static_cast<long>(pos),
                  rx.begin() + static_cast<long>(pos + len));
      const auto res = rs.decode(word);
      const bool data_ok =
          res.ok && std::equal(f.row_data[i].begin(), f.row_data[i].end(),
                               word.begin() + static_cast<long>(i));
      ++result.code_words;
      if (data_ok) {
        result.corrected_symbols += res.corrected_symbols;
      } else {
        ++failures;
      }
    }
    pos += len;
  }
  result.word_errors += failures;
  result.frame_errors += failures != 0;
}

}  // namespace

std::unique_ptr<channel::Channel> make_channel(const PipelineConfig& config) {
  if (config.channel == "none") {
    return nullptr;
  }
  if (config.channel == "bsc") {
    return std::make_unique<channel::SymmetricChannel>(config.error_probability,
                                                       kChannelSymbolBits);
  }
  if (config.channel == "gilbert-elliott") {
    return std::make_unique<channel::GilbertElliottChannel>(
        channel::GilbertElliottParams::from_burst_profile(
            config.mean_burst_symbols, config.fade_fraction,
            config.error_rate_bad, kChannelSymbolBits));
  }
  if (config.channel == "leo") {
    channel::LeoChannelParams p;
    // Express the fade geometry in symbols directly: one "second" == one
    // symbol, so the coherence time is mean_burst_symbols.
    p.symbol_rate_hz = 1.0;
    p.coherence_time_s = config.mean_burst_symbols;
    p.fade_probability = config.fade_fraction;
    p.fade_depth_error_rate = config.error_rate_bad;
    p.symbol_bits = kChannelSymbolBits;
    p.symbols_per_sample = static_cast<unsigned>(
        std::max<double>(1.0, config.mean_burst_symbols / 16.0));
    return std::make_unique<channel::LeoFadingChannel>(p);
  }
  throw std::invalid_argument("pipeline: unknown channel '" + config.channel + "'");
}

PipelineResult run_pipeline(const PipelineConfig& config) {
  if (config.rs_n > 255 || config.rs_k == 0 || config.rs_k >= config.rs_n ||
      (config.rs_n - config.rs_k) % 2 != 0) {
    throw std::invalid_argument("pipeline: invalid RS(n, k)");
  }
  if (config.frames == 0) {
    throw std::invalid_argument("pipeline: frames must be > 0");
  }

  const fec::ReedSolomon rs(config.rs_n, config.rs_k);
  const std::uint64_t side = config.rs_n;
  const StreamInterleaver il(config.interleaver, side);
  const auto ch = make_channel(config);

  // Decoupled deterministic streams: the channel draws do not depend on
  // how much entropy the data generation consumed, so two configs that
  // differ only in the interleaver see the same fade pattern.
  Rng data_rng(job_seed(config.seed, 0));
  Rng channel_rng(job_seed(config.seed, 1));

  PipelineResult result;
  result.frames = config.frames;
  for (unsigned f = 0; f < config.frames; ++f) {
    Frame frame = make_frame(rs, side, data_rng);
    auto tx = il.forward(frame.stream);
    if (ch) {
      result.channel_symbol_errors += ch->apply(tx, channel_rng);
    }
    const auto rx = il.backward(tx);
    decode_frame(rs, side, frame, rx, result);
  }

  // DRAM stage: only the triangular interleaver is DRAM-resident; the
  // block baseline is the SRAM stage-1 structure and "none" buffers nothing.
  if (config.run_dram && config.interleaver == "triangular") {
    if (config.device.name.empty()) {
      throw std::invalid_argument("pipeline: run_dram requires a device");
    }
    RunConfig rc;
    rc.device = config.device;
    rc.mapping_spec = config.mapping_spec;
    rc.side = interleaver::burst_triangle_side(
        triangular_number(side), kChannelSymbolBits, config.device.burst_bytes);
    rc.max_bursts_per_phase = config.dram_max_bursts_per_phase;
    rc.check_protocol = config.check_protocol;
    result.dram = run_interleaver(rc);
    result.dram_ran = true;
    result.dram_throughput_gbps = result.dram.throughput_gbps(config.device.burst_bytes);
  }
  return result;
}

std::vector<FerRecord> run_fer_sweep(const SweepGrid& grid, const FerSweepOptions& options) {
  const auto cells = grid.expand();
  return sweep_map(cells.size(), options.sweep,
                   [&](std::uint64_t index, std::uint64_t seed) {
    const Scenario& scenario = cells[index];
    FerRecord record;
    record.scenario = scenario;
    record.config = options.base;
    record.config.interleaver = scenario.interleaver;
    record.config.channel = scenario.channel;
    record.config.rs_k = scenario.rs_k;
    record.config.mapping_spec = scenario.mapping_spec;
    record.config.seed = seed;
    if (!scenario.device.empty()) {
      const auto* device = dram::find_config(scenario.device);
      if (device == nullptr) {
        throw std::invalid_argument("run_fer_sweep: unknown device '" +
                                    scenario.device + "'");
      }
      record.config.device = *device;
    }
    record.result = run_pipeline(record.config);
    return record;
  });
}

}  // namespace tbi::sim
