#include "sim/pipeline.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "channel/bsc.hpp"
#include "channel/gilbert_elliott.hpp"
#include "channel/leo.hpp"
#include "common/mathutil.hpp"
#include "common/rng.hpp"
#include "interleaver/block.hpp"
#include "interleaver/streams.hpp"
#include "interleaver/triangular.hpp"
#include "interleaver/twostage.hpp"
#include "perf/counters.hpp"
#include "source/trace.hpp"

namespace tbi::sim {

namespace {

constexpr unsigned kChannelSymbolBits = 8;  // RS symbols are bytes
constexpr std::uint64_t kDefaultChunkSymbols = 65536;

/// Stream permutation for the pipeline's interleaver axis. The block
/// variant reshapes the packed triangle into an exact rows x cols
/// rectangle (classic SRAM interleaver) as the non-triangular baseline;
/// the two-stage variant is the paper's SRAM-block-into-DRAM-triangle
/// composition and is only ever driven through index math (streaming).
class StreamInterleaver {
 public:
  StreamInterleaver(const std::string& kind, std::uint64_t side,
                    std::uint64_t symbols_per_burst) {
    if (kind == "none") {
      capacity_ = triangular_number(side);
      return;
    }
    if (kind == "triangular") {
      tri_ = std::make_unique<interleaver::TriangularInterleaver>(side);
      capacity_ = tri_->capacity();
      return;
    }
    if (kind == "block") {
      // T(side) = side*(side+1)/2 factors exactly as rows x cols with
      // rows = side (side odd) or side+1 (side even).
      const std::uint64_t rows = (side % 2 == 1) ? side : side + 1;
      block_ = std::make_unique<interleaver::BlockInterleaver>(
          rows, triangular_number(side) / rows);
      capacity_ = block_->capacity();
      return;
    }
    if (kind == "two-stage") {
      two_ = std::make_unique<interleaver::TwoStageInterleaver>(side,
                                                                symbols_per_burst);
      capacity_ = two_->capacity_symbols();
      return;
    }
    throw std::invalid_argument("pipeline: unknown interleaver '" + kind + "'");
  }

  /// False for the "none" identity (callers skip the copy entirely).
  bool active() const { return tri_ != nullptr || block_ != nullptr || two_ != nullptr; }

  /// Frame size in symbols.
  std::uint64_t capacity_symbols() const { return capacity_; }

  /// Input (code-word stream) position of the symbol at wire position
  /// \p p — the inverse permutation, O(1) for every kind.
  std::uint64_t wire_to_input(std::uint64_t p) const {
    if (tri_) return tri_->permute(p);  // involution: inverse == forward
    if (block_) return block_->inverse(p);
    if (two_) return two_->inverse(p);
    return p;
  }

  void forward_into(std::span<const std::uint8_t> in,
                    std::span<std::uint8_t> out) const {
    if (tri_) return tri_->interleave_into(in, out);
    block_->interleave_into(in, out);
  }

  void backward_into(std::span<const std::uint8_t> in,
                     std::span<std::uint8_t> out) const {
    if (tri_) return tri_->deinterleave_into(in, out);
    block_->deinterleave_into(in, out);
  }

 private:
  std::unique_ptr<interleaver::TriangularInterleaver> tri_;
  std::unique_ptr<interleaver::BlockInterleaver> block_;
  std::unique_ptr<interleaver::TwoStageInterleaver> two_;
  std::uint64_t capacity_ = 0;
};

/// One sparse channel corruption, already mapped back from wire order to
/// the input (code-word stream) position.
struct ErrorHit {
  std::uint64_t input_index;
  std::uint8_t flip;
};

/// Per-run workspace: every buffer the frame loop touches, allocated once
/// and reused across frames (zero steady-state allocations per frame).
///
/// The materialized (row-aligned) path uses stream/tx/rx sized to the
/// triangle capacity. The streaming path never allocates
/// capacity-proportional buffers: it uses the chunk buffer plus the
/// sparse per-frame error list. Both share the code-word buffers and the
/// decoder scratch.
///
/// Row-aligned framing: row i of a triangular block carries one shortened
/// RS(n, k) code word when its length n - i exceeds the parity, i.e.
/// exactly for i < side - parity; the trailing `parity` rows are zero
/// padding. The payload of row i occupies word symbols [i, k) and the
/// transmitted row is word symbols [i, n), so the payloads are stored
/// back to back in `data` and located implicitly by accumulating k - i.
struct FrameWorkspace {
  std::vector<std::uint8_t> stream;  ///< packed triangle, write order
  std::vector<std::uint8_t> tx;      ///< interleaved stream on the wire
  std::vector<std::uint8_t> rx;      ///< deinterleaved received stream
  std::vector<std::uint8_t> word;    ///< one RS code word (n symbols)
  std::vector<std::uint8_t> data;    ///< concatenated per-row payloads
  std::vector<ErrorHit> hits;        ///< streaming: per-frame corruption
  fec::RsScratch rs_scratch;

  static FrameWorkspace materialized(std::uint64_t side, unsigned n,
                                     bool interleaved) {
    FrameWorkspace ws;
    const std::uint64_t cap = triangular_number(side);
    ws.stream.assign(cap, 0);
    if (interleaved) {
      ws.tx.resize(cap);
      ws.rx.resize(cap);
    }
    ws.word.resize(n);
    ws.data.reserve(cap);
    ws.rs_scratch.reserve(n);
    return ws;
  }

  static FrameWorkspace streaming(unsigned n, unsigned k) {
    FrameWorkspace ws;
    ws.word.resize(n);
    ws.data.resize(k);
    ws.rs_scratch.reserve(n);
    // Headroom for the per-frame corruption list so a noisier-than-frame-0
    // frame does not count a reallocation against the steady state. (The
    // wire-chunk scan buffer lives inside the source now — see
    // ChannelSource::scratch_bytes, charged into workspace_peak_bytes.)
    ws.hits.reserve(4096);
    return ws;
  }

  /// Bytes currently held across all buffers (capacities, so reserve
  /// growth is charged) — the instrumented counter the streaming memory
  /// test bounds against the chunk size.
  std::uint64_t allocated_bytes() const {
    const auto scratch_bytes = [](const fec::RsScratch& s) {
      return s.synd.capacity() + s.sigma.capacity() + s.prev.capacity() +
             s.tmp.capacity() + s.omega.capacity() + s.deriv.capacity() +
             s.positions.capacity() * sizeof(unsigned);
    };
    return stream.capacity() + tx.capacity() + rx.capacity() + word.capacity() +
           data.capacity() + hits.capacity() * sizeof(ErrorHit) +
           scratch_bytes(rs_scratch);
  }
};

void make_frame(const fec::ReedSolomon& rs, std::uint64_t side, Rng& rng,
                FrameWorkspace& ws) {
  const unsigned parity = rs.parity();
  const unsigned k = rs.k();
  const unsigned n = rs.n();
  ws.data.clear();
  std::uint8_t* word = ws.word.data();
  std::uint64_t pos = 0;
  for (std::uint64_t i = 0; i < side; ++i) {
    const std::uint64_t len = tri_row_length(side, i);
    if (len <= parity) break;  // the remaining rows are all padding
    // Build the full data word in place: i leading zeros, then the
    // payload; encode() appends the parity behind the aliased data.
    std::fill(word, word + i, 0);
    for (std::uint64_t d = i; d < k; ++d) {
      word[d] = static_cast<std::uint8_t>(rng.next_u64());
    }
    ws.data.insert(ws.data.end(), word + i, word + k);
    rs.encode(std::span<const std::uint8_t>(word, k),
              std::span<std::uint8_t>(word, n));
    std::copy(word + i, word + n, ws.stream.begin() + static_cast<long>(pos));
    pos += len;
  }
  // Trailing padding rows: rewrite the zeros a previous frame's channel
  // pass may have corrupted.
  std::fill(ws.stream.begin() + static_cast<long>(pos), ws.stream.end(), 0);
}

void decode_frame(const fec::ReedSolomon& rs, std::uint64_t side,
                  const std::vector<std::uint8_t>& rx, FrameWorkspace& ws,
                  PipelineResult& result) {
  const unsigned parity = rs.parity();
  const unsigned n = rs.n();
  std::uint8_t* word = ws.word.data();
  std::uint64_t failures = 0;
  std::uint64_t pos = 0;
  std::uint64_t data_pos = 0;
  for (std::uint64_t i = 0; i < side; ++i) {
    const std::uint64_t len = tri_row_length(side, i);
    if (len > parity) {
      std::fill(word, word + i, 0);
      std::copy(rx.begin() + static_cast<long>(pos),
                rx.begin() + static_cast<long>(pos + len), word + i);
      const auto res =
          rs.decode(std::span<std::uint8_t>(word, n), ws.rs_scratch);
      const std::uint64_t dlen = len - parity;
      const bool data_ok =
          res.ok && std::equal(ws.data.begin() + static_cast<long>(data_pos),
                               ws.data.begin() + static_cast<long>(data_pos + dlen),
                               word + i);
      data_pos += dlen;
      ++result.code_words;
      if (data_ok) {
        result.corrected_symbols += res.corrected_symbols;
      } else {
        ++failures;
      }
    }
    pos += len;
  }
  result.word_errors += failures;
  result.frame_errors += failures != 0;
}

/// Legacy row-aligned path: side == rs_n, frames materialized and
/// permuted buffer-to-buffer.
void run_frames_materialized(const PipelineConfig& config,
                             const fec::ReedSolomon& rs,
                             const StreamInterleaver& il, std::uint64_t side,
                             source::ErrorSource* src, PipelineResult& result) {
  // The data stream is decoupled from the source's channel draws (see
  // make_source), so two configs that differ only in the interleaver see
  // the same fade pattern.
  Rng data_rng(job_seed(config.seed, 0));

  FrameWorkspace ws = FrameWorkspace::materialized(side, config.rs_n, il.active());
  const std::uint64_t capacity = il.capacity_symbols();

  const std::uint64_t host_start = perf::now_ns();
  perf::AllocationScope alloc_scope;
  for (unsigned f = 0; f < config.frames; ++f) {
    // Frame 0 is the warm-up (data.reserve growth, decoder scratch); the
    // steady-state window starts after it.
    if (f == 1) alloc_scope.restart();
    make_frame(rs, side, data_rng, ws);
    // The "none" identity runs the channel directly on the packed stream
    // — no copies at all.
    std::vector<std::uint8_t>& wire = il.active() ? ws.tx : ws.stream;
    if (il.active()) il.forward_into(ws.stream, ws.tx);
    if (src != nullptr) {
      // The wire position advances contiguously frame to frame, so the
      // source's channel state stays continuous in symbol time exactly as
      // the channel did when the pipeline drove it directly.
      result.channel_symbol_errors +=
          src->corrupt(static_cast<std::uint64_t>(f) * capacity, wire);
      result.channel_symbols += wire.size();
    }
    const std::vector<std::uint8_t>* rx = &wire;
    if (il.active()) {
      il.backward_into(ws.tx, ws.rx);
      rx = &ws.rx;
    }
    decode_frame(rs, side, *rx, ws, result);
  }
  result.host_ns = perf::now_ns() - host_start;
  result.steady_allocations = config.frames > 1 ? alloc_scope.allocations() : 0;
  result.steady_frames = config.frames - 1;
  result.workspace_peak_bytes =
      ws.allocated_bytes() + (src != nullptr ? src->scratch_bytes() : 0);
}

/// Decode one streaming frame from its sorted per-frame hit list
/// (ws.hits): words with no hits decode trivially and are only counted,
/// words with hits are regenerated from their per-word seed, re-encoded,
/// corrupted and decoded for real. Shared verbatim by run_frames_streaming
/// and combine_pipeline_slices, which is what keeps sliced runs
/// byte-identical to unsliced ones.
void decode_streaming_frame(const fec::ReedSolomon& rs,
                            std::uint64_t words_per_frame,
                            std::uint64_t frame_seed, Rng& word_rng,
                            FrameWorkspace& ws, PipelineResult& result) {
  const unsigned n = rs.n();
  const unsigned k = rs.k();
  std::uint8_t* word = ws.word.data();
  result.code_words += words_per_frame;
  std::uint64_t failures = 0;
  std::size_t h = 0;
  while (h < ws.hits.size()) {
    const std::uint64_t w = ws.hits[h].input_index / n;
    std::size_t h_end = h + 1;
    while (h_end < ws.hits.size() && ws.hits[h_end].input_index / n == w) {
      ++h_end;
    }
    if (w >= words_per_frame) break;  // hits in the zero-padding tail

    // Regenerate the transmitted word from its per-word seed.
    word_rng.reseed(job_seed(frame_seed, w));
    for (unsigned d = 0; d < k; ++d) {
      word[d] = static_cast<std::uint8_t>(word_rng.next_u64());
    }
    std::copy(word, word + k, ws.data.begin());
    rs.encode(std::span<const std::uint8_t>(word, k),
              std::span<std::uint8_t>(word, n));
    for (std::size_t i = h; i < h_end; ++i) {
      word[ws.hits[i].input_index - w * n] ^= ws.hits[i].flip;
    }
    const auto res = rs.decode(std::span<std::uint8_t>(word, n), ws.rs_scratch);
    const bool data_ok =
        res.ok && std::equal(ws.data.begin(), ws.data.end(), word);
    if (data_ok) {
      result.corrected_symbols += res.corrected_symbols;
    } else {
      ++failures;
    }
    h = h_end;
  }
  result.word_errors += failures;
  result.frame_errors += failures != 0;
}

/// Streaming path: frame size decoupled from the code word, bounded
/// memory. Full RS(n, k) words are packed back to back into the
/// interleaver capacity (a sub-word tail stays zero padding).
///
/// The trick that avoids materializing the frame: corruption is sparse
/// and data-independent, so the source yields the exact (position, flip)
/// event stream of the real transmission without the frame ever
/// existing. Each event is mapped back to its input position through the
/// interleaver's O(1) inverse; words with no hits decode trivially and
/// are only counted, words with hits are regenerated from their per-word
/// seed, re-encoded, corrupted and decoded for real.
void run_frames_streaming(const PipelineConfig& config, const fec::ReedSolomon& rs,
                          const StreamInterleaver& il, source::ErrorSource* src,
                          PipelineResult& result) {
  const unsigned n = rs.n();
  const unsigned k = rs.k();
  const std::uint64_t capacity = il.capacity_symbols();
  const std::uint64_t words_per_frame = capacity / n;

  const std::uint64_t data_root = job_seed(config.seed, 0);
  Rng word_rng;

  FrameWorkspace ws = FrameWorkspace::streaming(n, k);

  const std::uint64_t host_start = perf::now_ns();
  perf::AllocationScope alloc_scope;
  for (unsigned f = 0; f < config.frames; ++f) {
    // Frame 0 is the warm-up (chunk/hits growth, decoder scratch); the
    // steady-state window starts after it.
    if (f == 1) alloc_scope.restart();
    // --- source pass, wire order -------------------------------------------
    ws.hits.clear();
    if (src != nullptr) {
      result.channel_symbols += capacity;
      const std::uint64_t frame_base = static_cast<std::uint64_t>(f) * capacity;
      auto to_hit = [&ws, &il, frame_base](const source::Corruption& e) {
        ws.hits.push_back({il.wire_to_input(e.wire_pos - frame_base), e.flip});
      };
      result.channel_symbol_errors += src->events(frame_base, capacity, to_hit);
      // A composite source interleaves its links' event streams, so sort
      // unconditionally; the input indices are a permutation of distinct
      // wire positions and never tie.
      std::sort(ws.hits.begin(), ws.hits.end(),
                [](const ErrorHit& a, const ErrorHit& b) {
                  return a.input_index < b.input_index;
                });
    }

    // --- decode: only words the channel actually touched do work -----------
    decode_streaming_frame(rs, words_per_frame, job_seed(data_root, f), word_rng,
                           ws, result);
  }
  result.host_ns = perf::now_ns() - host_start;
  result.steady_allocations = config.frames > 1 ? alloc_scope.allocations() : 0;
  result.steady_frames = config.frames - 1;
  result.workspace_peak_bytes =
      ws.allocated_bytes() + (src != nullptr ? src->scratch_bytes() : 0);
}

/// DRAM stage shared by run_pipeline and combine_pipeline_slices: honored
/// for every DRAM-resident interleaver. "block" is the SRAM stage-1
/// structure and "none" buffers nothing, so asking for their DRAM phases
/// is a configuration error, not a silent no-op.
void run_dram_phase(const PipelineConfig& config, std::uint64_t side,
                    PipelineResult& result) {
  if (!config.run_dram) return;
  if (!dram_resident_interleaver(config.interleaver)) {
    throw std::invalid_argument(
        "pipeline: run_dram requires a DRAM-resident interleaver "
        "('triangular' or 'two-stage'); '" +
        config.interleaver +
        "' never touches DRAM — set run_dram = false for it");
  }
  if (config.device.name.empty()) {
    throw std::invalid_argument("pipeline: run_dram requires a device");
  }
  RunConfig rc;
  rc.device = config.device;
  rc.mapping_spec = config.mapping_spec;
  // The two-stage geometry is already burst-granular: its stage-2 side
  // *is* the burst triangle. A symbol-level triangular frame is packed
  // into bursts of the device's burst size first.
  rc.side = config.interleaver == "two-stage"
                ? side
                : interleaver::burst_triangle_side(triangular_number(side),
                                                   kChannelSymbolBits,
                                                   config.device.burst_bytes);
  rc.max_bursts_per_phase = config.dram_max_bursts_per_phase;
  rc.check_protocol = config.check_protocol;
  result.dram = run_interleaver(rc);
  result.dram_ran = true;
  result.dram_throughput_gbps = result.dram.throughput_gbps(config.device.burst_bytes);
}

}  // namespace

bool dram_resident_interleaver(const std::string& kind) {
  return kind == "triangular" || kind == "two-stage";
}

PipelineConfig fer_cell_config(const PipelineConfig& base, const Scenario& scenario,
                               std::uint64_t seed) {
  PipelineConfig config = base;
  config.interleaver = scenario.interleaver;
  config.channel = scenario.channel;
  config.rs_k = scenario.rs_k;
  config.mapping_spec = scenario.mapping_spec;
  if (scenario.symbols_per_burst != 0) {
    config.symbols_per_burst = scenario.symbols_per_burst;
  }
  if (scenario.links != 0) {
    config.links = scenario.links;
  }
  // The DRAM stage only exists for DRAM-resident interleavers; narrow the
  // template's run_dram so mixed grids stay valid.
  config.run_dram = base.run_dram && dram_resident_interleaver(scenario.interleaver);
  config.seed = seed;
  if (!scenario.device.empty()) {
    const auto* device = dram::find_config(scenario.device);
    if (device == nullptr) {
      throw std::invalid_argument("fer sweep: unknown device '" + scenario.device +
                                  "'");
    }
    config.device = *device;
  }
  return config;
}

std::unique_ptr<channel::Channel> make_channel(const PipelineConfig& config) {
  if (config.channel == "none") {
    return nullptr;
  }
  if (config.channel == "bsc") {
    return std::make_unique<channel::SymmetricChannel>(config.error_probability,
                                                       kChannelSymbolBits);
  }
  if (config.channel == "gilbert-elliott") {
    return std::make_unique<channel::GilbertElliottChannel>(
        channel::GilbertElliottParams::from_burst_profile(
            config.mean_burst_symbols, config.fade_fraction,
            config.error_rate_bad, kChannelSymbolBits));
  }
  if (config.channel == "leo") {
    channel::LeoChannelParams p;
    // Express the fade geometry in symbols directly: one "second" == one
    // symbol, so the coherence time is mean_burst_symbols.
    p.symbol_rate_hz = 1.0;
    p.coherence_time_s = config.mean_burst_symbols;
    p.fade_probability = config.fade_fraction;
    p.fade_depth_error_rate = config.error_rate_bad;
    p.symbol_bits = kChannelSymbolBits;
    p.symbols_per_sample = static_cast<unsigned>(
        std::max<double>(1.0, config.mean_burst_symbols / 16.0));
    return std::make_unique<channel::LeoFadingChannel>(p);
  }
  throw std::invalid_argument("pipeline: unknown channel '" + config.channel + "'");
}

std::unique_ptr<source::ErrorSource> make_source(const PipelineConfig& config) {
  if (config.links == 0) {
    throw std::invalid_argument("pipeline: links must be >= 1");
  }
  if (!config.trace_replay.empty() && config.channel != "trace") {
    throw std::invalid_argument(
        "pipeline: trace_replay is only read when channel == 'trace'");
  }
  std::unique_ptr<source::ErrorSource> src;
  if (config.channel == "trace") {
    if (config.trace_replay.empty()) {
      throw std::invalid_argument(
          "pipeline: channel 'trace' needs a trace_replay path");
    }
    src = source::TraceReplaySource::open(config.trace_replay);
  } else if (config.channel != "none") {
    const std::uint64_t chunk = config.stream_chunk_symbols != 0
                                    ? config.stream_chunk_symbols
                                    : kDefaultChunkSymbols;
    // Same stream split as the pre-source pipeline: index 1 off the cell
    // seed is the channel stream (index 0 is data), so a single link
    // reproduces the legacy channel_rng draws bit for bit.
    const std::uint64_t channel_root = job_seed(config.seed, 1);
    const auto factory = [config]() { return make_channel(config); };
    if (config.links == 1) {
      src = std::make_unique<source::ChannelSource>(factory, channel_root, chunk);
    } else {
      // Per-link chunks shrink with the link count so N links hold about
      // the same total scratch as one.
      const std::uint64_t link_chunk =
          std::max<std::uint64_t>(4096, chunk / config.links);
      std::vector<source::MultiLinkSource::Link> links(config.links);
      for (unsigned l = 0; l < config.links; ++l) {
        links[l].source = std::make_unique<source::ChannelSource>(
            factory, job_seed(channel_root, l), link_chunk);
        links[l].phase_offset =
            static_cast<std::uint64_t>(l) * config.link_phase_symbols;
      }
      src = std::make_unique<source::MultiLinkSource>(std::move(links));
    }
  }
  if (!config.trace_record.empty()) {
    if (!src) {
      throw std::invalid_argument(
          "pipeline: trace_record needs a channel to record");
    }
    src = source::RecordingSource::to_file(std::move(src), config.trace_record);
  }
  return src;
}

PipelineResult run_pipeline(const PipelineConfig& config,
                            const fec::ReedSolomon& rs) {
  if (rs.n() != config.rs_n || rs.k() != config.rs_k) {
    throw std::invalid_argument("pipeline: codec does not match config");
  }
  if (config.frames == 0) {
    throw std::invalid_argument("pipeline: frames must be > 0");
  }

  const std::uint64_t side = config.side != 0 ? config.side : config.rs_n;
  const StreamInterleaver il(config.interleaver, side, config.symbols_per_burst);
  const auto src = make_source(config);

  PipelineResult result;
  result.frames = config.frames;
  result.frame_symbols = il.capacity_symbols();

  // Two-stage frames are always streamed (the stage-2 triangle is
  // burst-granular, there is no row-aligned layout for it); the classic
  // kinds stream exactly when the side is decoupled from the code word.
  if (config.interleaver == "two-stage" || side != config.rs_n) {
    if (il.capacity_symbols() < config.rs_n) {
      throw std::invalid_argument(
          "pipeline: side too small for one RS code word");
    }
    run_frames_streaming(config, rs, il, src.get(), result);
  } else {
    run_frames_materialized(config, rs, il, side, src.get(), result);
  }

  run_dram_phase(config, side, result);
  return result;
}

PipelineResult run_pipeline(const PipelineConfig& config) {
  if (config.rs_n > 255 || config.rs_k == 0 || config.rs_k >= config.rs_n ||
      (config.rs_n - config.rs_k) % 2 != 0) {
    throw std::invalid_argument("pipeline: invalid RS(n, k)");
  }
  const fec::ReedSolomon rs(config.rs_n, config.rs_k);
  return run_pipeline(config, rs);
}

bool pipeline_streams(const PipelineConfig& config) {
  const std::uint64_t side = config.side != 0 ? config.side : config.rs_n;
  return config.interleaver == "two-stage" || side != config.rs_n;
}

std::pair<std::uint64_t, std::uint64_t> stream_slice_range(std::uint64_t capacity,
                                                           unsigned slice,
                                                           unsigned num_slices) {
  if (num_slices == 0 || slice >= num_slices) {
    throw std::invalid_argument("stream_slice_range: slice out of range");
  }
  return {capacity * slice / num_slices, capacity * (slice + 1) / num_slices};
}

PipelineSliceResult run_pipeline_slice(const PipelineConfig& config, unsigned slice,
                                       unsigned num_slices) {
  if (num_slices == 0 || slice >= num_slices) {
    throw std::invalid_argument("run_pipeline_slice: slice out of range");
  }
  if (config.frames == 0) {
    throw std::invalid_argument("pipeline: frames must be > 0");
  }
  if (!pipeline_streams(config)) {
    throw std::invalid_argument(
        "run_pipeline_slice: intra-frame slicing requires the streaming "
        "frame path (side != rs_n or the two-stage interleaver)");
  }
  if (!config.trace_record.empty() && num_slices > 1) {
    throw std::invalid_argument(
        "run_pipeline_slice: trace_record would capture a partial trace — "
        "record with an unsliced run");
  }
  const std::uint64_t side = config.side != 0 ? config.side : config.rs_n;
  const StreamInterleaver il(config.interleaver, side, config.symbols_per_burst);
  if (il.capacity_symbols() < config.rs_n) {
    throw std::invalid_argument("pipeline: side too small for one RS code word");
  }
  const auto src = make_source(config);
  const std::uint64_t capacity = il.capacity_symbols();
  const auto [lo, hi] = stream_slice_range(capacity, slice, num_slices);

  PipelineSliceResult out;
  out.slice = slice;
  out.num_slices = num_slices;
  out.frames = config.frames;
  out.hits.reserve(4096);

  const std::uint64_t host_start = perf::now_ns();
  for (unsigned f = 0; f < config.frames; ++f) {
    if (src == nullptr) continue;
    out.channel_symbols += hi - lo;
    const std::uint64_t frame_base = static_cast<std::uint64_t>(f) * capacity;
    auto to_hit = [&out, &il, frame_base, f](const source::Corruption& e) {
      out.hits.push_back({f, il.wire_to_input(e.wire_pos - frame_base), e.flip});
    };
    // The random-access events contract (counter-based skip-ahead) makes
    // the jump from one frame's [lo, hi) to the next exact: the stream
    // state at frame_base + lo is independent of who consumed the
    // positions before it.
    out.channel_symbol_errors += src->events(frame_base + lo, hi - lo, to_hit);
  }
  out.host_ns = perf::now_ns() - host_start;
  out.workspace_peak_bytes = out.hits.capacity() * sizeof(StreamHit) +
                             (src != nullptr ? src->scratch_bytes() : 0);
  return out;
}

PipelineResult combine_pipeline_slices(const PipelineConfig& config,
                                       const fec::ReedSolomon& rs,
                                       std::vector<PipelineSliceResult> slices) {
  if (rs.n() != config.rs_n || rs.k() != config.rs_k) {
    throw std::invalid_argument("pipeline: codec does not match config");
  }
  if (slices.empty()) {
    throw std::invalid_argument("combine_pipeline_slices: no slices");
  }
  std::sort(slices.begin(), slices.end(),
            [](const PipelineSliceResult& a, const PipelineSliceResult& b) {
              return a.slice < b.slice;
            });
  for (std::size_t s = 0; s < slices.size(); ++s) {
    if (slices[s].slice != s || slices[s].num_slices != slices.size() ||
        slices[s].frames != config.frames) {
      throw std::invalid_argument(
          "combine_pipeline_slices: slice set does not cover this config "
          "(need one result per slice index)");
    }
  }
  if (!pipeline_streams(config)) {
    throw std::invalid_argument(
        "combine_pipeline_slices: config is not on the streaming path");
  }

  const std::uint64_t side = config.side != 0 ? config.side : config.rs_n;
  const StreamInterleaver il(config.interleaver, side, config.symbols_per_burst);
  const unsigned n = rs.n();
  const std::uint64_t capacity = il.capacity_symbols();
  const std::uint64_t words_per_frame = capacity / n;
  const std::uint64_t data_root = job_seed(config.seed, 0);
  Rng word_rng;

  PipelineResult result;
  result.frames = config.frames;
  result.frame_symbols = capacity;
  for (const auto& s : slices) {
    result.channel_symbols += s.channel_symbols;
    result.channel_symbol_errors += s.channel_symbol_errors;
    result.host_ns += s.host_ns;
    result.workspace_peak_bytes =
        std::max(result.workspace_peak_bytes, s.workspace_peak_bytes);
  }

  FrameWorkspace ws = FrameWorkspace::streaming(n, rs.k());
  std::vector<std::size_t> cursor(slices.size(), 0);

  const std::uint64_t host_start = perf::now_ns();
  perf::AllocationScope alloc_scope;
  for (unsigned f = 0; f < config.frames; ++f) {
    if (f == 1) alloc_scope.restart();
    // Concatenating the slices' per-frame events in slice order and
    // sorting by input position reproduces exactly the list the unsliced
    // source pass builds: the indices are a permutation of distinct wire
    // positions, so the sort order is unique.
    ws.hits.clear();
    for (std::size_t s = 0; s < slices.size(); ++s) {
      const auto& sh = slices[s].hits;
      std::size_t& c = cursor[s];
      while (c < sh.size() && sh[c].frame == f) {
        ws.hits.push_back({sh[c].input_index, sh[c].flip});
        ++c;
      }
    }
    std::sort(ws.hits.begin(), ws.hits.end(),
              [](const ErrorHit& a, const ErrorHit& b) {
                return a.input_index < b.input_index;
              });
    decode_streaming_frame(rs, words_per_frame, job_seed(data_root, f), word_rng,
                           ws, result);
  }
  result.host_ns += perf::now_ns() - host_start;
  result.steady_allocations =
      config.frames > 1 ? alloc_scope.allocations() : 0;
  result.steady_frames = config.frames - 1;
  result.workspace_peak_bytes =
      std::max(result.workspace_peak_bytes, ws.allocated_bytes());

  run_dram_phase(config, side, result);
  return result;
}

std::vector<FerRecord> run_fer_sweep(const SweepGrid& grid, const FerSweepOptions& options) {
  const auto cells = grid.expand();

  // Hoist codec construction out of the per-cell work: cells share one
  // immutable ReedSolomon per distinct rs_k (generator polynomial +
  // multiplier tables), safe for concurrent use by the sweep workers.
  std::map<unsigned, fec::ReedSolomon> codecs;
  for (const auto& cell : cells) {
    if (options.base.rs_n > 255 || cell.rs_k == 0 || cell.rs_k >= options.base.rs_n ||
        (options.base.rs_n - cell.rs_k) % 2 != 0) {
      throw std::invalid_argument("run_fer_sweep: invalid RS(n, k)");
    }
    codecs.try_emplace(cell.rs_k, options.base.rs_n, cell.rs_k);
  }

  return sweep_map(cells.size(), options.sweep,
                   [&](std::uint64_t index, std::uint64_t seed) {
    const Scenario& scenario = cells[index];
    FerRecord record;
    record.scenario = scenario;
    record.config = fer_cell_config(options.base, scenario, seed);
    record.result = run_pipeline(record.config, codecs.at(scenario.rs_k));
    return record;
  });
}

}  // namespace tbi::sim
