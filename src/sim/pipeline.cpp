#include "sim/pipeline.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "channel/bsc.hpp"
#include "channel/gilbert_elliott.hpp"
#include "channel/leo.hpp"
#include "common/mathutil.hpp"
#include "common/rng.hpp"
#include "interleaver/block.hpp"
#include "interleaver/streams.hpp"
#include "interleaver/triangular.hpp"

namespace tbi::sim {

namespace {

constexpr unsigned kChannelSymbolBits = 8;  // RS symbols are bytes

/// Stream permutation for the pipeline's interleaver axis. The block
/// variant reshapes the packed triangle into an exact rows x cols
/// rectangle (classic SRAM interleaver) as the non-triangular baseline.
class StreamInterleaver {
 public:
  StreamInterleaver(const std::string& kind, std::uint64_t side) {
    if (kind == "none") {
      return;
    }
    if (kind == "triangular") {
      tri_ = std::make_unique<interleaver::TriangularInterleaver>(side);
      return;
    }
    if (kind == "block") {
      // T(side) = side*(side+1)/2 factors exactly as rows x cols with
      // rows = side (side odd) or side+1 (side even).
      const std::uint64_t rows = (side % 2 == 1) ? side : side + 1;
      block_ = std::make_unique<interleaver::BlockInterleaver>(
          rows, triangular_number(side) / rows);
      return;
    }
    throw std::invalid_argument("pipeline: unknown interleaver '" + kind + "'");
  }

  /// False for the "none" identity (callers skip the copy entirely).
  bool active() const { return tri_ != nullptr || block_ != nullptr; }

  void forward_into(std::span<const std::uint8_t> in,
                    std::span<std::uint8_t> out) const {
    if (tri_) return tri_->interleave_into(in, out);
    block_->interleave_into(in, out);
  }

  void backward_into(std::span<const std::uint8_t> in,
                     std::span<std::uint8_t> out) const {
    if (tri_) return tri_->deinterleave_into(in, out);
    block_->deinterleave_into(in, out);
  }

 private:
  std::unique_ptr<interleaver::TriangularInterleaver> tri_;
  std::unique_ptr<interleaver::BlockInterleaver> block_;
};

/// Per-run workspace: every buffer the frame loop touches, allocated once
/// and reused across frames (zero steady-state allocations per frame).
///
/// Row i of a triangular block carries one shortened RS(n, k) code word
/// when its length n - i exceeds the parity, i.e. exactly for
/// i < side - parity; the trailing `parity` rows are zero padding. The
/// payload of row i occupies word symbols [i, k) and the transmitted row
/// is word symbols [i, n), so the payloads are stored back to back in
/// `data` and located implicitly by accumulating k - i.
struct FrameWorkspace {
  std::vector<std::uint8_t> stream;  ///< packed triangle, write order
  std::vector<std::uint8_t> tx;      ///< interleaved stream on the wire
  std::vector<std::uint8_t> rx;      ///< deinterleaved received stream
  std::vector<std::uint8_t> word;    ///< one RS code word (n symbols)
  std::vector<std::uint8_t> data;    ///< concatenated per-row payloads
  fec::RsScratch rs_scratch;

  FrameWorkspace(std::uint64_t side, unsigned n, bool interleaved) {
    const std::uint64_t cap = triangular_number(side);
    stream.assign(cap, 0);
    if (interleaved) {
      tx.resize(cap);
      rx.resize(cap);
    }
    word.resize(n);
    data.reserve(cap);
  }
};

void make_frame(const fec::ReedSolomon& rs, std::uint64_t side, Rng& rng,
                FrameWorkspace& ws) {
  const unsigned parity = rs.parity();
  const unsigned k = rs.k();
  const unsigned n = rs.n();
  ws.data.clear();
  std::uint8_t* word = ws.word.data();
  std::uint64_t pos = 0;
  for (std::uint64_t i = 0; i < side; ++i) {
    const std::uint64_t len = tri_row_length(side, i);
    if (len <= parity) break;  // the remaining rows are all padding
    // Build the full data word in place: i leading zeros, then the
    // payload; encode() appends the parity behind the aliased data.
    std::fill(word, word + i, 0);
    for (std::uint64_t d = i; d < k; ++d) {
      word[d] = static_cast<std::uint8_t>(rng.next_u64());
    }
    ws.data.insert(ws.data.end(), word + i, word + k);
    rs.encode(std::span<const std::uint8_t>(word, k),
              std::span<std::uint8_t>(word, n));
    std::copy(word + i, word + n, ws.stream.begin() + static_cast<long>(pos));
    pos += len;
  }
  // Trailing padding rows: rewrite the zeros a previous frame's channel
  // pass may have corrupted.
  std::fill(ws.stream.begin() + static_cast<long>(pos), ws.stream.end(), 0);
}

void decode_frame(const fec::ReedSolomon& rs, std::uint64_t side,
                  const std::vector<std::uint8_t>& rx, FrameWorkspace& ws,
                  PipelineResult& result) {
  const unsigned parity = rs.parity();
  const unsigned n = rs.n();
  std::uint8_t* word = ws.word.data();
  std::uint64_t failures = 0;
  std::uint64_t pos = 0;
  std::uint64_t data_pos = 0;
  for (std::uint64_t i = 0; i < side; ++i) {
    const std::uint64_t len = tri_row_length(side, i);
    if (len > parity) {
      std::fill(word, word + i, 0);
      std::copy(rx.begin() + static_cast<long>(pos),
                rx.begin() + static_cast<long>(pos + len), word + i);
      const auto res =
          rs.decode(std::span<std::uint8_t>(word, n), ws.rs_scratch);
      const std::uint64_t dlen = len - parity;
      const bool data_ok =
          res.ok && std::equal(ws.data.begin() + static_cast<long>(data_pos),
                               ws.data.begin() + static_cast<long>(data_pos + dlen),
                               word + i);
      data_pos += dlen;
      ++result.code_words;
      if (data_ok) {
        result.corrected_symbols += res.corrected_symbols;
      } else {
        ++failures;
      }
    }
    pos += len;
  }
  result.word_errors += failures;
  result.frame_errors += failures != 0;
}

}  // namespace

std::unique_ptr<channel::Channel> make_channel(const PipelineConfig& config) {
  if (config.channel == "none") {
    return nullptr;
  }
  if (config.channel == "bsc") {
    return std::make_unique<channel::SymmetricChannel>(config.error_probability,
                                                       kChannelSymbolBits);
  }
  if (config.channel == "gilbert-elliott") {
    return std::make_unique<channel::GilbertElliottChannel>(
        channel::GilbertElliottParams::from_burst_profile(
            config.mean_burst_symbols, config.fade_fraction,
            config.error_rate_bad, kChannelSymbolBits));
  }
  if (config.channel == "leo") {
    channel::LeoChannelParams p;
    // Express the fade geometry in symbols directly: one "second" == one
    // symbol, so the coherence time is mean_burst_symbols.
    p.symbol_rate_hz = 1.0;
    p.coherence_time_s = config.mean_burst_symbols;
    p.fade_probability = config.fade_fraction;
    p.fade_depth_error_rate = config.error_rate_bad;
    p.symbol_bits = kChannelSymbolBits;
    p.symbols_per_sample = static_cast<unsigned>(
        std::max<double>(1.0, config.mean_burst_symbols / 16.0));
    return std::make_unique<channel::LeoFadingChannel>(p);
  }
  throw std::invalid_argument("pipeline: unknown channel '" + config.channel + "'");
}

PipelineResult run_pipeline(const PipelineConfig& config,
                            const fec::ReedSolomon& rs) {
  if (rs.n() != config.rs_n || rs.k() != config.rs_k) {
    throw std::invalid_argument("pipeline: codec does not match config");
  }
  if (config.frames == 0) {
    throw std::invalid_argument("pipeline: frames must be > 0");
  }

  const std::uint64_t side = config.rs_n;
  const StreamInterleaver il(config.interleaver, side);
  const auto ch = make_channel(config);

  // Decoupled deterministic streams: the channel draws do not depend on
  // how much entropy the data generation consumed, so two configs that
  // differ only in the interleaver see the same fade pattern.
  Rng data_rng(job_seed(config.seed, 0));
  Rng channel_rng(job_seed(config.seed, 1));

  FrameWorkspace ws(side, config.rs_n, il.active());

  PipelineResult result;
  result.frames = config.frames;
  for (unsigned f = 0; f < config.frames; ++f) {
    make_frame(rs, side, data_rng, ws);
    // The "none" identity runs the channel directly on the packed stream
    // — no copies at all.
    std::vector<std::uint8_t>& wire = il.active() ? ws.tx : ws.stream;
    if (il.active()) il.forward_into(ws.stream, ws.tx);
    if (ch) {
      result.channel_symbol_errors += ch->apply(wire, channel_rng);
    }
    const std::vector<std::uint8_t>* rx = &wire;
    if (il.active()) {
      il.backward_into(ws.tx, ws.rx);
      rx = &ws.rx;
    }
    decode_frame(rs, side, *rx, ws, result);
  }

  // DRAM stage: only the triangular interleaver is DRAM-resident; the
  // block baseline is the SRAM stage-1 structure and "none" buffers nothing.
  if (config.run_dram && config.interleaver == "triangular") {
    if (config.device.name.empty()) {
      throw std::invalid_argument("pipeline: run_dram requires a device");
    }
    RunConfig rc;
    rc.device = config.device;
    rc.mapping_spec = config.mapping_spec;
    rc.side = interleaver::burst_triangle_side(
        triangular_number(side), kChannelSymbolBits, config.device.burst_bytes);
    rc.max_bursts_per_phase = config.dram_max_bursts_per_phase;
    rc.check_protocol = config.check_protocol;
    result.dram = run_interleaver(rc);
    result.dram_ran = true;
    result.dram_throughput_gbps = result.dram.throughput_gbps(config.device.burst_bytes);
  }
  return result;
}

PipelineResult run_pipeline(const PipelineConfig& config) {
  if (config.rs_n > 255 || config.rs_k == 0 || config.rs_k >= config.rs_n ||
      (config.rs_n - config.rs_k) % 2 != 0) {
    throw std::invalid_argument("pipeline: invalid RS(n, k)");
  }
  const fec::ReedSolomon rs(config.rs_n, config.rs_k);
  return run_pipeline(config, rs);
}

std::vector<FerRecord> run_fer_sweep(const SweepGrid& grid, const FerSweepOptions& options) {
  const auto cells = grid.expand();

  // Hoist codec construction out of the per-cell work: cells share one
  // immutable ReedSolomon per distinct rs_k (generator polynomial +
  // multiplier tables), safe for concurrent use by the sweep workers.
  std::map<unsigned, fec::ReedSolomon> codecs;
  for (const auto& cell : cells) {
    if (options.base.rs_n > 255 || cell.rs_k == 0 || cell.rs_k >= options.base.rs_n ||
        (options.base.rs_n - cell.rs_k) % 2 != 0) {
      throw std::invalid_argument("run_fer_sweep: invalid RS(n, k)");
    }
    codecs.try_emplace(cell.rs_k, options.base.rs_n, cell.rs_k);
  }

  return sweep_map(cells.size(), options.sweep,
                   [&](std::uint64_t index, std::uint64_t seed) {
    const Scenario& scenario = cells[index];
    FerRecord record;
    record.scenario = scenario;
    record.config = options.base;
    record.config.interleaver = scenario.interleaver;
    record.config.channel = scenario.channel;
    record.config.rs_k = scenario.rs_k;
    record.config.mapping_spec = scenario.mapping_spec;
    record.config.seed = seed;
    if (!scenario.device.empty()) {
      const auto* device = dram::find_config(scenario.device);
      if (device == nullptr) {
        throw std::invalid_argument("run_fer_sweep: unknown device '" +
                                    scenario.device + "'");
      }
      record.config.device = *device;
    }
    record.result = run_pipeline(record.config, codecs.at(scenario.rs_k));
    return record;
  });
}

}  // namespace tbi::sim
