/// \file pipeline.hpp
/// End-to-end frame-error-rate pipeline (the paper's motivating system,
/// §I): Reed-Solomon-coded frames stream through a chosen interleaver and
/// a configurable symbol-error channel; the interleaver's write and read
/// phases additionally execute on the simulated DRAM controller, so one
/// run yields both the coding gain of the interleaver *and* the memory
/// bandwidth it needs.
///
/// Two frame layouts share the entry points:
///
/// * **Row-aligned** (side == rs_n, the legacy geometry): one shortened
///   RS(n, k) code word per triangle row (row i carries word symbols
///   i..n-1, the leading i zeros are implicit). Frames are materialized
///   and permuted buffer-to-buffer.
/// * **Streaming** (side != rs_n, or the "two-stage" interleaver): frame
///   size is decoupled from the code word — full RS(n, k) words are
///   packed back to back into the interleaver's symbol capacity, and the
///   frame is never materialized. The channel walks the wire order in
///   bounded chunks; because every Channel corrupts symbols with
///   data-independent draws (guaranteed non-zero XOR flips), the sparse
///   corruption events are recovered from a zeroed chunk buffer and
///   mapped back to code-word positions through the interleaver's O(1)
///   inverse permutation. Peak memory is bounded by the chunk size plus
///   the per-frame error count — never by the triangle capacity — which
///   is what makes the paper's 12.5 M-symbol frames simulable.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "channel/channel.hpp"
#include "dram/standards.hpp"
#include "fec/reed_solomon.hpp"
#include "sim/runner.hpp"
#include "sim/sweep.hpp"
#include "source/source.hpp"

namespace tbi::sim {

struct PipelineConfig {
  // --- data path -----------------------------------------------------------
  std::string interleaver = "triangular";  ///< "none" | "triangular" | "block" | "two-stage"
  std::string channel = "gilbert-elliott"; ///< "none" | "bsc" | "gilbert-elliott" | "leo" | "trace"
  unsigned rs_n = 255;                     ///< code word length (symbols)
  unsigned rs_k = 223;                     ///< data symbols per code word
  unsigned frames = 20;                    ///< triangular blocks to simulate
  std::uint64_t seed = 1;                  ///< root seed (data + channel)

  // --- interleaver geometry ------------------------------------------------
  /// Triangle side, decoupled from rs_n (0 = rs_n, the legacy row-aligned
  /// geometry). For "none"/"block"/"triangular" the side counts *symbols*
  /// (frame = side*(side+1)/2 symbols); for "two-stage" it counts the
  /// stage-2 *bursts* (frame = side*(side+1)/2 * symbols_per_burst
  /// symbols). Any side != rs_n selects the streaming frame path.
  std::uint64_t side = 0;
  /// Symbols packed into one DRAM burst ("two-stage" only): the stage-1
  /// SRAM block interleaver is symbols_per_burst x symbols_per_burst.
  /// The default matches a 64-byte DRAM burst of byte symbols; the
  /// paper's 3-bit-symbol geometry corresponds to 170.
  std::uint64_t symbols_per_burst = 64;
  /// Streaming path: wire symbols processed per channel chunk (bounds the
  /// peak allocation; 0 = the 65536 default).
  std::uint64_t stream_chunk_symbols = 65536;

  // --- channel knobs -------------------------------------------------------
  double error_probability = 1e-3;  ///< bsc: per-symbol error probability
  double fade_fraction = 0.02;      ///< gilbert-elliott / leo: stationary bad fraction
  double mean_burst_symbols = 400;  ///< gilbert-elliott: mean fade length;
                                    ///< leo: coherence length in symbols
  double error_rate_bad = 0.5;      ///< symbol error rate inside a fade

  // --- burst source (src/source/) ------------------------------------------
  /// Ingested downlinks sharing the wire (>= 1). 1 = the classic single
  /// channel stream; N > 1 interleaves N independent channel instances
  /// symbol-round-robin (global wire position p carries link p % N), each
  /// link seeded deterministically from the cell seed. See
  /// source::MultiLinkSource.
  unsigned links = 1;
  /// Staggered acquisition: link l starts at local stream position
  /// l * link_phase_symbols. 0 = all links phase-aligned.
  std::uint64_t link_phase_symbols = 0;
  /// When non-empty, tee every corruption event into this burst-trace
  /// file (source::RecordingSource) for later replay.
  std::string trace_record;
  /// Burst-trace file replayed as the channel when channel == "trace".
  std::string trace_replay;

  // --- DRAM stage (DRAM-resident interleavers: triangular, two-stage) ------
  /// Execute the interleaver's write/read phases on the simulated memory
  /// controller. Honored for every DRAM-resident interleaver
  /// ("triangular", "two-stage"); requesting it for the SRAM/identity
  /// baselines ("none", "block") is a configuration error.
  bool run_dram = true;
  dram::DeviceConfig device;        ///< required when run_dram is set
  std::string mapping_spec = "optimized";
  std::uint64_t dram_max_bursts_per_phase = 20000;  ///< 0 = full triangle
  bool check_protocol = false;
};

struct PipelineResult {
  std::uint64_t frames = 0;
  std::uint64_t code_words = 0;             ///< total decoded words
  std::uint64_t word_errors = 0;            ///< undecodable or miscorrected
  std::uint64_t frame_errors = 0;           ///< frames with >= 1 word error
  std::uint64_t channel_symbol_errors = 0;  ///< symbols the channel corrupted
  std::uint64_t corrected_symbols = 0;      ///< RS corrections on good decodes
  std::uint64_t frame_symbols = 0;          ///< interleaver symbol capacity per frame
  /// Peak bytes held by the reusable frame workspace over the whole run
  /// (all buffer capacities, including the decoder scratch and the
  /// streaming error list). The streaming-path memory test asserts this
  /// stays bounded by the chunk size, not the triangle capacity.
  std::uint64_t workspace_peak_bytes = 0;

  // --- in-process perf counters (src/perf/counters.hpp) --------------------
  /// Host wall time of the frame loop (encode + channel + decode), ns.
  std::uint64_t host_ns = 0;
  /// operator-new allocations on this thread after the warm-up frame —
  /// the workspace-reuse invariant says this is 0 for the FER hot path.
  std::uint64_t steady_allocations = 0;
  /// Frames covered by steady_allocations (frames - 1; 0 when frames == 1,
  /// in which case allocations per frame is reported as 0, not measured).
  std::uint64_t steady_frames = 0;
  /// Symbols pushed through the channel model (0 when channel == "none").
  std::uint64_t channel_symbols = 0;

  double allocations_per_frame() const {
    return steady_frames ? static_cast<double>(steady_allocations) /
                               static_cast<double>(steady_frames)
                         : 0.0;
  }
  double channel_symbols_per_second() const {
    return host_ns ? 1e9 * static_cast<double>(channel_symbols) /
                         static_cast<double>(host_ns)
                   : 0.0;
  }

  double word_error_rate() const {
    return code_words ? static_cast<double>(word_errors) / static_cast<double>(code_words)
                      : 0.0;
  }
  double frame_error_rate() const {
    return frames ? static_cast<double>(frame_errors) / static_cast<double>(frames) : 0.0;
  }

  // DRAM feasibility of the interleaver geometry (dram_ran == false when
  // the scenario has no DRAM-resident interleaver).
  bool dram_ran = false;
  InterleaverRun dram;
  double dram_throughput_gbps = 0;
};

/// Channel factory for the pipeline's channel axis ("none" -> nullptr).
/// Symbols are RS code-word bytes, so all channels run with 8 symbol bits.
std::unique_ptr<channel::Channel> make_channel(const PipelineConfig& config);

/// Burst-source factory ("none" -> nullptr): wraps the channel axis in a
/// source::ChannelSource (links == 1, byte-identical to the channel
/// running in place), composes links > 1 into a MultiLinkSource with
/// per-link seeds derived from the cell seed, replays a recorded trace
/// for channel == "trace", and tees events through a RecordingSource
/// when trace_record is set.
std::unique_ptr<source::ErrorSource> make_source(const PipelineConfig& config);

/// True for interleavers whose buffer lives in simulated DRAM
/// ("triangular", "two-stage") — the ones run_dram applies to.
bool dram_resident_interleaver(const std::string& kind);

/// The exact per-cell PipelineConfig a FER sweep runs for \p scenario:
/// \p base with the scenario axes, the per-cell \p seed, and run_dram
/// narrowed to DRAM-resident interleavers. Shared by the in-process
/// sweep and the distributed workers so both execute byte-identical
/// cells. Throws std::invalid_argument for an unknown scenario device.
PipelineConfig fer_cell_config(const PipelineConfig& base, const Scenario& scenario,
                               std::uint64_t seed);

/// Simulate \p config.frames triangular blocks end to end and, when
/// configured, the DRAM phases of the DRAM-resident interleaver
/// ("triangular" or "two-stage").
PipelineResult run_pipeline(const PipelineConfig& config);

/// As above, but with a caller-provided codec (rs.n()/rs.k() must match
/// the config). Lets sweeps hoist the generator-polynomial and
/// multiplier-table construction out of the per-cell work; the codec is
/// immutable after construction and safe to share across threads.
PipelineResult run_pipeline(const PipelineConfig& config, const fec::ReedSolomon& rs);

// ---------------------------------------------------------------------------
// Intra-frame slicing (streaming path only)
//
// A paper-scale streaming frame is dominated by the channel walk over the
// wire order, and the random-access ErrorSource contract (counter-based
// skip-ahead, PR 8) makes any contiguous wire range independently
// computable. run_pipeline_slice therefore runs ONLY the source pass of
// every frame over one of num_slices contiguous wire ranges and returns
// the sparse corruption events already mapped to input positions;
// combine_pipeline_slices merges the slices' events per frame (sorting
// restores the exact order the unsliced path produces), runs the shared
// decode loop and the deterministic DRAM phase, and yields a
// PipelineResult whose every field except workspace_peak_bytes and
// host_ns is byte-identical to run_pipeline on the same config. The
// dsweep "fer" kernel uses this to spread one frame across sweep workers.
// ---------------------------------------------------------------------------

/// One corruption event from a slice, mapped to the input (code-word
/// stream) position. frame-major, wire order within a frame's range.
struct StreamHit {
  std::uint64_t frame;
  std::uint64_t input_index;
  std::uint8_t flip;
};

/// Channel-pass output of one slice. The hits vector is the record
/// payload (it rides the dsweep wire), not per-frame workspace, so slice
/// runs carry no steady_allocations counter of their own — the merged
/// counter comes from the combine decode loop, the same hot loop the
/// unsliced path measures.
struct PipelineSliceResult {
  unsigned slice = 0;
  unsigned num_slices = 1;
  std::uint64_t frames = 0;
  std::uint64_t channel_symbols = 0;
  std::uint64_t channel_symbol_errors = 0;
  std::uint64_t workspace_peak_bytes = 0;
  std::uint64_t host_ns = 0;
  std::vector<StreamHit> hits;
};

/// True when \p config takes the streaming frame path (side decoupled
/// from rs_n, or the "two-stage" interleaver) — the precondition for
/// run_pipeline_slice.
bool pipeline_streams(const PipelineConfig& config);

/// The contiguous wire range [lo, hi) slice \p slice of \p num_slices
/// covers in a capacity-symbol frame. Ranges partition [0, capacity) and
/// differ in size by at most one symbol.
std::pair<std::uint64_t, std::uint64_t> stream_slice_range(std::uint64_t capacity,
                                                           unsigned slice,
                                                           unsigned num_slices);

/// Run the source pass of every frame over this slice's wire range.
/// Throws std::invalid_argument when the config is not on the streaming
/// path, when slice >= num_slices, or when trace_record is set (a slice
/// would record a partial trace).
PipelineSliceResult run_pipeline_slice(const PipelineConfig& config, unsigned slice,
                                       unsigned num_slices);

/// Merge one slice result per slice index (any order; they are sorted by
/// slice) into the full PipelineResult: per-frame event merge + decode +
/// DRAM phase. All FER/counter fields are byte-identical to the unsliced
/// run_pipeline; workspace_peak_bytes becomes the max over the slice
/// peaks and the combine workspace, and host_ns sums the slice and
/// combine times.
PipelineResult combine_pipeline_slices(const PipelineConfig& config,
                                       const fec::ReedSolomon& rs,
                                       std::vector<PipelineSliceResult> slices);

// ---------------------------------------------------------------------------
// FER sweeps on the scenario grid
// ---------------------------------------------------------------------------

struct FerSweepOptions {
  SweepOptions sweep;
  /// Template for every cell; device / mapping_spec / interleaver /
  /// channel / rs_k / symbols_per_burst / links are overridden per
  /// scenario, the seed is replaced by the deterministic per-job seed,
  /// and run_dram is narrowed to the cells whose interleaver is
  /// DRAM-resident.
  PipelineConfig base;
  /// Distributed backend (run_fer_sweep_dist): split every streaming
  /// cell's frames into this many intra-frame channel slices, each its
  /// own dsweep cell, merged by combine_pipeline_slices. 1 = classic
  /// one-cell-per-scenario sweeps (job config byte-identical to pre-slice
  /// drivers). Cells on the materialized path ignore the split (slice 0
  /// computes the whole cell). The in-process run_fer_sweep ignores this.
  unsigned frame_slices = 1;
};

struct FerRecord {
  Scenario scenario;
  PipelineConfig config;
  PipelineResult result;
};

/// Run the full pipeline for every cell of the grid in parallel; records
/// are index-ordered and independent of the thread count.
std::vector<FerRecord> run_fer_sweep(const SweepGrid& grid, const FerSweepOptions& options);

}  // namespace tbi::sim
