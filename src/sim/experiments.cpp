#include "sim/experiments.hpp"

#include <algorithm>

#include "interleaver/streams.hpp"
#include "sim/sweep.hpp"

namespace tbi::sim {

namespace {

bool device_selected(const Table1Options& o, const std::string& name) {
  if (o.devices.empty()) return true;
  return std::find(o.devices.begin(), o.devices.end(), name) != o.devices.end();
}

}  // namespace

std::vector<Table1Row> run_table1(const Table1Options& options) {
  SweepGrid grid;
  for (const auto& device : dram::standard_configs()) {
    if (device_selected(options, device.name)) grid.devices.push_back(device.name);
  }
  grid.mapping_specs = {"row-major", "optimized"};

  BandwidthSweepOptions sweep;
  sweep.sweep.threads = options.threads;
  sweep.total_symbols = options.total_symbols;
  sweep.max_bursts_per_phase = options.max_bursts_per_phase;
  sweep.refresh_disabled = options.refresh_disabled;
  sweep.check_protocol = options.check_protocol;
  sweep.queue_depth = options.queue_depth;

  const auto records = run_bandwidth_sweep(grid, sweep);

  // Records are device-major, mapping inner (grid expansion order): fold
  // each device's row-major/optimized pair into one table row.
  std::vector<Table1Row> rows;
  rows.reserve(grid.devices.size());
  for (std::size_t d = 0; d < grid.devices.size(); ++d) {
    const auto& rm = records[2 * d].run;
    const auto& opt = records[2 * d + 1].run;
    Table1Row row;
    row.config = grid.devices[d];
    row.row_major_write = rm.write.stats.utilization();
    row.row_major_read = rm.read.stats.utilization();
    row.optimized_write = opt.write.stats.utilization();
    row.optimized_read = opt.read.stats.utilization();
    row.row_major_ns_per_pick = rm.sched_ns_per_pick();
    row.optimized_ns_per_pick = opt.sched_ns_per_pick();
    rows.push_back(row);
  }
  return rows;
}

TextTable format_table1(const std::vector<Table1Row>& rows, const std::string& title) {
  TextTable t(title);
  t.set_header({"DRAM Configuration", "Row-Major Write", "Row-Major Read",
                "Optimized Write", "Optimized Read"});
  for (const auto& r : rows) {
    t.add_row({r.config, TextTable::pct(r.row_major_write),
               TextTable::pct(r.row_major_read), TextTable::pct(r.optimized_write),
               TextTable::pct(r.optimized_read)});
  }
  return t;
}

std::vector<AblationRow> run_ablation(const dram::DeviceConfig& device,
                                      std::uint64_t total_symbols,
                                      std::uint64_t max_bursts_per_phase,
                                      unsigned threads) {
  static const char* kVariants[] = {
      "optimized/none", "optimized/diag", "optimized/tile",
      "optimized/diag+tile", "optimized"};

  SweepOptions sweep;
  sweep.threads = threads;
  return sweep_map(std::size(kVariants), sweep,
                   [&](std::uint64_t index, std::uint64_t /*seed*/) {
    RunConfig rc;
    rc.device = device;
    rc.mapping_spec = kVariants[index];
    rc.side = interleaver::burst_triangle_side(total_symbols, kPaperSymbolBits,
                                               device.burst_bytes);
    rc.max_bursts_per_phase = max_bursts_per_phase;
    const InterleaverRun run = run_interleaver(rc);
    return AblationRow{run.mapping_name, run.write.stats.utilization(),
                       run.read.stats.utilization(), run.sched_ns_per_pick()};
  });
}

std::vector<DimensionRow> run_dimension_sweep(
    const dram::DeviceConfig& device, const std::vector<std::uint64_t>& symbol_counts,
    unsigned threads) {
  SweepOptions sweep;
  sweep.threads = threads;
  return sweep_map(symbol_counts.size(), sweep,
                   [&](std::uint64_t index, std::uint64_t /*seed*/) {
    const std::uint64_t symbols = symbol_counts[index];
    DimensionRow row;
    row.total_symbols = symbols;
    row.side_bursts = interleaver::burst_triangle_side(symbols, kPaperSymbolBits,
                                                       device.burst_bytes);
    RunConfig rc;
    rc.device = device;
    rc.side = row.side_bursts;

    rc.mapping_spec = "row-major";
    const InterleaverRun rm = run_interleaver(rc);
    row.row_major_min = rm.min_utilization();
    row.row_major_ns_per_pick = rm.sched_ns_per_pick();
    rc.mapping_spec = "optimized";
    const InterleaverRun opt = run_interleaver(rc);
    row.optimized_min = opt.min_utilization();
    row.optimized_ns_per_pick = opt.sched_ns_per_pick();
    return row;
  });
}

}  // namespace tbi::sim
