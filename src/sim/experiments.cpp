#include "sim/experiments.hpp"

#include <algorithm>

#include "interleaver/streams.hpp"

namespace tbi::sim {

namespace {

constexpr std::uint64_t kPaperSymbols = 12'500'000;
constexpr unsigned kPaperSymbolBits = 3;

bool device_selected(const Table1Options& o, const std::string& name) {
  if (o.devices.empty()) return true;
  return std::find(o.devices.begin(), o.devices.end(), name) != o.devices.end();
}

}  // namespace

std::vector<Table1Row> run_table1(const Table1Options& options) {
  const std::uint64_t symbols =
      options.total_symbols ? options.total_symbols : kPaperSymbols;

  std::vector<Table1Row> rows;
  for (const auto& device : dram::standard_configs()) {
    if (!device_selected(options, device.name)) continue;

    RunConfig rc;
    rc.device = device;
    rc.controller.queue_depth = options.queue_depth;
    if (options.refresh_disabled) {
      rc.controller.use_device_default_refresh = false;
      rc.controller.refresh_mode = dram::RefreshMode::Disabled;
    }
    rc.side = interleaver::burst_triangle_side(symbols, kPaperSymbolBits,
                                               device.burst_bytes);
    rc.max_bursts_per_phase = options.max_bursts_per_phase;
    rc.check_protocol = options.check_protocol;

    Table1Row row;
    row.config = device.name;

    rc.mapping_spec = "row-major";
    const InterleaverRun rm = run_interleaver(rc);
    row.row_major_write = rm.write.stats.utilization();
    row.row_major_read = rm.read.stats.utilization();

    rc.mapping_spec = "optimized";
    const InterleaverRun opt = run_interleaver(rc);
    row.optimized_write = opt.write.stats.utilization();
    row.optimized_read = opt.read.stats.utilization();

    rows.push_back(row);
  }
  return rows;
}

TextTable format_table1(const std::vector<Table1Row>& rows, const std::string& title) {
  TextTable t(title);
  t.set_header({"DRAM Configuration", "Row-Major Write", "Row-Major Read",
                "Optimized Write", "Optimized Read"});
  for (const auto& r : rows) {
    t.add_row({r.config, TextTable::pct(r.row_major_write),
               TextTable::pct(r.row_major_read), TextTable::pct(r.optimized_write),
               TextTable::pct(r.optimized_read)});
  }
  return t;
}

std::vector<AblationRow> run_ablation(const dram::DeviceConfig& device,
                                      std::uint64_t total_symbols,
                                      std::uint64_t max_bursts_per_phase) {
  static const char* kVariants[] = {
      "optimized/none", "optimized/diag", "optimized/tile",
      "optimized/diag+tile", "optimized"};

  std::vector<AblationRow> rows;
  for (const char* spec : kVariants) {
    RunConfig rc;
    rc.device = device;
    rc.mapping_spec = spec;
    rc.side = interleaver::burst_triangle_side(total_symbols, kPaperSymbolBits,
                                               device.burst_bytes);
    rc.max_bursts_per_phase = max_bursts_per_phase;
    const InterleaverRun run = run_interleaver(rc);
    rows.push_back(AblationRow{run.mapping_name,
                               run.write.stats.utilization(),
                               run.read.stats.utilization()});
  }
  return rows;
}

std::vector<DimensionRow> run_dimension_sweep(
    const dram::DeviceConfig& device, const std::vector<std::uint64_t>& symbol_counts) {
  std::vector<DimensionRow> rows;
  for (const std::uint64_t symbols : symbol_counts) {
    DimensionRow row;
    row.total_symbols = symbols;
    row.side_bursts = interleaver::burst_triangle_side(symbols, kPaperSymbolBits,
                                                       device.burst_bytes);
    RunConfig rc;
    rc.device = device;
    rc.side = row.side_bursts;

    rc.mapping_spec = "row-major";
    row.row_major_min = run_interleaver(rc).min_utilization();
    rc.mapping_spec = "optimized";
    row.optimized_min = run_interleaver(rc).min_utilization();
    rows.push_back(row);
  }
  return rows;
}

}  // namespace tbi::sim
