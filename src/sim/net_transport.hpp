/// \file net_transport.hpp
/// TCP worker transport for the distributed sweep driver: the "fleet"
/// backend that lets workers live on other hosts.
///
/// The driver listens; workers dial in (`dsweep_worker_connect`) and
/// open with a `Hello` frame carrying the wire protocol version and the
/// sweep fingerprint they last served (empty on first contact). The
/// transport rejects protocol mismatches and foreign workers — a worker
/// that served a different run reconnecting to this driver would be as
/// wrong as resuming from a foreign manifest — with a `Reject` frame,
/// and queues handshake-complete connections for slot adoption.
///
/// Connection state machine (driver side), per inbound connection:
///
///   accepted --Hello ok--> ready --acquire()--> adopted (driver slot)
///       |  \--Hello bad / corrupt / timeout--> closed (+Reject if bad)
///   adopted --EOF / corrupt / heartbeat timeout--> released (closed);
///             the in-flight cell is reassigned and the slot waits for
///             the next ready connection (the remote worker reconnects
///             with exponential backoff under its own retry budget)
///
/// All sockets the driver touches are nonblocking; handshakes that stall
/// past `handshake_timeout_ms` are dropped so a half-open peer cannot
/// pin a slot.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/wire.hpp"
#include "sim/transport.hpp"

namespace tbi::sim {

struct TcpTransportOptions {
  /// This run's sweep fingerprint (sim/manifest.hpp); a Hello carrying a
  /// different non-empty fingerprint is rejected.
  std::string fingerprint;
  /// A connection must complete its Hello within this window.
  unsigned handshake_timeout_ms = 5000;
};

class TcpTransport : public Transport {
 public:
  /// Binds + listens on \p hostport ("host:port", port 0 = ephemeral).
  /// Throws std::invalid_argument on a malformed address and
  /// std::runtime_error when the bind/listen fails.
  TcpTransport(const std::string& hostport, TcpTransportOptions options);
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  const char* name() const override { return "tcp"; }
  bool transient_acquire() const override { return true; }
  int event_fd() const override { return listen_fd_; }
  void service(std::uint64_t now_ns) override;
  bool busy() const override { return !pending_.empty() || !ready_.empty(); }
  int acquire(unsigned slot) override;
  void release(unsigned slot, int fd) override;

  std::uint16_t port() const { return port_; }
  unsigned adopted() const { return adopted_; }
  unsigned rejected() const { return rejected_; }

 private:
  struct Pending {
    int fd = -1;
    wire::FrameReader reader;
    std::uint64_t deadline_ns = 0;
  };

  /// Validate a Hello payload; returns true when the connection may be
  /// adopted, else fills \p reason.
  bool handshake_ok(const std::string& payload, std::string* reason) const;

  TcpTransportOptions options_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::vector<Pending> pending_;
  std::deque<int> ready_;
  unsigned adopted_ = 0;
  unsigned rejected_ = 0;
};

}  // namespace tbi::sim
