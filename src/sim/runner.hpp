/// \file runner.hpp
/// One-stop simulation entry: run a triangular interleaver's write and
/// read phase through a mapping on a device and collect bandwidth and
/// energy results. Shared by tests, examples and every bench binary.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>

#include "dram/controller.hpp"
#include "dram/energy.hpp"
#include "dram/standards.hpp"
#include "dram/stats.hpp"

namespace tbi::sim {

/// The paper's interleaver geometry: 12.5 M 3-bit symbols (§III). Shared
/// by the runner, the sweep engine and the experiment drivers.
inline constexpr std::uint64_t kPaperSymbols = 12'500'000;
inline constexpr unsigned kPaperSymbolBits = 3;

struct RunConfig {
  dram::DeviceConfig device;
  dram::ControllerConfig controller;
  std::string mapping_spec = "optimized";  ///< see mapping::make_mapping
  std::uint64_t side = 0;                  ///< burst triangle side (required)
  std::uint64_t max_bursts_per_phase = 0;  ///< 0 = simulate the full triangle
  bool check_protocol = false;  ///< attach the JEDEC checker; throw on violation
};

struct PhaseResult {
  dram::PhaseStats stats;
  dram::EnergyReport energy;
};

struct InterleaverRun {
  std::string device_name;
  std::string mapping_name;
  PhaseResult write;
  PhaseResult read;

  /// The paper's figure of merit: the *minimum* of both phases limits the
  /// interleaver throughput (§I).
  double min_utilization() const {
    return std::min(write.stats.utilization(), read.stats.utilization());
  }

  /// Achievable interleaver throughput in Gbit/s on \p burst_bytes bursts.
  double throughput_gbps(unsigned burst_bytes) const {
    return std::min(write.stats.bandwidth_gbps(burst_bytes),
                    read.stats.bandwidth_gbps(burst_bytes));
  }

  // Perf-counter aggregates over both phases, stamped into every bench
  // --json record (see src/perf/counters.hpp).
  std::uint64_t total_bursts() const {
    return write.stats.bursts + read.stats.bursts;
  }
  std::uint64_t total_activates() const {
    return write.stats.activates + read.stats.activates;
  }
  /// Host nanoseconds per scheduler pick, averaged over both phases.
  double sched_ns_per_pick() const {
    const std::uint64_t picks = write.stats.picks + read.stats.picks;
    return picks ? static_cast<double>(write.stats.host_ns + read.stats.host_ns) /
                       static_cast<double>(picks)
                 : 0.0;
  }
};

/// Execute write phase then read phase on a fresh controller.
/// Throws std::runtime_error when check_protocol is set and the command
/// stream violates any JEDEC constraint.
InterleaverRun run_interleaver(const RunConfig& config);

/// Convenience: the paper's 12.5 M-element interleaver (3-bit symbols) on
/// the given device's burst size.
std::uint64_t paper_side_for(const dram::DeviceConfig& device);

/// Continuous (double-buffered) operation: block k+1 is written while
/// block k is read from a disjoint DRAM row region, 1:1 interleaved — the
/// deployment traffic shape, including read/write bus turnarounds. The
/// paper evaluates the two phases separately because min(write, read)
/// bounds this mixed rate; run_streaming measures the mixed rate itself.
/// Returns the single mixed-phase statistics.
PhaseResult run_streaming(const RunConfig& config);

}  // namespace tbi::sim
