/// \file transport.hpp
/// Pluggable worker-connection transport for the distributed sweep
/// driver (sim/dsweep.hpp).
///
/// The driver's failure handling — heartbeat liveness, in-flight cell
/// reassignment, retry budgets, graceful in-process degradation — is
/// transport-agnostic: all it needs is a way to *acquire* a connected
/// worker fd for a slot and to *release* one it has given up on. Two
/// implementations exist:
///
///  * the fork/exec socketpair backend (in dsweep.cpp): acquire() spawns
///    a worker process re-invoking the current binary with --worker-fd;
///    release() SIGKILLs and reaps it;
///  * the TCP backend (net_transport.hpp): remote workers dial in and
///    complete a fingerprint handshake; acquire() adopts a handshaken
///    connection, release() closes the socket (the remote peer discovers
///    the abandonment as EOF and reconnects with backoff).
///
/// Every frame on every transport uses the same tbi::wire CRC framing,
/// so the driver's corrupt-batch and EOF handling is shared too.
#pragma once

#include <cstdint>

namespace tbi::sim {

class Transport {
 public:
  virtual ~Transport() = default;

  virtual const char* name() const = 0;

  /// Whether an acquire() miss is transient (TCP: no handshaken
  /// connection queued *yet*; retry next tick) or fatal for the slot
  /// (fork: the process could not be spawned).
  virtual bool transient_acquire() const = 0;

  /// Driver-side fd to include in the poll set so transport-level events
  /// (an inbound connection) wake the event loop; -1 when none.
  virtual int event_fd() const { return -1; }

  /// Pump transport-level work: accept pending connections, advance
  /// handshakes, expire stale ones. Called every driver tick.
  virtual void service(std::uint64_t now_ns) { (void)now_ns; }

  /// True while connections are mid-handshake or queued for adoption — a
  /// liveness signal that holds off the driver's no-worker degradation
  /// timer.
  virtual bool busy() const { return false; }

  /// Produce a connected, handshake-complete worker fd for \p slot, or
  /// -1 when none is available (see transient_acquire()).
  virtual int acquire(unsigned slot) = 0;

  /// Abandon a worker connection the driver has failed (dead, hung,
  /// corrupt, or simply done): close \p fd and reclaim any transport
  /// resources (fork: SIGKILL + reap the slot's process).
  virtual void release(unsigned slot, int fd) = 0;
};

}  // namespace tbi::sim
