/// \file sweep.hpp
/// Parallel scenario-sweep engine.
///
/// Every paper artifact (Table I, the ablation, the dimension sweep) and
/// every future scaling experiment is a cartesian grid of scenarios —
/// device × mapping × interleaver × channel × code rate — whose cells are
/// independent simulations. The engine shards such a grid over a fixed
/// thread pool, seeds every job deterministically from (base_seed, job
/// index), and collects results *by index*, so the record vector is
/// byte-identical for any thread count (tested property).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "sim/runner.hpp"

namespace tbi::sim {

/// Deterministic 64-bit seed for job \p index of a sweep started with
/// \p base_seed (splitmix64 mixing; never returns the same value for two
/// indices under one base seed).
std::uint64_t job_seed(std::uint64_t base_seed, std::uint64_t index);

/// Resolve a requested worker count: 0 means "all hardware threads".
unsigned resolve_threads(unsigned requested);

/// Worker threads a sweep over \p jobs jobs should actually spawn: the
/// resolved request clamped to the job count (spawning idle workers for a
/// 3-cell grid on a 128-core box is pure overhead), and never less than 1
/// so callers can hand the result straight to ThreadPool.
unsigned effective_threads(unsigned requested, std::uint64_t jobs);

/// Fixed-size worker pool. Jobs are plain closures; wait_idle() blocks
/// until every submitted job has finished. Exceptions thrown by jobs are
/// captured and the first one is rethrown from wait_idle().
class ThreadPool {
 public:
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned thread_count() const { return static_cast<unsigned>(workers_.size()); }

  void submit(std::function<void()> job);
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::uint64_t in_flight_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;
};

/// Progress snapshot delivered after every finished job (serialized; the
/// callback never runs concurrently with itself).
struct SweepProgress {
  std::uint64_t completed = 0;
  std::uint64_t total = 0;
  double fraction() const {
    return total ? static_cast<double>(completed) / static_cast<double>(total) : 1.0;
  }
};

struct SweepOptions {
  unsigned threads = 0;          ///< worker threads; 0 = hardware concurrency
  std::uint64_t base_seed = 1;   ///< root of the per-job seed derivation
  std::function<void(const SweepProgress&)> progress;  ///< optional
};

/// Map \p fn over [0, count) on a thread pool; fn(index, seed) runs once
/// per index with seed = job_seed(base_seed, index). Results are stored at
/// their index, so the output is independent of the thread count and of
/// job completion order. The result type must be default-constructible.
template <typename Fn>
auto sweep_map(std::uint64_t count, const SweepOptions& options, Fn&& fn)
    -> std::vector<decltype(fn(std::uint64_t{}, std::uint64_t{}))> {
  using Result = decltype(fn(std::uint64_t{}, std::uint64_t{}));
  static_assert(!std::is_same_v<Result, bool>,
                "sweep_map: concurrent writes to std::vector<bool> race on "
                "packed bits; return an int or a struct instead");
  std::vector<Result> results(count);
  // Empty grids (an empty axis, a fully resumed run) must not spin up a
  // pool just to tear it down — and ThreadPool itself rejects 0 threads.
  if (count == 0) return results;
  ThreadPool pool(effective_threads(options.threads, count));

  std::mutex progress_mutex;
  std::uint64_t completed = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    pool.submit([&, i] {
      results[i] = fn(i, job_seed(options.base_seed, i));
      if (options.progress) {
        std::lock_guard<std::mutex> lock(progress_mutex);
        options.progress(SweepProgress{++completed, count});
      }
    });
  }
  pool.wait_idle();
  return results;
}

// ---------------------------------------------------------------------------
// Scenario grids
// ---------------------------------------------------------------------------

/// One cell of the sweep grid. Axes not exercised by a particular sweep
/// keep their defaults (e.g. bandwidth sweeps ignore channel and code).
struct Scenario {
  std::string device;                    ///< dram::find_config name
  std::string mapping_spec = "optimized";
  std::string interleaver = "triangular";  ///< "none" | "triangular" | "block" | "two-stage"
  std::string channel = "none";            ///< "none" | "bsc" | "gilbert-elliott" | "leo"
  unsigned rs_k = 223;                     ///< RS(255, k) data symbols
  /// Symbols per DRAM burst for "two-stage" cells; 0 = keep the sweep
  /// template's value (the axis is off).
  std::uint64_t symbols_per_burst = 0;
  /// Ingested downlinks sharing the wire (source::MultiLinkSource); 0 =
  /// keep the sweep template's value (the axis is off).
  unsigned links = 0;

  std::string label() const;
};

/// Cartesian scenario grid; expand() enumerates cells in row-major axis
/// order (devices outermost, links innermost) — the job-index order that
/// deterministic seeding keys on.
struct SweepGrid {
  std::vector<std::string> devices;
  std::vector<std::string> mapping_specs = {"optimized"};
  std::vector<std::string> interleavers = {"triangular"};
  std::vector<std::string> channels = {"none"};
  std::vector<unsigned> rs_ks = {223};
  /// The {0} default keeps existing grids' cell order and per-index seeds
  /// unchanged (0 = inherit the sweep template's value).
  std::vector<std::uint64_t> symbols_per_bursts = {0};
  /// Innermost axis; same {0} = inherit convention as symbols_per_bursts.
  std::vector<unsigned> links = {0};

  /// All ten Table-I devices, both paper mappings.
  static SweepGrid paper_bandwidth_grid();

  std::uint64_t size() const;
  std::vector<Scenario> expand() const;
  /// The cell at \p index of the expand() enumeration, computed O(1) by
  /// mixed-radix decomposition — sweep workers address cells by index
  /// without materializing a million-cell grid per lookup.
  Scenario cell(std::uint64_t index) const;
};

// ---------------------------------------------------------------------------
// Bandwidth sweeps (DRAM phases only; fully deterministic, no RNG)
// ---------------------------------------------------------------------------

struct BandwidthSweepOptions {
  SweepOptions sweep;
  std::uint64_t total_symbols = 0;         ///< 0 = the paper's 12.5 M
  std::uint64_t max_bursts_per_phase = 0;  ///< 0 = full triangle
  bool refresh_disabled = false;
  bool check_protocol = false;
  unsigned queue_depth = 64;
};

/// One collected record: the scenario, the exact RunConfig executed, and
/// the write/read PhaseResults.
struct BandwidthRecord {
  Scenario scenario;
  RunConfig config;
  InterleaverRun run;
};

/// Run the DRAM write/read phases for every (device, mapping) cell of the
/// grid in parallel. Interleaver/channel/code axes are ignored here.
std::vector<BandwidthRecord> run_bandwidth_sweep(const SweepGrid& grid,
                                                 const BandwidthSweepOptions& options);

/// Aggregate view over a finished sweep.
struct SweepSummary {
  std::uint64_t records = 0;
  double min_utilization = 0;   ///< worst min(write,read) across records
  double max_utilization = 0;   ///< best min(write,read) across records
  double mean_utilization = 0;  ///< mean of min(write,read)
  std::string worst_scenario;
  std::string best_scenario;
};

SweepSummary summarize(const std::vector<BandwidthRecord>& records);

}  // namespace tbi::sim
