#include "sim/manifest.hpp"

#include <cstdio>
#include <fstream>

namespace tbi::sim {

namespace {

/// FNV-1a, 64-bit. Not cryptographic — it only has to make accidental
/// config drift (different frames, seed, grid) collide with probability
/// ~2^-64, which is plenty for a resume guard.
std::uint64_t fnv1a(const std::string& s, std::uint64_t h = 0xCBF29CE484222325ULL) {
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

std::string sweep_fingerprint(const std::string& kernel, const Json& job,
                              std::uint64_t cells, std::uint64_t base_seed) {
  std::uint64_t h = fnv1a(kernel);
  h = fnv1a(job.dump(0), h);
  h = fnv1a(std::to_string(cells), h);
  h = fnv1a(std::to_string(base_seed), h);
  return hex64(h);
}

ManifestLoad load_manifest(const std::string& path, const std::string& fingerprint) {
  ManifestLoad out;
  std::ifstream in(path);
  if (!in) return out;
  out.found = true;

  std::string line;
  bool header = true;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    Json v;
    try {
      v = Json::parse(line);
    } catch (const JsonError&) {
      // Torn tail (crash mid-append) or bit rot: everything from here on
      // is untrusted; the cells will be recomputed.
      break;
    }
    if (header) {
      header = false;
      try {
        out.fingerprint_ok = v.at("fingerprint").as_string() == fingerprint;
      } catch (const JsonError&) {
        out.fingerprint_ok = false;
      }
      if (!out.fingerprint_ok) return out;
      continue;
    }
    try {
      ManifestEntry e;
      e.cell = static_cast<std::uint64_t>(v.at("cell").as_double());
      e.record = v.at("record");
      out.entries.push_back(std::move(e));
    } catch (const JsonError&) {
      break;
    }
  }
  return out;
}

bool ManifestWriter::open(const std::string& path, const std::string& fingerprint,
                          bool fresh) {
  if (!log_.open(path, fresh)) return false;
  if (fresh) {
    Json header;
    header["fingerprint"] = fingerprint;
    return log_.append_line(header.dump(0));
  }
  return true;
}

bool ManifestWriter::append(std::uint64_t cell, const Json& record) {
  Json entry;
  entry["cell"] = cell;
  entry["record"] = record;
  return log_.append_line(entry.dump(0));
}

}  // namespace tbi::sim
