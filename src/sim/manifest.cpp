#include "sim/manifest.hpp"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <stdexcept>

namespace tbi::sim {

namespace {

/// FNV-1a, 64-bit. Not cryptographic — it only has to make accidental
/// config drift (different frames, seed, grid) collide with probability
/// ~2^-64, which is plenty for a resume guard.
std::uint64_t fnv1a(const std::string& s, std::uint64_t h = 0xCBF29CE484222325ULL) {
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

/// Byte length of the journal's valid prefix: whole, newline-terminated
/// lines that pass the same acceptance rule as load_manifest. Everything
/// past it is a torn tail from a crash mid-append.
std::size_t valid_prefix_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return 0;
  const std::string data((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  std::size_t good = 0;
  std::size_t pos = 0;
  bool header = true;
  while (pos < data.size()) {
    const auto nl = data.find('\n', pos);
    if (nl == std::string::npos) break;  // unterminated tail: torn
    const std::string line = data.substr(pos, nl - pos);
    pos = nl + 1;
    if (!line.empty()) {
      try {
        const Json v = Json::parse(line);
        if (header) {
          (void)v.at("fingerprint").as_string();
          header = false;
        } else {
          (void)v.at("cell").as_double();
          (void)v.at("record");
        }
      } catch (const JsonError&) {
        break;
      }
    }
    good = pos;
  }
  return good;
}

}  // namespace

std::string sweep_fingerprint(const std::string& kernel, const Json& job,
                              std::uint64_t cells, std::uint64_t base_seed) {
  std::uint64_t h = fnv1a(kernel);
  h = fnv1a(job.dump(0), h);
  h = fnv1a(std::to_string(cells), h);
  h = fnv1a(std::to_string(base_seed), h);
  return hex64(h);
}

ShardRange shard_range(std::uint64_t cells, unsigned index, unsigned count) {
  if (count == 0) throw std::invalid_argument("shard: count must be >= 1");
  if (index >= count) {
    throw std::invalid_argument("shard: index " + std::to_string(index) +
                                " out of range for " + std::to_string(count) +
                                " shards");
  }
  ShardRange r;
  r.begin = cells * index / count;
  r.end = cells * (index + 1) / count;
  return r;
}

void parse_shard_spec(const std::string& spec, unsigned* index, unsigned* count) {
  const auto slash = spec.find('/');
  const auto digits_only = [](const std::string& s) {
    return !s.empty() && s.find_first_not_of("0123456789") == std::string::npos;
  };
  if (slash == std::string::npos || !digits_only(spec.substr(0, slash)) ||
      !digits_only(spec.substr(slash + 1))) {
    throw std::invalid_argument("shard: expected I/N, got '" + spec + "'");
  }
  const unsigned long i = std::strtoul(spec.c_str(), nullptr, 10);
  const unsigned long n = std::strtoul(spec.c_str() + slash + 1, nullptr, 10);
  if (n == 0 || i >= n) {
    throw std::invalid_argument("shard: index must satisfy I < N in '" + spec + "'");
  }
  *index = static_cast<unsigned>(i);
  *count = static_cast<unsigned>(n);
}

ManifestLoad load_manifest(const std::string& path, const std::string& fingerprint) {
  ManifestLoad out;
  std::ifstream in(path);
  if (!in) return out;
  out.found = true;

  std::string line;
  bool header = true;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    Json v;
    try {
      v = Json::parse(line);
    } catch (const JsonError&) {
      // Torn tail (crash mid-append) or bit rot: everything from here on
      // is untrusted; the cells will be recomputed.
      break;
    }
    if (header) {
      header = false;
      try {
        out.fingerprint_ok = v.at("fingerprint").as_string() == fingerprint;
      } catch (const JsonError&) {
        out.fingerprint_ok = false;
      }
      if (!out.fingerprint_ok) return out;
      continue;
    }
    try {
      ManifestEntry e;
      e.cell = static_cast<std::uint64_t>(v.at("cell").as_double());
      e.record = v.at("record");
      out.entries.push_back(std::move(e));
    } catch (const JsonError&) {
      break;
    }
  }
  return out;
}

bool ManifestWriter::open(const std::string& path, const std::string& fingerprint,
                          bool fresh, unsigned shard_index, unsigned shard_count) {
  if (!fresh) {
    // Resume must not append after a torn tail: every later load — the
    // next resume, and above all the shard merge — stops at the first
    // unparseable line and would never see what was written beyond it.
    // Truncate the journal back to its valid prefix first.
    std::ifstream probe(path, std::ios::binary | std::ios::ate);
    if (probe) {
      const auto size = static_cast<std::size_t>(probe.tellg());
      probe.close();
      const std::size_t good = valid_prefix_bytes(path);
      if (good < size) ::truncate(path.c_str(), static_cast<off_t>(good));
    }
  }
  if (!log_.open(path, fresh)) return false;
  if (fresh) {
    Json header;
    header["fingerprint"] = fingerprint;
    if (shard_count > 1) {
      header["shard_index"] = static_cast<std::uint64_t>(shard_index);
      header["shard_count"] = static_cast<std::uint64_t>(shard_count);
    }
    return log_.append_line(header.dump(0));
  }
  return true;
}

bool ManifestWriter::append(std::uint64_t cell, const Json& record) {
  Json entry;
  entry["cell"] = cell;
  entry["record"] = record;
  return log_.append_line(entry.dump(0));
}

}  // namespace tbi::sim
