#include "perf/bench_compare.hpp"

#include <cmath>
#include <cstdio>

namespace tbi::perf {

namespace {

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Identifying axes a record can carry, in display order; whichever are
/// present label the record in the failure report so "records[17]" reads
/// as the cell it is.
constexpr const char* kContextKeys[] = {
    "device", "mapping", "layout",  "policy", "variant",    "interleaver",
    "channel", "rs_k",   "spb",     "queue_depth", "side",  "bench",
};

std::string context_label(const Json& v) {
  if (!v.is_object()) return "";
  std::string label;
  for (const char* key : kContextKeys) {
    if (!v.contains(key)) continue;
    const Json& field = v.at(key);
    if (!label.empty()) label += '/';
    if (field.is_string()) {
      label += field.as_string();
    } else if (field.is_number()) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%lld",
                    static_cast<long long>(field.as_int()));
      label += buf;
    }
  }
  return label;
}

std::string fmt(double d) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.10g", d);
  return buf;
}

class Comparer {
 public:
  Comparer(const CompareOptions& options, CompareReport& report)
      : opt_(options), report_(report) {}

  void walk(const std::string& path, const Json& base, const Json& cand,
            MetricKind kind) {
    if (kind == MetricKind::Ignored) {
      ++report_.metrics_ignored;
      return;
    }
    if (base.is_object() || cand.is_object()) {
      walk_object(path, base, cand);
      return;
    }
    if (base.is_array() || cand.is_array()) {
      walk_array(path, base, cand);
      return;
    }
    leaf(path, base, cand, kind);
  }

 private:
  void structural(const std::string& path, const std::string& what) {
    report_.failures.push_back({path, what, true});
  }

  void walk_object(const std::string& path, const Json& base, const Json& cand) {
    if (!base.is_object() || !cand.is_object()) {
      structural(path, "type mismatch (object vs non-object)");
      return;
    }
    for (const auto& [key, bval] : base.as_object()) {
      const std::string child = path.empty() ? key : path + "." + key;
      if (!cand.contains(key)) {
        if (classify_metric(key) == MetricKind::Ignored) continue;
        structural(child, "missing from candidate (schema drift — re-baseline?)");
        continue;
      }
      walk(child, bval, cand.at(key), classify_metric(key));
    }
    for (const auto& [key, cval] : cand.as_object()) {
      (void)cval;
      if (!base.contains(key) && classify_metric(key) != MetricKind::Ignored) {
        const std::string child = path.empty() ? key : path + "." + key;
        structural(child, "not in baseline (schema drift — re-baseline?)");
      }
    }
  }

  void walk_array(const std::string& path, const Json& base, const Json& cand) {
    if (!base.is_array() || !cand.is_array()) {
      structural(path, "type mismatch (array vs non-array)");
      return;
    }
    const auto& b = base.as_array();
    const auto& c = cand.as_array();
    if (b.size() != c.size()) {
      structural(path, "length " + std::to_string(b.size()) + " vs " +
                           std::to_string(c.size()));
      return;
    }
    for (std::size_t i = 0; i < b.size(); ++i) {
      std::string child = path + "[" + std::to_string(i) + "]";
      const std::string label = context_label(b[i]);
      if (!label.empty()) child += "(" + label + ")";
      walk(child, b[i], c[i], MetricKind::Exact);
    }
  }

  void leaf(const std::string& path, const Json& base, const Json& cand,
            MetricKind kind) {
    if (base.is_number() && cand.is_number()) {
      number(path, base.as_double(), cand.as_double(), kind);
      return;
    }
    ++report_.metrics_compared;
    if (base.type() != cand.type()) {
      structural(path, "type mismatch");
      return;
    }
    if (base.is_string() && base.as_string() != cand.as_string()) {
      report_.failures.push_back(
          {path, "\"" + base.as_string() + "\" vs \"" + cand.as_string() + "\"",
           false});
    } else if (base.is_bool() && base.as_bool() != cand.as_bool()) {
      report_.failures.push_back(
          {path, std::string(base.as_bool() ? "true" : "false") + " vs " +
                     (cand.as_bool() ? "true" : "false"),
           false});
    }
  }

  void number(const std::string& path, double b, double c, MetricKind kind) {
    ++report_.metrics_compared;
    switch (kind) {
      case MetricKind::Exact: {
        const double tol = opt_.exact_rel_tol * std::max(std::abs(b), std::abs(c));
        if (std::abs(b - c) > tol) {
          report_.failures.push_back(
              {path, "baseline " + fmt(b) + " vs candidate " + fmt(c) +
                         " (exact metric)",
               false});
        }
        break;
      }
      case MetricKind::TimeUp:
        // One-sided: only a slowdown past the band fails. A zero baseline
        // carries no timing signal, so it never fails.
        if (b > 0.0 && c > b * (1.0 + opt_.time_tol_pct / 100.0)) {
          report_.failures.push_back(
              {path, "slowed " + fmt(b) + " -> " + fmt(c) + " (+" +
                         fmt(100.0 * (c - b) / b) + "%, band " +
                         fmt(opt_.time_tol_pct) + "%)",
               false});
        }
        break;
      case MetricKind::TimeDown:
        if (b > 0.0 && c < b * (1.0 - opt_.time_tol_pct / 100.0)) {
          report_.failures.push_back(
              {path, "rate dropped " + fmt(b) + " -> " + fmt(c) + " (-" +
                         fmt(100.0 * (b - c) / b) + "%, band " +
                         fmt(opt_.time_tol_pct) + "%)",
               false});
        }
        break;
      case MetricKind::Size:
        if (c > b * (1.0 + opt_.size_tol_pct / 100.0)) {
          report_.failures.push_back(
              {path, "grew " + fmt(b) + " -> " + fmt(c) + " bytes (band " +
                         fmt(opt_.size_tol_pct) + "%)",
               false});
        }
        break;
      case MetricKind::Ignored:
        --report_.metrics_compared;
        ++report_.metrics_ignored;
        break;
    }
  }

  const CompareOptions& opt_;
  CompareReport& report_;
};

}  // namespace

MetricKind classify_metric(const std::string& key) {
  // Run-dependent fields: worker count is a harness knob, the process
  // allocation counter includes startup noise from other code,
  // generated_* stamps are provenance, and simd_backend names whichever
  // GF(2^8) kernel CPUID dispatch (or TBI_SIMD) picked on this host — all
  // backends are byte-identical, so a backend difference (or the key
  // appearing against a pre-SIMD baseline) is not drift.
  if (key == "threads" || key == "process_allocations" ||
      key == "simd_backend" || key.rfind("generated", 0) == 0) {
    return MetricKind::Ignored;
  }
  // Host wall-clock: loose one-sided bands, direction by unit.
  if (ends_with(key, "_seconds") || ends_with(key, "_ns") ||
      ends_with(key, "ns_per_pick")) {
    return MetricKind::TimeUp;
  }
  if (ends_with(key, "_per_second")) return MetricKind::TimeDown;
  // Byte sizes: deterministic in principle but allocator-rounding adjacent;
  // one-sided growth band.
  if (ends_with(key, "_peak_bytes")) return MetricKind::Size;
  return MetricKind::Exact;
}

std::string CompareReport::render() const {
  std::string out = "bench_compare: " + std::to_string(metrics_compared) +
                    " metrics compared, " + std::to_string(metrics_ignored) +
                    " ignored, " + std::to_string(failures.size()) +
                    (failures.size() == 1 ? " failure\n" : " failures\n");
  for (const auto& f : failures) {
    out += std::string("  FAIL ") + (f.structural ? "[structural] " : "") +
           f.path + ": " + f.what + "\n";
  }
  return out;
}

CompareReport compare_bench(const Json& baseline, const Json& candidate,
                            const CompareOptions& options) {
  CompareReport report;
  Comparer cmp(options, report);
  cmp.walk("", baseline, candidate, MetricKind::Exact);
  return report;
}

}  // namespace tbi::perf
