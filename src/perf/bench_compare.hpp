/// \file bench_compare.hpp
/// Bench-trend comparison: diff a fresh bench `--json` document against a
/// committed `BENCH_*.json` baseline with per-metric tolerance classes.
///
/// The simulator is deterministic, so most fields — burst counts, row
/// hits, FER numerators, energy — must match the baseline *exactly* (up
/// to float round-off). Host-timing fields (`*_seconds`, `*_ns`,
/// `*_per_second`, `ns_per_pick`) are machine-dependent and only checked
/// with a loose one-sided percentage band: getting faster never fails,
/// regressing past the band does. Byte-size fields get their own
/// (tighter) one-sided band, and a few fields that legitimately vary run
/// to run (`threads`, `process_allocations`, `generated_*`) are ignored.
/// Structural drift — missing keys, extra keys, record-count changes —
/// always fails: a schema change requires re-baselining on purpose.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/json.hpp"

namespace tbi::perf {

/// Tolerance class of one metric key.
enum class MetricKind {
  Exact,    ///< deterministic counter/derived value: tight relative tol
  TimeUp,   ///< host timing where higher is worse (*_seconds, *_ns)
  TimeDown, ///< host rate where lower is worse (*_per_second)
  Size,     ///< byte sizes: one-sided band, higher is worse
  Ignored,  ///< run-dependent, never compared
};

/// Classify a JSON object key by the naming conventions above.
MetricKind classify_metric(const std::string& key);

struct CompareOptions {
  /// One-sided band for TimeUp/TimeDown metrics, percent of baseline.
  double time_tol_pct = 50.0;
  /// One-sided band for Size metrics, percent of baseline.
  double size_tol_pct = 10.0;
  /// Relative tolerance for Exact metrics (float round-off only).
  double exact_rel_tol = 1e-9;
};

/// One comparison failure, addressed by JSON path.
struct Diff {
  std::string path;  ///< e.g. "records[3](LPDDR5-8533/optimized/...).fer"
  std::string what;  ///< human-readable cause, values included
  bool structural = false;  ///< schema drift rather than a value band
};

struct CompareReport {
  std::size_t metrics_compared = 0;
  std::size_t metrics_ignored = 0;
  std::vector<Diff> failures;

  bool ok() const { return failures.empty(); }
  /// Multi-line per-cell report (empty summary line when ok()).
  std::string render() const;
};

/// Compare candidate against baseline. Both are whole bench documents
/// (objects with config/records/...); any JSON value works.
CompareReport compare_bench(const Json& baseline, const Json& candidate,
                            const CompareOptions& options = {});

}  // namespace tbi::perf
