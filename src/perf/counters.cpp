#include "perf/counters.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <new>

namespace tbi::perf {

namespace {

// Constant-initialized counters: safe to bump from any allocation,
// including ones that run before main() or during static destruction.
thread_local AllocTotals t_totals;
std::atomic<std::uint64_t> g_process_count{0};

inline void note_alloc(std::size_t bytes) noexcept {
  ++t_totals.count;
  t_totals.bytes += bytes;
  g_process_count.fetch_add(1, std::memory_order_relaxed);
}

void* counted_alloc(std::size_t size) noexcept {
  void* p = std::malloc(size != 0 ? size : 1);
  if (p != nullptr) note_alloc(size);
  return p;
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) noexcept {
  if (align < sizeof(void*)) align = sizeof(void*);
  void* p = nullptr;
  if (posix_memalign(&p, align, size != 0 ? size : 1) != 0) return nullptr;
  note_alloc(size);
  return p;
}

}  // namespace

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

AllocTotals thread_alloc_totals() { return t_totals; }

std::uint64_t process_alloc_count() {
  return g_process_count.load(std::memory_order_relaxed);
}

}  // namespace tbi::perf

// ---------------------------------------------------------------------------
// Global operator new/delete replacement — the allocation-counting hook.
// malloc-backed so sanitizers (which intercept malloc/free) still see
// every allocation; counting is two thread-local adds plus one relaxed
// atomic, negligible next to the allocation itself.
// ---------------------------------------------------------------------------

void* operator new(std::size_t size) {
  void* p = tbi::perf::counted_alloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  void* p = tbi::perf::counted_alloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return tbi::perf::counted_alloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return tbi::perf::counted_alloc(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  void* p = tbi::perf::counted_aligned_alloc(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  void* p = tbi::perf::counted_aligned_alloc(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return tbi::perf::counted_aligned_alloc(size, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return tbi::perf::counted_aligned_alloc(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t, const std::nothrow_t&) noexcept {
  std::free(p);
}
