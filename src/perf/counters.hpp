/// \file counters.hpp
/// Cheap in-process performance counters (ddprof-style observability).
///
/// Three primitives, all cheap enough to stay on in release builds:
///
///  * An allocation-counting hook: the library replaces the global
///    `operator new` family with a malloc-backed version that bumps a
///    thread-local counter (plus one relaxed process-wide atomic) per
///    allocation. `AllocationScope` reads deltas of the calling thread's
///    counter, which is exactly right for sweep cells: one job runs
///    start-to-finish on one worker thread, so a scope opened inside the
///    job sees that job's allocations and nobody else's. The FER frame
///    loop uses it to assert the steady state allocates nothing.
///  * `now_ns()`: a monotonic nanosecond timestamp (steady clock, two
///    calls per measured region — never per-iteration).
///  * Derived rates stamped into every bench `--json` record (ns per
///    scheduler pick, channel symbols per second, allocations per frame)
///    so a perf regression localizes itself instead of needing a bisect.
#pragma once

#include <cstddef>
#include <cstdint>

namespace tbi::perf {

/// Monotonic nanosecond timestamp (steady clock).
std::uint64_t now_ns();

/// Allocation counters; totals are since thread (or process) start.
struct AllocTotals {
  std::uint64_t count = 0;  ///< number of operator-new allocations
  std::uint64_t bytes = 0;  ///< sum of requested sizes
};

/// Totals of the calling thread.
AllocTotals thread_alloc_totals();

/// Process-wide allocation count (relaxed atomic; all threads).
std::uint64_t process_alloc_count();

/// Delta window over the calling thread's allocation counters. Open it,
/// run the region of interest, read `allocations()` / `bytes()`. Must be
/// read on the thread that constructed it.
class AllocationScope {
 public:
  AllocationScope() : start_(thread_alloc_totals()) {}

  /// Move the window start to now (e.g. after a warm-up frame).
  void restart() { start_ = thread_alloc_totals(); }

  std::uint64_t allocations() const {
    return thread_alloc_totals().count - start_.count;
  }
  std::uint64_t bytes() const { return thread_alloc_totals().bytes - start_.bytes; }

 private:
  AllocTotals start_;
};

}  // namespace tbi::perf
