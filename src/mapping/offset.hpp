/// \file offset.hpp
/// Row-offset adapter: places a mapping's image in a different DRAM row
/// region. Used for double-buffered continuous operation, where the
/// interleaver block being read and the block being written must occupy
/// disjoint pages (sim::run_streaming).
#pragma once

#include <memory>
#include <stdexcept>

#include "mapping/mapping.hpp"

namespace tbi::mapping {

class RowOffsetMapping final : public IndexMapping {
 public:
  /// Wraps \p inner, adding \p row_offset to every produced DRAM row.
  /// \p rows_per_bank bounds the shifted image (throws when exceeded,
  /// checked lazily per map() in debug and at construction for the
  /// worst-case row the inner mapping reports through its space()).
  RowOffsetMapping(std::unique_ptr<IndexMapping> inner, std::uint32_t row_offset,
                   std::uint32_t rows_per_bank)
      : inner_(std::move(inner)), row_offset_(row_offset), rows_(rows_per_bank) {
    if (!inner_) throw std::invalid_argument("RowOffsetMapping: null inner mapping");
  }

  dram::Address map(std::uint64_t i, std::uint64_t j) const override {
    dram::Address a = inner_->map(i, j);
    a.row += row_offset_;
    if (a.row >= rows_) {
      throw std::out_of_range("RowOffsetMapping: shifted row beyond device");
    }
    return a;
  }

  const IndexSpace& space() const override { return inner_->space(); }

  std::string name() const override {
    return inner_->name() + "+rows:" + std::to_string(row_offset_);
  }

  std::uint32_t row_offset() const { return row_offset_; }

 private:
  std::unique_ptr<IndexMapping> inner_;
  std::uint32_t row_offset_;
  std::uint32_t rows_;
};

}  // namespace tbi::mapping
