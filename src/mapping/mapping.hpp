/// \file mapping.hpp
/// Interface: interleaver index space -> DRAM address.
///
/// The triangular block interleaver is a 2-D index space at burst
/// granularity: position (row i, column j) holds one DRAM burst worth of
/// symbols (the stage-1 SRAM interleaver has already grouped symbols of
/// different code words into each burst, paper §II). The write phase
/// visits positions row-wise, the read phase column-wise; an IndexMapping
/// decides which DRAM {bank, row, column} each position lives in — that
/// choice alone determines the achievable bandwidth.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "dram/types.hpp"

namespace tbi::mapping {

/// Geometry of the (padded) burst-granular index space.
struct IndexSpace {
  std::uint64_t side = 0;    ///< triangle side n: row i holds n-i bursts
  std::uint64_t width = 0;   ///< padded width  (>= side)
  std::uint64_t height = 0;  ///< padded height (>= side)
};

class IndexMapping {
 public:
  virtual ~IndexMapping() = default;

  /// Map position (row \p i, column \p j), 0 <= i,j < side(), j < n-i for
  /// triangular workloads (rectangular callers may use the full square).
  virtual dram::Address map(std::uint64_t i, std::uint64_t j) const = 0;

  virtual const IndexSpace& space() const = 0;
  virtual std::string name() const = 0;
};

}  // namespace tbi::mapping
