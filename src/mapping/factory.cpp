#include "mapping/factory.hpp"

#include <stdexcept>

namespace tbi::mapping {

std::unique_ptr<IndexMapping> make_mapping(const std::string& spec,
                                           const dram::DeviceConfig& device,
                                           std::uint64_t side) {
  using dram::AddressLayout;
  if (spec == "row-major") {
    return std::make_unique<RowMajorMapping>(device, side, AddressLayout::RoBaCoBg);
  }
  if (spec == "row-major/robaco") {
    return std::make_unique<RowMajorMapping>(device, side, AddressLayout::RoBaCo);
  }
  if (spec == "row-major/rocoba") {
    return std::make_unique<RowMajorMapping>(device, side, AddressLayout::RoCoBa);
  }
  if (spec == "row-major/xor") {
    return std::make_unique<RowMajorMapping>(device, side, AddressLayout::RoBaCoBgXor);
  }
  if (spec == "optimized") {
    return std::make_unique<OptimizedMapping>(device, side);
  }
  if (spec == "optimized/diag") {
    return std::make_unique<OptimizedMapping>(
        device, side, OptimizedOptions{true, false, false});
  }
  if (spec == "optimized/tile") {
    return std::make_unique<OptimizedMapping>(
        device, side, OptimizedOptions{false, true, false});
  }
  if (spec == "optimized/diag+tile") {
    return std::make_unique<OptimizedMapping>(
        device, side, OptimizedOptions{true, true, false});
  }
  if (spec == "optimized/none") {
    return std::make_unique<OptimizedMapping>(
        device, side, OptimizedOptions{false, false, false});
  }
  throw std::invalid_argument("make_mapping: unknown spec '" + spec + "'");
}

}  // namespace tbi::mapping
