#include "mapping/optimized.hpp"

#include <stdexcept>

#include "common/bits.hpp"
#include "common/mathutil.hpp"

namespace tbi::mapping {

OptimizedMapping::OptimizedMapping(const dram::DeviceConfig& device,
                                   std::uint64_t side, OptimizedOptions options)
    : options_(options),
      banks_(device.banks),
      cpp_(device.columns_per_page),
      rows_(device.rows_per_bank) {
  if (side == 0) throw std::invalid_argument("OptimizedMapping: side must be > 0");
  if (options_.column_offset && !(options_.diagonal_banks && options_.page_tiling)) {
    throw std::invalid_argument(
        "OptimizedMapping: column offset requires diagonal banks and page tiling");
  }

  // Tile area: one page per bank per tile (full scheme) or exactly one
  // page per tile (tiling-only ablation). Near-square power-of-two split.
  if (options_.page_tiling) {
    const std::uint64_t area = options_.diagonal_banks ? banks_ * cpp_ : cpp_;
    const unsigned k = ilog2(area);
    tile_w_ = std::uint64_t{1} << ((k + 1) / 2);
    tile_h_ = std::uint64_t{1} << (k / 2);
    if (options_.diagonal_banks && (tile_w_ % banks_ != 0 || tile_h_ % banks_ != 0)) {
      // Rebalance so both tile dimensions stay multiples of NB (needed for
      // the per-bank column bijection); favor width.
      tile_h_ = banks_;
      tile_w_ = area / tile_h_;
      if (tile_w_ % banks_ != 0) {
        throw std::invalid_argument("OptimizedMapping: page/bank geometry unsupported");
      }
    }
  } else if (options_.diagonal_banks) {
    tile_w_ = banks_;  // padding granularity only
    tile_h_ = banks_;
  } else {
    tile_w_ = 1;
    tile_h_ = 1;
  }

  space_.side = side;
  space_.width = round_up(side, tile_w_);
  space_.height = round_up(side, tile_h_);
  tiles_x_ = space_.width / tile_w_;

  if (options_.column_offset) {
    dx_ = tile_w_ / banks_;
    dy_ = tile_h_ / banks_;
  }

  // Capacity check: number of DRAM rows consumed per bank.
  std::uint64_t rows_needed = 0;
  if (options_.page_tiling && options_.diagonal_banks) {
    rows_needed = tiles_x_ * (space_.height / tile_h_);
  } else if (options_.page_tiling) {
    rows_needed = tiles_x_ * (space_.height / tile_h_);  // one row id per tile
  } else {
    rows_needed = div_ceil(space_.width * space_.height, banks_ * cpp_);
  }
  if (rows_needed > rows_) {
    throw std::invalid_argument("OptimizedMapping: interleaver exceeds device rows");
  }

  // tile_w_/tile_h_ are powers of two by construction; NB and CPP are for
  // every JEDEC geometry, enabling the pure add/shift/mask hot path.
  pow2_ = is_pow2(banks_) && is_pow2(cpp_);
  if (pow2_) {
    bank_shift_ = ilog2(banks_);
    tw_shift_ = ilog2(tile_w_);
    th_shift_ = ilog2(tile_h_);
  }
}

dram::Address OptimizedMapping::map(std::uint64_t i, std::uint64_t j) const {
  // Paper orientation: x runs along a code-word row (write direction),
  // y down the columns (read direction).
  const std::uint64_t x = j;
  const std::uint64_t y = i;
  if (options_.page_tiling && options_.diagonal_banks) return map_full(x, y);
  if (options_.page_tiling) return map_tiling_only(x, y);
  if (options_.diagonal_banks) return map_diagonal_only(x, y);
  return map_none(x, y);
}

dram::Address OptimizedMapping::map_full(std::uint64_t x, std::uint64_t y) const {
  if (pow2_) {
    // Add/shift/mask form. The circular offsets stay reductions by one
    // conditional subtract because bank*dx_ < Tw <= width (same for y).
    const std::uint64_t bank = (x + y) & (banks_ - 1);             // optimization 1
    std::uint64_t u = x + bank * dx_;                              // optimization 3
    if (u >= space_.width) u -= space_.width;
    std::uint64_t v = y + bank * dy_;
    if (v >= space_.height) v -= space_.height;
    const std::uint64_t tile_x = u >> tw_shift_;                   // optimization 2
    const std::uint64_t tile_y = v >> th_shift_;
    const std::uint64_t rank =
        ((v & (tile_h_ - 1)) << tw_shift_) | (u & (tile_w_ - 1));
    dram::Address a;
    a.bank = static_cast<std::uint32_t>(bank);
    a.row = static_cast<std::uint32_t>(tile_y * tiles_x_ + tile_x);
    a.column = static_cast<std::uint32_t>(rank >> bank_shift_);
    return a;
  }
  const std::uint64_t bank = (x + y) % banks_;                     // optimization 1
  const std::uint64_t u = (x + bank * dx_) % space_.width;         // optimization 3
  const std::uint64_t v = (y + bank * dy_) % space_.height;
  const std::uint64_t tile_x = u / tile_w_;                        // optimization 2
  const std::uint64_t tile_y = v / tile_h_;
  const std::uint64_t rank = (v % tile_h_) * tile_w_ + (u % tile_w_);
  dram::Address a;
  a.bank = static_cast<std::uint32_t>(bank);
  a.row = static_cast<std::uint32_t>(tile_y * tiles_x_ + tile_x);
  a.column = static_cast<std::uint32_t>(rank / banks_);
  return a;
}

dram::Address OptimizedMapping::map_tiling_only(std::uint64_t x, std::uint64_t y) const {
  const std::uint64_t tile_x = x / tile_w_;
  const std::uint64_t tile_y = y / tile_h_;
  dram::Address a;
  a.bank = static_cast<std::uint32_t>((tile_x + tile_y) % banks_);
  a.row = static_cast<std::uint32_t>(tile_y * tiles_x_ + tile_x);
  a.column = static_cast<std::uint32_t>((y % tile_h_) * tile_w_ + (x % tile_w_));
  return a;
}

dram::Address OptimizedMapping::map_diagonal_only(std::uint64_t x, std::uint64_t y) const {
  const std::uint64_t bank = (x + y) % banks_;
  // Per-bank row-major linearization; along a row the bank's positions sit
  // every NB cells, so x/NB enumerates them.
  const std::uint64_t p = y * (space_.width / banks_) + x / banks_;
  dram::Address a;
  a.bank = static_cast<std::uint32_t>(bank);
  a.column = static_cast<std::uint32_t>(p % cpp_);
  a.row = static_cast<std::uint32_t>(p / cpp_);
  return a;
}

dram::Address OptimizedMapping::map_none(std::uint64_t x, std::uint64_t y) const {
  // Square row-major with a conventional Ro-Ba-Co split; only reachable in
  // the "all optimizations off" ablation corner.
  const std::uint64_t linear = y * space_.width + x;
  dram::Address a;
  a.column = static_cast<std::uint32_t>(linear % cpp_);
  a.bank = static_cast<std::uint32_t>((linear / cpp_) % banks_);
  a.row = static_cast<std::uint32_t>(linear / (cpp_ * banks_));
  return a;
}

std::string OptimizedMapping::name() const {
  std::string n = "optimized[";
  n += options_.diagonal_banks ? "diag" : "-";
  n += options_.page_tiling ? ",tile" : ",-";
  n += options_.column_offset ? ",offset]" : ",-]";
  return n;
}

}  // namespace tbi::mapping
