/// \file factory.hpp
/// Name-based construction of mappings, used by CLI tools and sweeps.
#pragma once

#include <memory>
#include <string>

#include "dram/decoder.hpp"
#include "mapping/mapping.hpp"
#include "mapping/optimized.hpp"
#include "mapping/rowmajor.hpp"

namespace tbi::mapping {

/// Recognized specs:
///   "row-major"            packed triangular + Ro-Ba-CoH-Bg-CoL decode
///   "row-major/robaco"     packed triangular + naive Ro-Ba-Co decode
///   "row-major/rocoba"     packed triangular + Ro-Co-Ba decode
///   "row-major/xor"        packed triangular + bank-XOR decode
///   "optimized"            all three optimizations
///   "optimized/diag"       diagonal banks only
///   "optimized/tile"       page tiling only
///   "optimized/diag+tile"  both, without the column offset
///   "optimized/none"       all optimizations disabled (square row-major)
/// Throws std::invalid_argument for unknown specs.
std::unique_ptr<IndexMapping> make_mapping(const std::string& spec,
                                           const dram::DeviceConfig& device,
                                           std::uint64_t side);

}  // namespace tbi::mapping
