/// \file optimized.hpp
/// The paper's optimized mapping (§II), reconstructed as documented in
/// DESIGN.md §3. Three composable optimizations:
///
///  1. Diagonal bank round-robin (Fig. 1a): bank = (x + y) mod NB with
///     bank-group-major flat bank ids, so the bank group switches with
///     every access in both walk directions and consecutive bursts pay
///     tCCD_S instead of tCCD_L.
///  2. Page tiling (Fig. 1b/c): the index space is cut into Tw x Th tiles
///     with Tw*Th = NB*CPP cells; each tile holds exactly one DRAM page
///     per bank, so page misses are split evenly between the row-wise and
///     the column-wise phase (one miss per bank per tile crossing).
///  3. Bank-dependent column offset (Fig. 1d): the coordinates used for
///     tile lookup are circularly shifted by (Tw/NB, Th/NB) per bank
///     index, staggering the tile-boundary page misses of the NB banks
///     evenly across the crossing instead of letting them all stall the
///     bus simultaneously.
///
/// Every step is an add / shift / mask — the mapping is hardware-friendly
/// exactly as the paper claims; bench_mapping_cost measures it.
#pragma once

#include "dram/standards.hpp"
#include "mapping/mapping.hpp"

namespace tbi::mapping {

/// Feature toggles for the ablation study (E5). The full optimized
/// mapping is the default; disabling a flag degenerates as described in
/// DESIGN.md §3.
struct OptimizedOptions {
  bool diagonal_banks = true;
  bool page_tiling = true;
  bool column_offset = true;  ///< requires diagonal_banks && page_tiling
};

class OptimizedMapping final : public IndexMapping {
 public:
  OptimizedMapping(const dram::DeviceConfig& device, std::uint64_t side,
                   OptimizedOptions options = {});

  dram::Address map(std::uint64_t i, std::uint64_t j) const override;
  const IndexSpace& space() const override { return space_; }
  std::string name() const override;

  // Geometry introspection (tests, visualizer).
  std::uint64_t tile_width() const { return tile_w_; }
  std::uint64_t tile_height() const { return tile_h_; }
  std::uint64_t offset_dx() const { return dx_; }
  std::uint64_t offset_dy() const { return dy_; }
  const OptimizedOptions& options() const { return options_; }

 private:
  dram::Address map_full(std::uint64_t x, std::uint64_t y) const;
  dram::Address map_tiling_only(std::uint64_t x, std::uint64_t y) const;
  dram::Address map_diagonal_only(std::uint64_t x, std::uint64_t y) const;
  dram::Address map_none(std::uint64_t x, std::uint64_t y) const;

  IndexSpace space_;
  OptimizedOptions options_;
  std::uint64_t banks_ = 0;    ///< NB
  std::uint64_t cpp_ = 0;      ///< columns per page (bursts)
  std::uint64_t tile_w_ = 0;   ///< Tw
  std::uint64_t tile_h_ = 0;   ///< Th
  std::uint64_t tiles_x_ = 0;  ///< width / Tw
  std::uint64_t dx_ = 0;       ///< per-bank shift in x (Tw / NB)
  std::uint64_t dy_ = 0;       ///< per-bank shift in y (Th / NB)
  std::uint32_t rows_ = 0;     ///< rows_per_bank (bounds check)

  /// The paper's claim that every mapping step is an add / shift / mask
  /// holds whenever NB and CPP are powers of two (all JEDEC geometries).
  /// The constructor precomputes the shift/mask forms; map() keeps a
  /// div/mod fallback for exotic geometries.
  bool pow2_ = false;
  unsigned bank_shift_ = 0;   ///< log2(NB)
  unsigned tw_shift_ = 0;     ///< log2(Tw)
  unsigned th_shift_ = 0;     ///< log2(Th)
};

}  // namespace tbi::mapping
