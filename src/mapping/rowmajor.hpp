/// \file rowmajor.hpp
/// Baseline mapping: SRAM-style packed row-major linearization, decoded by
/// a conventional controller address layout (dram/decoder.hpp).
///
/// This is the paper's "Row-Major Mapping" column of Table I: the write
/// phase walks the linear address space sequentially (fast), while the
/// column-wise read phase strides by one interleaver row length per access
/// and thrashes DRAM pages (slow on fast speed grades).
#pragma once

#include "dram/decoder.hpp"
#include "mapping/mapping.hpp"

namespace tbi::mapping {

class RowMajorMapping final : public IndexMapping {
 public:
  /// \p side is the triangle side in bursts. \p packed selects the packed
  /// triangular linearization (row i starts at offset i*n - i(i-1)/2, no
  /// wasted storage, like the SRAM implementation); when false, rows are
  /// padded to the full square width (simpler hardware, 2x storage).
  RowMajorMapping(const dram::DeviceConfig& device, std::uint64_t side,
                  dram::AddressLayout layout = dram::AddressLayout::RoBaCoBg,
                  bool packed = true);

  dram::Address map(std::uint64_t i, std::uint64_t j) const override;
  const IndexSpace& space() const override { return space_; }
  std::string name() const override;

  /// The linear burst index before physical decoding (exposed for tests).
  std::uint64_t linear_index(std::uint64_t i, std::uint64_t j) const;

 private:
  IndexSpace space_;
  dram::AddressDecoder decoder_;
  bool packed_;
};

}  // namespace tbi::mapping
