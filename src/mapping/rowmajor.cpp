#include "mapping/rowmajor.hpp"

#include <stdexcept>

#include "common/mathutil.hpp"

namespace tbi::mapping {

RowMajorMapping::RowMajorMapping(const dram::DeviceConfig& device,
                                 std::uint64_t side, dram::AddressLayout layout,
                                 bool packed)
    : decoder_(device, layout), packed_(packed) {
  if (side == 0) throw std::invalid_argument("RowMajorMapping: side must be > 0");
  space_.side = side;
  space_.width = side;
  space_.height = side;
  const std::uint64_t bursts =
      packed_ ? triangular_number(side) : side * side;
  if (bursts > decoder_.capacity_bursts()) {
    throw std::invalid_argument("RowMajorMapping: interleaver exceeds device capacity");
  }
}

std::uint64_t RowMajorMapping::linear_index(std::uint64_t i, std::uint64_t j) const {
  return packed_ ? tri_row_offset(space_.side, i) + j : i * space_.width + j;
}

dram::Address RowMajorMapping::map(std::uint64_t i, std::uint64_t j) const {
  return decoder_.decode(linear_index(i, j));
}

std::string RowMajorMapping::name() const {
  return std::string("row-major[") + dram::to_string(decoder_.layout()) +
         (packed_ ? ",packed]" : ",square]");
}

}  // namespace tbi::mapping
