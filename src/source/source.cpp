#include "source/source.hpp"

#include <algorithm>
#include <stdexcept>

namespace tbi::source {

std::uint64_t ErrorSource::corrupt(std::uint64_t start,
                                   std::span<std::uint8_t> wire) {
  auto apply = [start, wire](const Corruption& e) {
    wire[e.wire_pos - start] ^= e.flip;
  };
  return events(start, wire.size(), EventSink(apply));
}

std::uint64_t ErrorSource::collect(std::uint64_t start, std::uint64_t span,
                                   std::vector<Corruption>& out) {
  auto append = [&out](const Corruption& e) { out.push_back(e); };
  return events(start, span, EventSink(append));
}

ChannelSource::ChannelSource(ChannelFactory factory, std::uint64_t seed,
                             std::uint64_t chunk_symbols)
    : factory_(std::move(factory)),
      seed_(seed),
      chunk_symbols_(chunk_symbols),
      rng_(seed) {
  if (!factory_) {
    throw std::invalid_argument("ChannelSource: null channel factory");
  }
  if (chunk_symbols_ == 0) {
    throw std::invalid_argument("ChannelSource: chunk_symbols must be > 0");
  }
  channel_ = factory_();
  if (!channel_) {
    throw std::invalid_argument("ChannelSource: factory produced no channel");
  }
}

void ChannelSource::rewind_if_behind(std::uint64_t start) {
  if (start < channel_->position()) {
    channel_ = factory_();
    rng_.reseed(seed_);
  }
}

std::uint64_t ChannelSource::events(std::uint64_t start, std::uint64_t span,
                                    EventSink sink) {
  rewind_if_behind(start);
  std::uint64_t count = 0;
  for (std::uint64_t off = 0; off < span; off += chunk_symbols_) {
    const std::uint64_t len = std::min(chunk_symbols_, span - off);
    chunk_.assign(static_cast<std::size_t>(len), 0);
    const std::uint64_t hits = channel_->apply_range(
        start + off, std::span<std::uint8_t>(chunk_.data(), len), rng_);
    if (hits == 0) continue;
    for (std::uint64_t i = 0; i < len; ++i) {
      if (chunk_[i] != 0) sink({start + off + i, chunk_[i]});
    }
    count += hits;
  }
  return count;
}

std::uint64_t ChannelSource::corrupt(std::uint64_t start,
                                     std::span<std::uint8_t> wire) {
  rewind_if_behind(start);
  return channel_->apply_range(start, wire, rng_);
}

const char* ChannelSource::name() const { return channel_->name(); }

MultiLinkSource::MultiLinkSource(std::vector<Link> links)
    : links_(std::move(links)) {
  if (links_.empty()) {
    throw std::invalid_argument("MultiLinkSource: need at least one link");
  }
  for (const Link& link : links_) {
    if (!link.source) {
      throw std::invalid_argument("MultiLinkSource: null link source");
    }
  }
}

std::uint64_t MultiLinkSource::events(std::uint64_t start, std::uint64_t span,
                                      EventSink sink) {
  const std::uint64_t n = links_.size();
  const std::uint64_t end = start + span;
  std::uint64_t count = 0;
  for (std::uint64_t l = 0; l < n; ++l) {
    // Link l owns global positions p with p % n == l, at local position
    // p / n. Count of link-l positions below X is ceil((X - l) / n).
    const std::uint64_t lo = start > l ? (start - l + n - 1) / n : 0;
    const std::uint64_t hi = end > l ? (end - l + n - 1) / n : 0;
    if (hi <= lo) continue;
    const std::uint64_t off = links_[l].phase_offset;
    auto remap = [&sink, off, n, l](const Corruption& e) {
      sink({(e.wire_pos - off) * n + l, e.flip});
    };
    count += links_[l].source->events(lo + off, hi - lo, EventSink(remap));
  }
  return count;
}

std::uint64_t MultiLinkSource::scratch_bytes() const {
  std::uint64_t total = 0;
  for (const Link& link : links_) {
    total += link.source->scratch_bytes();
  }
  return total;
}

}  // namespace tbi::source
