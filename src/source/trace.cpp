#include "source/trace.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace tbi::source {

std::string format_burst_event(const Corruption& event) {
  return std::to_string(event.wire_pos) + ' ' +
         std::to_string(static_cast<unsigned>(event.flip));
}

bool parse_burst_event(const std::string& line, Corruption& event) {
  std::istringstream ss(line);
  ss >> std::ws;
  if (ss.eof()) return false;          // blank line
  if (ss.peek() == '#') return false;  // comment
  std::uint64_t pos = 0;
  std::uint64_t flip = 0;
  if (!(ss >> pos >> flip)) {
    throw std::invalid_argument("burst trace: malformed event line: " + line);
  }
  if (flip == 0 || flip > 255) {
    throw std::invalid_argument("burst trace: flip out of range 1..255: " + line);
  }
  std::string rest;
  if (ss >> rest) {
    throw std::invalid_argument("burst trace: trailing junk on line: " + line);
  }
  event.wire_pos = pos;
  event.flip = static_cast<std::uint8_t>(flip);
  return true;
}

std::vector<Corruption> read_burst_trace(std::istream& in) {
  std::string line;
  if (!std::getline(in, line) || line != kBurstTraceHeader) {
    throw std::invalid_argument(
        std::string("burst trace: missing header '") + kBurstTraceHeader + "'");
  }
  std::vector<Corruption> events;
  Corruption event;
  while (std::getline(in, line)) {
    if (parse_burst_event(line, event)) events.push_back(event);
  }
  std::sort(events.begin(), events.end(),
            [](const Corruption& a, const Corruption& b) {
              return a.wire_pos < b.wire_pos;
            });
  return events;
}

BurstTraceWriter::BurstTraceWriter(std::ostream& out) : out_(out) {
  out_ << kBurstTraceHeader << '\n';
}

void BurstTraceWriter::comment(const std::string& text) {
  out_ << "# " << text << '\n';
}

void BurstTraceWriter::record(const Corruption& event) {
  out_ << format_burst_event(event) << '\n';
  ++events_written_;
}

TraceReplaySource::TraceReplaySource(std::vector<Corruption> events)
    : events_(std::move(events)) {
  std::sort(events_.begin(), events_.end(),
            [](const Corruption& a, const Corruption& b) {
              return a.wire_pos < b.wire_pos;
            });
}

std::unique_ptr<TraceReplaySource> TraceReplaySource::open(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("burst trace: cannot open " + path);
  }
  try {
    return std::make_unique<TraceReplaySource>(read_burst_trace(in));
  } catch (const std::invalid_argument& e) {
    throw std::runtime_error(std::string(e.what()) + " (in " + path + ")");
  }
}

std::uint64_t TraceReplaySource::events(std::uint64_t start, std::uint64_t span,
                                        EventSink sink) {
  const std::uint64_t end = start + span;
  auto it = std::lower_bound(events_.begin(), events_.end(), start,
                             [](const Corruption& e, std::uint64_t pos) {
                               return e.wire_pos < pos;
                             });
  std::uint64_t count = 0;
  for (; it != events_.end() && it->wire_pos < end; ++it) {
    sink(*it);
    ++count;
  }
  return count;
}

RecordingSource::RecordingSource(std::unique_ptr<ErrorSource> inner,
                                 std::unique_ptr<std::ostream> out)
    : inner_(std::move(inner)), out_(std::move(out)), writer_(*out_) {
  if (!inner_) {
    throw std::invalid_argument("RecordingSource: null inner source");
  }
}

std::unique_ptr<RecordingSource> RecordingSource::to_file(
    std::unique_ptr<ErrorSource> inner, const std::string& path) {
  auto out = std::make_unique<std::ofstream>(path);
  if (!*out) {
    throw std::runtime_error("burst trace: cannot write " + path);
  }
  return std::make_unique<RecordingSource>(std::move(inner), std::move(out));
}

std::uint64_t RecordingSource::events(std::uint64_t start, std::uint64_t span,
                                      EventSink sink) {
  auto tee = [this, &sink](const Corruption& e) {
    writer_.record(e);
    sink(e);
  };
  const std::uint64_t count = inner_->events(start, span, EventSink(tee));
  out_->flush();
  return count;
}

}  // namespace tbi::source
