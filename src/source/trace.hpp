/// \file trace.hpp
/// Burst-event trace format: record a channel's corruption events to a
/// file and replay them through the pipeline later.
///
/// The format is line-oriented text, like the DRAM command trace
/// (src/dram/trace.hpp) but over wire symbols instead of DRAM commands:
///
///     # tbi-burst-trace v1
///     # <any further comment lines>
///     <wire_pos> <flip>
///     ...
///
/// One event per line: the absolute wire position (decimal symbol
/// index) and the non-zero XOR flip mask (decimal, 1..255). Events may
/// appear in any order — multi-link recordings interleave streams — and
/// the loader sorts by wire position.
///
/// Recording and replaying the same configuration reproduces the exact
/// FER and corruption positions of the live run: channels are
/// data-independent, so the (position, flip) event set is the complete
/// channel state as far as the pipeline is concerned (DESIGN.md §6).
#pragma once

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "source/source.hpp"

namespace tbi::source {

/// Magic first line of every burst trace file.
inline constexpr const char* kBurstTraceHeader = "# tbi-burst-trace v1";

/// Serialize one event as "<wire_pos> <flip>".
std::string format_burst_event(const Corruption& event);

/// Parse one trace line into \p event. Returns false for comment ("#"
/// prefix) and blank lines; throws std::invalid_argument on malformed
/// input (missing fields, flip outside 1..255, trailing junk).
bool parse_burst_event(const std::string& line, Corruption& event);

/// Read a whole trace from a stream (header line required). Events are
/// returned sorted by wire position.
std::vector<Corruption> read_burst_trace(std::istream& in);

/// Streams events out as they are recorded; writes the header up front.
class BurstTraceWriter {
 public:
  explicit BurstTraceWriter(std::ostream& out);

  void comment(const std::string& text);
  void record(const Corruption& event);

  std::uint64_t events_written() const { return events_written_; }

 private:
  std::ostream& out_;
  std::uint64_t events_written_ = 0;
};

/// Replays a recorded event set as an ErrorSource. Stateless between
/// calls, so random access over ranges is free — any (start, span)
/// query is a binary search.
class TraceReplaySource final : public ErrorSource {
 public:
  /// Takes ownership of the events; sorts them by wire position.
  explicit TraceReplaySource(std::vector<Corruption> events);

  /// Load from a trace file; throws std::runtime_error if the file is
  /// missing or malformed.
  static std::unique_ptr<TraceReplaySource> open(const std::string& path);

  std::uint64_t events(std::uint64_t start, std::uint64_t span,
                       EventSink sink) override;

  const char* name() const override { return "trace-replay"; }

  std::uint64_t scratch_bytes() const override {
    return events_.capacity() * sizeof(Corruption);
  }

  std::uint64_t total_events() const { return events_.size(); }

 private:
  std::vector<Corruption> events_;
};

/// Tees an inner source's events into a BurstTraceWriter. Every event
/// that reaches the pipeline also reaches the trace, including through
/// corrupt() — the base-class corrupt routes through events(), so
/// nothing bypasses the writer.
class RecordingSource final : public ErrorSource {
 public:
  RecordingSource(std::unique_ptr<ErrorSource> inner,
                  std::unique_ptr<std::ostream> out);

  /// Record to a file; throws std::runtime_error if it cannot be opened.
  static std::unique_ptr<RecordingSource> to_file(
      std::unique_ptr<ErrorSource> inner, const std::string& path);

  std::uint64_t events(std::uint64_t start, std::uint64_t span,
                       EventSink sink) override;

  const char* name() const override { return inner_->name(); }

  std::uint64_t scratch_bytes() const override {
    return inner_->scratch_bytes();
  }

  std::uint64_t events_written() const { return writer_.events_written(); }

 private:
  std::unique_ptr<ErrorSource> inner_;
  std::unique_ptr<std::ostream> out_;
  BurstTraceWriter writer_;
};

}  // namespace tbi::source
