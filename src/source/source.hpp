/// \file source.hpp
/// Burst sources: the pipeline-facing abstraction over "where do
/// corruption events come from".
///
/// The FER pipeline historically called Channel::apply directly, which
/// welded it to live channel simulation: no replaying a recorded burst
/// trace, no composing several links into one wire stream. An
/// ErrorSource decouples that — it yields corruption events (wire
/// position + XOR flip) over any requested wire-position range, and the
/// pipeline consumes events without caring whether they came from a
/// channel model, a trace file, or N interleaved links (DESIGN.md §6).
///
/// The contract leans on the same property the streaming pipeline
/// already exploits: every channel's corruption is data-independent
/// (guaranteed non-zero XOR flips drawn independently of symbol
/// values), so running a channel over a zeroed scratch buffer recovers
/// the exact (position, flip) events it would have applied in place.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "channel/channel.hpp"

namespace tbi::source {

/// One corruption event on the wire stream.
struct Corruption {
  std::uint64_t wire_pos = 0;  ///< absolute wire position (symbol index)
  std::uint8_t flip = 0;       ///< non-zero XOR mask applied to the symbol
};

inline bool operator==(const Corruption& a, const Corruption& b) {
  return a.wire_pos == b.wire_pos && a.flip == b.flip;
}

/// Non-owning reference to a `void(const Corruption&)` callable.
///
/// Events flow source -> pipeline through this instead of std::function
/// so the per-frame hot path never allocates (a capturing lambda bigger
/// than the std::function small-buffer would heap-allocate every frame
/// and break the zero-steady-allocation invariant). The referenced
/// callable must outlive the events() call, which always holds for the
/// call-site lambdas used here.
class EventSink {
 public:
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, EventSink>>>
  EventSink(F&& f)  // NOLINT: implicit by design, mirrors function_ref
      : obj_(const_cast<void*>(static_cast<const void*>(std::addressof(f)))),
        call_([](void* obj, const Corruption& e) {
          (*static_cast<std::remove_reference_t<F>*>(obj))(e);
        }) {}

  void operator()(const Corruption& e) const { call_(obj_, e); }

 private:
  void* obj_;
  void (*call_)(void*, const Corruption&);
};

/// Yields corruption events over wire-position ranges.
///
/// Ranges are normally requested in increasing order (the pipeline walks
/// frames forward); implementations backed by stateful channels support
/// random access by rewinding to a fresh instance and skipping forward,
/// which is deterministic but costs the skipped draws. Events within one
/// call arrive in increasing wire_pos per underlying stream, but a
/// composite source may interleave streams, so consumers that need a
/// global order must sort (the streaming pipeline sorts by input index
/// anyway).
class ErrorSource {
 public:
  virtual ~ErrorSource() = default;

  /// Emit every corruption event in [start, start + span) into \p sink.
  /// Returns the number of events emitted.
  virtual std::uint64_t events(std::uint64_t start, std::uint64_t span,
                               EventSink sink) = 0;

  /// Corrupt \p wire in place as the range [start, start + wire.size()).
  /// The default XORs the events() stream into the buffer; sources that
  /// can write it directly (ChannelSource) override this as a fast path.
  virtual std::uint64_t corrupt(std::uint64_t start, std::span<std::uint8_t> wire);

  /// Convenience for tests and tools: append the range's events to \p out.
  std::uint64_t collect(std::uint64_t start, std::uint64_t span,
                        std::vector<Corruption>& out);

  virtual const char* name() const = 0;

  /// Bytes of internal scratch this source retains between calls — the
  /// pipeline folds this into its workspace_peak_bytes accounting so the
  /// paper-scale memory bound stays honest after the refactor.
  virtual std::uint64_t scratch_bytes() const { return 0; }
};

using ChannelFactory = std::function<std::unique_ptr<channel::Channel>()>;

/// Adapts a stateful Channel to the random-access ErrorSource contract.
///
/// Owns the channel instance and its RNG stream. Forward motion uses
/// Channel::apply_range (skipping any gap); a request behind the current
/// position rebuilds the channel from the factory and reseeds, then
/// skips forward — deterministic random access at the cost of replaying
/// the prefix draws (cheap for LEO, whose clean sample windows skip in
/// O(1); see leo.hpp).
class ChannelSource final : public ErrorSource {
 public:
  ChannelSource(ChannelFactory factory, std::uint64_t seed,
                std::uint64_t chunk_symbols);

  std::uint64_t events(std::uint64_t start, std::uint64_t span,
                       EventSink sink) override;

  /// Direct in-place fast path: byte-identical to the pre-source
  /// pipeline calling Channel::apply on the wire buffer.
  std::uint64_t corrupt(std::uint64_t start, std::span<std::uint8_t> wire) override;

  const char* name() const override;

  std::uint64_t scratch_bytes() const override { return chunk_.capacity(); }

  const channel::Channel& channel() const { return *channel_; }

 private:
  void rewind_if_behind(std::uint64_t start);

  ChannelFactory factory_;
  std::uint64_t seed_;
  std::uint64_t chunk_symbols_;
  std::unique_ptr<channel::Channel> channel_;
  Rng rng_;
  std::vector<std::uint8_t> chunk_;  ///< zeroed scan buffer for events()
};

/// Composes N per-link sources into one interleaved wire stream.
///
/// Global wire position p carries link p % N at that link's local
/// position p / N — symbol round-robin, the way a multi-lane ingestion
/// stage would merge per-fiber streams before the interleaver. Each link
/// keeps its own source (own channel instance, own seed) plus a phase
/// offset into its local stream, so links can model staggered
/// acquisition starts.
class MultiLinkSource final : public ErrorSource {
 public:
  struct Link {
    std::unique_ptr<ErrorSource> source;
    std::uint64_t phase_offset = 0;  ///< added to link-local positions
  };

  explicit MultiLinkSource(std::vector<Link> links);

  std::uint64_t events(std::uint64_t start, std::uint64_t span,
                       EventSink sink) override;

  const char* name() const override { return "multi-link"; }

  std::uint64_t scratch_bytes() const override;

  std::size_t link_count() const { return links_.size(); }

 private:
  std::vector<Link> links_;
};

}  // namespace tbi::source
