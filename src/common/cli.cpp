#include "common/cli.hpp"

#include <cstdlib>

namespace tbi {

void CliParser::add_option(const std::string& name, const std::string& value_hint,
                           const std::string& help) {
  options_.push_back({name, value_hint, help});
}

bool CliParser::parse(int argc, const char* const* argv) {
  auto is_declared = [&](const std::string& n) {
    for (const auto& o : options_) {
      if (o.name == n) return true;
    }
    return n == "help";
  };
  auto takes_value = [&](const std::string& n) {
    for (const auto& o : options_) {
      if (o.name == n) return !o.value_hint.empty();
    }
    return false;
  };

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    std::string key = arg;
    std::string val;
    bool has_val = false;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      key = arg.substr(0, eq);
      val = arg.substr(eq + 1);
      has_val = true;
    }
    if (!is_declared(key)) {
      error_ = "unknown option --" + key;
      return false;
    }
    if (!has_val && takes_value(key)) {
      if (i + 1 >= argc) {
        error_ = "option --" + key + " expects a value";
        return false;
      }
      val = argv[++i];
    }
    values_[key] = val;
  }
  return true;
}

std::string CliParser::get(const std::string& name, const std::string& fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t CliParser::get_int(const std::string& name, std::int64_t fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : std::strtoll(it->second.c_str(), nullptr, 0);
}

double CliParser::get_double(const std::string& name, double fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
}

std::string CliParser::usage() const {
  std::string out = program_ + " — " + summary_ + "\n\nOptions:\n";
  for (const auto& o : options_) {
    std::string line = "  --" + o.name;
    if (!o.value_hint.empty()) line += " <" + o.value_hint + ">";
    while (line.size() < 32) line += ' ';
    out += line + o.help + "\n";
  }
  out += "  --help";
  out += std::string(32 - 8, ' ');
  out += "show this text\n";
  return out;
}

}  // namespace tbi
