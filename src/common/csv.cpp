#include "common/csv.hpp"

#include <fstream>

namespace tbi {

std::string CsvWriter::escape(const std::string& cell) {
  const bool needs_quote = cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

std::string CsvWriter::str() const {
  std::string out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) out += ',';
      out += escape(row[i]);
    }
    out += '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& r : rows_) emit(r);
  return out;
}

bool CsvWriter::write_file(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  f << str();
  return static_cast<bool>(f);
}

}  // namespace tbi
