#include "common/net.hpp"

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace tbi::net {

namespace {

void set_cloexec(int fd) { ::fcntl(fd, F_SETFD, FD_CLOEXEC); }

struct AddrList {
  struct addrinfo* head = nullptr;
  ~AddrList() {
    if (head != nullptr) ::freeaddrinfo(head);
  }
};

bool resolve(const std::string& spec, bool passive, AddrList* out, std::string* err) {
  std::string host;
  std::string port;
  if (!split_hostport(spec, &host, &port, err)) return false;
  struct addrinfo hints = {};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = passive ? AI_PASSIVE : 0;
  const char* node = host.empty() ? nullptr : host.c_str();
  if (!passive && node == nullptr) {
    if (err != nullptr) *err = "connect address '" + spec + "' needs a host";
    return false;
  }
  const int rc = ::getaddrinfo(node, port.c_str(), &hints, &out->head);
  if (rc != 0) {
    if (err != nullptr) {
      *err = "cannot resolve '" + spec + "': " + ::gai_strerror(rc);
    }
    return false;
  }
  return true;
}

}  // namespace

void ignore_sigpipe() {
  struct sigaction sa = {};
  sa.sa_handler = SIG_IGN;
  ::sigaction(SIGPIPE, &sa, nullptr);
}

bool set_nonblocking(int fd, bool on) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  const int want = on ? flags | O_NONBLOCK : flags & ~O_NONBLOCK;
  return ::fcntl(fd, F_SETFL, want) == 0;
}

void set_tcp_nodelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

bool split_hostport(const std::string& spec, std::string* host, std::string* port,
                    std::string* err) {
  const auto colon = spec.rfind(':');
  if (colon == std::string::npos) {
    if (err != nullptr) *err = "address '" + spec + "' is not host:port";
    return false;
  }
  std::string h = spec.substr(0, colon);
  const std::string p = spec.substr(colon + 1);
  // IPv6 literals arrive bracketed ("[::1]:9000"); strip for getaddrinfo.
  if (h.size() >= 2 && h.front() == '[' && h.back() == ']') {
    h = h.substr(1, h.size() - 2);
  }
  if (p.empty() || p.find_first_not_of("0123456789") != std::string::npos) {
    if (err != nullptr) *err = "address '" + spec + "' has a non-numeric port";
    return false;
  }
  const unsigned long v = std::strtoul(p.c_str(), nullptr, 10);
  if (v > 65535) {
    if (err != nullptr) *err = "address '" + spec + "' port out of range";
    return false;
  }
  *host = h;
  *port = p;
  return true;
}

int listen_tcp(const std::string& spec, std::string* err) {
  AddrList addrs;
  if (!resolve(spec, /*passive=*/true, &addrs, err)) return -1;
  int last_errno = 0;
  for (const struct addrinfo* a = addrs.head; a != nullptr; a = a->ai_next) {
    const int fd = ::socket(a->ai_family, a->ai_socktype, a->ai_protocol);
    if (fd < 0) {
      last_errno = errno;
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    if (::bind(fd, a->ai_addr, a->ai_addrlen) == 0 && ::listen(fd, 16) == 0 &&
        set_nonblocking(fd, true)) {
      set_cloexec(fd);
      return fd;
    }
    last_errno = errno;
    ::close(fd);
  }
  if (err != nullptr) {
    *err = "cannot listen on '" + spec + "': " + std::strerror(last_errno);
  }
  return -1;
}

int accept_tcp(int listen_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) {
      set_cloexec(fd);
      return fd;
    }
    if (errno == EINTR) continue;
    return -1;  // EAGAIN (nothing pending) or a transient accept error
  }
}

int connect_tcp(const std::string& spec, unsigned timeout_ms, std::string* err) {
  AddrList addrs;
  if (!resolve(spec, /*passive=*/false, &addrs, err)) return -1;
  int last_errno = 0;
  for (const struct addrinfo* a = addrs.head; a != nullptr; a = a->ai_next) {
    const int fd = ::socket(a->ai_family, a->ai_socktype, a->ai_protocol);
    if (fd < 0) {
      last_errno = errno;
      continue;
    }
    set_cloexec(fd);
    set_nonblocking(fd, true);
    int rc;
    do {
      rc = ::connect(fd, a->ai_addr, a->ai_addrlen);
    } while (rc < 0 && errno == EINTR);
    if (rc < 0 && errno == EINPROGRESS) {
      struct pollfd p{fd, POLLOUT, 0};
      int ready;
      do {
        ready = ::poll(&p, 1, static_cast<int>(timeout_ms));
      } while (ready < 0 && errno == EINTR);
      if (ready > 0) {
        int soerr = 0;
        socklen_t len = sizeof soerr;
        ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &len);
        rc = soerr == 0 ? 0 : -1;
        if (rc < 0) last_errno = soerr;
      } else {
        rc = -1;
        last_errno = ETIMEDOUT;
      }
    } else if (rc < 0) {
      last_errno = errno;
    }
    if (rc == 0) {
      set_nonblocking(fd, false);
      set_tcp_nodelay(fd);
      return fd;
    }
    ::close(fd);
  }
  if (err != nullptr) {
    *err = "cannot connect to '" + spec + "': " + std::strerror(last_errno);
  }
  return -1;
}

std::uint16_t local_port(int fd) {
  struct sockaddr_storage ss = {};
  socklen_t len = sizeof ss;
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&ss), &len) != 0) return 0;
  if (ss.ss_family == AF_INET) {
    return ntohs(reinterpret_cast<struct sockaddr_in*>(&ss)->sin_port);
  }
  if (ss.ss_family == AF_INET6) {
    return ntohs(reinterpret_cast<struct sockaddr_in6*>(&ss)->sin6_port);
  }
  return 0;
}

}  // namespace tbi::net
