#include "common/bits.hpp"

namespace tbi {

std::uint64_t reverse_bits(std::uint64_t v, unsigned n) {
  std::uint64_t r = 0;
  for (unsigned i = 0; i < n; ++i) {
    r = (r << 1) | ((v >> i) & 1);
  }
  return r;
}

}  // namespace tbi
