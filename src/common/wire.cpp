#include "common/wire.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace tbi::wire {

namespace {

constexpr std::size_t kReadChunk = 65536;

const std::uint32_t* crc_table() {
  static const auto table = [] {
    static std::uint32_t t[256];
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int b = 0; b < 8; ++b) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

std::uint32_t crc_feed(std::uint32_t c, const std::uint8_t* data, std::size_t size) {
  const std::uint32_t* t = crc_table();
  for (std::size_t i = 0; i < size; ++i) {
    c = t[(c ^ data[i]) & 0xFF] ^ (c >> 8);
  }
  return c;
}

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t size) {
  return crc_feed(0xFFFFFFFFu, data, size) ^ 0xFFFFFFFFu;
}

std::uint32_t frame_crc(FrameType type, const std::uint8_t* payload, std::size_t size) {
  std::uint8_t head[5];
  head[0] = static_cast<std::uint8_t>(type);
  const auto len = static_cast<std::uint32_t>(size);
  head[1] = static_cast<std::uint8_t>(len);
  head[2] = static_cast<std::uint8_t>(len >> 8);
  head[3] = static_cast<std::uint8_t>(len >> 16);
  head[4] = static_cast<std::uint8_t>(len >> 24);
  std::uint32_t c = crc_feed(0xFFFFFFFFu, head, sizeof head);
  return crc_feed(c, payload, size) ^ 0xFFFFFFFFu;
}

std::vector<std::uint8_t> encode_frame(FrameType type, const std::uint8_t* payload,
                                       std::size_t size) {
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderBytes + size);
  put_u32(out, kMagic);
  out.push_back(static_cast<std::uint8_t>(type));
  put_u32(out, static_cast<std::uint32_t>(size));
  put_u32(out, frame_crc(type, payload, size));
  out.insert(out.end(), payload, payload + size);
  return out;
}

std::vector<std::uint8_t> encode_frame(FrameType type, const std::string& payload) {
  return encode_frame(type, reinterpret_cast<const std::uint8_t*>(payload.data()),
                      payload.size());
}

bool write_all(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t off = 0;
  while (off < size) {
    // MSG_NOSIGNAL turns a dead peer into EPIPE instead of killing the
    // process; pipes/regular fds answer ENOTSOCK and fall back to write.
    ssize_t n = ::send(fd, data + off, size - off, MSG_NOSIGNAL);
    if (n < 0 && errno == ENOTSOCK) n = ::write(fd, data + off, size - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        struct pollfd p{fd, POLLOUT, 0};
        ::poll(&p, 1, 1000);
        continue;
      }
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool write_frame(int fd, FrameType type, const std::string& payload) {
  const auto bytes = encode_frame(type, payload);
  return write_all(fd, bytes.data(), bytes.size());
}

FrameReader::Status FrameReader::pump(int fd) {
  std::uint8_t chunk[kReadChunk];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return Status::NeedMore;
      return Status::Eof;  // ECONNRESET and friends: peer is gone
    }
    if (n == 0) return Status::Eof;
    buf_.insert(buf_.end(), chunk, chunk + n);
    return Status::NeedMore;
  }
}

FrameReader::Status FrameReader::next(Frame* out) {
  if (corrupt_) return Status::Corrupt;
  // Reclaim the consumed prefix once it dominates the buffer.
  if (pos_ > 0 && pos_ >= buf_.size() / 2) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<long>(pos_));
    pos_ = 0;
  }
  const std::size_t avail = buf_.size() - pos_;
  if (avail < kHeaderBytes) return Status::NeedMore;
  const std::uint8_t* h = buf_.data() + pos_;
  if (get_u32(h) != kMagic) {
    corrupt_ = true;
    return Status::Corrupt;
  }
  const std::uint8_t type = h[4];
  const std::uint32_t len = get_u32(h + 5);
  const std::uint32_t crc = get_u32(h + 9);
  if (len > kMaxPayload) {
    corrupt_ = true;
    return Status::Corrupt;
  }
  if (avail < kHeaderBytes + len) return Status::NeedMore;
  const std::uint8_t* payload = h + kHeaderBytes;
  if (frame_crc(static_cast<FrameType>(type), payload, len) != crc) {
    corrupt_ = true;
    return Status::Corrupt;
  }
  out->type = static_cast<FrameType>(type);
  out->payload.assign(payload, payload + len);
  pos_ += kHeaderBytes + len;
  return Status::Frame;
}

FrameReader::Status read_frame(int fd, FrameReader& reader, Frame* out) {
  using Status = FrameReader::Status;
  for (;;) {
    const Status s = reader.next(out);
    if (s != Status::NeedMore) return s;
    struct pollfd p{fd, POLLIN, 0};
    // Blocking callers (workers) may sit on a nonblocking-capable fd;
    // poll first so pump's EAGAIN path never busy-loops.
    if (::poll(&p, 1, -1) < 0 && errno != EINTR) return Status::Eof;
    const Status r = reader.pump(fd);
    if (r == Status::Eof) {
      // Drain any complete frame that arrived with the FIN.
      const Status last = reader.next(out);
      return last == Status::Frame ? last : Status::Eof;
    }
  }
}

}  // namespace tbi::wire
