#include "common/fsio.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace tbi {

namespace {

/// write(2) the whole buffer, retrying on EINTR and short writes.
bool write_all_fd(int fd, const char* data, std::size_t size) {
  std::size_t off = 0;
  while (off < size) {
    const ssize_t n = ::write(fd, data + off, size - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

bool write_file_atomic(const std::string& path, const std::string& contents) {
  // Temp file in the same directory so the final rename() stays within one
  // filesystem (rename across mounts is a copy, not atomic). The pid keeps
  // concurrent writers of the same target from clobbering each other's
  // scratch file.
  const std::string tmp = path + "." + std::to_string(::getpid()) + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    std::fprintf(stderr, "error: cannot write '%s': %s\n", tmp.c_str(),
                 std::strerror(errno));
    return false;
  }
  bool ok = write_all_fd(fd, contents.data(), contents.size());
  // fsync before rename: otherwise the rename can hit the disk before the
  // data and a power cut leaves a committed-but-empty file.
  ok = ok && ::fsync(fd) == 0;
  ok = ::close(fd) == 0 && ok;
  ok = ok && ::rename(tmp.c_str(), path.c_str()) == 0;
  if (!ok) {
    std::fprintf(stderr, "error: failed writing '%s': %s\n", path.c_str(),
                 std::strerror(errno));
    ::unlink(tmp.c_str());
    return false;
  }
  return true;
}

AppendLog::~AppendLog() { close(); }

bool AppendLog::open(const std::string& path, bool truncate) {
  close();
  int flags = O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC;
  if (truncate) flags |= O_TRUNC;
  fd_ = ::open(path.c_str(), flags, 0644);
  if (fd_ < 0) {
    std::fprintf(stderr, "error: cannot open '%s': %s\n", path.c_str(),
                 std::strerror(errno));
    return false;
  }
  return true;
}

bool AppendLog::append_line(const std::string& line) {
  if (fd_ < 0) return false;
  std::string buf = line;
  buf += '\n';
  if (!write_all_fd(fd_, buf.data(), buf.size())) return false;
#if defined(__APPLE__)
  return ::fsync(fd_) == 0;
#else
  return ::fdatasync(fd_) == 0;
#endif
}

void AppendLog::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace tbi
