#include "common/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>

#include "common/fsio.hpp"

namespace tbi {

bool Json::as_bool() const {
  if (type_ != Type::Bool) throw JsonError("json: not a bool");
  return bool_;
}

double Json::as_double() const {
  if (type_ != Type::Number) throw JsonError("json: not a number");
  return num_;
}

std::int64_t Json::as_int() const {
  if (type_ != Type::Number) throw JsonError("json: not a number");
  return static_cast<std::int64_t>(std::llround(num_));
}

const std::string& Json::as_string() const {
  if (type_ != Type::String) throw JsonError("json: not a string");
  return str_;
}

const Json::Array& Json::as_array() const {
  if (type_ != Type::Array) throw JsonError("json: not an array");
  return arr_;
}

const Json::Object& Json::as_object() const {
  if (type_ != Type::Object) throw JsonError("json: not an object");
  return obj_;
}

const Json& Json::at(const std::string& key) const {
  const auto& o = as_object();
  auto it = o.find(key);
  if (it == o.end()) throw JsonError("json: missing key '" + key + "'");
  return it->second;
}

bool Json::contains(const std::string& key) const {
  return type_ == Type::Object && obj_.count(key) != 0;
}

double Json::get_or(const std::string& key, double fallback) const {
  return contains(key) ? at(key).as_double() : fallback;
}

std::string Json::get_or(const std::string& key, const std::string& fallback) const {
  return contains(key) ? at(key).as_string() : fallback;
}

bool Json::get_or(const std::string& key, bool fallback) const {
  return contains(key) ? at(key).as_bool() : fallback;
}

Json& Json::operator[](const std::string& key) {
  if (type_ == Type::Null) type_ = Type::Object;
  if (type_ != Type::Object) throw JsonError("json: not an object");
  return obj_[key];
}

void Json::push_back(Json v) {
  if (type_ == Type::Null) type_ = Type::Array;
  if (type_ != Type::Array) throw JsonError("json: not an array");
  arr_.push_back(std::move(v));
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    throw JsonError("json parse error at offset " + std::to_string(pos_) + ": " + what);
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  char get() {
    char c = peek();
    ++pos_;
    return c;
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  void expect(char c) {
    if (get() != c) fail(std::string("expected '") + c + "'");
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n]) ++n;
    if (s_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  Json parse_value() {
    skip_ws();
    char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail("bad literal");
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail("bad literal");
      case 'n':
        if (consume_literal("null")) return Json(nullptr);
        if (consume_literal("nan")) fail("nan is not valid JSON (serialize as null)");
        fail("bad literal");
      case 'N':
      case 'i':
      case 'I':
        fail("nan/inf is not valid JSON (serialize as null)");
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json::Object obj;
    skip_ws();
    if (peek() == '}') {
      get();
      return Json(std::move(obj));
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj[std::move(key)] = parse_value();
      skip_ws();
      char c = get();
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}'");
    }
    return Json(std::move(obj));
  }

  Json parse_array() {
    expect('[');
    Json::Array arr;
    skip_ws();
    if (peek() == ']') {
      get();
      return Json(std::move(arr));
    }
    for (;;) {
      arr.push_back(parse_value());
      skip_ws();
      char c = get();
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']'");
    }
    return Json(std::move(arr));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      char c = get();
      if (c == '"') break;
      if (c == '\\') {
        char e = get();
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = get();
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else fail("bad \\u escape");
            }
            // Encode as UTF-8 (BMP only; surrogate pairs unsupported).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: fail("bad escape");
        }
      } else {
        out += c;
      }
    }
    return out;
  }

  Json parse_number() {
    std::size_t start = pos_;
    if (peek() == '-') {
      get();
      if (pos_ < s_.size() &&
          (s_[pos_] == 'i' || s_[pos_] == 'I' || s_[pos_] == 'n' || s_[pos_] == 'N')) {
        fail("nan/inf is not valid JSON (serialize as null)");
      }
    }
    while (pos_ < s_.size() && (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                                s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
                                s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    char* end = nullptr;
    const std::string tok = s_.substr(start, pos_ - start);
    double d = std::strtod(tok.c_str(), &end);
    if (end != tok.c_str() + tok.size()) fail("bad number '" + tok + "'");
    // strtod saturates overflowing literals (e.g. "1e999") to infinity —
    // not a value JSON can round-trip, so reject instead of smuggling it in.
    if (!std::isfinite(d)) fail("number out of range '" + tok + "'");
    return Json(d);
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

void dump_string(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void dump_number(std::string& out, double d) {
  // JSON has no representation for NaN or infinity; "%.17g" would emit
  // bare nan/inf tokens that no conforming parser (including ours)
  // accepts. Serialize them as null so the document stays loadable.
  if (!std::isfinite(d)) {
    out += "null";
    return;
  }
  if (d == std::floor(d) && std::abs(d) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(d));
    out += buf;
  } else {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", d);
    out += buf;
  }
}

}  // namespace

Json Json::parse(const std::string& text) { return Parser(text).parse_document(); }

void Json::dump_impl(std::string& out, int indent, int depth) const {
  const std::string nl = indent > 0 ? "\n" : "";
  const std::string pad = indent > 0 ? std::string(static_cast<std::size_t>(indent) *
                                                   static_cast<std::size_t>(depth + 1), ' ')
                                     : "";
  const std::string padEnd = indent > 0 ? std::string(static_cast<std::size_t>(indent) *
                                                      static_cast<std::size_t>(depth), ' ')
                                        : "";
  switch (type_) {
    case Type::Null: out += "null"; break;
    case Type::Bool: out += bool_ ? "true" : "false"; break;
    case Type::Number: dump_number(out, num_); break;
    case Type::String: dump_string(out, str_); break;
    case Type::Array: {
      if (arr_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      bool first = true;
      for (const auto& v : arr_) {
        if (!first) out += ',';
        first = false;
        out += nl + pad;
        v.dump_impl(out, indent, depth + 1);
      }
      out += nl + padEnd + ']';
      break;
    }
    case Type::Object: {
      if (obj_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      bool first = true;
      for (const auto& [k, v] : obj_) {
        if (!first) out += ',';
        first = false;
        out += nl + pad;
        dump_string(out, k);
        out += indent > 0 ? ": " : ":";
        v.dump_impl(out, indent, depth + 1);
      }
      out += nl + padEnd + '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_impl(out, indent, 0);
  return out;
}

bool Json::write_file(const std::string& path, const Json& doc, int indent) {
  // Temp-file + rename: a bench killed mid-write (OOM, preemption, ^C)
  // must never leave a truncated/corrupt committed document — either the
  // previous file survives intact or the complete new one replaces it.
  return write_file_atomic(path, doc.dump(indent) + '\n');
}

Json Json::read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw JsonError("json: cannot read '" + path + "'");
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (in.bad()) throw JsonError("json: failed reading '" + path + "'");
  return parse(text);
}

}  // namespace tbi
