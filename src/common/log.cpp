#include "common/log.hpp"

#include <atomic>
#include <cstdio>

namespace tbi {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::Warn)};

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }

void log_message(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < g_level.load()) return;
  std::fprintf(stderr, "[tbi %s] %s\n", level_name(level), msg.c_str());
}

}  // namespace tbi
