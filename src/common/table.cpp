#include "common/table.hpp"

#include <algorithm>
#include <cstdio>

namespace tbi {

std::string TextTable::pct(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f %%", fraction * 100.0);
  return buf;
}

std::string TextTable::num(double v, int digits) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  return buf;
}

std::vector<std::size_t> TextTable::widths() const {
  std::vector<std::size_t> w;
  auto grow = [&](const std::vector<std::string>& row) {
    if (w.size() < row.size()) w.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) w[i] = std::max(w[i], row[i].size());
  };
  grow(header_);
  for (const auto& r : rows_) grow(r);
  return w;
}

std::string TextTable::render() const {
  const auto w = widths();
  auto rule = [&] {
    std::string s = "+";
    for (auto cw : w) s += std::string(cw + 2, '-') + "+";
    return s + "\n";
  };
  auto line = [&](const std::vector<std::string>& row) {
    std::string s = "|";
    for (std::size_t i = 0; i < w.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string{};
      s += " " + cell + std::string(w[i] - cell.size(), ' ') + " |";
    }
    return s + "\n";
  };
  std::string out;
  if (!title_.empty()) out += title_ + "\n";
  out += rule();
  if (!header_.empty()) {
    out += line(header_);
    out += rule();
  }
  for (const auto& r : rows_) out += line(r);
  out += rule();
  return out;
}

std::string TextTable::render_markdown() const {
  const auto w = widths();
  auto line = [&](const std::vector<std::string>& row) {
    std::string s = "|";
    for (std::size_t i = 0; i < w.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string{};
      s += " " + cell + std::string(w[i] - cell.size(), ' ') + " |";
    }
    return s + "\n";
  };
  std::string out;
  if (!title_.empty()) out += "### " + title_ + "\n\n";
  out += line(header_);
  std::string sep = "|";
  for (auto cw : w) sep += std::string(cw + 2, '-') + "|";
  out += sep + "\n";
  for (const auto& r : rows_) out += line(r);
  return out;
}

}  // namespace tbi
