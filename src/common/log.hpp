/// \file log.hpp
/// Leveled stderr logger. Default level is Warn so library users are not
/// spammed; simulators raise it to Info/Debug via --verbose flags.
#pragma once

#include <string>

namespace tbi {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Process-global log threshold.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit \p msg if \p level passes the threshold; printf-style callers
/// should pre-format (keeps the interface allocation-explicit).
void log_message(LogLevel level, const std::string& msg);

inline void log_debug(const std::string& m) { log_message(LogLevel::Debug, m); }
inline void log_info(const std::string& m) { log_message(LogLevel::Info, m); }
inline void log_warn(const std::string& m) { log_message(LogLevel::Warn, m); }
inline void log_error(const std::string& m) { log_message(LogLevel::Error, m); }

}  // namespace tbi
