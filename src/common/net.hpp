/// \file net.hpp
/// Minimal TCP plumbing for the distributed sweep transport
/// (sim/net_transport.hpp): listen/accept/connect with the failure
/// semantics the driver needs — nonblocking accept for the poll loop,
/// bounded connect timeouts, EINTR retries everywhere, and SIGPIPE
/// ignored process-wide so a dead peer surfaces as a write() error
/// handled by the reassignment path instead of killing the process.
///
/// Address syntax is "host:port" ("[::1]:port" for IPv6 literals); an
/// empty host listens on the wildcard address. Port 0 binds an ephemeral
/// port — `local_port` reports what the kernel picked.
#pragma once

#include <cstdint>
#include <string>

namespace tbi::net {

/// Ignore SIGPIPE for the whole process (idempotent). Both the sweep
/// driver and its workers call this on entry: `write_all` already uses
/// MSG_NOSIGNAL on sockets, but any other descriptor a dead peer leaves
/// behind must fail with EPIPE, not a fatal signal.
void ignore_sigpipe();

bool set_nonblocking(int fd, bool on);

/// Disable Nagle on a TCP socket: the sweep protocol is small
/// latency-sensitive frames (Assign, Heartbeat), not bulk transfer.
void set_tcp_nodelay(int fd);

/// Split "host:port" at the last ':' (IPv6 literals in brackets).
/// Returns false (and fills \p err) when there is no port, the port is
/// not numeric, or it is out of range.
bool split_hostport(const std::string& spec, std::string* host, std::string* port,
                    std::string* err);

/// Bind + listen on \p spec. Returns a nonblocking, close-on-exec
/// listening fd, or -1 with \p err filled. SO_REUSEADDR is set so a
/// restarted driver can rebind its port immediately.
int listen_tcp(const std::string& spec, std::string* err);

/// Accept one pending connection from a nonblocking listener. Returns
/// the connected fd, or -1 when none is pending (or on error). EINTR is
/// retried; the returned fd is close-on-exec but keeps the caller's
/// choice of blocking mode.
int accept_tcp(int listen_fd);

/// Connect to \p spec with a bounded timeout. Returns a blocking,
/// close-on-exec, TCP_NODELAY fd, or -1 with \p err filled. All
/// resolved addresses are tried in order.
int connect_tcp(const std::string& spec, unsigned timeout_ms, std::string* err);

/// Local port a bound socket ended up on (0 on error) — how callers
/// discover the ephemeral port picked for "host:0".
std::uint16_t local_port(int fd);

}  // namespace tbi::net
