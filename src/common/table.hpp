/// \file table.hpp
/// Fixed-width text table rendering for experiment reports.
///
/// All bench binaries print their reproduced paper tables through this
/// class so the output format (and EXPERIMENTS.md) stays uniform.
#pragma once

#include <string>
#include <vector>

namespace tbi {

class TextTable {
 public:
  /// \p title is printed above the table; may be empty.
  explicit TextTable(std::string title = {}) : title_(std::move(title)) {}

  void set_header(std::vector<std::string> header) { header_ = std::move(header); }
  void add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  /// Format a percentage like the paper's Table I ("95.99 %").
  static std::string pct(double fraction);
  /// Format a double with \p digits decimals.
  static std::string num(double v, int digits = 2);

  /// Render with unicode-free ASCII borders.
  std::string render() const;

  /// Render as GitHub-flavored markdown (for EXPERIMENTS.md).
  std::string render_markdown() const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::size_t> widths() const;

  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tbi
