/// \file fsio.hpp
/// Crash-safe file IO primitives shared by the JSON result sink and the
/// distributed-sweep checkpoint manifest.
///
/// Two durability patterns:
///
///  * `write_file_atomic`: whole-document replacement via a temp file in
///    the target's directory plus rename(2) — a reader (or a crash) never
///    observes a truncated document, only the old file or the complete
///    new one.
///  * `AppendLog`: an append-only journal where every record is a single
///    O_APPEND write followed by fdatasync, so a crash can tear at most
///    the final line. The manifest loader treats a torn tail as "not yet
///    checkpointed" and recomputes from there.
#pragma once

#include <string>

namespace tbi {

/// Write \p contents to \p path atomically: write to a temp file in the
/// same directory, flush + fsync, then rename() into place. Returns false
/// (after printing to stderr) when any step fails; the temp file is
/// removed on failure, never left behind.
bool write_file_atomic(const std::string& path, const std::string& contents);

/// Append-only log with per-append durability.
class AppendLog {
 public:
  AppendLog() = default;
  ~AppendLog();
  AppendLog(const AppendLog&) = delete;
  AppendLog& operator=(const AppendLog&) = delete;

  /// Open \p path for appending, creating it if missing; \p truncate
  /// discards existing contents first. Returns false on failure. The
  /// descriptor is opened close-on-exec so spawned workers do not
  /// inherit it.
  bool open(const std::string& path, bool truncate = false);
  bool is_open() const { return fd_ >= 0; }

  /// Append \p line plus '\n' in one write(2) and fdatasync it. Returns
  /// false on any short write or sync failure.
  bool append_line(const std::string& line);

  void close();

 private:
  int fd_ = -1;
};

}  // namespace tbi
