/// \file types.hpp
/// Fundamental scalar types shared across the tbi library.
///
/// All DRAM timing in this project is carried in integer picoseconds
/// (`Ps`). Using one absolute unit instead of per-standard clock cycles
/// lets the same controller core drive DDR3 through LPDDR5 devices whose
/// command clocks differ by an order of magnitude, with no rounding drift
/// between speed grades.
#pragma once

#include <cstdint>

namespace tbi {

/// Absolute simulation time / duration in integer picoseconds.
/// 2^63 ps is ~107 days of simulated time — far beyond any interleaver run.
using Ps = std::int64_t;

/// Convenience literals for timing tables.
constexpr Ps operator""_ns(unsigned long long v) { return static_cast<Ps>(v) * 1000; }
constexpr Ps operator""_ps(unsigned long long v) { return static_cast<Ps>(v); }
constexpr Ps operator""_us(unsigned long long v) { return static_cast<Ps>(v) * 1000 * 1000; }

/// Convert a fractional nanosecond literal-ish value at call sites that
/// need e.g. 13.75 ns.
constexpr Ps ns(double v) { return static_cast<Ps>(v * 1000.0 + 0.5); }

}  // namespace tbi
