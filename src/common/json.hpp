/// \file json.hpp
/// Minimal self-contained JSON value, parser and serializer.
///
/// Used for experiment configuration files and machine-readable result
/// dumps. Supports the full JSON grammar except surrogate-pair escapes
/// (sufficient for config/result data, which is ASCII).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace tbi {

/// Error thrown on malformed JSON input or wrong-type access.
class JsonError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A dynamically typed JSON value.
class Json {
 public:
  enum class Type { Null, Bool, Number, String, Array, Object };

  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json>;

  Json() : type_(Type::Null) {}
  Json(std::nullptr_t) : type_(Type::Null) {}
  Json(bool b) : type_(Type::Bool), bool_(b) {}
  Json(double d) : type_(Type::Number), num_(d) {}
  Json(int i) : type_(Type::Number), num_(i) {}
  Json(std::int64_t i) : type_(Type::Number), num_(static_cast<double>(i)) {}
  Json(std::uint64_t u) : type_(Type::Number), num_(static_cast<double>(u)) {}
  Json(const char* s) : type_(Type::String), str_(s) {}
  Json(std::string s) : type_(Type::String), str_(std::move(s)) {}
  Json(Array a) : type_(Type::Array), arr_(std::move(a)) {}
  Json(Object o) : type_(Type::Object), obj_(std::move(o)) {}

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::Null; }
  bool is_bool() const { return type_ == Type::Bool; }
  bool is_number() const { return type_ == Type::Number; }
  bool is_string() const { return type_ == Type::String; }
  bool is_array() const { return type_ == Type::Array; }
  bool is_object() const { return type_ == Type::Object; }

  bool as_bool() const;
  double as_double() const;
  std::int64_t as_int() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;

  /// Object member access; throws JsonError when absent or not an object.
  const Json& at(const std::string& key) const;
  /// True iff this is an object containing \p key.
  bool contains(const std::string& key) const;
  /// Object member with fallback.
  double get_or(const std::string& key, double fallback) const;
  std::string get_or(const std::string& key, const std::string& fallback) const;
  bool get_or(const std::string& key, bool fallback) const;

  /// Mutable object/array builders.
  Json& operator[](const std::string& key);
  void push_back(Json v);

  /// Parse a complete JSON document (throws JsonError on any trailing junk).
  static Json parse(const std::string& text);

  /// Serialize; \p indent > 0 pretty-prints with that many spaces.
  std::string dump(int indent = 0) const;

  /// Pretty-print \p doc (plus trailing newline) to \p path — the shared
  /// sink of every bench's --json option. Crash-safe: the document is
  /// written to a temp file in the same directory, fsynced, and renamed
  /// into place, so a killed bench never leaves a truncated/corrupt
  /// committed file. Returns false after printing an error to stderr when
  /// any step fails (ENOSPC-style late failures included).
  static bool write_file(const std::string& path, const Json& doc, int indent = 2);

  /// Load and parse a JSON document from \p path. Throws JsonError when
  /// the file cannot be read or does not parse.
  static Json read_file(const std::string& path);

 private:
  void dump_impl(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  Array arr_;
  Object obj_;
};

}  // namespace tbi
