/// \file bits.hpp
/// Small bit-manipulation helpers used by address mappings and decoders.
///
/// The optimized interleaver mapping is specified in terms of additions,
/// logical shifts and bitwise operations (paper §II); these helpers are the
/// vocabulary that implementation is written in, and they are unit-tested
/// exhaustively because a single mis-extracted bit silently corrupts a
/// bandwidth experiment.
#pragma once

#include <cassert>
#include <cstdint>

namespace tbi {

/// True iff \p v is a power of two (0 is not).
constexpr bool is_pow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

/// floor(log2(v)) for v > 0.
constexpr unsigned ilog2(std::uint64_t v) {
  assert(v != 0);
  unsigned r = 0;
  while (v >>= 1) ++r;
  return r;
}

/// ceil(log2(v)) for v > 0; number of bits needed to index v items.
constexpr unsigned clog2(std::uint64_t v) {
  assert(v != 0);
  return is_pow2(v) ? ilog2(v) : ilog2(v) + 1;
}

/// Smallest power of two >= v (v > 0).
constexpr std::uint64_t ceil_pow2(std::uint64_t v) {
  assert(v != 0);
  return std::uint64_t{1} << clog2(v);
}

/// Mask with the low \p n bits set. n may be 0..63.
constexpr std::uint64_t low_mask(unsigned n) {
  assert(n < 64);
  return (std::uint64_t{1} << n) - 1;
}

/// Extract \p count bits of \p v starting at bit \p pos (LSB = 0).
constexpr std::uint64_t extract_bits(std::uint64_t v, unsigned pos, unsigned count) {
  assert(pos + count <= 64);
  if (count == 64) return v >> pos;
  return (v >> pos) & low_mask(count);
}

/// Deposit the low \p count bits of \p field into \p v at bit \p pos.
constexpr std::uint64_t deposit_bits(std::uint64_t v, unsigned pos, unsigned count,
                                     std::uint64_t field) {
  assert(pos + count <= 64);
  const std::uint64_t m = (count == 64) ? ~std::uint64_t{0} : low_mask(count);
  return (v & ~(m << pos)) | ((field & m) << pos);
}

/// Parity (XOR-reduce) of all bits of \p v. Used by bank-XOR address layouts.
constexpr unsigned parity(std::uint64_t v) {
  v ^= v >> 32;
  v ^= v >> 16;
  v ^= v >> 8;
  v ^= v >> 4;
  v ^= v >> 2;
  v ^= v >> 1;
  return static_cast<unsigned>(v & 1);
}

/// Reverse the low \p n bits of \p v (other bits dropped).
std::uint64_t reverse_bits(std::uint64_t v, unsigned n);

}  // namespace tbi
