/// \file mathutil.hpp
/// Integer math helpers for triangular index spaces and geometry sizing.
#pragma once

#include <cassert>
#include <cstdint>

namespace tbi {

/// ceil(a / b) for b > 0.
constexpr std::uint64_t div_ceil(std::uint64_t a, std::uint64_t b) {
  assert(b != 0);
  return (a + b - 1) / b;
}

/// Round \p a up to the next multiple of \p b (b > 0).
constexpr std::uint64_t round_up(std::uint64_t a, std::uint64_t b) {
  return div_ceil(a, b) * b;
}

/// n-th triangular number: number of elements of an upper-left triangular
/// array of side n (row i holds n - i elements, i = 0..n-1).
constexpr std::uint64_t triangular_number(std::uint64_t n) { return n * (n + 1) / 2; }

/// Smallest side n such that triangular_number(n) >= elements.
std::uint64_t triangular_side_for(std::uint64_t elements);

/// Exact integer sqrt: floor(sqrt(v)).
std::uint64_t isqrt(std::uint64_t v);

/// Linear offset of row \p i inside a *packed* upper-left triangular array
/// of side \p n stored row-major (row 0 first, each row one element
/// shorter). This is the SRAM-style linearization the row-major baseline
/// mapping uses.
constexpr std::uint64_t tri_row_offset(std::uint64_t n, std::uint64_t i) {
  assert(i <= n);
  // sum_{k<i} (n - k) = i*n - i(i-1)/2
  return i * n - i * (i - 1) / 2;
}

/// Number of valid columns in row i (upper-left triangle, side n).
constexpr std::uint64_t tri_row_length(std::uint64_t n, std::uint64_t i) {
  assert(i < n);
  return n - i;
}

/// Number of valid rows in column j (upper-left triangle, side n).
constexpr std::uint64_t tri_col_length(std::uint64_t n, std::uint64_t j) {
  assert(j < n);
  return n - j;
}

/// True iff (row i, col j) lies inside the upper-left triangle of side n.
constexpr bool tri_contains(std::uint64_t n, std::uint64_t i, std::uint64_t j) {
  return i < n && j < tri_row_length(n, i);
}

}  // namespace tbi
