/// \file cli.hpp
/// Tiny declarative command-line parser for examples and bench binaries.
///
/// Supports `--flag`, `--key value` and `--key=value` forms, typed lookup
/// with defaults, and an auto-generated usage text.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace tbi {

class CliParser {
 public:
  CliParser(std::string program, std::string summary)
      : program_(std::move(program)), summary_(std::move(summary)) {}

  /// Declare an option (for usage text); \p value_hint empty means boolean flag.
  void add_option(const std::string& name, const std::string& value_hint,
                  const std::string& help);

  /// Parse argv. Returns false (and fills error()) on unknown options.
  bool parse(int argc, const char* const* argv);

  bool has(const std::string& name) const { return values_.count(name) != 0; }
  std::string get(const std::string& name, const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_flag(const std::string& name) const { return has(name); }

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& error() const { return error_; }

  /// Human-readable usage text built from add_option calls.
  std::string usage() const;

 private:
  struct Option {
    std::string name;
    std::string value_hint;
    std::string help;
  };

  std::string program_;
  std::string summary_;
  std::vector<Option> options_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
  std::string error_;
};

}  // namespace tbi
