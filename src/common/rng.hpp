/// \file rng.hpp
/// Deterministic, seedable pseudo-random generator (xoshiro256**).
///
/// Channel models and property tests need reproducible randomness that is
/// independent of the standard library implementation; std::mt19937 output
/// is portable but slow, and distributions are not. We ship our own engine
/// and the few distributions we need.
#pragma once

#include <cstdint>

namespace tbi {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

  /// Re-initialize the state from a 64-bit seed via splitmix64.
  void reseed(std::uint64_t seed);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform integer in [0, bound) (bound > 0), unbiased via rejection.
  std::uint64_t uniform(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double uniform_double();

  /// Bernoulli trial with probability \p p.
  bool bernoulli(double p) { return uniform_double() < p; }

  /// Geometric: number of failures before first success, success prob p > 0.
  std::uint64_t geometric(double p);

 private:
  std::uint64_t s_[4];
};

}  // namespace tbi
