#include "common/rng.hpp"

#include <cassert>
#include <cmath>

namespace tbi {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
  // Avoid the (astronomically unlikely) all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t bound) {
  assert(bound != 0);
  // Lemire-style rejection to remove modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::uniform_double() {
  // 53 random mantissa bits -> [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::geometric(double p) {
  assert(p > 0.0 && p <= 1.0);
  if (p >= 1.0) return 0;
  const double u = uniform_double();
  return static_cast<std::uint64_t>(std::floor(std::log1p(-u) / std::log1p(-p)));
}

}  // namespace tbi
