#include "common/mathutil.hpp"

namespace tbi {

std::uint64_t isqrt(std::uint64_t v) {
  if (v == 0) return 0;
  std::uint64_t x = v;
  std::uint64_t y = (x + 1) / 2;
  while (y < x) {
    x = y;
    y = (x + v / x) / 2;
  }
  // x = floor(sqrt(v)) by Newton iteration on integers.
  while (x * x > v) --x;
  while ((x + 1) * (x + 1) <= v) ++x;
  return x;
}

std::uint64_t triangular_side_for(std::uint64_t elements) {
  if (elements == 0) return 0;
  // Solve n(n+1)/2 >= elements: n ~ sqrt(2e).
  std::uint64_t n = isqrt(2 * elements);
  while (triangular_number(n) < elements) ++n;
  while (n > 0 && triangular_number(n - 1) >= elements) --n;
  return n;
}

}  // namespace tbi
