/// \file csv.hpp
/// Small CSV writer with RFC-4180 quoting; used for machine-readable
/// experiment result dumps next to the human-readable tables.
#pragma once

#include <string>
#include <vector>

namespace tbi {

class CsvWriter {
 public:
  void set_header(std::vector<std::string> header) { header_ = std::move(header); }
  void add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  /// Serialize the whole document.
  std::string str() const;

  /// Write to \p path; returns false on I/O failure.
  bool write_file(const std::string& path) const;

 private:
  static std::string escape(const std::string& cell);

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tbi
