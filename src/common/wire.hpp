/// \file wire.hpp
/// Length-prefixed, CRC-checked message framing for the multi-process
/// sweep backend (src/sim/dsweep.hpp).
///
/// A frame is `magic u32 | type u8 | payload_len u32 | crc32 u32` (all
/// little-endian) followed by the payload bytes. The CRC covers the type
/// byte, the length field and the payload, so any single-bit corruption
/// of a frame — header or body — is detected. Stream carriers are local
/// socketpairs (sim/dsweep.hpp) and TCP connections to remote workers
/// (sim/net_transport.hpp); the fault-injection harness deliberately
/// corrupts and truncates batches, and the parent must detect both and
/// recover by discarding the worker, not by merging garbage records.
///
/// `FrameReader` is an incremental decoder built for the parent's
/// nonblocking poll loop: feed it whatever bytes arrived, pull complete
/// frames out. Workers use the blocking `read_frame` helper instead.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace tbi::wire {

enum class FrameType : std::uint8_t {
  JobConfig = 1,  ///< parent -> worker: kernel, job JSON, seed, faults
  Assign = 2,     ///< parent -> worker: one cell index (decimal string)
  Record = 3,     ///< worker -> parent: {"cell": i, "record": {...}}
  Heartbeat = 4,  ///< worker -> parent: liveness, empty payload
  Done = 5,       ///< parent -> worker: no more cells, exit cleanly
  Error = 6,      ///< worker -> parent: deterministic kernel failure
  Hello = 7,      ///< remote worker -> driver: {"proto": V, "fingerprint": F}
  Reject = 8,     ///< driver -> remote worker: handshake refused (reason)
};

constexpr std::uint32_t kMagic = 0x31494254u;  // "TBI1" on the wire (LE)
constexpr std::size_t kHeaderBytes = 13;       // magic + type + len + crc
/// Wire protocol version, exchanged in the TCP Hello handshake. Bump on
/// any framing or message-semantics change (v2: CRC covers the header's
/// type + length fields, not just the payload).
constexpr std::uint32_t kProtocolVersion = 2;
/// Sanity bound on payload size: a length field past this is treated as
/// stream corruption, not an allocation request.
constexpr std::uint32_t kMaxPayload = 64u << 20;

/// IEEE CRC-32 (the zlib polynomial) over \p size bytes.
std::uint32_t crc32(const std::uint8_t* data, std::size_t size);

/// The CRC a frame of \p type carrying \p payload puts in its header:
/// CRC-32 over `type u8 | payload_len u32 (LE) | payload`.
std::uint32_t frame_crc(FrameType type, const std::uint8_t* payload, std::size_t size);

struct Frame {
  FrameType type = FrameType::Heartbeat;
  std::vector<std::uint8_t> payload;

  std::string payload_str() const {
    return std::string(payload.begin(), payload.end());
  }
};

/// Serialize one frame — exactly the bytes `write_frame` puts on the
/// wire. Exposed separately so the fault injector can corrupt or
/// truncate the encoded bytes before sending them.
std::vector<std::uint8_t> encode_frame(FrameType type, const std::uint8_t* payload,
                                       std::size_t size);
std::vector<std::uint8_t> encode_frame(FrameType type, const std::string& payload);

/// Write all of \p size bytes to \p fd. Retries EINTR and short writes,
/// polls on EAGAIN (nonblocking fds), and suppresses SIGPIPE on sockets
/// (MSG_NOSIGNAL), so a dead peer surfaces as `false`, not a signal.
bool write_all(int fd, const std::uint8_t* data, std::size_t size);

/// encode_frame + write_all.
bool write_frame(int fd, FrameType type, const std::string& payload);

/// Incremental frame decoder for one receive direction.
class FrameReader {
 public:
  enum class Status {
    Frame,     ///< a complete, CRC-valid frame was produced
    NeedMore,  ///< no complete frame buffered yet
    Eof,       ///< peer closed the stream
    Corrupt,   ///< bad magic, oversize length, or CRC mismatch
  };

  /// One read(2) from \p fd into the buffer. Returns Eof on stream end,
  /// NeedMore otherwise (including EAGAIN on nonblocking fds).
  Status pump(int fd);

  /// Try to decode the next buffered frame. Returns Frame (and fills
  /// \p out), NeedMore, or Corrupt. After Corrupt the stream is
  /// poisoned: resynchronizing inside a byte stream is guesswork, so the
  /// reader stays in the Corrupt state and the connection must be
  /// dropped.
  Status next(Frame* out);

  bool corrupt() const { return corrupt_; }

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;  ///< consumed prefix of buf_
  bool corrupt_ = false;
};

/// Blocking convenience for workers: pump until a full frame, EOF, or
/// corruption.
FrameReader::Status read_frame(int fd, FrameReader& reader, Frame* out);

}  // namespace tbi::wire
