#include "fec/reed_solomon.hpp"

#include <algorithm>
#include <stdexcept>

namespace tbi::fec {

namespace {

std::uint8_t poly_eval(std::span<const std::uint8_t> p, std::uint8_t x) {
  std::uint8_t acc = 0;
  for (std::size_t i = p.size(); i-- > 0;) {
    acc = GF256::add(GF256::mul(acc, x), p[i]);
  }
  return acc;
}

}  // namespace

ReedSolomon::ReedSolomon(unsigned n, unsigned k) : n_(n), k_(k) {
  if (n_ == 0 || n_ > 255 || k_ == 0 || k_ >= n_) {
    throw std::invalid_argument("ReedSolomon: need 0 < k < n <= 255");
  }
  if ((n_ - k_) % 2 != 0) {
    throw std::invalid_argument("ReedSolomon: n - k must be even");
  }
  // g(x) = prod_{i=1}^{n-k} (x - alpha^i), low degree first.
  generator_ = {1};
  for (unsigned i = 1; i <= n_ - k_; ++i) {
    const std::uint8_t root = GF256::pow_alpha(i);
    std::vector<std::uint8_t> next(generator_.size() + 1, 0);
    for (std::size_t d = 0; d < generator_.size(); ++d) {
      next[d] = GF256::add(next[d], GF256::mul(generator_[d], root));
      next[d + 1] = GF256::add(next[d + 1], generator_[d]);
    }
    generator_ = std::move(next);
  }

  // Constant-multiplier tables for the two hot loops. gen_scaled_ is laid
  // out feedback-major so one encode step reads a single contiguous
  // parity-sized row.
  const unsigned p = parity();
  gen_scaled_.resize(256);
  for (unsigned f = 0; f < 256; ++f) {
    for (unsigned d = 0; d < p; ++d) {
      gen_scaled_[f][d] =
          GF256::mul(static_cast<std::uint8_t>(f), generator_[d]);
    }
  }
  root_scaled_.resize(p);
  for (unsigned i = 0; i < p; ++i) {
    const std::uint8_t x = GF256::pow_alpha(i + 1);
    for (unsigned a = 0; a < 256; ++a) {
      root_scaled_[i][a] = GF256::mul(static_cast<std::uint8_t>(a), x);
    }
  }
}

void ReedSolomon::encode(std::span<const std::uint8_t> data,
                         std::span<std::uint8_t> word) const {
  if (data.size() != k_ || word.size() != n_) {
    throw std::invalid_argument("ReedSolomon::encode: bad size");
  }
  // Systematic encoding: remainder of data * x^(n-k) divided by g(x),
  // with every feedback product coming from one precomputed table row.
  const unsigned p = parity();
  std::array<std::uint8_t, 256> remainder{};
  for (unsigned i = 0; i < k_; ++i) {
    const std::uint8_t feedback = static_cast<std::uint8_t>(data[i] ^ remainder[p - 1]);
    const std::uint8_t* row = gen_scaled_[feedback].data();
    for (unsigned d = p; d-- > 1;) {
      remainder[d] = static_cast<std::uint8_t>(remainder[d - 1] ^ row[d]);
    }
    remainder[0] = row[0];
  }
  if (word.data() != data.data()) {
    std::copy(data.begin(), data.end(), word.begin());
  }
  // Parity appended high-degree-first so that word[j] is the coefficient
  // of x^(n-1-j) throughout.
  for (unsigned d = 0; d < p; ++d) word[k_ + d] = remainder[p - 1 - d];
}

bool ReedSolomon::syndromes(std::span<const std::uint8_t> word,
                            std::span<std::uint8_t> out) const {
  // word[j] is the coefficient of x^(n-1-j); S_i = r(alpha^i), evaluated
  // by Horner with one constant-multiplier table per root. The symbol
  // loop is outermost so the per-root accumulator chains stay
  // independent (ILP) and each symbol is loaded once.
  const unsigned p = parity();
  std::array<std::uint8_t, 256> acc{};
  for (unsigned j = 0; j < n_; ++j) {
    const std::uint8_t w = word[j];
    for (unsigned i = 0; i < p; ++i) {
      acc[i] = static_cast<std::uint8_t>(root_scaled_[i][acc[i]] ^ w);
    }
  }
  std::uint8_t any = 0;
  for (unsigned i = 0; i < p; ++i) {
    out[i] = acc[i];
    any |= acc[i];
  }
  return any == 0;
}

bool ReedSolomon::is_codeword(std::span<const std::uint8_t> word) const {
  if (word.size() != n_) return false;
  std::array<std::uint8_t, 256> synd;
  return syndromes(word, std::span<std::uint8_t>(synd.data(), parity()));
}

RsDecodeResult ReedSolomon::decode(std::span<std::uint8_t> word,
                                   RsScratch& scratch) const {
  if (word.size() != n_) throw std::invalid_argument("ReedSolomon::decode: bad size");
  scratch.synd.resize(parity());
  if (syndromes(word, scratch.synd)) return {true, 0};
  const auto& synd = scratch.synd;

  // Berlekamp-Massey: error locator sigma(x), low degree first.
  auto& sigma = scratch.sigma;
  auto& prev = scratch.prev;
  sigma.assign(1, 1);
  prev.assign(1, 1);
  unsigned L = 0;
  unsigned m = 1;
  std::uint8_t b = 1;
  for (unsigned iter = 0; iter < parity(); ++iter) {
    std::uint8_t delta = synd[iter];
    for (unsigned i = 1; i <= L && i < sigma.size(); ++i) {
      delta = GF256::add(delta, GF256::mul(sigma[i], synd[iter - i]));
    }
    if (delta == 0) {
      ++m;
      continue;
    }
    if (2 * L <= iter) {
      scratch.tmp = sigma;
      const std::uint8_t scale = GF256::div(delta, b);
      if (sigma.size() < prev.size() + m) sigma.resize(prev.size() + m, 0);
      for (std::size_t i = 0; i < prev.size(); ++i) {
        sigma[i + m] = GF256::add(sigma[i + m], GF256::mul(scale, prev[i]));
      }
      L = iter + 1 - L;
      prev = scratch.tmp;
      b = delta;
      m = 1;
    } else {
      const std::uint8_t scale = GF256::div(delta, b);
      if (sigma.size() < prev.size() + m) sigma.resize(prev.size() + m, 0);
      for (std::size_t i = 0; i < prev.size(); ++i) {
        sigma[i + m] = GF256::add(sigma[i + m], GF256::mul(scale, prev[i]));
      }
      ++m;
    }
  }
  while (!sigma.empty() && sigma.back() == 0) sigma.pop_back();
  const unsigned errors = static_cast<unsigned>(sigma.size()) - 1;
  if (errors > t()) return {false, 0};

  // Chien search over code-word positions. Position j (coefficient of
  // x^(n-1-j)) has locator X = alpha^(n-1-j); it is an error location iff
  // sigma(X^{-1}) == 0.
  auto& error_positions = scratch.positions;
  error_positions.clear();
  for (unsigned j = 0; j < n_; ++j) {
    const unsigned power = n_ - 1 - j;
    const std::uint8_t x_inv = GF256::pow_alpha(255 - (power % 255));
    if (poly_eval(sigma, x_inv) == 0) error_positions.push_back(j);
  }
  if (error_positions.size() != errors) return {false, 0};

  // Forney: error evaluator omega(x) = [S(x) * sigma(x)] mod x^(n-k).
  auto& omega = scratch.omega;
  omega.assign(parity(), 0);
  for (unsigned i = 0; i < parity(); ++i) {
    for (std::size_t d = 0; d < sigma.size() && d <= i; ++d) {
      omega[i] = GF256::add(omega[i], GF256::mul(synd[i - d], sigma[d]));
    }
  }
  // sigma'(x): formal derivative (odd-degree coefficients).
  auto& sigma_deriv = scratch.deriv;
  sigma_deriv.clear();
  for (std::size_t d = 1; d < sigma.size(); d += 2) {
    sigma_deriv.resize(d, 0);
    sigma_deriv[d - 1] = sigma[d];
  }

  for (unsigned j : error_positions) {
    const unsigned power = n_ - 1 - j;
    const std::uint8_t x_inv = GF256::pow_alpha(255 - (power % 255));
    const std::uint8_t num = poly_eval(omega, x_inv);
    const std::uint8_t den = poly_eval(sigma_deriv, x_inv);
    if (den == 0) return {false, 0};
    // With syndromes S_i = r(alpha^i), i = 1..2t, the Forney magnitude is
    // e_j = omega(X^{-1}) / sigma'(X^{-1}) (the X factors cancel in GF(2^m)).
    const std::uint8_t magnitude = GF256::div(num, den);
    word[j] = GF256::add(word[j], magnitude);
  }

  if (!is_codeword(word)) return {false, 0};
  return {true, static_cast<unsigned>(error_positions.size())};
}

std::vector<std::uint8_t> ReedSolomon::encode(
    const std::vector<std::uint8_t>& data) const {
  std::vector<std::uint8_t> word(n_);
  encode(std::span<const std::uint8_t>(data),
         std::span<std::uint8_t>(word));
  return word;
}

RsDecodeResult ReedSolomon::decode(std::vector<std::uint8_t>& word) const {
  RsScratch scratch;
  return decode(std::span<std::uint8_t>(word), scratch);
}

}  // namespace tbi::fec
