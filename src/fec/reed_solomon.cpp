#include "fec/reed_solomon.hpp"

#include <algorithm>
#include <stdexcept>

#include "fec/gf256_simd.hpp"

namespace tbi::fec {

namespace {

std::uint8_t poly_eval(std::span<const std::uint8_t> p, std::uint8_t x) {
  std::uint8_t acc = 0;
  for (std::size_t i = p.size(); i-- > 0;) {
    acc = GF256::add(GF256::mul(acc, x), p[i]);
  }
  return acc;
}

}  // namespace

ReedSolomon::ReedSolomon(unsigned n, unsigned k) : n_(n), k_(k) {
  if (n_ == 0 || n_ > 255 || k_ == 0 || k_ >= n_) {
    throw std::invalid_argument("ReedSolomon: need 0 < k < n <= 255");
  }
  if ((n_ - k_) % 2 != 0) {
    throw std::invalid_argument("ReedSolomon: n - k must be even");
  }
  // g(x) = prod_{i=1}^{n-k} (x - alpha^i), low degree first.
  generator_ = {1};
  for (unsigned i = 1; i <= n_ - k_; ++i) {
    const std::uint8_t root = GF256::pow_alpha(i);
    std::vector<std::uint8_t> next(generator_.size() + 1, 0);
    for (std::size_t d = 0; d < generator_.size(); ++d) {
      next[d] = GF256::add(next[d], GF256::mul(generator_[d], root));
      next[d + 1] = GF256::add(next[d + 1], generator_[d]);
    }
    generator_ = std::move(next);
  }

  // Row operands for the two vectorized hot loops (gf256_simd.hpp).
  // Encode's long division subtracts feedback * g(x) with coefficients
  // descending in power — the monic leading term cancels the current
  // dividend coefficient implicitly, the rest is the reversed generator.
  const unsigned p = parity();
  grev_.assign(p, 0);
  for (unsigned j = 0; j < p; ++j) grev_[j] = generator_[p - 1 - j];

  // Syndromes as row accumulation instead of Horner: S_i = r(alpha^i) =
  // sum_j word[j] * alpha^{i(n-1-j)}, so each received position j owns a
  // contiguous row of root powers that one muladd folds into all parity
  // accumulators at once. Rows are padded to a whole number of 16-byte
  // strips with further (valid) powers; the padded accumulator lanes are
  // never read.
  row_stride_ = (p + 15u) & ~15u;
  pow_rows_.assign(static_cast<std::size_t>(n_) * row_stride_, 0);
  for (unsigned j = 0; j < n_; ++j) {
    std::uint8_t* row = pow_rows_.data() + static_cast<std::size_t>(j) * row_stride_;
    for (unsigned i = 0; i < row_stride_; ++i) {
      row[i] = GF256::pow_alpha((i + 1u) * (n_ - 1u - j));
    }
  }
}

void ReedSolomon::encode(std::span<const std::uint8_t> data,
                         std::span<std::uint8_t> word) const {
  if (data.size() != k_ || word.size() != n_) {
    throw std::invalid_argument("ReedSolomon::encode: bad size");
  }
  // Systematic encoding as in-place long division of data * x^(n-k) by
  // g(x): the dividend starts as [data | 0^p]; each step cancels the
  // leading coefficient and XOR-accumulates feedback * grev_ into the
  // next p coefficients with one vector muladd. What remains in
  // c[k..n) IS the parity, already in the word's high-degree-first
  // layout (c[k+d] is the coefficient of x^(p-1-d)).
  const unsigned p = parity();
  alignas(32) std::uint8_t c[255];
  std::copy(data.begin(), data.end(), c);
  std::fill(c + k_, c + n_, 0);
  for (unsigned i = 0; i < k_; ++i) {
    const std::uint8_t f = c[i];
    if (f != 0) gf256_muladd(c + i + 1, grev_.data(), f, p);
  }
  if (word.data() != data.data()) {
    std::copy(data.begin(), data.end(), word.begin());
  }
  std::copy(c + k_, c + n_, word.begin() + k_);
}

bool ReedSolomon::syndromes(std::span<const std::uint8_t> word,
                            std::span<std::uint8_t> out) const {
  // word[j] is the coefficient of x^(n-1-j); S_i = r(alpha^i) =
  // sum_j word[j] * alpha^{i(n-1-j)}, accumulated one precomputed power
  // row per nonzero symbol so every step is a single vector muladd over
  // all parity lanes (plus deterministic padding lanes, never read).
  const unsigned p = parity();
  alignas(32) std::array<std::uint8_t, 256> acc{};
  for (unsigned j = 0; j < n_; ++j) {
    const std::uint8_t w = word[j];
    if (w != 0) {
      gf256_muladd(acc.data(),
                   pow_rows_.data() + static_cast<std::size_t>(j) * row_stride_,
                   w, row_stride_);
    }
  }
  std::uint8_t any = 0;
  for (unsigned i = 0; i < p; ++i) {
    out[i] = acc[i];
    any |= acc[i];
  }
  return any == 0;
}

bool ReedSolomon::is_codeword(std::span<const std::uint8_t> word) const {
  if (word.size() != n_) return false;
  std::array<std::uint8_t, 256> synd;
  return syndromes(word, std::span<std::uint8_t>(synd.data(), parity()));
}

RsDecodeResult ReedSolomon::decode(std::span<std::uint8_t> word,
                                   RsScratch& scratch) const {
  if (word.size() != n_) throw std::invalid_argument("ReedSolomon::decode: bad size");
  scratch.synd.resize(parity());
  if (syndromes(word, scratch.synd)) return {true, 0};
  const auto& synd = scratch.synd;

  // Berlekamp-Massey: error locator sigma(x), low degree first.
  auto& sigma = scratch.sigma;
  auto& prev = scratch.prev;
  sigma.assign(1, 1);
  prev.assign(1, 1);
  unsigned L = 0;
  unsigned m = 1;
  std::uint8_t b = 1;
  for (unsigned iter = 0; iter < parity(); ++iter) {
    std::uint8_t delta = synd[iter];
    for (unsigned i = 1; i <= L && i < sigma.size(); ++i) {
      delta = GF256::add(delta, GF256::mul(sigma[i], synd[iter - i]));
    }
    if (delta == 0) {
      ++m;
      continue;
    }
    if (2 * L <= iter) {
      scratch.tmp = sigma;
      const std::uint8_t scale = GF256::div(delta, b);
      if (sigma.size() < prev.size() + m) sigma.resize(prev.size() + m, 0);
      for (std::size_t i = 0; i < prev.size(); ++i) {
        sigma[i + m] = GF256::add(sigma[i + m], GF256::mul(scale, prev[i]));
      }
      L = iter + 1 - L;
      prev = scratch.tmp;
      b = delta;
      m = 1;
    } else {
      const std::uint8_t scale = GF256::div(delta, b);
      if (sigma.size() < prev.size() + m) sigma.resize(prev.size() + m, 0);
      for (std::size_t i = 0; i < prev.size(); ++i) {
        sigma[i + m] = GF256::add(sigma[i + m], GF256::mul(scale, prev[i]));
      }
      ++m;
    }
  }
  while (!sigma.empty() && sigma.back() == 0) sigma.pop_back();
  const unsigned errors = static_cast<unsigned>(sigma.size()) - 1;
  if (errors > t()) return {false, 0};

  // Chien search over code-word positions. Position j (coefficient of
  // x^(n-1-j)) has locator X = alpha^(n-1-j); it is an error location iff
  // sigma(X^{-1}) == 0.
  auto& error_positions = scratch.positions;
  error_positions.clear();
  for (unsigned j = 0; j < n_; ++j) {
    const unsigned power = n_ - 1 - j;
    const std::uint8_t x_inv = GF256::pow_alpha(255 - (power % 255));
    if (poly_eval(sigma, x_inv) == 0) error_positions.push_back(j);
  }
  if (error_positions.size() != errors) return {false, 0};

  // Forney: error evaluator omega(x) = [S(x) * sigma(x)] mod x^(n-k).
  auto& omega = scratch.omega;
  omega.assign(parity(), 0);
  for (unsigned i = 0; i < parity(); ++i) {
    for (std::size_t d = 0; d < sigma.size() && d <= i; ++d) {
      omega[i] = GF256::add(omega[i], GF256::mul(synd[i - d], sigma[d]));
    }
  }
  // sigma'(x): formal derivative (odd-degree coefficients).
  auto& sigma_deriv = scratch.deriv;
  sigma_deriv.clear();
  for (std::size_t d = 1; d < sigma.size(); d += 2) {
    sigma_deriv.resize(d, 0);
    sigma_deriv[d - 1] = sigma[d];
  }

  for (unsigned j : error_positions) {
    const unsigned power = n_ - 1 - j;
    const std::uint8_t x_inv = GF256::pow_alpha(255 - (power % 255));
    const std::uint8_t num = poly_eval(omega, x_inv);
    const std::uint8_t den = poly_eval(sigma_deriv, x_inv);
    if (den == 0) return {false, 0};
    // With syndromes S_i = r(alpha^i), i = 1..2t, the Forney magnitude is
    // e_j = omega(X^{-1}) / sigma'(X^{-1}) (the X factors cancel in GF(2^m)).
    const std::uint8_t magnitude = GF256::div(num, den);
    word[j] = GF256::add(word[j], magnitude);
  }

  if (!is_codeword(word)) return {false, 0};
  return {true, static_cast<unsigned>(error_positions.size())};
}

std::vector<std::uint8_t> ReedSolomon::encode(
    const std::vector<std::uint8_t>& data) const {
  std::vector<std::uint8_t> word(n_);
  encode(std::span<const std::uint8_t>(data),
         std::span<std::uint8_t>(word));
  return word;
}

RsDecodeResult ReedSolomon::decode(std::vector<std::uint8_t>& word) const {
  RsScratch scratch;
  return decode(std::span<std::uint8_t>(word), scratch);
}

}  // namespace tbi::fec
