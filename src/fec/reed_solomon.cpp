#include "fec/reed_solomon.hpp"

#include <algorithm>
#include <stdexcept>

namespace tbi::fec {

namespace {

using Poly = std::vector<std::uint8_t>;  // coefficients, low degree first

std::uint8_t poly_eval(const Poly& p, std::uint8_t x) {
  std::uint8_t acc = 0;
  for (std::size_t i = p.size(); i-- > 0;) {
    acc = GF256::add(GF256::mul(acc, x), p[i]);
  }
  return acc;
}

}  // namespace

ReedSolomon::ReedSolomon(unsigned n, unsigned k) : n_(n), k_(k) {
  if (n_ == 0 || n_ > 255 || k_ == 0 || k_ >= n_) {
    throw std::invalid_argument("ReedSolomon: need 0 < k < n <= 255");
  }
  if ((n_ - k_) % 2 != 0) {
    throw std::invalid_argument("ReedSolomon: n - k must be even");
  }
  // g(x) = prod_{i=1}^{n-k} (x - alpha^i), low degree first.
  generator_ = {1};
  for (unsigned i = 1; i <= n_ - k_; ++i) {
    const std::uint8_t root = GF256::pow_alpha(i);
    Poly next(generator_.size() + 1, 0);
    for (std::size_t d = 0; d < generator_.size(); ++d) {
      next[d] = GF256::add(next[d], GF256::mul(generator_[d], root));
      next[d + 1] = GF256::add(next[d + 1], generator_[d]);
    }
    generator_ = std::move(next);
  }
}

std::vector<std::uint8_t> ReedSolomon::encode(
    const std::vector<std::uint8_t>& data) const {
  if (data.size() != k_) throw std::invalid_argument("ReedSolomon::encode: bad size");
  // Systematic encoding: remainder of data * x^(n-k) divided by g(x).
  const unsigned p = parity();
  std::vector<std::uint8_t> remainder(p, 0);
  for (unsigned i = 0; i < k_; ++i) {
    const std::uint8_t feedback = GF256::add(data[i], remainder[p - 1]);
    for (unsigned d = p; d-- > 1;) {
      remainder[d] = GF256::add(remainder[d - 1], GF256::mul(feedback, generator_[d]));
    }
    remainder[0] = GF256::mul(feedback, generator_[0]);
  }
  std::vector<std::uint8_t> word(data);
  // Parity appended high-degree-first so that word[j] is the coefficient
  // of x^(n-1-j) throughout.
  for (unsigned d = 0; d < p; ++d) word.push_back(remainder[p - 1 - d]);
  return word;
}

std::vector<std::uint8_t> ReedSolomon::syndromes(
    const std::vector<std::uint8_t>& word) const {
  // word[j] is the coefficient of x^(n-1-j); S_i = r(alpha^i).
  std::vector<std::uint8_t> s(parity());
  for (unsigned i = 1; i <= parity(); ++i) {
    const std::uint8_t x = GF256::pow_alpha(i);
    std::uint8_t acc = 0;
    for (unsigned j = 0; j < n_; ++j) acc = GF256::add(GF256::mul(acc, x), word[j]);
    s[i - 1] = acc;
  }
  return s;
}

bool ReedSolomon::is_codeword(const std::vector<std::uint8_t>& word) const {
  if (word.size() != n_) return false;
  const auto s = syndromes(word);
  return std::all_of(s.begin(), s.end(), [](std::uint8_t v) { return v == 0; });
}

RsDecodeResult ReedSolomon::decode(std::vector<std::uint8_t>& word) const {
  if (word.size() != n_) throw std::invalid_argument("ReedSolomon::decode: bad size");
  const auto synd = syndromes(word);
  if (std::all_of(synd.begin(), synd.end(), [](std::uint8_t v) { return v == 0; })) {
    return {true, 0};
  }

  // Berlekamp-Massey: error locator sigma(x), low degree first.
  Poly sigma{1};
  Poly prev{1};
  unsigned L = 0;
  unsigned m = 1;
  std::uint8_t b = 1;
  for (unsigned iter = 0; iter < parity(); ++iter) {
    std::uint8_t delta = synd[iter];
    for (unsigned i = 1; i <= L && i < sigma.size(); ++i) {
      delta = GF256::add(delta, GF256::mul(sigma[i], synd[iter - i]));
    }
    if (delta == 0) {
      ++m;
      continue;
    }
    if (2 * L <= iter) {
      const Poly tmp = sigma;
      const std::uint8_t scale = GF256::div(delta, b);
      if (sigma.size() < prev.size() + m) sigma.resize(prev.size() + m, 0);
      for (std::size_t i = 0; i < prev.size(); ++i) {
        sigma[i + m] = GF256::add(sigma[i + m], GF256::mul(scale, prev[i]));
      }
      L = iter + 1 - L;
      prev = tmp;
      b = delta;
      m = 1;
    } else {
      const std::uint8_t scale = GF256::div(delta, b);
      if (sigma.size() < prev.size() + m) sigma.resize(prev.size() + m, 0);
      for (std::size_t i = 0; i < prev.size(); ++i) {
        sigma[i + m] = GF256::add(sigma[i + m], GF256::mul(scale, prev[i]));
      }
      ++m;
    }
  }
  while (!sigma.empty() && sigma.back() == 0) sigma.pop_back();
  const unsigned errors = static_cast<unsigned>(sigma.size()) - 1;
  if (errors > t()) return {false, 0};

  // Chien search over code-word positions. Position j (coefficient of
  // x^(n-1-j)) has locator X = alpha^(n-1-j); it is an error location iff
  // sigma(X^{-1}) == 0.
  std::vector<unsigned> error_positions;
  for (unsigned j = 0; j < n_; ++j) {
    const unsigned power = n_ - 1 - j;
    const std::uint8_t x_inv = GF256::pow_alpha(255 - (power % 255));
    if (poly_eval(sigma, x_inv) == 0) error_positions.push_back(j);
  }
  if (error_positions.size() != errors) return {false, 0};

  // Forney: error evaluator omega(x) = [S(x) * sigma(x)] mod x^(n-k).
  Poly omega(parity(), 0);
  for (unsigned i = 0; i < parity(); ++i) {
    for (std::size_t d = 0; d < sigma.size() && d <= i; ++d) {
      omega[i] = GF256::add(omega[i], GF256::mul(synd[i - d], sigma[d]));
    }
  }
  // sigma'(x): formal derivative (odd-degree coefficients).
  Poly sigma_deriv;
  for (std::size_t d = 1; d < sigma.size(); d += 2) {
    sigma_deriv.resize(d, 0);
    sigma_deriv[d - 1] = sigma[d];
  }

  for (unsigned j : error_positions) {
    const unsigned power = n_ - 1 - j;
    const std::uint8_t x_inv = GF256::pow_alpha(255 - (power % 255));
    const std::uint8_t num = poly_eval(omega, x_inv);
    const std::uint8_t den = poly_eval(sigma_deriv, x_inv);
    if (den == 0) return {false, 0};
    // With syndromes S_i = r(alpha^i), i = 1..2t, the Forney magnitude is
    // e_j = omega(X^{-1}) / sigma'(X^{-1}) (the X factors cancel in GF(2^m)).
    const std::uint8_t magnitude = GF256::div(num, den);
    word[j] = GF256::add(word[j], magnitude);
  }

  if (!is_codeword(word)) return {false, 0};
  return {true, static_cast<unsigned>(error_positions.size())};
}

}  // namespace tbi::fec
