#include "fec/gf256.hpp"

#include <cassert>

namespace tbi::fec {

const std::array<std::uint8_t, 512>& GF256::exp_table() {
  static const std::array<std::uint8_t, 512> table = [] {
    std::array<std::uint8_t, 512> t{};
    unsigned x = 1;
    for (unsigned i = 0; i < 255; ++i) {
      t[i] = static_cast<std::uint8_t>(x);
      x <<= 1;
      if (x & 0x100) x ^= kPrimitivePoly;
    }
    // Duplicate so (log a + log b) needs no modulo in hot paths that
    // index directly; mul() still reduces for clarity.
    for (unsigned i = 255; i < 512; ++i) t[i] = t[i - 255];
    return t;
  }();
  return table;
}

const std::array<unsigned, 256>& GF256::log_table() {
  static const std::array<unsigned, 256> table = [] {
    std::array<unsigned, 256> t{};
    const auto& e = exp_table();
    for (unsigned i = 0; i < 255; ++i) t[e[i]] = i;
    t[0] = 0;  // sentinel, never used by mul (zero short-circuit)
    return t;
  }();
  return table;
}

std::uint8_t GF256::inv(std::uint8_t a) {
  assert(a != 0 && "GF256: inverse of zero");
  return exp_table()[255 - log_table()[a]];
}

unsigned GF256::log_alpha(std::uint8_t a) {
  assert(a != 0 && "GF256: log of zero");
  return log_table()[a];
}

}  // namespace tbi::fec
