#include "fec/gf256.hpp"

#include <cassert>

namespace tbi::fec {

std::uint8_t GF256::inv(std::uint8_t a) {
  assert(a != 0 && "GF256: inverse of zero");
  return kExp[255 - kLog[a]];
}

unsigned GF256::log_alpha(std::uint8_t a) {
  assert(a != 0 && "GF256: log of zero");
  return kLog[a];
}

}  // namespace tbi::fec
