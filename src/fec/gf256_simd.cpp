#include "fec/gf256_simd.hpp"

#include <array>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

#include "fec/gf256.hpp"

namespace tbi::fec {

namespace {

// ---------------------------------------------------------------------------
// Constexpr table construction. Everything derives from the same constexpr
// exp/log tables as GF256 itself, so all four backends (including the 64 KiB
// product table the scalar path reads) agree by construction.
// ---------------------------------------------------------------------------

constexpr std::uint8_t cmul(unsigned a, unsigned b) {
  // constexpr-safe product: shift/xor by the primitive polynomial. Only runs
  // at compile time, so speed is irrelevant and it doubles as an independent
  // derivation from GF256's log/exp route.
  unsigned acc = 0;
  for (unsigned bit = 0; bit < 8; ++bit) {
    if (b & (1u << bit)) acc ^= a << bit;
  }
  for (unsigned bit = 15; bit >= 8; --bit) {
    if (acc & (1u << bit)) acc ^= detail::kGfPrimitivePoly << (bit - 8);
  }
  return static_cast<std::uint8_t>(acc);
}

constexpr detail::GfNibbleTables make_nibble_tables() {
  detail::GfNibbleTables t{};
  for (unsigned m = 0; m < 256; ++m) {
    for (unsigned x = 0; x < 16; ++x) {
      t.lo[m][x] = cmul(m, x);
      t.hi[m][x] = cmul(m, x << 4);
    }
  }
  return t;
}

constexpr detail::GfNibbleTables kNibbles = make_nibble_tables();

struct MulTable {
  std::uint8_t row[256][256];
};

constexpr MulTable make_mul_table() {
  // Built from the nibble split tables (m*x = m*(x&15) ^ m*(x>>4 << 4)),
  // not a cmul per entry: 64 K cmuls exceed GCC's constexpr ops limit
  // once UBSan's checked arithmetic inflates the per-op count, and two
  // lookups + xor per entry stay far under it on every build.
  MulTable t{};
  for (unsigned m = 0; m < 256; ++m) {
    for (unsigned x = 0; x < 256; ++x) {
      t.row[m][x] =
          static_cast<std::uint8_t>(kNibbles.lo[m][x & 15] ^ kNibbles.hi[m][x >> 4]);
    }
  }
  return t;
}

// 64 KiB full product table, multiplier-major: kMul.row[m] is the scalar
// kernel's lookup row. Backed by .rodata like GF256's tables.
constinit const MulTable kMul = make_mul_table();

constexpr detail::GfAffineTable make_affine_table() {
  // vgf2p8affineqb computes, per destination byte, result bit i =
  // parity(matrix_byte[7-i] & src_byte): qword byte 7-i holds the row that
  // produces bit i, and that row's bit j is the coefficient of source
  // bit j. "Multiply by m" sends basis vector x^j to m * x^j, so
  // row_i bit j = bit i of cmul(m, 1 << j).
  detail::GfAffineTable t{};
  for (unsigned m = 0; m < 256; ++m) {
    std::uint64_t matrix = 0;
    for (unsigned i = 0; i < 8; ++i) {
      std::uint64_t row = 0;
      for (unsigned j = 0; j < 8; ++j) {
        if (cmul(m, 1u << j) & (1u << i)) row |= 1u << j;
      }
      matrix |= row << (8 * (7 - i));
    }
    t.m[m] = matrix;
  }
  return t;
}

}  // namespace

namespace detail {

constinit const GfNibbleTables kGfNibbleTables = kNibbles;
constinit const GfAffineTable kGfAffine = make_affine_table();

void gf256_muladd_scalar(std::uint8_t* dst, const std::uint8_t* src,
                         std::uint8_t m, std::size_t len) {
  if (m == 0 || len == 0) return;
  const std::uint8_t* row = kMul.row[m];
  std::size_t i = 0;
  for (; i + 4 <= len; i += 4) {
    dst[i] ^= row[src[i]];
    dst[i + 1] ^= row[src[i + 1]];
    dst[i + 2] ^= row[src[i + 2]];
    dst[i + 3] ^= row[src[i + 3]];
  }
  for (; i < len; ++i) dst[i] ^= row[src[i]];
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Host support detection + dispatch
// ---------------------------------------------------------------------------

namespace {

#if defined(TBI_SIMD_X86)

void cpuid_count(unsigned leaf, unsigned subleaf, unsigned out[4]) {
  __asm__ volatile("cpuid"
                   : "=a"(out[0]), "=b"(out[1]), "=c"(out[2]), "=d"(out[3])
                   : "a"(leaf), "c"(subleaf));
}

bool host_has(GfBackend backend) {
  if (backend == GfBackend::Scalar) return true;
  unsigned regs[4];
  cpuid_count(0, 0, regs);
  if (regs[0] < 7) return false;
  cpuid_count(1, 0, regs);
  // OSXSAVE (ecx bit 27) and AVX (ecx bit 28), then confirm the OS enables
  // xmm+ymm state (XCR0 bits 1:2) before trusting any 256-bit feature bit.
  if ((regs[2] & (1u << 27)) == 0 || (regs[2] & (1u << 28)) == 0) return false;
  unsigned xcr0_lo, xcr0_hi;
  __asm__ volatile("xgetbv" : "=a"(xcr0_lo), "=d"(xcr0_hi) : "c"(0));
  if ((xcr0_lo & 0x6) != 0x6) return false;
  cpuid_count(7, 0, regs);
  const bool avx2 = (regs[1] & (1u << 5)) != 0;
  if (backend == GfBackend::Avx2) return avx2;
  // GFNI (leaf 7 ecx bit 8); the kernel uses the 256-bit VEX form, which
  // additionally needs AVX2 for the vpshufb-free strip logic around it.
  return avx2 && (regs[2] & (1u << 8)) != 0;
}

#else  // !TBI_SIMD_X86

bool host_has(GfBackend backend) { return backend == GfBackend::Scalar; }

#endif

using KernelFn = void (*)(std::uint8_t*, const std::uint8_t*, std::uint8_t,
                          std::size_t);

KernelFn backend_fn(GfBackend backend) {
  switch (backend) {
#if defined(TBI_SIMD_X86)
    case GfBackend::Avx2:
      return &detail::gf256_muladd_avx2;
    case GfBackend::Gfni:
      return &detail::gf256_muladd_gfni;
#endif
    default:
      return &detail::gf256_muladd_scalar;
  }
}

GfBackend parse_backend_name(const char* name) {
  const std::string s(name);
  if (s == "scalar") return GfBackend::Scalar;
  if (s == "avx2") return GfBackend::Avx2;
  if (s == "gfni") return GfBackend::Gfni;
  throw std::invalid_argument("TBI_SIMD: unknown backend '" + s +
                              "' (want scalar|avx2|gfni)");
}

GfBackend resolve_backend() {
  if (const char* env = std::getenv("TBI_SIMD")) {
    const GfBackend want = parse_backend_name(env);
    if (!gf256_backend_supported(want)) {
      throw std::runtime_error(std::string("TBI_SIMD=") + env +
                               ": backend not supported on this host/build");
    }
    return want;
  }
  if (host_has(GfBackend::Gfni)) return GfBackend::Gfni;
  if (host_has(GfBackend::Avx2)) return GfBackend::Avx2;
  return GfBackend::Scalar;
}

// Dispatch state: the active kernel pointer, lazily resolved on first use.
// relaxed is enough — the pointed-to kernels are pure code, and re-resolving
// twice on a racy first call is benign (both writers store the same value).
std::atomic<KernelFn> g_kernel{nullptr};
std::atomic<GfBackend> g_backend{GfBackend::Scalar};

KernelFn resolve_and_cache() {
  const GfBackend backend = resolve_backend();
  const KernelFn fn = backend_fn(backend);
  g_backend.store(backend, std::memory_order_relaxed);
  g_kernel.store(fn, std::memory_order_relaxed);
  return fn;
}

}  // namespace

const char* gf256_backend_name(GfBackend backend) {
  switch (backend) {
    case GfBackend::Scalar:
      return "scalar";
    case GfBackend::Avx2:
      return "avx2";
    case GfBackend::Gfni:
      return "gfni";
  }
  return "?";
}

bool gf256_backend_supported(GfBackend backend) { return host_has(backend); }

std::vector<GfBackend> gf256_supported_backends() {
  std::vector<GfBackend> out;
  for (GfBackend b : {GfBackend::Scalar, GfBackend::Avx2, GfBackend::Gfni}) {
    if (gf256_backend_supported(b)) out.push_back(b);
  }
  return out;
}

GfBackend gf256_active_backend() {
  if (g_kernel.load(std::memory_order_relaxed) == nullptr) resolve_and_cache();
  return g_backend.load(std::memory_order_relaxed);
}

void gf256_force_backend(GfBackend backend) {
  if (!gf256_backend_supported(backend)) {
    throw std::runtime_error(
        std::string("gf256_force_backend: backend not supported: ") +
        gf256_backend_name(backend));
  }
  g_backend.store(backend, std::memory_order_relaxed);
  g_kernel.store(backend_fn(backend), std::memory_order_relaxed);
}

void gf256_reset_backend() {
  g_kernel.store(nullptr, std::memory_order_relaxed);
  g_backend.store(GfBackend::Scalar, std::memory_order_relaxed);
}

void gf256_muladd(std::uint8_t* dst, const std::uint8_t* src, std::uint8_t m,
                  std::size_t len) {
  KernelFn fn = g_kernel.load(std::memory_order_relaxed);
  if (fn == nullptr) fn = resolve_and_cache();
  fn(dst, src, m, len);
}

void gf256_muladd_backend(GfBackend backend, std::uint8_t* dst,
                          const std::uint8_t* src, std::uint8_t m,
                          std::size_t len) {
  if (!gf256_backend_supported(backend)) {
    throw std::runtime_error(
        std::string("gf256_muladd_backend: backend not supported: ") +
        gf256_backend_name(backend));
  }
  backend_fn(backend)(dst, src, m, len);
}

}  // namespace tbi::fec
