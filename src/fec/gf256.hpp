/// \file gf256.hpp
/// Arithmetic over GF(2^8) with the primitive polynomial x^8+x^4+x^3+x^2+1
/// (0x11D), the conventional Reed-Solomon field.
///
/// Log/antilog tables are built once at static-init time; all operations
/// are table lookups, which keeps the RS codec fast enough for the
/// end-to-end optical-downlink example to run millions of symbols.
#pragma once

#include <array>
#include <cstdint>

namespace tbi::fec {

class GF256 {
 public:
  static constexpr unsigned kFieldSize = 256;
  static constexpr unsigned kPrimitivePoly = 0x11D;

  static std::uint8_t add(std::uint8_t a, std::uint8_t b) {
    return static_cast<std::uint8_t>(a ^ b);
  }
  static std::uint8_t sub(std::uint8_t a, std::uint8_t b) { return add(a, b); }

  static std::uint8_t mul(std::uint8_t a, std::uint8_t b) {
    if (a == 0 || b == 0) return 0;
    return exp_table()[(log_table()[a] + log_table()[b]) % 255];
  }

  /// Multiplicative inverse; undefined for 0 (asserts in debug builds).
  static std::uint8_t inv(std::uint8_t a);

  static std::uint8_t div(std::uint8_t a, std::uint8_t b) { return mul(a, inv(b)); }

  /// alpha^power for the primitive element alpha = 0x02.
  static std::uint8_t pow_alpha(unsigned power) { return exp_table()[power % 255]; }

  /// Discrete log base alpha; undefined for 0.
  static unsigned log_alpha(std::uint8_t a);

 private:
  static const std::array<std::uint8_t, 512>& exp_table();
  static const std::array<unsigned, 256>& log_table();
};

}  // namespace tbi::fec
