/// \file gf256.hpp
/// Arithmetic over GF(2^8) with the primitive polynomial x^8+x^4+x^3+x^2+1
/// (0x11D), the conventional Reed-Solomon field.
///
/// Log/antilog tables are computed at compile time (constexpr), so every
/// operation is a guard-free inline table lookup: mul() indexes the
/// 512-entry doubled antilog table directly with log(a)+log(b) — no
/// `% 255` and no static-init check on the hot path. This matters: the
/// RS codec performs billions of multiplies in a paper-scale FER sweep,
/// and the previous function-local-static accessors alone cost ~35% of
/// bench_fer's runtime.
#pragma once

#include <array>
#include <cassert>
#include <cstdint>

namespace tbi::fec {

namespace detail {

inline constexpr unsigned kGfPrimitivePoly = 0x11D;

constexpr std::array<std::uint8_t, 512> gf256_make_exp() {
  std::array<std::uint8_t, 512> t{};
  unsigned x = 1;
  for (unsigned i = 0; i < 255; ++i) {
    t[i] = static_cast<std::uint8_t>(x);
    x <<= 1;
    if (x & 0x100) x ^= kGfPrimitivePoly;
  }
  for (unsigned i = 255; i < 512; ++i) t[i] = t[i - 255];
  return t;
}

constexpr std::array<std::uint16_t, 256> gf256_make_log() {
  std::array<std::uint16_t, 256> t{};
  const auto e = gf256_make_exp();
  for (unsigned i = 0; i < 255; ++i) t[e[i]] = static_cast<std::uint16_t>(i);
  t[0] = 0;  // sentinel, never used by mul/div (zero short-circuit)
  return t;
}

}  // namespace detail

class GF256 {
 public:
  static constexpr unsigned kFieldSize = 256;
  static constexpr unsigned kPrimitivePoly = 0x11D;

  static std::uint8_t add(std::uint8_t a, std::uint8_t b) {
    return static_cast<std::uint8_t>(a ^ b);
  }
  static std::uint8_t sub(std::uint8_t a, std::uint8_t b) { return add(a, b); }

  static std::uint8_t mul(std::uint8_t a, std::uint8_t b) {
    if (a == 0 || b == 0) return 0;
    // log(a) + log(b) <= 508 < 512: the doubled table absorbs the wrap.
    return kExp[kLog[a] + kLog[b]];
  }

  /// Multiplicative inverse; undefined for 0 (asserts in debug builds).
  static std::uint8_t inv(std::uint8_t a);

  static std::uint8_t div(std::uint8_t a, std::uint8_t b) {
    assert(b != 0 && "GF256: division by zero");
    if (a == 0) return 0;
    // log(a) + 255 - log(b) is in [1, 509]: direct doubled-table index.
    return kExp[kLog[a] + 255u - kLog[b]];
  }

  /// alpha^power for the primitive element alpha = 0x02.
  static std::uint8_t pow_alpha(unsigned power) { return kExp[power % 255]; }

  /// Discrete log base alpha; undefined for 0.
  static unsigned log_alpha(std::uint8_t a);

 private:
  /// kExp[i] = alpha^(i mod 255) for i < 510 (doubled antilog table);
  /// kLog[alpha^i] = i with kLog[0] a zero sentinel never used by mul/div.
  static constexpr std::array<std::uint8_t, 512> kExp = detail::gf256_make_exp();
  static constexpr std::array<std::uint16_t, 256> kLog = detail::gf256_make_log();
};

}  // namespace tbi::fec
