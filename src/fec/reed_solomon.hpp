/// \file reed_solomon.hpp
/// Systematic Reed-Solomon codec RS(n, k) over GF(2^8), n <= 255.
///
/// Stands in for the proprietary satcom FEC of the paper's system
/// (DESIGN.md §5): the end-to-end examples encode a frame, pass it through
/// the two-stage triangular interleaver and a bursty optical channel, and
/// show that the interleaver converts channel bursts that would swamp any
/// single code word into correctable per-code-word error counts.
///
/// Decoder: syndromes -> Berlekamp-Massey -> Chien search -> Forney,
/// correcting up to t = (n-k)/2 symbol errors per code word.
///
/// Hot-path design: encode and the syndrome pass both reduce to the
/// vectorized constant-multiplier kernel of gf256_simd.hpp. Encode is an
/// in-place long division whose feedback step XOR-accumulates one
/// reversed-generator row per data symbol; syndromes XOR-accumulate one
/// precomputed power row per nonzero received symbol
/// (S_i = sum_j w_j * alpha^{i(n-1-j)}), so both inner loops run in
/// 16/32/64-byte SIMD strips (DESIGN.md §8) and stay byte-identical to
/// the scalar backend. The span overloads of encode()/decode() write into
/// caller-owned buffers and an RsScratch workspace, so a steady-state
/// pipeline performs zero heap allocations per code word; the vector
/// overloads remain as convenience wrappers with identical results.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "fec/gf256.hpp"

namespace tbi::fec {

struct RsDecodeResult {
  bool ok = false;                 ///< true when a valid code word was recovered
  unsigned corrected_symbols = 0;  ///< number of symbol corrections applied
};

/// Reusable decoder workspace. All vectors grow to their steady-state
/// size on first use and are reused afterwards; one instance per worker
/// thread (never shared concurrently).
struct RsScratch {
  std::vector<std::uint8_t> synd;       ///< syndromes S_1..S_{n-k}
  std::vector<std::uint8_t> sigma;      ///< error locator
  std::vector<std::uint8_t> prev;       ///< BM auxiliary polynomial
  std::vector<std::uint8_t> tmp;        ///< BM update scratch
  std::vector<std::uint8_t> omega;      ///< error evaluator
  std::vector<std::uint8_t> deriv;      ///< sigma' (formal derivative)
  std::vector<unsigned> positions;      ///< Chien search hits

  /// Pre-size every buffer for length-\p n code words. The decoder grows
  /// them lazily to the worst error count seen so far; reserving up front
  /// is what makes the pipeline's steady-state frame loop allocation-free.
  void reserve(std::size_t n) {
    synd.reserve(n);
    sigma.reserve(n);
    prev.reserve(n);
    tmp.reserve(n);
    omega.reserve(n);
    deriv.reserve(n);
    positions.reserve(n);
  }
};

class ReedSolomon {
 public:
  /// \p n total symbols per code word, \p k data symbols; n-k must be even
  /// and positive, n <= 255.
  ReedSolomon(unsigned n, unsigned k);

  unsigned n() const { return n_; }
  unsigned k() const { return k_; }
  unsigned parity() const { return n_ - k_; }
  unsigned t() const { return (n_ - k_) / 2; }

  /// Encode k data symbols into the n-symbol systematic code word
  /// \p word (data first, parity appended). word.size() must be n; the
  /// data may alias word's first k bytes.
  void encode(std::span<const std::uint8_t> data, std::span<std::uint8_t> word) const;

  /// Decode an n-symbol received word in place, using \p scratch for all
  /// intermediate polynomials (no allocations in steady state).
  RsDecodeResult decode(std::span<std::uint8_t> word, RsScratch& scratch) const;

  /// Convenience wrappers (identical results, allocate per call).
  std::vector<std::uint8_t> encode(const std::vector<std::uint8_t>& data) const;
  RsDecodeResult decode(std::vector<std::uint8_t>& word) const;

  /// True iff \p word is a valid code word (all syndromes zero).
  bool is_codeword(std::span<const std::uint8_t> word) const;

 private:
  /// Fill \p out (size parity) with syndromes; returns true iff all zero.
  bool syndromes(std::span<const std::uint8_t> word,
                 std::span<std::uint8_t> out) const;

  unsigned n_;
  unsigned k_;
  std::vector<std::uint8_t> generator_;  ///< generator polynomial, low degree first
  /// generator_ reversed and without its monic leading term:
  /// grev_[j] = generator_[parity-1-j]. Encode's long-division step
  /// XOR-accumulates feedback * grev_ over the next parity dividend
  /// coefficients with one gf256_muladd.
  std::vector<std::uint8_t> grev_;
  /// Per-position syndrome power rows, 16-byte-strided so every row is a
  /// whole number of SIMD strips: pow_rows_[j*row_stride_ + i] =
  /// alpha^{(i+1)(n-1-j)}. Lanes in [parity, row_stride_) hold valid
  /// powers too; their accumulator lanes are deterministic garbage that
  /// syndromes() never reads.
  std::vector<std::uint8_t> pow_rows_;
  unsigned row_stride_ = 0;
};

}  // namespace tbi::fec
