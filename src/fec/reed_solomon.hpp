/// \file reed_solomon.hpp
/// Systematic Reed-Solomon codec RS(n, k) over GF(2^8), n <= 255.
///
/// Stands in for the proprietary satcom FEC of the paper's system
/// (DESIGN.md §5): the end-to-end examples encode a frame, pass it through
/// the two-stage triangular interleaver and a bursty optical channel, and
/// show that the interleaver converts channel bursts that would swamp any
/// single code word into correctable per-code-word error counts.
///
/// Decoder: syndromes -> Berlekamp-Massey -> Chien search -> Forney,
/// correcting up to t = (n-k)/2 symbol errors per code word.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "fec/gf256.hpp"

namespace tbi::fec {

struct RsDecodeResult {
  bool ok = false;                 ///< true when a valid code word was recovered
  unsigned corrected_symbols = 0;  ///< number of symbol corrections applied
};

class ReedSolomon {
 public:
  /// \p n total symbols per code word, \p k data symbols; n-k must be even
  /// and positive, n <= 255.
  ReedSolomon(unsigned n, unsigned k);

  unsigned n() const { return n_; }
  unsigned k() const { return k_; }
  unsigned parity() const { return n_ - k_; }
  unsigned t() const { return (n_ - k_) / 2; }

  /// Encode k data symbols into an n-symbol systematic code word
  /// (data first, parity appended).
  std::vector<std::uint8_t> encode(const std::vector<std::uint8_t>& data) const;

  /// Decode an n-symbol received word in place.
  RsDecodeResult decode(std::vector<std::uint8_t>& word) const;

  /// True iff \p word is a valid code word (all syndromes zero).
  bool is_codeword(const std::vector<std::uint8_t>& word) const;

 private:
  std::vector<std::uint8_t> syndromes(const std::vector<std::uint8_t>& word) const;

  unsigned n_;
  unsigned k_;
  std::vector<std::uint8_t> generator_;  ///< generator polynomial, low degree first
};

}  // namespace tbi::fec
