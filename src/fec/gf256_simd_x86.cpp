/// \file gf256_simd_x86.cpp
/// AVX2 / GFNI bodies of the GF(2^8) constant-multiplier kernel. The ONLY
/// translation unit compiled with -mavx2 -mgfni (see CMakeLists.txt): the
/// dispatcher in gf256_simd.cpp never calls into here unless CPUID says the
/// host executes these encodings, so no other object file carries ISA the
/// machine may lack.
#include "fec/gf256_simd.hpp"

#if !defined(TBI_SIMD_X86)
#error "gf256_simd_x86.cpp must be compiled with TBI_SIMD_X86 defined"
#endif

#include <immintrin.h>

namespace tbi::fec::detail {

namespace {

/// One 16-byte split-table step: acc-style dst ^= m * src via two vpshufb
/// lookups on the low/high source nibbles.
inline __m128i mul128(__m128i src, __m128i lo, __m128i hi, __m128i mask) {
  const __m128i lo_nib = _mm_and_si128(src, mask);
  const __m128i hi_nib = _mm_and_si128(_mm_srli_epi16(src, 4), mask);
  return _mm_xor_si128(_mm_shuffle_epi8(lo, lo_nib),
                       _mm_shuffle_epi8(hi, hi_nib));
}

inline __m256i mul256(__m256i src, __m256i lo, __m256i hi, __m256i mask) {
  const __m256i lo_nib = _mm256_and_si256(src, mask);
  const __m256i hi_nib = _mm256_and_si256(_mm256_srli_epi16(src, 4), mask);
  return _mm256_xor_si256(_mm256_shuffle_epi8(lo, lo_nib),
                          _mm256_shuffle_epi8(hi, hi_nib));
}

}  // namespace

void gf256_muladd_avx2(std::uint8_t* dst, const std::uint8_t* src,
                       std::uint8_t m, std::size_t len) {
  if (m == 0 || len == 0) return;
  const __m128i lo128 =
      _mm_load_si128(reinterpret_cast<const __m128i*>(kGfNibbleTables.lo[m]));
  const __m128i hi128 =
      _mm_load_si128(reinterpret_cast<const __m128i*>(kGfNibbleTables.hi[m]));
  const __m256i lo = _mm256_broadcastsi128_si256(lo128);
  const __m256i hi = _mm256_broadcastsi128_si256(hi128);
  const __m256i mask = _mm256_set1_epi8(0x0F);
  std::size_t i = 0;
  // 64-byte strips: two independent 32-byte lanes per iteration keep the
  // shuffle ports busy across the load->xor->store dependency chains.
  for (; i + 64 <= len; i += 64) {
    const __m256i s0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i s1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i + 32));
    __m256i d0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    __m256i d1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i + 32));
    d0 = _mm256_xor_si256(d0, mul256(s0, lo, hi, mask));
    d1 = _mm256_xor_si256(d1, mul256(s1, lo, hi, mask));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), d0);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 32), d1);
  }
  for (; i + 32 <= len; i += 32) {
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    __m256i d = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    d = _mm256_xor_si256(d, mul256(s, lo, hi, mask));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), d);
  }
  // 16-byte sub-strip so short parity rows (p = 16 at rs_k = 239) still
  // vectorize instead of falling through to the byte tail.
  const __m128i mask128 = _mm_set1_epi8(0x0F);
  for (; i + 16 <= len; i += 16) {
    const __m128i s =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    __m128i d = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    d = _mm_xor_si128(d, mul128(s, lo128, hi128, mask128));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), d);
  }
  if (i < len) gf256_muladd_scalar(dst + i, src + i, m, len - i);
}

void gf256_muladd_gfni(std::uint8_t* dst, const std::uint8_t* src,
                       std::uint8_t m, std::size_t len) {
  if (m == 0 || len == 0) return;
  const __m256i mat = _mm256_set1_epi64x(static_cast<long long>(kGfAffine.m[m]));
  const __m128i mat128 = _mm256_castsi256_si128(mat);
  std::size_t i = 0;
  for (; i + 64 <= len; i += 64) {
    const __m256i s0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i s1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i + 32));
    __m256i d0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    __m256i d1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i + 32));
    d0 = _mm256_xor_si256(d0, _mm256_gf2p8affine_epi64_epi8(s0, mat, 0));
    d1 = _mm256_xor_si256(d1, _mm256_gf2p8affine_epi64_epi8(s1, mat, 0));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), d0);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 32), d1);
  }
  for (; i + 32 <= len; i += 32) {
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    __m256i d = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    d = _mm256_xor_si256(d, _mm256_gf2p8affine_epi64_epi8(s, mat, 0));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), d);
  }
  for (; i + 16 <= len; i += 16) {
    const __m128i s =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    __m128i d = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    d = _mm_xor_si128(d, _mm_gf2p8affine_epi64_epi8(s, mat128, 0));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), d);
  }
  if (i < len) gf256_muladd_scalar(dst + i, src + i, m, len - i);
}

}  // namespace tbi::fec::detail
