/// \file gf256_simd.hpp
/// Vectorized constant-multiplier kernel over GF(2^8)/0x11D.
///
/// The whole RS hot path — encode's parity-feedback rows and the
/// syndrome power-row accumulation (DESIGN.md §8) — reduces to one
/// primitive: XOR-accumulate a span multiplied by a fixed field scalar,
///
///     dst[i] ^= m * src[i]   for i in [0, len),   m constant.
///
/// Three backends implement it with bit-identical results:
///
///  * **scalar** — one 256-entry product row per multiplier out of a
///    constexpr 64 KiB table; the portable oracle every other backend is
///    tested against, and the only backend on non-x86 builds.
///  * **avx2** — the classic 4-bit split-table `pshufb` scheme: two
///    16-entry nibble tables per multiplier (m * lo-nibble and
///    m * hi-nibble<<4), one `vpshufb` pair per 32-byte strip.
///  * **gfni** — `vgf2p8affineqb` with a per-multiplier 8x8 bit matrix.
///    GFNI's fused multiply (`gf2p8mulb`) hardwires the AES polynomial
///    0x11B, but multiplication by a *constant* is GF(2)-linear for any
///    polynomial, so the affine form handles our 0x11D field exactly.
///
/// Backend selection is CPUID runtime dispatch (best supported wins:
/// gfni > avx2 > scalar), overridable with `TBI_SIMD=scalar|avx2|gfni`
/// so any build can force any path — CI runs the full suite under
/// `TBI_SIMD=scalar` and diffs it against the default dispatch. The
/// vector entry points live in their own TU (gf256_simd_x86.cpp), the
/// only one compiled with `-mavx2 -mgfni`, so no other object file can
/// leak ISA the host may lack; `TBI_SIMD_DISABLE=ON` (CMake) drops that
/// TU entirely and pins the scalar backend.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace tbi::fec {

enum class GfBackend : unsigned {
  Scalar = 0,
  Avx2 = 1,
  Gfni = 2,
};

/// "scalar" | "avx2" | "gfni".
const char* gf256_backend_name(GfBackend backend);

/// True when \p backend is compiled in *and* the host CPU supports it
/// (CPUID: AVX2 needs OS-enabled ymm state; gfni needs GFNI + AVX2 for
/// the 256-bit VEX form). Scalar is always supported.
bool gf256_backend_supported(GfBackend backend);

/// Every supported backend, scalar first — what the oracle tests sweep.
std::vector<GfBackend> gf256_supported_backends();

/// The backend gf256_muladd currently dispatches to. Resolved on first
/// use: the `TBI_SIMD` override when set (std::runtime_error if that
/// backend is not supported here, std::invalid_argument for an unknown
/// name), otherwise the best supported backend.
GfBackend gf256_active_backend();

/// Test/bench hook: pin dispatch to \p backend (throws std::runtime_error
/// if unsupported). Not thread-safe against concurrent kernel calls —
/// callers switch backends only between runs.
void gf256_force_backend(GfBackend backend);

/// Undo gf256_force_backend: re-resolve from TBI_SIMD / CPUID.
void gf256_reset_backend();

/// dst[i] ^= m * src[i] over GF(2^8)/0x11D for i in [0, len), on the
/// active backend. src and dst must not overlap (they never alias in the
/// codec: table rows vs accumulators). Any alignment, any length — the
/// vector backends run 32/64-byte strips with a scalar tail.
void gf256_muladd(std::uint8_t* dst, const std::uint8_t* src, std::uint8_t m,
                  std::size_t len);

/// As gf256_muladd but on an explicit backend (throws std::runtime_error
/// if unsupported) — the oracle tests drive every backend through this
/// regardless of the dispatch state.
void gf256_muladd_backend(GfBackend backend, std::uint8_t* dst,
                          const std::uint8_t* src, std::uint8_t m,
                          std::size_t len);

namespace detail {

/// Nibble split tables shared by the scalar TU (table construction) and
/// the x86 TU (register operands): lo[m][x] = m * x, hi[m][x] = m * (x<<4).
struct GfNibbleTables {
  alignas(64) std::uint8_t lo[256][16];
  alignas(64) std::uint8_t hi[256][16];
};
extern const GfNibbleTables kGfNibbleTables;

/// kGfAffine.m[m]: the 8x8 GF(2) matrix of "multiply by m" packed in
/// vgf2p8affineqb's operand order (qword byte 7-i = row computing result
/// bit i, row bit j = coefficient of source bit j).
struct GfAffineTable {
  alignas(64) std::uint64_t m[256];
};
extern const GfAffineTable kGfAffine;

/// Internal entry points implemented in gf256_simd_x86.cpp (present only
/// when the build enables the ISA TU).
void gf256_muladd_avx2(std::uint8_t* dst, const std::uint8_t* src,
                       std::uint8_t m, std::size_t len);
void gf256_muladd_gfni(std::uint8_t* dst, const std::uint8_t* src,
                       std::uint8_t m, std::size_t len);

/// Portable reference row path (also the tail loop of the vector kernels).
void gf256_muladd_scalar(std::uint8_t* dst, const std::uint8_t* src,
                         std::uint8_t m, std::size_t len);

}  // namespace detail

}  // namespace tbi::fec
